// Package nmf implements non-negative matrix factorization by
// multiplicative updates (Lee & Seung), the substrate behind the
// Salimi^jf_MatFac pre-processor: conditional independence Y ⊥ I | A holds
// exactly when each admissible stratum's I×Y contingency table has rank 1,
// so the minimal MatFac repair replaces each table with its best rank-1
// non-negative approximation.
package nmf

import (
	"math"

	"fairbench/internal/rng"
)

// Factorize computes W (r×k) and H (k×c) minimizing ||M - W·H||_F with
// non-negativity, using multiplicative updates from a random positive
// initialization. M is row-major r×c with non-negative entries. Every
// intermediate product is written into scratch matrices allocated once
// before the loop — the Salimi MatFac repair calls this per admissible
// stratum, and the update arithmetic is unchanged term for term.
func Factorize(m [][]float64, k, iters int, seed int64) (w, h [][]float64) {
	r := len(m)
	if r == 0 {
		return nil, nil
	}
	c := len(m[0])
	g := rng.New(seed)
	w = randMat(r, k, g)
	h = randMat(k, c, g)
	wtm := zeroMat(k, c)
	wtw := zeroMat(k, k)
	wtwh := zeroMat(k, c)
	wh := zeroMat(r, c)
	mht := zeroMat(r, k)
	whht := zeroMat(r, k)
	const eps = 1e-12
	for it := 0; it < iters; it++ {
		// H <- H .* (WᵀM) ./ (WᵀWH)
		mulTInto(wtm, w, m)
		mulTInto(wtw, w, w)
		mulInto(wtwh, wtw, h)
		for i := 0; i < k; i++ {
			for j := 0; j < c; j++ {
				h[i][j] *= wtm[i][j] / (wtwh[i][j] + eps)
			}
		}
		// W <- W .* (MHᵀ) ./ (WHHᵀ)
		mulBTInto(mht, m, h)
		mulInto(wh, w, h)
		mulBTInto(whht, wh, h)
		for i := 0; i < r; i++ {
			for j := 0; j < k; j++ {
				w[i][j] *= mht[i][j] / (whht[i][j] + eps)
			}
		}
	}
	return w, h
}

// Rank1 returns the best rank-1 non-negative approximation u·vᵀ of m.
func Rank1(m [][]float64, iters int, seed int64) [][]float64 {
	w, h := Factorize(m, 1, iters, seed)
	r := len(m)
	if r == 0 {
		return nil
	}
	c := len(m[0])
	out := make([][]float64, r)
	for i := 0; i < r; i++ {
		out[i] = make([]float64, c)
		for j := 0; j < c; j++ {
			out[i][j] = w[i][0] * h[0][j]
		}
	}
	return out
}

// Residual returns ||M - W·H||_F.
func Residual(m, w, h [][]float64) float64 {
	wh := mul(w, h)
	var s float64
	for i := range m {
		for j := range m[i] {
			d := m[i][j] - wh[i][j]
			s += d * d
		}
	}
	return math.Sqrt(s)
}

func randMat(r, c int, g *rng.RNG) [][]float64 {
	m := make([][]float64, r)
	for i := range m {
		m[i] = make([]float64, c)
		for j := range m[i] {
			m[i][j] = 0.5 + g.Float64()
		}
	}
	return m
}

// zeroMat allocates an r×c zero matrix.
func zeroMat(r, c int) [][]float64 {
	m := make([][]float64, r)
	for i := range m {
		m[i] = make([]float64, c)
	}
	return m
}

// zero clears a scratch matrix before accumulation.
func zero(m [][]float64) {
	for i := range m {
		for j := range m[i] {
			m[i][j] = 0
		}
	}
}

// mul returns A·B.
func mul(a, b [][]float64) [][]float64 {
	r, k := len(a), len(b)
	if r == 0 || k == 0 {
		return nil
	}
	out := zeroMat(r, len(b[0]))
	mulInto(out, a, b)
	return out
}

// mulInto computes out = A·B into preallocated out.
func mulInto(out, a, b [][]float64) {
	zero(out)
	r, k := len(a), len(b)
	if r == 0 || k == 0 {
		return
	}
	c := len(b[0])
	for i := 0; i < r; i++ {
		for t := 0; t < k; t++ {
			av := a[i][t]
			if av == 0 {
				continue
			}
			for j := 0; j < c; j++ {
				out[i][j] += av * b[t][j]
			}
		}
	}
}

// mulTInto computes out = Aᵀ·B for A (n×k), B (n×c) into preallocated
// k×c out.
func mulTInto(out, a, b [][]float64) {
	zero(out)
	n := len(a)
	if n == 0 {
		return
	}
	k, c := len(a[0]), len(b[0])
	for t := 0; t < n; t++ {
		for i := 0; i < k; i++ {
			av := a[t][i]
			if av == 0 {
				continue
			}
			for j := 0; j < c; j++ {
				out[i][j] += av * b[t][j]
			}
		}
	}
}

// mulBTInto computes out = A·Bᵀ for A (r×c), B (k×c) into preallocated
// r×k out.
func mulBTInto(out, a, b [][]float64) {
	r := len(a)
	k := len(b)
	for i := 0; i < r; i++ {
		for j := 0; j < k; j++ {
			var s float64
			for t := range a[i] {
				s += a[i][t] * b[j][t]
			}
			out[i][j] = s
		}
	}
}
