package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); m != 5 {
		t.Fatalf("mean: %v", m)
	}
	if v := Variance(x); math.Abs(v-32.0/7) > 1e-12 {
		t.Fatalf("variance: %v", v)
	}
	if Variance([]float64{1}) != 0 {
		t.Fatal("singleton variance must be 0")
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(x, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("quantile %v: got %v want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile must be 0")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(raw [16]float64, a, b float64) bool {
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if math.IsNaN(qa) || math.IsNaN(qb) {
			return true
		}
		if qa > qb {
			qa, qb = qb, qa
		}
		x := raw[:]
		for _, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		return Quantile(x, qa) <= Quantile(x, qb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRank(t *testing.T) {
	s := []float64{1, 2, 2, 3}
	if r := Rank(s, 2); r != 0.75 {
		t.Fatalf("rank of 2: %v", r)
	}
	if r := Rank(s, 0); r != 0 {
		t.Fatalf("rank below min: %v", r)
	}
	if r := Rank(s, 5); r != 1 {
		t.Fatalf("rank above max: %v", r)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7})
	if lo != -1 || hi != 7 {
		t.Fatalf("minmax: %v %v", lo, hi)
	}
}

func TestHoeffdingUpper(t *testing.T) {
	// Bound must exceed the mean and shrink with n.
	b1 := HoeffdingUpper(0.1, 100, 0, 1, 0.05)
	b2 := HoeffdingUpper(0.1, 10000, 0, 1, 0.05)
	if b1 <= 0.1 || b2 <= 0.1 {
		t.Fatal("bound must exceed the mean")
	}
	if b2 >= b1 {
		t.Fatal("bound must tighten with n")
	}
	if !math.IsInf(HoeffdingUpper(0, 0, 0, 1, 0.05), 1) {
		t.Fatal("n=0 must give +Inf")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.975, 1.959964}, {0.025, -1.959964}, {0.95, 1.644854},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Fatalf("quantile(%v): got %v want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("boundary quantiles must be infinite")
	}
}

func TestTTestUpperExceedsMean(t *testing.T) {
	if TTestUpper(0.2, 0.1, 50, 0.05) <= 0.2 {
		t.Fatal("t bound must exceed the mean")
	}
	if !math.IsInf(TTestUpper(0, 1, 1, 0.05), 1) {
		t.Fatal("n=1 must give +Inf")
	}
}

func TestConfusion(t *testing.T) {
	y := []int{1, 1, 0, 0, 1}
	yhat := []int{1, 0, 0, 1, 1}
	c := Count(y, yhat)
	if c.TP != 2 || c.FN != 1 || c.TN != 1 || c.FP != 1 {
		t.Fatalf("confusion: %+v", c)
	}
	if c.N() != 5 {
		t.Fatalf("N: %d", c.N())
	}
	if math.Abs(c.TPR()-2.0/3) > 1e-12 {
		t.Fatalf("TPR: %v", c.TPR())
	}
	if math.Abs(c.FPR()-0.5) > 1e-12 {
		t.Fatalf("FPR: %v", c.FPR())
	}
	if math.Abs(c.TNR()-0.5) > 1e-12 {
		t.Fatalf("TNR: %v", c.TNR())
	}
	if math.Abs(c.PositiveRate()-3.0/5) > 1e-12 {
		t.Fatalf("positive rate: %v", c.PositiveRate())
	}
	var empty Confusion
	if empty.TPR() != 0 || empty.FPR() != 0 {
		t.Fatal("empty confusion rates must be 0")
	}
}

func TestQuantileSortedAgainstUnsorted(t *testing.T) {
	x := []float64{9, 1, 4, 4, 2, 8}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	for _, q := range []float64{0, 0.3, 0.5, 0.9, 1} {
		if Quantile(x, q) != QuantileSorted(s, q) {
			t.Fatalf("sorted/unsorted mismatch at q=%v", q)
		}
	}
}
