package sched

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairbench/internal/dispatch"
)

func TestLoadHosts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hosts.json")
	body := `[
  {"name": "local", "slots": 4},
  {"name": "big", "slots": 16, "transport": "remote",
   "cmd": ["ssh", "-oBatchMode=yes", "big", "/usr/local/bin/fairbench"]}
]`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	hosts, err := LoadHosts(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 2 || hosts[0].Name != "local" || hosts[1].Slots != 16 ||
		hosts[1].Transport != "remote" || len(hosts[1].Cmd) != 4 {
		t.Fatalf("hosts %+v", hosts)
	}

	if err := os.WriteFile(path, []byte(`[]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHosts(path); err == nil || !strings.Contains(err.Error(), "no hosts") {
		t.Fatalf("empty pool accepted: %v", err)
	}
	if _, err := LoadHosts(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := os.WriteFile(path, []byte(`{"hosts": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHosts(path); err == nil {
		t.Fatal("non-array pool accepted")
	}
}

func TestBuildPoolValidation(t *testing.T) {
	cases := []struct {
		hosts []Host
		want  string
	}{
		{[]Host{{Name: ""}}, "no name"},
		{[]Host{{Name: "a"}, {Name: "a"}}, "duplicate"},
		{[]Host{{Name: "a", Transport: "teleport"}}, "unknown transport"},
	}
	for _, c := range cases {
		if _, _, err := buildPool(&Options{Hosts: c.hosts}); err == nil ||
			!strings.Contains(err.Error(), c.want) {
			t.Fatalf("hosts %+v: got %v, want %q", c.hosts, err, c.want)
		}
	}

	// Defaults: one local host, slots filled in, shard target = slots.
	opts := &Options{Hosts: []Host{{Name: "a"}, {Name: "b", Slots: 3}}}
	pool, _, err := buildPool(opts)
	if err != nil {
		t.Fatal(err)
	}
	if pool[0].Slots != 1 || pool[1].Slots != 3 || opts.Shards != 4 {
		t.Fatalf("pool %+v shards %d", pool, opts.Shards)
	}
	if opts.HeartbeatTimeout <= 0 || opts.Retries != 1 || opts.MaxHostFailures != 3 {
		t.Fatalf("defaults %+v", opts)
	}
	// A negative retry budget means zero extra rounds.
	neg := &Options{Retries: -5}
	if _, _, err := buildPool(neg); err != nil || neg.Retries != 0 {
		t.Fatalf("negative retries: %v %d", err, neg.Retries)
	}
}

// TestSchedRejectsForeignDirectory: scheduling a different grid into a
// live sched directory must be refused, as must silently switching the
// run's cache directory.
func TestSchedRejectsForeignDirectory(t *testing.T) {
	spec := smallSpec()
	dir := t.TempDir()
	if _, _, err := Run(spec, Options{
		Dir: dir, Shards: 2, Hosts: []Host{{Name: "a"}},
		Transports: map[string]Transport{"local": workerTransport()},
	}); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Seed = 99
	if _, _, err := Run(other, Options{
		Dir: dir, Shards: 2, Hosts: []Host{{Name: "a"}},
		Transports: map[string]Transport{"local": workerTransport()},
	}); err == nil || !strings.Contains(err.Error(), "different run") {
		t.Fatalf("want different-run refusal, got %v", err)
	}
	if _, _, err := Run(spec, Options{
		Dir: dir, Shards: 2, Hosts: []Host{{Name: "a"}}, CacheDir: t.TempDir(),
		Transports: map[string]Transport{"local": workerTransport()},
	}); err == nil || !strings.Contains(err.Error(), "cannot change") {
		t.Fatalf("want cache-dir conflict refusal, got %v", err)
	}
}

// TestSchedAdoptsManifestCache: re-running a cached directory WITHOUT
// the cache option must adopt the manifest's cache directory for
// planning too — a warm directory with missing parts is served entirely
// by the coordinator, never a transport.
func TestSchedAdoptsManifestCache(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	dir, cacheDir := t.TempDir(), t.TempDir()
	_, _, err := Run(spec, Options{
		Dir: dir, Shards: 2, CacheDir: cacheDir, Hosts: []Host{{Name: "a"}},
		Transports: map[string]Transport{"local": workerTransport()},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Lose the parts but keep the cache: the re-run (no CacheDir in its
	// options) must rediscover every cell through the manifest's cache.
	for i := 0; i < 2; i++ {
		if err := os.Remove(filepath.Join(dir, dispatch.PartName(i))); err != nil {
			t.Fatal(err)
		}
	}
	out, rep, err := Run(spec, Options{
		Dir: dir, Shards: 2, Hosts: []Host{{Name: "a"}},
		Transports: map[string]Transport{"local": forbidTransport{t}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("cache-adopting re-run diverges from serial run")
	}
	if rep.CellsComputed != 0 || len(rep.Skipped) != len(rep.Ranges) {
		t.Fatalf("re-run computed %d cells, skipped %v of %d ranges",
			rep.CellsComputed, rep.Skipped, len(rep.Ranges))
	}
}

// TestSchedResumeUsesManifest: Resume takes spec, plan, and cache from
// the manifest and completes missing ranges.
func TestSchedResumeUsesManifest(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	dir := t.TempDir()
	_, _, err := Run(spec, Options{
		Dir: dir, Shards: 2, Hosts: []Host{{Name: "dead"}},
		Transports: map[string]Transport{"local": failTransport{}},
		Retries:    -1,
	})
	if err == nil {
		t.Fatal("dead pool succeeded")
	}
	out, rep, err := Resume(dir, Options{
		Hosts:      []Host{{Name: "ok"}},
		Transports: map[string]Transport{"local": workerTransport()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("resumed output diverges from serial run")
	}
	if len(rep.Completed["ok"]) != 2 {
		t.Fatalf("resume completed %v", rep.Completed)
	}
	if _, _, err := Resume(t.TempDir(), Options{}); err == nil ||
		!strings.Contains(err.Error(), "nothing to resume") {
		t.Fatalf("want nothing-to-resume error, got %v", err)
	}
}
