// Package report renders experiment results as aligned text tables (the
// terminal counterpart of the paper's figures) and as CSV for downstream
// plotting.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple rectangular result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row; values are stringified with %v (floats pre-formatted
// by the caller via F).
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// F formats a float at 3 decimal places, the paper's table precision.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// F2 formats a float at 2 decimal places (the CV tables' precision).
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes headers and rows as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
