package store

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// maxEntryBytes bounds how much of a remote response (or an uploaded
// entry, server-side) is ever read: far above any real cell payload,
// far below anything that could pressure memory. A response truncated
// at the bound fails checksum verification and is rejected.
const maxEntryBytes = 64 << 20

// RemoteStore is a Backend over the HTTP cache protocol served by
// Handler: GET/PUT/HEAD <base>/<fingerprint>/<arch>/<seed>/<index>,
// carrying the same entry encoding the on-disk store uses. It never
// trusts the wire: every GET body passes DecodeEntry's full
// verification (schema version, exact key-field match, payload SHA-256)
// before a byte is returned, so a corrupt, truncated, or adversarial
// response reads as a miss and the cell is recomputed.
//
// Transport failures (connection refused, timeouts, non-404 error
// statuses) also read as misses but are counted separately in
// Counters().Errors — TieredStore watches that signal to degrade to
// local-only during a remote outage instead of failing the run.
type RemoteStore struct {
	base     string
	client   *http.Client
	hits     atomic.Int64
	misses   atomic.Int64
	writes   atomic.Int64
	rejected atomic.Int64
	errors   atomic.Int64
}

var _ Backend = (*RemoteStore)(nil)

// NewRemote returns a RemoteStore speaking to a cache server at
// baseURL, e.g. "http://host:9610/cache" (a `fairbench cachesrv` or a
// `fairbench serve` daemon's /cache mount). A trailing slash is
// trimmed; the scheme must be http or https.
func NewRemote(baseURL string) (*RemoteStore, error) {
	u, err := url.Parse(strings.TrimRight(baseURL, "/"))
	if err != nil {
		return nil, fmt.Errorf("store: remote url %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("store: remote url %q: want http(s)://host[:port][/path]", baseURL)
	}
	return &RemoteStore{
		base:   u.String(),
		client: &http.Client{Timeout: 30 * time.Second},
	}, nil
}

// Base returns the normalized base URL this handle speaks to.
func (r *RemoteStore) Base() string { return r.base }

func (r *RemoteStore) keyURL(k Key) (string, error) {
	p := EncodeKeyPath(k)
	if p == "" {
		return "", fmt.Errorf("store: key %+v is not addressable over HTTP", k)
	}
	return r.base + "/" + p, nil
}

// getChecked is Get with the transport outcome split out: err is non-nil
// only for transport-level failures (the remote could not answer), which
// the tiered store counts toward degradation; a clean 404 or a rejected
// body is (nil, false, nil).
func (r *RemoteStore) getChecked(k Key) ([]byte, bool, error) {
	u, err := r.keyURL(k)
	if err != nil {
		return nil, false, nil // unaddressable key: a miss, not an outage
	}
	resp, err := r.client.Get(u)
	if err != nil {
		r.errors.Add(1)
		return nil, false, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		r.misses.Add(1)
		return nil, false, nil
	case resp.StatusCode != http.StatusOK:
		r.errors.Add(1)
		return nil, false, fmt.Errorf("store: remote GET %s: status %d", u, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes))
	if err != nil {
		r.errors.Add(1)
		return nil, false, err
	}
	payload, err := DecodeEntry(k, data)
	if err != nil {
		// The remote answered, but with bytes that fail verification:
		// never merge them — reject and recompute.
		r.rejected.Add(1)
		return nil, false, nil
	}
	r.hits.Add(1)
	return payload, true, nil
}

// Get returns the verified payload cached under k on the remote, or
// ok=false on a miss, a transport failure, or a response that fails
// verification.
func (r *RemoteStore) Get(k Key) ([]byte, bool) {
	payload, ok, _ := r.getChecked(k)
	return payload, ok
}

func (r *RemoteStore) hasChecked(k Key) (bool, error) {
	u, err := r.keyURL(k)
	if err != nil {
		return false, nil
	}
	resp, err := r.client.Head(u)
	if err != nil {
		r.errors.Add(1)
		return false, err
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	}
	r.errors.Add(1)
	return false, fmt.Errorf("store: remote HEAD %s: status %d", u, resp.StatusCode)
}

// Has reports whether the remote holds an entry under k, via a HEAD
// request (the server verifies the stored entry before answering 200).
// The wire bytes themselves are only verified on Get — plan-time probes
// that capture payloads use Get, so a lying server still can't sneak an
// unverified payload into a run.
func (r *RemoteStore) Has(k Key) bool {
	ok, _ := r.hasChecked(k)
	return ok
}

func (r *RemoteStore) putChecked(k Key, payload []byte) error {
	u, err := r.keyURL(k)
	if err != nil {
		return err
	}
	data, err := EncodeEntry(k, payload)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, u, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		r.errors.Add(1)
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		r.errors.Add(1)
		return fmt.Errorf("store: remote PUT %s: status %d", u, resp.StatusCode)
	}
	r.writes.Add(1)
	return nil
}

// Put uploads payload under k as a full entry (checksum and key fields
// included) so the server can verify before storing — both ends check,
// neither trusts the wire.
func (r *RemoteStore) Put(k Key, payload []byte) error {
	return r.putChecked(k, payload)
}

// Counters returns the handle's in-memory access statistics.
func (r *RemoteStore) Counters() Counters {
	return Counters{
		Hits:     r.hits.Load(),
		Misses:   r.misses.Load(),
		Writes:   r.writes.Load(),
		Rejected: r.rejected.Load(),
		Errors:   r.errors.Load(),
	}
}
