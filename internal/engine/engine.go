// Package engine is the one entry point to grid execution: a single
// Run(ctx, spec, RunOptions) call that plans, executes, and merges an
// experiment grid on any of the three execution backends — the
// in-process worker pool, the subprocess dispatcher, or the multi-host
// scheduler — selected by an options field rather than by calling three
// different APIs. It exists to collapse the facade's accreted
// Dispatch/Sched/RunShardCached entry points (each with overlapping
// option structs) into one coordinator that the CLI and the serve
// daemon share.
//
// Unifying guarantees, regardless of backend:
//
//   - the merged output is byte-identical (timing fields aside) to a
//     serial run of the same spec;
//   - a done ctx stops the run promptly (no new cells, workers killed,
//     in-flight host attempts cancelled) and the returned error wraps
//     ctx.Err(); directory-backed runs stay resumable via ResumeRun;
//   - with a result cache, a fully-cached grid is served entirely by
//     the calling process — computed=0 and no worker subprocess or
//     host is ever touched (Report.ServedFromCache).
package engine

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"fairbench/internal/dispatch"
	"fairbench/internal/experiments"
	"fairbench/internal/sched"
	"fairbench/internal/shard"
	"fairbench/internal/store"
)

// Backend selects how a grid's cells are executed.
type Backend string

const (
	// BackendAuto resolves from the options: hosts given → sched, a
	// directory given → dispatch, otherwise in-process.
	BackendAuto Backend = ""
	// BackendInproc runs the grid on this process's worker pool.
	BackendInproc Backend = "inproc"
	// BackendDispatch runs the grid as worker subprocesses coordinated
	// through a dispatch directory (resumable).
	BackendDispatch Backend = "dispatch"
	// BackendSched schedules the grid across a pool of hosts (resumable,
	// cache-aware planning, failure handling).
	BackendSched Backend = "sched"
)

// RunOptions configures one engine run: the union of the knobs the
// three backends understand, deduplicated. Fields a backend does not
// use are ignored by it (documented per field). The zero value runs
// in-process with no cache.
type RunOptions struct {
	// Backend picks the execution backend; BackendAuto resolves from
	// Hosts/Dir as documented on the constants.
	Backend Backend
	// Dir is the run directory holding the manifest and part files.
	// Required for dispatch and sched; unused in-process.
	Dir string
	// Shards is the k of the k-way split (dispatch) or the targeted
	// work-range count of the cache-aware plan (sched). Defaults to
	// Procs (dispatch) or the pool's slot count (sched).
	Shards int
	// Procs caps concurrent worker subprocesses (dispatch) and sizes
	// the default local host's slots (sched with no Hosts).
	Procs int
	// Parallelism sizes the worker pool a single process uses for grid
	// cells: the in-process backend's pool directly, the default for
	// Procs on dispatch, and the default local host's slots on sched.
	// Zero means one worker per CPU. This is the options-first
	// replacement for the deprecated process-global
	// fairbench.SetParallelism.
	Parallelism int
	// Retries is the per-shard re-spawn budget (dispatch) or the number
	// of extra full rounds over the pool (sched).
	Retries int
	// CacheDir, when set, is the fingerprint-keyed result store: cells
	// already computed are served from disk on every backend, and a
	// fully-cached grid short-circuits to ServedFromCache.
	CacheDir string
	// RemoteStore, when set, is a shared HTTP cache URL (a `fairbench
	// cachesrv` or a serve daemon's /cache mount) layered behind
	// CacheDir via store.OpenBackend: cells computed by other machines
	// or past CI runs are served instead of recomputed, and cells this
	// run computes are written through for the rest of the fleet.
	// Dispatch and sched record it in the manifest so workers and
	// resumes inherit it. A remote outage degrades the run to
	// local-only (Report.CacheDegraded) instead of failing it.
	RemoteStore string
	// Hosts is the sched execution pool. Setting it (with BackendAuto)
	// selects the sched backend.
	Hosts []sched.Host
	// HeartbeatTimeout and MaxHostFailures tune sched failure handling.
	HeartbeatTimeout time.Duration
	MaxHostFailures  int
	// Speculate enables sched's speculative execution: straggling
	// ranges are re-launched on an idle host, first valid part wins.
	Speculate bool
	// Backoff is sched's retry backoff base delay (exponential with
	// deterministic jitter); zero keeps sched's default, negative
	// disables backoff.
	Backoff time.Duration
	// LocalFallback lets a sched run whose whole pool is lost complete
	// in-process on the coordinator, marked Report.Degraded.
	LocalFallback bool
	// PoolSource feeds sched dynamic pool membership (joins/leaves
	// mid-run); see sched.PoolChan and sched.WatchHosts.
	PoolSource sched.PoolSource
	// Transports overlays sched's built-in transport registry.
	Transports map[string]sched.Transport
	// Spawn overrides how worker subprocesses are launched (dispatch
	// workers and sched's local transport). Nil re-execs this binary's
	// `worker` subcommand.
	Spawn dispatch.SpawnFunc
	// OnEvent observes sched scheduling events (heartbeats,
	// completions, failures, exclusions); see sched.Options.OnEvent.
	OnEvent func(sched.Event)
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// Report describes what a run did, normalized across backends; the
// backend's native report rides along for callers that need the
// details.
type Report struct {
	// Backend is the backend that actually executed the run.
	Backend Backend
	// Fingerprint identifies the grid (cache/merge identity).
	Fingerprint string
	// Arch is the coordinating process's GOARCH — the architecture the
	// result store keys cells on (see store.Key). Cells cached on one
	// architecture are invisible on another, so a mixed-arch fleet
	// recomputes instead of sharing; surfacing the arch in reports and
	// the serve status makes that visible rather than silent.
	Arch string
	// CellsComputed and CellsCached split the grid's cells by who did
	// the work.
	CellsComputed, CellsCached int
	// ServedFromCache reports that the whole grid was materialized from
	// the result store by the calling process: no worker subprocess was
	// spawned and no host was touched.
	ServedFromCache bool
	// Degraded marks a sched run that completed only through the
	// coordinator's local fallback after the whole pool was lost.
	Degraded bool
	// CacheStats is the coordinating process's result-store counters for
	// this run. Rejected > 0 means cache bytes (on disk or from the
	// remote) failed verification and were recomputed instead of served
	// — correct, but worth an operator's attention. Dispatch workers
	// keep their own counters; for that backend this reflects only the
	// coordinator's plan-time probes.
	CacheStats store.Counters
	// CacheDegraded marks that the tiered store's remote side was
	// declared down mid-run: the run completed on local cache and
	// compute alone, byte-identical, without the fleet-wide cache.
	CacheDegraded bool
	// Dispatch and Sched carry the backend-native report when that
	// backend ran.
	Dispatch *dispatch.Report
	Sched    *sched.Report
}

// Engine executes grids behind one API. The zero value is usable; New
// attaches defaults that every Run/ResumeRun call inherits for fields
// it leaves zero.
type Engine struct {
	defaults RunOptions
}

// New returns an Engine whose per-call options default to defaults:
// any zero field of a Run/ResumeRun call's options is filled from
// here. This is how a daemon pins its state dir, pool, cache, and
// spawn function once while requests carry only per-run knobs.
func New(defaults RunOptions) *Engine { return &Engine{defaults: defaults} }

// merged overlays per-call options on the engine defaults.
func (e *Engine) merged(opts RunOptions) RunOptions {
	d := e.defaults
	if opts.Backend == BackendAuto {
		opts.Backend = d.Backend
	}
	if opts.Dir == "" {
		opts.Dir = d.Dir
	}
	if opts.Shards == 0 {
		opts.Shards = d.Shards
	}
	if opts.Procs == 0 {
		opts.Procs = d.Procs
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = d.Parallelism
	}
	if opts.Retries == 0 {
		opts.Retries = d.Retries
	}
	if opts.CacheDir == "" {
		opts.CacheDir = d.CacheDir
	}
	if opts.RemoteStore == "" {
		opts.RemoteStore = d.RemoteStore
	}
	if opts.Hosts == nil {
		opts.Hosts = d.Hosts
	}
	if opts.HeartbeatTimeout == 0 {
		opts.HeartbeatTimeout = d.HeartbeatTimeout
	}
	if opts.MaxHostFailures == 0 {
		opts.MaxHostFailures = d.MaxHostFailures
	}
	if !opts.Speculate {
		opts.Speculate = d.Speculate
	}
	if opts.Backoff == 0 {
		opts.Backoff = d.Backoff
	}
	if !opts.LocalFallback {
		opts.LocalFallback = d.LocalFallback
	}
	if opts.PoolSource == nil {
		opts.PoolSource = d.PoolSource
	}
	if opts.Transports == nil {
		opts.Transports = d.Transports
	}
	if opts.Spawn == nil {
		opts.Spawn = d.Spawn
	}
	if opts.OnEvent == nil {
		opts.OnEvent = d.OnEvent
	}
	if opts.Log == nil {
		opts.Log = d.Log
	}
	return opts
}

// resolve picks the backend BackendAuto stands for.
func resolve(opts RunOptions) Backend {
	switch {
	case opts.Backend != BackendAuto:
		return opts.Backend
	case len(opts.Hosts) > 0:
		return BackendSched
	case opts.Dir != "":
		return BackendDispatch
	default:
		return BackendInproc
	}
}

// Run executes the spec's grid on the resolved backend and merges the
// result. See the package comment for the cross-backend guarantees.
func (e *Engine) Run(ctx context.Context, spec experiments.Spec, opts RunOptions) (*experiments.Output, *Report, error) {
	opts = e.merged(opts)
	backend := resolve(opts)
	switch backend {
	case BackendInproc:
		return runInproc(ctx, spec, opts)
	case BackendDispatch, BackendSched:
		if opts.Dir == "" {
			return nil, nil, fmt.Errorf("engine: backend %q requires Dir", backend)
		}
		if out, rep, ok, err := serveFromCache(ctx, spec, opts, backend); ok || err != nil {
			return out, rep, err
		}
		if backend == BackendDispatch {
			out, drep, err := dispatch.RunContext(ctx, spec, dispatchOptions(opts))
			return out, fromDispatch(drep), err
		}
		out, srep, err := sched.RunContext(ctx, spec, schedOptions(opts))
		return out, fromSched(srep), err
	default:
		return nil, nil, fmt.Errorf("engine: unknown backend %q", backend)
	}
}

// ResumeRun continues the directory-backed run recorded in dir
// (dispatch or sched — they share the manifest protocol). The sched
// backend is used when the resolved backend is sched; everything else
// resumes through the dispatcher, which handles both directory layouts.
func (e *Engine) ResumeRun(ctx context.Context, dir string, opts RunOptions) (*experiments.Output, *Report, error) {
	opts = e.merged(opts)
	opts.Dir = dir
	if resolve(opts) == BackendSched {
		out, srep, err := sched.ResumeContext(ctx, dir, schedOptions(opts))
		return out, fromSched(srep), err
	}
	out, drep, err := dispatch.ResumeContext(ctx, dir, dispatchOptions(opts))
	return out, fromDispatch(drep), err
}

// runInproc executes the whole grid as one in-process "shard" on the
// runner pool — the path serial CLI commands and library callers take.
func runInproc(ctx context.Context, spec experiments.Spec, opts RunOptions) (*experiments.Output, *Report, error) {
	s, err := store.OpenBackend(opts.CacheDir, opts.RemoteStore)
	if err != nil {
		return nil, nil, err
	}
	env, err := experiments.RunShardContext(ctx, spec, 0, 1, s, opts.Parallelism)
	if err != nil {
		return nil, nil, err
	}
	out, err := experiments.MergeShards([]*shard.Envelope{env})
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		Backend:       BackendInproc,
		Arch:          runtime.GOARCH,
		Fingerprint:   env.Fingerprint,
		CellsComputed: len(env.Indices) - len(env.Cached),
		CellsCached:   len(env.Cached),
	}
	attachCache(rep, s)
	return out, rep, nil
}

// attachCache copies a store handle's counters (and, for tiered stores,
// the remote-outage latch) onto the report — the one place every
// backend's cache observability goes through.
func attachCache(rep *Report, s store.Backend) {
	if rep == nil || s == nil {
		return
	}
	rep.CacheStats = s.Counters()
	if td, ok := s.(*store.TieredStore); ok && td.Degraded() {
		rep.CacheDegraded = true
	}
}

// serveFromCache is the warm-grid short-circuit for the process-backed
// backends: when a fresh run's grid is fully served by the result
// store, the coordinator materializes it directly — computed=0, no
// subprocess spawned, no host touched. Runs that already have a
// manifest (interrupted, being resumed by Run) fall through so the
// directory protocol stays in charge.
func serveFromCache(ctx context.Context, spec experiments.Spec, opts RunOptions, backend Backend) (*experiments.Output, *Report, bool, error) {
	if opts.CacheDir == "" && opts.RemoteStore == "" {
		return nil, nil, false, nil
	}
	if _, err := os.Stat(filepath.Join(opts.Dir, "manifest.json")); err == nil {
		return nil, nil, false, nil
	}
	s, err := store.OpenBackend(opts.CacheDir, opts.RemoteStore)
	if err != nil {
		return nil, nil, false, err
	}
	plan, err := experiments.PlanShardsCacheAware(spec, 1, s)
	if err != nil {
		return nil, nil, false, err
	}
	if plan.TotalUncached() > 0 {
		return nil, nil, false, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, false, fmt.Errorf("engine: cancelled before serving cached grid: %w", err)
	}
	envs := make([]*shard.Envelope, len(plan.Ranges))
	for i := range plan.Ranges {
		// Single-pass plan+serve: planning already read and verified every
		// cached payload, so materialize the envelopes from those bytes.
		// The fallback covers entries that went bad between probe and
		// serve — RunShardPlanned then recomputes them like any cache miss.
		if env, ok := plan.ServeEnvelope(i); ok {
			envs[i] = env
			continue
		}
		if envs[i], err = experiments.RunShardPlanned(spec, plan.Ranges, i, s); err != nil {
			return nil, nil, false, err
		}
	}
	out, err := experiments.MergeShards(envs)
	if err != nil {
		return nil, nil, false, err
	}
	cached := 0
	for _, env := range envs {
		cached += len(env.Cached)
	}
	fp := ""
	if len(envs) > 0 {
		fp = envs[0].Fingerprint
	}
	if opts.Log != nil {
		src := opts.CacheDir
		if src == "" {
			src = opts.RemoteStore
		}
		fmt.Fprintf(opts.Log, "engine: grid fully cached — served %d cell(s) from %s without touching a worker or host\n", cached, src)
	}
	rep := &Report{
		Backend:         backend,
		Arch:            runtime.GOARCH,
		Fingerprint:     fp,
		CellsCached:     cached,
		ServedFromCache: true,
	}
	attachCache(rep, s)
	return out, rep, true, nil
}

func dispatchOptions(opts RunOptions) dispatch.Options {
	procs := opts.Procs
	if procs == 0 {
		// Parallelism is the cross-backend pool knob: on dispatch it
		// bounds concurrent worker subprocesses unless Procs pins them.
		procs = opts.Parallelism
	}
	return dispatch.Options{
		Dir:         opts.Dir,
		Shards:      opts.Shards,
		Procs:       procs,
		Retries:     opts.Retries,
		CacheDir:    opts.CacheDir,
		RemoteStore: opts.RemoteStore,
		Spawn:       opts.Spawn,
		Log:         opts.Log,
	}
}

func schedOptions(opts RunOptions) sched.Options {
	hosts := opts.Hosts
	if len(hosts) == 0 && opts.Parallelism > 0 {
		// No explicit pool: Parallelism sizes the default local host, so
		// the cross-backend pool knob reaches sched too.
		hosts = []sched.Host{{Name: "local", Slots: opts.Parallelism}}
	}
	transports := opts.Transports
	if opts.Spawn != nil && (transports == nil || transports["local"] == nil) {
		// Route the spawn override through the local transport so one
		// RunOptions field covers both process-backed backends.
		merged := map[string]sched.Transport{"local": &sched.LocalExec{Spawn: opts.Spawn}}
		for name, t := range transports {
			merged[name] = t
		}
		transports = merged
	}
	return sched.Options{
		Dir:              opts.Dir,
		Hosts:            hosts,
		Shards:           opts.Shards,
		CacheDir:         opts.CacheDir,
		RemoteStore:      opts.RemoteStore,
		HeartbeatTimeout: opts.HeartbeatTimeout,
		Retries:          opts.Retries,
		MaxHostFailures:  opts.MaxHostFailures,
		Speculate:        opts.Speculate,
		Backoff:          opts.Backoff,
		LocalFallback:    opts.LocalFallback,
		PoolSource:       opts.PoolSource,
		Transports:       transports,
		OnEvent:          opts.OnEvent,
		Log:              opts.Log,
	}
}

func fromDispatch(rep *dispatch.Report) *Report {
	if rep == nil {
		return nil
	}
	return &Report{
		Backend:       BackendDispatch,
		Arch:          runtime.GOARCH,
		Fingerprint:   rep.Fingerprint,
		CellsComputed: rep.CellsComputed,
		CellsCached:   rep.CellsCached,
		Dispatch:      rep,
	}
}

func fromSched(rep *sched.Report) *Report {
	if rep == nil {
		return nil
	}
	return &Report{
		Backend:       BackendSched,
		Arch:          runtime.GOARCH,
		Fingerprint:   rep.Fingerprint,
		CellsComputed: rep.CellsComputed,
		CellsCached:   rep.CellsCached,
		Degraded:      rep.Degraded,
		CacheStats:    rep.Cache,
		CacheDegraded: rep.CacheDegraded,
		Sched:         rep,
	}
}
