package inproc

import (
	"fmt"

	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/matrix"
	"fairbench/internal/rng"
)

// ZhaLe implements Zhang, Lemoine & Mitchell's adversarial debiasing for
// equalized odds: a logistic classifier f(X) -> Ŷ is trained jointly with
// a logistic adversary a(Ŷ_prob, Y) -> Ŝ. The adversary descends on its
// own loss; the classifier descends on its prediction loss while ascending
// on the adversary's (gradient reversal with strength Alpha), converging
// to weights from which the adversary cannot recover S given Y — i.e.
// equalized odds.
type ZhaLe struct {
	// Alpha is the adversarial gradient weight (default 1.0).
	Alpha float64
	// Epochs is the number of alternating passes (default 80).
	Epochs int
	// Step is the learning rate for both players (default 0.1).
	Step float64
	// Seed drives shuffling.
	Seed int64

	base linearBase
	adv  [4]float64 // adversary weights over [p̂, y, p̂·y] + bias
}

// Name implements fair.Approach.
func (z *ZhaLe) Name() string { return "ZhaLe-EO" }

// Stage implements fair.Approach.
func (z *ZhaLe) Stage() fair.Stage { return fair.StageIn }

// Targets implements fair.Approach.
func (z *ZhaLe) Targets() []fair.Metric {
	return []fair.Metric{fair.MetricTPRB, fair.MetricTNRB}
}

// Fit implements fair.Approach.
func (z *ZhaLe) Fit(train *dataset.Dataset) error {
	if z.Alpha == 0 {
		z.Alpha = 1.0
	}
	if z.Epochs == 0 {
		z.Epochs = 80
	}
	if z.Step == 0 {
		z.Step = 0.1
	}
	z.base.includeS = false
	x := z.base.designMatrix(train)
	y, s := train.Y, train.S
	n := len(x)
	dim := len(x[0])
	w := make([]float64, dim+1)
	var phi [4]float64
	g := rng.New(z.Seed)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	for epoch := 0; epoch < z.Epochs; epoch++ {
		g.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		// Decay both steps mildly for stability.
		lr := z.Step / (1 + 0.02*float64(epoch))
		for _, i := range order {
			row := x[i]
			// Classifier forward.
			zc := w[dim]
			for j, v := range row {
				zc += w[j] * v
			}
			p := matrix.Sigmoid(zc)
			yi := float64(y[i])
			// Adversary forward on u = [p, y, p*y].
			u := [3]float64{p, yi, p * yi}
			za := phi[3]
			for k := 0; k < 3; k++ {
				za += phi[k] * u[k]
			}
			ps := matrix.Sigmoid(za)
			si := float64(s[i])

			// Adversary update: minimize its own log loss.
			da := ps - si
			for k := 0; k < 3; k++ {
				phi[k] -= lr * da * u[k]
			}
			phi[3] -= lr * da

			// Classifier update: descend prediction loss, ascend
			// adversary loss. dLa/dp = da*(phi0 + phi2*y); chain through
			// dp/dz = p(1-p).
			dLf := p - yi
			dLaDp := da * (phi[0] + phi[2]*yi)
			// The prediction-loss part uses dLf directly (logistic
			// gradient); the adversarial part flows through sigmoid'.
			gradScale := dLf - z.Alpha*dLaDp*p*(1-p)
			for j, v := range row {
				w[j] -= lr * gradScale * v
			}
			w[dim] -= lr * gradScale
		}
	}
	z.base.w = w
	z.adv = phi
	return nil
}

// Predict implements fair.Approach.
func (z *ZhaLe) Predict(test *dataset.Dataset) ([]int, error) {
	if z.base.w == nil {
		return nil, fmt.Errorf("%s: not fitted", z.Name())
	}
	return z.base.predictAll(test), nil
}

// PredictOne implements fair.Approach.
func (z *ZhaLe) PredictOne(x []float64, s int) int { return z.base.predictOne(x, s) }

// AdversaryAccuracy reports how well the trained adversary recovers S on a
// dataset — a diagnostic: near 50% means the classifier leaks no group
// information through (Ŷ, Y).
func (z *ZhaLe) AdversaryAccuracy(d *dataset.Dataset) float64 {
	if z.base.w == nil {
		return 0
	}
	correct := 0
	for i := range d.X {
		row := z.base.row(d.X[i], d.S[i])
		p := matrix.Sigmoid(z.base.score(row))
		yi := float64(d.Y[i])
		za := z.adv[3] + z.adv[0]*p + z.adv[1]*yi + z.adv[2]*p*yi
		pred := 0
		if matrix.Sigmoid(za) >= 0.5 {
			pred = 1
		}
		if pred == d.S[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

// NewZhaLe returns the evaluated Zha-Le^eo approach.
func NewZhaLe(seed int64) fair.Approach { return &ZhaLe{Seed: seed} }
