package store

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// stubTransport answers every request with a fixed status and body —
// the adversarial wire: whatever bytes the fuzzer invents, delivered as
// a well-formed HTTP 200.
type stubTransport struct {
	status int
	body   []byte
}

func (s stubTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode: s.status,
		Body:       io.NopCloser(bytes.NewReader(s.body)),
		Header:     make(http.Header),
		Request:    r,
	}, nil
}

// FuzzRemoteStoreDecode feeds arbitrary bytes to RemoteStore.Get as a
// 200 response body. The invariants: the client never panics, and a
// payload is returned only if the bytes independently pass DecodeEntry's
// full verification for the requested key — the remote can be wrong,
// hostile, or insane, but it can never sneak an unverified payload into
// a run.
func FuzzRemoteStoreDecode(f *testing.F) {
	k := Key{Fingerprint: strings.Repeat("ab", 32), Index: 3, Seed: 42, Arch: "amd64"}
	if good, err := EncodeEntry(k, []byte(`{"index":3}`)); err != nil {
		f.Fatal(err)
	} else {
		f.Add(good)
		f.Add(good[:len(good)/2])
	}
	f.Add([]byte(nil))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"fingerprint":"` + strings.Repeat("ab", 32) + `","index":3,"seed":42,"arch":"amd64","sha256":"","payload":{}}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, body []byte) {
		r, err := NewRemote("http://fuzz.invalid/cache")
		if err != nil {
			t.Fatal(err)
		}
		r.client.Transport = stubTransport{status: http.StatusOK, body: body}
		payload, ok := r.Get(k)
		want, verr := DecodeEntry(k, body)
		if ok != (verr == nil) {
			t.Fatalf("Get ok=%v but independent verification says err=%v", ok, verr)
		}
		if ok && !bytes.Equal(payload, want) {
			t.Fatalf("Get returned %q, verification says %q", payload, want)
		}
	})
}

// FuzzDecodeKeyPath holds the codec's round-trip law on the decode
// side: DecodeKeyPath never panics, and every accepted path is the
// canonical rendering of the key it decodes to — encode(decode(p)) == p.
func FuzzDecodeKeyPath(f *testing.F) {
	f.Add(strings.Repeat("ab", 32) + "/amd64/42/3")
	f.Add(strings.Repeat("ab", 32) + "/arm64/-7/0")
	f.Add("short/amd64/1/1")
	f.Add("../../../etc/passwd")
	f.Add(strings.Repeat("ab", 32) + "/amd64/007/3")
	f.Add("")
	f.Fuzz(func(t *testing.T, p string) {
		k, err := DecodeKeyPath(p)
		if err != nil {
			return
		}
		if got := EncodeKeyPath(k); got != p {
			t.Fatalf("accepted %q but re-encodes as %q", p, got)
		}
	})
}

// FuzzEncodeKeyPath holds the other direction: every key the encoder
// renders decodes back to itself — decode(encode(k)) == k — and keys
// the encoder refuses are exactly the ones ParseKeyFields rejects.
func FuzzEncodeKeyPath(f *testing.F) {
	f.Add(strings.Repeat("ab", 32), "amd64", int64(42), 3)
	f.Add(strings.Repeat("ab", 8), "arm64", int64(-1), 0)
	f.Add("UPPER", "amd64", int64(1), 1)
	f.Add("", "", int64(0), -5)
	f.Fuzz(func(t *testing.T, fp, arch string, seed int64, index int) {
		k := Key{Fingerprint: fp, Index: index, Seed: seed, Arch: arch}
		p := EncodeKeyPath(k)
		if p == "" {
			if ParseKeyFields(fp, arch, strconv.FormatInt(seed, 10), strconv.Itoa(index)) != (Key{}) {
				t.Fatalf("encoder refused a key ParseKeyFields accepts: %+v", k)
			}
			return
		}
		k2, err := DecodeKeyPath(p)
		if err != nil {
			t.Fatalf("encoded %q does not decode: %v", p, err)
		}
		if k2 != k {
			t.Fatalf("round trip %+v -> %q -> %+v", k, p, k2)
		}
	})
}
