package inproc

import (
	"math"
	"testing"

	"fairbench/internal/fair"
	"fairbench/internal/metrics"
)

func TestAgarwalDPImprovesDI(t *testing.T) {
	train, test := trainTest(t, 3000)
	base := baselineDI(t, train, test)
	a := NewAgarwalDP()
	yhat := fitPredict(t, a, train, test)
	di := metrics.DIStar(metrics.DisparateImpact(test, yhat))
	if di < base {
		t.Fatalf("Agarwal-DP DI* %v not above baseline %v", di, base)
	}
	if id := metrics.IndividualDiscrimination(test, a); id != 0 {
		t.Fatalf("Agarwal drops S, ID must be 0: %v", id)
	}
}

func TestAgarwalEOImprovesOdds(t *testing.T) {
	train, test := trainTest(t, 3000)
	b := fair.NewBaseline()
	byhat := fitPredict(t, b, train, test)
	baseTPRB := math.Abs(metrics.TPRBalance(test, byhat))
	a := NewAgarwalEO()
	yhat := fitPredict(t, a, train, test)
	if got := math.Abs(metrics.TPRBalance(test, yhat)); got > baseTPRB+0.02 {
		t.Fatalf("Agarwal-EO TPRB %v vs baseline %v", got, baseTPRB)
	}
}

func TestAgarwalIdentity(t *testing.T) {
	dp, eo := NewAgarwalDP(), NewAgarwalEO()
	if dp.Name() != "Agarwal-DP" || eo.Name() != "Agarwal-EO" {
		t.Fatal("names")
	}
	if dp.Stage() != fair.StageIn {
		t.Fatal("stage")
	}
	if dp.Targets()[0] != fair.MetricDI {
		t.Fatal("dp target")
	}
	if len(eo.Targets()) != 2 {
		t.Fatal("eo targets")
	}
	_, test := trainTest(t, 200)
	if _, err := dp.Predict(test); err == nil {
		t.Fatal("predict before fit must error")
	}
}
