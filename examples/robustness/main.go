// Robustness: train fair classifiers on error-injected COMPAS data
// (Section 4.4's T1-T3 templates) and watch which pipeline stages survive
// — post-processing degrades gracefully, pre-/in-processing lose their
// fairness guarantees.
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"

	"fairbench"
)

func main() {
	src := fairbench.COMPAS(4000, 5)
	train, test := fairbench.Split(src.Data, 0.7, 31)

	// One representative per stage plus the baseline.
	names := []string{"LR", "KamCal-DP", "ZhaLe-EO", "Hardt-EO"}

	evalOn := func(trainSet *fairbench.Dataset) map[string]fairbench.Row {
		out := map[string]fairbench.Row{}
		for _, name := range names {
			a, err := fairbench.NewApproach(name, src.Graph, 9)
			if err != nil {
				log.Fatal(err)
			}
			row, err := fairbench.Evaluate(a, trainSet, test, src.Graph)
			if err != nil {
				log.Fatal(err)
			}
			out[name] = row
		}
		return out
	}

	clean := evalOn(train)
	fmt.Println("Clean training data:")
	for _, name := range names {
		r := clean[name]
		fmt.Printf("  %-10s acc=%.3f DI*=%.3f 1-|TPRB|=%.3f\n",
			name, r.Correct.Accuracy, r.Fair.DIStar, r.Fair.TPRB)
	}

	for _, tmpl := range []fairbench.ErrorTemplate{fairbench.T1, fairbench.T2, fairbench.T3} {
		dirty, err := fairbench.Corrupt(train, tmpl, 100+int64(tmpl))
		if err != nil {
			log.Fatal(err)
		}
		rows := evalOn(dirty)
		fmt.Printf("\nTraining on %s-corrupted data (50%% unprivileged / 10%% privileged):\n", tmpl)
		for _, name := range names {
			r, c := rows[name], clean[name]
			fmt.Printf("  %-10s acc=%.3f (Δ%+.3f)  DI*=%.3f (Δ%+.3f)  1-|TPRB|=%.3f (Δ%+.3f)\n",
				name,
				r.Correct.Accuracy, r.Correct.Accuracy-c.Correct.Accuracy,
				r.Fair.DIStar, r.Fair.DIStar-c.Fair.DIStar,
				r.Fair.TPRB, r.Fair.TPRB-c.Fair.TPRB)
		}
	}
	fmt.Println("\nPost-processing only reads (Ŷ, S, Y), so feature-level errors (T1, T2)")
	fmt.Println("barely touch it; the sensitive-attribute/label template (T3) is the one")
	fmt.Println("that hurts every stage — the paper's Section 4.4 finding.")
}
