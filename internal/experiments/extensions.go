package experiments

import (
	"fairbench/internal/registry"
	"fairbench/internal/synth"
)

// Extensions reproduces the appendix's Figure 15: the three additional
// variants (Madras^dp, Agarwal^dp, Agarwal^eo) evaluated on one dataset
// alongside the baseline, with the same protocol as Figure 7.
func Extensions(src *synth.Source, seed int64) ([]Row, error) {
	if out, ok, err := specOutput(src, seed, Spec{Experiment: "fig15"}); ok {
		if err != nil {
			return nil, err
		}
		return out.Rows, nil
	}
	out, err := extensionsGrid(src, seed).RunAll()
	if err != nil {
		return nil, err
	}
	return out.Rows, nil
}

func extensionsGrid(src *synth.Source, seed int64) *Grid {
	return baselineRowsGrid(src, append([]string{"LR"}, registry.ExtendedNames...), seed)
}
