// Package serve turns the execution engine into benchmark-as-a-service:
// a persistent HTTP/JSON daemon that accepts grid specs, executes them
// on the engine's backends, and serves results to many concurrent
// clients. It is the layer that makes the stack's guarantees —
// byte-identical merges, fingerprint-keyed caching, resumable
// directories — hold for traffic instead of one-shot CLI invocations.
//
// The HTTP surface:
//
//	POST /runs              submit a GridSpec; returns a run handle
//	GET  /runs              list known runs
//	GET  /runs/{id}         status snapshot (state, progress, cell split)
//	GET  /runs/{id}/stream  chunked JSON: partial rows as shards land
//	GET  /runs/{id}/table   the rendered tables (byte-identical to CLI)
//	GET  /metrics           Prometheus text: runs, cells, store, hosts
//	GET  /healthz           liveness
//
// Server-side semantics:
//
//   - one computation per grid: a run's id is a prefix of its grid
//     fingerprint, so concurrent submissions of the same grid dedupe
//     onto one executing run with many waiters;
//   - warm serving: a fully-cached grid is materialized from the
//     result store by the daemon itself — computed=0, no worker
//     subprocess, no host;
//   - admission control: when MaxConcurrent runs are executing, new
//     grids are rejected with 429 and a Retry-After hint rather than
//     queued without bound;
//   - graceful drain: Drain stops admission and cancels in-flight runs;
//     because every run lives in a manifest-backed directory under
//     StateDir, a drained (or killed) daemon's runs resume on restart
//     via ResumeInterrupted and still merge byte-identical to serial.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"fairbench/internal/dispatch"
	"fairbench/internal/engine"
	"fairbench/internal/experiments"
	"fairbench/internal/report"
	"fairbench/internal/sched"
	"fairbench/internal/shard"
	"fairbench/internal/store"
)

// Config configures a Server. StateDir is required; everything else
// has serviceable defaults.
type Config struct {
	// StateDir is the daemon's root: each run gets a resumable
	// manifest-backed subdirectory StateDir/<id>. Created if missing.
	StateDir string
	// CacheDir, when set, is the shared result store: runs serve
	// already-computed cells from it and fully-cached grids never
	// reach a worker. It is also exported to the fleet: the daemon
	// mounts the content-addressed cache protocol at /cache/, so other
	// machines point -remote-store at this daemon and share its cells.
	CacheDir string
	// RemoteStore, when set, layers an upstream shared cache URL behind
	// CacheDir for this daemon's own runs (see engine.RunOptions) —
	// daemons can chain to a central `fairbench cachesrv`.
	RemoteStore string
	// MaxConcurrent caps concurrently executing runs; submissions
	// beyond it are rejected with 429. Default 1 (each run already
	// parallelizes across the worker pool).
	MaxConcurrent int
	// Shards, Procs, Retries configure the engine per run (see
	// engine.RunOptions).
	Shards, Procs, Retries int
	// Parallelism sizes each run's single-process worker pool (see
	// engine.RunOptions.Parallelism); zero means one worker per CPU.
	Parallelism int
	// Hosts, when non-empty, makes runs execute on the sched backend
	// across this pool; otherwise runs use subprocess dispatch.
	Hosts []sched.Host
	// HeartbeatTimeout and MaxHostFailures tune sched failure handling.
	HeartbeatTimeout time.Duration
	MaxHostFailures  int
	// Speculate enables sched speculative execution for every run.
	Speculate bool
	// Backoff is sched's retry backoff base (negative disables).
	Backoff time.Duration
	// LocalFallback lets sched runs complete in-process (Degraded) when
	// the whole pool is lost.
	LocalFallback bool
	// Transports overlays sched's transport registry (tests).
	Transports map[string]sched.Transport
	// Spawn overrides worker subprocess creation (tests).
	Spawn dispatch.SpawnFunc
	// StreamInterval is how often /runs/{id}/stream polls for newly
	// landed shards. Default 100ms.
	StreamInterval time.Duration
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// runState is the lifecycle of one run.
type runState string

const (
	stateRunning runState = "running"
	stateDone    runState = "done"
	stateFailed  runState = "failed"
)

// run is one deduplicated grid computation and its result.
type run struct {
	id   string
	dir  string
	spec experiments.Spec

	mu       sync.Mutex
	state    runState
	errMsg   string
	output   *experiments.Output
	report   *engine.Report
	started  time.Time
	finished time.Time

	cancel context.CancelFunc
	done   chan struct{}
}

// hostHealth aggregates sched events for one pool member.
type hostHealth struct {
	lastBeat   time.Time
	completed  int64
	failed     int64
	speculated int64
	excluded   bool
	departed   bool
}

// Server is the benchmark-as-a-service daemon state. Create with New,
// mount Handler on an http.Server, and call Drain on shutdown.
type Server struct {
	cfg Config
	eng *engine.Engine

	// pool fans dynamic membership changes (the POST /pool admin
	// endpoint) out to every running sched-backed run.
	pool *sched.PoolChan

	mu       sync.Mutex
	runs     map[string]*run
	active   int
	draining bool
	hosts    map[string]*hostHealth
	counters struct {
		submitted, deduped, completed, failed, resumed int64
		cellsComputed, cellsCached                     int64
		speculated, joined, departed, degraded         int64
		storeRejected, cacheDegraded                   int64
	}

	// cacheStore is the daemon's handle on CacheDir, opened once: it
	// backs the /cache/ protocol mount and the store gauges/counters in
	// /metrics. Nil when no CacheDir is configured.
	cacheStore *store.DiskStore

	wg         sync.WaitGroup
	baseCtx    context.Context
	baseCancel context.CancelFunc
}

// New builds a Server over cfg, creating StateDir if needed. Call
// ResumeInterrupted afterwards to pick up runs a previous daemon left
// unfinished.
func New(cfg Config) (*Server, error) {
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("serve: Config.StateDir is required")
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, err
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 1
	}
	if cfg.StreamInterval <= 0 {
		cfg.StreamInterval = 100 * time.Millisecond
	}
	s := &Server{
		cfg:  cfg,
		runs: map[string]*run{},
		pool: sched.NewPoolChan(),
	}
	s.hosts = map[string]*hostHealth{}
	if cfg.CacheDir != "" {
		st, err := store.Open(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		s.cacheStore = st
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.eng = engine.New(engine.RunOptions{
		Shards:           cfg.Shards,
		Procs:            cfg.Procs,
		Parallelism:      cfg.Parallelism,
		Retries:          cfg.Retries,
		CacheDir:         cfg.CacheDir,
		RemoteStore:      cfg.RemoteStore,
		Hosts:            cfg.Hosts,
		HeartbeatTimeout: cfg.HeartbeatTimeout,
		MaxHostFailures:  cfg.MaxHostFailures,
		Speculate:        cfg.Speculate,
		Backoff:          cfg.Backoff,
		LocalFallback:    cfg.LocalFallback,
		PoolSource:       s.pool,
		Transports:       cfg.Transports,
		Spawn:            cfg.Spawn,
		OnEvent:          s.onSchedEvent,
		Log:              cfg.Log,
	})
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

// onSchedEvent feeds /metrics per-host health from the scheduler's
// event stream. Called concurrently from scheduler goroutines.
func (s *Server) onSchedEvent(ev sched.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.hosts[ev.Host]
	if h == nil {
		h = &hostHealth{}
		s.hosts[ev.Host] = h
	}
	switch ev.Type {
	case sched.EventHeartbeat:
		h.lastBeat = time.Now()
	case sched.EventCompleted:
		h.completed++
	case sched.EventFailed:
		h.failed++
	case sched.EventExcluded:
		h.excluded = true
	case sched.EventSpeculated:
		h.speculated++
		s.counters.speculated++
	case sched.EventJoined:
		// A (re)join clears prior exclusion/departure: the scheduler
		// trusts the host again, so health reporting should too.
		h.excluded, h.departed = false, false
		s.counters.joined++
	case sched.EventDeparted:
		h.departed = true
		s.counters.departed++
	}
}

// RunID returns the run id the spec's grid dedupes onto: a prefix of
// the grid fingerprint, so identical grids collide by construction.
func RunID(spec experiments.Spec) (string, error) {
	g, err := experiments.Open(spec)
	if err != nil {
		return "", err
	}
	fp, err := g.Fingerprint()
	if err != nil {
		return "", err
	}
	return fp[:16], nil
}

const (
	specFileName   = "spec.json"
	outputFileName = "output.json"
	reportFileName = "report.json"
)

// ResumeInterrupted scans StateDir for runs a previous daemon left
// behind: completed runs (an output.json) are registered as done, and
// unfinished manifest-backed runs are relaunched through the engine's
// resume path. Returns how many runs were relaunched.
func (s *Server) ResumeInterrupted() (int, error) {
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		return 0, err
	}
	resumed := 0
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		id := ent.Name()
		dir := filepath.Join(s.cfg.StateDir, id)
		spec, err := readSpec(dir)
		if err != nil {
			s.logf("serve: skipping %s: %v", dir, err)
			continue
		}
		r := &run{id: id, dir: dir, spec: spec, done: make(chan struct{}), started: time.Now()}
		if data, err := os.ReadFile(filepath.Join(dir, outputFileName)); err == nil {
			var out experiments.Output
			if json.Unmarshal(data, &out) == nil {
				r.state = stateDone
				r.output = &out
				r.report = readReport(dir)
				r.finished = time.Now()
				close(r.done)
				s.mu.Lock()
				s.runs[id] = r
				s.mu.Unlock()
				continue
			}
		}
		if _, err := os.Stat(filepath.Join(dir, dispatch.ManifestName)); err != nil {
			// Admitted but never planned (killed pre-manifest): run fresh.
			s.launch(r, false)
		} else {
			s.launch(r, true)
		}
		resumed++
		s.counters.resumed++
		s.logf("serve: resuming interrupted run %s (%s/%s)", id, spec.Experiment, spec.Dataset)
	}
	return resumed, nil
}

// readSpec recovers a run's grid spec from its directory: the
// spec.json the server wrote at admission, else the manifest.
func readSpec(dir string) (experiments.Spec, error) {
	if data, err := os.ReadFile(filepath.Join(dir, specFileName)); err == nil {
		var spec experiments.Spec
		if err := json.Unmarshal(data, &spec); err == nil {
			return spec, nil
		}
	}
	m, err := dispatch.ReadManifest(filepath.Join(dir, dispatch.ManifestName))
	if err != nil {
		return experiments.Spec{}, fmt.Errorf("no readable spec.json or manifest")
	}
	return m.Spec, nil
}

func readReport(dir string) *engine.Report {
	data, err := os.ReadFile(filepath.Join(dir, reportFileName))
	if err != nil {
		return nil
	}
	var rep engine.Report
	if json.Unmarshal(data, &rep) != nil {
		return nil
	}
	return &rep
}

// launch registers and starts (or resumes) a run's computation on the
// engine. Caller must not hold s.mu.
func (s *Server) launch(r *run, resume bool) {
	s.mu.Lock()
	s.registerLocked(r)
	s.mu.Unlock()
	s.start(r, resume)
}

// registerLocked publishes a run as executing and takes its admission
// slot; s.mu must be held. Registering under the same lock hold as the
// admitLocked check keeps a burst of distinct grids from over-admitting
// past MaxConcurrent.
func (s *Server) registerLocked(r *run) {
	r.state = stateRunning
	s.runs[r.id] = r
	s.active++
}

// start runs a registered run's computation; pair with registerLocked.
func (s *Server) start(r *run, resume bool) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	r.cancel = cancel
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		var (
			out *experiments.Output
			rep *engine.Report
			err error
		)
		if resume {
			out, rep, err = s.eng.ResumeRun(ctx, r.dir, engine.RunOptions{})
		} else {
			out, rep, err = s.eng.Run(ctx, r.spec, engine.RunOptions{Dir: r.dir})
		}
		s.finish(r, out, rep, err)
	}()
}

// finish records a run's outcome and persists the output so a restart
// serves it without recomputation.
func (s *Server) finish(r *run, out *experiments.Output, rep *engine.Report, err error) {
	r.mu.Lock()
	r.finished = time.Now()
	r.report = rep
	if err != nil {
		r.state = stateFailed
		r.errMsg = err.Error()
	} else {
		r.state = stateDone
		r.output = out
		if data, merr := json.Marshal(out); merr == nil {
			if werr := store.WriteFileAtomic(filepath.Join(r.dir, outputFileName), data); werr != nil {
				s.logf("serve: run %s: persisting output: %v", r.id, werr)
			}
		}
		if rep != nil {
			if data, merr := json.Marshal(rep); merr == nil {
				if werr := store.WriteFileAtomic(filepath.Join(r.dir, reportFileName), data); werr != nil {
					s.logf("serve: run %s: persisting report: %v", r.id, werr)
				}
			}
		}
	}
	r.mu.Unlock()
	s.mu.Lock()
	s.active--
	if err != nil {
		s.counters.failed++
	} else {
		s.counters.completed++
		if rep != nil {
			s.counters.cellsComputed += int64(rep.CellsComputed)
			s.counters.cellsCached += int64(rep.CellsCached)
			if rep.Degraded {
				s.counters.degraded++
			}
		}
	}
	if rep != nil {
		// Surfaced regardless of run outcome: rejects mean cache bytes
		// failed verification somewhere; a degraded cache means the run
		// lost its remote tier mid-flight.
		s.counters.storeRejected += rep.CacheStats.Rejected
		if rep.CacheDegraded {
			s.counters.cacheDegraded++
		}
	}
	s.mu.Unlock()
	close(r.done)
	if err != nil {
		s.logf("serve: run %s failed: %v", r.id, err)
	} else if rep != nil && rep.Degraded {
		s.logf("serve: run %s done DEGRADED: pool lost, completed via local fallback, computed=%d cached=%d", r.id, rep.CellsComputed, rep.CellsCached)
	} else if rep != nil && rep.ServedFromCache {
		s.logf("serve: run %s done: fully cached, computed=0 cached=%d", r.id, rep.CellsCached)
	} else if rep != nil {
		s.logf("serve: run %s done: computed=%d cached=%d", r.id, rep.CellsComputed, rep.CellsCached)
	}
}

// Drain stops admitting new runs and cancels in-flight ones; their
// directories checkpoint (completed parts and cached cells survive),
// so they resume on the next daemon start. Blocks until every run
// goroutine has wound down or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.baseCancel()
	finished := make(chan struct{})
	go func() { s.wg.Wait(); close(finished) }()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain timed out: %w", ctx.Err())
	}
}

// Handler mounts the HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleStatus)
	mux.HandleFunc("GET /runs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /runs/{id}/table", s.handleTable)
	mux.HandleFunc("POST /pool", s.handlePool)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cacheStore != nil {
		// The fleet-facing side of the shared cache: other machines set
		// -remote-store http://this-daemon/cache and read/write the same
		// verified entries this daemon's own runs use.
		mux.Handle("/cache/", http.StripPrefix("/cache", store.Handler(s.cacheStore)))
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	return mux
}

// runStatus is the wire shape of one run's status.
type runStatus struct {
	ID          string `json:"id"`
	Status      string `json:"status"`
	Error       string `json:"error,omitempty"`
	Experiment  string `json:"experiment"`
	Dataset     string `json:"dataset,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Backend     string `json:"backend,omitempty"`
	// Arch is the coordinator's GOARCH — the architecture the result
	// store keys cells on. A mixed-arch fleet shares no cache entries
	// across architectures (it silently recomputes), so surfacing the
	// arch lets operators spot that before blaming the cache.
	Arch string `json:"arch,omitempty"`
	// Deduped marks a submission that attached to an existing run
	// instead of starting a computation.
	Deduped bool `json:"deduped,omitempty"`
	// PartsDone/PartsTotal track shard envelopes landed in the run
	// directory (0/0 until the plan is written, and for cache-served
	// runs, which never materialize parts).
	PartsDone  int `json:"partsDone"`
	PartsTotal int `json:"partsTotal"`
	// CellsComputed/CellsCached split the grid by who did the work;
	// ServedFromCache marks a run the store answered entirely.
	CellsComputed   int  `json:"cellsComputed"`
	CellsCached     int  `json:"cellsCached"`
	ServedFromCache bool `json:"servedFromCache,omitempty"`
	// Degraded marks a run that lost its whole pool and completed via
	// the scheduler's local in-process fallback.
	Degraded bool `json:"degraded,omitempty"`
	// CacheRejected counts cache entries this run's coordinator rejected
	// at read verification (recomputed instead of served).
	CacheRejected int64 `json:"cacheRejected,omitempty"`
	// CacheDegraded marks a run whose tiered store lost its remote side
	// and finished on local cache and compute alone.
	CacheDegraded bool `json:"cacheDegraded,omitempty"`
}

func (s *Server) statusOf(r *run, deduped bool) runStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := runStatus{
		ID:         r.id,
		Status:     string(r.state),
		Error:      r.errMsg,
		Experiment: r.spec.Experiment,
		Dataset:    r.spec.Dataset,
		Deduped:    deduped,
	}
	if r.report != nil {
		st.Fingerprint = r.report.Fingerprint
		st.Backend = string(r.report.Backend)
		st.Arch = r.report.Arch
		st.CellsComputed = r.report.CellsComputed
		st.CellsCached = r.report.CellsCached
		st.ServedFromCache = r.report.ServedFromCache
		st.Degraded = r.report.Degraded
		st.CacheRejected = r.report.CacheStats.Rejected
		st.CacheDegraded = r.report.CacheDegraded
	}
	if m, err := dispatch.ReadManifest(filepath.Join(r.dir, dispatch.ManifestName)); err == nil {
		st.PartsTotal = m.Shards
		for i := 0; i < m.Shards; i++ {
			if _, err := os.Stat(filepath.Join(r.dir, dispatch.PartName(i))); err == nil {
				st.PartsDone++
			}
		}
	}
	return st
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit admits a grid: dedupe onto an executing or completed
// run, reject when saturated or draining, otherwise start a fresh
// computation in its own resumable directory.
func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var spec experiments.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding grid spec: %v", err)
		return
	}
	id, err := RunID(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid grid spec: %v", err)
		return
	}

	s.mu.Lock()
	s.counters.submitted++
	if r, ok := s.runs[id]; ok {
		r.mu.Lock()
		state := r.state
		r.mu.Unlock()
		if state == stateRunning || state == stateDone {
			// The dedupe path: same fingerprint, one computation,
			// this client becomes another waiter.
			s.counters.deduped++
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, s.statusOf(r, true))
			return
		}
		// A failed run: admit a retry through the resume path so
		// completed parts and cached cells are reused.
		if code, retryAfter, msg := s.admitLocked(); code != 0 {
			s.mu.Unlock()
			w.Header().Set("Retry-After", retryAfter)
			writeError(w, code, "%s", msg)
			return
		}
		fresh := &run{id: id, dir: r.dir, spec: spec, done: make(chan struct{}), started: time.Now()}
		s.registerLocked(fresh)
		s.mu.Unlock()
		s.start(fresh, true)
		s.logf("serve: run %s resubmitted after failure (%s/%s)", id, spec.Experiment, spec.Dataset)
		writeJSON(w, http.StatusAccepted, s.statusOf(fresh, false))
		return
	}
	if code, retryAfter, msg := s.admitLocked(); code != 0 {
		s.mu.Unlock()
		w.Header().Set("Retry-After", retryAfter)
		writeError(w, code, "%s", msg)
		return
	}
	// Reserve the id and the admission slot before releasing the lock:
	// a concurrent identical submission dedupes onto this run instead of
	// racing it, and a concurrent distinct grid sees the slot taken.
	r := &run{id: id, dir: filepath.Join(s.cfg.StateDir, id), spec: spec,
		done: make(chan struct{}), started: time.Now()}
	s.registerLocked(r)
	s.mu.Unlock()

	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		s.mu.Lock()
		delete(s.runs, id)
		s.active--
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, "creating run dir: %v", err)
		return
	}
	if data, err := json.Marshal(spec); err == nil {
		if werr := store.WriteFileAtomic(filepath.Join(r.dir, specFileName), data); werr != nil {
			s.logf("serve: run %s: persisting spec: %v", id, werr)
		}
	}
	s.start(r, false)
	s.logf("serve: run %s admitted (%s/%s)", id, spec.Experiment, spec.Dataset)
	writeJSON(w, http.StatusAccepted, s.statusOf(r, false))
}

// Retry-After hints, in seconds, shared by every backpressure response
// the daemon sends — admission control's 429/503 and the
// still-executing table 409 — so clients observe one consistent
// backoff policy no matter which endpoint pushed back.
const (
	retryAfterBusy     = "1"  // transient: a run slot or result should free up shortly
	retryAfterDraining = "10" // the daemon is going away; retry against a restarted instance
)

// admitLocked applies admission control; s.mu must be held. A zero
// code admits; otherwise reply with the code and Retry-After hint.
func (s *Server) admitLocked() (code int, retryAfter, msg string) {
	if s.draining {
		return http.StatusServiceUnavailable, retryAfterDraining, "draining: not admitting new runs"
	}
	if s.active >= s.cfg.MaxConcurrent {
		return http.StatusTooManyRequests, retryAfterBusy,
			fmt.Sprintf("worker pool saturated: %d of %d run slots busy", s.active, s.cfg.MaxConcurrent)
	}
	return 0, "", ""
}

// retryHint computes the Retry-After value for transient backpressure
// outside admission control, with the same draining/busy distinction
// admitLocked applies to submissions.
func (s *Server) retryHint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return retryAfterDraining
	}
	return retryAfterBusy
}

func (s *Server) lookup(req *http.Request) (*run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[req.PathValue("id")]
	return r, ok
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]*run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runs[i].started.Before(runs[j].started) })
	statuses := make([]runStatus, len(runs))
	for i, r := range runs {
		statuses[i] = s.statusOf(r, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": statuses})
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req)
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.statusOf(r, false))
}

// streamEvent is one line of the /runs/{id}/stream chunked response.
type streamEvent struct {
	Type string `json:"type"` // "shard" | "done" | "failed"
	// Shard fields (Type "shard"): plan position and its validated rows.
	Shard  int               `json:"shard,omitempty"`
	Shards int               `json:"shards,omitempty"`
	Cells  []int             `json:"cells,omitempty"`
	Rows   []json.RawMessage `json:"rows,omitempty"`
	// Terminal fields: the final status snapshot.
	Status *runStatus `json:"status,omitempty"`
}

// handleStream writes chunked JSON lines: one "shard" event per part
// envelope as it lands (validated against the manifest — forged or
// torn parts are never streamed), then a terminal "done"/"failed"
// event. Clients consuming partial rows see exactly the rows the merge
// will contain, as shards complete.
func (s *Server) handleStream(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req)
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)

	seen := map[int]bool{}
	emitLanded := func() {
		m, err := dispatch.ReadManifest(filepath.Join(r.dir, dispatch.ManifestName))
		if err != nil {
			return
		}
		for i := 0; i < m.Shards; i++ {
			if seen[i] {
				continue
			}
			path := filepath.Join(r.dir, dispatch.PartName(i))
			if dispatch.ValidatePart(path, m, i) != nil {
				continue
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue
			}
			env, err := shard.Decode(data)
			if err != nil {
				continue
			}
			seen[i] = true
			enc.Encode(streamEvent{Type: "shard", Shard: i, Shards: m.Shards,
				Cells: env.Indices, Rows: env.Rows})
			if flusher != nil {
				flusher.Flush()
			}
		}
	}

	ticker := time.NewTicker(s.cfg.StreamInterval)
	defer ticker.Stop()
	for {
		emitLanded()
		select {
		case <-r.done:
			emitLanded()
			st := s.statusOf(r, false)
			typ := "done"
			if st.Status == string(stateFailed) {
				typ = "failed"
			}
			enc.Encode(streamEvent{Type: typ, Status: &st})
			if flusher != nil {
				flusher.Flush()
			}
			return
		case <-req.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// handleTable renders the completed run's tables — the exact bytes the
// CLI's renderer prints for the same merged output.
func (s *Server) handleTable(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req)
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	r.mu.Lock()
	state, out, errMsg := r.state, r.output, r.errMsg
	r.mu.Unlock()
	switch state {
	case stateRunning:
		w.Header().Set("Retry-After", s.retryHint())
		writeError(w, http.StatusConflict, "run %s still executing", r.id)
	case stateFailed:
		writeError(w, http.StatusConflict, "run %s failed: %s", r.id, errMsg)
	default:
		var buf strings.Builder
		if err := report.RenderOutput(&buf, out); err != nil {
			writeError(w, http.StatusInternalServerError, "rendering: %v", err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, buf.String())
	}
}

// poolRequest is the wire shape of a POST /pool membership change:
// hosts to add (full definitions) and host names to drain.
type poolRequest struct {
	Join  []sched.Host `json:"join,omitempty"`
	Leave []string     `json:"leave,omitempty"`
}

// handlePool applies a dynamic membership change to every executing
// sched-backed run: joined hosts pick up work at the next scheduling
// round, departing hosts drain their in-flight assignments (no strikes)
// and receive no new work. The change is run-scoped, not persisted —
// runs started later begin from the configured hosts file again.
func (s *Server) handlePool(w http.ResponseWriter, req *http.Request) {
	var pr poolRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pr); err != nil {
		writeError(w, http.StatusBadRequest, "decoding pool update: %v", err)
		return
	}
	if len(pr.Join) == 0 && len(pr.Leave) == 0 {
		writeError(w, http.StatusBadRequest, "pool update joins or leaves no hosts")
		return
	}
	for _, h := range pr.Join {
		if h.Name == "" {
			writeError(w, http.StatusBadRequest, "joining host has no name")
			return
		}
	}
	if len(s.cfg.Hosts) == 0 {
		writeError(w, http.StatusConflict, "daemon runs without a host pool; pool updates need -hosts")
		return
	}
	s.pool.Update(sched.PoolUpdate{Join: pr.Join, Leave: pr.Leave})
	writeJSON(w, http.StatusOK, map[string]int{"joined": len(pr.Join), "left": len(pr.Leave)})
}

// handleMetrics hand-rolls the Prometheus text exposition format: run
// counters and queue state, the grid-cell cache split (the store's
// effective hit rate over served work), on-disk store usage, and
// per-host health from the scheduler's event stream.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	c := s.counters
	active, slots := s.active, s.cfg.MaxConcurrent
	draining := 0
	if s.draining {
		draining = 1
	}
	type hostRow struct {
		name string
		h    hostHealth
	}
	hostRows := make([]hostRow, 0, len(s.hosts))
	for name, h := range s.hosts {
		hostRows = append(hostRows, hostRow{name, *h})
	}
	s.mu.Unlock()
	sort.Slice(hostRows, func(i, j int) bool { return hostRows[i].name < hostRows[j].name })

	var b strings.Builder
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("fairbench_runs_submitted_total", "Grid submissions accepted for consideration.", c.submitted)
	counter("fairbench_runs_deduped_total", "Submissions answered by an existing run of the same grid fingerprint.", c.deduped)
	counter("fairbench_runs_resumed_total", "Interrupted runs relaunched at daemon start.", c.resumed)
	counter("fairbench_runs_completed_total", "Runs finished successfully.", c.completed)
	counter("fairbench_runs_failed_total", "Runs that ended in error (resubmittable).", c.failed)
	counter("fairbench_cells_computed_total", "Grid cells computed by workers across completed runs.", c.cellsComputed)
	counter("fairbench_cells_cached_total", "Grid cells served from the result store across completed runs.", c.cellsCached)
	counter("fairbench_runs_degraded_total", "Runs that lost the whole pool and completed via local fallback.", c.degraded)
	counter("fairbench_store_rejected_total", "Cache entries that failed read verification across runs (rejected and recomputed).", c.storeRejected)
	counter("fairbench_store_remote_degraded_total", "Runs whose tiered store lost its remote side mid-run and finished local-only.", c.cacheDegraded)
	counter("fairbench_sched_speculations_total", "Speculative duplicate attempts launched against stragglers.", c.speculated)
	counter("fairbench_hosts_joined_total", "Hosts that joined the pool mid-run.", c.joined)
	counter("fairbench_hosts_departed_total", "Hosts drained out of the pool mid-run.", c.departed)
	gauge("fairbench_runs_active", "Runs currently executing.", active)
	gauge("fairbench_run_slots", "Admission limit on concurrently executing runs.", slots)
	gauge("fairbench_queue_depth", "Submissions executing or waiting (admission rejects beyond the slots, so this equals active runs).", active)
	gauge("fairbench_draining", "1 while the daemon is draining for shutdown.", draining)
	if s.cacheStore != nil {
		if stats, err := s.cacheStore.Stats(); err == nil {
			gauge("fairbench_store_entries", "Result-store entries on disk.", stats.Entries)
			gauge("fairbench_store_bytes", "Result-store bytes on disk.", stats.Bytes)
			gauge("fairbench_store_grids", "Distinct grid fingerprints in the result store.", stats.Fingerprints)
		}
		// The /cache/ protocol mount's traffic, as seen by this handle.
		cc := s.cacheStore.Counters()
		counter("fairbench_cache_http_hits_total", "Verified entries served over the /cache protocol.", cc.Hits)
		counter("fairbench_cache_http_misses_total", "Cache-protocol lookups with no entry to serve.", cc.Misses)
		counter("fairbench_cache_http_writes_total", "Entries stored via the /cache protocol.", cc.Writes)
		counter("fairbench_cache_http_rejected_total", "Stored entries that failed verification when read over the /cache protocol.", cc.Rejected)
	}
	for _, hr := range hostRows {
		up := 1
		if hr.h.excluded || hr.h.departed {
			up = 0
		}
		fmt.Fprintf(&b, "fairbench_host_up{host=%q} %d\n", hr.name, up)
		fmt.Fprintf(&b, "fairbench_host_ranges_completed_total{host=%q} %d\n", hr.name, hr.h.completed)
		fmt.Fprintf(&b, "fairbench_host_attempts_failed_total{host=%q} %d\n", hr.name, hr.h.failed)
		fmt.Fprintf(&b, "fairbench_host_speculations_total{host=%q} %d\n", hr.name, hr.h.speculated)
		if !hr.h.lastBeat.IsZero() {
			fmt.Fprintf(&b, "fairbench_host_heartbeat_age_seconds{host=%q} %.3f\n", hr.name, time.Since(hr.h.lastBeat).Seconds())
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String())
}

// WaitRun blocks until the run with id reaches a terminal state or ctx
// expires — a convenience for embedders and tests; HTTP clients poll
// GET /runs/{id} or consume /stream instead.
func (s *Server) WaitRun(ctx context.Context, id string) error {
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: no run %q", id)
	}
	select {
	case <-r.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
