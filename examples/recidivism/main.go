// Recidivism: equalized-odds correction for a risk-assessment tool.
// COMPAS-style mistakes are asymmetric across racial groups (the paper's
// Example 1); Hardt post-processing equalizes the error rates of an
// already-deployed classifier without retraining it.
//
//	go run ./examples/recidivism
package main

import (
	"fmt"
	"log"

	"fairbench"
	"fairbench/internal/metrics"
)

func main() {
	src := fairbench.COMPAS(0, 2)
	train, test := fairbench.Split(src.Data, 0.7, 17)

	base := fairbench.Baseline()
	if err := base.Fit(train); err != nil {
		log.Fatal(err)
	}
	yhat, err := base.Predict(test)
	if err != nil {
		log.Fatal(err)
	}
	gr := metrics.ComputeGroupRates(test, yhat)
	fmt.Println("Fairness-unaware classifier, error rates by group:")
	fmt.Printf("  TPR: unprivileged %.3f vs privileged %.3f\n", gr.TPR[0], gr.TPR[1])
	fmt.Printf("  TNR: unprivileged %.3f vs privileged %.3f\n", gr.TNR[0], gr.TNR[1])
	fmt.Println("  (the unprivileged group is misclassified more — Example 1's pattern)")

	hardt, err := fairbench.NewApproach("Hardt-EO", src.Graph, 23)
	if err != nil {
		log.Fatal(err)
	}
	if err := hardt.Fit(train); err != nil {
		log.Fatal(err)
	}
	fixed, err := hardt.Predict(test)
	if err != nil {
		log.Fatal(err)
	}
	gr2 := metrics.ComputeGroupRates(test, fixed)
	fmt.Println("\nAfter Hardt equalized-odds post-processing:")
	fmt.Printf("  TPR: unprivileged %.3f vs privileged %.3f\n", gr2.TPR[0], gr2.TPR[1])
	fmt.Printf("  TNR: unprivileged %.3f vs privileged %.3f\n", gr2.TNR[0], gr2.TNR[1])

	before := fairbench.MeasureCorrectness(test.Y, yhat)
	after := fairbench.MeasureCorrectness(test.Y, fixed)
	fmt.Printf("\nAccuracy cost of the correction: %.3f -> %.3f\n", before.Accuracy, after.Accuracy)
	fmt.Println("No retraining was needed: the derived predictor only remixes (Ŷ, S).")
}
