package dataset

import "sync"

// DesignCache memoizes the standardized design matrix of one dataset
// view. Every linear approach fitting on the same training split performs
// the identical Clone → FitStandardizer → Apply → FeatureMatrix pipeline;
// when a batch of grid cells shares the split, arming the cache lets the
// first fit pay for that materialization and every later fit receive the
// same read-only rows (and fitted standardizer) with zero recomputation.
// Entries are keyed by the one pipeline input that varies per approach:
// whether the sensitive column is part of the features.
//
// The cached rows are views of one flat matrix.Dense backing; consumers
// read them (the classifier Fit contract) and never mutate, so sharing
// across concurrently fitting cells is race-free. Because the pipeline is
// deterministic, a cached result is bit-identical to what each fit would
// have computed alone — arming the cache can never change grid output.
type DesignCache struct {
	byS [2]designEntry
}

type designEntry struct {
	once sync.Once
	std  *Standardizer
	rows [][]float64
}

// EnableDesignCache arms d with a design cache. Idempotent and safe to
// call concurrently; intended for batch execution's per-batch prepare
// step, which arms the shared training split before its cells fan out.
func (d *Dataset) EnableDesignCache() {
	d.design.CompareAndSwap(nil, &DesignCache{})
}

// StandardizedDesign returns a standardizer fitted on a clone of d and the
// standardized feature rows (sensitive column appended when includeS).
// Without an armed cache it computes fresh per call — the historical
// per-cell behavior; with one, the computation runs once per includeS
// value and every caller shares the same backing. Callers must treat the
// returned rows as read-only.
func (d *Dataset) StandardizedDesign(includeS bool) (*Standardizer, [][]float64) {
	dc := d.design.Load()
	if dc == nil {
		return computeDesign(d, includeS)
	}
	e := &dc.byS[boolIdx(includeS)]
	e.once.Do(func() { e.std, e.rows = computeDesign(d, includeS) })
	return e.std, e.rows
}

func boolIdx(b bool) int {
	if b {
		return 1
	}
	return 0
}

func computeDesign(d *Dataset, includeS bool) (*Standardizer, [][]float64) {
	work := d.Clone()
	std := FitStandardizer(work)
	std.Apply(work)
	return std, work.FeatureMatrix(includeS)
}
