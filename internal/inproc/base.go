// Package inproc implements the five in-processing approaches of the
// benchmark (Figure 5, "in" rows): the Zafar decision-boundary-covariance
// family, Zha-Le adversarial learning, Kearns subgroup-fairness auditing,
// the Celis meta-algorithm, and the Thomas Seldonian framework. Each
// approach embeds fairness into the training procedure itself and
// implements fair.Approach directly.
package inproc

import (
	"fairbench/internal/dataset"
	"fairbench/internal/matrix"
)

// linearBase holds the shared state of the linear in-processing models:
// a fitted standardizer and a weight vector over the (standardized)
// features with the intercept last. Whether S is part of the features is a
// per-approach decision; Zafar's family excludes it (S appears only in the
// fairness constraint), matching the original formulation.
type linearBase struct {
	std      *dataset.Standardizer
	w        []float64
	includeS bool
}

// designMatrix returns the standardized feature rows used for
// optimization, fitting (or sharing, under batched execution's design
// cache) the standardizer along the way.
func (b *linearBase) designMatrix(train *dataset.Dataset) [][]float64 {
	std, rows := train.StandardizedDesign(b.includeS)
	b.std = std
	return rows
}

// row builds a standardized prediction row for raw features x and
// sensitive value s.
func (b *linearBase) row(x []float64, s int) []float64 {
	r := append([]float64(nil), x...)
	b.std.ApplyRow(r)
	return dataset.FeatureRow(r, s, b.includeS)
}

// score returns the signed distance proxy wᵀx + intercept.
func (b *linearBase) score(row []float64) float64 {
	d := len(b.w) - 1
	z := b.w[d]
	for j := 0; j < d && j < len(row); j++ {
		z += b.w[j] * row[j]
	}
	return z
}

// predictOne thresholds the linear score at zero.
func (b *linearBase) predictOne(x []float64, s int) int {
	if b.w == nil {
		return 0
	}
	if b.score(b.row(x, s)) >= 0 {
		return 1
	}
	return 0
}

// predictAll labels a full dataset.
func (b *linearBase) predictAll(d *dataset.Dataset) []int {
	out := make([]int, d.Len())
	for i := range out {
		out[i] = b.predictOne(d.X[i], d.S[i])
	}
	return out
}

// fitView bundles the per-fit training state the fused objectives share:
// the design matrix in row-view and (when the rows alias one tight
// backing, which dataset.FeatureMatrix guarantees) flat form, plus score
// and probability buffers reused across every optimizer iteration. The
// point is pass fusion: an objective built from these helpers runs one
// blocked z-pass and one sigmoid pass per evaluation, and every consumer
// of the scores (loss gradient, constraint values, constraint gradients)
// reads the shared buffers instead of recomputing the affine map — with
// each helper preserving the exact scalar fold order of the loop it
// replaces, so the optimizer trajectory stays bit-identical.
type fitView struct {
	x    [][]float64
	y    []int
	dm   matrix.Dense
	flat bool
	z    []float64 // affine scores of the current iterate
	p    []float64 // sigmoid of z, filled on demand by fillP
	g    []float64 // per-tuple gradient coefficients, scratch for ScatterRows
}

// gbuf returns the per-tuple coefficient scratch, allocating it on first use.
func (v *fitView) gbuf() []float64 {
	if v.g == nil {
		v.g = make([]float64, len(v.z))
	}
	return v.g
}

func newFitView(x [][]float64, y []int) *fitView {
	v := &fitView{x: x, y: y, z: make([]float64, len(x))}
	v.dm, v.flat = matrix.AsDense(x)
	return v
}

// fillZ computes the affine scores of w over every row into v.z with the
// bias-first fold the scalar loops use.
func (v *fitView) fillZ(w []float64) {
	d := len(w) - 1
	if v.flat {
		v.dm.AffineInto(v.z, w[:d], w[d])
		return
	}
	for i, row := range v.x {
		z := w[d]
		for j, xv := range row {
			z += w[j] * xv
		}
		v.z[i] = z
	}
}

// fillP computes p[i] = sigmoid(z[i]) from the current scores.
func (v *fitView) fillP() {
	if v.p == nil {
		v.p = make([]float64, len(v.z))
	}
	matrix.SigmoidInto(v.p, v.z)
}

// logGradFromZ accumulates the mean-logistic-loss gradient from the
// scores already in v.z (grad pre-zeroed) — logGradOnly with the z-pass
// hoisted out. On a flat view the per-tuple coefficients are staged into
// the g scratch and scattered with the blocked kernel; because grad is
// pre-zeroed, summing the intercept terms apart from the scatter leaves
// every component's fold identical to the interleaved per-row loop.
func (v *fitView) logGradFromZ(grad []float64) {
	d := len(grad) - 1
	n := float64(len(v.x))
	gd := grad[:d]
	if v.flat {
		v.fillP()
		g := v.gbuf()
		var gInt float64
		for i, p := range v.p {
			gi := (p - float64(v.y[i])) / n
			g[i] = gi
			gInt += gi
		}
		v.dm.ScatterRows(gd, g)
		grad[d] += gInt
		return
	}
	for i, zi := range v.z {
		p := matrix.Sigmoid(zi)
		g := (p - float64(v.y[i])) / n
		matrix.AccumulateInto(gd, g, v.x[i])
		grad[d] += g
	}
}

// logLossGradFromZ is logGradFromZ also returning the mean logistic loss
// (the logLossAndGrad fold with the z-pass hoisted out).
func (v *fitView) logLossGradFromZ(grad []float64) float64 {
	d := len(grad) - 1
	n := float64(len(v.x))
	gd := grad[:d]
	var loss float64
	if v.flat {
		v.fillP()
		g := v.gbuf()
		var gInt float64
		for i, p := range v.p {
			yi := float64(v.y[i])
			loss += logLoss(p, yi)
			gi := (p - yi) / n
			g[i] = gi
			gInt += gi
		}
		v.dm.ScatterRows(gd, g)
		grad[d] += gInt
		return loss / n
	}
	for i, zi := range v.z {
		p := matrix.Sigmoid(zi)
		yi := float64(v.y[i])
		loss += logLoss(p, yi)
		g := (p - yi) / n
		matrix.AccumulateInto(gd, g, v.x[i])
		grad[d] += g
	}
	return loss / n
}

// logGradFromP accumulates the mean-logistic-loss gradient from the
// probabilities already in v.p (grad pre-zeroed); for objectives whose
// other terms also consume the sigmoid pass.
func (v *fitView) logGradFromP(grad []float64) {
	d := len(grad) - 1
	n := float64(len(v.x))
	gd := grad[:d]
	if v.flat {
		g := v.gbuf()
		var gInt float64
		for i, p := range v.p {
			gi := (p - float64(v.y[i])) / n
			g[i] = gi
			gInt += gi
		}
		v.dm.ScatterRows(gd, g)
		grad[d] += gInt
		return
	}
	for i, p := range v.p {
		g := (p - float64(v.y[i])) / n
		matrix.AccumulateInto(gd, g, v.x[i])
		grad[d] += g
	}
}

// logLossAndGrad accumulates the weighted logistic loss and its gradient
// over rows x with labels y; grad must be pre-zeroed and sized len(w).
func logLossAndGrad(w []float64, x [][]float64, y []int, grad []float64) float64 {
	d := len(w) - 1
	var loss float64
	n := float64(len(x))
	for i, row := range x {
		z := w[d]
		for j, v := range row {
			z += w[j] * v
		}
		p := matrix.Sigmoid(z)
		yi := float64(y[i])
		loss += logLoss(p, yi)
		g := (p - yi) / n
		for j, v := range row {
			grad[j] += g * v
		}
		grad[d] += g
	}
	return loss / n
}

// logGradOnly accumulates only the gradient of the mean logistic loss
// (grad must be pre-zeroed). It is the variant for objectives consumed
// exclusively by Adam, whose update and stopping rule read nothing but
// the gradient and whose returned value the callers here discard:
// skipping the math.Log per tuple per iteration leaves every weight
// trajectory bit-identical while removing the dominant transcendental
// from the in-processing fit loops. Objectives whose value is consumed
// (Zafar^dp_Acc's loss budget and its loss constraint) keep
// logLossAndGrad.
func logGradOnly(w []float64, x [][]float64, y []int, grad []float64) {
	d := len(w) - 1
	n := float64(len(x))
	for i, row := range x {
		z := w[d]
		for j, v := range row {
			z += w[j] * v
		}
		p := matrix.Sigmoid(z)
		g := (p - float64(y[i])) / n
		for j, v := range row {
			grad[j] += g * v
		}
		grad[d] += g
	}
}

func logLoss(p, y float64) float64 {
	const eps = 1e-12
	p = matrix.Clamp(p, eps, 1-eps)
	if y >= 0.5 {
		return -ln(p)
	}
	return -ln(1 - p)
}
