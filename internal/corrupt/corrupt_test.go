package corrupt

import (
	"math"
	"testing"

	"fairbench/internal/synth"
)

func TestSwapValues(t *testing.T) {
	src := synth.COMPAS(2000, 1)
	out, err := SwapValues(src.Data, "Prior", "Age", PaperRates, 7)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != src.Data.Len() {
		t.Fatal("swap must preserve size")
	}
	changedU, changedP, nU, nP := 0, 0, 0, 0
	for i := range out.X {
		changed := out.X[i][0] != src.Data.X[i][0]
		if changed {
			// A swap exchanges the pair exactly.
			if out.X[i][0] != src.Data.X[i][2] || out.X[i][2] != src.Data.X[i][0] {
				t.Fatal("swap did not exchange the two attributes")
			}
		}
		if src.Data.S[i] == 0 {
			nU++
			if changed {
				changedU++
			}
		} else {
			nP++
			if changed {
				changedP++
			}
		}
	}
	// Note: tuples where Age == Prior register as unchanged, so measured
	// rates sit slightly below the nominal 50%/10%.
	rU := float64(changedU) / float64(nU)
	rP := float64(changedP) / float64(nP)
	if rU < 0.40 || rU > 0.55 {
		t.Fatalf("unprivileged corruption rate %v, want ~0.5", rU)
	}
	if rP < 0.05 || rP > 0.15 {
		t.Fatalf("privileged corruption rate %v, want ~0.1", rP)
	}
	if rU <= rP {
		t.Fatal("corruption must be disproportionate")
	}
}

func TestSwapUnknownAttr(t *testing.T) {
	src := synth.COMPAS(100, 1)
	if _, err := SwapValues(src.Data, "Nope", "Age", PaperRates, 1); err == nil {
		t.Fatal("unknown attribute must error")
	}
}

func TestScaleAndNoise(t *testing.T) {
	src := synth.COMPAS(2000, 2)
	out, err := ScaleAndNoise(src.Data, "Prior", 3.0, "Age", 8.0, PaperRates, 9)
	if err != nil {
		t.Fatal(err)
	}
	scaled := 0
	for i := range out.X {
		if out.X[i][2] != src.Data.X[i][2] {
			scaled++
			if src.Data.X[i][2] != 0 && math.Abs(out.X[i][2]-3*src.Data.X[i][2]) > 1e-9 {
				t.Fatal("scaling must multiply by the factor")
			}
		}
	}
	if scaled == 0 {
		t.Fatal("no tuples scaled")
	}
}

func TestMissingImputed(t *testing.T) {
	src := synth.COMPAS(4000, 3)
	out, err := MissingImputed(src.Data, PaperRates, 11)
	if err != nil {
		t.Fatal(err)
	}
	changedS := 0
	for i := range out.S {
		if out.S[i] != src.Data.S[i] {
			changedS++
		}
	}
	if changedS == 0 {
		t.Fatal("imputation changed nothing")
	}
	// Imputed values are a single mode: the affected unprivileged tuples
	// flip to the observed majority group.
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyCOMPASTemplates(t *testing.T) {
	src := synth.COMPAS(1000, 4)
	for _, tmpl := range []Template{T1, T2, T3} {
		out, err := ApplyCOMPAS(src.Data, tmpl, 5)
		if err != nil {
			t.Fatalf("%v: %v", tmpl, err)
		}
		if out.Len() != 1000 {
			t.Fatalf("%v: size changed", tmpl)
		}
		if out.Name == src.Data.Name {
			t.Fatalf("%v: corrupted dataset should be renamed", tmpl)
		}
	}
	if _, err := ApplyCOMPAS(src.Data, Template(9), 5); err == nil {
		t.Fatal("unknown template must error")
	}
}

func TestImputeNumericMean(t *testing.T) {
	src := synth.COMPAS(2000, 5)
	out, err := ImputeNumericMean(src.Data, "Age", PaperRates, 13)
	if err != nil {
		t.Fatal(err)
	}
	// All affected tuples share one imputed value.
	vals := map[float64]int{}
	for i := range out.X {
		if out.X[i][0] != src.Data.X[i][0] {
			vals[out.X[i][0]]++
		}
	}
	if len(vals) != 1 {
		t.Fatalf("mean imputation must write a single value, got %d", len(vals))
	}
}

func TestDeterminism(t *testing.T) {
	src := synth.COMPAS(500, 6)
	a, _ := ApplyCOMPAS(src.Data, T1, 21)
	b, _ := ApplyCOMPAS(src.Data, T1, 21)
	for i := range a.X {
		if a.X[i][0] != b.X[i][0] {
			t.Fatal("same seed must corrupt identically")
		}
	}
}
