package classifier

import (
	"fairbench/internal/matrix"
	"fairbench/internal/rng"
)

// LinearSVM is a linear support-vector machine trained with the Pegasos
// primal sub-gradient method on the weighted hinge loss, with a Platt-style
// sigmoid fitted on the margins so PredictProba returns calibrated
// probabilities (post-processors need them).
type LinearSVM struct {
	// Lambda is the regularization strength (default 1e-3).
	Lambda float64
	// Epochs is the number of Pegasos passes (default 40).
	Epochs int
	// Seed drives the sampling order.
	Seed int64

	// W holds weights with intercept last; plattA/B calibrate margins.
	W              []float64
	plattA, plattB float64
}

// NewSVM returns a linear SVM with benchmark defaults.
func NewSVM() *LinearSVM { return &LinearSVM{Lambda: 1e-3, Epochs: 40, Seed: 7} }

// Fit trains the SVM; w may be nil for uniform weights. Defaults resolve
// into locals (the receiver's configuration fields are never written), so
// a zero-value model is reusable and race-free across cells.
func (s *LinearSVM) Fit(x [][]float64, y []int, w []float64) error {
	if err := checkFitInput(x, y, w); err != nil {
		return err
	}
	lambda, epochs := s.Lambda, s.Epochs
	if lambda == 0 {
		lambda = 1e-3
	}
	if epochs == 0 {
		epochs = 40
	}
	n, d := len(x), len(x[0])
	g := rng.New(s.Seed)
	theta := make([]float64, d+1)
	t := 1
	for epoch := 0; epoch < epochs; epoch++ {
		for it := 0; it < n; it++ {
			i := g.Intn(n)
			wi := 1.0
			if w != nil {
				wi = w[i]
			}
			yi := 2*float64(y[i]) - 1 // {-1,+1}
			eta := 1 / (lambda * float64(t))
			t++
			// Pegasos is inherently sequential (theta changes every sampled
			// tuple), so the win here is bounds-check-free inner loops: the
			// reslice proves theta and the row share a length.
			xi := x[i]
			th := theta[:len(xi)]
			margin := theta[d]
			for j, v := range xi {
				margin += th[j] * v
			}
			// L2 shrink on non-intercept weights.
			shrink := 1 - eta*lambda
			for j := range th {
				th[j] *= shrink
			}
			if yi*margin < 1 {
				step := eta * wi * yi
				for j, v := range xi {
					th[j] += step * v
				}
				theta[d] += step
			}
		}
	}
	s.W = theta
	s.fitPlatt(x, y)
	return nil
}

// fitPlatt fits P(y=1|m) = sigmoid(A*m + B) on the training margins by a
// short gradient descent; adequate for probability ranking. The margins
// are fixed once the weights are — computing them once into a reused
// buffer instead of redoing every dot product in all 200 iterations cuts
// the calibration from O(iters·n·d) to O(n·d + iters·n), bit-identically.
func (s *LinearSVM) fitPlatt(x [][]float64, y []int) {
	margins := make([]float64, len(x))
	for i, row := range x {
		margins[i] = s.Score(row)
	}
	a, b := 1.0, 0.0
	n := float64(len(x))
	for iter := 0; iter < 200; iter++ {
		var ga, gb float64
		for i, m := range margins {
			p := matrix.Sigmoid(a*m + b)
			diff := p - float64(y[i])
			ga += diff * m
			gb += diff
		}
		a -= 0.1 * ga / n
		b -= 0.1 * gb / n
	}
	s.plattA, s.plattB = a, b
}

// Score returns the signed margin wᵀx + b.
func (s *LinearSVM) Score(x []float64) float64 {
	d := len(s.W) - 1
	z := s.W[d]
	for j := 0; j < d && j < len(x); j++ {
		z += s.W[j] * x[j]
	}
	return z
}

// PredictProba returns the Platt-calibrated probability.
func (s *LinearSVM) PredictProba(x []float64) float64 {
	return matrix.Sigmoid(s.plattA*s.Score(x) + s.plattB)
}
