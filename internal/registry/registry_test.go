package registry

import (
	"testing"

	"fairbench/internal/fair"
	"fairbench/internal/synth"
)

func TestAllNamesConstruct(t *testing.T) {
	src := synth.COMPAS(200, 1)
	for _, name := range Names {
		a, err := New(name, Config{Graph: src.Graph, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("constructed %q under name %q", a.Name(), name)
		}
	}
}

func TestEighteenVariants(t *testing.T) {
	if len(Names) != 18 {
		t.Fatalf("paper evaluates 18 variants, registry has %d", len(Names))
	}
}

func TestStageDistribution(t *testing.T) {
	// Figure 5: 7 pre-processing variants, 8 in-processing, 3 post.
	byStage := ByStage()
	if got := len(byStage[fair.StagePre]); got != 7 {
		t.Fatalf("pre-processing variants: %d", got)
	}
	if got := len(byStage[fair.StageIn]); got != 8 {
		t.Fatalf("in-processing variants: %d", got)
	}
	if got := len(byStage[fair.StagePost]); got != 3 {
		t.Fatalf("post-processing variants: %d", got)
	}
}

func TestExtendedNamesConstruct(t *testing.T) {
	// The three appendix variants (Figure 15) construct and identify.
	if len(ExtendedNames) != 3 {
		t.Fatalf("extended variants: %d", len(ExtendedNames))
	}
	for _, name := range ExtendedNames {
		a, err := New(name, Config{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("constructed %q under name %q", a.Name(), name)
		}
	}
}

func TestBaselineName(t *testing.T) {
	a, err := New("LR", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stage() != fair.StageNone {
		t.Fatal("LR must be the fairness-unaware baseline")
	}
}

func TestUnknownName(t *testing.T) {
	if _, err := New("nope", Config{}); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestAll(t *testing.T) {
	src := synth.COMPAS(200, 1)
	as, err := All(Config{Graph: src.Graph, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != len(Names) {
		t.Fatalf("All returned %d approaches", len(as))
	}
}

func TestEveryTargetIsAKnownMetric(t *testing.T) {
	known := map[fair.Metric]bool{
		fair.MetricDI: true, fair.MetricTPRB: true, fair.MetricTNRB: true,
		fair.MetricID: true, fair.MetricTE: true,
	}
	for _, name := range Names {
		a, err := New(name, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range a.Targets() {
			if !known[m] {
				t.Fatalf("%s targets unknown metric %q", name, m)
			}
		}
	}
}
