package inproc

import (
	"fmt"
	"math"

	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/matrix"
	"fairbench/internal/optimize"
)

// ln aliases math.Log for compact loss expressions.
func ln(v float64) float64 { return math.Log(v) }

// ZafarMode selects among the three evaluated Zafar variants.
type ZafarMode int

const (
	// ZafarDPFair maximizes accuracy under a demographic-parity proxy
	// constraint (Zafar^dp_Fair).
	ZafarDPFair ZafarMode = iota
	// ZafarDPAcc maximizes fairness under an accuracy constraint
	// (Zafar^dp_Acc).
	ZafarDPAcc
	// ZafarEOFair maximizes accuracy under an equalized-odds proxy
	// constraint computed over misclassified tuples (Zafar^eo_Fair).
	ZafarEOFair
)

// Zafar implements Zafar et al.'s fairness-constrained logistic
// classifiers. The fairness proxy is the empirical covariance between the
// sensitive attribute and the tuple's signed distance to the decision
// boundary:
//
//	cov = (1/|D|) Σ_t (S_t - S̄) d_θ(X_t)
//
// (for the eo variant, the distance term is -d_θ(X_t) on misclassified
// tuples and 0 otherwise, re-fixed over a few DCCP-style outer rounds).
// Constrained problems are solved with the penalty method; the sensitive
// attribute never enters the feature vector.
type Zafar struct {
	Mode ZafarMode
	// CovBound is the allowed |cov| (default 1e-3).
	CovBound float64
	// Gamma is the allowed relative loss increase for the Acc variant
	// (default 0.10).
	Gamma float64

	base linearBase
}

// SetCovBound overrides the covariance tolerance; the ablation benches use
// it to trace the fairness/accuracy trade-off curve.
func (z *Zafar) SetCovBound(b float64) { z.CovBound = b }

// Name implements fair.Approach.
func (z *Zafar) Name() string {
	switch z.Mode {
	case ZafarDPAcc:
		return "Zafar-DP-Acc"
	case ZafarEOFair:
		return "Zafar-EO-Fair"
	default:
		return "Zafar-DP-Fair"
	}
}

// Stage implements fair.Approach.
func (z *Zafar) Stage() fair.Stage { return fair.StageIn }

// Targets implements fair.Approach.
func (z *Zafar) Targets() []fair.Metric {
	if z.Mode == ZafarEOFair {
		return []fair.Metric{fair.MetricTPRB, fair.MetricTNRB}
	}
	return []fair.Metric{fair.MetricDI}
}

// Fit implements fair.Approach.
func (z *Zafar) Fit(train *dataset.Dataset) error {
	if z.CovBound == 0 {
		z.CovBound = 1e-3
	}
	if z.Gamma == 0 {
		z.Gamma = 0.10
	}
	z.base.includeS = false
	x := z.base.designMatrix(train)
	y := train.Y
	n := float64(len(x))
	dim := len(x[0])

	sBar := 0.0
	for _, s := range train.S {
		sBar += float64(s)
	}
	sBar /= n
	sCent := make([]float64, len(x))
	for i, s := range train.S {
		sCent[i] = float64(s) - sBar
	}

	// cov(w) and its gradient for a 0/1 mask of contributing tuples
	// (all tuples for dp; misclassified only for eo).
	cov := func(w []float64, mask []bool, grad []float64) float64 {
		d := len(w) - 1
		var c float64
		for j := range grad {
			grad[j] = 0
		}
		for i, row := range x {
			if mask != nil && !mask[i] {
				continue
			}
			z := w[d]
			for j, v := range row {
				z += w[j] * v
			}
			c += sCent[i] * z
			for j, v := range row {
				grad[j] += sCent[i] * v / n
			}
			grad[d] += sCent[i] / n
		}
		return c / n
	}

	w0 := make([]float64, dim+1)
	switch z.Mode {
	case ZafarDPFair:
		// Gradient-only: the penalty method's inner Adam never reads the
		// objective value.
		loss := func(w, grad []float64) float64 {
			for j := range grad {
				grad[j] = 0
			}
			logGradOnly(w, x, y, grad)
			return 0
		}
		cpos := func(w, grad []float64) float64 { return cov(w, nil, grad) - z.CovBound }
		cneg := func(w, grad []float64) float64 {
			v := cov(w, nil, grad)
			matrix.Scale(-1, grad)
			return -v - z.CovBound
		}
		z.base.w = optimize.MinimizePenalty(loss, []optimize.Constraint{cpos, cneg}, w0,
			optimize.PenaltyConfig{Rho0: 10, Inner: optimize.AdamConfig{MaxIter: 400}})

	case ZafarDPAcc:
		// Phase 1: unconstrained optimum fixes the loss budget.
		uncon := func(w, grad []float64) float64 {
			for j := range grad {
				grad[j] = 0
			}
			return logLossAndGrad(w, x, y, grad)
		}
		wStar, lStar := optimize.Adam(uncon, w0, optimize.AdamConfig{MaxIter: 400})
		budget := (1 + z.Gamma) * lStar
		// Phase 2: minimize cov^2 subject to loss <= budget.
		covGrad := make([]float64, dim+1)
		obj := func(w, grad []float64) float64 {
			c := cov(w, nil, covGrad)
			for j := range grad {
				grad[j] = 2 * c * covGrad[j]
			}
			return c * c
		}
		lossCon := func(w, grad []float64) float64 {
			for j := range grad {
				grad[j] = 0
			}
			return logLossAndGrad(w, x, y, grad) - budget
		}
		z.base.w = optimize.MinimizePenalty(obj, []optimize.Constraint{lossCon}, wStar,
			optimize.PenaltyConfig{Rho0: 10, Inner: optimize.AdamConfig{MaxIter: 400}})

	case ZafarEOFair:
		// DCCP-style outer loop: fix the misclassified set under the
		// current weights, solve the resulting penalized convex
		// subproblem, repeat.
		w := w0
		// Gradient-only: both the warm start and the penalized subproblems
		// run under Adam, which discards the value.
		uncon := func(wv, grad []float64) float64 {
			for j := range grad {
				grad[j] = 0
			}
			logGradOnly(wv, x, y, grad)
			return 0
		}
		w, _ = optimize.Adam(uncon, w, optimize.AdamConfig{MaxIter: 300})
		for round := 0; round < 4; round++ {
			mask := make([]bool, len(x))
			d := len(w) - 1
			for i, row := range x {
				zv := w[d]
				for j, v := range row {
					zv += w[j] * v
				}
				pred := 0
				if zv >= 0 {
					pred = 1
				}
				mask[i] = pred != y[i]
			}
			cpos := func(wv, grad []float64) float64 { return cov(wv, mask, grad) - z.CovBound }
			cneg := func(wv, grad []float64) float64 {
				v := cov(wv, mask, grad)
				matrix.Scale(-1, grad)
				return -v - z.CovBound
			}
			w = optimize.MinimizePenalty(uncon, []optimize.Constraint{cpos, cneg}, w,
				optimize.PenaltyConfig{Rho0: 10, Outer: 4, Inner: optimize.AdamConfig{MaxIter: 250}})
		}
		z.base.w = w
	default:
		return fmt.Errorf("zafar: unknown mode %d", z.Mode)
	}
	return nil
}

// Predict implements fair.Approach.
func (z *Zafar) Predict(test *dataset.Dataset) ([]int, error) {
	if z.base.w == nil {
		return nil, fmt.Errorf("%s: not fitted", z.Name())
	}
	return z.base.predictAll(test), nil
}

// PredictOne implements fair.Approach. Zafar never uses S at prediction
// time, so it trivially satisfies the ID metric (Section 4.2).
func (z *Zafar) PredictOne(x []float64, s int) int { return z.base.predictOne(x, s) }

// NewZafarDPFair returns the evaluated Zafar^dp_Fair variant.
func NewZafarDPFair() fair.Approach { return &Zafar{Mode: ZafarDPFair} }

// NewZafarDPAcc returns the evaluated Zafar^dp_Acc variant.
func NewZafarDPAcc() fair.Approach { return &Zafar{Mode: ZafarDPAcc} }

// NewZafarEOFair returns the evaluated Zafar^eo_Fair variant.
func NewZafarEOFair() fair.Approach { return &Zafar{Mode: ZafarEOFair} }
