package experiments

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"runtime"
	"testing"

	"fairbench/internal/shard"
	"fairbench/internal/store"
)

// planSpec is the shared grid of the cache-aware planning tests: small
// enough (4 cells) to run everywhere, real enough to exercise the whole
// plan→run→merge stack.
func planSpec() Spec {
	return Spec{Experiment: "fig23", Dataset: "compas", N: 300, Seed: 6,
		Sizes: []int{60, 120}, Names: []string{"LR", "KamCal-DP"}}
}

// canonicalOutput marshals an output with timing fields zeroed.
func canonicalOutput(t *testing.T, out *Output) []byte {
	t.Helper()
	for _, pts := range out.Efficiency {
		for i := range pts {
			pts[i].Row.Seconds, pts[i].Row.Overhead = 0, 0
		}
	}
	for i := range out.Rows {
		out.Rows[i].Seconds, out.Rows[i].Overhead = 0, 0
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// populateSubset fills a fresh store with the given cells' entries,
// copied from a fully-populated reference store.
func populateSubset(t *testing.T, full, dst *store.DiskStore, fp string, seed int64, cells []int) {
	t.Helper()
	for _, i := range cells {
		key := store.Key{Fingerprint: fp, Index: i, Seed: seed, Arch: runtime.GOARCH}
		payload, ok := full.Get(key)
		if !ok {
			t.Fatalf("reference store misses cell %d", i)
		}
		if err := dst.Put(key, payload); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPlanCacheAwareFullyCachedAssignsNothing pins the headline planning
// contract: over a fully-cached grid the plan is one skippable range and
// Assigned() is empty — a scheduler has nothing to place on hosts.
func TestPlanCacheAwareFullyCachedAssignsNothing(t *testing.T) {
	spec := planSpec()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunShardCached(spec, 0, 1, st); err != nil {
		t.Fatal(err)
	}
	plan, err := PlanShardsCacheAware(spec, 3, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Assigned(); len(got) != 0 {
		t.Fatalf("fully-cached grid assigned ranges %v", got)
	}
	if len(plan.Ranges) != 1 || plan.TotalUncached() != 0 {
		t.Fatalf("fully-cached plan: %+v", plan)
	}

	// With no store every cell is work and the plan is a plain balanced
	// split.
	cold, err := PlanShardsCacheAware(spec, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Assigned()) != 2 || cold.TotalUncached() != cold.Total {
		t.Fatalf("storeless plan: %+v", cold)
	}
}

// TestPlanRunMergeRoundTripArbitrarySubsets is the planner's
// property-based gate: for arbitrary (shard count, cached subset)
// combinations, planning cache-aware, running every planned range
// through RunShardPlanned, and merging must reproduce the serial bytes —
// and the cached/computed provenance must account for exactly the
// subset.
func TestPlanRunMergeRoundTripArbitrarySubsets(t *testing.T) {
	spec := planSpec()
	g := mustOpen(t, spec)
	want, err := g.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := canonicalOutput(t, want)
	fp, err := g.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	total := g.Len()

	// A fully-populated reference store to copy subsets from.
	full, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunShardCached(spec, 0, 1, full); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 12; trial++ {
		k := 1 + rng.Intn(5)
		var cached []int
		for i := 0; i < total; i++ {
			if rng.Intn(2) == 0 {
				cached = append(cached, i)
			}
		}
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		populateSubset(t, full, st, fp, spec.Seed, cached)

		plan, err := PlanShardsCacheAware(spec, k, st)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if plan.TotalUncached() != total-len(cached) {
			t.Fatalf("trial %d: plan sees %d uncached cells, want %d",
				trial, plan.TotalUncached(), total-len(cached))
		}
		envs := make([]*shard.Envelope, len(plan.Ranges))
		computed := 0
		for i := range plan.Ranges {
			if envs[i], err = RunShardPlanned(spec, plan.Ranges, i, st); err != nil {
				t.Fatalf("trial %d range %d: %v", trial, i, err)
			}
			computed += len(envs[i].Indices) - len(envs[i].Cached)
		}
		if computed != total-len(cached) {
			t.Fatalf("trial %d: computed %d cells, want %d (subset %v)",
				trial, computed, total-len(cached), cached)
		}
		out, err := MergeShards(envs)
		if err != nil {
			t.Fatalf("trial %d: merge: %v", trial, err)
		}
		if !bytes.Equal(wantBytes, canonicalOutput(t, out)) {
			t.Fatalf("trial %d (k=%d, %d cached): merged output diverges from serial",
				trial, k, len(cached))
		}
	}
}

// TestRunShardPlannedRejectsBadPlans: drifted or hand-edited plans fail
// loudly instead of producing unmergeable envelopes.
func TestRunShardPlannedRejectsBadPlans(t *testing.T) {
	spec := planSpec()
	n := mustOpen(t, spec).Len()
	cases := [][]shard.Range{
		nil,                      // empty plan
		{{Start: 0, End: n - 1}}, // does not cover the grid
		{{Start: 1, End: n}},     // does not start at 0
		{{Start: 0, End: n}, {Start: n, End: n + 1}}, // overruns the grid
		{{Start: 0, End: 2}, {Start: 3, End: n}},     // gap
	}
	for i, ranges := range cases {
		if _, err := RunShardPlanned(spec, ranges, 0, nil); err == nil {
			t.Fatalf("case %d: bad plan %v accepted", i, ranges)
		}
	}
	ok := []shard.Range{{Start: 0, End: n}}
	if _, err := RunShardPlanned(spec, ok, 1, nil); err == nil {
		t.Fatal("out-of-range plan position accepted")
	}
	// The aligned grids additionally reject unaligned boundaries.
	aspec := Spec{Experiment: "fig8attrs", Dataset: "adult", N: 300, Seed: 9,
		SampleSize: 250, AttrCounts: []int{2, 4}, Names: []string{"LR"}}
	ag := mustOpen(t, aspec)
	bad := []shard.Range{{Start: 0, End: 1}, {Start: 1, End: ag.Len()}}
	if _, err := RunShardPlanned(aspec, bad, 0, nil); err == nil {
		t.Fatal("unaligned plan accepted for a timing grid")
	}
}
