package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"fairbench/internal/dispatch"
	"fairbench/internal/experiments"
	"fairbench/internal/sched"
)

// TestMain doubles as the worker subprocess body — the re-exec pattern
// internal/dispatch and internal/sched tests use. "worker" runs a real
// shard via dispatch.Worker; with FAIRBENCH_WORKER_DELAY_MS in its
// environment it pauses first, which is how cancellation tests hold a
// genuinely live worker open.
func TestMain(m *testing.M) {
	switch os.Getenv("FAIRBENCH_TEST_HELPER") {
	case "":
		os.Exit(m.Run())
	case "worker":
		idx, err := strconv.Atoi(os.Getenv("HELPER_SHARD"))
		if err == nil {
			err = dispatch.Worker(os.Getenv("HELPER_MANIFEST"), idx, os.Getenv("HELPER_OUT"))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(2)
}

// helperSpawn re-execs this test binary as a worker subprocess.
func helperSpawn(extraEnv ...string) dispatch.SpawnFunc {
	return func(manifestPath string, shard int, outPath string) (*exec.Cmd, error) {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			"FAIRBENCH_TEST_HELPER=worker",
			"HELPER_MANIFEST="+manifestPath,
			"HELPER_SHARD="+strconv.Itoa(shard),
			"HELPER_OUT="+outPath,
		)
		cmd.Env = append(cmd.Env, extraEnv...)
		return cmd, nil
	}
}

// countingSpawn wraps helperSpawn and counts invocations — the probe
// that proves a warm grid never reaches a worker subprocess.
func countingSpawn(n *atomic.Int64, extraEnv ...string) dispatch.SpawnFunc {
	inner := helperSpawn(extraEnv...)
	return func(manifestPath string, shard int, outPath string) (*exec.Cmd, error) {
		n.Add(1)
		return inner(manifestPath, shard, outPath)
	}
}

func smallSpec() experiments.Spec {
	return experiments.Spec{Experiment: "fig23", Dataset: "compas", N: 300, Seed: 6,
		Sizes: []int{60, 120}, Names: []string{"LR", "KamCal-DP"}}
}

// canonical marshals an output with its timing fields zeroed (the
// byte-identical guarantee covers the metric payload).
func canonical(t *testing.T, out *experiments.Output) []byte {
	t.Helper()
	for _, pts := range out.Efficiency {
		for i := range pts {
			pts[i].Row.Seconds, pts[i].Row.Overhead = 0, 0
		}
	}
	for i := range out.Rows {
		out.Rows[i].Seconds, out.Rows[i].Overhead = 0, 0
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func serialReference(t *testing.T, spec experiments.Spec) []byte {
	t.Helper()
	g, err := experiments.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	return canonical(t, out)
}

// TestResolveBackend pins the BackendAuto resolution rules: hosts win
// over a directory, a directory selects dispatch, nothing selects
// in-process, and an explicit backend always wins.
func TestResolveBackend(t *testing.T) {
	hosts := []sched.Host{{Name: "a"}}
	cases := []struct {
		opts RunOptions
		want Backend
	}{
		{RunOptions{}, BackendInproc},
		{RunOptions{Dir: "/tmp/x"}, BackendDispatch},
		{RunOptions{Hosts: hosts}, BackendSched},
		{RunOptions{Dir: "/tmp/x", Hosts: hosts}, BackendSched},
		{RunOptions{Backend: BackendDispatch, Hosts: hosts}, BackendDispatch},
		{RunOptions{Backend: BackendInproc, Dir: "/tmp/x", Hosts: hosts}, BackendInproc},
	}
	for _, c := range cases {
		if got := resolve(c.opts); got != c.want {
			t.Errorf("resolve(%+v) = %q, want %q", c.opts, got, c.want)
		}
	}
}

// TestBackendsMatchSerial is the engine's core guarantee: one Run call,
// three backends, all byte-identical to the serial reference.
func TestBackendsMatchSerial(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	ctx := context.Background()
	eng := New(RunOptions{})

	out, rep, err := eng.Run(ctx, spec, RunOptions{Backend: BackendInproc})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("inproc output diverges from serial run")
	}
	if rep.Backend != BackendInproc || rep.CellsComputed != 4 || rep.Fingerprint == "" {
		t.Fatalf("inproc report %+v", rep)
	}

	out, rep, err = eng.Run(ctx, spec, RunOptions{
		Dir: t.TempDir(), Shards: 2, Procs: 2, Spawn: helperSpawn(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("dispatch output diverges from serial run")
	}
	if rep.Backend != BackendDispatch || rep.Dispatch == nil || rep.CellsComputed != 4 {
		t.Fatalf("dispatch report %+v", rep)
	}

	out, rep, err = eng.Run(ctx, spec, RunOptions{
		Dir:   t.TempDir(),
		Hosts: []sched.Host{{Name: "h1", Slots: 2}},
		Spawn: helperSpawn(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("sched output diverges from serial run")
	}
	if rep.Backend != BackendSched || rep.Sched == nil || rep.CellsComputed != 4 {
		t.Fatalf("sched report %+v", rep)
	}
}

// TestCancellationStopsWorkersPromptly: cancel a dispatch-backed run
// while delayed workers are genuinely executing; Run must return quickly
// with an error wrapping context.Canceled, and the directory must resume
// to the serial answer afterwards.
func TestCancellationStopsWorkersPromptly(t *testing.T) {
	spec := smallSpec()
	dir := t.TempDir()
	eng := New(RunOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := eng.Run(ctx, spec, RunOptions{
		Dir: dir, Shards: 2, Procs: 2,
		Spawn: helperSpawn("FAIRBENCH_WORKER_DELAY_MS=20000"),
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers were told to sleep 20s; a prompt stop returns in well
	// under that, even on a loaded machine.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; workers were not stopped promptly", elapsed)
	}

	out, rep, err := eng.ResumeRun(context.Background(), dir, RunOptions{
		Procs: 2, Spawn: helperSpawn(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialReference(t, spec), canonical(t, out)) {
		t.Fatal("resumed output diverges from serial run")
	}
	if rep.Backend != BackendDispatch {
		t.Fatalf("resume report %+v", rep)
	}
}

// TestInprocCancelledBeforeStart: an already-cancelled ctx fails fast on
// the in-process backend too.
func TestInprocCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := New(RunOptions{}).Run(ctx, smallSpec(), RunOptions{Backend: BackendInproc})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestWarmGridSpawnsNothing: once the store holds every cell, a
// dispatch- or sched-backed Run is answered by the calling process —
// ServedFromCache set, computed=0, and the spawn counter still zero.
func TestWarmGridSpawnsNothing(t *testing.T) {
	spec := smallSpec()
	cache := t.TempDir()
	eng := New(RunOptions{CacheDir: cache})

	// Warm the store with an in-process run.
	_, rep, err := eng.Run(context.Background(), spec, RunOptions{Backend: BackendInproc})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellsComputed != 4 || rep.CellsCached != 0 {
		t.Fatalf("cold report %+v", rep)
	}

	var spawns atomic.Int64
	out, rep, err := eng.Run(context.Background(), spec, RunOptions{
		Dir: t.TempDir(), Spawn: countingSpawn(&spawns),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ServedFromCache || rep.CellsComputed != 0 || rep.CellsCached != 4 {
		t.Fatalf("warm dispatch report %+v", rep)
	}
	if !bytes.Equal(serialReference(t, spec), canonical(t, out)) {
		t.Fatal("warm output diverges from serial run")
	}
	if n := spawns.Load(); n != 0 {
		t.Fatalf("warm run spawned %d worker subprocess(es), want 0", n)
	}

	out, rep, err = eng.Run(context.Background(), spec, RunOptions{
		Dir:   t.TempDir(),
		Hosts: []sched.Host{{Name: "h1"}},
		Spawn: countingSpawn(&spawns),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ServedFromCache || rep.Backend != BackendSched || rep.CellsComputed != 0 {
		t.Fatalf("warm sched report %+v", rep)
	}
	if !bytes.Equal(serialReference(t, spec), canonical(t, out)) {
		t.Fatal("warm sched output diverges from serial run")
	}
	if n := spawns.Load(); n != 0 {
		t.Fatalf("warm sched run spawned %d worker subprocess(es), want 0", n)
	}
}

// TestDefaultsInherit: fields left zero on a call inherit the engine's
// defaults — the daemon's usage pattern (pin cache + spawn once, pass
// only the per-run directory).
func TestDefaultsInherit(t *testing.T) {
	spec := smallSpec()
	var spawns atomic.Int64
	eng := New(RunOptions{
		CacheDir: t.TempDir(), Procs: 2, Shards: 2,
		Spawn: countingSpawn(&spawns),
	})
	out, rep, err := eng.Run(context.Background(), spec, RunOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend != BackendDispatch || rep.CellsComputed != 4 {
		t.Fatalf("report %+v", rep)
	}
	if spawns.Load() == 0 {
		t.Fatal("default Spawn was not used")
	}
	if !bytes.Equal(serialReference(t, spec), canonical(t, out)) {
		t.Fatal("output diverges from serial run")
	}
}
