package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"

	"fairbench/internal/shard"
	"fairbench/internal/store"
)

// This file binds the generic shard machinery (internal/shard) to typed
// experiment grids: planning a split, running one shard into an envelope,
// and merging envelopes back into driver-native output. The invariant the
// shard-equivalence tests pin down: for any Spec and any k,
//
//	MergeShards(RunShard(spec, 0, k), …, RunShard(spec, k-1, k))
//
// equals Open(spec).RunAll() except for the wall-time fields — whether the
// shards ran in one process, k processes, or k hosts.

// PlanShards reports the contiguous job ranges a k-way split of the
// spec's grid produces. Empty trailing ranges (k > grid size) are valid;
// running them yields empty envelopes that merge cleanly. For the
// pure-timing fig8 grids the ranges align to whole dataset slices, so a
// slice's baseline and approach timings always come from one machine.
func PlanShards(spec Spec, k int) ([]shard.Range, error) {
	g, err := Open(spec)
	if err != nil {
		return nil, err
	}
	return shard.PlanAligned(g.Len(), k, g.alignment())
}

// ShardPlan is a cache-aware split of one grid: a partition of the job
// index space into contiguous aligned ranges, each annotated with how
// many of its cells the result store could not serve at plan time. It is
// what a scheduler places on hosts — fully-cached ranges (Uncached 0)
// never leave the coordinator, which materializes them straight from the
// store, and the remaining ranges are balanced by uncached cell count,
// so hosts share the work still owed rather than the raw index space.
type ShardPlan struct {
	// Spec is the normalized spec the plan was computed over.
	Spec Spec
	// Fingerprint is the grid's shard/cache fingerprint.
	Fingerprint string
	// Total is the grid's job count; the Ranges partition [0, Total).
	Total  int
	Ranges []shard.Range
	// Uncached[i] is how many of Ranges[i]'s cells had no verified cache
	// entry at plan time.
	Uncached []int

	// specJSON is the grid's canonical spec encoding, kept so envelopes
	// served from the plan carry the same Spec bytes runPlanned would.
	specJSON []byte
	// payloads holds the verified cell payloads the store served during
	// planning, by cell index — the plan-time probe already read and
	// checked every cached entry end to end, so the coordinator can serve
	// fully-cached ranges from these bytes without re-reading the store.
	// Only populated by PlanShardsCacheAware in this process; a plan that
	// crossed a process boundary (e.g. a decoded manifest) has none and
	// serves through RunShardPlanned as before.
	payloads map[int][]byte
}

// Assigned returns the plan positions that still hold uncached work —
// the ranges a scheduler must place on hosts. Positions absent here are
// fully cached and are served by the coordinator without spawning
// anything; over a fully-cached grid Assigned is empty.
func (p *ShardPlan) Assigned() []int {
	var idx []int
	for i, u := range p.Uncached {
		if u > 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

// TotalUncached sums the uncached cells across the plan.
func (p *ShardPlan) TotalUncached() int {
	total := 0
	for _, u := range p.Uncached {
		total += u
	}
	return total
}

// PlanShardsCacheAware plans a split of the spec's grid targeting k work
// ranges, consulting the result store cell by cell at plan time: cells
// with verified cache entries weigh nothing, so the plan skips
// fully-cached stretches and balances the rest by work still owed (see
// shard.PlanCacheAware). A nil store plans every cell as uncached, which
// degrades to ordinary aligned planning. Probing verifies entries end to
// end, so a corrupt entry is rejected (and removed) at plan time exactly
// as it would be at run time — and because the probe already decoded
// every good entry, the plan keeps those payloads so ServeEnvelope can
// hand fully-cached ranges to the coordinator without a second store
// pass.
func PlanShardsCacheAware(spec Spec, k int, s store.Backend) (*ShardPlan, error) {
	g, err := Open(spec)
	if err != nil {
		return nil, err
	}
	fp, err := g.Fingerprint()
	if err != nil {
		return nil, err
	}
	align := g.alignment()
	payloads := map[int][]byte{}
	uncached := func(block int) int {
		r := shard.Range{Start: block * align, End: (block + 1) * align}
		return probeRange(fp, g.spec.Seed, r, s, func(i int, payload []byte) {
			payloads[i] = payload
		})
	}
	ranges, counts, err := shard.PlanCacheAware(g.Len(), k, align, uncached)
	if err != nil {
		return nil, err
	}
	return &ShardPlan{
		Spec:        g.Spec(),
		Fingerprint: fp,
		Total:       g.Len(),
		Ranges:      ranges,
		Uncached:    counts,
		specJSON:    g.specJSON,
		payloads:    payloads,
	}, nil
}

// UncachedInRange counts the cells of r the store cannot serve for the
// given grid identity — fingerprint plus seed, on this process's GOARCH.
// A nil store serves nothing, so every cell counts. This is the single
// probe loop behind cache-aware planning and the scheduler's
// adopted-manifest resume path; keeping both on one helper means a
// change to the cache key shape can never make them drift.
func UncachedInRange(fp string, seed int64, r shard.Range, s store.Backend) int {
	return probeRange(fp, seed, r, s, nil)
}

// probeRange is the shared probe loop: it counts the cells of r the
// store cannot serve and, when hit is non-nil, hands every verified
// payload to it. Store probing goes through Get, which checks each entry
// end to end, so a payload passed to hit carries exactly the bytes a
// later cache read would.
func probeRange(fp string, seed int64, r shard.Range, s store.Backend, hit func(i int, payload []byte)) int {
	if s == nil {
		return r.Len()
	}
	n := 0
	for i := r.Start; i < r.End; i++ {
		payload, ok := s.Get(store.Key{Fingerprint: fp, Index: i, Seed: seed, Arch: runtime.GOARCH})
		if !ok {
			n++
			continue
		}
		if hit != nil {
			hit(i, payload)
		}
	}
	return n
}

// ServeEnvelope materializes plan position i as an envelope straight
// from the payloads captured at plan time — the single-pass plan+serve
// path: ranges the plan found fully cached never touch the store (or the
// grid) again. It reproduces RunShardPlanned's bytes exactly: each
// payload decodes to the cell the cache path would serve, is marked
// Cached, and is re-encoded by the same marshaller. ok is false when the
// plan carries no payloads (crossed a process boundary), the position is
// out of range, or any cell of the range is missing or fails to decode
// to its own index — callers then fall back to RunShardPlanned, which
// recomputes exactly as the cache path would on the same bad entry.
// A nil plan serves nothing, so callers holding a maybe-nil plan (e.g.
// the scheduler's adopted-manifest path) can call unconditionally.
func (p *ShardPlan) ServeEnvelope(i int) (*shard.Envelope, bool) {
	if p == nil || len(p.payloads) == 0 || len(p.specJSON) == 0 || i < 0 || i >= len(p.Ranges) {
		return nil, false
	}
	env := &shard.Envelope{
		Version:     shard.Version,
		Fingerprint: p.Fingerprint,
		Spec:        json.RawMessage(p.specJSON),
		Arch:        runtime.GOARCH,
		Seed:        p.Spec.Seed,
		Shard:       i,
		Shards:      len(p.Ranges),
		Total:       p.Total,
	}
	r := p.Ranges[i]
	for idx := r.Start; idx < r.End; idx++ {
		payload, ok := p.payloads[idx]
		if !ok {
			return nil, false
		}
		var cell Cell
		if err := json.Unmarshal(payload, &cell); err != nil || cell.Index != idx {
			return nil, false
		}
		cell.Cached = true
		raw, err := json.Marshal(cell)
		if err != nil {
			return nil, false
		}
		env.Indices = append(env.Indices, idx)
		env.Rows = append(env.Rows, raw)
		env.Cached = append(env.Cached, idx)
	}
	return env, true
}

// RunShard executes shard i of a k-way split of the spec's grid and
// returns the serializable partial-result envelope. Each shard
// re-materializes the grid from the spec (datasets are synthesized from
// the spec's seed), so shards share no state and can run anywhere. When
// a process-wide result cache is configured (SetDefaultCache), cells
// with verified cache entries are served instead of computed, and the
// envelope's Cached field records which ones.
func RunShard(spec Spec, i, k int) (*shard.Envelope, error) {
	g, err := Open(spec)
	if err != nil {
		return nil, err
	}
	return runShard(context.Background(), g, i, k)
}

// RunShardContext is RunShard with an explicit result store, a
// cancellation context, and a worker-pool size: a done ctx stops the
// worker pool promptly (no new cells start; in-flight cells finish) and
// the error wraps ctx.Err(). A nil store runs every cell cold, matching
// the worker subprocess contract rather than inheriting the process
// default; workers <= 0 uses the process-wide runner default.
func RunShardContext(ctx context.Context, spec Spec, i, k int, s store.Backend, workers int) (*shard.Envelope, error) {
	g, err := Open(spec)
	if err != nil {
		return nil, err
	}
	g.SetCache(s)
	g.SetWorkers(workers)
	return runShard(ctx, g, i, k)
}

// RunShardCached is RunShard against an explicit result store, leaving
// the process-wide default untouched — the worker-subprocess entry point
// and the facade's one-shot cached path.
func RunShardCached(spec Spec, i, k int, s store.Backend) (*shard.Envelope, error) {
	g, err := Open(spec)
	if err != nil {
		return nil, err
	}
	g.SetCache(s)
	return runShard(context.Background(), g, i, k)
}

// RunShardPlanned executes ranges[i] of an explicit plan of the spec's
// grid — the execution half of cache-aware scheduling, where range
// boundaries come from a recorded plan (e.g. a scheduler manifest)
// rather than the uniform k-way split. The ranges must partition
// [0, grid len) contiguously on aligned boundaries; the envelope records
// plan position i of len(ranges), so a complete planned set merges
// through MergeShards exactly like a uniform one. A nil store runs
// every cell cold.
func RunShardPlanned(spec Spec, ranges []shard.Range, i int, s store.Backend) (*shard.Envelope, error) {
	g, err := Open(spec)
	if err != nil {
		return nil, err
	}
	g.SetCache(s)
	if err := validatePlan(g, ranges); err != nil {
		return nil, err
	}
	if i < 0 || i >= len(ranges) {
		return nil, fmt.Errorf("experiments: planned range %d of %d out of range", i, len(ranges))
	}
	return runPlanned(context.Background(), g, ranges, i)
}

// validatePlan checks that ranges is a contiguous, aligned partition of
// the grid's job index space — the guard against running a drifted or
// hand-edited plan whose envelopes could never merge.
func validatePlan(g *Grid, ranges []shard.Range) error {
	if len(ranges) == 0 {
		return fmt.Errorf("experiments: empty shard plan for a %d-cell grid", g.Len())
	}
	align, prev := g.alignment(), 0
	for i, r := range ranges {
		if r.Start != prev || r.End < r.Start {
			return fmt.Errorf("experiments: plan range %d is [%d,%d), want to start at %d", i, r.Start, r.End, prev)
		}
		if r.Start%align != 0 || r.End%align != 0 {
			return fmt.Errorf("experiments: plan range %d [%d,%d) not aligned to %d", i, r.Start, r.End, align)
		}
		prev = r.End
	}
	if prev != g.Len() {
		return fmt.Errorf("experiments: plan covers [0,%d) of a %d-cell grid", prev, g.Len())
	}
	return nil
}

func runShard(ctx context.Context, g *Grid, i, k int) (*shard.Envelope, error) {
	ranges, err := shard.PlanAligned(g.Len(), k, g.alignment())
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= k {
		return nil, fmt.Errorf("experiments: shard %d of %d out of range", i, k)
	}
	return runPlanned(ctx, g, ranges, i)
}

// runPlanned executes ranges[i] into an envelope at plan position
// i/len(ranges) — the shared body behind the uniform and cache-aware
// shard paths.
func runPlanned(ctx context.Context, g *Grid, ranges []shard.Range, i int) (*shard.Envelope, error) {
	fp, err := g.Fingerprint()
	if err != nil {
		return nil, err
	}
	r := ranges[i]
	cells, err := g.RunRangeContext(ctx, r.Start, r.End)
	if err != nil {
		return nil, err
	}
	env := &shard.Envelope{
		Version:     shard.Version,
		Fingerprint: fp,
		Spec:        json.RawMessage(g.specJSON),
		Arch:        runtime.GOARCH,
		Seed:        g.spec.Seed,
		Shard:       i,
		Shards:      len(ranges),
		Total:       g.Len(),
	}
	for _, c := range cells {
		raw, err := json.Marshal(c)
		if err != nil {
			return nil, fmt.Errorf("experiments: encoding cell %d: %w", c.Index, err)
		}
		env.Indices = append(env.Indices, c.Index)
		env.Rows = append(env.Rows, raw)
		if c.Cached {
			env.Cached = append(env.Cached, c.Index)
		}
	}
	return env, nil
}

// MergeShards validates a complete shard set, reassembles the cells in
// job order, and runs the driver's post-pass, returning output identical
// (modulo wall-time fields) to a single-process run of the same spec. It
// rejects envelopes whose fingerprints disagree with each other or with
// the grid the embedded spec materializes — the latter catches envelopes
// produced by a different build whose grid definition drifted.
func MergeShards(envs []*shard.Envelope) (*Output, error) {
	return MergeShardsNamed(envs, nil)
}

// MergeShardsNamed is MergeShards with a provenance label (typically the
// file path) per envelope: every validation error names the offending
// file, and an incomplete set fails with the shard indices still
// missing.
func MergeShardsNamed(envs []*shard.Envelope, names []string) (*Output, error) {
	m, err := shard.MergeNamed(envs, names)
	if err != nil {
		return nil, err
	}
	// The assembly post-pass below does float arithmetic of its own (fold
	// averaging, stability moments), so the coordinator must share the
	// shards' architecture for the serial-equivalence guarantee to hold.
	if m.Arch != runtime.GOARCH {
		return nil, fmt.Errorf("experiments: envelopes were produced on %s but this process is %s; merge on a matching architecture", m.Arch, runtime.GOARCH)
	}
	var spec Spec
	if err := json.Unmarshal(m.Spec, &spec); err != nil {
		return nil, fmt.Errorf("experiments: decoding envelope spec: %w", err)
	}
	g, err := Open(spec)
	if err != nil {
		return nil, err
	}
	fp, err := g.Fingerprint()
	if err != nil {
		return nil, err
	}
	if fp != m.Fingerprint {
		return nil, fmt.Errorf("experiments: fingerprint mismatch: envelopes carry %.12s…, spec materializes %.12s… (grid definition drift?)", m.Fingerprint, fp)
	}
	cells := make([]Cell, m.Total)
	for i, raw := range m.Rows {
		if err := json.Unmarshal(raw, &cells[i]); err != nil {
			return nil, fmt.Errorf("experiments: decoding cell %d: %w", i, err)
		}
	}
	// Assemble re-checks count and per-cell indices for every caller.
	return g.Assemble(cells)
}
