// Quickstart: measure the discrimination of a fairness-unaware classifier
// on COMPAS, then repair it with Kam-Cal reweighing and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fairbench"
)

func main() {
	// COMPAS at its paper size: 7,214 defendants; Race is the sensitive
	// attribute and Y=1 the favorable "does not reoffend" outcome.
	src := fairbench.COMPAS(0, 1)
	train, test := fairbench.Split(src.Data, 0.7, 42)

	show := func(name string, a fairbench.Approach) {
		row, err := fairbench.Evaluate(a, train, test, src.Graph)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s accuracy=%.3f  DI*=%.3f  1-|TPRB|=%.3f  1-|TE|=%.3f\n",
			name, row.Correct.Accuracy, row.Fair.DIStar, row.Fair.TPRB, row.Fair.TE)
	}

	// The fairness-unaware baseline shows the raw bias.
	show("LR", fairbench.Baseline())

	// Kam-Cal reweighs the training data so the label is independent of
	// race before the same classifier trains on it.
	a, err := fairbench.NewApproach("KamCal-DP", src.Graph, 7)
	if err != nil {
		log.Fatal(err)
	}
	show("KamCal-DP", a)

	fmt.Println("\nKam-Cal trades a little accuracy for near-parity in positive predictions.")
}
