package experiments

import (
	"fairbench/internal/registry"
	"fairbench/internal/rng"
	"fairbench/internal/stats"
	"fairbench/internal/synth"
)

// CrossValidate reproduces the 5-fold cross-validation tables (Figures
// 16-18): every approach's metrics averaged over k folds. The (fold ×
// approach) grid runs as one flat job list; per-fold baseline subtraction
// and the fold average are post-passes in the serial loop's order, so the
// aggregate floats match a serial run bit for bit.
func CrossValidate(src *synth.Source, k int, seed int64) ([]Row, error) {
	if k >= 2 {
		if out, ok, err := specOutput(src, seed, Spec{Experiment: "cv", K: k}); ok {
			if err != nil {
				return nil, err
			}
			return out.Rows, nil
		}
	}
	out, err := cvGrid(src, k, seed).RunAll()
	if err != nil {
		return nil, err
	}
	return out.Rows, nil
}

func cvGrid(src *synth.Source, k int, seed int64) *Grid {
	folds := src.Data.KFold(k, rng.New(seed))
	names := append([]string{"LR"}, registry.Names...)
	slices := make([]splitPair, len(folds))
	for fi, fold := range folds {
		slices[fi] = splitPair{train: fold.Train, test: fold.Test}
	}
	return metricGrid(slices, names, src.Graph, seed,
		func(fi int) int64 { return seed + int64(fi) },
		func(g *Grid, cells []Cell) (*Output, error) {
			rows, err := cellRows(cells)
			if err != nil {
				return nil, err
			}
			acc := make([]Row, len(names))
			for fi := range slices {
				fold := rows[fi*len(names) : (fi+1)*len(names)]
				baseline := fold[0].Seconds
				for ni := range fold {
					// The CV tables keep the raw (possibly negative)
					// difference: they report fold averages, not the
					// clamped Figure 7 column.
					fold[ni].Overhead = fold[ni].Seconds - baseline
					addRow(&acc[ni], fold[ni])
				}
			}
			inv := 1 / float64(k)
			for i := range acc {
				scaleRow(&acc[i], inv)
			}
			return &Output{Rows: acc}, nil
		})
}

func addRow(dst *Row, src Row) {
	if dst.Approach == "" {
		dst.Approach, dst.Stage, dst.Targets = src.Approach, src.Stage, src.Targets
	}
	dst.Correct.Accuracy += src.Correct.Accuracy
	dst.Correct.Precision += src.Correct.Precision
	dst.Correct.Recall += src.Correct.Recall
	dst.Correct.F1 += src.Correct.F1
	dst.Fair.DIStar += src.Fair.DIStar
	dst.Fair.TPRB += src.Fair.TPRB
	dst.Fair.TNRB += src.Fair.TNRB
	dst.Fair.ID += src.Fair.ID
	dst.Fair.TE += src.Fair.TE
	dst.Fair.NDE += src.Fair.NDE
	dst.Fair.NIE += src.Fair.NIE
	dst.Seconds += src.Seconds
	dst.Overhead += src.Overhead
}

func scaleRow(r *Row, f float64) {
	r.Correct.Accuracy *= f
	r.Correct.Precision *= f
	r.Correct.Recall *= f
	r.Correct.F1 *= f
	r.Fair.DIStar *= f
	r.Fair.TPRB *= f
	r.Fair.TNRB *= f
	r.Fair.ID *= f
	r.Fair.TE *= f
	r.Fair.NDE *= f
	r.Fair.NIE *= f
	r.Seconds *= f
	r.Overhead *= f
}

// StabilityRow summarizes an approach's variability over repeated random
// folds (Figure 22): mean and standard deviation per headline metric.
type StabilityRow struct {
	Approach          string
	Stage             string
	AccMean, AccStd   float64
	DIMean, DIStd     float64
	TPRBMean, TPRBStd float64
	F1Mean, F1Std     float64
}

// Stability reproduces Figure 22: runs random 2/3-1/3 folds and reports
// per-metric variance. Folds are drawn up front (each from its own
// rng.New(seed+run), exactly as the serial protocol), then the (run ×
// approach) grid fans out across the pool.
func Stability(src *synth.Source, runs int, seed int64) ([]StabilityRow, error) {
	if runs >= 1 {
		if out, ok, err := specOutput(src, seed, Spec{Experiment: "fig22", Runs: runs}); ok {
			if err != nil {
				return nil, err
			}
			return out.Stability, nil
		}
	}
	out, err := stabilityGrid(src, runs, seed).RunAll()
	if err != nil {
		return nil, err
	}
	return out.Stability, nil
}

func stabilityGrid(src *synth.Source, runs int, seed int64) *Grid {
	names := append([]string{"LR"}, registry.Names...)
	slices := make([]splitPair, runs)
	for ri := range slices {
		slices[ri].train, slices[ri].test = src.Data.Split(2.0/3, rng.New(seed+int64(ri)))
	}
	return metricGrid(slices, names, src.Graph, seed,
		func(ri int) int64 { return seed + int64(ri) },
		func(g *Grid, cells []Cell) (*Output, error) {
			rows, err := cellRows(cells)
			if err != nil {
				return nil, err
			}
			out := make([]StabilityRow, len(names))
			for ni, name := range names {
				acc := make([]float64, 0, runs)
				di := make([]float64, 0, runs)
				tprb := make([]float64, 0, runs)
				f1 := make([]float64, 0, runs)
				for ri := 0; ri < runs; ri++ {
					r := rows[ri*len(names)+ni]
					acc = append(acc, r.Correct.Accuracy)
					di = append(di, r.Fair.DIStar)
					tprb = append(tprb, r.Fair.TPRB)
					f1 = append(f1, r.Correct.F1)
				}
				out[ni] = StabilityRow{
					Approach: name,
					Stage:    rows[ni].Stage,
					AccMean:  stats.Mean(acc), AccStd: stats.Std(acc),
					DIMean: stats.Mean(di), DIStd: stats.Std(di),
					TPRBMean: stats.Mean(tprb), TPRBStd: stats.Std(tprb),
					F1Mean: stats.Mean(f1), F1Std: stats.Std(f1),
				}
			}
			return &Output{Stability: out}, nil
		})
}

// EfficiencyPoint is one (training size, metrics) measurement.
type EfficiencyPoint struct {
	Size int
	Row  Row
}

// DataEfficiency reproduces Figure 23: every approach is retrained on
// growing training samples and evaluated on a fixed held-out test set.
// Samples are drawn up front (rng.New(seed+size), as in the serial
// protocol); the (size × approach) grid fans out across the pool.
func DataEfficiency(src *synth.Source, sizes []int, names []string, seed int64) (map[string][]EfficiencyPoint, error) {
	if sizes != nil {
		if out, ok, err := specOutput(src, seed, Spec{Experiment: "fig23", Sizes: sizes, Names: names}); ok {
			if err != nil {
				return nil, err
			}
			return out.Efficiency, nil
		}
	}
	out, err := efficiencyGrid(src, sizes, names, seed).RunAll()
	if err != nil {
		return nil, err
	}
	return out.Efficiency, nil
}

func efficiencyGrid(src *synth.Source, sizes []int, names []string, seed int64) *Grid {
	if names == nil {
		names = append([]string{"LR"}, registry.Names...)
	}
	trainPool, test := src.Data.Split(0.7, rng.New(seed))
	slices := make([]splitPair, len(sizes))
	for si, n := range sizes {
		slices[si] = splitPair{train: trainPool.Sample(n, rng.New(seed+int64(n))), test: test}
	}
	return metricGrid(slices, names, src.Graph, seed, func(int) int64 { return seed },
		func(g *Grid, cells []Cell) (*Output, error) {
			rows, err := cellRows(cells)
			if err != nil {
				return nil, err
			}
			out := map[string][]EfficiencyPoint{}
			for si, n := range sizes {
				for ni, name := range names {
					out[name] = append(out[name], EfficiencyPoint{Size: n, Row: rows[si*len(names)+ni]})
				}
			}
			return &Output{Efficiency: out}, nil
		})
}
