// Package sat implements a weighted partial MaxSAT solver: hard clauses
// must be satisfied; soft clauses carry weights and the solver maximizes
// the total weight of satisfied soft clauses. The Salimi^jf_MaxSAT
// pre-processor encodes its minimal database repair (tuple insertions and
// deletions restoring the multi-valued dependency that expresses
// justifiable fairness) as such a formula.
//
// Two engines are provided: an exact DPLL-style branch-and-bound used for
// formulas up to a configurable variable budget, and a WalkSAT-style
// stochastic local search fallback for larger encodings — mirroring the
// exact/heuristic split of practical MaxSAT systems (the paper cites
// Borchers & Furman's two-phase exact algorithm).
package sat

import (
	"fairbench/internal/rng"
)

// Lit is a literal: positive values v mean variable v is true, negative
// values -v mean variable v is false. Variables are numbered from 1.
type Lit int

// Var returns the literal's variable index (1-based).
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Clause is a disjunction of literals.
type Clause []Lit

// Formula is a weighted partial MaxSAT instance.
type Formula struct {
	NumVars int
	Hard    []Clause
	Soft    []Clause
	Weights []float64 // parallel to Soft
}

// AddHard appends a hard clause.
func (f *Formula) AddHard(c ...Lit) {
	f.Hard = append(f.Hard, Clause(c))
	f.track(c)
}

// AddSoft appends a soft clause with the given weight.
func (f *Formula) AddSoft(w float64, c ...Lit) {
	f.Soft = append(f.Soft, Clause(c))
	f.Weights = append(f.Weights, w)
	f.track(c)
}

func (f *Formula) track(c []Lit) {
	for _, l := range c {
		if v := l.Var(); v > f.NumVars {
			f.NumVars = v
		}
	}
}

func satisfied(c Clause, assign []bool) bool {
	for _, l := range c {
		v := l.Var()
		if (l > 0) == assign[v] {
			return true
		}
	}
	return false
}

// Cost returns the total weight of soft clauses violated by assign, or
// -1 if any hard clause is violated. assign is 1-indexed.
func (f *Formula) Cost(assign []bool) float64 {
	for _, c := range f.Hard {
		if !satisfied(c, assign) {
			return -1
		}
	}
	var cost float64
	for i, c := range f.Soft {
		if !satisfied(c, assign) {
			cost += f.Weights[i]
		}
	}
	return cost
}

// Result is a MaxSAT solution.
type Result struct {
	Assignment []bool // 1-indexed; index 0 unused
	Cost       float64
	Exact      bool // true when produced by the exact engine
}

// Options tunes the solver.
type Options struct {
	// ExactVarLimit is the largest variable count handled by the exact
	// branch-and-bound engine (default 24).
	ExactVarLimit int
	// LocalSearchIters bounds the stochastic local search (default 20000).
	LocalSearchIters int
	// Seed seeds the local search.
	Seed int64
}

func (o *Options) defaults() {
	if o.ExactVarLimit == 0 {
		o.ExactVarLimit = 24
	}
	if o.LocalSearchIters == 0 {
		o.LocalSearchIters = 20000
	}
}

// Solve minimizes the violated soft weight subject to the hard clauses. It
// returns an error-free Result with Cost = -1 only when the hard clauses
// are unsatisfiable under both engines.
func Solve(f *Formula, opts Options) Result {
	opts.defaults()
	if f.NumVars <= opts.ExactVarLimit {
		return solveExact(f)
	}
	return solveLocal(f, opts)
}

// solveExact enumerates assignments with branch-and-bound pruning on the
// accumulated soft cost.
func solveExact(f *Formula) Result {
	n := f.NumVars
	assign := make([]bool, n+1)
	best := Result{Cost: -1, Exact: true}
	var rec func(v int, cost float64)
	rec = func(v int, cost float64) {
		if best.Cost >= 0 && cost >= best.Cost {
			return // bound: already worse than incumbent
		}
		if v > n {
			if fullCost := f.Cost(assign); fullCost >= 0 && (best.Cost < 0 || fullCost < best.Cost) {
				best.Cost = fullCost
				best.Assignment = append([]bool(nil), assign...)
			}
			return
		}
		for _, val := range [2]bool{true, false} {
			assign[v] = val
			// Early hard-clause violation check: a hard clause whose
			// variables are all assigned and unsatisfied prunes the branch.
			if violatedPrefix(f.Hard, assign, v) {
				continue
			}
			rec(v+1, cost+softPrefixCost(f, assign, v))
		}
	}
	rec(1, 0)
	return best
}

// violatedPrefix reports whether some hard clause is fully decided by
// variables <= v and unsatisfied.
func violatedPrefix(hard []Clause, assign []bool, v int) bool {
	for _, c := range hard {
		decided := true
		sat := false
		for _, l := range c {
			if l.Var() > v {
				decided = false
				break
			}
			if (l > 0) == assign[l.Var()] {
				sat = true
				break
			}
		}
		if decided && !sat {
			return true
		}
	}
	return false
}

// softPrefixCost returns the weight of soft clauses that become decided and
// violated exactly at variable v (their maximum variable is v).
func softPrefixCost(f *Formula, assign []bool, v int) float64 {
	var cost float64
	for i, c := range f.Soft {
		maxVar := 0
		sat := false
		for _, l := range c {
			if l.Var() > maxVar {
				maxVar = l.Var()
			}
			if l.Var() <= v && (l > 0) == assign[l.Var()] {
				sat = true
			}
		}
		if maxVar == v && !sat {
			cost += f.Weights[i]
		}
	}
	return cost
}

// solveLocal runs WalkSAT-style stochastic local search: start from a
// random assignment repaired toward hard-feasibility, then greedily flip
// variables that reduce (hard violations, soft cost) lexicographically,
// with random-walk moves to escape local minima.
func solveLocal(f *Formula, opts Options) Result {
	g := rng.New(opts.Seed)
	n := f.NumVars
	assign := make([]bool, n+1)
	for v := 1; v <= n; v++ {
		assign[v] = g.Float64() < 0.5
	}
	score := func(a []bool) (hardViol int, soft float64) {
		for _, c := range f.Hard {
			if !satisfied(c, a) {
				hardViol++
			}
		}
		for i, c := range f.Soft {
			if !satisfied(c, a) {
				soft += f.Weights[i]
			}
		}
		return hardViol, soft
	}
	curH, curS := score(assign)
	best := Result{Cost: -1}
	record := func() {
		if curH == 0 && (best.Cost < 0 || curS < best.Cost) {
			best.Cost = curS
			best.Assignment = append([]bool(nil), assign...)
		}
	}
	record()
	for iter := 0; iter < opts.LocalSearchIters; iter++ {
		v := 1 + g.Intn(n)
		assign[v] = !assign[v]
		h, s := score(assign)
		improves := h < curH || (h == curH && s < curS)
		if improves || g.Float64() < 0.1 { // random-walk acceptance
			curH, curS = h, s
			record()
		} else {
			assign[v] = !assign[v] // revert
		}
	}
	return best
}
