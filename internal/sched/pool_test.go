package sched

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestPoolChanFanOut(t *testing.T) {
	p := NewPoolChan()
	ch1, stop1 := p.Subscribe()
	ch2, stop2 := p.Subscribe()
	defer stop2()
	p.Join(Host{Name: "x"})
	for i, ch := range []<-chan PoolUpdate{ch1, ch2} {
		select {
		case up := <-ch:
			if len(up.Join) != 1 || up.Join[0].Name != "x" {
				t.Fatalf("subscriber %d got %+v", i, up)
			}
		case <-time.After(time.Second):
			t.Fatalf("subscriber %d never received the update", i)
		}
	}
	// An unsubscribed listener stops receiving; the other still does.
	stop1()
	p.Leave("x")
	select {
	case up := <-ch2:
		if len(up.Leave) != 1 || up.Leave[0] != "x" {
			t.Fatalf("got %+v", up)
		}
	case <-time.After(time.Second):
		t.Fatal("surviving subscriber never received the leave")
	}
	select {
	case up, ok := <-ch1:
		if ok {
			t.Fatalf("cancelled subscriber received %+v", up)
		}
	default:
	}
}

func writeHosts(t *testing.T, path string, hosts []Host) {
	t.Helper()
	data, err := json.Marshal(hosts)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestWatchHostsDiffsEdits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hosts.json")
	writeHosts(t, path, []Host{{Name: "a"}, {Name: "b"}})
	w, err := WatchHosts(path, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ch, stop := w.Subscribe()
	defer stop()

	// Add c, drop b, and grow a's slots: one update carrying two joins
	// (new host + changed definition) and one leave.
	writeHosts(t, path, []Host{{Name: "a", Slots: 4}, {Name: "c"}})
	select {
	case up := <-ch:
		if len(up.Join) != 2 || up.Join[0].Name != "a" || up.Join[0].Slots != 4 || up.Join[1].Name != "c" {
			t.Fatalf("join %+v", up.Join)
		}
		if len(up.Leave) != 1 || up.Leave[0] != "b" {
			t.Fatalf("leave %v", up.Leave)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never reported the edit")
	}

	// A transiently broken file produces no update; the last good
	// definition stands, so restoring the identical content stays quiet.
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	writeHosts(t, path, []Host{{Name: "a", Slots: 4}, {Name: "c"}})
	time.Sleep(50 * time.Millisecond)
	select {
	case up := <-ch:
		t.Fatalf("unchanged pool produced update %+v", up)
	default:
	}
}

func TestWatchHostsRejectsMissingFile(t *testing.T) {
	if _, err := WatchHosts(filepath.Join(t.TempDir(), "absent.json"), time.Second); err == nil {
		t.Fatal("watching a missing hosts file should fail")
	}
}
