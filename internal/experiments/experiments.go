// Package experiments implements one driver per artifact of the paper's
// evaluation (Section 4 and the appendix):
//
//	Figure 7    — correctness & fairness of all approaches × 3 datasets
//	Figure 8    — efficiency & scalability vs data size and #attributes
//	Figure 9    — robustness to the T1/T2/T3 data-error templates
//	Figure 10   — sensitivity of pre/post approaches to the ML model
//	Figures 16-18 — 5-fold cross-validation metric tables
//	Figure 22   — stability over random train/test folds
//	Figure 23   — data efficiency vs training-set size
//
// Every driver is deterministic given its seed and returns structured rows
// the report package renders.
package experiments

import (
	"fmt"
	"time"

	"fairbench/internal/causal"
	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/metrics"
	"fairbench/internal/registry"
	"fairbench/internal/rng"
	"fairbench/internal/synth"
)

// Row is the per-approach result of one evaluation run: the four
// correctness metrics, the normalized fairness metrics, and the runtime
// overhead over the fairness-unaware baseline (Section 4.3's accounting).
type Row struct {
	Approach string
	Stage    string
	Targets  []fair.Metric
	Correct  metrics.Correctness
	Fair     metrics.Normalized
	// Seconds is the approach's wall time (fit + predict); Overhead is
	// Seconds minus the baseline LR's on the same split.
	Seconds, Overhead float64
	// NoteNSF flags a Thomas run that fell back after failing its safety
	// test.
	NoteNSF bool
}

// Evaluate fits a on train, predicts test, and computes every metric.
func Evaluate(a fair.Approach, train, test *dataset.Dataset, g *causal.Graph) (Row, error) {
	start := time.Now()
	if err := a.Fit(train); err != nil {
		return Row{}, fmt.Errorf("%s: %w", a.Name(), err)
	}
	yhat, err := a.Predict(test)
	if err != nil {
		return Row{}, fmt.Errorf("%s: %w", a.Name(), err)
	}
	elapsed := time.Since(start).Seconds()
	raw := metrics.ComputeFairness(test, yhat, a, g)
	return Row{
		Approach: a.Name(),
		Stage:    a.Stage().String(),
		Targets:  a.Targets(),
		Correct:  metrics.ComputeCorrectness(test.Y, yhat),
		Fair:     metrics.Normalize(raw),
		Seconds:  elapsed,
	}, nil
}

// CorrectnessFairness reproduces Figure 7 for one dataset: the baseline LR
// followed by all 18 variants on a 70/30 split.
func CorrectnessFairness(src *synth.Source, seed int64) ([]Row, error) {
	train, test := src.Data.Split(0.7, rng.New(seed))
	return evalAll(train, test, src.Graph, seed)
}

func evalAll(train, test *dataset.Dataset, g *causal.Graph, seed int64) ([]Row, error) {
	names := append([]string{"LR"}, registry.Names...)
	rows := make([]Row, 0, len(names))
	var baseline float64
	for _, name := range names {
		a, err := registry.New(name, registry.Config{Graph: g, Seed: seed})
		if err != nil {
			return nil, err
		}
		row, err := Evaluate(a, train, test, g)
		if err != nil {
			return nil, err
		}
		if name == "LR" {
			baseline = row.Seconds
		}
		row.Overhead = row.Seconds - baseline
		if row.Overhead < 0 {
			row.Overhead = 0
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ScalabilityPoint is one (size or attribute count, overhead seconds)
// measurement for one approach.
type ScalabilityPoint struct {
	X        int
	Overhead float64
}

// ScalabilityRows reproduces Figure 8(a-c): runtime overhead as the number
// of training points grows, on samples of the given dataset.
func ScalabilityRows(src *synth.Source, sizes []int, names []string, seed int64) (map[string][]ScalabilityPoint, error) {
	out := map[string][]ScalabilityPoint{}
	for _, n := range sizes {
		sample := src.Data.Sample(n, rng.New(seed+int64(n)))
		train, test := sample.Split(0.7, rng.New(seed))
		base, err := timeOne("LR", train, test, src.Graph, seed)
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			sec, err := timeOne(name, train, test, src.Graph, seed)
			if err != nil {
				return nil, err
			}
			ov := sec - base
			if ov < 0 {
				ov = 0
			}
			out[name] = append(out[name], ScalabilityPoint{X: n, Overhead: ov})
		}
	}
	return out, nil
}

// ScalabilityAttrs reproduces Figure 8(d-f): runtime overhead as the
// number of attributes grows, by projecting the dataset onto attribute
// prefixes.
func ScalabilityAttrs(src *synth.Source, attrCounts []int, names []string, sampleSize int, seed int64) (map[string][]ScalabilityPoint, error) {
	out := map[string][]ScalabilityPoint{}
	sample := src.Data.Sample(sampleSize, rng.New(seed))
	for _, k := range attrCounts {
		if k > sample.Dim() {
			k = sample.Dim()
		}
		cols := make([]int, k)
		for i := range cols {
			cols[i] = i
		}
		proj := sample.ProjectAttrs(cols)
		train, test := proj.Split(0.7, rng.New(seed))
		base, err := timeOne("LR", train, test, src.Graph, seed)
		if err != nil {
			return nil, err
		}
		for _, name := range names {
			sec, err := timeOne(name, train, test, src.Graph, seed)
			if err != nil {
				return nil, err
			}
			ov := sec - base
			if ov < 0 {
				ov = 0
			}
			out[name] = append(out[name], ScalabilityPoint{X: k, Overhead: ov})
		}
	}
	return out, nil
}

func timeOne(name string, train, test *dataset.Dataset, g *causal.Graph, seed int64) (float64, error) {
	a, err := registry.New(name, registry.Config{Graph: g, Seed: seed})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := a.Fit(train); err != nil {
		return 0, fmt.Errorf("%s: %w", name, err)
	}
	if _, err := a.Predict(test); err != nil {
		return 0, fmt.Errorf("%s: %w", name, err)
	}
	return time.Since(start).Seconds(), nil
}
