// Package registry enumerates the 18 evaluated fair-classification
// variants of the paper (Figure 5, rightmost column) and constructs them
// with their paper hyper-parameters. Causal approaches receive the
// dataset's causal graph; pre- and post-processing approaches receive a
// downstream classifier factory (logistic regression unless the
// model-sensitivity experiment swaps it).
package registry

import (
	"fmt"
	"sort"

	"fairbench/internal/causal"
	"fairbench/internal/classifier"
	"fairbench/internal/fair"
	"fairbench/internal/inproc"
	"fairbench/internal/postproc"
	"fairbench/internal/preproc"
)

// Config carries the per-run construction context.
type Config struct {
	// Graph is the dataset's causal model (required by the Zha-Wu
	// variants; nil disables them).
	Graph *causal.Graph
	// Factory builds downstream classifiers for pre- and post-processing
	// (nil = logistic regression).
	Factory classifier.Factory
	// Seed drives every stochastic component.
	Seed int64
}

// Names lists the evaluated variants in the paper's presentation order
// (pre, then in, then post).
var Names = []string{
	"KamCal-DP", "Feld-DP", "Calmon-DP", "ZhaWu-PSF", "ZhaWu-DCE",
	"Salimi-JF-MaxSAT", "Salimi-JF-MatFac",
	"Zafar-DP-Fair", "Zafar-DP-Acc", "Zafar-EO-Fair", "ZhaLe-EO",
	"Kearns-PE", "Celis-PP", "Thomas-DP", "Thomas-EO",
	"KamKar-DP", "Hardt-EO", "Pleiss-EOP",
}

// ExtendedNames lists the three additional appendix variants (Figure 15):
// Madras^dp fair representations and the Agarwal^dp/eo reductions.
var ExtendedNames = []string{"Madras-DP", "Agarwal-DP", "Agarwal-EO"}

// New constructs one variant by its registry name.
func New(name string, cfg Config) (fair.Approach, error) {
	switch name {
	case "Madras-DP":
		return preproc.NewMadras(cfg.Factory, cfg.Seed), nil
	case "Agarwal-DP":
		return inproc.NewAgarwalDP(), nil
	case "Agarwal-EO":
		return inproc.NewAgarwalEO(), nil
	case "LR":
		b := fair.NewBaseline()
		if cfg.Factory != nil {
			b.Factory = cfg.Factory
		}
		return b, nil
	case "KamCal-DP":
		return preproc.NewKamCal(cfg.Factory, cfg.Seed), nil
	case "Feld-DP":
		return preproc.NewFeld(cfg.Factory), nil
	case "Calmon-DP":
		return preproc.NewCalmon(cfg.Factory, cfg.Seed), nil
	case "ZhaWu-PSF":
		return preproc.NewZhaWuPSF(cfg.Graph, cfg.Factory), nil
	case "ZhaWu-DCE":
		return preproc.NewZhaWuDCE(cfg.Graph, cfg.Factory), nil
	case "Salimi-JF-MaxSAT":
		return preproc.NewSalimiMaxSAT(cfg.Factory, cfg.Seed), nil
	case "Salimi-JF-MatFac":
		return preproc.NewSalimiMatFac(cfg.Factory, cfg.Seed), nil
	case "Zafar-DP-Fair":
		return inproc.NewZafarDPFair(), nil
	case "Zafar-DP-Acc":
		return inproc.NewZafarDPAcc(), nil
	case "Zafar-EO-Fair":
		return inproc.NewZafarEOFair(), nil
	case "ZhaLe-EO":
		return inproc.NewZhaLe(cfg.Seed), nil
	case "Kearns-PE":
		return inproc.NewKearns(), nil
	case "Celis-PP":
		return inproc.NewCelis(), nil
	case "Thomas-DP":
		return inproc.NewThomasDP(cfg.Seed), nil
	case "Thomas-EO":
		return inproc.NewThomasEO(cfg.Seed), nil
	case "KamKar-DP":
		return postproc.NewKamKar(cfg.Factory, cfg.Seed), nil
	case "Hardt-EO":
		return postproc.NewHardt(cfg.Factory, cfg.Seed), nil
	case "Pleiss-EOP":
		return postproc.NewPleiss(cfg.Factory, cfg.Seed), nil
	default:
		return nil, fmt.Errorf("registry: unknown approach %q", name)
	}
}

// All constructs every evaluated variant.
func All(cfg Config) ([]fair.Approach, error) {
	out := make([]fair.Approach, 0, len(Names))
	for _, n := range Names {
		a, err := New(n, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// ByStage returns the evaluated variant names grouped by stage, each group
// in presentation order.
func ByStage() map[fair.Stage][]string {
	out := map[fair.Stage][]string{}
	for _, n := range Names {
		a, err := New(n, Config{})
		if err != nil {
			continue
		}
		out[a.Stage()] = append(out[a.Stage()], n)
	}
	for _, names := range out {
		sort.SliceStable(names, func(i, j int) bool {
			return indexOf(names[i]) < indexOf(names[j])
		})
	}
	return out
}

func indexOf(name string) int {
	for i, n := range Names {
		if n == name {
			return i
		}
	}
	return len(Names)
}
