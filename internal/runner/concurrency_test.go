package runner

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestRunOffsetIndices checks the shard contract: with Offset set, the n
// jobs are invoked with their global grid indices [Offset, Offset+n), in
// every execution mode.
func TestRunOffsetIndices(t *testing.T) {
	for _, workers := range []int{1, 3} {
		got, err := Run(5, Options{Workers: workers, Offset: 10}, func(i int) (int, error) {
			return i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for local, global := range got {
			if global != 10+local {
				t.Fatalf("workers=%d: job %d saw index %d, want %d", workers, local, global, 10+local)
			}
		}
	}
}

// TestRunOffsetJobError checks that failures report the global index, and
// that fail-fast still resolves to the lowest global failure.
func TestRunOffsetJobError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Run(6, Options{Workers: workers, Offset: 20, FailFast: true}, func(i int) (int, error) {
			if i == 22 || i == 24 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		})
		var je *JobError
		if !errors.As(err, &je) || je.Index != 22 {
			t.Fatalf("workers=%d: error %v, want JobError at global index 22", workers, err)
		}
	}
}

// TestSetParallelismRacesWithRun hammers the process-wide worker knob from
// many goroutines while Runs are in flight. Under -race this guards the
// atomicity of the default; functionally it asserts that a Run started at
// any moment still returns complete, ordered results (in-flight runs keep
// their pool; the knob only affects pool sizing at Run entry).
func TestSetParallelismRacesWithRun(t *testing.T) {
	defer SetParallelism(0)
	stop := make(chan struct{})
	var flip sync.WaitGroup
	for g := 0; g < 4; g++ {
		flip.Add(1)
		go func(g int) {
			defer flip.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
					SetParallelism((g + n) % 9)
					if Parallelism() < 1 {
						t.Error("Parallelism() < 1 mid-race")
						return
					}
				}
			}
		}(g)
	}
	var runs sync.WaitGroup
	for r := 0; r < 8; r++ {
		runs.Add(1)
		go func(r int) {
			defer runs.Done()
			got, err := Run(50, Options{}, func(i int) (int, error) { return r*1000 + i, nil })
			if err != nil {
				t.Errorf("run %d: %v", r, err)
				return
			}
			for i, v := range got {
				if v != r*1000+i {
					t.Errorf("run %d: result %d = %d", r, i, v)
					return
				}
			}
		}(r)
	}
	runs.Wait()
	close(stop)
	flip.Wait()
}

// TestRunProperties is a randomized property test (fixed seed, so it is
// reproducible): for random job counts, worker counts, offsets, and
// failure sets, Run must (a) return results in job order, (b) in fail-fast
// mode report exactly the lowest-index failure, and (c) in collect-all
// mode return every success plus all failures joined. Run under -race in
// CI, it doubles as a scheduling fuzz of the pool.
func TestRunProperties(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := rnd.Intn(40)
		workers := 1 + rnd.Intn(8)
		offset := rnd.Intn(100)
		failFast := trial%2 == 0
		fails := map[int]bool{}
		for j := 0; j < rnd.Intn(4); j++ {
			fails[offset+rnd.Intn(n+1)] = true
		}
		lowestFail := -1
		for i := offset; i < offset+n; i++ {
			if fails[i] {
				lowestFail = i
				break
			}
		}
		got, err := Run(n, Options{Workers: workers, Offset: offset, FailFast: failFast},
			func(i int) (int, error) {
				if fails[i] {
					return 0, fmt.Errorf("fail %d", i)
				}
				return i * 3, nil
			})
		if lowestFail == -1 {
			if err != nil {
				t.Fatalf("trial %d: unexpected error %v", trial, err)
			}
			for local, v := range got {
				if v != (offset+local)*3 {
					t.Fatalf("trial %d: result %d = %d", trial, local, v)
				}
			}
			continue
		}
		var je *JobError
		if !errors.As(err, &je) {
			t.Fatalf("trial %d: error %v is not a JobError", trial, err)
		}
		if failFast {
			if got != nil || je.Index != lowestFail {
				t.Fatalf("trial %d: fail-fast reported %d, want %d", trial, je.Index, lowestFail)
			}
			continue
		}
		// Collect-all: first joined failure is the lowest, successes intact.
		if je.Index != lowestFail {
			t.Fatalf("trial %d: first joined failure %d, want %d", trial, je.Index, lowestFail)
		}
		for local, v := range got {
			global := offset + local
			want := global * 3
			if fails[global] {
				want = 0
			}
			if v != want {
				t.Fatalf("trial %d: collect-all result %d = %d, want %d", trial, local, v, want)
			}
		}
	}
}
