package sched

import (
	"os"
	"testing"
	"time"

	"fairbench/internal/experiments"
	"fairbench/internal/store"
)

// BenchmarkSchedPlanCacheAware measures the coordinator's plan-time cost
// over a half-cached grid: materializing the grid from its spec plus one
// verified store probe per cell. This is the fixed price every scheduled
// run pays before the first assignment; scripts/bench.sh records it to
// BENCH_sched.json.
func BenchmarkSchedPlanCacheAware(b *testing.B) {
	spec := experiments.Spec{Experiment: "fig7", Dataset: "german", N: 300, Seed: 1}
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	// Populate the first half of the grid so the plan sees a realistic
	// mid-run cache: a cached prefix to skip and an uncached tail to
	// balance.
	if _, err := experiments.RunShardCached(spec, 0, 2, st); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := experiments.PlanShardsCacheAware(spec, 4, st)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Uncached[0] != 0 || plan.TotalUncached() == 0 {
			b.Fatalf("unexpected plan %+v", plan)
		}
	}
}

// stragglerRun is the shared body of the speculation benchmark pair:
// one host stalls every attempt by a scripted delay while the other
// serves instantly. With speculation off the run waits out the stall;
// with it on, the straggling range is duplicated onto the idle host and
// the run finishes as soon as the duplicate validates. bench.sh records
// both into BENCH_sched.json; their ratio is the speculation win.
func stragglerRun(b *testing.B, speculate bool) {
	spec := smallSpec()
	inner := newInstantInner(b, spec, 3)
	const stall = 300 * time.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp(b.TempDir(), "run")
		if err != nil {
			b.Fatal(err)
		}
		// A fresh FaultTransport per iteration resets the per-attempt
		// call counters, so every run sees the same fault schedule.
		transport := &FaultTransport{Inner: inner, Script: func(h Host, _, _ int) Fault {
			if h.Name == "slow" {
				return Fault{Delay: stall}
			}
			return Fault{}
		}}
		b.StartTimer()
		_, rep, err := Run(spec, Options{
			Dir:              dir,
			Shards:           3,
			Hosts:            []Host{{Name: "slow"}, {Name: "fast", Slots: 2}},
			Transports:       map[string]Transport{"local": transport},
			Speculate:        speculate,
			SpeculateFactor:  2,
			SpeculateFloor:   100 * time.Millisecond,
			HeartbeatTimeout: 400 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Failed) != 0 {
			b.Fatalf("failed ranges %v", rep.Failed)
		}
		if speculate && len(rep.Speculated) == 0 {
			b.Fatal("speculation enabled but never triggered")
		}
	}
}

// BenchmarkSchedStraggler: the scripted-straggler run with speculation
// OFF — the baseline that pays the full stall.
func BenchmarkSchedStraggler(b *testing.B) { stragglerRun(b, false) }

// BenchmarkSchedSpeculation: the same run with speculation ON — the
// straggling range is raced on the idle host.
func BenchmarkSchedSpeculation(b *testing.B) { stragglerRun(b, true) }

// BenchmarkSchedLocal is a whole scheduled run — plan, spawn workers on
// two local hosts, validate parts, merge — over a small cold grid, the
// end-to-end overhead of going multi-host on one machine.
func BenchmarkSchedLocal(b *testing.B) {
	spec := smallSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp(b.TempDir(), "run")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		_, rep, err := Run(spec, Options{
			Dir:        dir,
			Shards:     2,
			Hosts:      []Host{{Name: "a"}, {Name: "b"}},
			Transports: map[string]Transport{"local": workerTransport()},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Failed) != 0 {
			b.Fatalf("failed ranges %v", rep.Failed)
		}
	}
}
