package shard

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestPlanContiguousBalanced(t *testing.T) {
	cases := []struct {
		n, k int
		want []Range
	}{
		{10, 3, []Range{{0, 4}, {4, 7}, {7, 10}}},
		{9, 3, []Range{{0, 3}, {3, 6}, {6, 9}}},
		{2, 3, []Range{{0, 1}, {1, 2}, {2, 2}}},
		{0, 2, []Range{{0, 0}, {0, 0}}},
		{5, 1, []Range{{0, 5}}},
	}
	for _, c := range cases {
		got, err := Plan(c.n, c.k)
		if err != nil {
			t.Fatalf("Plan(%d,%d): %v", c.n, c.k, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("Plan(%d,%d): %v", c.n, c.k, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Plan(%d,%d)[%d] = %+v, want %+v", c.n, c.k, i, got[i], c.want[i])
			}
		}
	}
}

func TestPlanProperties(t *testing.T) {
	for n := 0; n <= 50; n++ {
		for k := 1; k <= 8; k++ {
			ranges, err := Plan(n, k)
			if err != nil {
				t.Fatal(err)
			}
			prev, covered := 0, 0
			for _, r := range ranges {
				if r.Start != prev || r.End < r.Start {
					t.Fatalf("Plan(%d,%d): not contiguous: %+v", n, k, ranges)
				}
				if r.Len() > n/k+1 || r.Len() < n/k {
					t.Fatalf("Plan(%d,%d): unbalanced range %+v", n, k, r)
				}
				prev = r.End
				covered += r.Len()
			}
			if prev != n || covered != n {
				t.Fatalf("Plan(%d,%d): covers %d of %d", n, k, covered, n)
			}
		}
	}
}

func TestPlanAligned(t *testing.T) {
	// 5 slices × 19 timing columns: boundaries must fall on multiples of
	// 19 so no slice's columns straddle two shards.
	ranges, err := PlanAligned(95, 2, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 2 || ranges[0] != (Range{0, 57}) || ranges[1] != (Range{57, 95}) {
		t.Fatalf("aligned plan: %+v", ranges)
	}
	for n := 0; n <= 6; n++ {
		for k := 1; k <= 4; k++ {
			ranges, err := PlanAligned(n*19, k, 19)
			if err != nil {
				t.Fatal(err)
			}
			covered := 0
			for _, r := range ranges {
				if r.Start%19 != 0 || r.End%19 != 0 {
					t.Fatalf("PlanAligned(%d,%d,19): unaligned range %+v", n*19, k, r)
				}
				covered += r.Len()
			}
			if covered != n*19 {
				t.Fatalf("PlanAligned(%d,%d,19): covers %d", n*19, k, covered)
			}
		}
	}
	if _, err := PlanAligned(20, 2, 19); err == nil {
		t.Fatal("non-multiple job count accepted")
	}
	// align <= 1 degenerates to the unaligned planner.
	ranges, err = PlanAligned(10, 3, 1)
	if err != nil || ranges[0] != (Range{0, 4}) {
		t.Fatalf("align=1: %+v, %v", ranges, err)
	}
}

func TestPlanRejectsBadInput(t *testing.T) {
	if _, err := Plan(-1, 2); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := Plan(5, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := Fingerprint([]byte(`{"experiment":"fig7"}`), 19)
	if a != Fingerprint([]byte(`{"experiment":"fig7"}`), 19) {
		t.Fatal("fingerprint not deterministic")
	}
	if a == Fingerprint([]byte(`{"experiment":"fig9"}`), 19) {
		t.Fatal("fingerprint ignores spec")
	}
	if a == Fingerprint([]byte(`{"experiment":"fig7"}`), 20) {
		t.Fatal("fingerprint ignores total")
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint length %d", len(a))
	}
}

// envelopes builds a valid k-way shard set over n integer rows.
func envelopes(t *testing.T, n, k int) []*Envelope {
	t.Helper()
	spec := json.RawMessage(`{"experiment":"test"}`)
	fp := Fingerprint(spec, n)
	ranges, err := Plan(n, k)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Envelope, k)
	for s, r := range ranges {
		e := &Envelope{
			Version: Version, Fingerprint: fp, Spec: spec, Arch: "amd64", Seed: 42,
			Shard: s, Shards: k, Total: n,
		}
		for i := r.Start; i < r.End; i++ {
			e.Indices = append(e.Indices, i)
			e.Rows = append(e.Rows, json.RawMessage(fmt.Sprintf("%d", i*i)))
		}
		out[s] = e
	}
	return out
}

func TestMergeReassemblesInJobOrder(t *testing.T) {
	envs := envelopes(t, 11, 3)
	// Shuffle delivery order; merge must still be index-ordered.
	envs[0], envs[2] = envs[2], envs[0]
	m, err := Merge(envs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total != 11 || len(m.Rows) != 11 || m.Seed != 42 {
		t.Fatalf("merged: %+v", m)
	}
	for i, raw := range m.Rows {
		if string(raw) != fmt.Sprintf("%d", i*i) {
			t.Fatalf("row %d = %s", i, raw)
		}
	}
}

func TestMergeRejectsMismatchedFingerprint(t *testing.T) {
	envs := envelopes(t, 9, 3)
	envs[1].Fingerprint = Fingerprint([]byte("other grid"), 9)
	if _, err := Merge(envs); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("want fingerprint mismatch, got %v", err)
	}
}

func TestMergeRejectsIncompleteAndDuplicate(t *testing.T) {
	envs := envelopes(t, 9, 3)
	if _, err := Merge(envs[:2]); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("want missing-job error, got %v", err)
	}
	dup := envelopes(t, 9, 3)
	dup[1].Indices[0] = 0 // collides with shard 0's first job
	if _, err := Merge(dup); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("want duplicate-job error, got %v", err)
	}
}

func TestMergeRejectsDisagreement(t *testing.T) {
	seed := envelopes(t, 6, 2)
	seed[1].Seed = 7
	if _, err := Merge(seed); err == nil || !strings.Contains(err.Error(), "seed mismatch") {
		t.Fatalf("want seed mismatch, got %v", err)
	}
	if _, err := Merge(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	// Shards computed on different architectures may differ in low float
	// bits (FMA contraction), so mixed-arch sets must be rejected.
	arch := envelopes(t, 6, 2)
	arch[1].Arch = "arm64"
	if _, err := Merge(arch); err == nil || !strings.Contains(err.Error(), "architecture mismatch") {
		t.Fatalf("want architecture mismatch, got %v", err)
	}
	// And an envelope that records no architecture at all is invalid.
	bare := envelopes(t, 6, 2)
	bare[0].Arch = ""
	if _, err := Merge(bare); err == nil {
		t.Fatal("arch-less envelope accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	env := envelopes(t, 5, 2)[0]
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint != env.Fingerprint || back.Shard != env.Shard ||
		len(back.Rows) != len(env.Rows) {
		t.Fatalf("round trip: %+v", back)
	}
	if _, err := Decode([]byte(`{"version": 99}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := Decode([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	env := envelopes(t, 5, 2)[0]
	env.Indices[0] = 99
	if err := env.Validate(); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	env = envelopes(t, 5, 2)[0]
	env.Rows = env.Rows[:1]
	if err := env.Validate(); err == nil {
		t.Fatal("indices/rows length mismatch accepted")
	}
}

// TestMergeNamedAttributesErrors pins the merge-diagnostics contract:
// with file names supplied, every validation error names the offending
// file, and an incomplete set lists the shard indices still missing.
func TestMergeNamedAttributesErrors(t *testing.T) {
	names := []string{"part0.json", "part1.json", "part2.json"}
	envs := envelopes(t, 9, 3)
	envs[2].Fingerprint = Fingerprint([]byte("other grid"), 9)
	if _, err := MergeNamed(envs, names); err == nil ||
		!strings.Contains(err.Error(), "part2.json") {
		t.Fatalf("fingerprint error does not name the file: %v", err)
	}

	incomplete := envelopes(t, 9, 3)
	_, err := MergeNamed([]*Envelope{incomplete[0], incomplete[2]}, []string{"part0.json", "part2.json"})
	if err == nil || !strings.Contains(err.Error(), "missing shard(s) 1 of 3") {
		t.Fatalf("incomplete set does not list missing shard indices: %v", err)
	}

	dup := envelopes(t, 9, 3)
	dup[1].Indices[0] = 0
	if _, err := MergeNamed(dup, names); err == nil ||
		!strings.Contains(err.Error(), "part0.json") || !strings.Contains(err.Error(), "part1.json") {
		t.Fatalf("duplicate-job error does not name both files: %v", err)
	}

	invalid := envelopes(t, 9, 3)
	invalid[1].Arch = ""
	if _, err := MergeNamed(invalid, names); err == nil ||
		!strings.Contains(err.Error(), "part1.json") {
		t.Fatalf("validation error does not name the file: %v", err)
	}
}

// TestCachedProvenance pins the Cached field: it must be a subset of the
// envelope's indices, and Merge unions it across shards in job order.
func TestCachedProvenance(t *testing.T) {
	envs := envelopes(t, 9, 3)
	envs[1].Cached = []int{envs[1].Indices[0]}
	envs[2].Cached = append([]int(nil), envs[2].Indices...)
	m, err := Merge(envs)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int{envs[1].Indices[0]}, envs[2].Indices...)
	if len(m.Cached) != len(want) {
		t.Fatalf("merged cached %v", m.Cached)
	}
	for i, idx := range want {
		if m.Cached[i] != idx {
			t.Fatalf("merged cached %v, want %v", m.Cached, want)
		}
	}
	bad := envelopes(t, 9, 3)
	bad[0].Cached = []int{8} // shard 0 never delivered job 8
	if err := bad[0].Validate(); err == nil {
		t.Fatal("cached index outside the envelope's indices accepted")
	}
}
