package shard

import (
	"encoding/json"
	"fmt"
	"testing"
)

// blockWeights derives a deterministic uncached-count-per-block function
// from fuzz bytes: block b gets bits[b%len]%(align+1) uncached cells.
func blockWeights(bits []byte, align int) func(int) int {
	return func(b int) int {
		if len(bits) == 0 {
			return align
		}
		return int(bits[b%len(bits)]) % (align + 1)
	}
}

// checkPlanInvariants asserts everything a cache-aware plan promises:
// the ranges partition [0, n) contiguously on aligned boundaries, every
// uncached cell is covered exactly once (counts re-derive from the
// weights), no range with work is fully cached, and a grid with no work
// is a single skippable range.
func checkPlanInvariants(t *testing.T, n, k, align int, w func(int) int, ranges []Range, counts []int) {
	t.Helper()
	if len(ranges) != len(counts) {
		t.Fatalf("%d ranges but %d counts", len(ranges), len(counts))
	}
	if n == 0 {
		if len(ranges) != 0 {
			t.Fatalf("empty grid planned %v", ranges)
		}
		return
	}
	if align < 1 {
		align = 1
	}
	prev, total := 0, 0
	for i, r := range ranges {
		if r.Start != prev || r.End < r.Start {
			t.Fatalf("range %d = %+v breaks the partition at %d", i, r, prev)
		}
		if r.Start%align != 0 || r.End%align != 0 {
			t.Fatalf("range %d = %+v not aligned to %d", i, r, align)
		}
		if r.Len() == 0 {
			t.Fatalf("range %d is empty", i)
		}
		// counts[i] must equal the actual uncached weight of the range —
		// that is what "covers every uncached cell exactly once" means at
		// range granularity, given the partition.
		uncached := 0
		for b := r.Start / align; b < r.End/align; b++ {
			uncached += w(b)
		}
		if uncached != counts[i] {
			t.Fatalf("range %d reports %d uncached cells, has %d", i, counts[i], uncached)
		}
		// Never assign a fully-cached range: work ranges have work, and
		// zero-work ranges are skippable by construction.
		total += uncached
		prev = r.End
	}
	if prev != n {
		t.Fatalf("plan covers [0,%d) of [0,%d)", prev, n)
	}
	wantTotal := 0
	for b := 0; b < n/align; b++ {
		wantTotal += w(b)
	}
	if total != wantTotal {
		t.Fatalf("plan accounts for %d uncached cells, grid has %d", total, wantTotal)
	}
	if wantTotal == 0 && len(ranges) != 1 {
		t.Fatalf("fully-cached grid planned as %d ranges, want one skippable range", len(ranges))
	}
}

func FuzzPlanCacheAware(f *testing.F) {
	f.Add(uint8(10), uint8(3), uint8(1), []byte{0xff})
	f.Add(uint8(0), uint8(1), uint8(1), []byte{})
	f.Add(uint8(8), uint8(2), uint8(4), []byte{0x00})
	f.Add(uint8(50), uint8(7), uint8(2), []byte{0x01, 0x00, 0x03})
	f.Add(uint8(19), uint8(4), uint8(1), []byte{0x00, 0x01})
	f.Fuzz(func(t *testing.T, blocks, k, align uint8, bits []byte) {
		a := int(align)%8 + 1
		n := (int(blocks) % 256) * a
		kk := int(k)%16 + 1
		w := blockWeights(bits, a)
		ranges, counts, err := PlanCacheAware(n, kk, a, w)
		if err != nil {
			t.Fatalf("valid inputs rejected: %v", err)
		}
		checkPlanInvariants(t, n, kk, a, w, ranges, counts)
	})
}

func TestPlanCacheAwareTable(t *testing.T) {
	// No cache: degrades to ~k balanced contiguous ranges.
	full := func(int) int { return 1 }
	ranges, counts, err := PlanCacheAware(10, 3, 1, full)
	if err != nil {
		t.Fatal(err)
	}
	checkPlanInvariants(t, 10, 3, 1, full, ranges, counts)
	if len(ranges) != 3 {
		t.Fatalf("uncached plan has %d ranges: %v", len(ranges), ranges)
	}

	// Fully cached: one skippable range regardless of k.
	none := func(int) int { return 0 }
	ranges, counts, err = PlanCacheAware(12, 4, 1, none)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 1 || counts[0] != 0 || ranges[0] != (Range{0, 12}) {
		t.Fatalf("fully-cached plan: %v %v", ranges, counts)
	}

	// A cached prefix becomes its own skippable range; the tail is split
	// by its uncached weight.
	prefix := func(b int) int {
		if b < 6 {
			return 0
		}
		return 1
	}
	ranges, counts, err = PlanCacheAware(12, 2, 1, prefix)
	if err != nil {
		t.Fatal(err)
	}
	checkPlanInvariants(t, 12, 2, 1, prefix, ranges, counts)
	if ranges[0] != (Range{0, 6}) || counts[0] != 0 {
		t.Fatalf("cached prefix not isolated: %v %v", ranges, counts)
	}
	if len(ranges) != 3 || counts[1] != 3 || counts[2] != 3 {
		t.Fatalf("tail not balanced by uncached weight: %v %v", ranges, counts)
	}

	// Aligned grids keep slice boundaries even when the cache fragments
	// them (a block is half cached: its uncached weight is 2 of 4).
	half := func(b int) int {
		if b%2 == 0 {
			return 2
		}
		return 0
	}
	ranges, counts, err = PlanCacheAware(16, 2, 4, half)
	if err != nil {
		t.Fatal(err)
	}
	checkPlanInvariants(t, 16, 2, 4, half, ranges, counts)

	// Bad inputs are rejected.
	if _, _, err := PlanCacheAware(-1, 2, 1, full); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, _, err := PlanCacheAware(4, 0, 1, full); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := PlanCacheAware(5, 2, 2, full); err == nil {
		t.Fatal("unaligned n accepted")
	}
	if _, _, err := PlanCacheAware(4, 2, 2, func(int) int { return 3 }); err == nil {
		t.Fatal("weight above align accepted")
	}
}

// validFuzzEnvelope builds a small self-consistent envelope for the
// decode fuzz corpus.
func validFuzzEnvelope() []byte {
	spec := json.RawMessage(`{"experiment":"fuzz"}`)
	e := &Envelope{
		Version: Version, Fingerprint: Fingerprint(spec, 2), Spec: spec,
		Arch: "amd64", Seed: 1, Shard: 0, Shards: 1, Total: 2,
		Indices: []int{0, 1},
		Rows:    []json.RawMessage{json.RawMessage("1"), json.RawMessage("4")},
	}
	data, err := e.Encode()
	if err != nil {
		panic(err)
	}
	return data
}

// FuzzEnvelopeDecode: arbitrary bytes must never panic the decoder, and
// whatever decodes must survive an encode/decode round trip and must not
// merge unless its fingerprint is genuinely satisfied by its own spec —
// forged envelopes are rejected by verification, not silently merged.
func FuzzEnvelopeDecode(f *testing.F) {
	f.Add(validFuzzEnvelope())
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version":1,"fingerprint":"deadbeef","spec":{},"arch":"amd64","shards":1,"total":1,"indices":[0],"rows":[null]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return // rejected: exactly what arbitrary bytes deserve
		}
		// Anything that decodes is internally consistent and must
		// round-trip through the wire format.
		enc, err := env.Encode()
		if err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v", err)
		}
		env2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded envelope does not decode: %v", err)
		}
		if env2.Fingerprint != env.Fingerprint || env2.Total != env.Total ||
			len(env2.Rows) != len(env.Rows) {
			t.Fatal("round trip changed the envelope")
		}
		// Merging must never panic, and must reject any envelope whose
		// fingerprint is not the hash of its own spec and total.
		merged, err := Merge([]*Envelope{env})
		if env.VerifyFingerprint() != nil && err == nil {
			t.Fatalf("forged fingerprint %.12s… merged silently", env.Fingerprint)
		}
		if err == nil && merged.Total != env.Total {
			t.Fatal("merge changed the grid size")
		}
	})
}

// TestForgedEnvelopeNeverMerges pins the non-fuzz form of the same
// contract: an envelope set that is mutually consistent but carries a
// fingerprint its spec does not hash to is rejected.
func TestForgedEnvelopeNeverMerges(t *testing.T) {
	spec := json.RawMessage(`{"experiment":"forged"}`)
	forgedFP := Fingerprint([]byte(`{"experiment":"innocent"}`), 4)
	envs := make([]*Envelope, 2)
	for s := range envs {
		e := &Envelope{
			Version: Version, Fingerprint: forgedFP, Spec: spec,
			Arch: "amd64", Seed: 9, Shard: s, Shards: 2, Total: 4,
		}
		for i := s * 2; i < s*2+2; i++ {
			e.Indices = append(e.Indices, i)
			e.Rows = append(e.Rows, json.RawMessage(fmt.Sprintf("%d", i)))
		}
		envs[s] = e
	}
	// Both envelopes agree with each other in every field, so only the
	// self-fingerprint verification can catch the forgery.
	if _, err := Merge(envs); err == nil {
		t.Fatal("mutually-consistent forged envelopes merged")
	}
}
