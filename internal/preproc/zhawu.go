package preproc

import (
	"math"

	"fairbench/internal/causal"
	"fairbench/internal/classifier"
	"fairbench/internal/dataset"
	"fairbench/internal/fair"
)

// ZhaWu implements Zhang, Wu & Wu's causal label repairs. Both variants
// exploit the dataset's causal graph to locate the causal influence of the
// sensitive attribute S on the ground-truth label Y and then minimally
// modify Y:
//
//   - direct-causal-effect mode (Zha-Wu^dce): within every stratum q of the
//     mediator set Q (the parents of Y that block all indirect paths from S
//     to Y), the per-group label-rate gap Δq = P(Y=1|S=1,q) - P(Y=1|S=0,q)
//     is pushed below the threshold Tau by flipping the fewest labels;
//   - path-specific mode (Zha-Wu^psf): after the per-stratum (direct-path)
//     repair, the residual marginal gap |P(Y=1|S=1) - P(Y=1|S=0)| — the
//     effect transmitted through the indirect paths — is also flipped away
//     until it falls below Epsilon, removing the causal influence of S
//     through every path.
type ZhaWu struct {
	// Graph is the dataset's causal model (Appendix C).
	Graph *causal.Graph
	// PathSpecific selects the psf variant; false = dce.
	PathSpecific bool
	// Tau is the allowable per-stratum direct effect (paper: 0.05).
	Tau float64
	// Epsilon is the allowable total effect for the psf variant
	// (paper: 0.05).
	Epsilon float64
	// Bins discretizes numeric mediators for stratification (default 3).
	Bins int
}

// RepairName implements fair.Repairer.
func (z *ZhaWu) RepairName() string {
	if z.PathSpecific {
		return "ZhaWu-PSF"
	}
	return "ZhaWu-DCE"
}

// Repair implements fair.Repairer.
func (z *ZhaWu) Repair(train *dataset.Dataset) (*dataset.Dataset, error) {
	if z.Tau == 0 {
		z.Tau = 0.05
	}
	if z.Epsilon == 0 {
		z.Epsilon = 0.05
	}
	if z.Bins == 0 {
		z.Bins = 4
	}
	out := train.Clone()

	// Mediator set Q: attributes on directed paths S -> ... -> Y.
	med := map[string]bool{}
	if z.Graph != nil {
		for _, m := range z.Graph.Mediators(train.SName, train.YName) {
			med[m] = true
		}
	}
	var q []int
	for j, a := range train.Attrs {
		if med[a.Name] {
			q = append(q, j)
		}
	}
	disc := dataset.FitDiscretizer(train, z.Bins)

	// Group tuple indices by stratum code.
	strata := map[int][]int{}
	for i, row := range out.X {
		code, _ := disc.Code(row, q)
		strata[code] = append(strata[code], i)
	}
	for _, idx := range strata {
		z.repairStratum(out, idx, z.Tau)
	}

	if z.PathSpecific {
		// Remove the residual (indirect-path) effect: treat the whole
		// dataset as one stratum and flip toward the epsilon band.
		all := make([]int, out.Len())
		for i := range all {
			all[i] = i
		}
		z.repairStratum(out, all, z.Epsilon)
	}
	return out, nil
}

// repairStratum flips the minimum number of labels among tuples idx so the
// group label-rate gap within the stratum is at most tol. The repair is
// balanced — half of the gap is removed by demoting positives in the
// over-favored group and half by promoting negatives in the other — so the
// stratum's overall base rate is preserved (the minimal-perturbation
// property of the original quadratic program). Flips are deterministic,
// taken from the start of the index list.
func (z *ZhaWu) repairStratum(d *dataset.Dataset, idx []int, tol float64) {
	var n0, n1, p0, p1 float64
	for _, i := range idx {
		if d.S[i] == 1 {
			n1++
			p1 += float64(d.Y[i])
		} else {
			n0++
			p0 += float64(d.Y[i])
		}
	}
	if n0 == 0 || n1 == 0 {
		return
	}
	gap := p1/n1 - p0/n0
	if math.Abs(gap) <= tol {
		return
	}
	// The tolerance is the trigger; a triggered stratum is repaired to
	// (approximately) zero gap, mirroring the original's removal of the
	// offending causal effect rather than trimming it to the threshold.
	overGroup := 1 // group whose rate must fall
	if gap < 0 {
		overGroup = 0
	}
	nOver, nUnder := n1, n0
	if overGroup == 0 {
		nOver, nUnder = n0, n1
	}
	excess := math.Abs(gap)
	demote := int(math.Ceil(excess / 2 * nOver))   // positives -> 0 in over
	promote := int(math.Ceil(excess / 2 * nUnder)) // negatives -> 1 in under
	for _, i := range idx {
		if demote == 0 && promote == 0 {
			break
		}
		switch {
		case d.S[i] == overGroup && d.Y[i] == 1 && demote > 0:
			d.Y[i] = 0
			demote--
		case d.S[i] != overGroup && d.Y[i] == 0 && promote > 0:
			d.Y[i] = 1
			promote--
		}
	}
}

// NewZhaWuPSF returns the evaluated Zha-Wu^psf approach.
func NewZhaWuPSF(g *causal.Graph, factory classifier.Factory) fair.Approach {
	return &fair.PreProcessed{
		ApproachName: "ZhaWu-PSF",
		Target:       []fair.Metric{fair.MetricTE},
		Mechanism:    &ZhaWu{Graph: g, PathSpecific: true},
		Factory:      factory,
		IncludeS:     true,
	}
}

// NewZhaWuDCE returns the evaluated Zha-Wu^dce approach.
func NewZhaWuDCE(g *causal.Graph, factory classifier.Factory) fair.Approach {
	return &fair.PreProcessed{
		ApproachName: "ZhaWu-DCE",
		Target:       []fair.Metric{fair.MetricTE},
		Mechanism:    &ZhaWu{Graph: g, PathSpecific: false},
		Factory:      factory,
		IncludeS:     true,
	}
}
