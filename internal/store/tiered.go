package store

import "sync/atomic"

// DefaultFailThreshold is how many consecutive remote transport failures
// a TieredStore tolerates before declaring the remote down and running
// local-only for the rest of the handle's life.
const DefaultFailThreshold = 3

// TieredStore layers a local Backend (normally a DiskStore) in front of
// a shared RemoteStore:
//
//   - Get reads through: a local hit is served directly; otherwise the
//     remote is consulted and a verified remote hit is promoted into the
//     local tier before being returned, so the next read is local.
//   - Put writes through: the cell lands locally first (that write's
//     error, if any, is the caller's), then best-effort on the remote so
//     other machines see it.
//   - Has mirrors Get's answer without transferring a payload.
//
// Remote outages never fail a run: after FailThreshold consecutive
// transport failures the handle latches Degraded and stops calling the
// remote entirely — every cell is still served or recomputed locally,
// byte-identical to a run that never had a remote. The latch is
// per-handle (per-process): a fleet worker that loses the cache server
// finishes its shard on local compute alone.
type TieredStore struct {
	local  Backend
	remote *RemoteStore

	// FailThreshold is the consecutive-transport-failure count that trips
	// the degradation latch. Set before first use; NewTiered initializes
	// it to DefaultFailThreshold.
	FailThreshold int64

	consecFails atomic.Int64
	degraded    atomic.Bool
	hits        atomic.Int64
	misses      atomic.Int64
}

var _ Backend = (*TieredStore)(nil)

// NewTiered returns a TieredStore reading and writing through local to
// remote. Both must be non-nil.
func NewTiered(local Backend, remote *RemoteStore) *TieredStore {
	return &TieredStore{local: local, remote: remote, FailThreshold: DefaultFailThreshold}
}

// Local returns the front (local) tier.
func (t *TieredStore) Local() Backend { return t.local }

// Remote returns the back (remote) tier.
func (t *TieredStore) Remote() *RemoteStore { return t.remote }

// Degraded reports whether the remote has been declared down for this
// handle: reads and writes are local-only from that point on. Engine
// reports surface this so an operator learns the fleet stopped sharing.
func (t *TieredStore) Degraded() bool { return t.degraded.Load() }

// note tracks the outcome of one remote call: any transport failure
// advances the consecutive-failure count toward the latch, any success
// resets it.
func (t *TieredStore) note(err error) {
	if err == nil {
		t.consecFails.Store(0)
		return
	}
	if t.consecFails.Add(1) >= t.FailThreshold {
		t.degraded.Store(true)
	}
}

func (t *TieredStore) remoteDown() bool { return t.degraded.Load() }

// Get serves k from the local tier, then — unless degraded — from the
// remote, promoting a verified remote hit into the local tier.
func (t *TieredStore) Get(k Key) ([]byte, bool) {
	if payload, ok := t.local.Get(k); ok {
		t.hits.Add(1)
		return payload, true
	}
	if !t.remoteDown() {
		payload, ok, err := t.remote.getChecked(k)
		t.note(err)
		if ok {
			t.hits.Add(1)
			// Promote: future reads (and this run's sibling processes
			// sharing the directory) hit locally. Best-effort — a failed
			// promotion just means the next read asks the remote again.
			t.local.Put(k, payload)
			return payload, true
		}
	}
	t.misses.Add(1)
	return nil, false
}

// Has reports whether either tier holds a verified entry under k.
func (t *TieredStore) Has(k Key) bool {
	if t.local.Has(k) {
		t.hits.Add(1)
		return true
	}
	if !t.remoteDown() {
		ok, err := t.remote.hasChecked(k)
		t.note(err)
		if ok {
			t.hits.Add(1)
			return true
		}
	}
	t.misses.Add(1)
	return false
}

// Put writes through: locally first (returning that error), then
// best-effort to the remote so the fleet's shared cache learns the cell.
func (t *TieredStore) Put(k Key, payload []byte) error {
	if err := t.local.Put(k, payload); err != nil {
		return err
	}
	if !t.remoteDown() {
		t.note(t.remote.putChecked(k, payload))
	}
	return nil
}

// Counters returns the tiered view: Hits/Misses as observed at this
// layer (a hit is a serve from either tier), Writes from the local tier
// (which sees every write-through and promotion), and Rejected/Errors
// summed across tiers so no verification failure or outage is hidden.
func (t *TieredStore) Counters() Counters {
	lc, rc := t.local.Counters(), t.remote.Counters()
	return Counters{
		Hits:     t.hits.Load(),
		Misses:   t.misses.Load(),
		Writes:   lc.Writes,
		Rejected: lc.Rejected + rc.Rejected,
		Errors:   rc.Errors,
	}
}
