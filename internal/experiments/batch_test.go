package experiments

import (
	"bytes"
	"testing"
)

// batchSpecs is the batched-execution acceptance sweep: every experiment
// driver (via equivalenceSpecs) plus the bias-injection axis, which
// exercises batching over bias-materialized training slices.
func batchSpecs() []Spec {
	specs := equivalenceSpecs()
	specs = append(specs,
		Spec{Experiment: "fig7", Dataset: "german", N: 200, Seed: 5,
			Bias: BiasUnder, BiasRate: 0.3, BiasRateNeg: 0.1},
		Spec{Experiment: "fig7", Dataset: "compas", N: 300, Seed: 3,
			Bias: BiasLabel, BiasRate: 0.2},
	)
	return specs
}

// TestBatchedMatchesPerCell is the tentpole's byte-identity gate: running
// a grid batch-at-a-time — shared materializations armed, design and
// base-fit artifacts computed once per batch — must produce output
// byte-identical (timing fields aside) to computing every cell alone.
// The per-cell reference calls Cell directly on a fresh grid, which never
// arms a batch prepare, so each cell recomputes everything from its own
// split exactly as the pre-batching engine did.
func TestBatchedMatchesPerCell(t *testing.T) {
	for _, spec := range batchSpecs() {
		spec := spec
		name := spec.Experiment
		if spec.Bias != "" {
			name += "-" + string(spec.Bias)
		}
		t.Run(name, func(t *testing.T) {
			ref := mustOpen(t, spec)
			cells := make([]Cell, ref.Len())
			for i := range cells {
				var err error
				if cells[i], err = ref.Cell(i); err != nil {
					t.Fatalf("cell %d: %v", i, err)
				}
			}
			perCell, err := ref.Assemble(cells)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := mustOpen(t, spec).RunAll()
			if err != nil {
				t.Fatal(err)
			}
			want, got := canonical(t, perCell), canonical(t, batched)
			if !bytes.Equal(want, got) {
				t.Fatalf("batched %s diverges from per-cell:\nper-cell: %.400s\nbatched:  %.400s",
					name, want, got)
			}
		})
	}
}

// TestBatchesPartitionGrid pins the planner invariant RunBatched's
// binary search relies on: Batches() returns sorted, non-overlapping,
// in-bounds ranges, and (for the metric grids) covers every job index, so
// no cell silently runs without its batch's shared backing.
func TestBatchesPartitionGrid(t *testing.T) {
	for _, spec := range batchSpecs() {
		g := mustOpen(t, spec)
		batches := g.Batches()
		covered, prev := 0, 0
		for i, b := range batches {
			if b.Start < prev || b.End <= b.Start || b.End > g.Len() {
				t.Fatalf("%s: batch %d [%d,%d) out of order for grid [0,%d)",
					spec.Experiment, i, b.Start, b.End, g.Len())
			}
			covered += b.End - b.Start
			prev = b.End
		}
		if covered != g.Len() {
			t.Fatalf("%s: batches cover %d of %d jobs", spec.Experiment, covered, g.Len())
		}
	}
}

// TestBatchedAllocatesLess asserts the point of batching: one shared
// materialization feeding a batch of cells must allocate strictly less
// than every cell materializing alone. Both sides open a fresh grid per
// run (so no armed cache survives between measurements) and run serially
// via SetWorkers(1) to keep the counts deterministic.
func TestBatchedAllocatesLess(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation comparison runs the fig7 grid four times")
	}
	spec := Spec{Experiment: "fig7", Dataset: "german", N: 150, Seed: 2}
	perCell := testing.AllocsPerRun(1, func() {
		g, err := Open(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.Len(); i++ {
			if _, err := g.Cell(i); err != nil {
				t.Fatal(err)
			}
		}
	})
	batched := testing.AllocsPerRun(1, func() {
		g, err := Open(spec)
		if err != nil {
			t.Fatal(err)
		}
		g.SetWorkers(1)
		if _, err := g.RunRange(0, g.Len()); err != nil {
			t.Fatal(err)
		}
	})
	if batched >= perCell {
		t.Fatalf("batched run allocates %.0f, per-cell %.0f — sharing saved nothing", batched, perCell)
	}
	t.Logf("allocs: per-cell %.0f, batched %.0f (saved %.1f%%)",
		perCell, batched, 100*(perCell-batched)/perCell)
}
