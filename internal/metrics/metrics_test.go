package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"fairbench/internal/dataset"
)

// example2 builds the paper's 100-applicant admission table (Figure 11):
// males: TP=14, FP=6, TN=38, FN=2; females: TP=7, FP=2, TN=28, FN=3.
func example2() (*dataset.Dataset, []int) {
	d := &dataset.Dataset{
		Name:  "admissions",
		Attrs: []dataset.Attr{{Name: "dummy", Kind: dataset.Numeric}},
		SName: "gender",
		YName: "qualified",
	}
	var yhat []int
	add := func(s, y, pred, count int) {
		for i := 0; i < count; i++ {
			d.X = append(d.X, []float64{0})
			d.S = append(d.S, s)
			d.Y = append(d.Y, y)
			yhat = append(yhat, pred)
		}
	}
	// Males (privileged).
	add(1, 1, 1, 14) // TP
	add(1, 0, 1, 6)  // FP
	add(1, 0, 0, 38) // TN
	add(1, 1, 0, 2)  // FN
	// Females (unprivileged).
	add(0, 1, 1, 7)  // TP
	add(0, 0, 1, 2)  // FP
	add(0, 0, 0, 28) // TN
	add(0, 1, 0, 3)  // FN
	return d, yhat
}

func TestExample2DI(t *testing.T) {
	d, yhat := example2()
	di := DisparateImpact(d, yhat)
	// DI = (9/40)/(20/60) = 0.675 (the paper rounds to 0.67).
	if math.Abs(di-0.675) > 1e-9 {
		t.Fatalf("DI: got %v want 0.675", di)
	}
}

func TestExample2TPRB(t *testing.T) {
	d, yhat := example2()
	// TPRB = 14/16 - 7/10 = 0.175 (the paper rounds to 0.18).
	if got := TPRBalance(d, yhat); math.Abs(got-0.175) > 1e-9 {
		t.Fatalf("TPRB: got %v want 0.175", got)
	}
}

func TestExample2TNRB(t *testing.T) {
	d, yhat := example2()
	// TNRB = 38/44 - 28/30 = -0.0697 (the paper rounds to -0.07).
	if got := TNRBalance(d, yhat); math.Abs(got-(38.0/44-28.0/30)) > 1e-9 {
		t.Fatalf("TNRB: got %v", got)
	}
}

func TestExample2Correctness(t *testing.T) {
	d, yhat := example2()
	c := ComputeCorrectness(d.Y, yhat)
	// Accuracy = (21+66)/100 = 0.87; the paper reports 87%.
	if math.Abs(c.Accuracy-0.87) > 1e-9 {
		t.Fatalf("accuracy: %v", c.Accuracy)
	}
	// Precision = 21/29, recall = 21/26.
	if math.Abs(c.Precision-21.0/29) > 1e-9 || math.Abs(c.Recall-21.0/26) > 1e-9 {
		t.Fatalf("precision/recall: %v %v", c.Precision, c.Recall)
	}
	if c.F1 <= 0.75 || c.F1 >= 0.79 {
		t.Fatalf("F1 out of expected band (paper: 78%%): %v", c.F1)
	}
}

func TestCorrectnessEdgeCases(t *testing.T) {
	c := ComputeCorrectness([]int{0, 0}, []int{0, 0})
	if c.Accuracy != 1 || c.Precision != 0 || c.Recall != 0 || c.F1 != 0 {
		t.Fatalf("all-negative case: %+v", c)
	}
}

// TestCorrectnessZeroDenominators pins the zero-division convention
// documented on ComputeCorrectness: every undefined ratio is 0, never
// NaN, so aggregations and serialized envelopes stay finite.
func TestCorrectnessZeroDenominators(t *testing.T) {
	cases := []struct {
		name    string
		y, yhat []int
		want    Correctness
	}{
		{"empty input", nil, nil, Correctness{}},
		{"no positive predictions (TP+FP=0)",
			[]int{1, 0, 1}, []int{0, 0, 0},
			Correctness{Accuracy: 1.0 / 3}},
		{"no positive labels (TP+FN=0)",
			[]int{0, 0, 0}, []int{1, 1, 0},
			Correctness{Accuracy: 1.0 / 3}},
		{"all-positive predictions",
			[]int{1, 0, 1, 0}, []int{1, 1, 1, 1},
			Correctness{Accuracy: 0.5, Precision: 0.5, Recall: 1, F1: 2.0 / 3}},
		{"all-negative everything",
			[]int{0, 0}, []int{0, 0},
			Correctness{Accuracy: 1}},
		{"perfect positives",
			[]int{1, 1}, []int{1, 1},
			Correctness{Accuracy: 1, Precision: 1, Recall: 1, F1: 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := ComputeCorrectness(c.y, c.yhat)
			for _, v := range []float64{got.Accuracy, got.Precision, got.Recall, got.F1} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite metric: %+v", got)
				}
			}
			approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
			if !approx(got.Accuracy, c.want.Accuracy) || !approx(got.Precision, c.want.Precision) ||
				!approx(got.Recall, c.want.Recall) || !approx(got.F1, c.want.F1) {
				t.Fatalf("got %+v, want %+v", got, c.want)
			}
		})
	}
}

// onlyGroup builds a dataset whose tuples all belong to sensitive group s.
func onlyGroup(s int, n int) (*dataset.Dataset, []int) {
	d := &dataset.Dataset{
		Name:  "one-group",
		Attrs: []dataset.Attr{{Name: "dummy", Kind: dataset.Numeric}},
		SName: "s",
		YName: "y",
	}
	var yhat []int
	for i := 0; i < n; i++ {
		d.X = append(d.X, []float64{0})
		d.S = append(d.S, s)
		d.Y = append(d.Y, i%2)
		yhat = append(yhat, i%2)
	}
	return d, yhat
}

// TestFairnessEmptyProtectedGroup pins the group-metric behavior when one
// sensitive group is absent entirely — a real hazard for small shards and
// corrupted slices: rates for the missing group are 0 by convention, so
// DI degenerates (0 or +Inf, which DI* maps to 0) and the balance metrics
// report the present group's rate against 0 rather than NaN.
func TestFairnessEmptyProtectedGroup(t *testing.T) {
	t.Run("only privileged tuples", func(t *testing.T) {
		d, yhat := onlyGroup(1, 6)
		gr := ComputeGroupRates(d, yhat)
		if gr.PosRate[0] != 0 || gr.TPR[0] != 0 || gr.TNR[0] != 0 {
			t.Fatalf("missing group rates must be zero: %+v", gr)
		}
		if di := DisparateImpact(d, yhat); di != 0 {
			t.Fatalf("DI with empty unprivileged group: got %v, want 0", di)
		}
		if tprb := TPRBalance(d, yhat); tprb != 1 {
			t.Fatalf("TPRB against empty group: got %v, want 1", tprb)
		}
		n := Normalize(ComputeFairness(d, yhat, nil, nil))
		for _, v := range []float64{n.DIStar, n.TPRB, n.TNRB, n.ID, n.TE} {
			if math.IsNaN(v) || v < 0 || v > 1 {
				t.Fatalf("normalized score outside [0,1]: %+v", n)
			}
		}
	})
	t.Run("only unprivileged tuples", func(t *testing.T) {
		d, yhat := onlyGroup(0, 6)
		if di := DisparateImpact(d, yhat); !math.IsInf(di, 1) {
			t.Fatalf("DI with empty privileged group: got %v, want +Inf", di)
		}
		if star := DIStar(DisparateImpact(d, yhat)); star != 0 {
			t.Fatalf("DI* must fold +Inf to 0, got %v", star)
		}
	})
}

// TestFairnessDegeneratePredictions covers the all-positive and
// all-negative prediction vectors on a two-group dataset.
func TestFairnessDegeneratePredictions(t *testing.T) {
	d, _ := example2()
	allPos := make([]int, d.Len())
	for i := range allPos {
		allPos[i] = 1
	}
	if di := DisparateImpact(d, allPos); di != 1 {
		t.Fatalf("all-positive DI: got %v, want 1 (both groups rate 1)", di)
	}
	if tprb := TPRBalance(d, allPos); tprb != 0 {
		t.Fatalf("all-positive TPRB: %v", tprb)
	}
	// TNR is 0/0-guarded per group: all-positive predictions leave no
	// true negatives, so both groups report 0 and the balance is 0.
	if tnrb := TNRBalance(d, allPos); tnrb != 0 {
		t.Fatalf("all-positive TNRB: %v", tnrb)
	}
	allNeg := make([]int, d.Len())
	if tprb := TPRBalance(d, allNeg); tprb != 0 {
		t.Fatalf("all-negative TPRB: %v", tprb)
	}
	n := Normalize(ComputeFairness(d, allNeg, nil, nil))
	if n.DIStar != 1 || n.TPRB != 1 || n.TNRB != 1 {
		t.Fatalf("all-negative normalized: %+v", n)
	}
}

// flipPredictor predicts the sensitive value itself: maximal individual
// discrimination.
type flipPredictor struct{}

func (flipPredictor) PredictOne(_ []float64, s int) int { return s }

// blindPredictor ignores S entirely.
type blindPredictor struct{}

func (blindPredictor) PredictOne(x []float64, _ int) int {
	if x[0] > 0 {
		return 1
	}
	return 0
}

func TestIndividualDiscrimination(t *testing.T) {
	d, _ := example2()
	if got := IndividualDiscrimination(d, flipPredictor{}); got != 1 {
		t.Fatalf("S-echo predictor must have ID=1, got %v", got)
	}
	if got := IndividualDiscrimination(d, blindPredictor{}); got != 0 {
		t.Fatalf("S-blind predictor must have ID=0, got %v", got)
	}
}

// intervenedPredictor distinguishes the transform role (sTrue) from the
// classifier input role (sInput): only sInput affects the output.
type intervenedPredictor struct{ usedTrue *bool }

func (p intervenedPredictor) PredictOne(x []float64, s int) int { return s }
func (p intervenedPredictor) PredictIntervened(_ []float64, sTrue, sInput int) int {
	if sTrue != sInput {
		*p.usedTrue = true
	}
	return 0 // constant in sInput: no individual discrimination
}

func TestIDUsesInterventionPredictor(t *testing.T) {
	d, _ := example2()
	used := false
	got := IndividualDiscrimination(d, intervenedPredictor{usedTrue: &used})
	if got != 0 {
		t.Fatalf("intervened predictor is constant, ID must be 0: %v", got)
	}
	if !used {
		t.Fatal("ID must call PredictIntervened with flipped sInput")
	}
}

func TestDIStar(t *testing.T) {
	cases := []struct{ di, want float64 }{
		{1, 1}, {0.5, 0.5}, {2, 0.5}, {0, 0}, {math.Inf(1), 0},
	}
	for _, c := range cases {
		if got := DIStar(c.di); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("DIStar(%v): got %v want %v", c.di, got, c.want)
		}
	}
	// Property: DIStar is always in [0,1] and symmetric under inversion.
	f := func(raw float64) bool {
		di := math.Abs(math.Mod(raw, 100))
		if math.IsNaN(di) || di == 0 {
			return true
		}
		a, b := DIStar(di), DIStar(1/di)
		return a >= 0 && a <= 1 && math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	n := Normalize(Fairness{DI: 0.5, TPRB: -0.3, TNRB: 0.2, ID: 0.1, TE: -0.4})
	if n.DIStar != 0.5 || n.TPRB != 0.7 || n.TNRB != 0.8 || n.ID != 0.9 || math.Abs(n.TE-0.6) > 1e-12 {
		t.Fatalf("normalized: %+v", n)
	}
	if !n.Reverse.TPRB || n.Reverse.TNRB || !n.Reverse.TE || !n.Reverse.DI == false {
		t.Fatalf("reverse flags: %+v", n.Reverse)
	}
}

func TestDisparateImpactDegenerate(t *testing.T) {
	d, _ := example2()
	allNeg := make([]int, d.Len())
	if di := DisparateImpact(d, allNeg); di != 1 {
		t.Fatalf("no positives anywhere must be DI=1, got %v", di)
	}
	// Positives only for the unprivileged group: DI = +Inf.
	posUnpriv := make([]int, d.Len())
	for i := range posUnpriv {
		if d.S[i] == 0 {
			posUnpriv[i] = 1
		}
	}
	if di := DisparateImpact(d, posUnpriv); !math.IsInf(di, 1) {
		t.Fatalf("want +Inf, got %v", di)
	}
}

func TestGroupRates(t *testing.T) {
	d, yhat := example2()
	gr := ComputeGroupRates(d, yhat)
	if math.Abs(gr.PosRate[1]-20.0/60) > 1e-12 || math.Abs(gr.PosRate[0]-9.0/40) > 1e-12 {
		t.Fatalf("positive rates: %+v", gr.PosRate)
	}
	if gr.Confusion[1].TP != 14 || gr.Confusion[0].FN != 3 {
		t.Fatalf("confusions: %+v", gr.Confusion)
	}
}

// TestMetricsAllocationBounds pins the allocation-free evaluation path:
// the correctness tally and the single-pass group-rate fairness metrics
// allocate nothing per call. (The causal and ID metrics are exercised
// with nil handles here — their cost is the model's, not the tally's.)
func TestMetricsAllocationBounds(t *testing.T) {
	d, yhat := example2()
	allocs := testing.AllocsPerRun(20, func() {
		_ = ComputeCorrectness(d.Y, yhat)
		f := ComputeFairness(d, yhat, nil, nil)
		_ = Normalize(f)
	})
	if allocs != 0 {
		t.Fatalf("metric evaluation allocates %v times per call, want 0", allocs)
	}
}

// TestComputeFairnessMatchesPerMetricFunctions pins that the single-pass
// group-rate tally derives exactly the values the standalone metric
// functions report.
func TestComputeFairnessMatchesPerMetricFunctions(t *testing.T) {
	d, yhat := example2()
	f := ComputeFairness(d, yhat, nil, nil)
	if f.DI != DisparateImpact(d, yhat) {
		t.Fatalf("DI diverges: %v vs %v", f.DI, DisparateImpact(d, yhat))
	}
	if f.TPRB != TPRBalance(d, yhat) {
		t.Fatalf("TPRB diverges: %v vs %v", f.TPRB, TPRBalance(d, yhat))
	}
	if f.TNRB != TNRBalance(d, yhat) {
		t.Fatalf("TNRB diverges: %v vs %v", f.TNRB, TNRBalance(d, yhat))
	}
}
