// Lending: choose a fair approach for a credit-risk screen on the German
// dataset by comparing one representative of each pipeline stage against
// the baseline — the Section 5 guidance ("follow the application
// requirements") made concrete.
//
//	go run ./examples/lending
package main

import (
	"fmt"
	"log"
	"os"

	"fairbench"
	"fairbench/internal/report"
)

func main() {
	src := fairbench.German(0, 3)
	train, test := fairbench.Split(src.Data, 0.7, 11)

	// A bank wants demographic parity on loan approvals. Pre-processing
	// (model-agnostic), in-processing (strong control), and
	// post-processing (no retraining) each offer a different deal.
	candidates := []string{"LR", "Feld-DP", "Zafar-DP-Fair", "KamKar-DP"}

	t := &report.Table{
		Title:   "German credit: stage trade-offs for demographic parity",
		Headers: []string{"approach", "stage", "accuracy", "recall", "DI*", "1-ID", "overhead(s)"},
	}
	var rows []fairbench.Row
	for _, name := range candidates {
		a, err := fairbench.NewApproach(name, src.Graph, 5)
		if err != nil {
			log.Fatal(err)
		}
		row, err := fairbench.Evaluate(a, train, test, src.Graph)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row)
		t.Add(row.Approach, row.Stage, report.F(row.Correct.Accuracy),
			report.F(row.Correct.Recall), report.F(row.Fair.DIStar),
			report.F(row.Fair.ID), report.F(row.Seconds))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("Reading the table the paper's way (Section 5):")
	fmt.Println(" - pre-processing keeps the model swappable but repairs the data;")
	fmt.Println(" - in-processing controls the trade-off directly but owns the model;")
	fmt.Println(" - post-processing is cheapest but sacrifices individual fairness.")
	best := rows[1]
	for _, r := range rows[1:] {
		if r.Fair.DIStar > best.Fair.DIStar {
			best = r
		}
	}
	fmt.Printf("Highest parity here: %s (DI*=%.3f at accuracy %.3f).\n",
		best.Approach, best.Fair.DIStar, best.Correct.Accuracy)
}
