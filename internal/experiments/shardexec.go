package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"

	"fairbench/internal/shard"
	"fairbench/internal/store"
)

// This file binds the generic shard machinery (internal/shard) to typed
// experiment grids: planning a split, running one shard into an envelope,
// and merging envelopes back into driver-native output. The invariant the
// shard-equivalence tests pin down: for any Spec and any k,
//
//	MergeShards(RunShard(spec, 0, k), …, RunShard(spec, k-1, k))
//
// equals Open(spec).RunAll() except for the wall-time fields — whether the
// shards ran in one process, k processes, or k hosts.

// PlanShards reports the contiguous job ranges a k-way split of the
// spec's grid produces. Empty trailing ranges (k > grid size) are valid;
// running them yields empty envelopes that merge cleanly. For the
// pure-timing fig8 grids the ranges align to whole dataset slices, so a
// slice's baseline and approach timings always come from one machine.
func PlanShards(spec Spec, k int) ([]shard.Range, error) {
	g, err := Open(spec)
	if err != nil {
		return nil, err
	}
	return shard.PlanAligned(g.Len(), k, g.alignment())
}

// RunShard executes shard i of a k-way split of the spec's grid and
// returns the serializable partial-result envelope. Each shard
// re-materializes the grid from the spec (datasets are synthesized from
// the spec's seed), so shards share no state and can run anywhere. When
// a process-wide result cache is configured (SetDefaultCache), cells
// with verified cache entries are served instead of computed, and the
// envelope's Cached field records which ones.
func RunShard(spec Spec, i, k int) (*shard.Envelope, error) {
	g, err := Open(spec)
	if err != nil {
		return nil, err
	}
	return runShard(g, i, k)
}

// RunShardCached is RunShard against an explicit result store, leaving
// the process-wide default untouched — the worker-subprocess entry point
// and the facade's one-shot cached path.
func RunShardCached(spec Spec, i, k int, s *store.Store) (*shard.Envelope, error) {
	g, err := Open(spec)
	if err != nil {
		return nil, err
	}
	g.SetCache(s)
	return runShard(g, i, k)
}

func runShard(g *Grid, i, k int) (*shard.Envelope, error) {
	ranges, err := shard.PlanAligned(g.Len(), k, g.alignment())
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= k {
		return nil, fmt.Errorf("experiments: shard %d of %d out of range", i, k)
	}
	fp, err := g.Fingerprint()
	if err != nil {
		return nil, err
	}
	r := ranges[i]
	cells, err := g.RunRange(r.Start, r.End)
	if err != nil {
		return nil, err
	}
	env := &shard.Envelope{
		Version:     shard.Version,
		Fingerprint: fp,
		Spec:        json.RawMessage(g.specJSON),
		Arch:        runtime.GOARCH,
		Seed:        g.spec.Seed,
		Shard:       i,
		Shards:      k,
		Total:       g.Len(),
	}
	for _, c := range cells {
		raw, err := json.Marshal(c)
		if err != nil {
			return nil, fmt.Errorf("experiments: encoding cell %d: %w", c.Index, err)
		}
		env.Indices = append(env.Indices, c.Index)
		env.Rows = append(env.Rows, raw)
		if c.Cached {
			env.Cached = append(env.Cached, c.Index)
		}
	}
	return env, nil
}

// MergeShards validates a complete shard set, reassembles the cells in
// job order, and runs the driver's post-pass, returning output identical
// (modulo wall-time fields) to a single-process run of the same spec. It
// rejects envelopes whose fingerprints disagree with each other or with
// the grid the embedded spec materializes — the latter catches envelopes
// produced by a different build whose grid definition drifted.
func MergeShards(envs []*shard.Envelope) (*Output, error) {
	return MergeShardsNamed(envs, nil)
}

// MergeShardsNamed is MergeShards with a provenance label (typically the
// file path) per envelope: every validation error names the offending
// file, and an incomplete set fails with the shard indices still
// missing.
func MergeShardsNamed(envs []*shard.Envelope, names []string) (*Output, error) {
	m, err := shard.MergeNamed(envs, names)
	if err != nil {
		return nil, err
	}
	// The assembly post-pass below does float arithmetic of its own (fold
	// averaging, stability moments), so the coordinator must share the
	// shards' architecture for the serial-equivalence guarantee to hold.
	if m.Arch != runtime.GOARCH {
		return nil, fmt.Errorf("experiments: envelopes were produced on %s but this process is %s; merge on a matching architecture", m.Arch, runtime.GOARCH)
	}
	var spec Spec
	if err := json.Unmarshal(m.Spec, &spec); err != nil {
		return nil, fmt.Errorf("experiments: decoding envelope spec: %w", err)
	}
	g, err := Open(spec)
	if err != nil {
		return nil, err
	}
	fp, err := g.Fingerprint()
	if err != nil {
		return nil, err
	}
	if fp != m.Fingerprint {
		return nil, fmt.Errorf("experiments: fingerprint mismatch: envelopes carry %.12s…, spec materializes %.12s… (grid definition drift?)", m.Fingerprint, fp)
	}
	cells := make([]Cell, m.Total)
	for i, raw := range m.Rows {
		if err := json.Unmarshal(raw, &cells[i]); err != nil {
			return nil, fmt.Errorf("experiments: decoding cell %d: %w", i, err)
		}
	}
	// Assemble re-checks count and per-cell indices for every caller.
	return g.Assemble(cells)
}
