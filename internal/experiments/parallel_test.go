package experiments

import (
	"reflect"
	"testing"

	"fairbench/internal/runner"
	"fairbench/internal/synth"
)

// stripTiming zeroes the wall-clock fields so row comparisons only see
// metrics — the quantities the runner's determinism contract covers.
func stripTiming(rows []Row) []Row {
	out := append([]Row(nil), rows...)
	for i := range out {
		out[i].Seconds, out[i].Overhead = 0, 0
	}
	return out
}

// TestSerialParallelIdenticalRows is the tentpole's acceptance gate:
// parallel execution must reproduce the serial rows exactly (modulo
// timing) for a fixed seed, across seeds and worker counts.
func TestSerialParallelIdenticalRows(t *testing.T) {
	defer runner.SetParallelism(0)
	for _, seed := range []int64{1, 2, 7} {
		src := synth.German(200, seed)
		runner.SetParallelism(1)
		serial, err := CorrectnessFairness(src, seed)
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		for _, workers := range []int{2, 4, 8} {
			runner.SetParallelism(workers)
			parallel, err := CorrectnessFairness(src, seed)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(stripTiming(serial), stripTiming(parallel)) {
				t.Fatalf("seed %d: parallel rows (workers=%d) diverge from serial", seed, workers)
			}
		}
	}
}

// TestSerialParallelIdenticalCV covers the aggregating driver, whose fold
// averages must also be bit-identical (summation order is fixed by the
// post-pass, not by job completion order).
func TestSerialParallelIdenticalCV(t *testing.T) {
	defer runner.SetParallelism(0)
	src := synth.German(300, 1)
	runner.SetParallelism(1)
	serial, err := CrossValidate(src, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	runner.SetParallelism(4)
	parallel, err := CrossValidate(src, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTiming(serial), stripTiming(parallel)) {
		t.Fatal("parallel CV rows diverge from serial")
	}
}

// TestSerialParallelIdenticalSensitivity covers a grid driver with a
// non-default classifier factory per cell.
func TestSerialParallelIdenticalSensitivity(t *testing.T) {
	defer runner.SetParallelism(0)
	src := synth.COMPAS(600, 1)
	approaches := []string{"Feld-DP", "KamKar-DP"}
	runner.SetParallelism(1)
	serial, err := ModelSensitivity(src, approaches, 1)
	if err != nil {
		t.Fatal(err)
	}
	runner.SetParallelism(4)
	parallel, err := ModelSensitivity(src, approaches, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("row counts: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Approach != p.Approach || s.Model != p.Model ||
			s.Row.Correct != p.Row.Correct || s.Row.Fair != p.Row.Fair {
			t.Fatalf("cell %d (%s × %s) diverges between serial and parallel", i, s.Approach, s.Model)
		}
	}
}
