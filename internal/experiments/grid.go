package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"fairbench/internal/causal"
	"fairbench/internal/corrupt"
	"fairbench/internal/dataset"
	"fairbench/internal/registry"
	"fairbench/internal/runner"
	"fairbench/internal/shard"
	"fairbench/internal/store"
	"fairbench/internal/synth"
)

// defaultCache is the process-wide result cache grids opened from a Spec
// consult (see SetDefaultCache). Nil disables caching. Guarded by a
// mutex rather than an atomic pointer because store.Backend is an
// interface value.
var defaultCache struct {
	mu sync.RWMutex
	b  store.Backend
}

// SetDefaultCache installs (or, with nil, removes) the process-wide
// result cache — any store.Backend: on-disk, remote, or tiered. Every
// grid subsequently materialized by Open consults it in RunRange: cells
// whose (fingerprint, index, seed, GOARCH) key is cached are served
// instead of recomputed, and freshly computed cells are written back.
// Safe for concurrent use; grids opened before the call keep the cache
// they were opened with.
func SetDefaultCache(b store.Backend) {
	defaultCache.mu.Lock()
	defaultCache.b = b
	defaultCache.mu.Unlock()
}

// DefaultCache returns the process-wide result cache, or nil when
// caching is disabled.
func DefaultCache() store.Backend {
	defaultCache.mu.RLock()
	defer defaultCache.mu.RUnlock()
	return defaultCache.b
}

// Spec is the serializable identity of one experiment grid: enough to
// rebuild the exact same (approach × dataset-slice) job list in any
// process. The benchmark datasets are synthesized from seeds, so a Spec
// fully determines every cell's inputs — which is what makes cross-process
// sharding sound: two processes that Open the same Spec compute the same
// grid, and cell i is the same computation in both.
//
// Nil/zero optional fields select the experiment's paper defaults (see
// Normalize). The canonical JSON encoding of the normalized Spec, plus
// the grid's job count, is hashed into the shard fingerprint.
type Spec struct {
	// Experiment names the driver: fig7, fig9, fig10, fig15, cv, fig22,
	// fig23, fig8rows, or fig8attrs.
	Experiment string `json:"experiment"`
	// Dataset is adult, compas, or german. Required for the
	// dataset-parameterized drivers (fig7, fig15, cv); the fixed-dataset
	// figures default to the paper's choice (fig9 → compas, rest → adult).
	Dataset string `json:"dataset,omitempty"`
	// N caps the generated dataset size (0 = the paper's full size).
	N int `json:"n,omitempty"`
	// Seed is the experiment's global seed.
	Seed int64 `json:"seed"`
	// Names overrides the evaluated approach set (nil = the driver's
	// default). fig7/fig9/cv/fig22 always evaluate the full set and
	// ignore this.
	Names []string `json:"names,omitempty"`
	// K is the cross-validation fold count (cv only; default 5).
	K int `json:"k,omitempty"`
	// Runs is the random-fold count (fig22 only; default 10).
	Runs int `json:"runs,omitempty"`
	// Sizes are the training sizes (fig8rows, fig23; default depends on N).
	Sizes []int `json:"sizes,omitempty"`
	// AttrCounts are the attribute prefixes (fig8attrs; default 2,4,6,8,9).
	AttrCounts []int `json:"attrCounts,omitempty"`
	// SampleSize is the fig8attrs sample (default 8000, capped at N).
	SampleSize int `json:"sampleSize,omitempty"`
	// Bias selects a bias-injection model applied to the synthesized
	// dataset before the grid is materialized: "" (clean data), "under"
	// (under-representation: unprivileged tuples dropped by label
	// stratum), or "label" (label bias: unprivileged labels flipped).
	// Valid on every experiment — it multiplies the scenario space rather
	// than adding a driver. Injection is seeded from Seed through
	// per-tuple rng.Derive streams (see internal/corrupt), so a biased
	// grid shards and parallelizes exactly like a clean one. The bias
	// fields are part of the canonical spec and therefore of the grid
	// fingerprint: results computed under one bias setting can never be
	// merged with, or served from cache to, another.
	Bias string `json:"bias,omitempty"`
	// BiasRate is the injection rate: β⁺ (the positive-label drop rate)
	// for under-representation, ν (the flip rate) for label bias.
	BiasRate float64 `json:"biasRate,omitempty"`
	// BiasRateNeg is under-representation's β⁻ (the negative-label drop
	// rate). Unused — and cleared by Normalize — for the other models.
	BiasRateNeg float64 `json:"biasRateNeg,omitempty"`
}

// Bias-model names Spec.Bias accepts.
const (
	// BiasUnder is parameterized under-representation.
	BiasUnder = "under"
	// BiasLabel is parameterized label bias.
	BiasLabel = "label"
)

// BiasLabelText renders the spec's bias setting for table titles and
// logs: empty for a clean grid.
func (s Spec) BiasLabelText() string {
	switch s.Bias {
	case BiasUnder:
		return fmt.Sprintf("under-representation β⁺=%g β⁻=%g", s.BiasRate, s.BiasRateNeg)
	case BiasLabel:
		return fmt.Sprintf("label bias ν=%g", s.BiasRate)
	}
	return ""
}

// DefaultFig8Sizes returns the Figure 8(a-c) training sizes for a dataset
// cap of n (0 = paper size). Shared by the CLI and Spec normalization so
// a sharded run defaults to exactly the grid a serial run would.
func DefaultFig8Sizes(n int) []int {
	if n <= 0 {
		return []int{1000, 5000, 10000, 20000, 30000}
	}
	var sizes []int
	for _, s := range []int{500, 1000, 2000, 4000} {
		if s <= n {
			sizes = append(sizes, s)
		}
	}
	return sizes
}

// DefaultFig8AttrCounts returns the Figure 8(d-f) attribute prefixes.
func DefaultFig8AttrCounts() []int { return []int{2, 4, 6, 8, 9} }

// DefaultFig8Sample returns the Figure 8(d-f) sample size under cap n.
func DefaultFig8Sample(n int) int {
	if n > 0 && n < 8000 {
		return n
	}
	return 8000
}

// DefaultFig23Sizes returns the Figure 23 training sizes under cap n.
func DefaultFig23Sizes(n int) []int {
	if n <= 0 {
		return []int{100, 500, 1000, 5000, 10000, 20000}
	}
	var sizes []int
	for _, s := range []int{100, 500, 1000, 2000} {
		if s <= n {
			sizes = append(sizes, s)
		}
	}
	return sizes
}

// DefaultSensitivityApproaches lists the pre- and post-processing
// approaches of the Figure 10 / Figure 21 model-sensitivity study.
var DefaultSensitivityApproaches = []string{
	"KamCal-DP", "Feld-DP", "Calmon-DP", "ZhaWu-PSF", "ZhaWu-DCE",
	"Salimi-JF-MaxSAT", "KamKar-DP", "Hardt-EO", "Pleiss-EOP",
}

// Normalize lower-cases the identity fields, fills paper defaults, and
// validates the spec. Fingerprints are computed over the normalized form,
// so two specs that materialize the same grid always merge.
func (s Spec) Normalize() (Spec, error) {
	s.Experiment = strings.ToLower(strings.TrimSpace(s.Experiment))
	s.Dataset = strings.ToLower(strings.TrimSpace(s.Dataset))
	switch s.Experiment {
	case "fig7", "fig15", "cv":
		if s.Dataset == "" {
			return s, fmt.Errorf("experiments: %s requires an explicit dataset", s.Experiment)
		}
	case "fig9":
		if s.Dataset == "" {
			s.Dataset = "compas"
		}
	case "fig10", "fig22", "fig23", "fig8rows", "fig8attrs":
		if s.Dataset == "" {
			s.Dataset = "adult"
		}
	default:
		return s, fmt.Errorf("experiments: unknown experiment %q", s.Experiment)
	}
	switch s.Dataset {
	case "adult", "compas", "german":
	default:
		return s, fmt.Errorf("experiments: unknown dataset %q", s.Dataset)
	}
	s.Bias = strings.ToLower(strings.TrimSpace(s.Bias))
	switch s.Bias {
	case "":
		// Clean grid: stray rates must not perturb the fingerprint.
		if s.BiasRate != 0 || s.BiasRateNeg != 0 {
			return s, fmt.Errorf("experiments: bias rate set without a bias model (want -bias under|label)")
		}
	case BiasUnder:
		if s.BiasRate < 0 || s.BiasRate >= 1 || s.BiasRateNeg < 0 || s.BiasRateNeg >= 1 {
			return s, fmt.Errorf("experiments: under-representation rates β⁺=%v β⁻=%v outside [0,1)", s.BiasRate, s.BiasRateNeg)
		}
		if s.BiasRate == 0 && s.BiasRateNeg == 0 {
			return s, fmt.Errorf("experiments: bias model %q needs a positive rate", s.Bias)
		}
	case BiasLabel:
		if s.BiasRate <= 0 || s.BiasRate > 1 {
			return s, fmt.Errorf("experiments: label-bias rate ν=%v outside (0,1]", s.BiasRate)
		}
		s.BiasRateNeg = 0 // β⁻ is an under-representation knob only
	default:
		return s, fmt.Errorf("experiments: unknown bias model %q (want under or label)", s.Bias)
	}
	// Clear every field the experiment ignores before the canonical
	// encoding: two specs that materialize the same grid must fingerprint
	// identically, so stray values in unused fields cannot block a merge.
	switch s.Experiment {
	case "fig10", "fig23", "fig8rows", "fig8attrs":
	default:
		s.Names = nil // these drivers always evaluate their fixed set
	}
	if s.Experiment != "cv" {
		s.K = 0
	}
	if s.Experiment != "fig22" {
		s.Runs = 0
	}
	if s.Experiment != "fig23" && s.Experiment != "fig8rows" {
		s.Sizes = nil
	}
	if s.Experiment != "fig8attrs" {
		s.AttrCounts, s.SampleSize = nil, 0
	}
	switch s.Experiment {
	case "cv":
		if s.K == 0 {
			s.K = 5
		}
		if s.K < 2 {
			return s, fmt.Errorf("experiments: cv needs k >= 2, got %d", s.K)
		}
	case "fig22":
		if s.Runs == 0 {
			s.Runs = 10
		}
		if s.Runs < 1 {
			return s, fmt.Errorf("experiments: fig22 needs runs >= 1, got %d", s.Runs)
		}
	case "fig23":
		if s.Sizes == nil {
			s.Sizes = DefaultFig23Sizes(s.N)
		}
	case "fig8rows":
		if s.Sizes == nil {
			s.Sizes = DefaultFig8Sizes(s.N)
		}
	case "fig8attrs":
		if s.AttrCounts == nil {
			s.AttrCounts = DefaultFig8AttrCounts()
		}
		if s.SampleSize == 0 {
			s.SampleSize = DefaultFig8Sample(s.N)
		}
	}
	return s, nil
}

// Cell is the serializable result of one grid job. Exactly one payload
// field is set, matching the grid's kind: Row for the metric grids, Sens
// for the model-sensitivity grid, Seconds for the pure-timing scalability
// grids. All payloads survive a JSON round trip bit-exactly (Go prints
// floats in shortest-round-trip form), so a cell computed on another host
// merges into output identical to a local run's.
type Cell struct {
	Index   int             `json:"index"`
	Row     *Row            `json:"row,omitempty"`
	Sens    *SensitivityRow `json:"sens,omitempty"`
	Seconds *float64        `json:"seconds,omitempty"`
	// Cached records provenance: true when this cell was served from the
	// result cache rather than computed by the process that returned it.
	// The flag is never part of a cached payload (entries store the cell
	// as computed), so a warm run's payloads stay byte-identical to cold.
	Cached bool `json:"cached,omitempty"`
}

// Output is a fully assembled grid result; exactly one payload field is
// populated, matching the experiment. It is what every driver function
// returns (unwrapped to its native type) and what MergeShards rebuilds
// from a shard set.
type Output struct {
	Experiment  string                        `json:"experiment,omitempty"`
	Spec        Spec                          `json:"spec"`
	Rows        []Row                         `json:"rows,omitempty"`
	Robustness  []RobustnessResult            `json:"robustness,omitempty"`
	Sensitivity []SensitivityRow              `json:"sensitivity,omitempty"`
	Stability   []StabilityRow                `json:"stability,omitempty"`
	Efficiency  map[string][]EfficiencyPoint  `json:"efficiency,omitempty"`
	Scalability map[string][]ScalabilityPoint `json:"scalability,omitempty"`
}

type gridKind int

const (
	kindMetric gridKind = iota // cells are evaluation Rows
	kindSens                   // cells are SensitivityRows
	kindScale                  // cells are wall-time seconds
)

// Grid is a materialized experiment job grid: an enumerable, indexable
// list of independent cells plus the post-pass that assembles cell
// results into the driver's native output. Grids replace the drivers'
// earlier closure-only job lists — because every cell is addressable by a
// global index, any contiguous index range can run in any process (see
// RunRange and internal/shard) and the assembled output cannot depend on
// where cells ran.
type Grid struct {
	spec     Spec
	specJSON []byte // canonical encoding; nil when built directly from a Source
	kind     gridKind
	graph    *causal.Graph
	seed     int64
	// kindMetric: slices × names, names[0] conventionally the baseline.
	slices    []splitPair
	names     []string
	sliceSeed func(si int) int64
	// kindSens: models × names.
	models []string
	// kindScale: scale × (1 baseline + names) timing columns.
	scale    []scaleSlice
	assemble func(g *Grid, cells []Cell) (*Output, error)
	// cache, when non-nil on a grid opened from a Spec, short-circuits
	// RunRange cells through the result store (disk, remote, or tiered).
	cache store.Backend
	// workers overrides the runner pool size for this grid's RunRange
	// calls; 0 uses the process default (see SetWorkers).
	workers int
}

// Open materializes the grid a Spec describes: it normalizes the spec,
// synthesizes the dataset from the spec's seed, and prepares every
// dataset slice. Opening is cheap relative to running (no approach is
// fitted); both the shard planner and the merger use it.
func Open(spec Spec) (*Grid, error) {
	ns, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	src, err := sourceFor(ns.Dataset, ns.N, ns.Seed)
	if err != nil {
		return nil, err
	}
	if ns.Bias != "" {
		if src, err = biasedSource(src, ns); err != nil {
			return nil, err
		}
	}
	var g *Grid
	switch ns.Experiment {
	case "fig7":
		g = fig7Grid(src, ns.Seed)
	case "fig15":
		g = extensionsGrid(src, ns.Seed)
	case "fig9":
		g, err = robustnessGrid(src, ns.Seed)
	case "cv":
		g = cvGrid(src, ns.K, ns.Seed)
	case "fig22":
		g = stabilityGrid(src, ns.Runs, ns.Seed)
	case "fig23":
		g = efficiencyGrid(src, ns.Sizes, ns.Names, ns.Seed)
	case "fig10":
		g = sensitivityGrid(src, ns.Names, ns.Seed)
	case "fig8rows":
		g = scaleRowsGrid(src, ns.Sizes, specNames(ns), ns.Seed)
	case "fig8attrs":
		g = scaleAttrsGrid(src, ns.AttrCounts, specNames(ns), ns.SampleSize, ns.Seed)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", ns.Experiment)
	}
	if err != nil {
		return nil, err
	}
	canonical, err := json.Marshal(ns)
	if err != nil {
		return nil, err
	}
	g.spec, g.specJSON = ns, canonical
	g.cache = DefaultCache()
	return g, nil
}

// SetCache overrides the grid's result cache (nil disables it for this
// grid). Open installs the process-wide default; this hook lets one run
// use a dedicated cache directory without touching global state.
func (g *Grid) SetCache(s store.Backend) { g.cache = s }

// SetWorkers pins the worker-pool size this grid's RunRange calls use
// (n <= 0 restores the process-wide default from runner.SetParallelism).
// It is how engine.RunOptions.Parallelism reaches the in-process pool
// without mutating global state; the pure-timing grids ignore it and
// always run with one worker.
func (g *Grid) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	g.workers = n
}

// specOutput reroutes a Source-based driver call through the Spec/Open
// path — the only path with a grid fingerprint, and therefore the only
// one the result cache can serve — when three conditions hold: a
// process-wide cache is configured, the source carries stock-benchmark
// provenance, and the source's synthesis seed equals the driver's
// experiment seed (the Spec path uses one seed for both). The caller
// fills the experiment-specific spec fields; dataset identity comes from
// the source. Because the Spec path re-synthesizes the dataset, the
// reroute also verifies the source's data still equals what its
// provenance would generate — a caller that mutated the generated data
// (say, to inject bias by hand) falls back to the direct, uncached path
// instead of being answered about data it never passed. When the reroute
// does not apply for any reason, ok=false and the caller runs its direct
// grid exactly as before.
func specOutput(src *synth.Source, seed int64, spec Spec) (out *Output, ok bool, err error) {
	if DefaultCache() == nil || src.Dataset == "" || src.Seed != seed {
		return nil, false, nil
	}
	spec.Dataset, spec.N, spec.Seed = src.Dataset, src.N, seed
	regen, err := sourceFor(spec.Dataset, spec.N, seed)
	// A source that IS the memoized materialization needs no comparison;
	// anything else is verified value by value against the regeneration.
	if err != nil || (regen.Data != src.Data && !sameData(regen.Data, src.Data)) {
		return nil, false, nil
	}
	g, err := Open(spec)
	if err != nil {
		return nil, false, nil
	}
	out, err = g.RunAll()
	return out, true, err
}

// sameData reports whether two datasets are bit-identical in everything
// a grid cell can observe. Generators are deterministic, so a pristine
// provenance-matched source compares equal; any post-generation
// mutation — labels, features, group membership — compares unequal.
func sameData(a, b *dataset.Dataset) bool {
	if a.Len() != b.Len() || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] || a.S[i] != b.S[i] {
			return false
		}
	}
	for i := range a.X {
		if len(a.X[i]) != len(b.X[i]) {
			return false
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				return false
			}
		}
	}
	return true
}

// specNames resolves a spec's approach override for the scalability
// grids, whose driver default is the full registry.
func specNames(s Spec) []string {
	if s.Names != nil {
		return s.Names
	}
	return registry.Names
}

// sourceKey identifies one deterministic materialization of a benchmark
// dataset: the generators are pure functions of (dataset, n, seed).
type sourceKey struct {
	dataset string
	n       int
	seed    int64
}

// sourceMemo caches materialized sources per process. Every fingerprinted
// execution path — Open (and through it PlanShards, RunShard, the merge
// validation, and every driver's Spec reroute) plus specOutput's
// provenance check — funnels through sourceFor, so one run synthesizes
// each (dataset, n, seed) at most once no matter how many grids,
// shards, or verification passes touch it. The memoized Source is shared
// read-only: grid slices are zero-copy views into its flat backing (the
// dataset view contract), and every mutating consumer Clones first, so
// concurrent cells and workers race-cleanly share one materialization.
var sourceMemo sync.Map // sourceKey -> *synth.Source

// biasedSource applies the spec's bias-injection model to a pristine
// benchmark source and returns a provenance-free derivative: injection
// invalidates the (dataset, n, seed) reconstruction contract stock
// sources carry, so the result must never be mistaken for stock data by
// the Source-based cache reroute (specOutput). The memoized clean source
// is shared read-only — under-representation keeps zero-copy views into
// its backing, label bias copies only the label column — and injection
// itself is deterministic per tuple (rng.Derive streams inside
// internal/corrupt), so every process that Opens this spec sees
// bit-identical biased data regardless of parallelism or sharding.
func biasedSource(src *synth.Source, ns Spec) (*synth.Source, error) {
	var (
		biased *dataset.Dataset
		err    error
	)
	switch ns.Bias {
	case BiasUnder:
		biased, err = corrupt.UnderRepresent(src.Data, ns.BiasRate, ns.BiasRateNeg, ns.Seed)
	case BiasLabel:
		biased, err = corrupt.FlipLabels(src.Data, ns.BiasRate, ns.Seed)
	default:
		err = fmt.Errorf("experiments: unknown bias model %q", ns.Bias)
	}
	if err != nil {
		return nil, err
	}
	return &synth.Source{Data: biased, Graph: src.Graph}, nil
}

// sourceFor materializes (or recalls) the benchmark source a spec names.
func sourceFor(dataset string, n int, seed int64) (*synth.Source, error) {
	key := sourceKey{dataset: dataset, n: n, seed: seed}
	if src, ok := sourceMemo.Load(key); ok {
		return src.(*synth.Source), nil
	}
	var src *synth.Source
	switch dataset {
	case "adult":
		src = synth.Adult(n, seed)
	case "compas":
		src = synth.COMPAS(n, seed)
	case "german":
		src = synth.German(n, seed)
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", dataset)
	}
	// Losing a store race is harmless: generators are deterministic, and
	// LoadOrStore keeps exactly one winner for future calls.
	actual, _ := sourceMemo.LoadOrStore(key, src)
	return actual.(*synth.Source), nil
}

// Spec returns the grid's normalized spec (zero value for grids built
// directly from a Source rather than Open).
func (g *Grid) Spec() Spec { return g.spec }

// Len returns the grid's total job count.
func (g *Grid) Len() int {
	switch g.kind {
	case kindSens:
		return len(g.models) * len(g.names)
	case kindScale:
		return len(g.scale) * (len(g.names) + 1)
	default:
		return len(g.slices) * len(g.names)
	}
}

// alignment returns the shard-boundary constraint for the grid's job
// index space. The pure-timing scalability grids subtract a per-slice
// baseline from the other timing columns of the same slice, so all of a
// slice's columns must be measured by the same process — their shards
// align to whole slices. Metric grids need no alignment: every cell is
// self-contained.
func (g *Grid) alignment() int {
	if g.kind == kindScale {
		return len(g.names) + 1
	}
	return 1
}

// Fingerprint returns the grid's shard fingerprint: a hash of the
// canonical spec and the job count. Only grids materialized by Open can
// be sharded across processes, because only a Spec travels.
func (g *Grid) Fingerprint() (string, error) {
	if g.specJSON == nil {
		return "", fmt.Errorf("experiments: grid was not opened from a Spec; cross-process sharding needs Open")
	}
	return shard.Fingerprint(g.specJSON, g.Len()), nil
}

// Cell computes grid job i. Per the runner's determinism contract the
// result depends only on i and the grid definition: every cell builds its
// own approach and random streams from explicit seeds, so a cell computes
// the same payload in any process, under any scheduling.
func (g *Grid) Cell(i int) (Cell, error) {
	if i < 0 || i >= g.Len() {
		return Cell{}, fmt.Errorf("experiments: cell %d outside grid [0,%d)", i, g.Len())
	}
	switch g.kind {
	case kindSens:
		model, name := g.models[i/len(g.names)], g.names[i%len(g.names)]
		a, err := registry.New(name, registry.Config{
			Graph: g.graph, Factory: ModelFactory(model), Seed: g.seed,
		})
		if err != nil {
			return Cell{}, err
		}
		row, err := Evaluate(a, g.slices[0].train, g.slices[0].test, g.graph)
		if err != nil {
			return Cell{}, err
		}
		return Cell{Index: i, Sens: &SensitivityRow{Approach: name, Model: model, Row: row}}, nil
	case kindScale:
		cols := len(g.names) + 1 // column 0 is the baseline LR
		sl, name := g.scale[i/cols], "LR"
		if ni := i % cols; ni > 0 {
			name = g.names[ni-1]
		}
		secs, err := timeOne(name, sl.train, sl.test, g.graph, g.seed)
		if err != nil {
			return Cell{}, err
		}
		return Cell{Index: i, Seconds: &secs}, nil
	default:
		si, ni := i/len(g.names), i%len(g.names)
		a, err := registry.New(g.names[ni], registry.Config{Graph: g.graph, Seed: g.sliceSeed(si)})
		if err != nil {
			return Cell{}, err
		}
		row, err := Evaluate(a, g.slices[si].train, g.slices[si].test, g.graph)
		if err != nil {
			return Cell{}, err
		}
		return Cell{Index: i, Row: &row}, nil
	}
}

// Batches enumerates the grid's batch groups: maximal runs of consecutive
// cells that share one dataset materialization (the same training split,
// and through it the same flat matrix backing). The grouping key is
// positional — metric grids group by dataset slice, the sensitivity grid
// is one batch (every cell evaluates on the same split), and the
// pure-timing grids group by slice with no preparation at all, because a
// shared materialization would shift measured cost from later cells onto
// the first one.
//
// A batch's Prepare arms the shared split's design and batch caches, so
// cells fitting on it share the standardized design matrix and any other
// artifact they derive identically (see dataset.BatchCache) instead of
// each materializing its own. Arming is the only effect: every shared
// value is bit-identical to what each cell would have computed alone, so
// a batched run's output is byte-identical to the per-cell path.
func (g *Grid) Batches() []runner.Batch {
	switch g.kind {
	case kindSens:
		// Every cell fits on slices[0]'s training split.
		if len(g.slices) == 0 {
			return nil
		}
		return []runner.Batch{{Start: 0, End: g.Len(), Prepare: armSplit(g.slices[0].train)}}
	case kindScale:
		cols := len(g.names) + 1
		batches := make([]runner.Batch, len(g.scale))
		for si := range g.scale {
			batches[si] = runner.Batch{Start: si * cols, End: (si + 1) * cols}
		}
		return batches
	default:
		batches := make([]runner.Batch, len(g.slices))
		for si := range g.slices {
			batches[si] = runner.Batch{
				Start:   si * len(g.names),
				End:     (si + 1) * len(g.names),
				Prepare: armSplit(g.slices[si].train),
			}
		}
		return batches
	}
}

// armSplit is the batch preparation step: it arms the shared training
// split's caches so the batch's cells share one materialization.
func armSplit(train *dataset.Dataset) func() error {
	return func() error {
		train.EnableDesignCache()
		train.EnableBatchCache()
		return nil
	}
}

// clipBatches intersects the grid's batches with the shard range
// [start, end), keeping each surviving batch's Prepare (a shard that
// holds any cell of a batch still materializes that batch's split — once).
func clipBatches(batches []runner.Batch, start, end int) []runner.Batch {
	var out []runner.Batch
	for _, b := range batches {
		if b.End <= start || b.Start >= end {
			continue
		}
		if b.Start < start {
			b.Start = start
		}
		if b.End > end {
			b.End = end
		}
		out = append(out, b)
	}
	return out
}

// RunRange executes the contiguous cells [start, end) — one shard of the
// grid — across the runner pool and returns them in index order. Cells
// are executed batch-aware: the first worker to reach a batch runs its
// Prepare (materializing the shared split once), then every cell of the
// batch fans out over the shared read-only views. The pure-timing
// scalability grids always run their cells with one worker so
// co-scheduled cells cannot contend for cores and corrupt the measured
// overhead; sharding is the sanctioned way to parallelize them, across
// isolated processes or hosts.
func (g *Grid) RunRange(start, end int) ([]Cell, error) {
	return g.RunRangeContext(context.Background(), start, end)
}

// RunRangeContext is RunRange under a cancellation context: once ctx is
// done, no further cell starts and the call fails fast with an error
// wrapping ctx.Err(). Cells already executing finish (a cell is pure
// computation with nothing to roll back); with the result cache installed
// their payloads are still written back, so a cancelled run checkpoints
// at cell granularity and a later run resumes from what completed.
func (g *Grid) RunRangeContext(ctx context.Context, start, end int) ([]Cell, error) {
	if start < 0 || end > g.Len() || start > end {
		return nil, fmt.Errorf("experiments: range [%d,%d) outside grid [0,%d)", start, end, g.Len())
	}
	opts := runner.Options{FailFast: true, Offset: start, Workers: g.workers}
	if g.kind == kindScale {
		opts.Workers = 1
	}
	job := g.Cell
	// Only grids materialized from a Spec have the stable identity the
	// cache keys on; a sourceless grid always computes.
	if c := g.cache; c != nil && g.specJSON != nil {
		fp := shard.Fingerprint(g.specJSON, g.Len())
		job = func(i int) (Cell, error) { return g.cachedCell(c, fp, i) }
	}
	if ctx.Done() != nil {
		inner := job
		job = func(i int) (Cell, error) {
			if err := ctx.Err(); err != nil {
				return Cell{}, err
			}
			return inner(i)
		}
	}
	return runner.RunBatched(end-start, opts, clipBatches(g.Batches(), start, end), job)
}

// cachedCell serves grid job i from the result cache when a verified
// entry exists, and computes-then-caches it otherwise. Cache write
// failures (full disk, permissions) never fail the run — the cell was
// computed; only resumability degrades. Note the cache stores whatever
// the cell computed, including the timing payloads of the pure-timing
// grids: a warm run reports the cold run's measurements, which is what
// resumability requires — clear the cache (or run without one) to
// re-measure.
func (g *Grid) cachedCell(c store.Backend, fp string, i int) (Cell, error) {
	key := store.Key{Fingerprint: fp, Index: i, Seed: g.spec.Seed, Arch: runtime.GOARCH}
	if payload, ok := c.Get(key); ok {
		var cell Cell
		// An entry that passed integrity checks but does not decode to
		// this grid's cell shape is treated as a miss and recomputed.
		if err := json.Unmarshal(payload, &cell); err == nil && cell.Index == i {
			cell.Cached = true
			return cell, nil
		}
	}
	cell, err := g.Cell(i)
	if err != nil {
		return Cell{}, err
	}
	if payload, err := json.Marshal(cell); err == nil {
		_ = c.Put(key, payload)
	}
	return cell, nil
}

// Assemble runs the driver's post-pass over a complete, index-ordered
// cell set (typically the concatenation of merged shards) and returns the
// driver-native output. The post-pass is pure arithmetic in cell order,
// so its floats match a single-process run bit for bit.
func (g *Grid) Assemble(cells []Cell) (*Output, error) {
	if len(cells) != g.Len() {
		return nil, fmt.Errorf("experiments: assembling %d cells, grid has %d", len(cells), g.Len())
	}
	for i := range cells {
		if cells[i].Index != i {
			return nil, fmt.Errorf("experiments: cell %d carries index %d", i, cells[i].Index)
		}
	}
	out, err := g.assemble(g, cells)
	if err != nil {
		return nil, err
	}
	out.Experiment, out.Spec = g.spec.Experiment, g.spec
	return out, nil
}

// RunAll executes the whole grid in this process and assembles it — the
// single-process path every driver function uses, and the reference a
// sharded run must reproduce.
func (g *Grid) RunAll() (*Output, error) {
	cells, err := g.RunRange(0, g.Len())
	if err != nil {
		return nil, err
	}
	return g.Assemble(cells)
}

// cellRows unwraps a metric grid's cells.
func cellRows(cells []Cell) ([]Row, error) {
	rows := make([]Row, len(cells))
	for i := range cells {
		if cells[i].Row == nil {
			return nil, fmt.Errorf("experiments: cell %d has no row payload", i)
		}
		rows[i] = *cells[i].Row
	}
	return rows, nil
}

// cellSeconds unwraps a scalability grid's cells.
func cellSeconds(cells []Cell) ([]float64, error) {
	secs := make([]float64, len(cells))
	for i := range cells {
		if cells[i].Seconds == nil {
			return nil, fmt.Errorf("experiments: cell %d has no timing payload", i)
		}
		secs[i] = *cells[i].Seconds
	}
	return secs, nil
}
