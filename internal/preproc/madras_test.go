package preproc

import (
	"math"
	"testing"

	"fairbench/internal/fair"
	"fairbench/internal/metrics"
	"fairbench/internal/rng"
	"fairbench/internal/synth"
)

func TestMadrasRepresentationShape(t *testing.T) {
	src := synth.COMPAS(1500, 1)
	m := &Madras{Seed: 2}
	out, err := m.Repair(src.Data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim() != 8 {
		t.Fatalf("representation width: %d", out.Dim())
	}
	if out.Len() != src.Data.Len() {
		t.Fatal("size must be preserved")
	}
	for _, row := range out.X {
		for _, v := range row {
			if v < -1 || v > 1 || math.IsNaN(v) {
				t.Fatalf("tanh representation out of range: %v", v)
			}
		}
	}
	// TransformRow agrees with the training encoding.
	enc := m.TransformRow(src.Data.X[3], src.Data.S[3])
	for j := range enc {
		if math.Abs(enc[j]-out.X[3][j]) > 1e-9 {
			t.Fatal("TransformRow disagrees with Repair encoding")
		}
	}
}

func TestMadrasImprovesDI(t *testing.T) {
	src := synth.COMPAS(3000, 3)
	train, test := src.Data.Split(0.7, rng.New(5))
	base := fair.NewBaseline()
	if err := base.Fit(train); err != nil {
		t.Fatal(err)
	}
	byhat, _ := base.Predict(test)
	baseDI := metrics.DIStar(metrics.DisparateImpact(test, byhat))

	a := NewMadras(nil, 7)
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	yhat, err := a.Predict(test)
	if err != nil {
		t.Fatal(err)
	}
	di := metrics.DIStar(metrics.DisparateImpact(test, yhat))
	if di < baseDI-0.02 {
		t.Fatalf("Madras DI* %v below baseline %v", di, baseDI)
	}
	// The representation drops S entirely: ID must be 0.
	if id := metrics.IndividualDiscrimination(test, a.(*fair.PreProcessed)); id != 0 {
		t.Fatalf("Madras is S-blind, ID must be 0: %v", id)
	}
}
