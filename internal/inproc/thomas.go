package inproc

import (
	"fmt"
	"math"

	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/matrix"
	"fairbench/internal/optimize"
	"fairbench/internal/rng"
	"fairbench/internal/stats"
)

// ThomasNotion selects the fairness notion a Thomas instance enforces.
type ThomasNotion int

const (
	// ThomasDP enforces demographic parity.
	ThomasDP ThomasNotion = iota
	// ThomasEO enforces equalized odds (both TPR and TNR balance).
	ThomasEO
)

// Thomas implements Thomas et al.'s Seldonian framework: the training data
// is split into a candidate-selection set and a safety set. Candidate
// selection minimizes the prediction loss plus a barrier on the predicted
// upper bound of the fairness violation; the safety test then certifies —
// via a Hoeffding (1-delta)-confidence upper bound computed on held-out
// data — that the worst-case violation stays below the threshold. If the
// test fails, the candidate is rejected and the search resumes with a
// stronger barrier; if no candidate ever passes, the fairest rejected
// candidate is returned (flagged by NoSolutionFound).
type Thomas struct {
	Notion ThomasNotion
	// Delta is the confidence parameter (paper: 0.05).
	Delta float64
	// Threshold is the allowed violation (default 0.05).
	Threshold float64
	// MaxAttempts bounds the candidate search (default 5).
	MaxAttempts int
	// Seed drives the candidate/safety split.
	Seed int64

	base linearBase
	// NoSolutionFound records that every candidate failed the safety test
	// and the returned model is the best-effort fallback.
	NoSolutionFound bool
}

// Name implements fair.Approach.
func (t *Thomas) Name() string {
	if t.Notion == ThomasEO {
		return "Thomas-EO"
	}
	return "Thomas-DP"
}

// Stage implements fair.Approach.
func (t *Thomas) Stage() fair.Stage { return fair.StageIn }

// Targets implements fair.Approach.
func (t *Thomas) Targets() []fair.Metric {
	if t.Notion == ThomasEO {
		return []fair.Metric{fair.MetricTPRB, fair.MetricTNRB}
	}
	return []fair.Metric{fair.MetricDI}
}

// violations returns the smooth per-notion violation terms of weights w on
// rows x: probability-scale group gaps whose absolute values the barrier
// penalizes and the safety test bounds.
func (t *Thomas) violations(w []float64, x [][]float64, y, s []int) []float64 {
	d := len(w) - 1
	var pos, tot [2]float64
	var tpSum, tpN, tnSum, tnN [2]float64
	for i, row := range x {
		z := w[d]
		for j, v := range row {
			z += w[j] * v
		}
		p := sigmoid(z)
		g := s[i]
		pos[g] += p
		tot[g]++
		if y[i] == 1 {
			tpSum[g] += p
			tpN[g]++
		} else {
			tnSum[g] += 1 - p
			tnN[g]++
		}
	}
	rate := func(sum, n [2]float64) float64 {
		a, b := 0.0, 0.0
		if n[0] > 0 {
			a = sum[0] / n[0]
		}
		if n[1] > 0 {
			b = sum[1] / n[1]
		}
		return b - a
	}
	if t.Notion == ThomasDP {
		return []float64{rate(pos, tot)}
	}
	return []float64{rate(tpSum, tpN), rate(tnSum, tnN)}
}

// safetyTest computes Hoeffding (1-delta) upper bounds on each violation's
// absolute value over the safety set and reports whether all stay below
// the threshold.
func (t *Thomas) safetyTest(w []float64, x [][]float64, y, s []int) bool {
	viols := t.violations(w, x, y, s)
	// Conservative per-group counts for the bound width.
	n0, n1 := 0, 0
	for _, si := range s {
		if si == 1 {
			n1++
		} else {
			n0++
		}
	}
	nMin := n0
	if n1 < nMin {
		nMin = n1
	}
	if nMin == 0 {
		return false
	}
	// The Hoeffding width is the bound's irreducible resolution: on small
	// safety sets (German) no candidate could ever certify a threshold
	// below it, so the acceptable level is the threshold or the resolution,
	// whichever is larger.
	width := math.Sqrt(math.Log(1/t.Delta) / (2 * float64(nMin)))
	accept := math.Max(t.Threshold, 1.5*width)
	for _, v := range viols {
		if stats.HoeffdingUpper(math.Abs(v), nMin, 0, 1, t.Delta)-width > accept {
			return false
		}
	}
	return true
}

// Fit implements fair.Approach.
func (t *Thomas) Fit(train *dataset.Dataset) error {
	if t.Delta == 0 {
		t.Delta = 0.05
	}
	if t.Threshold == 0 {
		t.Threshold = 0.05
	}
	if t.MaxAttempts == 0 {
		t.MaxAttempts = 5
	}
	t.base.includeS = false
	x := t.base.designMatrix(train)
	y, s := train.Y, train.S
	n := len(x)
	dim := len(x[0])

	// Candidate/safety split (60/40).
	g := rng.New(t.Seed)
	perm := g.Perm(n)
	cut := n * 3 / 5
	candIdx, safeIdx := perm[:cut], perm[cut:]
	sel := func(idx []int) ([][]float64, []int, []int) {
		xs := make([][]float64, len(idx))
		ys := make([]int, len(idx))
		ss := make([]int, len(idx))
		for k, i := range idx {
			xs[k], ys[k], ss[k] = x[i], y[i], s[i]
		}
		return xs, ys, ss
	}
	cx, cy, cs := sel(candIdx)
	sx, sy, ssv := sel(safeIdx)

	// The candidate rows out of sel are permuted aliases into the design
	// matrix, so they share no contiguous backing. Copy them into one
	// (values bit-identical) so the fitView's blocked z-pass engages; the
	// loss gradient, the violation terms, and the barrier gradient then all
	// read a single affine/sigmoid pass per Adam iteration instead of
	// recomputing the scores three times.
	cx = matrix.FromRows(cx).RowsView()
	view := newFitView(cx, cy)

	barrier := 5.0
	var wBest []float64
	bestViol := math.Inf(1)
	t.NoSolutionFound = true
	w := make([]float64, dim+1)
	for attempt := 0; attempt < t.MaxAttempts; attempt++ {
		// Gradient-only: Adam discards the value, so neither the log-loss
		// terms nor the barrier value is materialized — only their
		// gradients.
		obj := func(wv, grad []float64) float64 {
			for j := range grad {
				grad[j] = 0
			}
			view.fillZ(wv)
			view.fillP()
			view.logGradFromP(grad)
			// Barrier on the squared smooth violations, with the analytic
			// chain-rule gradient through the per-sample sigmoids.
			viols := t.violationsFromP(view.p, cy, cs)
			t.addViolationGradFromP(view.p, cx, cy, cs, viols, barrier, grad)
			return 0
		}
		w, _ = optimize.Adam(obj, w, optimize.AdamConfig{MaxIter: 400})

		if t.safetyTest(w, sx, sy, ssv) {
			t.base.w = w
			t.NoSolutionFound = false
			return nil
		}
		// Track the fairest rejected candidate as fallback.
		viols := t.violations(w, sx, sy, ssv)
		var worst float64
		for _, v := range viols {
			worst = math.Max(worst, math.Abs(v))
		}
		if worst < bestViol {
			bestViol = worst
			wBest = append([]float64(nil), w...)
		}
		barrier *= 4
	}
	t.base.w = wBest
	return nil
}

// violationsFromP computes the same smooth violation terms as violations
// but reads per-tuple probabilities already materialized in p, preserving
// the accumulation order of the pass it replaces.
func (t *Thomas) violationsFromP(p []float64, y, s []int) []float64 {
	var pos, tot [2]float64
	var tpSum, tpN, tnSum, tnN [2]float64
	for i, pi := range p {
		g := s[i]
		pos[g] += pi
		tot[g]++
		if y[i] == 1 {
			tpSum[g] += pi
			tpN[g]++
		} else {
			tnSum[g] += 1 - pi
			tnN[g]++
		}
	}
	rate := func(sum, n [2]float64) float64 {
		a, b := 0.0, 0.0
		if n[0] > 0 {
			a = sum[0] / n[0]
		}
		if n[1] > 0 {
			b = sum[1] / n[1]
		}
		return b - a
	}
	if t.Notion == ThomasDP {
		return []float64{rate(pos, tot)}
	}
	return []float64{rate(tpSum, tpN), rate(tnSum, tnN)}
}

// addViolationGradFromP adds the analytic gradient of barrier * sum(v^2)
// where each v is a difference of group-mean sigmoid terms; the per-tuple
// sigmoids are read from p rather than recomputed from the weights.
func (t *Thomas) addViolationGradFromP(p []float64, x [][]float64, y, s []int, viols []float64, barrier float64, grad []float64) {
	d := len(grad) - 1
	gd := grad[:d]
	var tot [2]float64
	var tpN, tnN [2]float64
	for i := range x {
		tot[s[i]]++
		if y[i] == 1 {
			tpN[s[i]]++
		} else {
			tnN[s[i]]++
		}
	}
	for i, row := range x {
		pi := p[i]
		dp := pi * (1 - pi)
		g := s[i]
		sign := 1.0
		if g == 0 {
			sign = -1
		}
		var coef float64
		if t.Notion == ThomasDP {
			if tot[g] > 0 {
				coef = 2 * barrier * viols[0] * sign * dp / tot[g]
			}
		} else {
			if y[i] == 1 && tpN[g] > 0 {
				coef = 2 * barrier * viols[0] * sign * dp / tpN[g]
			} else if y[i] == 0 && tnN[g] > 0 {
				// TNR term uses 1-p, flipping the derivative sign.
				coef = -2 * barrier * viols[1] * sign * dp / tnN[g]
			}
		}
		if coef == 0 {
			continue
		}
		matrix.AccumulateInto(gd, coef, row)
		grad[d] += coef
	}
}

// Predict implements fair.Approach.
func (t *Thomas) Predict(test *dataset.Dataset) ([]int, error) {
	if t.base.w == nil {
		return nil, fmt.Errorf("%s: not fitted", t.Name())
	}
	return t.base.predictAll(test), nil
}

// PredictOne implements fair.Approach.
func (t *Thomas) PredictOne(x []float64, s int) int { return t.base.predictOne(x, s) }

// NewThomasDP returns the evaluated Thomas^dp approach.
func NewThomasDP(seed int64) fair.Approach { return &Thomas{Notion: ThomasDP, Seed: seed} }

// NewThomasEO returns the evaluated Thomas^eo approach.
func NewThomasEO(seed int64) fair.Approach { return &Thomas{Notion: ThomasEO, Seed: seed} }
