package fairbench

import (
	"fmt"
	"testing"

	"fairbench/internal/classifier"
	"fairbench/internal/dataset"
	"fairbench/internal/experiments"
	"fairbench/internal/fair"
	"fairbench/internal/postproc"
	"fairbench/internal/preproc"
	"fairbench/internal/registry"
	"fairbench/internal/rng"
	"fairbench/internal/runner"
	"fairbench/internal/store"
	"fairbench/internal/synth"
)

// Benchmark sizes are scaled-down dataset samples so the full suite runs
// in minutes; the CLI (`fairbench <figN>`) runs the paper-size versions.
const (
	benchAdultN  = 2500
	benchCompasN = 1500
	benchGermanN = 1000
)

// ---- Figure 7: correctness & fairness, one bench per dataset ----

func benchFig7(b *testing.B, src *synth.Source) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CorrectnessFairness(src, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_Adult(b *testing.B)  { benchFig7(b, synth.Adult(benchAdultN, 1)) }
func BenchmarkFig7_COMPAS(b *testing.B) { benchFig7(b, synth.COMPAS(benchCompasN, 1)) }
func BenchmarkFig7_German(b *testing.B) { benchFig7(b, synth.German(benchGermanN, 1)) }

// ---- Runner: serial vs parallel evalAll (the perf-trajectory pair) ----
//
// The same 19-approach Figure 7 grid, forced serial vs on the default
// worker pool. scripts/bench.sh records both ns/op (and their ratio) to
// BENCH_parallel.json.

func benchEvalAllWorkers(b *testing.B, workers int) {
	src := synth.COMPAS(benchCompasN, 1)
	runner.SetParallelism(workers)
	defer runner.SetParallelism(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CorrectnessFairness(src, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalAllSerial(b *testing.B)   { benchEvalAllWorkers(b, 1) }
func BenchmarkEvalAllParallel(b *testing.B) { benchEvalAllWorkers(b, 0) }

// ---- Figure 8: efficiency & scalability sweeps ----

func BenchmarkFig8_Rows(b *testing.B) {
	src := synth.Adult(4000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ScalabilityRows(src, []int{500, 1000, 2000}, registry.Names, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_Attrs(b *testing.B) {
	src := synth.Adult(3000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ScalabilityAttrs(src, []int{2, 5, 9}, registry.Names, 2000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-approach training scaling: the raw series behind Figure 8(a-c).
func BenchmarkFig8_PerApproach(b *testing.B) {
	src := synth.Adult(3000, 1)
	train, test := src.Data.Split(0.7, rng.New(1))
	for _, name := range registry.Names {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a, err := registry.New(name, registry.Config{Graph: src.Graph, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if err := a.Fit(train); err != nil {
					b.Fatal(err)
				}
				if _, err := a.Predict(test); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 9: robustness to data errors ----

func BenchmarkFig9_Robustness(b *testing.B) {
	src := synth.COMPAS(benchCompasN, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Robustness(src, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 10/21: model sensitivity ----

func BenchmarkFig10_ModelSensitivity(b *testing.B) {
	src := synth.Adult(benchAdultN, 1)
	// Three representative approaches x five models keeps iterations short.
	approaches := []string{"Feld-DP", "KamCal-DP", "KamKar-DP"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ModelSensitivity(src, approaches, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figures 16-18: cross-validation tables ----

func BenchmarkCVTables(b *testing.B) {
	src := synth.German(benchGermanN, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CrossValidate(src, 5, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 22: stability ----

func BenchmarkFig22_Stability(b *testing.B) {
	src := synth.COMPAS(benchCompasN, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Stability(src, 3, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 23: data efficiency ----

func BenchmarkFig23_DataEfficiency(b *testing.B) {
	src := synth.Adult(benchAdultN, 1)
	names := []string{"LR", "KamCal-DP", "Hardt-EO", "Pleiss-EOP"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DataEfficiency(src, []int{100, 500, 1000}, names, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Sharding: plan + merge overhead (the BENCH_shard.json pair) ----
//
// BenchmarkShardPlan is the fixed cost every shard-running process pays
// before its first cell: materializing the grid from the spec (dataset
// synthesis + splits) and computing the shard plan. BenchmarkShardMerge
// is the coordinator's cost to validate, decode, and reassemble a
// complete 3-shard set into driver-native rows. Together they bound the
// overhead of going distributed; scripts/bench.sh records both.

func BenchmarkShardPlan(b *testing.B) {
	spec := GridSpec{Experiment: "fig7", Dataset: "compas", N: benchCompasN, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PlanShards(spec, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardMerge(b *testing.B) {
	spec := GridSpec{Experiment: "fig7", Dataset: "german", N: 300, Seed: 1}
	envs := make([]*ShardEnvelope, 3)
	for i := range envs {
		env, err := RunShard(spec, i, 3)
		if err != nil {
			b.Fatal(err)
		}
		envs[i] = env
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MergeShards(envs); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Result cache: cold vs warm shard runs (the BENCH_cache.json pair) ----
//
// BenchmarkRunShardCold runs a one-shard Figure 7 grid against a fresh
// cache directory every iteration (every cell computed and written
// back); BenchmarkRunShardWarm runs the same grid against a populated
// cache (every cell a verified store hit, zero computations — asserted
// via the store counters). Their ratio is the speedup a resumed or
// re-run figure gets per already-computed cell; scripts/bench.sh records
// both to BENCH_cache.json.

var benchCacheSpec = GridSpec{Experiment: "fig7", Dataset: "german", N: 300, Seed: 1}

// benchRunShardCached runs one cached shard against an explicit cache
// directory — what the removed facade wrapper RunShardCached did, spelled
// out on the internal API the engine path uses.
func benchRunShardCached(spec GridSpec, dir string) (*ShardEnvelope, error) {
	s, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	return experiments.RunShardCached(spec, 0, 1, s)
}

func BenchmarkRunShardCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir() // a fresh, empty cache every iteration
		b.StartTimer()
		if _, err := benchRunShardCached(benchCacheSpec, dir); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunShardWarm(b *testing.B) {
	dir := b.TempDir()
	env, err := benchRunShardCached(benchCacheSpec, dir) // populate
	if err != nil {
		b.Fatal(err)
	}
	cells := len(env.Indices)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := benchRunShardCached(benchCacheSpec, dir)
		if err != nil {
			b.Fatal(err)
		}
		if len(env.Cached) != cells {
			b.Fatalf("warm iteration computed %d cells", cells-len(env.Cached))
		}
	}
}

// ---- Training kernels: the BENCH_train.json set ----
//
// BenchmarkFitLogreg is the hot loop behind every cell: one full-batch
// Adam fit of the baseline logistic regression on a standardized German
// 70% split. BenchmarkGridCellCold and BenchmarkGridBatchCold run the
// same whole uncached fig7 German n=300 grid (19 cold cells, no result
// cache) through its two execution modes: GridCellCold computes every
// cell alone via Cell — the pre-batching semantics, nothing shared —
// while GridBatchCold runs RunAll, the batch-at-a-time product path
// whose cells share one materialization (design, base-fit, and
// warm-start artifacts computed once per batch). Their outputs are
// byte-identical (TestBatchedMatchesPerCell); the ns gap is batching's
// payoff. BenchmarkSynthMaterialize is dataset materialization alone —
// the cost the per-run synthesis memo amortizes across Opens.
// scripts/bench.sh records all of these (ns/op and allocs/op) to
// BENCH_train.json next to the seed baselines measured before the
// flat-layout refactor.

func BenchmarkFitLogreg(b *testing.B) {
	src := synth.German(1000, 1)
	train, _ := src.Data.Split(0.7, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := fair.NewBaseline()
		if err := base.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdamStepLogreg isolates one full-batch Adam objective+update
// step of the logistic regression (what the per-iteration allocation
// bound in internal/classifier pins); the surrounding Fit machinery is
// excluded by running MaxIter=1.
func BenchmarkAdamStepLogreg(b *testing.B) {
	src := synth.German(1000, 1)
	train, _ := src.Data.Split(0.7, rng.New(1))
	work := train.Clone()
	dataset.FitStandardizer(work).Apply(work)
	x := work.FeatureMatrix(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lr := classifier.NewLogistic()
		lr.MaxIter = 1
		if err := lr.Fit(x, work.Y, work.Weights); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridCellCold(b *testing.B) {
	spec := experiments.Spec{Experiment: "fig7", Dataset: "german", N: 300, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := experiments.Open(spec)
		if err != nil {
			b.Fatal(err)
		}
		g.SetCache(nil) // always the cold path: every cell computed
		for c := 0; c < g.Len(); c++ {
			if _, err := g.Cell(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkGridBatchCold(b *testing.B) {
	spec := experiments.Spec{Experiment: "fig7", Dataset: "german", N: 300, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := experiments.Open(spec)
		if err != nil {
			b.Fatal(err)
		}
		g.SetCache(nil) // always the cold path: every cell computed
		if _, err := g.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthMaterialize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if src := synth.Adult(5000, 1); src.Data.Len() != 5000 {
			b.Fatal("bad materialization")
		}
	}
}

// ---- Ablation benches (design choices DESIGN.md calls out) ----

// Kam-Cal's two faces: weighted resampling (evaluated variant) vs pure
// instance weighting.
func BenchmarkAblation_ReweighVsResample(b *testing.B) {
	src := synth.COMPAS(benchCompasN, 1)
	train, test := src.Data.Split(0.7, rng.New(1))
	for _, mode := range []string{"resample", "weighted"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var a fair.Approach
				if mode == "resample" {
					a = preproc.NewKamCal(nil, 1)
				} else {
					a = preproc.NewKamCalWeighted(nil)
				}
				if err := a.Fit(train); err != nil {
					b.Fatal(err)
				}
				if _, err := a.Predict(test); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Salimi's two repair solvers at growing stratum complexity.
func BenchmarkAblation_SalimiSolvers(b *testing.B) {
	src := synth.Adult(2000, 1)
	for _, matFac := range []bool{false, true} {
		name := "MaxSAT"
		if matFac {
			name = "MatFac"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sal := &preproc.Salimi{
					Inadmissible: preproc.DefaultInadmissible,
					UseMatFac:    matFac,
					Seed:         1,
				}
				if _, err := sal.Repair(src.Data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Zafar's fairness/accuracy dial: the covariance bound sweep that traces
// the trade-off curve of Section 4.2.
func BenchmarkAblation_ZafarPenalty(b *testing.B) {
	src := synth.COMPAS(benchCompasN, 1)
	train, test := src.Data.Split(0.7, rng.New(1))
	for _, bound := range []float64{1e-4, 1e-2, 1e-1} {
		b.Run(fmt.Sprintf("cov=%g", bound), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := &inprocZafar{bound: bound}
				if err := a.fit(train, test); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Hardt's exact LP vs a naive grid search over the four mixing rates.
func BenchmarkAblation_HardtLPvsGrid(b *testing.B) {
	src := synth.COMPAS(benchCompasN, 1)
	train, _ := src.Data.Split(0.7, rng.New(1))
	base := fair.NewBaseline()
	if err := base.Fit(train); err != nil {
		b.Fatal(err)
	}
	proba := make([]float64, train.Len())
	for i := range proba {
		proba[i] = base.Proba(train.X[i], train.S[i])
	}
	b.Run("LP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h := &postproc.Hardt{}
			if err := h.FitAdjust(train, proba); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gridEqualizeOdds(train.Y, train.S, proba, 20)
		}
	})
}

// gridEqualizeOdds is the brute-force comparator for the Hardt ablation:
// it scans a k^4 grid of mixing rates for the feasible minimum-error cell.
func gridEqualizeOdds(y, s []int, proba []float64, k int) [4]float64 {
	var tp, fp, pn, nn [2]float64
	for i, p := range proba {
		pred := 0
		if p >= 0.5 {
			pred = 1
		}
		if y[i] == 1 {
			pn[s[i]]++
			if pred == 1 {
				tp[s[i]]++
			}
		} else {
			nn[s[i]]++
			if pred == 1 {
				fp[s[i]]++
			}
		}
	}
	var tpr, fpr [2]float64
	for g := 0; g < 2; g++ {
		if pn[g] > 0 {
			tpr[g] = tp[g] / pn[g]
		}
		if nn[g] > 0 {
			fpr[g] = fp[g] / nn[g]
		}
	}
	best := [4]float64{1, 1, 0, 0}
	bestErr := 1e18
	step := 1.0 / float64(k)
	n := float64(len(y))
	for a0 := 0.0; a0 <= 1; a0 += step {
		for a1 := 0.0; a1 <= 1; a1 += step {
			for b0 := 0.0; b0 <= 1; b0 += step {
				for b1 := 0.0; b1 <= 1; b1 += step {
					t0 := a0*tpr[0] + b0*(1-tpr[0])
					t1 := a1*tpr[1] + b1*(1-tpr[1])
					f0 := a0*fpr[0] + b0*(1-fpr[0])
					f1 := a1*fpr[1] + b1*(1-fpr[1])
					if abs(t0-t1) > 0.02 || abs(f0-f1) > 0.02 {
						continue
					}
					errv := pn[0]/n*(1-t0) + nn[0]/n*f0 + pn[1]/n*(1-t1) + nn[1]/n*f1
					if errv < bestErr {
						bestErr = errv
						best = [4]float64{a0, a1, b0, b1}
					}
				}
			}
		}
	}
	return best
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// inprocZafar wraps the registry construction for the penalty ablation.
type inprocZafar struct{ bound float64 }

func (z *inprocZafar) fit(train, test *Dataset) error {
	a, err := registry.New("Zafar-DP-Fair", registry.Config{Seed: 1})
	if err != nil {
		return err
	}
	type boundSetter interface{ SetCovBound(float64) }
	if bs, ok := a.(boundSetter); ok {
		bs.SetCovBound(z.bound)
	}
	if err := a.Fit(train); err != nil {
		return err
	}
	_, err = a.Predict(test)
	return err
}
