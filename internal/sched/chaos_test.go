package sched

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"fairbench/internal/dispatch"
	"fairbench/internal/experiments"
	"fairbench/internal/store"
)

// TestMain doubles as the worker subprocess body, the same re-exec
// pattern internal/dispatch's tests use. "worker" runs a real shard via
// dispatch.Worker; "workerio" is the remote-transport protocol (manifest
// on stdin, envelope on stdout); "killself" SIGKILLs itself immediately —
// a genuinely killed host process, with no killer goroutine to race.
func TestMain(m *testing.M) {
	switch os.Getenv("FAIRBENCH_TEST_HELPER") {
	case "":
		os.Exit(m.Run())
	case "worker":
		idx, err := strconv.Atoi(os.Getenv("HELPER_SHARD"))
		if err == nil {
			err = dispatch.Worker(os.Getenv("HELPER_MANIFEST"), idx, os.Getenv("HELPER_OUT"))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	case "workerio":
		idx, err := strconv.Atoi(os.Getenv("HELPER_SHARD"))
		if err == nil {
			err = dispatch.WorkerIO(os.Stdin, idx, os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	case "killself":
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		time.Sleep(time.Minute) // unreachable
		os.Exit(0)
	}
	os.Exit(2)
}

// helperSpawn re-execs this test binary in the given helper mode; it has
// dispatch.SpawnFunc's shape, so it drives both LocalExec and
// dispatch.Resume.
func helperSpawn(mode string) dispatch.SpawnFunc {
	return func(manifestPath string, shard int, outPath string) (*exec.Cmd, error) {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			"FAIRBENCH_TEST_HELPER="+mode,
			"HELPER_MANIFEST="+manifestPath,
			"HELPER_SHARD="+strconv.Itoa(shard),
			"HELPER_OUT="+outPath,
		)
		return cmd, nil
	}
}

// workerTransport is a LocalExec whose subprocesses run real shards.
func workerTransport() *LocalExec { return &LocalExec{Spawn: helperSpawn("worker")} }

func smallSpec() experiments.Spec {
	return experiments.Spec{Experiment: "fig23", Dataset: "compas", N: 300, Seed: 6,
		Sizes: []int{60, 120}, Names: []string{"LR", "KamCal-DP"}}
}

// canonical marshals an output with its timing fields zeroed (the
// scheduler only guarantees the metric payload).
func canonical(t testing.TB, out *experiments.Output) []byte {
	t.Helper()
	for _, pts := range out.Efficiency {
		for i := range pts {
			pts[i].Row.Seconds, pts[i].Row.Overhead = 0, 0
		}
	}
	for i := range out.Rows {
		out.Rows[i].Seconds, out.Rows[i].Overhead = 0, 0
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func serialReference(t testing.TB, spec experiments.Spec) []byte {
	t.Helper()
	g, err := experiments.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	return canonical(t, out)
}

// TestSchedMatchesSerial: the happy path — two local hosts with uneven
// slots, merged output byte-identical to a serial run.
func TestSchedMatchesSerial(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	out, rep, err := Run(spec, Options{
		Dir:        t.TempDir(),
		Shards:     3,
		Hosts:      []Host{{Name: "a", Slots: 2}, {Name: "b"}},
		Transports: map[string]Transport{"local": workerTransport()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("scheduled output diverges from serial run")
	}
	if len(rep.Failed) != 0 || len(rep.Reused) != 0 || len(rep.Skipped) != 0 {
		t.Fatalf("report %+v", rep)
	}
	delivered := 0
	for _, idxs := range rep.Completed {
		delivered += len(idxs)
	}
	if delivered != len(rep.Ranges) {
		t.Fatalf("hosts delivered %d of %d ranges", delivered, len(rep.Ranges))
	}
	if rep.CellsComputed != 4 || rep.CellsCached != 0 {
		t.Fatalf("cells computed=%d cached=%d", rep.CellsComputed, rep.CellsCached)
	}
}

// TestSchedHostKillConvergesToSerial: chaos scenario 1 — every worker
// process the "doomed" host starts is SIGKILLed. The scheduler must fail
// those attempts, exclude the host, reassign its ranges to the survivor,
// and still converge to the serial bytes.
func TestSchedHostKillConvergesToSerial(t *testing.T) {
	spec := experiments.Spec{Experiment: "fig7", Dataset: "german", N: 150, Seed: 5}
	want := serialReference(t, spec)
	out, rep, err := Run(spec, Options{
		Dir:    t.TempDir(),
		Shards: 3,
		Hosts:  []Host{{Name: "doomed", Slots: 2, Transport: "kill"}, {Name: "ok"}},
		Transports: map[string]Transport{
			"kill":  &LocalExec{Spawn: helperSpawn("killself")},
			"local": workerTransport(),
		},
		MaxHostFailures: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("output after a SIGKILLed host diverges from serial run")
	}
	if len(rep.Excluded) != 1 || rep.Excluded[0] != "doomed" {
		t.Fatalf("excluded %v, want [doomed]", rep.Excluded)
	}
	if len(rep.Completed["doomed"]) != 0 {
		t.Fatalf("the killed host completed %v", rep.Completed["doomed"])
	}
	if len(rep.Completed["ok"]) != len(rep.Ranges) {
		t.Fatalf("survivor completed %v of %d ranges", rep.Completed["ok"], len(rep.Ranges))
	}
}

// hangTransport accepts assignments and then goes silent: it never
// beats, never writes a part, and returns only when the scheduler
// cancels it — a wedged ssh session.
type hangTransport struct{}

func (hangTransport) Run(ctx context.Context, _ Host, _ Assignment, _ func()) error {
	<-ctx.Done()
	return ctx.Err()
}

// TestSchedHangHeartbeatReassigns: chaos scenario 2 — the "stuck" host
// hangs past the heartbeat deadline. The scheduler must declare it dead
// on the FIRST lapse (the default MaxHostFailures budget is for ordinary
// failures, not heartbeat death), cancel its assignments, reassign them,
// and converge to serial bytes.
func TestSchedHangHeartbeatReassigns(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	start := time.Now()
	out, rep, err := Run(spec, Options{
		Dir:    t.TempDir(),
		Shards: 3,
		Hosts:  []Host{{Name: "stuck", Slots: 2, Transport: "hang"}, {Name: "ok"}},
		Transports: map[string]Transport{
			"hang":  hangTransport{},
			"local": workerTransport(),
		},
		HeartbeatTimeout: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("output after a hung host diverges from serial run")
	}
	if len(rep.Excluded) != 1 || rep.Excluded[0] != "stuck" {
		t.Fatalf("excluded %v, want [stuck]", rep.Excluded)
	}
	if len(rep.Completed["ok"]) != len(rep.Ranges) {
		t.Fatalf("survivor completed %v of %d ranges", rep.Completed["ok"], len(rep.Ranges))
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("hang detection took %s — the deadline did not fire", elapsed)
	}
}

// corruptTransport reports success after writing garbage where the
// envelope belongs — a host with a bad disk or a truncating network.
type corruptTransport struct{}

func (corruptTransport) Run(_ context.Context, _ Host, asn Assignment, beat func()) error {
	beat()
	return os.WriteFile(asn.OutPath, []byte(`{"version":1,"garbage":`), 0o644)
}

// TestSchedCorruptPartRejected: chaos scenario 3 — a host emits corrupt
// parts and claims success. The shared validation gate must reject every
// one of them (they never reach a part-NNN.json), the host must be
// excluded, and the output must still match serial.
func TestSchedCorruptPartRejected(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	dir := t.TempDir()
	out, rep, err := Run(spec, Options{
		Dir:    dir,
		Shards: 2,
		Hosts:  []Host{{Name: "liar", Slots: 2, Transport: "corrupt"}, {Name: "ok"}},
		Transports: map[string]Transport{
			"corrupt": corruptTransport{},
			"local":   workerTransport(),
		},
		MaxHostFailures: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("output after corrupt parts diverges from serial run")
	}
	if len(rep.Excluded) != 1 || rep.Excluded[0] != "liar" {
		t.Fatalf("excluded %v, want [liar]", rep.Excluded)
	}
	// No attempt-scoped debris may survive acceptance or rejection.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if name := e.Name(); filepath.Ext(name) != ".json" {
			t.Fatalf("stray file %s left in the sched directory", name)
		}
	}
}

// flapTransport fails every odd call and delegates every even one — a
// host flapping on and off.
type flapTransport struct {
	inner Transport
	mu    sync.Mutex
	calls int
}

func (f *flapTransport) Run(ctx context.Context, h Host, asn Assignment, beat func()) error {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if n%2 == 1 {
		return fmt.Errorf("injected flap (call %d)", n)
	}
	return f.inner.Run(ctx, h, asn, beat)
}

// TestSchedFlappingHostConverges: chaos scenario 4 — the only host flaps
// on and off. Retry rounds must re-offer failed ranges until the flap
// lets them through, and the output must match serial.
func TestSchedFlappingHostConverges(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	flap := &flapTransport{inner: workerTransport()}
	out, rep, err := Run(spec, Options{
		Dir:             t.TempDir(),
		Shards:          2,
		Hosts:           []Host{{Name: "flappy", Transport: "flap"}},
		Transports:      map[string]Transport{"flap": flap},
		Retries:         4,
		MaxHostFailures: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("output from a flapping host diverges from serial run")
	}
	retried := false
	for _, attempts := range rep.Attempts {
		if attempts > 1 {
			retried = true
		}
	}
	if !retried {
		t.Fatalf("flap never forced a retry: attempts %v (calls %d)", rep.Attempts, flap.calls)
	}
}

// forbidTransport fails the test if the scheduler assigns anything —
// warm-cache runs must never reach a host.
type forbidTransport struct{ t *testing.T }

func (f forbidTransport) Run(_ context.Context, h Host, asn Assignment, _ func()) error {
	f.t.Errorf("transport invoked (host %s, range %d) on a fully-cached run", h.Name, asn.Range)
	return fmt.Errorf("forbidden")
}

// TestSchedWarmCacheServesEverything: chaos scenario 5 — after a cold
// scheduled run populates the cache, a fresh warm run must plan zero
// assigned ranges, never invoke a transport, report computed=0, and
// still produce the serial bytes.
func TestSchedWarmCacheServesEverything(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	cacheDir := t.TempDir()
	_, repCold, err := Run(spec, Options{
		Dir:        t.TempDir(),
		Shards:     2,
		CacheDir:   cacheDir,
		Hosts:      []Host{{Name: "a"}, {Name: "b"}},
		Transports: map[string]Transport{"local": workerTransport()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if repCold.CellsComputed != 4 {
		t.Fatalf("cold run computed %d cells, want 4", repCold.CellsComputed)
	}

	out, rep, err := Run(spec, Options{
		Dir:        t.TempDir(),
		Shards:     2,
		CacheDir:   cacheDir,
		Hosts:      []Host{{Name: "a"}, {Name: "b"}},
		Transports: map[string]Transport{"local": forbidTransport{t}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("warm scheduled run diverges from serial run")
	}
	if rep.CellsComputed != 0 {
		t.Fatalf("warm run computed %d cells, want 0 (cached %d)", rep.CellsComputed, rep.CellsCached)
	}
	if len(rep.Skipped) != len(rep.Ranges) || len(rep.Ranges) != 1 {
		t.Fatalf("warm plan: %d ranges, %d skipped — want one fully-cached range", len(rep.Ranges), len(rep.Skipped))
	}
}

// TestSchedRemoteTransportRoundTrip drives the ssh-shaped path: the
// manifest travels over stdin to a worker binary run through a command
// runner, and the envelope comes back over stdout — no shared
// filesystem. The fake runner re-execs this binary the way an ssh
// session would exec a remote one.
func TestSchedRemoteTransportRoundTrip(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	remote := &RemoteExec{Runner: func(_ context.Context, _ Host, args []string) (*exec.Cmd, error) {
		idx := ""
		for i, a := range args {
			if a == "-shard" && i+1 < len(args) {
				idx = args[i+1]
			}
		}
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "FAIRBENCH_TEST_HELPER=workerio", "HELPER_SHARD="+idx)
		return cmd, nil
	}}
	out, rep, err := Run(spec, Options{
		Dir:        t.TempDir(),
		Shards:     2,
		Hosts:      []Host{{Name: "far", Slots: 2, Transport: "remote"}},
		Transports: map[string]Transport{"remote": remote},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("remote-transport output diverges from serial run")
	}
	if len(rep.Completed["far"]) != len(rep.Ranges) {
		t.Fatalf("remote host completed %v of %d ranges", rep.Completed["far"], len(rep.Ranges))
	}
}

// instantInner serves precomputed (real, validating) envelopes with no
// worker subprocess: chaos tests that exercise scheduling policy —
// speculation timing, membership changes, fuzzed interleavings — use it
// so wall-clock measures the scheduler, not shard computation.
type instantInner struct {
	parts map[int][]byte
}

func newInstantInner(t testing.TB, spec experiments.Spec, shards int) *instantInner {
	t.Helper()
	ns, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := experiments.PlanShardsCacheAware(ns, shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	parts := map[int][]byte{}
	for i := range plan.Ranges {
		env, err := experiments.RunShardPlanned(ns, plan.Ranges, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		if parts[i], err = env.Encode(); err != nil {
			t.Fatal(err)
		}
	}
	return &instantInner{parts: parts}
}

func (tr *instantInner) Run(_ context.Context, _ Host, asn Assignment, beat func()) error {
	beat()
	data, ok := tr.parts[asn.Range]
	if !ok {
		return fmt.Errorf("no precomputed part for range %d", asn.Range)
	}
	return store.WriteFileAtomic(asn.OutPath, data)
}

// signalTransport closes ch on its first Run call — the deterministic
// "the run is past Subscribe and executing" hook the membership tests
// key their pool updates on.
type signalTransport struct {
	inner Transport
	once  sync.Once
	ch    chan struct{}
}

func (s *signalTransport) Run(ctx context.Context, h Host, asn Assignment, beat func()) error {
	s.once.Do(func() { close(s.ch) })
	return s.inner.Run(ctx, h, asn, beat)
}

// TestSchedStragglerSpeculation: chaos scenario 6 — one host stalls
// every attempt far past the median (a straggler, heartbeating the whole
// time). With Speculate the range is duplicated onto the idle fast host,
// the duplicate's part is accepted, the straggling loser is cancelled
// WITHOUT a strike, and the run beats the stall; without Speculate the
// run must sit out the full delay. Both converge to serial bytes.
func TestSchedStragglerSpeculation(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	inner := newInstantInner(t, spec, 3)
	const stall = 1500 * time.Millisecond
	slowScript := func(host Host, rangeIdx, n int) Fault {
		if host.Name == "slow" {
			return Fault{Delay: stall}
		}
		return Fault{}
	}
	opts := func(dir string, speculate bool) Options {
		return Options{
			Dir:    dir,
			Shards: 3,
			Hosts:  []Host{{Name: "slow"}, {Name: "fast", Slots: 2}},
			Transports: map[string]Transport{
				"local": &FaultTransport{Inner: inner, Script: slowScript},
			},
			Speculate:        speculate,
			SpeculateFactor:  2,
			SpeculateFloor:   100 * time.Millisecond,
			HeartbeatTimeout: 500 * time.Millisecond,
		}
	}

	start := time.Now()
	out, rep, err := Run(spec, opts(t.TempDir(), true))
	withSpec := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("speculated output diverges from serial run")
	}
	if len(rep.Speculated) == 0 {
		t.Fatal("no range was speculated despite a scripted straggler")
	}
	if len(rep.Excluded) != 0 {
		t.Fatalf("speculation loser was struck: excluded %v", rep.Excluded)
	}
	if withSpec >= stall {
		t.Fatalf("speculated run took %v — it waited out the %v straggler instead of racing it", withSpec, stall)
	}

	start = time.Now()
	out, rep, err = Run(spec, opts(t.TempDir(), false))
	withoutSpec := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("unspeculated output diverges from serial run")
	}
	if len(rep.Speculated) != 0 {
		t.Fatalf("speculation disabled but rep.Speculated = %v", rep.Speculated)
	}
	if withoutSpec < stall {
		t.Fatalf("unspeculated run took %v < the %v stall — the straggler script did not stall", withoutSpec, stall)
	}
	if withSpec >= withoutSpec {
		t.Fatalf("speculation did not speed up the straggler run: with=%v without=%v", withSpec, withoutSpec)
	}
}

// TestSchedJoinMidRun: chaos scenario 7 — the pool starts with one slow
// host; a second host joins through a PoolSource while the first attempt
// is in flight and must pick up queued ranges at the next round.
func TestSchedJoinMidRun(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	inner := newInstantInner(t, spec, 4)
	started := make(chan struct{})
	busy := &signalTransport{ch: started, inner: &FaultTransport{Inner: inner, Script: func(Host, int, int) Fault {
		return Fault{Delay: 400 * time.Millisecond}
	}}}
	pool := NewPoolChan()
	go func() {
		<-started
		pool.Join(Host{Name: "helper", Slots: 2, Transport: "instant"})
	}()
	out, rep, err := Run(spec, Options{
		Dir:    t.TempDir(),
		Shards: 4,
		Hosts:  []Host{{Name: "busy", Transport: "busy"}},
		Transports: map[string]Transport{
			"busy":    busy,
			"instant": inner,
		},
		PoolSource:       pool,
		HeartbeatTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("output after a mid-run join diverges from serial run")
	}
	if len(rep.Joined) != 1 || rep.Joined[0] != "helper" {
		t.Fatalf("joined %v, want [helper]", rep.Joined)
	}
	if len(rep.Completed["helper"]) == 0 {
		t.Fatalf("joined host completed nothing: %+v", rep.Completed)
	}
}

// TestSchedShrinkThenGrow: chaos scenario 8 — a host leaves gracefully
// mid-run (its in-flight attempt drains, unstruck) and later re-joins,
// earning work again. The run completes with serial bytes throughout.
func TestSchedShrinkThenGrow(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	inner := newInstantInner(t, spec, 4)
	started := make(chan struct{})
	slow := &signalTransport{ch: started, inner: &FaultTransport{Inner: inner, Script: func(Host, int, int) Fault {
		return Fault{Delay: 250 * time.Millisecond}
	}}}
	pool := NewPoolChan()
	go func() {
		<-started
		pool.Leave("b")
		time.Sleep(300 * time.Millisecond)
		pool.Join(Host{Name: "b", Transport: "slow"})
	}()
	out, rep, err := Run(spec, Options{
		Dir:              t.TempDir(),
		Shards:           4,
		Hosts:            []Host{{Name: "a", Transport: "slow"}, {Name: "b", Transport: "slow"}},
		Transports:       map[string]Transport{"slow": slow},
		PoolSource:       pool,
		HeartbeatTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("output after shrink-then-grow diverges from serial run")
	}
	if len(rep.Departed) != 1 || rep.Departed[0] != "b" {
		t.Fatalf("departed %v, want [b]", rep.Departed)
	}
	if len(rep.Joined) != 1 || rep.Joined[0] != "b" {
		t.Fatalf("joined %v, want [b]", rep.Joined)
	}
	if len(rep.Excluded) != 0 {
		t.Fatalf("graceful leave must not strike or exclude: %v", rep.Excluded)
	}
}

// TestSchedAllHostsLostLocalFallback: chaos scenario 9 — every host
// fails until excluded. With LocalFallback the coordinator computes the
// leftovers in-process: the run COMPLETES, byte-identical to serial,
// and the report marks it Degraded with the fallback ranges named.
func TestSchedAllHostsLostLocalFallback(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	out, rep, err := Run(spec, Options{
		Dir:             t.TempDir(),
		Shards:          2,
		Hosts:           []Host{{Name: "dead"}},
		Transports:      map[string]Transport{"local": failTransport{}},
		MaxHostFailures: 1,
		Retries:         -1,
		Backoff:         -1,
		LocalFallback:   true,
	})
	if err != nil {
		t.Fatalf("local fallback should complete the run, got %v", err)
	}
	if !rep.Degraded {
		t.Fatal("report not marked Degraded after a whole-pool loss")
	}
	if len(rep.Fallback) != 2 {
		t.Fatalf("fallback ranges %v, want both", rep.Fallback)
	}
	if len(rep.Failed) != 0 {
		t.Fatalf("failed ranges %v after fallback", rep.Failed)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("degraded-fallback output diverges from serial run")
	}
}

// TestSchedChaosMatrixConverges: chaos scenario 10 — a reproducible
// RandomFaults script peppers every attempt with kills, corrupt parts,
// and stragglers while speculation races the slow ones. Whatever the
// fault schedule does, the run must converge to the serial bytes
// (LocalFallback backstops even a fully-lost pool).
func TestSchedChaosMatrixConverges(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	inner := newInstantInner(t, spec, 4)
	for _, seed := range []int64{1, 7, 23} {
		script := RandomFaults(seed, FaultRates{
			Kill:    0.15,
			Corrupt: 0.10,
			DelayP:  0.15,
			Delay:   250 * time.Millisecond,
		})
		out, rep, err := Run(spec, Options{
			Dir:    t.TempDir(),
			Shards: 4,
			Hosts:  []Host{{Name: "a", Slots: 2}, {Name: "b", Slots: 2}},
			Transports: map[string]Transport{
				"local": &FaultTransport{Inner: inner, Script: script},
			},
			Speculate:        true,
			SpeculateFloor:   150 * time.Millisecond,
			HeartbeatTimeout: time.Second,
			MaxHostFailures:  5,
			Retries:          5,
			Backoff:          -1,
			LocalFallback:    true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(want, canonical(t, out)) {
			t.Fatalf("seed %d: chaos-matrix output diverges from serial run (report %+v)", seed, rep)
		}
	}
}

// TestSchedReapsTransportGoroutines: every transport goroutine the
// scheduler launches — including speculation losers and silently hung
// attempts reaped by the heartbeat deadline — must exit before Run
// returns. Counted with runtime.NumGoroutine (short settle loop, no
// external leak-checker dependency).
func TestSchedReapsTransportGoroutines(t *testing.T) {
	spec := smallSpec()
	inner := newInstantInner(t, spec, 3)
	before := runtime.NumGoroutine()
	script := func(host Host, rangeIdx, n int) Fault {
		switch host.Name {
		case "slow": // speculation loser: cancelled mid-delay
			return Fault{Delay: 5 * time.Second}
		case "wedged": // silent hang: reaped by the heartbeat deadline
			return Fault{Hang: true, Mute: true}
		}
		return Fault{}
	}
	_, rep, err := Run(spec, Options{
		Dir:    t.TempDir(),
		Shards: 3,
		Hosts:  []Host{{Name: "slow"}, {Name: "wedged"}, {Name: "ok", Slots: 3}},
		Transports: map[string]Transport{
			"local": &FaultTransport{Inner: inner, Script: script},
		},
		Speculate:        true,
		SpeculateFloor:   100 * time.Millisecond,
		HeartbeatTimeout: 500 * time.Millisecond,
		Backoff:          -1,
		LocalFallback:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) != 0 {
		t.Fatalf("failed ranges %v", rep.Failed)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Allow slack for runtime-internal goroutines; what must not
		// remain is one goroutine per abandoned attempt.
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("transport goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// failTransport always errors without touching anything.
type failTransport struct{}

func (failTransport) Run(_ context.Context, _ Host, _ Assignment, _ func()) error {
	return fmt.Errorf("injected transport failure")
}

// TestSchedFailureResumableByDispatch: when the whole pool is dead the
// run must fail naming the missing ranges and leave a directory that
// internal/dispatch can finish — the two schedulers share one protocol.
func TestSchedFailureResumableByDispatch(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	dir := t.TempDir()
	_, rep, err := Run(spec, Options{
		Dir:        dir,
		Shards:     2,
		Hosts:      []Host{{Name: "dead"}},
		Transports: map[string]Transport{"local": failTransport{}},
		Retries:    -1,
	})
	if err == nil {
		t.Fatal("sched succeeded with a dead pool")
	}
	if len(rep.Failed) != 2 {
		t.Fatalf("failed ranges %v, want both", rep.Failed)
	}
	for _, word := range []string{"still missing", "resume"} {
		if !bytes.Contains([]byte(err.Error()), []byte(word)) {
			t.Fatalf("error %q lacks %q", err, word)
		}
	}

	// dispatch.Resume reads the sched manifest — including its explicit
	// range plan — and completes the run.
	out, drep, err := dispatch.Resume(dir, dispatch.Options{Procs: 2, Spawn: helperSpawn("worker")})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("dispatch-resumed sched directory diverges from serial run")
	}
	if len(drep.Ran) != 2 {
		t.Fatalf("dispatch resume ran %v, want both ranges", drep.Ran)
	}

	// And sched itself resumes a partially-completed directory: rerunning
	// with a healthy pool reuses the dispatch-produced envelopes whole.
	out2, rep2, err := Run(spec, Options{
		Dir:        dir,
		Shards:     2,
		Hosts:      []Host{{Name: "ok"}},
		Transports: map[string]Transport{"local": workerTransport()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out2)) {
		t.Fatal("resumed sched run diverges from serial run")
	}
	if len(rep2.Reused) != 2 || len(rep2.Completed) != 0 {
		t.Fatalf("resume report %+v", rep2)
	}
}
