package inproc

import (
	"math"
	"testing"

	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/metrics"
	"fairbench/internal/rng"
	"fairbench/internal/synth"
)

func trainTest(t *testing.T, n int) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	src := synth.COMPAS(n, 1)
	return src.Data.Split(0.7, rng.New(11))
}

func fitPredict(t *testing.T, a fair.Approach, train, test *dataset.Dataset) []int {
	t.Helper()
	if err := a.Fit(train); err != nil {
		t.Fatalf("%s fit: %v", a.Name(), err)
	}
	yhat, err := a.Predict(test)
	if err != nil {
		t.Fatalf("%s predict: %v", a.Name(), err)
	}
	return yhat
}

func baselineDI(t *testing.T, train, test *dataset.Dataset) float64 {
	t.Helper()
	b := fair.NewBaseline()
	yhat := fitPredict(t, b, train, test)
	return metrics.DIStar(metrics.DisparateImpact(test, yhat))
}

func TestZafarDPImprovesDI(t *testing.T) {
	train, test := trainTest(t, 3000)
	base := baselineDI(t, train, test)
	for _, a := range []fair.Approach{NewZafarDPFair(), NewZafarDPAcc()} {
		yhat := fitPredict(t, a, train, test)
		di := metrics.DIStar(metrics.DisparateImpact(test, yhat))
		if di < base {
			t.Fatalf("%s: DI* %v not above baseline %v", a.Name(), di, base)
		}
		if di < 0.85 {
			t.Fatalf("%s: DI* %v too low for a DP-targeting approach", a.Name(), di)
		}
	}
}

func TestZafarTriviallySatisfiesID(t *testing.T) {
	train, test := trainTest(t, 1500)
	a := NewZafarDPFair()
	fitPredict(t, a, train, test)
	if id := metrics.IndividualDiscrimination(test, a); id != 0 {
		t.Fatalf("Zafar drops S, ID must be 0: %v", id)
	}
}

func TestZafarEOImprovesOdds(t *testing.T) {
	train, test := trainTest(t, 3000)
	b := fair.NewBaseline()
	byhat := fitPredict(t, b, train, test)
	baseTPRB := math.Abs(metrics.TPRBalance(test, byhat))
	a := NewZafarEOFair()
	yhat := fitPredict(t, a, train, test)
	tprb := math.Abs(metrics.TPRBalance(test, yhat))
	if tprb > baseTPRB+0.02 {
		t.Fatalf("Zafar-EO should not worsen TPRB: %v vs baseline %v", tprb, baseTPRB)
	}
}

func TestZhaLeImprovesOddsAndBlindsAdversary(t *testing.T) {
	train, test := trainTest(t, 3000)
	b := fair.NewBaseline()
	byhat := fitPredict(t, b, train, test)
	baseTPRB := math.Abs(metrics.TPRBalance(test, byhat))
	a := NewZhaLe(3).(*ZhaLe)
	yhat := fitPredict(t, a, train, test)
	tprb := math.Abs(metrics.TPRBalance(test, yhat))
	if tprb >= baseTPRB {
		t.Fatalf("ZhaLe TPRB %v not below baseline %v", tprb, baseTPRB)
	}
	// The adversary should recover S barely better than the group prior.
	acc := a.AdversaryAccuracy(test)
	prior := 0.0
	for _, s := range test.S {
		prior += float64(s)
	}
	prior /= float64(test.Len())
	prior = math.Max(prior, 1-prior)
	if acc > prior+0.12 {
		t.Fatalf("adversary recovers S too well: %v (prior %v)", acc, prior)
	}
}

func TestKearnsReducesSubgroupFPRGap(t *testing.T) {
	train, test := trainTest(t, 3000)
	b := fair.NewBaseline()
	byhat := fitPredict(t, b, train, test)
	baseGap := math.Abs(metrics.TNRBalance(test, byhat))
	a := NewKearns()
	yhat := fitPredict(t, a, train, test)
	gap := math.Abs(metrics.TNRBalance(test, yhat))
	if gap > baseGap+0.02 {
		t.Fatalf("Kearns should not worsen the FPR gap: %v vs %v", gap, baseGap)
	}
}

func TestCelisFDRParity(t *testing.T) {
	train, test := trainTest(t, 3000)
	a := NewCelis().(*Celis)
	yhat := fitPredict(t, a, train, test)
	// FDR ratio on test must respect (approximately) the tau bound.
	var pos, fd [2]float64
	for i, p := range yhat {
		if p == 1 {
			pos[test.S[i]]++
			if test.Y[i] == 0 {
				fd[test.S[i]]++
			}
		}
	}
	if pos[0] > 10 && pos[1] > 10 {
		q0, q1 := fd[0]/pos[0], fd[1]/pos[1]
		lo, hi := math.Min(q0, q1), math.Max(q0, q1)
		if hi > 0 && lo/hi < 0.5 {
			t.Fatalf("FDR ratio %v too far below tau", lo/hi)
		}
	}
	th := a.Thresholds()
	if th[0] <= 0 || th[0] >= 1 || th[1] <= 0 || th[1] >= 1 {
		t.Fatalf("thresholds out of range: %v", th)
	}
}

func TestThomasDPSafety(t *testing.T) {
	train, test := trainTest(t, 4000)
	a := NewThomasDP(5).(*Thomas)
	yhat := fitPredict(t, a, train, test)
	di := metrics.DIStar(metrics.DisparateImpact(test, yhat))
	if di < 0.7 {
		t.Fatalf("Thomas-DP DI* too low: %v", di)
	}
	// With 4000 tuples the safety test should normally pass.
	if a.NoSolutionFound {
		t.Log("warning: Thomas returned fallback (NSF)")
	}
}

func TestThomasEOImprovesOdds(t *testing.T) {
	train, test := trainTest(t, 4000)
	b := fair.NewBaseline()
	byhat := fitPredict(t, b, train, test)
	baseTPRB := math.Abs(metrics.TPRBalance(test, byhat))
	a := NewThomasEO(5)
	yhat := fitPredict(t, a, train, test)
	if got := math.Abs(metrics.TPRBalance(test, yhat)); got > baseTPRB+0.02 {
		t.Fatalf("Thomas-EO TPRB: %v vs baseline %v", got, baseTPRB)
	}
}

func TestPredictBeforeFitErrors(t *testing.T) {
	_, test := trainTest(t, 200)
	for _, a := range []fair.Approach{
		NewZafarDPFair(), NewZhaLe(1), NewKearns(), NewCelis(), NewThomasDP(1),
	} {
		if _, err := a.Predict(test); err == nil {
			t.Fatalf("%s: predict before fit must error", a.Name())
		}
	}
}

func TestStagesAndTargets(t *testing.T) {
	for _, a := range []fair.Approach{
		NewZafarDPFair(), NewZafarDPAcc(), NewZafarEOFair(), NewZhaLe(1),
		NewKearns(), NewCelis(), NewThomasDP(1), NewThomasEO(1),
	} {
		if a.Stage() != fair.StageIn {
			t.Fatalf("%s: stage %v", a.Name(), a.Stage())
		}
		// Celis targets predictive parity, which is outside the five
		// evaluated metrics, so an empty target set is correct for it.
		if len(a.Targets()) == 0 && a.Name() != "Celis-PP" {
			t.Fatalf("%s: no targets", a.Name())
		}
	}
}
