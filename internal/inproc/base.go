// Package inproc implements the five in-processing approaches of the
// benchmark (Figure 5, "in" rows): the Zafar decision-boundary-covariance
// family, Zha-Le adversarial learning, Kearns subgroup-fairness auditing,
// the Celis meta-algorithm, and the Thomas Seldonian framework. Each
// approach embeds fairness into the training procedure itself and
// implements fair.Approach directly.
package inproc

import (
	"fairbench/internal/dataset"
	"fairbench/internal/matrix"
)

// linearBase holds the shared state of the linear in-processing models:
// a fitted standardizer and a weight vector over the (standardized)
// features with the intercept last. Whether S is part of the features is a
// per-approach decision; Zafar's family excludes it (S appears only in the
// fairness constraint), matching the original formulation.
type linearBase struct {
	std      *dataset.Standardizer
	w        []float64
	includeS bool
}

// designMatrix standardizes train in place of a clone and returns the
// feature rows used for optimization.
func (b *linearBase) designMatrix(train *dataset.Dataset) [][]float64 {
	work := train.Clone()
	b.std = dataset.FitStandardizer(work)
	b.std.Apply(work)
	return work.FeatureMatrix(b.includeS)
}

// row builds a standardized prediction row for raw features x and
// sensitive value s.
func (b *linearBase) row(x []float64, s int) []float64 {
	r := append([]float64(nil), x...)
	b.std.ApplyRow(r)
	return dataset.FeatureRow(r, s, b.includeS)
}

// score returns the signed distance proxy wᵀx + intercept.
func (b *linearBase) score(row []float64) float64 {
	d := len(b.w) - 1
	z := b.w[d]
	for j := 0; j < d && j < len(row); j++ {
		z += b.w[j] * row[j]
	}
	return z
}

// predictOne thresholds the linear score at zero.
func (b *linearBase) predictOne(x []float64, s int) int {
	if b.w == nil {
		return 0
	}
	if b.score(b.row(x, s)) >= 0 {
		return 1
	}
	return 0
}

// predictAll labels a full dataset.
func (b *linearBase) predictAll(d *dataset.Dataset) []int {
	out := make([]int, d.Len())
	for i := range out {
		out[i] = b.predictOne(d.X[i], d.S[i])
	}
	return out
}

// logLossAndGrad accumulates the weighted logistic loss and its gradient
// over rows x with labels y; grad must be pre-zeroed and sized len(w).
func logLossAndGrad(w []float64, x [][]float64, y []int, grad []float64) float64 {
	d := len(w) - 1
	var loss float64
	n := float64(len(x))
	for i, row := range x {
		z := w[d]
		for j, v := range row {
			z += w[j] * v
		}
		p := matrix.Sigmoid(z)
		yi := float64(y[i])
		loss += logLoss(p, yi)
		g := (p - yi) / n
		for j, v := range row {
			grad[j] += g * v
		}
		grad[d] += g
	}
	return loss / n
}

// logGradOnly accumulates only the gradient of the mean logistic loss
// (grad must be pre-zeroed). It is the variant for objectives consumed
// exclusively by Adam, whose update and stopping rule read nothing but
// the gradient and whose returned value the callers here discard:
// skipping the math.Log per tuple per iteration leaves every weight
// trajectory bit-identical while removing the dominant transcendental
// from the in-processing fit loops. Objectives whose value is consumed
// (Zafar^dp_Acc's loss budget and its loss constraint) keep
// logLossAndGrad.
func logGradOnly(w []float64, x [][]float64, y []int, grad []float64) {
	d := len(w) - 1
	n := float64(len(x))
	for i, row := range x {
		z := w[d]
		for j, v := range row {
			z += w[j] * v
		}
		p := matrix.Sigmoid(z)
		g := (p - float64(y[i])) / n
		for j, v := range row {
			grad[j] += g * v
		}
		grad[d] += g
	}
}

func logLoss(p, y float64) float64 {
	const eps = 1e-12
	p = matrix.Clamp(p, eps, 1-eps)
	if y >= 0.5 {
		return -ln(p)
	}
	return -ln(1 - p)
}
