package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairbench/internal/dispatch"
	"fairbench/internal/experiments"
	"fairbench/internal/report"
)

// TestMain doubles as the worker subprocess body — the re-exec pattern
// the dispatch/sched/engine tests share. With FAIRBENCH_WORKER_DELAY_MS
// in its environment the worker pauses first, which is how tests hold a
// run open to observe saturation, streaming, and drain mid-run.
func TestMain(m *testing.M) {
	switch os.Getenv("FAIRBENCH_TEST_HELPER") {
	case "":
		os.Exit(m.Run())
	case "worker":
		idx, err := strconv.Atoi(os.Getenv("HELPER_SHARD"))
		if err == nil {
			err = dispatch.Worker(os.Getenv("HELPER_MANIFEST"), idx, os.Getenv("HELPER_OUT"))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(2)
}

func helperSpawn(extraEnv ...string) dispatch.SpawnFunc {
	return func(manifestPath string, shard int, outPath string) (*exec.Cmd, error) {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			"FAIRBENCH_TEST_HELPER=worker",
			"HELPER_MANIFEST="+manifestPath,
			"HELPER_SHARD="+strconv.Itoa(shard),
			"HELPER_OUT="+outPath,
		)
		cmd.Env = append(cmd.Env, extraEnv...)
		return cmd, nil
	}
}

func countingSpawn(n *atomic.Int64, extraEnv ...string) dispatch.SpawnFunc {
	inner := helperSpawn(extraEnv...)
	return func(manifestPath string, shard int, outPath string) (*exec.Cmd, error) {
		n.Add(1)
		return inner(manifestPath, shard, outPath)
	}
}

// smallSpec's fig23 grid has 4 cells and renders with no timing
// columns, so the served table is comparable byte-for-byte to a serial
// rendering of the same spec.
func smallSpec() experiments.Spec {
	return experiments.Spec{Experiment: "fig23", Dataset: "compas", N: 300, Seed: 6,
		Sizes: []int{60, 120}, Names: []string{"LR", "KamCal-DP"}}
}

// serialTable renders the spec's grid the way the serial CLI would —
// the reference the daemon's /table output must reproduce exactly.
func serialTable(t *testing.T, spec experiments.Spec) string {
	t.Helper()
	g, err := experiments.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := report.RenderOutput(&buf, out); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// newServer builds a Server with test defaults and mounts it on an
// httptest listener.
func newServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	if cfg.Procs == 0 {
		cfg.Procs = 2
	}
	if cfg.StreamInterval == 0 {
		cfg.StreamInterval = 20 * time.Millisecond
	}
	if cfg.Spawn == nil {
		cfg.Spawn = helperSpawn()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postSpec(t *testing.T, ts *httptest.Server, spec experiments.Spec) (int, runStatus, http.Header) {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st runStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st, resp.Header
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func waitDone(t *testing.T, s *Server, id string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.WaitRun(ctx, id); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitPollTable is the service's happy path: submit a grid, poll
// it to completion, and require the rendered table to be byte-identical
// to the serial CLI rendering of the same spec.
func TestSubmitPollTable(t *testing.T) {
	spec := smallSpec()
	want := serialTable(t, spec)
	s, ts := newServer(t, Config{CacheDir: t.TempDir()})

	code, st, _ := postSpec(t, ts, spec)
	if code != http.StatusAccepted || st.Status != string(stateRunning) || st.Deduped {
		t.Fatalf("submit: code %d status %+v", code, st)
	}
	waitDone(t, s, st.ID)

	code, body, _ := get(t, ts.URL+"/runs/"+st.ID)
	if code != http.StatusOK {
		t.Fatalf("status: code %d body %s", code, body)
	}
	var done runStatus
	if err := json.Unmarshal([]byte(body), &done); err != nil {
		t.Fatal(err)
	}
	if done.Status != string(stateDone) || done.CellsComputed != 4 ||
		done.PartsDone != 2 || done.PartsTotal != 2 ||
		done.Backend != "dispatch" || done.Fingerprint == "" {
		t.Fatalf("final status %+v", done)
	}

	code, table, hdr := get(t, ts.URL+"/runs/"+st.ID+"/table")
	if code != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), "text/plain") {
		t.Fatalf("table: code %d type %q", code, hdr.Get("Content-Type"))
	}
	if table != want {
		t.Fatalf("served table diverges from serial rendering:\n--- served ---\n%s--- serial ---\n%s", table, want)
	}
}

// TestConcurrentDuplicateSubmitsOneComputation: many clients submit the
// same grid at once; exactly one submission starts a computation, the
// rest dedupe onto it, and the worker spawn count proves the grid was
// executed once.
func TestConcurrentDuplicateSubmitsOneComputation(t *testing.T) {
	spec := smallSpec()
	var spawns atomic.Int64
	s, ts := newServer(t, Config{Spawn: countingSpawn(&spawns)})

	const clients = 8
	codes := make([]int, clients)
	statuses := make([]runStatus, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], statuses[i], _ = postSpec(t, ts, spec)
		}(i)
	}
	wg.Wait()

	accepted, deduped := 0, 0
	id := ""
	for i, code := range codes {
		switch code {
		case http.StatusAccepted:
			accepted++
			id = statuses[i].ID
		case http.StatusOK:
			deduped++
			if !statuses[i].Deduped {
				t.Fatalf("200 response without deduped flag: %+v", statuses[i])
			}
		default:
			t.Fatalf("unexpected submit code %d", code)
		}
	}
	if accepted != 1 || deduped != clients-1 {
		t.Fatalf("accepted %d deduped %d, want 1 and %d", accepted, deduped, clients-1)
	}
	waitDone(t, s, id)
	if n := spawns.Load(); n != 2 {
		t.Fatalf("%d worker spawns for %d duplicate submissions, want 2 (one per shard, one computation)", n, clients)
	}

	_, table, _ := get(t, ts.URL+"/runs/"+id+"/table")
	if table != serialTable(t, spec) {
		t.Fatal("deduped run's table diverges from serial rendering")
	}
	_, metrics, _ := get(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, fmt.Sprintf("fairbench_runs_deduped_total %d", clients-1)) {
		t.Fatalf("metrics missing dedupe count:\n%s", metrics)
	}
}

// TestSaturationReturns429: with one run slot held by delayed workers, a
// distinct grid is rejected with 429 + Retry-After instead of queueing;
// after drain begins, submissions get 503.
func TestSaturationReturns429(t *testing.T) {
	s, ts := newServer(t, Config{
		MaxConcurrent: 1,
		Spawn:         helperSpawn("FAIRBENCH_WORKER_DELAY_MS=20000"),
	})
	code, st, _ := postSpec(t, ts, smallSpec())
	if code != http.StatusAccepted {
		t.Fatalf("first submit: code %d", code)
	}

	other := smallSpec()
	other.Seed = 7 // distinct grid: no dedupe, needs its own slot
	code, _, hdr := postSpec(t, ts, other)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: code %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	code, _, hdr = postSpec(t, ts, other)
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("draining submit: code %d Retry-After %q, want 503 with hint", code, hdr.Get("Retry-After"))
	}
	// The interrupted run is failed but resubmittable once slots free;
	// here we only assert its terminal state is visible.
	_, body, _ := get(t, ts.URL+"/runs/"+st.ID)
	if !strings.Contains(body, string(stateFailed)) {
		t.Fatalf("drained run status: %s", body)
	}
}

// TestDrainResumeMatchesSerial is the graceful-shutdown guarantee end to
// end: drain a daemon mid-run, start a new one over the same state dir,
// let ResumeInterrupted pick the run up, and require the final table to
// be byte-identical to serial.
func TestDrainResumeMatchesSerial(t *testing.T) {
	spec := smallSpec()
	state := t.TempDir()
	s1, ts1 := newServer(t, Config{
		StateDir: state,
		Spawn:    helperSpawn("FAIRBENCH_WORKER_DELAY_MS=20000"),
	})
	code, st, _ := postSpec(t, ts1, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	// Wait for the run's plan to exist so the drain interrupts genuinely
	// started work (workers are holding the run open for 20s).
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body, _ := get(t, ts1.URL+"/runs/"+st.ID)
		var cur runStatus
		if err := json.Unmarshal([]byte(body), &cur); err == nil && cur.PartsTotal > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("manifest never appeared")
		}
		time.Sleep(20 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	s2, ts2 := newServer(t, Config{StateDir: state})
	resumed, err := s2.ResumeInterrupted()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("resumed %d runs, want 1", resumed)
	}
	waitDone(t, s2, st.ID)
	code, table, _ := get(t, ts2.URL+"/runs/"+st.ID+"/table")
	if code != http.StatusOK {
		t.Fatalf("table after resume: code %d body %s", code, table)
	}
	if table != serialTable(t, spec) {
		t.Fatal("resumed run's table diverges from serial rendering")
	}
	_, metrics, _ := get(t, ts2.URL+"/metrics")
	if !strings.Contains(metrics, "fairbench_runs_resumed_total 1") {
		t.Fatalf("metrics missing resume count:\n%s", metrics)
	}
}

// TestRestartServesCompletedRunWithoutRecompute: a completed run's
// output survives a daemon restart — the new daemon registers it done
// and serves its table with no computation at all.
func TestRestartServesCompletedRunWithoutRecompute(t *testing.T) {
	spec := smallSpec()
	state := t.TempDir()
	s1, ts1 := newServer(t, Config{StateDir: state})
	_, st, _ := postSpec(t, ts1, spec)
	waitDone(t, s1, st.ID)
	ts1.Close()

	var spawns atomic.Int64
	s2, ts2 := newServer(t, Config{StateDir: state, Spawn: countingSpawn(&spawns)})
	resumed, err := s2.ResumeInterrupted()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Fatalf("resumed %d, want 0 (run was complete)", resumed)
	}
	code, table, _ := get(t, ts2.URL+"/runs/"+st.ID+"/table")
	if code != http.StatusOK || table != serialTable(t, spec) {
		t.Fatalf("restarted daemon did not serve the completed run (code %d)", code)
	}
	if n := spawns.Load(); n != 0 {
		t.Fatalf("restart spawned %d workers serving a completed run, want 0", n)
	}
}

// TestWarmSubmitServedFromCache: with a shared result store already
// holding every cell, a fresh daemon answers the grid itself —
// servedFromCache, computed=0, zero worker spawns.
func TestWarmSubmitServedFromCache(t *testing.T) {
	spec := smallSpec()
	cache := t.TempDir()
	s1, ts1 := newServer(t, Config{CacheDir: cache})
	_, st, _ := postSpec(t, ts1, spec)
	waitDone(t, s1, st.ID)
	ts1.Close()

	var spawns atomic.Int64
	s2, ts2 := newServer(t, Config{CacheDir: cache, Spawn: countingSpawn(&spawns)})
	code, st2, _ := postSpec(t, ts2, spec)
	if code != http.StatusAccepted {
		t.Fatalf("warm submit: code %d", code)
	}
	waitDone(t, s2, st2.ID)
	_, body, _ := get(t, ts2.URL+"/runs/"+st2.ID)
	var done runStatus
	if err := json.Unmarshal([]byte(body), &done); err != nil {
		t.Fatal(err)
	}
	if !done.ServedFromCache || done.CellsComputed != 0 || done.CellsCached != 4 {
		t.Fatalf("warm status %+v", done)
	}
	if n := spawns.Load(); n != 0 {
		t.Fatalf("warm run spawned %d workers, want 0", n)
	}
	_, table, _ := get(t, ts2.URL+"/runs/"+st2.ID+"/table")
	if table != serialTable(t, spec) {
		t.Fatal("cache-served table diverges from serial rendering")
	}
	_, metrics, _ := get(t, ts2.URL+"/metrics")
	if !strings.Contains(metrics, "fairbench_cells_cached_total 4") ||
		!strings.Contains(metrics, "fairbench_store_entries 4") {
		t.Fatalf("metrics missing store stats:\n%s", metrics)
	}
}

// TestStreamDeliversEveryRow: the chunked stream's shard events carry
// exactly the validated rows the merge will contain, and the stream
// terminates with a done event holding the final status.
func TestStreamDeliversEveryRow(t *testing.T) {
	spec := smallSpec()
	// One proc and a short delay stagger the two shards so the stream
	// observes them landing separately.
	s, ts := newServer(t, Config{
		Procs: 1,
		Spawn: helperSpawn("FAIRBENCH_WORKER_DELAY_MS=200"),
	})
	_, st, _ := postSpec(t, ts, spec)

	resp, err := http.Get(ts.URL + "/runs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	cells := map[int]bool{}
	rows := 0
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "shard":
			for _, c := range ev.Cells {
				cells[c] = true
			}
			rows += len(ev.Rows)
		case "done":
			sawDone = true
			if ev.Status == nil || ev.Status.Status != string(stateDone) {
				t.Fatalf("done event status %+v", ev.Status)
			}
		case "failed":
			t.Fatalf("run failed: %+v", ev.Status)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawDone {
		t.Fatal("stream ended without a done event")
	}
	if len(cells) != 4 || rows != 4 {
		t.Fatalf("streamed %d distinct cells over %d rows, want 4 over 4", len(cells), rows)
	}
	waitDone(t, s, st.ID)
}

// TestRequestValidation: malformed submissions and unknown runs get the
// right error codes.
func TestRequestValidation(t *testing.T) {
	_, ts := newServer(t, Config{})

	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: code %d", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/runs", "application/json",
		strings.NewReader(`{"experiment":"fig23","mystery":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: code %d", resp.StatusCode)
	}

	code, _, _ := get(t, ts.URL+"/runs/nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown run status: code %d", code)
	}
	code, _, _ = get(t, ts.URL+"/runs/nope/table")
	if code != http.StatusNotFound {
		t.Fatalf("unknown run table: code %d", code)
	}

	code, body, _ := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
}

// TestTableWhileRunningConflicts: /table on an executing run answers
// 409 with a Retry-After hint instead of blocking or serving partial
// output.
func TestTableWhileRunningConflicts(t *testing.T) {
	s, ts := newServer(t, Config{
		Spawn: helperSpawn("FAIRBENCH_WORKER_DELAY_MS=20000"),
	})
	_, st, _ := postSpec(t, ts, smallSpec())
	code, _, hdr := get(t, ts.URL+"/runs/"+st.ID+"/table")
	// The hint must be the same computed value admission control sends,
	// not an ad-hoc constant: a non-draining server says retryAfterBusy.
	if code != http.StatusConflict || hdr.Get("Retry-After") != retryAfterBusy {
		t.Fatalf("running table: code %d Retry-After %q, want 409 with %q",
			code, hdr.Get("Retry-After"), retryAfterBusy)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestBiasedSubmitServedEndToEnd: a bias-carrying GridSpec rides the
// HTTP submit path untouched — the daemon's table is byte-identical to
// the serial rendering of the same biased spec (bias setting in the
// title included), the status surfaces the coordinator's arch (the
// store partition the run hits), and the same grid at a different bias
// rate is a fresh computation, never a dedupe.
func TestBiasedSubmitServedEndToEnd(t *testing.T) {
	spec := smallSpec()
	spec.Bias, spec.BiasRate = experiments.BiasLabel, 0.2
	want := serialTable(t, spec)
	s, ts := newServer(t, Config{})

	code, st, _ := postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("biased submit: code %d", code)
	}
	waitDone(t, s, st.ID)

	code, body, _ := get(t, ts.URL+"/runs/"+st.ID)
	if code != http.StatusOK {
		t.Fatalf("status: code %d body %s", code, body)
	}
	var done runStatus
	if err := json.Unmarshal([]byte(body), &done); err != nil {
		t.Fatal(err)
	}
	if done.Status != string(stateDone) || done.Arch != runtime.GOARCH {
		t.Fatalf("final status %+v, want done with arch %q", done, runtime.GOARCH)
	}

	code, table, _ := get(t, ts.URL+"/runs/"+st.ID+"/table")
	if code != http.StatusOK {
		t.Fatalf("table: code %d", code)
	}
	if table != want {
		t.Fatalf("served biased table diverges from serial rendering:\n--- served ---\n%s--- serial ---\n%s", table, want)
	}

	other := spec
	other.BiasRate = 0.3
	code, st2, _ := postSpec(t, ts, other)
	if code != http.StatusAccepted || st2.Deduped || st2.ID == st.ID {
		t.Fatalf("different-rate submit: code %d status %+v, want a fresh run", code, st2)
	}
	waitDone(t, s, st2.ID)
	_, body, _ = get(t, ts.URL+"/runs/"+st2.ID)
	var done2 runStatus
	if err := json.Unmarshal([]byte(body), &done2); err != nil {
		t.Fatal(err)
	}
	if done2.Fingerprint == done.Fingerprint {
		t.Fatal("different bias rates share a fingerprint")
	}
	if done2.CellsComputed == 0 {
		t.Fatal("different-rate run computed nothing — it was served another rate's cells")
	}
}
