package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var fpA = strings.Repeat("ab", 32)
var fpB = strings.Repeat("cd", 32)

func key(fp string, idx int, seed int64) Key {
	return Key{Fingerprint: fp, Index: idx, Seed: seed, Arch: "amd64"}
}

func mustOpen(t *testing.T) *DiskStore {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t)
	k := key(fpA, 3, 42)
	payload := []byte(`{"index":3,"row":{"acc":0.91}}`)
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: ok=%v got=%s", ok, got)
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Writes != 1 || c.Rejected != 0 {
		t.Fatalf("counters %+v", c)
	}
}

// TestCorruptedEntryRejectedAndRecomputed: a truncated or bit-flipped
// entry must never be served — it reads as a miss (so the caller
// recomputes), is counted as Rejected, and is removed so the next Put
// repopulates it cleanly.
func TestCorruptedEntryRejectedAndRecomputed(t *testing.T) {
	payload := []byte(`{"index":0,"seconds":1.5}`)
	corruptions := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bit-flip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			// Flip a byte inside the payload field, past the header fields.
			c[len(c)-10] ^= 0xff
			return c
		},
		"empty": func([]byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s := mustOpen(t)
			k := key(fpA, 0, 7)
			if err := s.Put(k, payload); err != nil {
				t.Fatal(err)
			}
			p := s.path(k)
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(k); ok {
				t.Fatal("corrupted entry served")
			}
			if c := s.Counters(); c.Rejected != 1 {
				t.Fatalf("rejected=%d, want 1", c.Rejected)
			}
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Fatal("corrupted entry not removed")
			}
			// Recompute path: a fresh Put fully restores the entry.
			if err := s.Put(k, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(k); !ok || !bytes.Equal(got, payload) {
				t.Fatal("entry not recoverable after corruption")
			}
		})
	}
}

// TestWrongKeyNeverHits is the cache-poisoning test: an entry written
// under one key, even when copied to the on-disk address of another key,
// must never satisfy a lookup for that other key — the recorded key
// fields are verified against the request, not just the path.
func TestWrongKeyNeverHits(t *testing.T) {
	s := mustOpen(t)
	good := key(fpA, 2, 1)
	if err := s.Put(good, []byte(`{"index":2}`)); err != nil {
		t.Fatal(err)
	}
	for name, forged := range map[string]Key{
		"wrong-seed":  key(fpA, 2, 99),
		"wrong-index": key(fpA, 5, 1),
		"wrong-arch":  {Fingerprint: fpA, Index: 2, Seed: 1, Arch: "arm64"},
		"wrong-fp":    key(fpB, 2, 1),
	} {
		t.Run(name, func(t *testing.T) {
			// Plant the seed-1 entry at the forged key's address.
			raw, err := os.ReadFile(s.path(good))
			if err != nil {
				t.Fatal(err)
			}
			p := s.path(forged)
			if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(forged); ok {
				t.Fatalf("%s: poisoned entry satisfied the lookup", name)
			}
			// Re-plant for the next subtest; the rejected copy was removed.
			if err := s.Put(good, []byte(`{"index":2}`)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentWriters exercises racing Put/Get of the same and
// neighboring cells under -race: last rename wins and every read sees
// either a miss or a fully verified payload.
func TestConcurrentWriters(t *testing.T) {
	s := mustOpen(t)
	const goroutines = 16
	const cells = 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := key(fpA, i%cells, 7)
				payload := []byte(fmt.Sprintf(`{"index":%d}`, i%cells))
				if err := s.Put(k, payload); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(k); ok && !bytes.Equal(got, payload) {
					t.Errorf("goroutine %d read foreign payload %s", g, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c := s.Counters(); c.Rejected != 0 {
		t.Fatalf("concurrent writers produced %d rejected entries", c.Rejected)
	}
}

// TestGCRespectsInUseFingerprints: GC drops only grids the keep
// predicate disclaims, entry by entry.
func TestGCRespectsInUseFingerprints(t *testing.T) {
	s := mustOpen(t)
	for i := 0; i < 3; i++ {
		if err := s.Put(key(fpA, i, 1), []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(key(fpB, i, 1), []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := s.GC(func(fp string) bool { return fp == fpA })
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed %d grids, want 1", removed)
	}
	for i := 0; i < 3; i++ {
		if _, ok := s.Get(key(fpA, i, 1)); !ok {
			t.Fatalf("GC removed in-use entry %d", i)
		}
		if _, ok := s.Get(key(fpB, i, 1)); ok {
			t.Fatalf("GC kept disclaimed entry %d", i)
		}
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 3 || st.Fingerprints != 1 || st.Bytes == 0 {
		t.Fatalf("stats after GC: %+v", st)
	}
}

// TestHasMirrorsGet: the plan-time probe shares Get's verification — a
// present verified entry reports true, a missing one false, and a
// corrupt one is rejected (and removed) exactly as a read would.
func TestHasMirrorsGet(t *testing.T) {
	s := mustOpen(t)
	k := key(fpA, 1, 7)
	if s.Has(k) {
		t.Fatal("Has reports an entry on an empty store")
	}
	if err := s.Put(k, []byte(`{"index":1}`)); err != nil {
		t.Fatal(err)
	}
	if !s.Has(k) {
		t.Fatal("Has misses a written entry")
	}
	// Corrupt the entry on disk: Has must reject it and read as absent.
	path := s.path(k)
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.Has(k) {
		t.Fatal("Has served a corrupt entry")
	}
	if _, err := os.Stat(path); err == nil {
		t.Fatal("corrupt entry not removed by the probe")
	}
	if c := s.Counters(); c.Rejected != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestKeyValidation(t *testing.T) {
	s := mustOpen(t)
	for _, bad := range []Key{
		{Fingerprint: "short", Index: 0, Seed: 1, Arch: "amd64"},
		{Fingerprint: fpA, Index: -1, Seed: 1, Arch: "amd64"},
		{Fingerprint: fpA, Index: 0, Seed: 1, Arch: ""},
	} {
		if err := s.Put(bad, []byte(`{}`)); err == nil {
			t.Fatalf("key %+v accepted", bad)
		}
		if _, ok := s.Get(bad); ok {
			t.Fatalf("key %+v served", bad)
		}
	}
}
