package engine

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"fairbench/internal/experiments"
	"fairbench/internal/sched"
)

// biasedSpec is smallSpec with under-representation injected — the
// engine-level probe that the bias axis rides the GridSpec through
// every backend untouched.
func biasedSpec() experiments.Spec {
	s := smallSpec()
	s.Bias, s.BiasRate, s.BiasRateNeg = experiments.BiasUnder, 0.3, 0.1
	return s
}

// TestBiasedBackendsMatchSerial: one biased spec, three backends, all
// byte-identical to the serial reference — and every report names the
// coordinator's architecture (the store's cache partition).
func TestBiasedBackendsMatchSerial(t *testing.T) {
	spec := biasedSpec()
	want := serialReference(t, spec)
	if clean := serialReference(t, smallSpec()); bytes.Equal(want, clean) {
		t.Fatal("biased grid produced the clean grid's rows — injection did not happen")
	}
	ctx := context.Background()
	eng := New(RunOptions{})

	out, rep, err := eng.Run(ctx, spec, RunOptions{Backend: BackendInproc})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("inproc biased output diverges from serial run")
	}
	if rep.Arch != runtime.GOARCH {
		t.Fatalf("inproc report arch %q, want %q", rep.Arch, runtime.GOARCH)
	}

	out, rep, err = eng.Run(ctx, spec, RunOptions{
		Dir: t.TempDir(), Shards: 2, Procs: 2, Spawn: helperSpawn(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("dispatched biased output diverges from serial run")
	}
	if rep.Backend != BackendDispatch || rep.Arch != runtime.GOARCH {
		t.Fatalf("dispatch report %+v", rep)
	}

	out, rep, err = eng.Run(ctx, spec, RunOptions{
		Dir:   t.TempDir(),
		Hosts: []sched.Host{{Name: "h1", Slots: 2}},
		Spawn: helperSpawn(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("sched biased output diverges from serial run")
	}
	if rep.Backend != BackendSched || rep.Arch != runtime.GOARCH {
		t.Fatalf("sched report %+v", rep)
	}
}

// TestBiasedWarmGridComputesNothing: a warm store answers a biased grid
// without spawning a worker — computed=0 — while the clean spec, whose
// fingerprint differs only in the bias fields, finds none of those
// entries.
func TestBiasedWarmGridComputesNothing(t *testing.T) {
	spec := biasedSpec()
	eng := New(RunOptions{CacheDir: t.TempDir()})

	_, rep, err := eng.Run(context.Background(), spec, RunOptions{Backend: BackendInproc})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellsComputed == 0 || rep.CellsCached != 0 {
		t.Fatalf("cold biased report %+v", rep)
	}

	var spawns atomic.Int64
	out, rep, err := eng.Run(context.Background(), spec, RunOptions{
		Dir: t.TempDir(), Spawn: countingSpawn(&spawns),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ServedFromCache || rep.CellsComputed != 0 {
		t.Fatalf("warm biased report %+v", rep)
	}
	if n := spawns.Load(); n != 0 {
		t.Fatalf("warm biased run spawned %d worker(s), want 0", n)
	}
	if !bytes.Equal(serialReference(t, spec), canonical(t, out)) {
		t.Fatal("warm biased output diverges from serial run")
	}

	// The clean grid must not be served from the biased grid's entries.
	_, rep, err = eng.Run(context.Background(), smallSpec(), RunOptions{Backend: BackendInproc})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellsCached != 0 {
		t.Fatalf("clean grid was served %d cells cached for the biased grid", rep.CellsCached)
	}
}

// TestBiasedRunResumesAfterKilledWorker: cancel a biased dispatch run
// while delayed workers genuinely execute (the engine kills them), then
// resume the directory — the finished output must still be
// byte-identical to serial. This is the acceptance criterion that a
// bias-swept grid stays resumable.
func TestBiasedRunResumesAfterKilledWorker(t *testing.T) {
	spec := biasedSpec()
	dir := t.TempDir()
	eng := New(RunOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	_, _, err := eng.Run(ctx, spec, RunOptions{
		Dir: dir, Shards: 2, Procs: 2,
		Spawn: helperSpawn("FAIRBENCH_WORKER_DELAY_MS=20000"),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	out, rep, err := eng.ResumeRun(context.Background(), dir, RunOptions{
		Procs: 2, Spawn: helperSpawn(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialReference(t, spec), canonical(t, out)) {
		t.Fatal("resumed biased output diverges from serial run")
	}
	if rep.Backend != BackendDispatch {
		t.Fatalf("resume report %+v", rep)
	}
}
