package fair

import (
	"testing"

	"fairbench/internal/dataset"
	"fairbench/internal/rng"
	"fairbench/internal/synth"
)

func split(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	src := synth.COMPAS(1500, 1)
	return src.Data.Split(0.7, rng.New(5))
}

func TestBaselineFitPredict(t *testing.T) {
	train, test := split(t)
	b := NewBaseline()
	if b.Stage() != StageNone || b.Name() != "LR" || b.Targets() != nil {
		t.Fatal("baseline identity")
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	yhat, err := b.Predict(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(yhat) != test.Len() {
		t.Fatalf("prediction length %d", len(yhat))
	}
	correct := 0
	for i := range yhat {
		if yhat[i] == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(test.Len()); acc < 0.55 {
		t.Fatalf("baseline accuracy %v below chance band", acc)
	}
	p := b.Proba(test.X[0], test.S[0])
	if p < 0 || p > 1 {
		t.Fatalf("probability %v", p)
	}
}

func TestBaselineUnfitted(t *testing.T) {
	_, test := split(t)
	b := NewBaseline()
	if _, err := b.Predict(test); err == nil {
		t.Fatal("predict before fit must error")
	}
}

// identityRepairer is a no-op pre-processing mechanism.
type identityRepairer struct{}

func (identityRepairer) RepairName() string { return "identity" }
func (identityRepairer) Repair(d *dataset.Dataset) (*dataset.Dataset, error) {
	return d.Clone(), nil
}

func TestPreProcessedWrapper(t *testing.T) {
	train, test := split(t)
	p := &PreProcessed{
		ApproachName: "Identity",
		Target:       []Metric{MetricDI},
		Mechanism:    identityRepairer{},
		IncludeS:     true,
	}
	if p.Stage() != StagePre {
		t.Fatal("stage")
	}
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	yhat, err := p.Predict(test)
	if err != nil {
		t.Fatal(err)
	}
	// Identity repair + LR must behave like the baseline.
	b := NewBaseline()
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	byhat, _ := b.Predict(test)
	same := 0
	for i := range yhat {
		if yhat[i] == byhat[i] {
			same++
		}
	}
	if float64(same)/float64(len(yhat)) < 0.95 {
		t.Fatalf("identity pre-processing diverges from baseline: %d/%d equal", same, len(yhat))
	}
}

// sTransformer marks transformed rows so the test can verify the sTrue /
// sInput split of PredictIntervened.
type sTransformer struct{ identityRepairer }

func (sTransformer) TransformRow(x []float64, s int) []float64 {
	out := append([]float64(nil), x...)
	out[0] += float64(s) * 1000 // group-dependent transform
	return out
}

func TestPredictIntervenedUsesTrueGroupForTransform(t *testing.T) {
	train, test := split(t)
	p := &PreProcessed{
		ApproachName: "STrans",
		Mechanism:    sTransformer{},
		IncludeS:     false, // classifier never sees S
	}
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	// With S excluded from features and the transform pinned to sTrue,
	// flipping sInput must never change the prediction.
	for i := 0; i < 50; i++ {
		a := p.PredictIntervened(test.X[i], test.S[i], test.S[i])
		b := p.PredictIntervened(test.X[i], test.S[i], 1-test.S[i])
		if a != b {
			t.Fatal("flip of sInput changed an S-blind pipeline's prediction")
		}
	}
}

// constAdjuster returns a fixed per-group probability.
type constAdjuster struct{ p [2]float64 }

func (constAdjuster) AdjustName() string { return "const" }
func (constAdjuster) FitAdjust(*dataset.Dataset, []float64) error {
	return nil
}
func (c constAdjuster) AdjustedProba(_ float64, s int) float64 { return c.p[s] }

func TestPostProcessedWrapper(t *testing.T) {
	train, test := split(t)
	p := &PostProcessed{
		ApproachName: "Const",
		Target:       []Metric{MetricDI},
		Mechanism:    constAdjuster{p: [2]float64{1, 0}},
		IncludeS:     true,
		Seed:         3,
	}
	if p.Stage() != StagePost {
		t.Fatal("stage")
	}
	if err := p.Fit(train); err != nil {
		t.Fatal(err)
	}
	yhat, err := p.Predict(test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range yhat {
		want := 1 - test.S[i] // adjuster forces unpriv->1, priv->0
		if yhat[i] != want {
			t.Fatalf("tuple %d: got %d want %d", i, yhat[i], want)
		}
	}
	// PredictOne thresholds the adjusted probability.
	if p.PredictOne(test.X[0], 0) != 1 || p.PredictOne(test.X[0], 1) != 0 {
		t.Fatal("PredictOne thresholding")
	}
}

func TestStageString(t *testing.T) {
	cases := map[Stage]string{StagePre: "pre", StageIn: "in", StagePost: "post", StageNone: "none"}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%v", s)
		}
	}
}
