// Package experiments implements one driver per artifact of the paper's
// evaluation (Section 4 and the appendix):
//
//	Figure 7    — correctness & fairness of all approaches × 3 datasets
//	Figure 8    — efficiency & scalability vs data size and #attributes
//	Figure 9    — robustness to the T1/T2/T3 data-error templates
//	Figure 10   — sensitivity of pre/post approaches to the ML model
//	Figures 16-18 — 5-fold cross-validation metric tables
//	Figure 22   — stability over random train/test folds
//	Figure 23   — data efficiency vs training-set size
//
// Every driver is deterministic given its seed and returns structured rows
// the report package renders. All drivers fan their (approach ×
// dataset-slice) grid cells across a runner worker pool — each cell
// constructs its own approach and RNG from explicit seeds, so the rows are
// identical to a serial run for a fixed seed; only wall time changes with
// runner.SetParallelism. Baseline-overhead accounting (Section 4.3) is a
// post-pass over the collected rows, keeping the timing subtraction
// well-defined regardless of completion order.
package experiments

import (
	"fmt"
	"time"

	"fairbench/internal/causal"
	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/metrics"
	"fairbench/internal/registry"
	"fairbench/internal/rng"
	"fairbench/internal/runner"
	"fairbench/internal/synth"
)

// Row is the per-approach result of one evaluation run: the four
// correctness metrics, the normalized fairness metrics, and the runtime
// overhead over the fairness-unaware baseline (Section 4.3's accounting).
type Row struct {
	Approach string
	Stage    string
	Targets  []fair.Metric
	Correct  metrics.Correctness
	Fair     metrics.Normalized
	// Seconds is the approach's wall time (fit + predict); Overhead is
	// Seconds minus the baseline LR's on the same split.
	Seconds, Overhead float64
	// NoteNSF flags a Thomas run that fell back after failing its safety
	// test.
	NoteNSF bool
}

// Evaluate fits a on train, predicts test, and computes every metric.
func Evaluate(a fair.Approach, train, test *dataset.Dataset, g *causal.Graph) (Row, error) {
	start := time.Now()
	if err := a.Fit(train); err != nil {
		return Row{}, fmt.Errorf("%s: %w", a.Name(), err)
	}
	yhat, err := a.Predict(test)
	if err != nil {
		return Row{}, fmt.Errorf("%s: %w", a.Name(), err)
	}
	elapsed := time.Since(start).Seconds()
	raw := metrics.ComputeFairness(test, yhat, a, g)
	return Row{
		Approach: a.Name(),
		Stage:    a.Stage().String(),
		Targets:  a.Targets(),
		Correct:  metrics.ComputeCorrectness(test.Y, yhat),
		Fair:     metrics.Normalize(raw),
		Seconds:  elapsed,
	}, nil
}

// CorrectnessFairness reproduces Figure 7 for one dataset: the baseline LR
// followed by all 18 variants on a 70/30 split.
func CorrectnessFairness(src *synth.Source, seed int64) ([]Row, error) {
	train, test := src.Data.Split(0.7, rng.New(seed))
	return evalAll(train, test, src.Graph, seed)
}

func evalAll(train, test *dataset.Dataset, g *causal.Graph, seed int64) ([]Row, error) {
	return evalNamed(append([]string{"LR"}, registry.Names...), train, test, g, seed)
}

// splitPair is one dataset slice of an experiment grid: the train/test
// pair every approach of that slice is evaluated on.
type splitPair struct {
	train, test *dataset.Dataset
}

// gridEval evaluates every (slice × approach) cell of an experiment grid
// as one flat runner job list, returning rows in slice-major order
// (rows[si*len(names)+ni] is approach ni on slice si). Each cell
// constructs its own approach from sliceSeed(si), so results are
// independent of scheduling. This is the shared engine behind Figure 7,
// the robustness templates, the CV folds, the stability runs, and the
// data-efficiency sizes.
func gridEval(slices []splitPair, names []string, g *causal.Graph, sliceSeed func(si int) int64) ([]Row, error) {
	return runner.Run(len(slices)*len(names), runner.Options{FailFast: true},
		func(i int) (Row, error) {
			si, ni := i/len(names), i%len(names)
			a, err := registry.New(names[ni], registry.Config{Graph: g, Seed: sliceSeed(si)})
			if err != nil {
				return Row{}, err
			}
			return Evaluate(a, slices[si].train, slices[si].test, g)
		})
}

// evalNamed evaluates the named approaches on one split. names[0] must be
// the fairness-unaware baseline: its Seconds anchor the Overhead
// post-pass.
func evalNamed(names []string, train, test *dataset.Dataset, g *causal.Graph, seed int64) ([]Row, error) {
	rows, err := gridEval([]splitPair{{train, test}}, names, g, func(int) int64 { return seed })
	if err != nil {
		return nil, err
	}
	applyOverhead(rows, rows[0].Seconds)
	return rows, nil
}

// applyOverhead fills each row's Overhead as its Seconds over the baseline,
// clamped at zero (a fairness approach cannot be cheaper than no approach;
// negatives are timing noise).
func applyOverhead(rows []Row, baseline float64) {
	for i := range rows {
		ov := rows[i].Seconds - baseline
		if ov < 0 {
			ov = 0
		}
		rows[i].Overhead = ov
	}
}

// ScalabilityPoint is one (size or attribute count, overhead seconds)
// measurement for one approach.
type ScalabilityPoint struct {
	X        int
	Overhead float64
}

// scaleSlice is one column of the Figure 8 grids: a prepared train/test
// pair at one x value (#points or #attributes).
type scaleSlice struct {
	x           int
	train, test *dataset.Dataset
}

// ScalabilityRows reproduces Figure 8(a-c): runtime overhead as the number
// of training points grows, on samples of the given dataset.
func ScalabilityRows(src *synth.Source, sizes []int, names []string, seed int64) (map[string][]ScalabilityPoint, error) {
	slices := make([]scaleSlice, len(sizes))
	for i, n := range sizes {
		sample := src.Data.Sample(n, rng.New(seed+int64(n)))
		train, test := sample.Split(0.7, rng.New(seed))
		slices[i] = scaleSlice{x: n, train: train, test: test}
	}
	return scalabilityGrid(slices, names, src.Graph, seed)
}

// ScalabilityAttrs reproduces Figure 8(d-f): runtime overhead as the
// number of attributes grows, by projecting the dataset onto attribute
// prefixes.
func ScalabilityAttrs(src *synth.Source, attrCounts []int, names []string, sampleSize int, seed int64) (map[string][]ScalabilityPoint, error) {
	sample := src.Data.Sample(sampleSize, rng.New(seed))
	slices := make([]scaleSlice, len(attrCounts))
	for i, k := range attrCounts {
		if k > sample.Dim() {
			k = sample.Dim()
		}
		cols := make([]int, k)
		for c := range cols {
			cols[c] = c
		}
		proj := sample.ProjectAttrs(cols)
		train, test := proj.Split(0.7, rng.New(seed))
		slices[i] = scaleSlice{x: k, train: train, test: test}
	}
	return scalabilityGrid(slices, names, src.Graph, seed)
}

// scalabilityGrid times every (slice × approach) cell, with the baseline
// LR as an extra column per slice, then subtracts the baseline in a
// post-pass. Unlike the metric grids, this grid's entire output is wall
// time, so it always runs with one worker: co-scheduled cells would
// contend for cores and corrupt the very quantity being measured
// (Figure 8's overhead curves). It still goes through runner.Run for the
// uniform error protocol and the future option of distributing slices
// across isolated machines.
func scalabilityGrid(slices []scaleSlice, names []string, g *causal.Graph, seed int64) (map[string][]ScalabilityPoint, error) {
	cols := len(names) + 1 // column 0 is the baseline LR
	secs, err := runner.Run(len(slices)*cols, runner.Options{Workers: 1, FailFast: true},
		func(i int) (float64, error) {
			sl, name := slices[i/cols], "LR"
			if ni := i % cols; ni > 0 {
				name = names[ni-1]
			}
			return timeOne(name, sl.train, sl.test, g, seed)
		})
	if err != nil {
		return nil, err
	}
	out := map[string][]ScalabilityPoint{}
	for si, sl := range slices {
		base := secs[si*cols]
		for ni, name := range names {
			ov := secs[si*cols+ni+1] - base
			if ov < 0 {
				ov = 0
			}
			out[name] = append(out[name], ScalabilityPoint{X: sl.x, Overhead: ov})
		}
	}
	return out, nil
}

func timeOne(name string, train, test *dataset.Dataset, g *causal.Graph, seed int64) (float64, error) {
	a, err := registry.New(name, registry.Config{Graph: g, Seed: seed})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := a.Fit(train); err != nil {
		return 0, fmt.Errorf("%s: %w", name, err)
	}
	if _, err := a.Predict(test); err != nil {
		return 0, fmt.Errorf("%s: %w", name, err)
	}
	return time.Since(start).Seconds(), nil
}
