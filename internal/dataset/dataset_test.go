package dataset

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"fairbench/internal/rng"
)

func toy(n int) *Dataset {
	d := &Dataset{
		Name: "toy",
		Attrs: []Attr{
			{Name: "a", Kind: Numeric},
			{Name: "b", Kind: Categorical, Card: 3},
		},
		SName: "S",
		YName: "Y",
	}
	for i := 0; i < n; i++ {
		d.X = append(d.X, []float64{float64(i), float64(i % 3)})
		d.S = append(d.S, i%2)
		d.Y = append(d.Y, (i/2)%2)
	}
	return d
}

func TestValidate(t *testing.T) {
	d := toy(10)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := toy(10)
	bad.S[3] = 2
	if bad.Validate() == nil {
		t.Fatal("non-binary S must fail validation")
	}
	bad2 := toy(10)
	bad2.Y = bad2.Y[:5]
	if bad2.Validate() == nil {
		t.Fatal("length mismatch must fail validation")
	}
}

func TestCloneDeep(t *testing.T) {
	d := toy(4)
	c := d.Clone()
	c.X[0][0] = 99
	c.Y[1] = 1 - c.Y[1]
	if d.X[0][0] == 99 || d.Y[1] == c.Y[1] {
		t.Fatal("Clone must deep-copy")
	}
}

func TestSubsetIsView(t *testing.T) {
	d := toy(6)
	s := d.Subset([]int{1, 3})
	if s.Len() != 2 || s.X[0][0] != 1 || s.X[1][0] != 3 {
		t.Fatalf("subset contents wrong: %+v", s.X)
	}
	// The view contract: subset rows alias the parent's storage (so
	// splits and folds are zero-copy), while S/Y stay independent.
	if &s.X[0][0] != &d.X[1][0] {
		t.Fatal("Subset rows must alias the parent (zero-copy view contract)")
	}
	s.Y[0] = 1 - s.Y[0]
	if d.Y[1] == s.Y[0] {
		t.Fatal("Subset must copy S/Y")
	}
	// Clone severs the alias — the sanctioned way to mutate a view.
	c := s.Clone()
	c.X[0][0] = 42
	if d.X[1][0] == 42 {
		t.Fatal("Clone of a view must not alias the parent")
	}
}

func TestNewFlatBacking(t *testing.T) {
	attrs := []Attr{{Name: "a", Kind: Numeric}, {Name: "b", Kind: Numeric}}
	d := NewFlat("flat", attrs, 4)
	if d.Flat() == nil || d.Flat().Rows != 4 || d.Flat().Cols != 2 {
		t.Fatalf("flat backing missing: %+v", d.Flat())
	}
	d.X[2][1] = 7
	if d.Flat().At(2, 1) != 7 {
		t.Fatal("X rows must view the flat backing")
	}
	if d.Row(2)[1] != 7 {
		t.Fatal("Row must return the same view")
	}
	// Clone rebuilds a contiguous backing even from scattered rows.
	c := toy(3).Clone()
	if c.Flat() == nil {
		t.Fatal("Clone must materialize a flat backing")
	}
}

func TestAppendFeatureRow(t *testing.T) {
	x := []float64{1, 2}
	buf := make([]float64, 0, 8)
	r := AppendFeatureRow(buf[:0], x, 1, true)
	if len(r) != 3 || r[2] != 1 {
		t.Fatalf("AppendFeatureRow with S: %v", r)
	}
	r = AppendFeatureRow(buf[:0], x, 1, false)
	if len(r) != 2 || r[1] != 2 {
		t.Fatalf("AppendFeatureRow without S: %v", r)
	}
}

func TestSplitPartition(t *testing.T) {
	d := toy(100)
	train, test := d.Split(0.7, rng.New(1))
	if train.Len()+test.Len() != 100 {
		t.Fatalf("split loses tuples: %d + %d", train.Len(), test.Len())
	}
	if train.Len() != 70 {
		t.Fatalf("train size: %d", train.Len())
	}
}

func TestKFoldPartition(t *testing.T) {
	d := toy(53)
	folds := d.KFold(5, rng.New(2))
	total := 0
	for _, f := range folds {
		total += f.Test.Len()
		if f.Train.Len()+f.Test.Len() != 53 {
			t.Fatal("fold does not partition")
		}
	}
	if total != 53 {
		t.Fatalf("test folds cover %d of 53", total)
	}
}

func TestBaseRates(t *testing.T) {
	d := toy(8) // S alternates, Y pattern 0,0,1,1,...
	u, p := d.BaseRates()
	if math.Abs(u-0.5) > 1e-12 || math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("base rates: %v %v", u, p)
	}
}

func TestWeights(t *testing.T) {
	d := toy(4)
	if d.Weight(0) != 1 || d.TotalWeight() != 4 {
		t.Fatal("unweighted defaults")
	}
	d.Weights = []float64{1, 2, 3, 4}
	if d.Weight(2) != 3 || d.TotalWeight() != 10 {
		t.Fatal("weighted accessors")
	}
}

func TestProjectAttrs(t *testing.T) {
	d := toy(5)
	p := d.ProjectAttrs([]int{1})
	if p.Dim() != 1 || p.Attrs[0].Name != "b" {
		t.Fatalf("projection: %+v", p.Attrs)
	}
	if p.X[4][0] != float64(4%3) {
		t.Fatalf("projected value: %v", p.X[4][0])
	}
}

func TestFeatureMatrix(t *testing.T) {
	d := toy(3)
	withS := d.FeatureMatrix(true)
	if len(withS[0]) != 3 || withS[1][2] != 1 {
		t.Fatalf("S column missing: %v", withS[1])
	}
	noS := d.FeatureMatrix(false)
	if len(noS[0]) != 2 {
		t.Fatalf("unexpected width: %v", noS[0])
	}
	// FeatureRow mirrors FeatureMatrix layout.
	f := func(x [3]float64, s bool) bool {
		si := 0
		if s {
			si = 1
		}
		r := FeatureRow(x[:], si, true)
		return len(r) == 4 && r[3] == float64(si)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResampleWeighted(t *testing.T) {
	d := toy(10)
	w := make([]float64, 10)
	w[7] = 1 // all mass on tuple 7
	r := d.ResampleWeighted(w, 5, rng.New(3))
	for i := 0; i < r.Len(); i++ {
		if r.X[i][0] != 7 {
			t.Fatal("weighted resampling ignored weights")
		}
	}
}

func TestStandardizer(t *testing.T) {
	d := toy(50)
	std := FitStandardizer(d)
	c := d.Clone()
	std.Apply(c)
	col := c.Column(0)
	var mean, sq float64
	for _, v := range col {
		mean += v
	}
	mean /= float64(len(col))
	for _, v := range col {
		sq += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(sq / float64(len(col)))
	if math.Abs(mean) > 1e-9 || math.Abs(sd-1) > 1e-9 {
		t.Fatalf("standardized column: mean %v std %v", mean, sd)
	}
	// Categorical column untouched.
	if c.X[4][1] != d.X[4][1] {
		t.Fatal("categorical column must not be standardized")
	}
	// ApplyRow matches Apply.
	row := append([]float64(nil), d.X[7]...)
	std.ApplyRow(row)
	if math.Abs(row[0]-c.X[7][0]) > 1e-12 {
		t.Fatal("ApplyRow disagrees with Apply")
	}
}

func TestDiscretizer(t *testing.T) {
	d := toy(90)
	disc := FitDiscretizer(d, 3)
	if disc.Cardinality(1) != 3 {
		t.Fatalf("categorical cardinality: %d", disc.Cardinality(1))
	}
	// Bins must be monotone in the value.
	prev := -1
	for v := 0.0; v < 90; v += 10 {
		b := disc.Bin(0, v)
		if b < prev {
			t.Fatalf("bins not monotone at %v", v)
		}
		prev = b
	}
	if disc.Bin(0, -100) != 0 {
		t.Fatal("below-range value must land in bin 0")
	}
	code, total := disc.Code(d.X[10], []int{0, 1})
	if code < 0 || code >= total {
		t.Fatalf("code %d outside [0,%d)", code, total)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := toy(7)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "toy", d.Attrs)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.SName != "S" || back.YName != "Y" {
		t.Fatalf("roundtrip header: %+v", back)
	}
	for i := range d.X {
		if back.X[i][0] != d.X[i][0] || back.S[i] != d.S[i] || back.Y[i] != d.Y[i] {
			t.Fatalf("roundtrip row %d", i)
		}
	}
	// Malformed input errors.
	if _, err := ReadCSV(bytes.NewBufferString("a,S,Y\nx,0,1\n"), "bad", nil); err == nil {
		t.Fatal("non-numeric attribute must error")
	}
}

func TestGroupIndices(t *testing.T) {
	d := toy(10)
	u, p := d.GroupIndices()
	if len(u) != 5 || len(p) != 5 {
		t.Fatalf("groups: %d/%d", len(u), len(p))
	}
	for _, i := range p {
		if d.S[i] != 1 {
			t.Fatal("privileged index with S=0")
		}
	}
}
