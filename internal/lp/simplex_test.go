package lp

import (
	"errors"
	"math"
	"testing"
)

func TestBasicLE(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6  ->  min -(x+y); optimum (1.6, 1.2).
	x, obj, err := Solve(Problem{
		C: []float64{-1, -1},
		Rows: []Constraint{
			{A: []float64{1, 2}, Rel: LE, B: 4},
			{A: []float64{3, 1}, Rel: LE, B: 6},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1.6) > 1e-6 || math.Abs(x[1]-1.2) > 1e-6 {
		t.Fatalf("solution: %v", x)
	}
	if math.Abs(obj+2.8) > 1e-6 {
		t.Fatalf("objective: %v", obj)
	}
}

func TestEquality(t *testing.T) {
	// min x+y s.t. x+y=2, x<=1.5 -> obj 2.
	x, obj, err := Solve(Problem{
		C: []float64{1, 1},
		Rows: []Constraint{
			{A: []float64{1, 1}, Rel: EQ, B: 2},
			{A: []float64{1, 0}, Rel: LE, B: 1.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-2) > 1e-6 {
		t.Fatalf("objective: %v (x=%v)", obj, x)
	}
}

func TestGE(t *testing.T) {
	// min 2x+3y s.t. x+y>=4, x>=1 -> x=4,y=0, obj 8.
	x, obj, err := Solve(Problem{
		C: []float64{2, 3},
		Rows: []Constraint{
			{A: []float64{1, 1}, Rel: GE, B: 4},
			{A: []float64{1, 0}, Rel: GE, B: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-8) > 1e-5 {
		t.Fatalf("objective: %v (x=%v)", obj, x)
	}
}

func TestInfeasible(t *testing.T) {
	_, _, err := Solve(Problem{
		C: []float64{1},
		Rows: []Constraint{
			{A: []float64{1}, Rel: LE, B: 1},
			{A: []float64{1}, Rel: GE, B: 2},
		},
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want infeasible, got %v", err)
	}
}

func TestUnbounded(t *testing.T) {
	_, _, err := Solve(Problem{
		C:    []float64{-1},
		Rows: []Constraint{{A: []float64{-1}, Rel: LE, B: 0}},
	})
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("want unbounded, got %v", err)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -2  (i.e. x >= 2).
	x, _, err := Solve(Problem{
		C:    []float64{1},
		Rows: []Constraint{{A: []float64{-1}, Rel: LE, B: -2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-6 {
		t.Fatalf("x: %v", x)
	}
}

func TestDimensionMismatch(t *testing.T) {
	_, _, err := Solve(Problem{
		C:    []float64{1, 2},
		Rows: []Constraint{{A: []float64{1}, Rel: LE, B: 1}},
	})
	if err == nil {
		t.Fatal("mismatched row width must error")
	}
}

func TestHardtShapedLP(t *testing.T) {
	// The Hardt post-processor's LP shape: 4 bounded vars with two
	// equality rows; verify feasibility and bounds.
	x, _, err := Solve(Problem{
		C: []float64{-0.3, -0.4, 0.1, 0.2},
		Rows: []Constraint{
			{A: []float64{0.8, -0.6, 0.2, -0.4}, Rel: EQ, B: 0},
			{A: []float64{0.3, -0.2, 0.7, -0.8}, Rel: EQ, B: 0},
			{A: []float64{1, 0, 0, 0}, Rel: LE, B: 1},
			{A: []float64{0, 1, 0, 0}, Rel: LE, B: 1},
			{A: []float64{0, 0, 1, 0}, Rel: LE, B: 1},
			{A: []float64{0, 0, 0, 1}, Rel: LE, B: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if v < -1e-9 || v > 1+1e-9 {
			t.Fatalf("var %d out of [0,1]: %v", i, v)
		}
	}
}
