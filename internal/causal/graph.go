// Package causal implements the causal-inference substrate the paper's
// causal fairness metrics and causal pre-processing approaches rely on: a
// DAG type over dataset attributes, reachability and d-separation queries,
// mediator discovery, and empirical adjustment-formula estimators for the
// Total Effect (TE), Natural Direct Effect (NDE), and Natural Indirect
// Effect (NIE) of the sensitive attribute on a prediction (Pearl 2009;
// Zhang et al. Theorems 4-5 as quoted in the paper's appendix).
//
// Node naming convention: attribute nodes use the attribute name from the
// dataset schema; the sensitive attribute uses the dataset's SName and the
// outcome node the dataset's YName.
package causal

import (
	"fmt"
	"sort"
)

// Graph is a directed acyclic graph over named nodes.
type Graph struct {
	nodes   []string
	index   map[string]int
	parents map[int][]int
	kids    map[int][]int
}

// NewGraph creates an empty graph.
func NewGraph() *Graph {
	return &Graph{
		index:   map[string]int{},
		parents: map[int][]int{},
		kids:    map[int][]int{},
	}
}

// AddNode registers a node; adding an existing node is a no-op.
func (g *Graph) AddNode(name string) {
	if _, ok := g.index[name]; ok {
		return
	}
	g.index[name] = len(g.nodes)
	g.nodes = append(g.nodes, name)
}

// AddEdge adds the directed edge from -> to, creating missing nodes. It
// returns an error if the edge would introduce a cycle.
func (g *Graph) AddEdge(from, to string) error {
	g.AddNode(from)
	g.AddNode(to)
	u, v := g.index[from], g.index[to]
	if u == v {
		return fmt.Errorf("causal: self-loop on %q", from)
	}
	if g.reach(v, u) {
		return fmt.Errorf("causal: edge %s->%s would create a cycle", from, to)
	}
	g.parents[v] = append(g.parents[v], u)
	g.kids[u] = append(g.kids[u], v)
	return nil
}

// MustEdge is AddEdge that panics on error; used for the hard-coded
// literature graphs (Appendix C) where cycles indicate a coding bug.
func (g *Graph) MustEdge(from, to string) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// Nodes returns the node names in insertion order.
func (g *Graph) Nodes() []string { return append([]string(nil), g.nodes...) }

// Has reports whether a node exists.
func (g *Graph) Has(name string) bool { _, ok := g.index[name]; return ok }

// Parents returns the sorted parent names of a node.
func (g *Graph) Parents(name string) []string {
	id, ok := g.index[name]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(g.parents[id]))
	for _, p := range g.parents[id] {
		out = append(out, g.nodes[p])
	}
	sort.Strings(out)
	return out
}

// Children returns the sorted child names of a node.
func (g *Graph) Children(name string) []string {
	id, ok := g.index[name]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(g.kids[id]))
	for _, c := range g.kids[id] {
		out = append(out, g.nodes[c])
	}
	sort.Strings(out)
	return out
}

// reach reports whether v is reachable from u by directed edges.
func (g *Graph) reach(u, v int) bool {
	if u == v {
		return true
	}
	seen := make([]bool, len(g.nodes))
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == v {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		stack = append(stack, g.kids[x]...)
	}
	return false
}

// Descendants returns the set of nodes reachable from name (excluding it).
func (g *Graph) Descendants(name string) map[string]bool {
	out := map[string]bool{}
	id, ok := g.index[name]
	if !ok {
		return out
	}
	stack := append([]int(nil), g.kids[id]...)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nm := g.nodes[x]
		if out[nm] {
			continue
		}
		out[nm] = true
		stack = append(stack, g.kids[x]...)
	}
	return out
}

// Ancestors returns the set of nodes from which name is reachable
// (excluding it).
func (g *Graph) Ancestors(name string) map[string]bool {
	out := map[string]bool{}
	id, ok := g.index[name]
	if !ok {
		return out
	}
	stack := append([]int(nil), g.parents[id]...)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nm := g.nodes[x]
		if out[nm] {
			continue
		}
		out[nm] = true
		stack = append(stack, g.parents[x]...)
	}
	return out
}

// Mediators returns the attributes lying on a directed path from s to y
// other than s and y themselves: descendants of s that are ancestors of y.
// These are the Z attributes of the NDE/NIE formulas.
func (g *Graph) Mediators(s, y string) []string {
	desc := g.Descendants(s)
	anc := g.Ancestors(y)
	var out []string
	for n := range desc {
		if n != y && anc[n] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// HasDirectedPath reports whether a directed path from -> to exists.
func (g *Graph) HasDirectedPath(from, to string) bool {
	u, ok := g.index[from]
	if !ok {
		return false
	}
	v, ok := g.index[to]
	if !ok {
		return false
	}
	return g.reach(u, v)
}

// TopoOrder returns a topological order of the node names. It panics if the
// graph somehow contains a cycle (AddEdge forbids them).
func (g *Graph) TopoOrder() []string {
	indeg := make([]int, len(g.nodes))
	for v := range g.parents {
		indeg[v] = len(g.parents[v])
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	var order []string
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		order = append(order, g.nodes[x])
		for _, c := range g.kids[x] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != len(g.nodes) {
		panic("causal: cycle detected in TopoOrder")
	}
	return order
}

// DSeparated reports whether x and y are d-separated given the
// conditioning set z, using the standard reachability formulation over the
// moralized ancestral "Bayes-ball" rules.
func (g *Graph) DSeparated(x, y string, z []string) bool {
	xi, ok := g.index[x]
	if !ok {
		return true
	}
	yi, ok := g.index[y]
	if !ok {
		return true
	}
	inZ := make([]bool, len(g.nodes))
	for _, n := range z {
		if id, ok := g.index[n]; ok {
			inZ[id] = true
		}
	}
	// ancestor-of-Z flags enable colliders
	ancZ := make([]bool, len(g.nodes))
	var mark func(int)
	mark = func(v int) {
		if ancZ[v] {
			return
		}
		ancZ[v] = true
		for _, p := range g.parents[v] {
			mark(p)
		}
	}
	for i, in := range inZ {
		if in {
			mark(i)
		}
	}
	// Bayes-ball: states are (node, direction) with direction up (from
	// child) or down (from parent).
	type state struct {
		node int
		up   bool
	}
	seen := map[state]bool{}
	queue := []state{{xi, true}} // leaving x travelling "up" covers both
	queue = append(queue, state{xi, false})
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if seen[s] {
			continue
		}
		seen[s] = true
		if s.node == yi && s.node != xi {
			return false
		}
		if s.up {
			// arrived from a child: if not in Z, can go to parents (up)
			// and children (down).
			if !inZ[s.node] {
				for _, p := range g.parents[s.node] {
					queue = append(queue, state{p, true})
				}
				for _, c := range g.kids[s.node] {
					queue = append(queue, state{c, false})
				}
			}
		} else {
			// arrived from a parent: if not in Z, pass through to
			// children; if an ancestor of Z (collider opened), bounce to
			// parents.
			if !inZ[s.node] {
				for _, c := range g.kids[s.node] {
					queue = append(queue, state{c, false})
				}
			}
			if ancZ[s.node] {
				for _, p := range g.parents[s.node] {
					queue = append(queue, state{p, true})
				}
			}
		}
	}
	return true
}
