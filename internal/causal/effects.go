package causal

import (
	"sort"

	"fairbench/internal/dataset"
)

// Effects holds the three causal quantities the paper evaluates: the total
// effect TE of the sensitive attribute S on the prediction, and its
// decomposition into the natural direct effect NDE (through the edge
// S -> Yhat) and natural indirect effect NIE (through mediator attributes).
type Effects struct {
	TE, NDE, NIE float64
}

// Estimator estimates interventional quantities of a classifier's
// predictions from empirical (discretized) data and the dataset's causal
// graph. All three benchmark datasets have a root sensitive attribute
// (Appendix C), so TE is identified by the observational contrast
// P(Yhat=1|S=1) - P(Yhat=1|S=0) (paper, Example 4), and NDE/NIE follow the
// mediator adjustment formulas of Zhang et al. (Theorems 4-5) quoted in the
// paper's appendix:
//
//	NDE = Σ_{w,z} P(Ŷ=1|S=1,W=w,Z=z) P(Z=z|S=0) P(W=w) - P(Ŷ=1|S=0)
//	NIE = Σ_{w,z} P(Ŷ=1|S=0,W=w,Z=z) P(Z=z|S=1) P(W=w) - P(Ŷ=1|S=0)
//
// where Z are the mediators (descendants of S) and W the remaining
// attributes.
type Estimator struct {
	graph *Graph
	disc  *dataset.Discretizer
	med   []int // attribute indices of mediators Z
	other []int // attribute indices of non-mediators W
}

// NewEstimator builds an estimator for dataset d under graph g. Numeric
// attributes are discretized into bins equal-frequency bins for
// stratification (the paper computes causal quantities on discretized
// attributes via DoWhy).
func NewEstimator(d *dataset.Dataset, g *Graph, bins int) *Estimator {
	disc := dataset.FitDiscretizer(d, bins)
	desc := g.Descendants(d.SName)
	est := &Estimator{graph: g, disc: disc}
	for j, a := range d.Attrs {
		if desc[a.Name] {
			est.med = append(est.med, j)
		} else {
			est.other = append(est.other, j)
		}
	}
	return est
}

// Mediators returns the attribute indices treated as mediators Z.
func (e *Estimator) Mediators() []int { return append([]int(nil), e.med...) }

// Estimate computes TE, NDE, and NIE of S on the predictions yhat over d.
func (e *Estimator) Estimate(d *dataset.Dataset, yhat []int) Effects {
	n := d.Len()
	if n == 0 {
		return Effects{}
	}

	// Observational contrasts: P(Ŷ=1 | S=s).
	var n0, n1, p0, p1 float64
	for i := 0; i < n; i++ {
		if d.S[i] == 1 {
			n1++
			p1 += float64(yhat[i])
		} else {
			n0++
			p0 += float64(yhat[i])
		}
	}
	if n0 > 0 {
		p0 /= n0
	}
	if n1 > 0 {
		p1 /= n1
	}
	te := p1 - p0

	if len(e.med) == 0 {
		// No mediators: the entire effect is direct.
		return Effects{TE: te, NDE: te, NIE: 0}
	}

	// Empirical tables over strata. zKey/wKey are joint codes over the
	// mediator and non-mediator attribute subsets.
	type cell struct{ pos, tot float64 }
	condSZW := map[[3]int]*cell{} // (s, zKey, wKey) -> E[Ŷ]
	condSZ := map[[2]int]*cell{}  // (s, zKey)       -> fallback
	zGivenS := map[[2]int]float64{}
	zCountS := [2]float64{}
	wMarg := map[int]float64{}

	for i := 0; i < n; i++ {
		z, _ := e.disc.Code(d.X[i], e.med)
		w, _ := e.disc.Code(d.X[i], e.other)
		s := d.S[i]
		k3 := [3]int{s, z, w}
		c := condSZW[k3]
		if c == nil {
			c = &cell{}
			condSZW[k3] = c
		}
		c.pos += float64(yhat[i])
		c.tot++
		k2 := [2]int{s, z}
		c2 := condSZ[k2]
		if c2 == nil {
			c2 = &cell{}
			condSZ[k2] = c2
		}
		c2.pos += float64(yhat[i])
		c2.tot++
		zGivenS[[2]int{s, z}]++
		zCountS[s]++
		wMarg[w]++
	}
	for k := range zGivenS {
		if zCountS[k[0]] > 0 {
			zGivenS[k] /= zCountS[k[0]]
		}
	}
	for k := range wMarg {
		wMarg[k] /= float64(n)
	}

	// Collect the observed z strata (with P(z|S=0), P(z|S=1)) and observed
	// w strata (with P(w)); the adjustment sums range over their product.
	type zent struct {
		z        int
		p0z, p1z float64
	}
	zset := map[int]*zent{}
	for k, p := range zGivenS {
		e, ok := zset[k[1]]
		if !ok {
			e = &zent{z: k[1]}
			zset[k[1]] = e
		}
		if k[0] == 0 {
			e.p0z = p
		} else {
			e.p1z = p
		}
	}

	// Sum in sorted stratum order: map iteration order is randomized, and
	// float addition is not associative, so an unordered sum perturbs the
	// last bits of NDE/NIE from run to run — breaking the benchmark's
	// bit-reproducibility contract (and the serial↔parallel equivalence
	// the runner package tests assert).
	zs := make([]int, 0, len(zset))
	for z := range zset {
		zs = append(zs, z)
	}
	sort.Ints(zs)
	ws := make([]int, 0, len(wMarg))
	for w := range wMarg {
		ws = append(ws, w)
	}
	sort.Ints(ws)

	// The adjustment sum visits every (s, z, w) combination, so per-lookup
	// map hashing dominates it. Re-index the conditional tables first: the
	// (s, z) conditionals become dense arrays over sorted-stratum position,
	// and the (s, z, w) table becomes one wi-sorted sparse row per (s, zi)
	// — total entries are bounded by the tuple count, never nz·nw. The sums
	// below then merge-scan each sparse row against the ascending wi loop,
	// reading the same pos/tot pairs the map lookups returned, with the
	// same progressive fallback — E[Ŷ|S,Z,W], then E[Ŷ|S,Z], then the
	// group mean — so every term is bit-identical.
	nz := len(zs)
	zIdx := make(map[int]int, nz)
	for i, z := range zs {
		zIdx[z] = i
	}
	wIdx := make(map[int]int, len(ws))
	for i, w := range ws {
		wIdx[w] = i
	}
	type went struct {
		wi       int
		pos, tot float64
	}
	rows := make([][]went, 2*nz)
	for k, c := range condSZW {
		at := k[0]*nz + zIdx[k[1]]
		rows[at] = append(rows[at], went{wIdx[k[2]], c.pos, c.tot})
	}
	for _, r := range rows {
		sort.Slice(r, func(i, j int) bool { return r[i].wi < r[j].wi })
	}
	ey2Pos := make([]float64, 2*nz)
	ey2Tot := make([]float64, 2*nz)
	for k, c := range condSZ {
		at := k[0]*nz + zIdx[k[1]]
		ey2Pos[at], ey2Tot[at] = c.pos, c.tot
	}
	pwArr := make([]float64, len(ws))
	for wi, w := range ws {
		pwArr[wi] = wMarg[w]
	}

	groupMean := [2]float64{p0, p1}
	var nde, nie float64
	for zi, z := range zs {
		ze := zset[z]
		r0 := rows[zi]
		r1 := rows[nz+zi]
		i0, i1 := 0, 0
		for wi, pw := range pwArr {
			for i1 < len(r1) && r1[i1].wi < wi {
				i1++
			}
			e1 := groupMean[1]
			if i1 < len(r1) && r1[i1].wi == wi && r1[i1].tot > 0 {
				e1 = r1[i1].pos / r1[i1].tot
			} else if t := ey2Tot[nz+zi]; t > 0 {
				e1 = ey2Pos[nz+zi] / t
			}
			for i0 < len(r0) && r0[i0].wi < wi {
				i0++
			}
			e0 := groupMean[0]
			if i0 < len(r0) && r0[i0].wi == wi && r0[i0].tot > 0 {
				e0 = r0[i0].pos / r0[i0].tot
			} else if t := ey2Tot[zi]; t > 0 {
				e0 = ey2Pos[zi] / t
			}
			nde += e1 * ze.p0z * pw
			nie += e0 * ze.p1z * pw
		}
	}
	nde -= p0
	nie -= p0
	return Effects{TE: te, NDE: nde, NIE: nie}
}
