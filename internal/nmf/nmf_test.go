package nmf

import (
	"math"
	"testing"
)

func TestRank1Recovery(t *testing.T) {
	// An exactly rank-1 matrix must be recovered almost perfectly.
	u := []float64{1, 2, 3}
	v := []float64{4, 5}
	m := make([][]float64, 3)
	for i := range m {
		m[i] = []float64{u[i] * v[0], u[i] * v[1]}
	}
	approx := Rank1(m, 500, 1)
	for i := range m {
		for j := range m[i] {
			if math.Abs(approx[i][j]-m[i][j]) > 0.05*m[i][j] {
				t.Fatalf("cell (%d,%d): got %v want %v", i, j, approx[i][j], m[i][j])
			}
		}
	}
}

func TestRank1Nonnegative(t *testing.T) {
	m := [][]float64{{5, 1}, {2, 8}, {0, 3}}
	approx := Rank1(m, 300, 2)
	for i := range approx {
		for j := range approx[i] {
			if approx[i][j] < 0 {
				t.Fatalf("negative entry at (%d,%d): %v", i, j, approx[i][j])
			}
		}
	}
}

func TestFactorizeResidualDecreases(t *testing.T) {
	m := [][]float64{{5, 1, 0}, {2, 8, 1}, {0, 3, 7}, {4, 4, 4}}
	w1, h1 := Factorize(m, 2, 10, 3)
	w2, h2 := Factorize(m, 2, 400, 3)
	if Residual(m, w2, h2) > Residual(m, w1, h1)+1e-9 {
		t.Fatalf("residual must not increase with iterations: %v -> %v",
			Residual(m, w1, h1), Residual(m, w2, h2))
	}
}

func TestRankKBeatsRank1(t *testing.T) {
	// A clearly rank-2 matrix is approximated better with k=2.
	m := [][]float64{{10, 0}, {0, 10}, {10, 0}, {0, 10}}
	w1, h1 := Factorize(m, 1, 300, 4)
	w2, h2 := Factorize(m, 2, 300, 4)
	if Residual(m, w2, h2) >= Residual(m, w1, h1) {
		t.Fatalf("rank-2 should fit rank-2 data better: r1=%v r2=%v",
			Residual(m, w1, h1), Residual(m, w2, h2))
	}
}

func TestEmpty(t *testing.T) {
	if out := Rank1(nil, 10, 5); out != nil {
		t.Fatal("empty input must return nil")
	}
}

func TestIndependenceSemantics(t *testing.T) {
	// The Salimi^jf use-case: an (I × Y) contingency table is independent
	// iff rank-1. The rank-1 approximation of a dependent table must have
	// equal conditional label rates across rows.
	m := [][]float64{{30, 10}, {10, 30}} // strongly dependent
	approx := Rank1(m, 500, 6)
	r0 := approx[0][1] / (approx[0][0] + approx[0][1])
	r1 := approx[1][1] / (approx[1][0] + approx[1][1])
	if math.Abs(r0-r1) > 0.02 {
		t.Fatalf("rank-1 rows must share the label rate: %v vs %v", r0, r1)
	}
}
