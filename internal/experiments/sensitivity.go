package experiments

import (
	"fairbench/internal/classifier"
	"fairbench/internal/registry"
	"fairbench/internal/rng"
	"fairbench/internal/runner"
	"fairbench/internal/synth"
)

// ModelNames lists the five model families of the model-sensitivity
// experiment (Section 4.5, Appendix F).
var ModelNames = []string{"LR", "SVM", "kNN", "RF", "MLP"}

// ModelFactory returns the classifier factory for one model-family name
// with the paper's hyper-parameters.
func ModelFactory(name string) classifier.Factory {
	switch name {
	case "SVM":
		return func() classifier.Classifier { return classifier.NewSVM() }
	case "kNN":
		return func() classifier.Classifier { return classifier.NewKNN() }
	case "RF":
		return func() classifier.Classifier { return classifier.NewForest() }
	case "MLP":
		return func() classifier.Classifier { return classifier.NewMLP() }
	default:
		return func() classifier.Classifier { return classifier.NewLogistic() }
	}
}

// SensitivityRow is one (approach, model) evaluation.
type SensitivityRow struct {
	Approach, Model string
	Row             Row
}

// ModelSensitivity reproduces Figure 10 / Figure 21: each pre- and
// post-processing approach is paired with each of the five model families;
// in-processing approaches are excluded because their mechanism is welded
// to their own learner (Section 4.5 evaluates pre and post only).
func ModelSensitivity(src *synth.Source, approaches []string, seed int64) ([]SensitivityRow, error) {
	if approaches == nil {
		approaches = []string{
			"KamCal-DP", "Feld-DP", "Calmon-DP", "ZhaWu-PSF", "ZhaWu-DCE",
			"Salimi-JF-MaxSAT", "KamKar-DP", "Hardt-EO", "Pleiss-EOP",
		}
	}
	train, test := src.Data.Split(0.7, rng.New(seed))
	// One job per (model family × approach) cell; each cell builds its own
	// factory so no classifier state crosses goroutines.
	return runner.Run(len(ModelNames)*len(approaches), runner.Options{FailFast: true},
		func(i int) (SensitivityRow, error) {
			model := ModelNames[i/len(approaches)]
			name := approaches[i%len(approaches)]
			a, err := registry.New(name, registry.Config{
				Graph: src.Graph, Factory: ModelFactory(model), Seed: seed,
			})
			if err != nil {
				return SensitivityRow{}, err
			}
			row, err := Evaluate(a, train, test, src.Graph)
			if err != nil {
				return SensitivityRow{}, err
			}
			return SensitivityRow{Approach: name, Model: model, Row: row}, nil
		})
}

// SensitivitySpread summarizes, per approach, the spread (max - min) of
// accuracy and DI* across models — the quantity the paper's finding keys
// on: large for pre-processing, small for post-processing.
type SensitivitySpread struct {
	Approach              string
	Stage                 string
	AccSpread, DISpread   float64
	AccByModel, DIByModel map[string]float64
}

// Spreads aggregates ModelSensitivity rows.
func Spreads(rows []SensitivityRow) []SensitivitySpread {
	order := []string{}
	agg := map[string]*SensitivitySpread{}
	for _, r := range rows {
		s := agg[r.Approach]
		if s == nil {
			s = &SensitivitySpread{
				Approach:   r.Approach,
				Stage:      r.Row.Stage,
				AccByModel: map[string]float64{},
				DIByModel:  map[string]float64{},
			}
			agg[r.Approach] = s
			order = append(order, r.Approach)
		}
		s.AccByModel[r.Model] = r.Row.Correct.Accuracy
		s.DIByModel[r.Model] = r.Row.Fair.DIStar
	}
	var out []SensitivitySpread
	for _, name := range order {
		s := agg[name]
		s.AccSpread = spread(s.AccByModel)
		s.DISpread = spread(s.DIByModel)
		out = append(out, *s)
	}
	return out
}

func spread(m map[string]float64) float64 {
	first := true
	var lo, hi float64
	for _, v := range m {
		if first {
			lo, hi = v, v
			first = false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}
