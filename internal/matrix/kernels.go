package matrix

import (
	"fmt"
	"math"
)

// This file holds the hot training kernels: the inner loops every Adam
// iteration of every grid cell runs. They are written so the compiler
// proves all indexing in bounds (verified in CI by building with
// -gcflags=-d=ssa/check_bce and failing on any IsInBounds finding in
// this file), and AffineInto additionally blocks rows in groups of four
// so the four independent accumulator chains pipeline.
//
// Bit-exactness contract: every kernel preserves the exact floating-point
// fold order of the scalar loop it replaces — one accumulator per output
// element, ascending index — because grid results must stay byte-identical
// across the serial, batched, sharded, and served execution paths.

// Dot returns the inner product of a and b. It panics if lengths differ,
// because a length mismatch is always a programming error in this codebase.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("matrix: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)]
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matrix: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	y = y[:len(x)]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// AffineInto computes dst[i] = bias + Σ_j w[j]·d[i][j] for every row —
// the z-pass of a linear model with the intercept folded in first, exactly
// as the classifiers' scalar loops accumulate it. dst must have length
// d.Rows and w length d.Cols. Rows are processed in blocks of four with
// one independent accumulator each, so the result is bit-identical to the
// one-row-at-a-time fold.
func (d *Dense) AffineInto(dst, w []float64, bias float64) {
	if len(dst) != d.Rows || len(w) != d.Cols {
		panic(fmt.Sprintf("matrix: AffineInto dims %d×%d vs dst %d, w %d", d.Rows, d.Cols, len(dst), len(w)))
	}
	if d.Rows == 0 {
		return
	}
	if d.Stride != d.Cols {
		for i := range dst {
			dst[i] = affineRow(d.Row(i), w, bias)
		}
		return
	}
	c := d.Cols
	data := d.Data[:d.Rows*c]
	dst = dst[:d.Rows]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		off := i * c
		r0 := data[off+0*c : off+1*c]
		r1 := data[off+1*c : off+2*c]
		r2 := data[off+2*c : off+3*c]
		r3 := data[off+3*c : off+4*c]
		r0 = r0[:len(w)]
		r1 = r1[:len(w)]
		r2 = r2[:len(w)]
		r3 = r3[:len(w)]
		z0, z1, z2, z3 := bias, bias, bias, bias
		for j, wj := range w {
			z0 += wj * r0[j]
			z1 += wj * r1[j]
			z2 += wj * r2[j]
			z3 += wj * r3[j]
		}
		ds := dst[i : i+4 : i+4]
		ds[0] = z0
		ds[1] = z1
		ds[2] = z2
		ds[3] = z3
	}
	tail := dst[i:]
	for k := range tail {
		off := (i + k) * c
		tail[k] = affineRow(data[off:off+c], w, bias)
	}
}

// affineRow is the scalar fold AffineInto's block path reproduces:
// z starts at bias, then accumulates w[j]·row[j] in ascending j with a
// single accumulator.
func affineRow(row, w []float64, bias float64) float64 {
	z := bias
	row = row[:len(w)]
	for j, wj := range w {
		z += wj * row[j]
	}
	return z
}

// SigmoidInto computes dst[i] = Sigmoid(src[i]) for every element. The
// body is Sigmoid's numerically stable form with the branch folded into a
// select — exp(-|z|) equals the branch-specific exponent (-z for z >= 0,
// z otherwise) exactly, so each element is bit-identical to a Sigmoid
// call — written out here because Sigmoid itself exceeds the inlining
// budget and per-element call overhead is measurable in the training hot
// loops.
func SigmoidInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("matrix: SigmoidInto length mismatch %d vs %d", len(dst), len(src)))
	}
	dst = dst[:len(src)]
	for i, z := range src {
		e := math.Exp(-math.Abs(z))
		num := 1.0
		if z < 0 {
			num = e
		}
		dst[i] = num / (1 + e)
	}
}

// AccumulateInto computes dst[j] += g·row[j] — the per-row gradient
// scatter of a linear model. Unlike Axpy it tolerates len(dst) > len(row)
// (the intercept slot rides at the end of the gradient vector).
func AccumulateInto(dst []float64, g float64, row []float64) {
	dst = dst[:len(row)]
	for j, v := range row {
		dst[j] += g * v
	}
}

// ScatterRows computes dst[j] += Σ_i g[i]·d[i][j] — the full gradient
// scatter of a linear model with per-tuple coefficients g. Each dst
// component accumulates its terms in ascending row order with a single
// chain, so the result is bit-identical to calling AccumulateInto once per
// row; the blocked path merely loads and stores each dst element once per
// four rows instead of once per row. dst must have length d.Cols and g
// length d.Rows.
func (d *Dense) ScatterRows(dst, g []float64) {
	if len(g) != d.Rows || len(dst) != d.Cols {
		panic(fmt.Sprintf("matrix: ScatterRows dims %d×%d vs g %d, dst %d", d.Rows, d.Cols, len(g), len(dst)))
	}
	if d.Stride != d.Cols {
		for i, gi := range g {
			AccumulateInto(dst, gi, d.Row(i))
		}
		return
	}
	c := d.Cols
	data := d.Data[:d.Rows*c]
	g = g[:d.Rows]
	i := 0
	for ; i+4 <= len(g); i += 4 {
		off := i * c
		r0 := data[off+0*c : off+1*c]
		r1 := data[off+1*c : off+2*c]
		r2 := data[off+2*c : off+3*c]
		r3 := data[off+3*c : off+4*c]
		r0 = r0[:len(dst)]
		r1 = r1[:len(dst)]
		r2 = r2[:len(dst)]
		r3 = r3[:len(dst)]
		gs := g[i : i+4 : i+4]
		g0, g1, g2, g3 := gs[0], gs[1], gs[2], gs[3]
		for j := range dst {
			a := dst[j]
			a += g0 * r0[j]
			a += g1 * r1[j]
			a += g2 * r2[j]
			a += g3 * r3[j]
			dst[j] = a
		}
	}
	tail := g[i:]
	for k, gi := range tail {
		off := (i + k) * c
		AccumulateInto(dst, gi, data[off:off+c])
	}
}
