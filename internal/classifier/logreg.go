package classifier

import (
	"fairbench/internal/matrix"
	"fairbench/internal/optimize"
)

// LogisticRegression is an L2-regularized logistic-regression classifier
// trained by full-batch Adam on the weighted log loss. It is the paper's
// fairness-unaware baseline and the default model completing pre- and
// post-processing pipelines.
type LogisticRegression struct {
	// L2 is the ridge penalty on the non-intercept weights (default 1e-3,
	// matching scikit-learn's mild default regularization role).
	L2 float64
	// MaxIter bounds the optimizer (default 300).
	MaxIter int
	// Step is the Adam learning rate (default 0.1).
	Step float64

	// W holds the learned weights; the last entry is the intercept.
	W []float64
}

// NewLogistic returns a logistic regression with benchmark defaults.
func NewLogistic() *LogisticRegression {
	return &LogisticRegression{L2: 1e-3, MaxIter: 300, Step: 0.1}
}

// Fit trains the model; w may be nil for uniform weights.
func (lr *LogisticRegression) Fit(x [][]float64, y []int, w []float64) error {
	if err := checkFitInput(x, y, w); err != nil {
		return err
	}
	if lr.MaxIter == 0 {
		lr.MaxIter = 300
	}
	if lr.Step == 0 {
		lr.Step = 0.1
	}
	d := len(x[0])
	var totalW float64
	if w == nil {
		totalW = float64(len(x))
	} else {
		totalW = matrix.Sum(w)
	}
	if totalW <= 0 {
		totalW = 1
	}
	obj := func(theta []float64, grad []float64) float64 {
		for j := range grad {
			grad[j] = 0
		}
		var loss float64
		for i, row := range x {
			wi := 1.0
			if w != nil {
				wi = w[i]
			}
			z := theta[d]
			for j, v := range row {
				z += theta[j] * v
			}
			p := matrix.Sigmoid(z)
			yi := float64(y[i])
			loss += wi * logLoss(p, yi)
			g := wi * (p - yi)
			for j, v := range row {
				grad[j] += g * v
			}
			grad[d] += g
		}
		loss /= totalW
		for j := range grad {
			grad[j] /= totalW
		}
		for j := 0; j < d; j++ { // no penalty on intercept
			loss += lr.L2 * theta[j] * theta[j]
			grad[j] += 2 * lr.L2 * theta[j]
		}
		return loss
	}
	w0 := make([]float64, d+1)
	theta, _ := optimize.Adam(obj, w0, optimize.AdamConfig{Step: lr.Step, MaxIter: lr.MaxIter})
	lr.W = theta
	return nil
}

// Score returns the raw decision value (signed distance proxy) wᵀx + b.
func (lr *LogisticRegression) Score(x []float64) float64 {
	d := len(lr.W) - 1
	z := lr.W[d]
	for j := 0; j < d && j < len(x); j++ {
		z += lr.W[j] * x[j]
	}
	return z
}

// PredictProba returns the sigmoid of the decision value.
func (lr *LogisticRegression) PredictProba(x []float64) float64 {
	return matrix.Sigmoid(lr.Score(x))
}

func logLoss(p, y float64) float64 {
	const eps = 1e-12
	p = matrix.Clamp(p, eps, 1-eps)
	if y >= 0.5 {
		return -ln(p)
	}
	return -ln(1 - p)
}
