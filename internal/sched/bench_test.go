package sched

import (
	"os"
	"testing"

	"fairbench/internal/experiments"
	"fairbench/internal/store"
)

// BenchmarkSchedPlanCacheAware measures the coordinator's plan-time cost
// over a half-cached grid: materializing the grid from its spec plus one
// verified store probe per cell. This is the fixed price every scheduled
// run pays before the first assignment; scripts/bench.sh records it to
// BENCH_sched.json.
func BenchmarkSchedPlanCacheAware(b *testing.B) {
	spec := experiments.Spec{Experiment: "fig7", Dataset: "german", N: 300, Seed: 1}
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	// Populate the first half of the grid so the plan sees a realistic
	// mid-run cache: a cached prefix to skip and an uncached tail to
	// balance.
	if _, err := experiments.RunShardCached(spec, 0, 2, st); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := experiments.PlanShardsCacheAware(spec, 4, st)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Uncached[0] != 0 || plan.TotalUncached() == 0 {
			b.Fatalf("unexpected plan %+v", plan)
		}
	}
}

// BenchmarkSchedLocal is a whole scheduled run — plan, spawn workers on
// two local hosts, validate parts, merge — over a small cold grid, the
// end-to-end overhead of going multi-host on one machine.
func BenchmarkSchedLocal(b *testing.B) {
	spec := smallSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp(b.TempDir(), "run")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		_, rep, err := Run(spec, Options{
			Dir:        dir,
			Shards:     2,
			Hosts:      []Host{{Name: "a"}, {Name: "b"}},
			Transports: map[string]Transport{"local": workerTransport()},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Failed) != 0 {
			b.Fatalf("failed ranges %v", rep.Failed)
		}
	}
}
