package experiments

import (
	"math"
	"testing"

	"fairbench/internal/corrupt"
	"fairbench/internal/synth"
)

func TestCorrectnessFairnessShape(t *testing.T) {
	src := synth.COMPAS(1200, 1)
	rows, err := CorrectnessFairness(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 { // LR + 18 variants
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0].Approach != "LR" || rows[0].Overhead != 0 {
		t.Fatalf("baseline row: %+v", rows[0])
	}
	for _, r := range rows {
		if r.Correct.Accuracy < 0.3 || r.Correct.Accuracy > 1 {
			t.Fatalf("%s: accuracy %v implausible", r.Approach, r.Correct.Accuracy)
		}
		for _, v := range []float64{r.Fair.DIStar, r.Fair.TPRB, r.Fair.TNRB, r.Fair.ID, r.Fair.TE} {
			if v < -1e-9 || v > 1+1e-9 || math.IsNaN(v) {
				t.Fatalf("%s: fairness score out of [0,1]: %v", r.Approach, v)
			}
		}
	}
}

func TestEveryApproachImprovesItsTarget(t *testing.T) {
	// The paper's core Figure 7 claim: every approach improves the metric
	// it targets relative to the fairness-unaware baseline (allowing a
	// small sampling slack).
	src := synth.COMPAS(3000, 2)
	rows, err := CorrectnessFairness(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := rows[0]
	for _, r := range rows[1:] {
		if len(r.Targets) == 0 {
			continue
		}
		got := targetScore(r)
		baseRow := base
		baseRow.Targets = r.Targets
		want := targetScore(baseRow)
		if got < want-0.05 {
			t.Errorf("%s: targeted metric %s = %.3f below baseline %.3f",
				r.Approach, r.Targets[0], got, want)
		}
	}
}

func TestScalabilityRows(t *testing.T) {
	src := synth.COMPAS(1500, 1)
	series, err := ScalabilityRows(src, []int{300, 800}, []string{"KamCal-DP", "Hardt-EO"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, pts := range series {
		if len(pts) != 2 {
			t.Fatalf("%s: %d points", name, len(pts))
		}
		for _, p := range pts {
			if p.Overhead < 0 {
				t.Fatalf("%s: negative overhead", name)
			}
		}
	}
}

func TestScalabilityAttrs(t *testing.T) {
	src := synth.Adult(1200, 1)
	series, err := ScalabilityAttrs(src, []int{2, 5}, []string{"Feld-DP"}, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series["Feld-DP"]) != 2 {
		t.Fatalf("points: %d", len(series["Feld-DP"]))
	}
}

func TestRobustness(t *testing.T) {
	src := synth.COMPAS(1500, 1)
	results, err := Robustness(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("templates: %d", len(results))
	}
	clean, err := CorrectnessFairness(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Template < corrupt.T1 || res.Template > corrupt.T3 {
			t.Fatalf("template: %v", res.Template)
		}
		deltas := Deltas(clean, res)
		if len(deltas) != len(res.Rows) {
			t.Fatalf("deltas: %d vs %d rows", len(deltas), len(res.Rows))
		}
	}
}

func TestModelSensitivitySpreads(t *testing.T) {
	src := synth.Adult(1200, 1)
	rows, err := ModelSensitivity(src, []string{"Feld-DP", "KamKar-DP"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(ModelNames) {
		t.Fatalf("rows: %d", len(rows))
	}
	spreads := Spreads(rows)
	if len(spreads) != 2 {
		t.Fatalf("spreads: %d", len(spreads))
	}
	for _, s := range spreads {
		if s.AccSpread < 0 || s.DISpread < 0 {
			t.Fatalf("negative spread: %+v", s)
		}
		if len(s.AccByModel) != len(ModelNames) {
			t.Fatalf("models covered: %d", len(s.AccByModel))
		}
	}
}

func TestCrossValidate(t *testing.T) {
	src := synth.German(600, 1)
	rows, err := CrossValidate(src, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.Correct.Accuracy <= 0 || r.Correct.Accuracy > 1 {
			t.Fatalf("%s: CV accuracy %v", r.Approach, r.Correct.Accuracy)
		}
	}
}

func TestStability(t *testing.T) {
	src := synth.COMPAS(900, 1)
	rows, err := Stability(src, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.AccStd < 0 || math.IsNaN(r.AccStd) {
			t.Fatalf("%s: std %v", r.Approach, r.AccStd)
		}
	}
}

func TestDataEfficiency(t *testing.T) {
	src := synth.COMPAS(1500, 1)
	series, err := DataEfficiency(src, []int{100, 400}, []string{"LR", "KamCal-DP"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, pts := range series {
		if len(pts) != 2 {
			t.Fatalf("%s: %d points", name, len(pts))
		}
		if pts[0].Size != 100 || pts[1].Size != 400 {
			t.Fatalf("%s: sizes %d %d", name, pts[0].Size, pts[1].Size)
		}
	}
}

func TestExtensions(t *testing.T) {
	src := synth.COMPAS(1200, 1)
	rows, err := Extensions(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // LR + 3 appendix variants
		t.Fatalf("rows: %d", len(rows))
	}
	base := rows[0]
	for _, r := range rows[1:] {
		if len(r.Targets) == 0 {
			continue
		}
		got := targetScore(r)
		baseRow := base
		baseRow.Targets = r.Targets
		if got < targetScore(baseRow)-0.05 {
			t.Errorf("%s: targeted metric below baseline", r.Approach)
		}
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	src := synth.COMPAS(800, 1)
	r1, err := CorrectnessFairness(src, 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CorrectnessFairness(src, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i].Correct.Accuracy != r2[i].Correct.Accuracy ||
			r1[i].Fair.DIStar != r2[i].Fair.DIStar {
			t.Fatalf("%s: non-deterministic metrics", r1[i].Approach)
		}
	}
}
