package experiments

import (
	"fairbench/internal/corrupt"
	"fairbench/internal/registry"
	"fairbench/internal/rng"
	"fairbench/internal/synth"
)

// RobustnessResult pairs an error template with the full evaluation rows
// produced when every approach trains on the corrupted data but is tested
// on clean data — the Section 4.4 protocol (data-quality issues distort
// the training distribution; the target population stays clean).
type RobustnessResult struct {
	Template corrupt.Template
	Rows     []Row
}

// Robustness reproduces Figure 9: COMPAS corrupted by templates T1-T3 with
// the paper's 50%/10% disproportionate rates. Corruption is cheap and
// happens when the grid is materialized; the expensive (template ×
// approach) grid then fans out as one flat job list so all three templates
// train concurrently.
func Robustness(src *synth.Source, seed int64) ([]RobustnessResult, error) {
	if out, ok, err := specOutput(src, seed, Spec{Experiment: "fig9"}); ok {
		if err != nil {
			return nil, err
		}
		return out.Robustness, nil
	}
	g, err := robustnessGrid(src, seed)
	if err != nil {
		return nil, err
	}
	out, err := g.RunAll()
	if err != nil {
		return nil, err
	}
	return out.Robustness, nil
}

func robustnessGrid(src *synth.Source, seed int64) (*Grid, error) {
	train, test := src.Data.Split(0.7, rng.New(seed))
	templates := []corrupt.Template{corrupt.T1, corrupt.T2, corrupt.T3}
	slices := make([]splitPair, len(templates))
	for i, tmpl := range templates {
		d, err := corrupt.ApplyCOMPAS(train, tmpl, seed+int64(tmpl))
		if err != nil {
			return nil, err
		}
		slices[i] = splitPair{train: d, test: test}
	}
	names := append([]string{"LR"}, registry.Names...)
	return metricGrid(slices, names, src.Graph, seed, func(int) int64 { return seed },
		func(g *Grid, cells []Cell) (*Output, error) {
			rows, err := cellRows(cells)
			if err != nil {
				return nil, err
			}
			out := make([]RobustnessResult, len(templates))
			for ti, tmpl := range templates {
				tr := rows[ti*len(names) : (ti+1)*len(names)]
				applyOverhead(tr, tr[0].Seconds)
				out[ti] = RobustnessResult{Template: tmpl, Rows: tr}
			}
			return &Output{Robustness: out}, nil
		}), nil
}

// RobustnessDelta compares corrupted-training rows against clean-training
// rows approach by approach, returning accuracy and target-fairness drops.
type RobustnessDelta struct {
	Approach     string
	Template     corrupt.Template
	AccuracyDrop float64
	// TargetFairDrop is the drop on the first metric the approach
	// optimizes (0 for the baseline).
	TargetFairDrop float64
}

// Deltas computes per-approach degradation between a clean run and a
// robustness run.
func Deltas(clean []Row, dirty RobustnessResult) []RobustnessDelta {
	byName := map[string]Row{}
	for _, r := range clean {
		byName[r.Approach] = r
	}
	var out []RobustnessDelta
	for _, r := range dirty.Rows {
		c, ok := byName[r.Approach]
		if !ok {
			continue
		}
		d := RobustnessDelta{
			Approach:     r.Approach,
			Template:     dirty.Template,
			AccuracyDrop: c.Correct.Accuracy - r.Correct.Accuracy,
		}
		if len(r.Targets) > 0 {
			d.TargetFairDrop = targetScore(c) - targetScore(r)
		}
		out = append(out, d)
	}
	return out
}

// targetScore reads the normalized value of the approach's first targeted
// metric.
func targetScore(r Row) float64 {
	if len(r.Targets) == 0 {
		return 0
	}
	switch r.Targets[0] {
	case "DI*":
		return r.Fair.DIStar
	case "1-|TPRB|":
		return r.Fair.TPRB
	case "1-|TNRB|":
		return r.Fair.TNRB
	case "1-ID":
		return r.Fair.ID
	case "1-|TE|":
		return r.Fair.TE
	default:
		return 0
	}
}
