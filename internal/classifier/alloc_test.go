package classifier

import (
	"sync"
	"testing"
)

// TestFitLeavesReceiverConfigUntouched pins the defaults-into-locals
// contract: Fit must not write resolved defaults (or anything else) back
// into the receiver's configuration fields, so a zero-value model is
// reusable and two goroutines may Fit models built from one shared
// factory without racing on field writes.
func TestFitLeavesReceiverConfigUntouched(t *testing.T) {
	x, y := linearlySeparable(60, 5)
	xor, xy := xorData(60, 5)

	lr := &LogisticRegression{}
	if err := lr.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if lr.MaxIter != 0 || lr.Step != 0 || lr.L2 != 0 {
		t.Fatalf("LogisticRegression.Fit mutated config: %+v", lr)
	}

	svm := &LinearSVM{}
	if err := svm.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if svm.Lambda != 0 || svm.Epochs != 0 {
		t.Fatalf("LinearSVM.Fit mutated config: %+v", svm)
	}

	mlp := &MLP{}
	if err := mlp.Fit(xor, xy, nil); err != nil {
		t.Fatal(err)
	}
	if mlp.Hidden != 0 || mlp.Epochs != 0 || mlp.Step != 0 || mlp.Batch != 0 {
		t.Fatalf("MLP.Fit mutated config: %+v", mlp)
	}
	if mlp.PredictProba(xor[0]) == 0.5 && mlp.PredictProba(xor[1]) == 0.5 {
		t.Fatal("zero-value MLP must still predict with resolved defaults")
	}

	knn := &KNN{}
	if err := knn.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if knn.K != 0 {
		t.Fatalf("KNN.Fit mutated config: %+v", knn)
	}
	if p := knn.PredictProba(x[0]); p < 0 || p > 1 {
		t.Fatalf("zero-value kNN prediction out of range: %v", p)
	}

	tree := &DecisionTree{}
	if err := tree.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if tree.MaxDepth != 0 || tree.MinLeaf != 0 {
		t.Fatalf("DecisionTree.Fit mutated config: %+v", tree)
	}

	rf := &RandomForest{}
	if err := rf.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if rf.Trees != 0 || rf.MaxDepth != 0 {
		t.Fatalf("RandomForest.Fit mutated config: %+v", rf)
	}
}

// TestConcurrentFitSharedBacking trains every model family concurrently
// on the SAME design matrix — the zero-copy sharing pattern the grid
// runner relies on when cells split one memoized dataset into views.
// Run under -race (CI does), this pins that training only reads shared
// rows.
func TestConcurrentFitSharedBacking(t *testing.T) {
	x, y := linearlySeparable(120, 9)
	factories := []func() Classifier{
		func() Classifier { return NewLogistic() },
		func() Classifier { return NewSVM() },
		func() Classifier { return NewKNN() },
		func() Classifier { return NewTree() },
		func() Classifier { return NewMLP() },
	}
	var wg sync.WaitGroup
	errs := make([]error, len(factories)*2)
	for k := 0; k < len(errs); k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := factories[k%len(factories)]()
			if err := c.Fit(x, y, nil); err != nil {
				errs[k] = err
				return
			}
			c.PredictProba(x[0])
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestFitAllocationBounds pins the allocation-free hot loops: a logistic
// fit allocates a fixed handful of buffers (Adam state, weight vector)
// regardless of MaxIter — per-iteration allocations are zero.
func TestFitAllocationBounds(t *testing.T) {
	x, y := linearlySeparable(200, 3)
	long := testing.AllocsPerRun(3, func() {
		lr := &LogisticRegression{MaxIter: 64}
		if err := lr.Fit(x, y, nil); err != nil {
			t.Fatal(err)
		}
	})
	short := testing.AllocsPerRun(3, func() {
		lr := &LogisticRegression{MaxIter: 1}
		if err := lr.Fit(x, y, nil); err != nil {
			t.Fatal(err)
		}
	})
	if long != short {
		t.Fatalf("logreg fit allocates per iteration: %v allocs at 64 iters vs %v at 1 (one Adam step must be allocation-free)", long, short)
	}
	if long > 16 {
		t.Fatalf("logreg fit allocates too much: %v allocs (want <= 16 fixed buffers)", long)
	}
}
