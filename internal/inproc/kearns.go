package inproc

import (
	"fmt"
	"math"

	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/matrix"
	"fairbench/internal/optimize"
)

// Kearns implements Kearns et al.'s subgroup-fairness learner for
// predictive equality (the evaluated Kearns^pe variant): the false
// positive rate of every subgroup in a rich class G must approximately
// match the population FPR. Training is the fictitious-play dynamic of the
// original: a learner best-responds with a cost-sensitive classifier while
// an auditor finds the currently worst-violating subgroup and reweights
// it; the final model averages the learner's iterates.
//
// The subgroup class G contains conjunctions of up to two conditions over
// the sensitive attribute and the (binarized) dataset attributes.
type Kearns struct {
	// Gamma is the violation tolerance (source-code default 0.005).
	Gamma float64
	// Rounds is the number of fictitious-play iterations (default 8).
	Rounds int
	// Eta scales the auditor's reweighting (default 2.0).
	Eta float64

	base    linearBase
	models  [][]float64 // learner iterates (weights incl. intercept)
	subDefs []subgroup
}

type subgroup struct {
	desc  string
	match func(x []float64, s int) bool
}

// Name implements fair.Approach.
func (k *Kearns) Name() string { return "Kearns-PE" }

// Stage implements fair.Approach.
func (k *Kearns) Stage() fair.Stage { return fair.StageIn }

// Targets implements fair.Approach: predictive equality equalizes FPR,
// i.e. the TNR balance.
func (k *Kearns) Targets() []fair.Metric { return []fair.Metric{fair.MetricTNRB} }

// buildSubgroups enumerates the audit class over the training data:
// {S=0, S=1} × {attr above/below median, each categorical value}, plus the
// single-condition groups.
func (k *Kearns) buildSubgroups(train *dataset.Dataset) []subgroup {
	var conds []subgroup
	for si := 0; si < 2; si++ {
		s := si
		conds = append(conds, subgroup{
			desc:  fmt.Sprintf("S=%d", s),
			match: func(_ []float64, sv int) bool { return sv == s },
		})
	}
	for j, a := range train.Attrs {
		j := j
		if a.Kind == dataset.Numeric {
			col := train.Column(j)
			var sum float64
			for _, v := range col {
				sum += v
			}
			med := sum / float64(len(col))
			conds = append(conds, subgroup{
				desc:  fmt.Sprintf("%s<=%.3g", a.Name, med),
				match: func(x []float64, _ int) bool { return x[j] <= med },
			})
		} else {
			for v := 0; v < a.Card && v < 4; v++ {
				v := float64(v)
				conds = append(conds, subgroup{
					desc:  fmt.Sprintf("%s=%v", a.Name, v),
					match: func(x []float64, _ int) bool { return x[j] == v },
				})
			}
		}
	}
	// Pairwise conjunctions of a sensitive condition with an attribute
	// condition (the "gerrymandered" subgroups of the paper's title).
	out := append([]subgroup(nil), conds...)
	for si := 0; si < 2; si++ {
		s := si
		for _, c := range conds[2:] {
			c := c
			out = append(out, subgroup{
				desc: fmt.Sprintf("S=%d & %s", s, c.desc),
				match: func(x []float64, sv int) bool {
					return sv == s && c.match(x, sv)
				},
			})
		}
	}
	return out
}

// Fit implements fair.Approach.
func (k *Kearns) Fit(train *dataset.Dataset) error {
	if k.Gamma == 0 {
		k.Gamma = 0.005
	}
	if k.Rounds == 0 {
		k.Rounds = 8
	}
	if k.Eta == 0 {
		k.Eta = 2.0
	}
	k.base.includeS = true
	x := k.base.designMatrix(train)
	y := train.Y
	n := len(x)
	dim := len(x[0])
	k.subDefs = k.buildSubgroups(train)

	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}
	view := newFitView(x, y)
	// Subgroup membership never changes across rounds, so the match
	// closures run once per (subgroup, tuple) here instead of once per
	// round in the auditor's scan.
	masks := make([][]bool, len(k.subDefs))
	for gi, sg := range k.subDefs {
		m := make([]bool, n)
		for i := range m {
			m[i] = sg.match(train.X[i], train.S[i])
		}
		masks[gi] = m
	}
	k.models = nil
	w := make([]float64, dim+1)
	// Running per-tuple sum of sigmoid scores across learner iterates.
	// Each round adds only the newest model's pass, in model-ascending
	// order — the same fold as rescoring every iterate from scratch, at
	// O(rounds) instead of O(rounds²) affine passes.
	scoreSum := make([]float64, n)
	preds := make([]int, n)
	for round := 0; round < k.Rounds; round++ {
		// Learner best response: weighted logistic regression.
		// Gradient-only weighted logistic objective: Adam discards the
		// value, so the per-tuple log-loss terms are never computed. The
		// tuple weights are fixed within a round, so their total is summed
		// once here (same ascending fold the per-iteration loop used).
		var tw float64
		for _, wi := range weights {
			tw += wi
		}
		obj := func(wv, grad []float64) float64 {
			for j := range grad {
				grad[j] = 0
			}
			view.fillZ(wv)
			view.fillP()
			d := len(wv) - 1
			gd := grad[:d]
			gb := view.gbuf()
			var gInt float64
			for i, p := range view.p {
				yi := float64(y[i])
				g := weights[i] * (p - yi)
				gb[i] = g
				gInt += g
			}
			if view.flat {
				view.dm.ScatterRows(gd, gb)
			} else {
				for i, g := range gb {
					matrix.AccumulateInto(gd, g, x[i])
				}
			}
			grad[d] += gInt
			if tw > 0 {
				for j := range grad {
					grad[j] /= tw
				}
			}
			return 0
		}
		w, _ = optimize.Adam(obj, w, optimize.AdamConfig{MaxIter: 250})
		k.models = append(k.models, append([]float64(nil), w...))

		// Auditor: find the subgroup with the largest alpha-weighted FPR
		// violation under the averaged model so far.
		view.fillZ(w)
		view.fillP()
		for i, p := range view.p {
			scoreSum[i] += p
		}
		nm := float64(len(k.models))
		for i, s := range scoreSum {
			if s/nm >= 0.5 {
				preds[i] = 1
			} else {
				preds[i] = 0
			}
		}
		popFP, popN := 0.0, 0.0
		for i := range x {
			if y[i] == 0 {
				popN++
				if preds[i] == 1 {
					popFP++
				}
			}
		}
		popFPR := 0.0
		if popN > 0 {
			popFPR = popFP / popN
		}
		worst := -1
		worstViol := k.Gamma
		var worstDir float64
		for gi := range k.subDefs {
			mask := masks[gi]
			var fp, neg, size float64
			for i := range x {
				if !mask[i] {
					continue
				}
				size++
				if y[i] == 0 {
					neg++
					if preds[i] == 1 {
						fp++
					}
				}
			}
			if neg < 10 {
				continue
			}
			alpha := size / float64(n)
			fpr := fp / neg
			viol := alpha * math.Abs(fpr-popFPR)
			if viol > worstViol {
				worstViol = viol
				worst = gi
				worstDir = fpr - popFPR
			}
		}
		if worst < 0 {
			break // within tolerance everywhere
		}
		// Reweight: raise the cost of negatives in the violating subgroup
		// (to push its FPR down) or lower it (to let it rise).
		mask := masks[worst]
		for i := range x {
			if y[i] == 0 && mask[i] {
				if worstDir > 0 {
					weights[i] *= k.Eta
				} else {
					weights[i] /= k.Eta
				}
			}
		}
		// Renormalize the negatives' total weight back to the negative
		// count so the fictitious play only shifts FPR pressure between
		// subgroups without shifting the global class prior (unchecked
		// prior drift collapses the learner to a constant classifier).
		var negSum, negN float64
		for i := range x {
			if y[i] == 0 {
				negSum += weights[i]
				negN++
			}
		}
		if negSum > 0 {
			scale := negN / negSum
			for i := range x {
				if y[i] == 0 {
					weights[i] = math.Min(8, math.Max(1.0/8, weights[i]*scale))
				}
			}
		}
	}
	return nil
}

// Predict implements fair.Approach.
func (k *Kearns) Predict(test *dataset.Dataset) ([]int, error) {
	if len(k.models) == 0 {
		return nil, fmt.Errorf("%s: not fitted", k.Name())
	}
	out := make([]int, test.Len())
	for i := range out {
		out[i] = k.PredictOne(test.X[i], test.S[i])
	}
	return out, nil
}

// PredictOne implements fair.Approach.
func (k *Kearns) PredictOne(x []float64, s int) int {
	row := k.base.row(x, s)
	var sum float64
	for _, w := range k.models {
		d := len(w) - 1
		z := w[d]
		for j, v := range row {
			if j < d {
				z += w[j] * v
			}
		}
		sum += sigmoid(z)
	}
	if sum/float64(len(k.models)) >= 0.5 {
		return 1
	}
	return 0
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// NewKearns returns the evaluated Kearns^pe approach.
func NewKearns() fair.Approach { return &Kearns{} }
