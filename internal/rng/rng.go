// Package rng provides deterministic, seedable random-number utilities used
// throughout the benchmark. Every stochastic component in the repository
// (dataset synthesis, resampling, randomized post-processing, error
// injection) draws from an explicit *RNG so that experiments reproduce
// bit-for-bit across runs.
package rng

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand.Rand with the distribution helpers the benchmark
// needs. It is NOT safe for concurrent use: concurrent jobs must never
// share an instance. A runner job that needs a generator derives its own
// private one from its job index with Derive; sequential call trees can
// split per-callee instances with Split.
type RNG struct {
	r *rand.Rand
}

// New returns a deterministic RNG seeded with seed.
func New(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Derive returns an RNG whose stream is a pure function of (seed, id) and
// statistically independent across ids: the pair is mixed through a
// splitmix64 finalizer before seeding, so adjacent ids (the common case —
// job indices 0..n-1 of one runner.Run call) do not yield correlated
// streams the way New(seed+id) would. It is the utility for per-job
// randomness under parallel execution: one Derive call per job index,
// never a shared instance across goroutines. (The current experiment
// drivers seed approaches through registry.Config instead and need no
// job-local generator.)
func Derive(seed, id int64) *RNG {
	z := uint64(seed) + (uint64(id)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return New(int64(z >> 1))
}

// Split derives an independent child RNG from this one. The child's stream
// is a pure function of the parent's state at the point of the call, so a
// fixed call sequence yields fixed substreams.
func (g *RNG) Split() *RNG {
	return New(g.r.Int63())
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// Bernoulli returns 1 with probability p and 0 otherwise.
func (g *RNG) Bernoulli(p float64) int {
	if g.r.Float64() < p {
		return 1
	}
	return 0
}

// Categorical samples an index from the (not necessarily normalized)
// non-negative weight vector w. A zero-sum weight vector yields index 0.
func (g *RNG) Categorical(w []float64) int {
	var total float64
	for _, v := range w {
		total += v
	}
	if total <= 0 {
		return 0
	}
	u := g.r.Float64() * total
	var acc float64
	for i, v := range w {
		acc += v
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}

// Poisson samples from a Poisson distribution with rate lambda using
// Knuth's method (adequate for the small rates used in data synthesis).
func (g *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 { // numerical guard for extreme rates
			return k
		}
	}
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes idx in place.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// SampleWeighted draws k indices (with replacement) from the weight vector
// w using an alias-free linear scan; suitable for the modest k used by the
// resampling pre-processors.
func (g *RNG) SampleWeighted(w []float64, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = g.Categorical(w)
	}
	return out
}

// SampleWithoutReplacement draws k distinct indices uniformly from [0,n).
// If k >= n, it returns a permutation of all n indices.
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	p := g.r.Perm(n)
	if k > n {
		k = n
	}
	return p[:k]
}
