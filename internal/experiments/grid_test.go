package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fairbench/internal/shard"
	"fairbench/internal/synth"
)

// zeroTiming clears every wall-clock-derived field of an output, leaving
// exactly the data the determinism contract covers. The scalability
// payload is pure timing, so only its shape (names and x values) remains.
func zeroTiming(out *Output) {
	zeroRows := func(rows []Row) {
		for i := range rows {
			rows[i].Seconds, rows[i].Overhead = 0, 0
		}
	}
	zeroRows(out.Rows)
	for i := range out.Robustness {
		zeroRows(out.Robustness[i].Rows)
	}
	for i := range out.Sensitivity {
		out.Sensitivity[i].Row.Seconds, out.Sensitivity[i].Row.Overhead = 0, 0
	}
	for _, pts := range out.Efficiency {
		for i := range pts {
			pts[i].Row.Seconds, pts[i].Row.Overhead = 0, 0
		}
	}
	for _, pts := range out.Scalability {
		for i := range pts {
			pts[i].Overhead = 0
		}
	}
}

// canonical marshals an output with timing zeroed, for byte comparison.
func canonical(t *testing.T, out *Output) []byte {
	t.Helper()
	zeroTiming(out)
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// equivalenceSpecs is one small grid per experiment driver — all seven
// drivers of the harness (fig7, fig9, fig10, cv, fig22, fig23, fig8) plus
// the fig15 appendix grid, at sizes that keep the suite fast.
func equivalenceSpecs() []Spec {
	return []Spec{
		{Experiment: "fig7", Dataset: "german", N: 200, Seed: 5},
		{Experiment: "fig9", Dataset: "compas", N: 400, Seed: 3},
		{Experiment: "fig10", Dataset: "adult", N: 400, Seed: 2, Names: []string{"Feld-DP", "KamKar-DP"}},
		{Experiment: "cv", Dataset: "german", N: 240, Seed: 7, K: 3},
		{Experiment: "fig22", Dataset: "adult", N: 300, Seed: 4, Runs: 3},
		{Experiment: "fig23", Dataset: "compas", N: 400, Seed: 6, Sizes: []int{80, 160}, Names: []string{"LR", "KamCal-DP"}},
		{Experiment: "fig8rows", Dataset: "compas", N: 400, Seed: 8, Sizes: []int{100, 200}, Names: []string{"KamCal-DP"}},
		{Experiment: "fig8attrs", Dataset: "adult", N: 300, Seed: 9, AttrCounts: []int{2, 4}, SampleSize: 250, Names: []string{"Feld-DP"}},
		{Experiment: "fig15", Dataset: "german", N: 200, Seed: 5},
	}
}

// TestShardMergeMatchesSerial is the PR's acceptance gate: for every
// experiment driver, running the grid as three shards — each envelope
// serialized and decoded, as it would be crossing process or host
// boundaries — and merging must produce rows byte-identical (timing
// fields excluded) to a single-process run of the same spec.
func TestShardMergeMatchesSerial(t *testing.T) {
	for _, spec := range equivalenceSpecs() {
		spec := spec
		t.Run(spec.Experiment, func(t *testing.T) {
			g, err := Open(spec)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := g.RunAll()
			if err != nil {
				t.Fatal(err)
			}
			const k = 3
			envs := make([]*shard.Envelope, k)
			for i := 0; i < k; i++ {
				env, err := RunShard(spec, i, k)
				if err != nil {
					t.Fatalf("shard %d: %v", i, err)
				}
				data, err := env.Encode()
				if err != nil {
					t.Fatalf("shard %d encode: %v", i, err)
				}
				if envs[i], err = shard.Decode(data); err != nil {
					t.Fatalf("shard %d decode: %v", i, err)
				}
			}
			merged, err := MergeShards(envs)
			if err != nil {
				t.Fatal(err)
			}
			want, got := canonical(t, serial), canonical(t, merged)
			if !bytes.Equal(want, got) {
				t.Fatalf("sharded %s diverges from serial:\nserial: %.400s\nmerged: %.400s",
					spec.Experiment, want, got)
			}
		})
	}
}

// TestDriverMatchesSpecPath pins the two entry points to each other: the
// direct driver functions and the Spec/Open path must materialize the
// same grid and produce the same rows.
func TestDriverMatchesSpecPath(t *testing.T) {
	src := synth.German(240, 7)
	rows, err := CorrectnessFairness(src, 7)
	if err != nil {
		t.Fatal(err)
	}
	out, err := mustOpen(t, Spec{Experiment: "fig7", Dataset: "german", N: 240, Seed: 7}).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	a := canonical(t, &Output{Rows: rows})
	b := canonical(t, &Output{Rows: out.Rows})
	if !bytes.Equal(a, b) {
		t.Fatal("Spec path diverges from direct driver call")
	}
}

func mustOpen(t *testing.T, spec Spec) *Grid {
	t.Helper()
	g, err := Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSpecNormalizeDefaultsAndErrors(t *testing.T) {
	ns, err := Spec{Experiment: "CV", Dataset: "German", Seed: 1}.Normalize()
	if err != nil || ns.Experiment != "cv" || ns.Dataset != "german" || ns.K != 5 {
		t.Fatalf("normalize: %+v, %v", ns, err)
	}
	ns, err = Spec{Experiment: "fig9", Seed: 1}.Normalize()
	if err != nil || ns.Dataset != "compas" {
		t.Fatalf("fig9 default dataset: %+v, %v", ns, err)
	}
	ns, err = Spec{Experiment: "fig8attrs", Seed: 1, N: 500}.Normalize()
	if err != nil || ns.SampleSize != 500 || len(ns.AttrCounts) != 5 {
		t.Fatalf("fig8attrs defaults: %+v, %v", ns, err)
	}
	for _, bad := range []Spec{
		{Experiment: "nope", Seed: 1},
		{Experiment: "fig7", Seed: 1},                        // dataset required
		{Experiment: "fig7", Dataset: "mars", Seed: 1},       // unknown dataset
		{Experiment: "cv", Dataset: "german", K: 1, Seed: 1}, // k too small
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Fatalf("spec %+v accepted", bad)
		}
	}
}

func TestGridEnumeration(t *testing.T) {
	g := mustOpen(t, Spec{Experiment: "fig7", Dataset: "german", N: 200, Seed: 1})
	if g.Len() != 19 {
		t.Fatalf("fig7 grid size %d", g.Len())
	}
	fp1, err := g.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, _ := mustOpen(t, Spec{Experiment: "fig7", Dataset: "german", N: 200, Seed: 1}).Fingerprint()
	if fp1 != fp2 {
		t.Fatal("fingerprint not deterministic across Opens")
	}
	fp3, _ := mustOpen(t, Spec{Experiment: "fig7", Dataset: "german", N: 200, Seed: 2}).Fingerprint()
	if fp1 == fp3 {
		t.Fatal("fingerprint ignores seed")
	}
	if _, err := g.Cell(19); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
	if _, err := g.RunRange(5, 3); err == nil {
		t.Fatal("inverted range accepted")
	}
	// A grid built directly from a Source has no spec to fingerprint.
	if _, err := fig7Grid(synth.German(200, 1), 1).Fingerprint(); err == nil {
		t.Fatal("sourceless grid fingerprinted")
	}
}

func TestMergeShardsRejectsForeignEnvelope(t *testing.T) {
	specA := Spec{Experiment: "fig23", Dataset: "compas", N: 300, Seed: 1, Sizes: []int{60, 120}, Names: []string{"LR"}}
	specB := specA
	specB.Seed = 2
	a0, err := RunShard(specA, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := RunShard(specA, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := RunShard(specB, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards([]*shard.Envelope{a0, b1}); err == nil ||
		!strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("foreign envelope accepted: %v", err)
	}
	if _, err := MergeShards([]*shard.Envelope{a0}); err == nil {
		t.Fatal("incomplete shard set accepted")
	}
	// Tampering with an envelope's spec must break the fingerprint check.
	tampered := *a1
	tampered.Spec = json.RawMessage(strings.Replace(string(a1.Spec), `"seed":1`, `"seed":9`, 1))
	if _, err := MergeShards([]*shard.Envelope{a0, &tampered}); err == nil ||
		!strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("tampered spec accepted: %v", err)
	}
	// And the happy path still merges.
	if _, err := MergeShards([]*shard.Envelope{a0, a1}); err != nil {
		t.Fatalf("valid merge failed: %v", err)
	}
}

// TestFingerprintIgnoresUnusedSpecFields pins the Normalize contract:
// stray values in fields an experiment ignores (here Runs and K on a
// fig7 spec) must not change the grid identity, so shards produced by
// two callers whose specs differ only in dead fields still merge.
func TestFingerprintIgnoresUnusedSpecFields(t *testing.T) {
	clean := Spec{Experiment: "fig7", Dataset: "german", N: 200, Seed: 5}
	noisy := clean
	noisy.Runs, noisy.K, noisy.SampleSize = 10, 7, 999
	noisy.Sizes, noisy.AttrCounts, noisy.Names = []int{1}, []int{2}, []string{"LR"}
	fpClean, err := mustOpen(t, clean).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpNoisy, err := mustOpen(t, noisy).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpClean != fpNoisy {
		t.Fatal("fingerprint depends on fields fig7 ignores")
	}
	a, err := RunShard(clean, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShard(noisy, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards([]*shard.Envelope{a, b}); err != nil {
		t.Fatalf("equal grids from differently-noised specs must merge: %v", err)
	}
}

// TestScaleShardsAlignToSlices pins the timing-grid planner: a slice's
// baseline column and approach columns must land in the same shard, so
// overhead subtraction never mixes measurements from different machines.
func TestScaleShardsAlignToSlices(t *testing.T) {
	spec := Spec{Experiment: "fig8attrs", Dataset: "adult", N: 300, Seed: 9, SampleSize: 250}
	g := mustOpen(t, spec)
	cols := len(specNames(g.Spec())) + 1
	if g.Len()%cols != 0 {
		t.Fatalf("grid %d not a whole number of slices (cols=%d)", g.Len(), cols)
	}
	for _, k := range []int{2, 3, 4} {
		ranges, err := PlanShards(spec, k)
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		for _, r := range ranges {
			if r.Start%cols != 0 || r.End%cols != 0 {
				t.Fatalf("k=%d: range %+v splits a slice (cols=%d)", k, r, cols)
			}
			covered += r.Len()
		}
		if covered != g.Len() {
			t.Fatalf("k=%d: plan covers %d of %d", k, covered, g.Len())
		}
	}
}

// TestShardWorkIsDisjoint checks the planner contract at the grid level:
// the three shards of a spec partition the job indices exactly.
func TestShardWorkIsDisjoint(t *testing.T) {
	spec := Spec{Experiment: "cv", Dataset: "german", N: 240, Seed: 7, K: 3}
	ranges, err := PlanShards(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := mustOpen(t, spec)
	covered := 0
	for i, r := range ranges {
		if i > 0 && r.Start != ranges[i-1].End {
			t.Fatalf("ranges not contiguous: %+v", ranges)
		}
		covered += r.Len()
	}
	if covered != g.Len() {
		t.Fatalf("plan covers %d of %d jobs", covered, g.Len())
	}
}
