package preproc

import (
	"math"
	"testing"

	"fairbench/internal/dataset"
	"fairbench/internal/stats"
	"fairbench/internal/synth"
)

// independenceGap measures |P_obs(s,y) - P(s)P(y)| summed over cells — the
// quantity Kam-Cal's reweighing drives to zero.
func independenceGap(d *dataset.Dataset) float64 {
	n := float64(d.Len())
	var cnt [2][2]float64
	var sTot, yTot [2]float64
	for i := range d.Y {
		cnt[d.S[i]][d.Y[i]]++
		sTot[d.S[i]]++
		yTot[d.Y[i]]++
	}
	var gap float64
	for s := 0; s < 2; s++ {
		for y := 0; y < 2; y++ {
			gap += math.Abs(cnt[s][y]/n - (sTot[s]/n)*(yTot[y]/n))
		}
	}
	return gap
}

func TestKamCalIndependence(t *testing.T) {
	src := synth.COMPAS(4000, 1)
	before := independenceGap(src.Data)
	k := &KamCal{Resample: true, Seed: 2}
	out, err := k.Repair(src.Data)
	if err != nil {
		t.Fatal(err)
	}
	after := independenceGap(out)
	if after > before/3 {
		t.Fatalf("reweighed resampling must shrink the S-Y dependence: %v -> %v", before, after)
	}
	if out.Len() != src.Data.Len() {
		t.Fatal("resampling must preserve |D|")
	}
}

func TestKamCalWeights(t *testing.T) {
	src := synth.COMPAS(3000, 2)
	k := &KamCal{}
	w := k.Weights(src.Data)
	// Weighted joint distribution must be (almost exactly) independent.
	n := 0.0
	var cnt [2][2]float64
	var sTot, yTot [2]float64
	for i := range w {
		s, y := src.Data.S[i], src.Data.Y[i]
		cnt[s][y] += w[i]
		sTot[s] += w[i]
		yTot[y] += w[i]
		n += w[i]
	}
	for s := 0; s < 2; s++ {
		for y := 0; y < 2; y++ {
			gap := math.Abs(cnt[s][y]/n - (sTot[s]/n)*(yTot[y]/n))
			if gap > 1e-6 {
				t.Fatalf("weighted cell (%d,%d) gap %v", s, y, gap)
			}
		}
	}
}

func TestFeldMarginalEquality(t *testing.T) {
	src := synth.Adult(4000, 3)
	f := &Feld{Lambda: 1}
	out, err := f.Repair(src.Data)
	if err != nil {
		t.Fatal(err)
	}
	// After full repair, each numeric attribute's group quantiles must
	// coincide (compare a few quantiles of Hours_per_week, column 7).
	var c0, c1 []float64
	for i := range out.X {
		if out.S[i] == 1 {
			c1 = append(c1, out.X[i][7])
		} else {
			c0 = append(c0, out.X[i][7])
		}
	}
	for _, q := range []float64{0.25, 0.5, 0.75} {
		d := math.Abs(stats.Quantile(c0, q) - stats.Quantile(c1, q))
		if d > 1.0 { // hours scale ~[1,99]
			t.Fatalf("repaired quantile %v differs by %v", q, d)
		}
	}
}

func TestFeldTransformRowConsistency(t *testing.T) {
	src := synth.Adult(2000, 4)
	f := &Feld{Lambda: 1}
	out, err := f.Repair(src.Data)
	if err != nil {
		t.Fatal(err)
	}
	// TransformRow on a training tuple must reproduce the repaired value.
	for _, i := range []int{0, 17, 399} {
		got := f.TransformRow(src.Data.X[i], src.Data.S[i])
		for j := range got {
			if math.Abs(got[j]-out.X[i][j]) > 1e-9 {
				t.Fatalf("tuple %d attr %d: transform %v vs repair %v", i, j, got[j], out.X[i][j])
			}
		}
	}
	// Unfitted transform is the identity.
	var fresh Feld
	x := []float64{1, 2}
	got := fresh.TransformRow(x, 0)
	if got[0] != 1 || got[1] != 2 {
		t.Fatal("unfitted TransformRow must be identity")
	}
}

func TestCalmonReducesGap(t *testing.T) {
	src := synth.COMPAS(3000, 5)
	u0, p0 := src.Data.BaseRates()
	c := &Calmon{Seed: 6}
	out, err := c.Repair(src.Data)
	if err != nil {
		t.Fatal(err)
	}
	u1, p1 := out.BaseRates()
	if math.Abs(p1-u1) > math.Abs(p0-u0)/2 {
		t.Fatalf("Calmon must shrink the label-rate gap: %v -> %v", p0-u0, p1-u1)
	}
}

func TestZhaWuStratumRepair(t *testing.T) {
	src := synth.COMPAS(4000, 7)
	z := &ZhaWu{Graph: src.Graph, PathSpecific: true}
	out, err := z.Repair(src.Data)
	if err != nil {
		t.Fatal(err)
	}
	u, p := out.BaseRates()
	if math.Abs(p-u) > 0.03 {
		t.Fatalf("PSF repair must equalize overall label rates: gap %v", p-u)
	}
	// DCE leaves the (indirect) marginal gap mostly in place.
	z2 := &ZhaWu{Graph: src.Graph, PathSpecific: false}
	out2, err := z2.Repair(src.Data)
	if err != nil {
		t.Fatal(err)
	}
	u2, p2 := out2.BaseRates()
	if math.Abs(p2-u2) < 0.01 {
		t.Fatal("DCE must not remove the indirect effect entirely")
	}
}

func TestZhaWuNilGraph(t *testing.T) {
	src := synth.COMPAS(500, 8)
	z := &ZhaWu{PathSpecific: true}
	out, err := z.Repair(src.Data)
	if err != nil {
		t.Fatal(err)
	}
	// Without a graph there are no mediators: everything is one stratum,
	// still repaired for the marginal gap by the psf pass.
	u, p := out.BaseRates()
	if math.Abs(p-u) > 0.05 {
		t.Fatalf("marginal repair failed: gap %v", p-u)
	}
}

// stratumDependence reports the mean within-stratum group label-rate gap
// over (Age, Prior) strata — the conditional dependence Salimi removes.
func stratumDependence(d *dataset.Dataset) float64 {
	disc := dataset.FitDiscretizer(d, 3)
	type cell struct{ n, p [2]float64 }
	m := map[int]*cell{}
	for i, row := range d.X {
		code, _ := disc.Code(row, []int{0, 2})
		c := m[code]
		if c == nil {
			c = &cell{}
			m[code] = c
		}
		c.n[d.S[i]]++
		c.p[d.S[i]] += float64(d.Y[i])
	}
	var sum, cnt float64
	for _, c := range m {
		if c.n[0] < 5 || c.n[1] < 5 {
			continue
		}
		sum += math.Abs(c.p[1]/c.n[1] - c.p[0]/c.n[0])
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / cnt
}

func TestSalimiRemovesConditionalDependence(t *testing.T) {
	src := synth.COMPAS(4000, 9)
	before := stratumDependence(src.Data)
	for _, matFac := range []bool{false, true} {
		sal := &Salimi{Inadmissible: DefaultInadmissible, UseMatFac: matFac, Seed: 10}
		out, err := sal.Repair(src.Data)
		if err != nil {
			t.Fatal(err)
		}
		after := stratumDependence(out)
		if after > before/2 {
			t.Fatalf("matFac=%v: conditional dependence %v -> %v", matFac, before, after)
		}
	}
}

func TestSalimiRepairNames(t *testing.T) {
	if (&Salimi{}).RepairName() != "Salimi-MaxSAT" {
		t.Fatal("default name")
	}
	if (&Salimi{UseMatFac: true}).RepairName() != "Salimi-MatFac" {
		t.Fatal("matfac name")
	}
}

func TestRepairOpsInvariants(t *testing.T) {
	// After applying the chosen ops, the cell rate must move to rho.
	cases := []struct {
		n0, n1 int
		rho    float64
	}{
		{10, 30, 0.5}, {30, 10, 0.5}, {20, 20, 0.25}, {5, 0, 0.4}, {0, 5, 0.4},
	}
	for _, c := range cases {
		dp, dn, ip, in, cost := repairOps(c.n0, c.n1, c.rho)
		if dp < 0 || dn < 0 || ip < 0 || in < 0 || cost < 0 {
			t.Fatalf("negative op counts for %+v", c)
		}
		n0 := c.n0 - dn + in
		n1 := c.n1 - dp + ip
		if n0+n1 == 0 {
			continue
		}
		got := float64(n1) / float64(n0+n1)
		if math.Abs(got-c.rho) > 0.15 {
			t.Fatalf("case %+v: rate after ops %v, want ~%v", c, got, c.rho)
		}
	}
}
