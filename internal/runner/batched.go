package runner

import (
	"fmt"
	"sort"
	"sync"
)

// Batch is one contiguous group of jobs sharing a preparation step —
// typically grid cells that fit on the same dataset materialization, whose
// Prepare arms the shared backing (design/batch caches) the cells then
// read concurrently. Start and End are global job indices (the same
// coordinate space as Options.Offset), so a shard of a larger grid can
// pass its clipped batches unchanged.
type Batch struct {
	Start, End int
	// Prepare runs once per batch, before any of its jobs; nil means the
	// batch needs no preparation. It must be safe to call from whichever
	// worker goroutine reaches the batch first.
	Prepare func() error
}

// RunBatched is Run for a batched job space: before a worker executes a
// job that falls inside a batch, it ensures the batch's Prepare has run
// (exactly once, via the first worker to arrive — no barrier, so workers
// never idle waiting for a batch boundary). A failed Prepare fails every
// job of its batch with the same error, which fail-fast then reports at
// the batch's lowest attempted index — exactly where the serial loop
// would have died. Jobs outside every batch run unprepared, and an empty
// batch list degenerates to Run.
//
// Determinism: Prepare must only arm sharing for work the jobs would
// otherwise each compute identically (the Batch contract mirrors
// dataset.BatchCache's), so batched results are byte-identical to
// unbatched ones.
func RunBatched[T any](n int, opts Options, batches []Batch, job func(i int) (T, error)) ([]T, error) {
	if len(batches) == 0 {
		return Run(n, opts, job)
	}
	onces := make([]sync.Once, len(batches))
	prepErrs := make([]error, len(batches))
	wrapped := func(i int) (T, error) {
		b := sort.Search(len(batches), func(k int) bool { return batches[k].End > i })
		if b < len(batches) && i >= batches[b].Start {
			onces[b].Do(func() {
				if batches[b].Prepare != nil {
					prepErrs[b] = batches[b].Prepare()
				}
			})
			if err := prepErrs[b]; err != nil {
				var zero T
				return zero, fmt.Errorf("preparing batch [%d,%d): %w", batches[b].Start, batches[b].End, err)
			}
		}
		return job(i)
	}
	return Run(n, opts, wrapped)
}
