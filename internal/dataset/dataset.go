// Package dataset implements the annotated-dataset abstraction of the paper
// (Section 2, Figure 1): a relation with schema (X, S; Y) where X is a set
// of descriptive attributes, S a binary sensitive attribute (1 = privileged,
// 0 = unprivileged), and Y a binary ground-truth label (1 = favorable).
//
// The package also provides the data-management plumbing every fair
// approach needs: train/test splitting, k-fold cross validation, weighted
// resampling, per-attribute standardization and discretization, and CSV
// import/export.
//
// # Flat layout and the view contract
//
// Datasets built by NewFlat (all package generators and Clone use it) keep
// X in one flat row-major backing array; each X[i] is a stride-spaced
// subslice of it, so scanning rows walks memory sequentially and cloning
// is a single copy. Slicing operations — Subset, Split, KFold, Sample,
// ResampleWeighted — are zero-copy: the returned dataset's rows ALIAS the
// parent's row storage (S, Y, and Weights are small and copied). The
// contract every consumer in this repository follows: derived datasets are
// read-only views; code that needs to mutate tuples takes a Clone first
// (every repairer and corruption template does). This is what lets one
// synthesized dataset back an entire experiment grid across worker
// goroutines without a byte of row copying.
package dataset

import (
	"fmt"
	"sync/atomic"

	"fairbench/internal/matrix"
	"fairbench/internal/rng"
)

// AttrKind distinguishes numeric attributes (repaired by quantile
// alignment, discretized by equal-width binning) from categorical ones
// (small integer codes; stratified directly).
type AttrKind int

const (
	// Numeric marks a continuous or ordinal attribute.
	Numeric AttrKind = iota
	// Categorical marks a finite-domain attribute coded as 0..Card-1.
	Categorical
)

// Attr describes one attribute of X.
type Attr struct {
	Name string
	Kind AttrKind
	// Card is the domain size for Categorical attributes; ignored for
	// Numeric ones.
	Card int
}

// Dataset is an annotated dataset D with schema (X, S; Y). Rows of X are
// feature vectors; S and Y are parallel slices. Weights, when non-nil,
// carry per-tuple importance weights (used by reweighing pre-processors and
// cost-sensitive in-processing); nil means uniform weight 1.
//
// Rows of a dataset produced by a slicing operation (Subset and friends)
// alias their parent's storage — see the package comment for the view
// contract. Mutate via Clone.
type Dataset struct {
	Name    string
	Attrs   []Attr
	X       [][]float64
	S       []int
	Y       []int
	Weights []float64
	// SName and YName label the sensitive attribute and target task for
	// reporting (e.g. "Sex" and "Income>=50K" for Adult).
	SName, YName string

	// flat, when non-nil, is the matrix backing every X row contiguously
	// (X[i] == flat.Row(i)). Datasets assembled from scattered rows (views,
	// hand-built X) leave it nil; Clone always rebuilds it.
	flat *matrix.Dense

	// design, when armed via EnableDesignCache, memoizes the standardized
	// design matrix shared by a batch of grid cells fitting on this view.
	// Derived datasets (Clone, Subset, …) start without one: their rows
	// are different data, so sharing would be wrong by construction.
	design atomic.Pointer[DesignCache]

	// batch, when armed via EnableBatchCache, is the generic arm-once memo
	// batched grid cells use to share arbitrary artifacts derived
	// deterministically from this view (see BatchCache). Like design, it
	// never survives into derived datasets.
	batch atomic.Pointer[BatchCache]
}

// NewFlat returns a dataset with n zeroed tuples whose rows live in one
// flat backing array: X[i] is a view into it. Generators fill rows in
// place via X[i] (or Row).
func NewFlat(name string, attrs []Attr, n int) *Dataset {
	d := &Dataset{
		Name:  name,
		Attrs: attrs,
		S:     make([]int, n),
		Y:     make([]int, n),
		flat:  matrix.NewDense(n, len(attrs)),
	}
	d.X = d.flat.RowsView()
	return d
}

// Flat returns the contiguous backing matrix when the dataset has one
// (built by NewFlat or Clone), or nil for datasets assembled from
// scattered rows. Kernels use it to stream X without per-row indirection.
func (d *Dataset) Flat() *matrix.Dense { return d.flat }

// Row returns the feature vector of tuple i (a view; do not mutate
// without Clone).
func (d *Dataset) Row(i int) []float64 { return d.X[i] }

// Len returns the number of tuples |D|.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the number of attributes |X| (excluding S and Y).
func (d *Dataset) Dim() int { return len(d.Attrs) }

// Validate checks internal consistency and value domains. It returns an
// error describing the first violation found.
func (d *Dataset) Validate() error {
	n := len(d.X)
	if len(d.S) != n || len(d.Y) != n {
		return fmt.Errorf("dataset %s: X/S/Y length mismatch %d/%d/%d", d.Name, n, len(d.S), len(d.Y))
	}
	if d.Weights != nil && len(d.Weights) != n {
		return fmt.Errorf("dataset %s: weight length %d != %d", d.Name, len(d.Weights), n)
	}
	for i, row := range d.X {
		if len(row) != len(d.Attrs) {
			return fmt.Errorf("dataset %s: row %d has %d attrs, want %d", d.Name, i, len(row), len(d.Attrs))
		}
		if d.S[i] != 0 && d.S[i] != 1 {
			return fmt.Errorf("dataset %s: row %d has non-binary S=%d", d.Name, i, d.S[i])
		}
		if d.Y[i] != 0 && d.Y[i] != 1 {
			return fmt.Errorf("dataset %s: row %d has non-binary Y=%d", d.Name, i, d.Y[i])
		}
	}
	return nil
}

// Clone returns a deep copy of the dataset with a freshly allocated,
// contiguous flat backing — the one operation that severs every alias to
// the parent, and therefore the required first step before mutating any
// derived dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		Name:  d.Name,
		Attrs: append([]Attr(nil), d.Attrs...),
		S:     append([]int(nil), d.S...),
		Y:     append([]int(nil), d.Y...),
		SName: d.SName,
		YName: d.YName,
	}
	out.flat = matrix.NewDense(len(d.X), len(d.Attrs))
	out.X = out.flat.RowsView()
	for i, row := range d.X {
		copy(out.X[i], row)
	}
	if d.Weights != nil {
		out.Weights = append([]float64(nil), d.Weights...)
	}
	return out
}

// Weight returns the weight of tuple i (1 when Weights is nil).
func (d *Dataset) Weight(i int) float64 {
	if d.Weights == nil {
		return 1
	}
	return d.Weights[i]
}

// TotalWeight returns the sum of tuple weights (Len() when unweighted).
func (d *Dataset) TotalWeight() float64 {
	if d.Weights == nil {
		return float64(d.Len())
	}
	var s float64
	for _, w := range d.Weights {
		s += w
	}
	return s
}

// Subset returns a dataset containing the tuples at the given indices as a
// zero-copy view: the rows of the result alias this dataset's row storage
// (S, Y, and Weights are copied — they are one word per tuple). Callers
// that mutate tuples must Clone the subset first; see the package comment.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		Name:  d.Name,
		Attrs: append([]Attr(nil), d.Attrs...),
		X:     make([][]float64, len(idx)),
		S:     make([]int, len(idx)),
		Y:     make([]int, len(idx)),
		SName: d.SName,
		YName: d.YName,
	}
	if d.Weights != nil {
		out.Weights = make([]float64, len(idx))
	}
	for j, i := range idx {
		out.X[j] = d.X[i]
		out.S[j] = d.S[i]
		out.Y[j] = d.Y[i]
		if d.Weights != nil {
			out.Weights[j] = d.Weights[i]
		}
	}
	return out
}

// Split partitions the dataset into train and test views with the given
// train fraction, shuffling with g. The paper uses a random 70%-30% split.
func (d *Dataset) Split(trainFrac float64, g *rng.RNG) (train, test *Dataset) {
	n := d.Len()
	perm := g.Perm(n)
	cut := int(trainFrac * float64(n))
	if cut < 1 {
		cut = 1
	}
	if cut >= n {
		cut = n - 1
	}
	return d.Subset(perm[:cut]), d.Subset(perm[cut:])
}

// KFold returns k (train, test) view pairs for k-fold cross validation
// with a shuffled assignment. Used for the 5-fold CV tables (Figures
// 16-18).
func (d *Dataset) KFold(k int, g *rng.RNG) []struct{ Train, Test *Dataset } {
	n := d.Len()
	perm := g.Perm(n)
	folds := make([]struct{ Train, Test *Dataset }, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		testIdx := perm[lo:hi]
		trainIdx := make([]int, 0, n-(hi-lo))
		trainIdx = append(trainIdx, perm[:lo]...)
		trainIdx = append(trainIdx, perm[hi:]...)
		folds[f].Train = d.Subset(trainIdx)
		folds[f].Test = d.Subset(testIdx)
	}
	return folds
}

// Sample draws a uniform random subset view of size n without
// replacement; n >= Len returns an identity view (whole dataset, original
// order, no RNG consumed — matching the draw-nothing semantics the full
// sample always had).
func (d *Dataset) Sample(n int, g *rng.RNG) *Dataset {
	if n >= d.Len() {
		idx := make([]int, d.Len())
		for i := range idx {
			idx[i] = i
		}
		return d.Subset(idx)
	}
	return d.Subset(g.SampleWithoutReplacement(d.Len(), n))
}

// ResampleWeighted draws n tuples with replacement with probability
// proportional to w (the Kam-Cal resampling step), as a view.
func (d *Dataset) ResampleWeighted(w []float64, n int, g *rng.RNG) *Dataset {
	return d.Subset(g.SampleWeighted(w, n))
}

// ProjectAttrs returns a dataset keeping only the attributes at the given
// column indices (used by the attribute-scalability experiment, Fig 8 d-f).
// Projection reorders columns, so the result is materialized into its own
// flat backing rather than aliased.
func (d *Dataset) ProjectAttrs(cols []int) *Dataset {
	out := &Dataset{
		Name:  d.Name,
		Attrs: make([]Attr, len(cols)),
		S:     append([]int(nil), d.S...),
		Y:     append([]int(nil), d.Y...),
		SName: d.SName,
		YName: d.YName,
	}
	for j, c := range cols {
		out.Attrs[j] = d.Attrs[c]
	}
	out.flat = matrix.NewDense(d.Len(), len(cols))
	out.X = out.flat.RowsView()
	for i, row := range d.X {
		nr := out.X[i]
		for j, c := range cols {
			nr[j] = row[c]
		}
	}
	if d.Weights != nil {
		out.Weights = append([]float64(nil), d.Weights...)
	}
	return out
}

// Column returns a copy of attribute column j.
func (d *Dataset) Column(j int) []float64 {
	col := make([]float64, d.Len())
	for i, row := range d.X {
		col[i] = row[j]
	}
	return col
}

// GroupIndices returns the tuple indices of the unprivileged (S=0) and
// privileged (S=1) groups.
func (d *Dataset) GroupIndices() (unpriv, priv []int) {
	for i, s := range d.S {
		if s == 1 {
			priv = append(priv, i)
		} else {
			unpriv = append(unpriv, i)
		}
	}
	return unpriv, priv
}

// BaseRates returns P(Y=1|S=0) and P(Y=1|S=1) over the dataset, weighted.
func (d *Dataset) BaseRates() (unpriv, priv float64) {
	var n0, n1, p0, p1 float64
	for i := range d.Y {
		w := d.Weight(i)
		if d.S[i] == 1 {
			n1 += w
			if d.Y[i] == 1 {
				p1 += w
			}
		} else {
			n0 += w
			if d.Y[i] == 1 {
				p0 += w
			}
		}
	}
	if n0 > 0 {
		unpriv = p0 / n0
	}
	if n1 > 0 {
		priv = p1 / n1
	}
	return unpriv, priv
}

// FeatureMatrix returns the design matrix used by the classifiers: each
// row is X_i with S appended as the final column when includeS is true.
// The rows live in one flat backing array (a single allocation), so
// training kernels stream them sequentially. Like the slicing operations,
// the result follows the view contract: classifiers read it, they do not
// write it.
func (d *Dataset) FeatureMatrix(includeS bool) [][]float64 {
	cols := len(d.Attrs)
	if includeS {
		cols++
	}
	m := matrix.NewDense(d.Len(), cols)
	out := m.RowsView()
	for i, row := range d.X {
		copy(out[i], row)
		if includeS {
			out[i][len(row)] = float64(d.S[i])
		}
	}
	return out
}

// FeatureRow builds a single classifier input row from features x and
// sensitive value s, matching FeatureMatrix's layout.
func FeatureRow(x []float64, s int, includeS bool) []float64 {
	if !includeS {
		return x
	}
	r := make([]float64, len(x)+1)
	copy(r, x)
	r[len(x)] = float64(s)
	return r
}

// AppendFeatureRow appends the classifier input row for (x, s) to dst and
// returns the extended slice — the allocation-free FeatureRow used by
// per-tuple prediction hot loops (dst is typically a scratch buffer
// reused across calls, truncated to dst[:0] by the caller).
func AppendFeatureRow(dst, x []float64, s int, includeS bool) []float64 {
	dst = append(dst, x...)
	if includeS {
		dst = append(dst, float64(s))
	}
	return dst
}
