package fairbench

import (
	"math"
	"testing"
)

func TestFacadeQuickPath(t *testing.T) {
	src := COMPAS(1200, 1)
	train, test := Split(src.Data, 0.7, 3)
	a, err := NewApproach("KamCal-DP", src.Graph, 5)
	if err != nil {
		t.Fatal(err)
	}
	row, err := Evaluate(a, train, test, src.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if row.Approach != "KamCal-DP" || row.Stage != "pre" {
		t.Fatalf("row identity: %+v", row)
	}
	if row.Fair.DIStar <= 0 || row.Fair.DIStar > 1 {
		t.Fatalf("DI*: %v", row.Fair.DIStar)
	}
}

func TestFacadeParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(2)
	if Parallelism() != 2 {
		t.Fatalf("Parallelism() = %d after SetParallelism(2)", Parallelism())
	}
	src := German(200, 1)
	parallel, err := RunCorrectnessFairness(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(1)
	serial, err := RunCorrectnessFairness(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("row counts: %d vs %d", len(parallel), len(serial))
	}
	for i := range serial {
		if serial[i].Approach != parallel[i].Approach ||
			serial[i].Correct != parallel[i].Correct ||
			serial[i].Fair != parallel[i].Fair {
			t.Fatalf("%s: parallel facade run diverges from serial", serial[i].Approach)
		}
	}
	SetParallelism(0)
	if Parallelism() < 1 {
		t.Fatalf("default Parallelism() = %d", Parallelism())
	}
}

func TestFacadeDatasets(t *testing.T) {
	for _, src := range Sources(1) {
		if err := src.Data.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if Adult(100, 1).Data.Len() != 100 {
		t.Fatal("size override")
	}
}

func TestFacadeApproachNames(t *testing.T) {
	names := ApproachNames()
	if len(names) != 18 {
		t.Fatalf("variant count: %d", len(names))
	}
	// Mutating the returned slice must not corrupt the registry.
	names[0] = "clobbered"
	if ApproachNames()[0] == "clobbered" {
		t.Fatal("ApproachNames must return a copy")
	}
}

func TestFacadeMetrics(t *testing.T) {
	y := []int{1, 0, 1, 0}
	yhat := []int{1, 0, 0, 1}
	c := MeasureCorrectness(y, yhat)
	if c.Accuracy != 0.5 {
		t.Fatalf("accuracy: %v", c.Accuracy)
	}
	n := Normalize(Fairness{DI: 2})
	if n.DIStar != 0.5 || !n.Reverse.DI {
		t.Fatalf("normalize: %+v", n)
	}
}

func TestFacadeCorrupt(t *testing.T) {
	src := COMPAS(500, 1)
	dirty, err := Corrupt(src.Data, T2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.Len() != 500 {
		t.Fatal("corruption changed size")
	}
}

func TestFacadeModelSwap(t *testing.T) {
	src := COMPAS(800, 1)
	train, test := Split(src.Data, 0.7, 3)
	a, err := NewApproachWithModel("KamKar-DP", "kNN", src.Graph, 5)
	if err != nil {
		t.Fatal(err)
	}
	row, err := Evaluate(a, train, test, src.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(row.Correct.Accuracy) {
		t.Fatal("NaN accuracy")
	}
}

func TestFacadeSharding(t *testing.T) {
	// The facade's cross-process story end to end: plan, run the three
	// shards (round-tripping each envelope through its wire encoding),
	// merge, and compare against the plain driver on the same data.
	spec := GridSpec{Experiment: "fig7", Dataset: "german", N: 200, Seed: 5}
	ranges, err := PlanShards(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 3 || ranges[2].End != 19 {
		t.Fatalf("plan: %+v", ranges)
	}
	envs := make([]*ShardEnvelope, 3)
	for i := range envs {
		env, err := RunShard(spec, i, 3)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		wire, err := env.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if envs[i], err = DecodeShardEnvelope(wire); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := MergeShards(envs)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunCorrectnessFairness(German(200, 5), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Rows) != len(serial) {
		t.Fatalf("row counts: %d vs %d", len(merged.Rows), len(serial))
	}
	for i := range serial {
		m, s := merged.Rows[i], serial[i]
		if m.Approach != s.Approach || m.Correct != s.Correct || m.Fair != s.Fair {
			t.Fatalf("%s: sharded run diverges from serial driver", s.Approach)
		}
	}
	// A shard set from a different seed must not merge.
	foreign, err := RunShard(GridSpec{Experiment: "fig7", Dataset: "german", N: 200, Seed: 6}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards([]*ShardEnvelope{envs[0], envs[1], foreign}); err == nil {
		t.Fatal("merged envelopes from different grids")
	}
}

func TestFacadeBaselineUnfairOnAdult(t *testing.T) {
	// The paper's headline observation: the fairness-unaware LR on Adult
	// has very low DI (Figure 7a) while staying fairly accurate.
	src := Adult(6000, 2)
	train, test := Split(src.Data, 0.7, 7)
	row, err := Evaluate(Baseline(), train, test, src.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if row.Correct.Accuracy < 0.7 {
		t.Fatalf("baseline accuracy: %v", row.Correct.Accuracy)
	}
	if row.Fair.DIStar > 0.5 {
		t.Fatalf("Adult baseline should have low DI*, got %v", row.Fair.DIStar)
	}
}
