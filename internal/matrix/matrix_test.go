package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v want %v (tol %v)", msg, got, want, tol)
	}
}

func TestDot(t *testing.T) {
	almost(t, Dot([]float64{1, 2, 3}, []float64{4, 5, 6}), 32, 1e-12, "dot")
	almost(t, Dot(nil, nil), 0, 0, "empty dot")
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestDotSymmetry(t *testing.T) {
	f := func(a, b [8]float64) bool {
		// Bound the magnitude so intermediate products cannot overflow to
		// ±Inf and cancel into NaN, which would defeat the comparison.
		for i := range a {
			a[i] = math.Mod(a[i], 1e6)
			b[i] = math.Mod(b[i], 1e6)
			if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
				return true
			}
		}
		return Dot(a[:], b[:]) == Dot(b[:], a[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAxpyScale(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	almost(t, y[0], 7, 1e-12, "axpy[0]")
	almost(t, y[1], 9, 1e-12, "axpy[1]")
	Scale(0.5, y)
	almost(t, y[0], 3.5, 1e-12, "scale[0]")
}

func TestMatVec(t *testing.T) {
	m := [][]float64{{1, 2}, {3, 4}}
	v := MatVec(m, []float64{1, 1})
	almost(t, v[0], 3, 1e-12, "mv0")
	almost(t, v[1], 7, 1e-12, "mv1")
	tv := TransposeMatVec(m, []float64{1, 1})
	almost(t, tv[0], 4, 1e-12, "tmv0")
	almost(t, tv[1], 6, 1e-12, "tmv1")
}

func TestNorms(t *testing.T) {
	almost(t, Norm2([]float64{3, 4}), 5, 1e-12, "norm2")
	almost(t, NormInf([]float64{-7, 4}), 7, 1e-12, "norminf")
	almost(t, Sum([]float64{1, 2, 3}), 6, 1e-12, "sum")
	almost(t, Mean([]float64{1, 2, 3}), 2, 1e-12, "mean")
	almost(t, Mean(nil), 0, 0, "mean empty")
}

func TestSigmoid(t *testing.T) {
	almost(t, Sigmoid(0), 0.5, 1e-12, "sig(0)")
	almost(t, Sigmoid(100), 1, 1e-9, "sig(large)")
	almost(t, Sigmoid(-100), 0, 1e-9, "sig(-large)")
	// Symmetry property: sigmoid(-z) = 1 - sigmoid(z).
	f := func(z float64) bool {
		if math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		return math.Abs(Sigmoid(-z)-(1-Sigmoid(z))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	almost(t, Clamp(5, 0, 1), 1, 0, "hi")
	almost(t, Clamp(-5, 0, 1), 0, 0, "lo")
	almost(t, Clamp(0.5, 0, 1), 0.5, 0, "mid")
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 3}); got != 1 {
		t.Fatalf("argmax: got %d", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Fatalf("argmax empty: got %d", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := []float64{1, 2}
	b := Clone(a)
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone aliases input")
	}
	m := [][]float64{{1}, {2}}
	mc := CloneRows(m)
	mc[0][0] = 9
	if m[0][0] != 1 {
		t.Fatal("CloneRows aliases input")
	}
}

func TestSub(t *testing.T) {
	d := Sub([]float64{5, 3}, []float64{2, 1})
	almost(t, d[0], 3, 0, "sub0")
	almost(t, d[1], 2, 0, "sub1")
}
