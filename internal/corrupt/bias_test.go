package corrupt

import (
	"math"
	"testing"

	"fairbench/internal/dataset"
	"fairbench/internal/synth"
)

// strataCounts tallies the (S, Y) strata of a dataset.
func strataCounts(d *dataset.Dataset) (n [2][2]int) {
	for i := range d.S {
		n[d.S[i]][d.Y[i]]++
	}
	return n
}

func TestUnderRepresentStrata(t *testing.T) {
	src := synth.COMPAS(6000, 1)
	before := strataCounts(src.Data)
	out, err := UnderRepresent(src.Data, 0.5, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	after := strataCounts(out)
	// Every privileged tuple survives.
	if after[1][0] != before[1][0] || after[1][1] != before[1][1] {
		t.Fatalf("privileged strata changed: %v -> %v", before[1], after[1])
	}
	// Unprivileged strata shrink at roughly their nominal rates.
	dropPos := 1 - float64(after[0][1])/float64(before[0][1])
	dropNeg := 1 - float64(after[0][0])/float64(before[0][0])
	if math.Abs(dropPos-0.5) > 0.07 {
		t.Fatalf("positive-label drop rate %v, want ~0.5", dropPos)
	}
	if math.Abs(dropNeg-0.2) > 0.07 {
		t.Fatalf("negative-label drop rate %v, want ~0.2", dropNeg)
	}
	if out.Name == src.Data.Name {
		t.Fatal("biased dataset should be renamed")
	}
	// Surviving tuples are untouched and appear in input order.
	j := 0
	for i := range src.Data.S {
		if j < out.Len() && &out.X[j][0] == &src.Data.X[i][0] {
			if out.S[j] != src.Data.S[i] || out.Y[j] != src.Data.Y[i] {
				t.Fatalf("tuple %d mutated by under-representation", i)
			}
			j++
		}
	}
	if j != out.Len() {
		t.Fatalf("%d of %d surviving rows alias the input in order", j, out.Len())
	}
}

func TestFlipLabelsRate(t *testing.T) {
	src := synth.COMPAS(6000, 2)
	out, err := FlipLabels(src.Data, 0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != src.Data.Len() {
		t.Fatal("label bias must preserve size")
	}
	flipped, nU := 0, 0
	for i := range out.Y {
		if &out.X[i][0] != &src.Data.X[i][0] {
			t.Fatal("features must stay zero-copy views")
		}
		if src.Data.S[i] == PrivilegedCode {
			if out.Y[i] != src.Data.Y[i] {
				t.Fatalf("privileged tuple %d label flipped", i)
			}
			continue
		}
		nU++
		if out.Y[i] != src.Data.Y[i] {
			flipped++
		}
	}
	rate := float64(flipped) / float64(nU)
	if math.Abs(rate-0.3) > 0.05 {
		t.Fatalf("flip rate %v, want ~0.3", rate)
	}
}

func TestBiasDeterministicAndSeedSensitive(t *testing.T) {
	src := synth.COMPAS(1500, 3)
	a, err := UnderRepresent(src.Data, 0.4, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := UnderRepresent(src.Data, 0.4, 0.1, 7)
	if a.Len() != b.Len() {
		t.Fatal("same seed must drop identically")
	}
	for i := range a.S {
		if a.S[i] != b.S[i] || a.Y[i] != b.Y[i] {
			t.Fatal("same seed must keep the same tuples")
		}
	}
	c, _ := UnderRepresent(src.Data, 0.4, 0.1, 8)
	if c.Len() == a.Len() {
		sameKeep := true
		for i := 0; i < a.Len(); i++ {
			if &a.X[i][0] != &c.X[i][0] {
				sameKeep = false
				break
			}
		}
		if sameKeep {
			t.Fatal("different seeds kept an identical tuple set")
		}
	}

	f1, err := FlipLabels(src.Data, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := FlipLabels(src.Data, 0.25, 7)
	f3, _ := FlipLabels(src.Data, 0.25, 8)
	sameAs1 := func(o *dataset.Dataset) bool {
		for i := range o.Y {
			if o.Y[i] != f1.Y[i] {
				return false
			}
		}
		return true
	}
	if !sameAs1(f2) {
		t.Fatal("same seed must flip identically")
	}
	if sameAs1(f3) {
		t.Fatal("different seeds flipped identically")
	}
}

func TestBiasLeavesInputUnchanged(t *testing.T) {
	src := synth.COMPAS(800, 4)
	clean := src.Data.Clone()
	if _, err := UnderRepresent(src.Data, 0.5, 0.5, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := FlipLabels(src.Data, 0.5, 1); err != nil {
		t.Fatal(err)
	}
	for i := range clean.S {
		if src.Data.S[i] != clean.S[i] || src.Data.Y[i] != clean.Y[i] {
			t.Fatalf("tuple %d of the clean input was mutated", i)
		}
		for j := range clean.X[i] {
			if src.Data.X[i][j] != clean.X[i][j] {
				t.Fatalf("feature (%d,%d) of the clean input was mutated", i, j)
			}
		}
	}
}

// toyDataset hand-builds a dataset that never passes dataset.Validate —
// the case the centralized group-code check exists for.
func toyDataset(s []int) *dataset.Dataset {
	d := &dataset.Dataset{
		Name:  "toy",
		Attrs: []dataset.Attr{{Name: "a", Kind: dataset.Numeric}},
		S:     s,
	}
	for i := range s {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, i%2)
	}
	return d
}

func TestBiasRejectsBadGroupCode(t *testing.T) {
	bad := toyDataset([]int{0, 1, 2, 0})
	if _, err := UnderRepresent(bad, 0.5, 0.1, 1); err == nil {
		t.Fatal("under-representation accepted sensitive code 2")
	}
	if _, err := FlipLabels(bad, 0.5, 1); err == nil {
		t.Fatal("label bias accepted sensitive code 2")
	}
	// The error templates route through the same mapping.
	if _, err := MissingImputed(bad, PaperRates, 1); err == nil {
		t.Fatal("MissingImputed accepted sensitive code 2")
	}
}

func TestBiasRateValidation(t *testing.T) {
	d := synth.COMPAS(100, 1).Data
	cases := []struct {
		name string
		err  func() error
	}{
		{"under both zero", func() error { _, err := UnderRepresent(d, 0, 0, 1); return err }},
		{"under beta+ = 1", func() error { _, err := UnderRepresent(d, 1, 0.1, 1); return err }},
		{"under beta- negative", func() error { _, err := UnderRepresent(d, 0.1, -0.2, 1); return err }},
		{"label nu zero", func() error { _, err := FlipLabels(d, 0, 1); return err }},
		{"label nu > 1", func() error { _, err := FlipLabels(d, 1.2, 1); return err }},
	}
	for _, c := range cases {
		if c.err() == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestUnderRepresentRejectsEmptyResult(t *testing.T) {
	// A dataset that is one unprivileged stratum: at β near 1 some seed
	// drops every tuple, and that must be an error, not an empty grid.
	d := toyDataset([]int{0, 0})
	d.Y[0], d.Y[1] = 1, 1
	found := false
	for seed := int64(0); seed < 200 && !found; seed++ {
		if _, err := UnderRepresent(d, 0.999, 0, seed); err != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("no seed produced the all-dropped error on a 2-tuple stratum at β=0.999")
	}
}
