package preproc

import (
	"math"
	"sort"

	"fairbench/internal/classifier"
	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/nmf"
	"fairbench/internal/rng"
	"fairbench/internal/sat"
)

// Salimi implements Salimi et al.'s justifiable-fairness database repair.
// Attributes are partitioned into admissible (A — allowed to causally
// influence the label) and inadmissible (I — the sensitive attribute plus
// its proxies, e.g. race, sex, and marital/relationship status). The
// training database is minimally repaired by inserting and deleting tuples
// until Y is conditionally independent of I given A — equivalently, until
// within every admissible stratum a, the contingency table over (I, Y) has
// rank one (the multi-valued dependency Π_AY(D) ⋈ Π_YI(D) = D under the
// uniform-distribution reading).
//
// Two solver back-ends match the paper's variants:
//
//   - Salimi^jf_MaxSAT: per stratum, the common conditional label rate is
//     chosen by exact search and the per-cell repair actions (delete
//     surplus tuples vs. insert label-flipped duplicates) are selected by
//     a weighted partial MaxSAT solve whose soft-clause weights are the
//     action costs. The tuple-level encoding of the original is coarsened
//     to cell-level actions for tractability; the minimal-repair semantics
//     and the NP-hard cost profile are preserved.
//   - Salimi^jf_MatFac: per stratum, the (I × Y) count matrix is replaced
//     by its best rank-1 non-negative factorization, and tuples are
//     deleted or duplicated to match the rounded rank-1 targets.
type Salimi struct {
	// Inadmissible lists attribute names treated as I (the sensitive
	// attribute is always inadmissible).
	Inadmissible []string
	// UseMatFac selects the matrix-factorization variant.
	UseMatFac bool
	// Bins discretizes numeric admissible attributes (default 3).
	Bins int
	// MaxAdmissible caps the admissible attributes entering the strata to
	// bound the blow-up (default 4, most label-correlated first).
	MaxAdmissible int
	// Seed drives the NMF initialization and deterministic tie-breaks.
	Seed int64
}

// RepairName implements fair.Repairer.
func (sa *Salimi) RepairName() string {
	if sa.UseMatFac {
		return "Salimi-MatFac"
	}
	return "Salimi-MaxSAT"
}

// DefaultInadmissible is the paper's choice: race, gender, and
// marital/relationship status whenever present.
var DefaultInadmissible = []string{"Race", "Sex", "Marital_status", "Relationship"}

// Repair implements fair.Repairer.
func (sa *Salimi) Repair(train *dataset.Dataset) (*dataset.Dataset, error) {
	if sa.Bins == 0 {
		sa.Bins = 3
	}
	if sa.MaxAdmissible == 0 {
		sa.MaxAdmissible = 4
	}
	inadm := map[string]bool{}
	for _, n := range sa.Inadmissible {
		inadm[n] = true
	}
	var aCols, iCols []int
	for j, a := range train.Attrs {
		if inadm[a.Name] {
			iCols = append(iCols, j)
		} else {
			aCols = append(aCols, j)
		}
	}
	if len(aCols) > sa.MaxAdmissible {
		aCols = topCorrelated(train, aCols, sa.MaxAdmissible)
	}
	disc := dataset.FitDiscretizer(train, sa.Bins)

	// Stratify tuples by admissible code; within a stratum, cell by
	// (inadmissible code, S).
	type key struct{ a int }
	strata := map[int]map[int][]int{} // aCode -> iCode -> tuple indices
	for t, row := range train.X {
		aCode, _ := disc.Code(row, aCols)
		iCode, _ := disc.Code(row, iCols)
		iCode = iCode*2 + train.S[t] // S itself is inadmissible
		m := strata[aCode]
		if m == nil {
			m = map[int][]int{}
			strata[aCode] = m
		}
		m[iCode] = append(m[iCode], t)
	}

	keep := make([]bool, train.Len())
	for i := range keep {
		keep[i] = true
	}
	var inserts []insertOp
	g := rng.New(sa.Seed)
	// Deterministic stratum order.
	var aCodes []int
	for a := range strata {
		aCodes = append(aCodes, a)
	}
	sort.Ints(aCodes)
	for _, a := range aCodes {
		cells := strata[a]
		if sa.UseMatFac {
			sa.repairMatFac(train, cells, keep, &inserts, g)
		} else {
			sa.repairMaxSAT(train, cells, keep, &inserts, g)
		}
	}

	// Materialize: kept tuples plus inserted (duplicated, label-adjusted)
	// tuples.
	var idx []int
	for i, k := range keep {
		if k {
			idx = append(idx, i)
		}
	}
	out := train.Subset(idx)
	for _, op := range inserts {
		out.X = append(out.X, append([]float64(nil), train.X[op.src]...))
		out.S = append(out.S, train.S[op.src])
		out.Y = append(out.Y, op.y)
	}
	return out, nil
}

type insertOp struct {
	src int // tuple to duplicate
	y   int // label of the inserted copy
}

// cellCounts tallies (negatives, positives) for a list of tuples.
func cellCounts(d *dataset.Dataset, idx []int) (n0, n1 int) {
	for _, t := range idx {
		if d.Y[t] == 1 {
			n1++
		} else {
			n0++
		}
	}
	return n0, n1
}

// repairOps returns the minimal delete/insert counts turning a cell with
// counts (n0, n1) into one whose positive rate is rho (within rounding):
// deletions remove surplus tuples of one label; insertions duplicate a
// tuple with the flipped label.
func repairOps(n0, n1 int, rho float64) (delPos, delNeg, insPos, insNeg int, cost int) {
	tot := n0 + n1
	if tot == 0 {
		return 0, 0, 0, 0, 0
	}
	r := float64(n1) / float64(tot)
	switch {
	case r > rho:
		// Too many positives: delete positives or insert negatives.
		var dp int
		if rho >= 1 {
			dp = 0
		} else {
			dp = int(math.Ceil((float64(n1) - rho*float64(tot)) / (1 - rho)))
		}
		if dp > n1 {
			dp = n1
		}
		var in int
		if rho <= 0 {
			in = n1 // cannot dilute to zero by insertion; delete instead
			return n1, 0, 0, 0, n1
		}
		in = int(math.Ceil(float64(n1)/rho)) - tot
		if in < 0 {
			in = 0
		}
		if dp <= in {
			return dp, 0, 0, 0, dp
		}
		return 0, 0, 0, in, in
	case r < rho:
		var dn int
		if rho <= 0 {
			dn = 0
		} else {
			dn = int(math.Ceil((rho*float64(tot) - float64(n1)) / rho))
		}
		if dn > n0 {
			dn = n0
		}
		var ip int
		if rho >= 1 {
			return 0, n0, 0, 0, n0
		}
		ip = int(math.Ceil(float64(n0)/(1-rho))) - tot
		if ip < 0 {
			ip = 0
		}
		if dn <= ip {
			return 0, dn, 0, 0, dn
		}
		return 0, 0, ip, 0, ip
	default:
		return 0, 0, 0, 0, 0
	}
}

// candidateRhos returns the candidate common label rates for a stratum:
// each cell's own rate plus the pooled rate, deduplicated.
func candidateRhos(d *dataset.Dataset, cells map[int][]int) []float64 {
	set := map[float64]bool{}
	var tot0, tot1 int
	for _, idx := range cells {
		n0, n1 := cellCounts(d, idx)
		tot0 += n0
		tot1 += n1
		if n0+n1 > 0 {
			set[float64(n1)/float64(n0+n1)] = true
		}
	}
	if tot0+tot1 > 0 {
		set[float64(tot1)/float64(tot0+tot1)] = true
	}
	out := make([]float64, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Float64s(out)
	return out
}

// repairMaxSAT chooses the cheapest common rate by exact search and uses
// the MaxSAT solver to pick per-cell actions.
func (sa *Salimi) repairMaxSAT(d *dataset.Dataset, cells map[int][]int, keep []bool, inserts *[]insertOp, g *rng.RNG) {
	if len(cells) < 2 {
		return
	}
	var iCodes []int
	for c := range cells {
		iCodes = append(iCodes, c)
	}
	sort.Ints(iCodes)

	bestRho, bestCost := -1.0, math.MaxInt64
	for _, rho := range candidateRhos(d, cells) {
		cost := 0
		for _, c := range iCodes {
			n0, n1 := cellCounts(d, cells[c])
			_, _, _, _, cc := repairOps(n0, n1, rho)
			cost += cc
		}
		if cost < bestCost {
			bestCost, bestRho = cost, rho
		}
	}
	if bestRho < 0 || bestCost == 0 {
		return
	}

	// Encode the per-cell action choice as weighted MaxSAT: variable v_c
	// true = delete-style repair, false = insert-style repair; soft
	// clauses carry the action costs so the optimum picks the cheaper mix.
	f := &sat.Formula{}
	type actions struct {
		delPos, delNeg, insPos, insNeg int
		delCost, insCost               int
	}
	acts := make([]actions, len(iCodes))
	for vi, c := range iCodes {
		n0, n1 := cellCounts(d, cells[c])
		dp, dn, ip, in, _ := repairOps(n0, n1, bestRho)
		a := actions{delPos: dp, delNeg: dn, insPos: ip, insNeg: in}
		// Reconstruct both options' costs for the encoding.
		a.delCost, a.insCost = optionCosts(n0, n1, bestRho)
		acts[vi] = a
		v := sat.Lit(vi + 1)
		if a.delCost > 0 {
			f.AddSoft(float64(a.delCost), -v) // violated when choosing delete
		}
		if a.insCost > 0 {
			f.AddSoft(float64(a.insCost), v) // violated when choosing insert
		}
		f.AddHard(v, -v) // tautology keeps every variable in the formula
	}
	res := sat.Solve(f, sat.Options{Seed: g.Int63()})
	for vi, c := range iCodes {
		useDelete := true
		if res.Assignment != nil && vi+1 < len(res.Assignment) {
			useDelete = res.Assignment[vi+1]
		}
		a := acts[vi]
		if useDelete && a.delCost <= a.insCost || a.insCost == 0 {
			applyDeletes(d, cells[c], keep, a.delPos, a.delNeg)
		} else {
			applyInserts(d, cells[c], inserts, a.insPos, a.insNeg)
		}
	}
}

// optionCosts returns the cost of the pure-delete and pure-insert options
// for a cell at target rate rho.
func optionCosts(n0, n1 int, rho float64) (delCost, insCost int) {
	tot := n0 + n1
	if tot == 0 {
		return 0, 0
	}
	r := float64(n1) / float64(tot)
	switch {
	case r > rho:
		if rho >= 1 {
			return 0, 0
		}
		dp := int(math.Ceil((float64(n1) - rho*float64(tot)) / (1 - rho)))
		if dp > n1 {
			dp = n1
		}
		if rho <= 0 {
			return n1, math.MaxInt32
		}
		in := int(math.Ceil(float64(n1)/rho)) - tot
		if in < 0 {
			in = 0
		}
		return dp, in
	case r < rho:
		if rho <= 0 {
			return 0, 0
		}
		dn := int(math.Ceil((rho*float64(tot) - float64(n1)) / rho))
		if dn > n0 {
			dn = n0
		}
		if rho >= 1 {
			return n0, math.MaxInt32
		}
		ip := int(math.Ceil(float64(n0)/(1-rho))) - tot
		if ip < 0 {
			ip = 0
		}
		return dn, ip
	default:
		return 0, 0
	}
}

func applyDeletes(d *dataset.Dataset, idx []int, keep []bool, delPos, delNeg int) {
	for _, t := range idx {
		if delPos == 0 && delNeg == 0 {
			return
		}
		if !keep[t] {
			continue
		}
		if d.Y[t] == 1 && delPos > 0 {
			keep[t] = false
			delPos--
		} else if d.Y[t] == 0 && delNeg > 0 {
			keep[t] = false
			delNeg--
		}
	}
}

func applyInserts(d *dataset.Dataset, idx []int, inserts *[]insertOp, insPos, insNeg int) {
	if len(idx) == 0 {
		return
	}
	for k := 0; k < insPos; k++ {
		*inserts = append(*inserts, insertOp{src: idx[k%len(idx)], y: 1})
	}
	for k := 0; k < insNeg; k++ {
		*inserts = append(*inserts, insertOp{src: idx[k%len(idx)], y: 0})
	}
}

// repairMatFac replaces each stratum's (I × Y) count table with its best
// rank-1 non-negative approximation and repairs tuples toward the rounded
// targets.
func (sa *Salimi) repairMatFac(d *dataset.Dataset, cells map[int][]int, keep []bool, inserts *[]insertOp, g *rng.RNG) {
	if len(cells) < 2 {
		return
	}
	var iCodes []int
	for c := range cells {
		iCodes = append(iCodes, c)
	}
	sort.Ints(iCodes)
	m := make([][]float64, len(iCodes))
	for r, c := range iCodes {
		n0, n1 := cellCounts(d, cells[c])
		m[r] = []float64{float64(n0), float64(n1)}
	}
	approx := nmf.Rank1(m, 200, g.Int63())
	for r, c := range iCodes {
		n0, n1 := cellCounts(d, cells[c])
		t0 := int(math.Round(approx[r][0]))
		t1 := int(math.Round(approx[r][1]))
		if t1 < n1 {
			applyDeletes(d, cells[c], keep, n1-t1, 0)
		} else if t1 > n1 {
			applyInserts(d, cells[c], inserts, t1-n1, 0)
		}
		if t0 < n0 {
			applyDeletes(d, cells[c], keep, 0, n0-t0)
		} else if t0 > n0 {
			applyInserts(d, cells[c], inserts, 0, t0-n0)
		}
	}
}

// topCorrelated selects the k columns of cols most |corr|-related to Y.
func topCorrelated(d *dataset.Dataset, cols []int, k int) []int {
	type scored struct {
		j int
		r float64
	}
	my := 0.0
	for _, y := range d.Y {
		my += float64(y)
	}
	my /= float64(d.Len())
	var sc []scored
	for _, j := range cols {
		col := d.Column(j)
		var mx float64
		for _, v := range col {
			mx += v
		}
		mx /= float64(len(col))
		var cov, vx, vy float64
		for i, v := range col {
			dx, dy := v-mx, float64(d.Y[i])-my
			cov += dx * dy
			vx += dx * dx
			vy += dy * dy
		}
		r := 0.0
		if vx > 0 && vy > 0 {
			r = math.Abs(cov / math.Sqrt(vx*vy))
		}
		sc = append(sc, scored{j, r})
	}
	sort.Slice(sc, func(a, b int) bool { return sc[a].r > sc[b].r })
	out := make([]int, 0, k)
	for i := 0; i < k && i < len(sc); i++ {
		out = append(out, sc[i].j)
	}
	sort.Ints(out)
	return out
}

// NewSalimiMaxSAT returns the evaluated Salimi^jf_MaxSAT approach.
func NewSalimiMaxSAT(factory classifier.Factory, seed int64) fair.Approach {
	return &fair.PreProcessed{
		ApproachName: "Salimi-JF-MaxSAT",
		Target:       []fair.Metric{fair.MetricTE},
		Mechanism:    &Salimi{Inadmissible: DefaultInadmissible, Seed: seed},
		Factory:      factory,
		IncludeS:     true,
	}
}

// NewSalimiMatFac returns the evaluated Salimi^jf_MatFac approach.
func NewSalimiMatFac(factory classifier.Factory, seed int64) fair.Approach {
	return &fair.PreProcessed{
		ApproachName: "Salimi-JF-MatFac",
		Target:       []fair.Metric{fair.MetricTE},
		Mechanism:    &Salimi{Inadmissible: DefaultInadmissible, UseMatFac: true, Seed: seed},
		Factory:      factory,
		IncludeS:     true,
	}
}
