#!/usr/bin/env bash
# bench.sh — run the benchmark suite once and record the serial-vs-parallel
# evalAll pair to BENCH_parallel.json so the perf trajectory populates.
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   BENCHTIME   go test -benchtime value (default 1x: one iteration per
#               benchmark — a smoke run; use e.g. 3x or 2s for stabler
#               numbers)
#   BENCH_PAT   benchmark regexp (default '.': the full suite)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_parallel.json}"
benchtime="${BENCHTIME:-1x}"
pattern="${BENCH_PAT:-.}"

if ! raw="$(go test -bench "$pattern" -benchtime "$benchtime" -run '^$' . 2>&1)"; then
    echo "$raw"
    echo "bench.sh: go test -bench failed" >&2
    exit 1
fi
echo "$raw"

serial="$(echo "$raw" | awk '$1 ~ /^BenchmarkEvalAllSerial(-[0-9]+)?$/ {print $3}')"
parallel="$(echo "$raw" | awk '$1 ~ /^BenchmarkEvalAllParallel(-[0-9]+)?$/ {print $3}')"

if [[ -z "$serial" || -z "$parallel" ]]; then
    echo "bench.sh: BenchmarkEvalAllSerial/Parallel not found in output" >&2
    echo "bench.sh: pass BENCH_PAT covering 'BenchmarkEvalAll(Serial|Parallel)'" >&2
    exit 1
fi

speedup="$(awk -v s="$serial" -v p="$parallel" 'BEGIN { if (p > 0) printf "%.3f", s / p; else printf "0" }')"

cat > "$out" <<EOF
{
  "benchmark": "evalAll (Figure 7 grid, COMPAS n=1500)",
  "go": "$(go env GOVERSION)",
  "cpus": $(nproc),
  "benchtime": "$benchtime",
  "serial_ns_per_op": $serial,
  "parallel_ns_per_op": $parallel,
  "speedup": $speedup
}
EOF
echo "bench.sh: wrote $out (speedup ${speedup}x over serial)"
