// Package optimize provides the numerical optimization substrate used by
// the in-processing approaches and the Calmon pre-processor: batch gradient
// descent, Adam, projected gradient over box/simplex constraints, and a
// penalty-method wrapper for smooth constrained problems (the stdlib
// replacement for the convex solvers the original implementations call).
package optimize

import (
	"math"

	"fairbench/internal/matrix"
)

// Objective evaluates a smooth function and its gradient at w. The gradient
// slice is owned by the caller and must be fully overwritten.
type Objective func(w []float64, grad []float64) float64

// GDConfig controls gradient-based minimization.
type GDConfig struct {
	// Step is the initial learning rate (default 0.1).
	Step float64
	// MaxIter bounds the number of iterations (default 500).
	MaxIter int
	// Tol stops early when the gradient infinity norm falls below it
	// (default 1e-6).
	Tol float64
	// Project, when non-nil, is applied to the iterate after every step
	// (projected gradient descent).
	Project func(w []float64)
}

func (c *GDConfig) defaults() {
	if c.Step == 0 {
		c.Step = 0.1
	}
	if c.MaxIter == 0 {
		c.MaxIter = 500
	}
	if c.Tol == 0 {
		c.Tol = 1e-6
	}
}

// GradientDescent minimizes f starting from w0 using backtracking line
// search; it returns the final iterate and objective value. The candidate
// iterate and gradient buffers are allocated once and reused across every
// backtracking trial (an accepted candidate is swapped in, not copied), so
// the loop allocates nothing per iteration — the Objective contract that
// the gradient is fully overwritten is what makes the reuse sound.
func GradientDescent(f Objective, w0 []float64, cfg GDConfig) ([]float64, float64) {
	cfg.defaults()
	w := matrix.Clone(w0)
	grad := make([]float64, len(w))
	val := f(w, grad)
	cand := make([]float64, len(w))
	cg := make([]float64, len(w))
	step := cfg.Step
	for iter := 0; iter < cfg.MaxIter; iter++ {
		if matrix.NormInf(grad) < cfg.Tol {
			break
		}
		// Backtracking: halve the step until the objective decreases.
		improved := false
		for t := 0; t < 30; t++ {
			copy(cand, w)
			matrix.Axpy(-step, grad, cand)
			if cfg.Project != nil {
				cfg.Project(cand)
			}
			cv := f(cand, cg)
			if cv < val {
				w, cand = cand, w
				grad, cg = cg, grad
				val = cv
				improved = true
				step *= 1.2 // cautiously re-grow
				break
			}
			step /= 2
			if step < 1e-14 {
				break
			}
		}
		if !improved {
			break
		}
	}
	return w, val
}

// AdamConfig controls the Adam optimizer.
type AdamConfig struct {
	Step         float64 // default 0.05
	Beta1, Beta2 float64 // defaults 0.9, 0.999
	MaxIter      int     // default 800
	Tol          float64 // default 1e-7 on gradient infinity norm

	// Track, when non-nil, observes the iterate after each completed
	// update (so after iteration t the slice equals what a MaxIter=t run
	// would return, early stopping aside). It must not retain or mutate
	// the slice; callers snapshotting an intermediate iterate — the
	// batched Zafar warm start shares one trajectory between two
	// different-length fits this way — copy it. Observation only: the
	// update rule and stopping test never read anything Track does.
	Track func(t int, w []float64)
}

func (c *AdamConfig) defaults() {
	if c.Step == 0 {
		c.Step = 0.05
	}
	if c.Beta1 == 0 {
		c.Beta1 = 0.9
	}
	if c.Beta2 == 0 {
		c.Beta2 = 0.999
	}
	if c.MaxIter == 0 {
		c.MaxIter = 800
	}
	if c.Tol == 0 {
		c.Tol = 1e-7
	}
}

// Adam minimizes f with the Adam update rule; robust on the non-convex
// surrogates (adversarial training, DCCP-style subproblems) where plain
// gradient descent stalls.
func Adam(f Objective, w0 []float64, cfg AdamConfig) ([]float64, float64) {
	cfg.defaults()
	w := matrix.Clone(w0)
	m := make([]float64, len(w))
	v := make([]float64, len(w))
	grad := make([]float64, len(w))
	var val float64
	for t := 1; t <= cfg.MaxIter; t++ {
		val = f(w, grad)
		if matrix.NormInf(grad) < cfg.Tol {
			break
		}
		b1t := 1 - math.Pow(cfg.Beta1, float64(t))
		b2t := 1 - math.Pow(cfg.Beta2, float64(t))
		for i := range w {
			m[i] = cfg.Beta1*m[i] + (1-cfg.Beta1)*grad[i]
			v[i] = cfg.Beta2*v[i] + (1-cfg.Beta2)*grad[i]*grad[i]
			w[i] -= cfg.Step * (m[i] / b1t) / (math.Sqrt(v[i]/b2t) + 1e-8)
		}
		if cfg.Track != nil {
			cfg.Track(t, w)
		}
	}
	return w, val
}

// Constraint is a smooth inequality constraint c(w) <= 0 with gradient.
type Constraint func(w []float64, grad []float64) float64

// PenaltyConfig controls penalty-method constrained minimization.
type PenaltyConfig struct {
	// Rho0 is the initial penalty weight (default 1).
	Rho0 float64
	// RhoGrowth multiplies the penalty between outer iterations (default 5).
	RhoGrowth float64
	// Outer is the number of outer penalty iterations (default 6).
	Outer int
	// Inner configures the unconstrained solves.
	Inner AdamConfig
}

// MinimizePenalty solves min f(w) subject to c_j(w) <= 0 for all j by
// minimizing f + rho * sum_j max(0, c_j)^2 with increasing rho. It is the
// workhorse behind the Zafar and Celis constrained formulations.
//
// Call-order contract: every objective evaluation invokes f first and then
// each constraint, in slice order, all at the same iterate, and every
// constraint is evaluated on every call (a satisfied constraint merely
// contributes nothing). Callers rely on this to share per-iterate state —
// a fused objective can compute the affine scores once in f and let the
// constraint closures read them (see the Zafar fits) — so the order is
// part of this function's API, not an implementation detail.
func MinimizePenalty(f Objective, cons []Constraint, w0 []float64, cfg PenaltyConfig) []float64 {
	if cfg.Rho0 == 0 {
		cfg.Rho0 = 1
	}
	if cfg.RhoGrowth == 0 {
		cfg.RhoGrowth = 5
	}
	if cfg.Outer == 0 {
		cfg.Outer = 6
	}
	w := matrix.Clone(w0)
	rho := cfg.Rho0
	cgrad := make([]float64, len(w0))
	for outer := 0; outer < cfg.Outer; outer++ {
		obj := func(x []float64, grad []float64) float64 {
			val := f(x, grad)
			for _, c := range cons {
				cv := c(x, cgrad)
				if cv > 0 {
					val += rho * cv * cv
					matrix.Axpy(2*rho*cv, cgrad, grad)
				}
			}
			return val
		}
		w, _ = Adam(obj, w, cfg.Inner)
		rho *= cfg.RhoGrowth
	}
	return w
}

// ProjectSimplex projects w in place onto the probability simplex
// {w : w_i >= 0, sum w_i = 1} (Duchi et al. algorithm). The hot callers
// (Calmon's per-state transition rows) project short vectors millions of
// times per repair, so the descending-sort scratch lives on the stack for
// rows up to 64 entries and the projection allocates nothing.
func ProjectSimplex(w []float64) {
	n := len(w)
	if n == 0 {
		return
	}
	// Sort a copy descending.
	var ubuf [64]float64
	var u []float64
	if n <= len(ubuf) {
		u = ubuf[:n]
	} else {
		u = make([]float64, n)
	}
	copy(u, w)
	for i := 1; i < n; i++ { // insertion sort: n is small in our uses
		for j := i; j > 0 && u[j] > u[j-1]; j-- {
			u[j], u[j-1] = u[j-1], u[j]
		}
	}
	var css float64
	rho := -1
	var theta float64
	for i := 0; i < n; i++ {
		css += u[i]
		t := (css - 1) / float64(i+1)
		if u[i]-t > 0 {
			rho = i
			theta = t
		}
	}
	if rho < 0 {
		for i := range w {
			w[i] = 1 / float64(n)
		}
		return
	}
	for i := range w {
		if v := w[i] - theta; v > 0 {
			w[i] = v
		} else {
			w[i] = 0
		}
	}
}

// ProjectBox clamps w in place to [lo, hi] element-wise.
func ProjectBox(w []float64, lo, hi float64) {
	for i := range w {
		w[i] = matrix.Clamp(w[i], lo, hi)
	}
}

// Bisect finds x in [lo,hi] with f(x) ~ 0 for monotone non-decreasing f.
func Bisect(f func(float64) float64, lo, hi float64, iters int) float64 {
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// GoldenSection minimizes a unimodal scalar function on [lo,hi].
func GoldenSection(f func(float64) float64, lo, hi float64, iters int) float64 {
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < iters; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}
