package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fairbench/internal/shard"
	"fairbench/internal/store"
	"fairbench/internal/synth"
)

func openStore(t *testing.T) *store.DiskStore {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestWarmShardRunComputesNothing is half the PR's acceptance gate in
// process: a cold cached run and a warm re-run of the same spec must
// produce byte-identical merged output, and the warm run must perform
// zero cell computations — every cell a verified store hit, every
// envelope claiming full cached provenance.
func TestWarmShardRunComputesNothing(t *testing.T) {
	spec := Spec{Experiment: "fig7", Dataset: "german", N: 200, Seed: 5}
	s := openStore(t)

	reference, err := mustOpen(t, spec).RunAll() // uncached reference
	if err != nil {
		t.Fatal(err)
	}

	runK := func() (*Output, []*shard.Envelope) {
		const k = 2
		envs := make([]*shard.Envelope, k)
		for i := 0; i < k; i++ {
			env, err := RunShardCached(spec, i, k, s)
			if err != nil {
				t.Fatalf("shard %d: %v", i, err)
			}
			envs[i] = env
		}
		out, err := MergeShards(envs)
		if err != nil {
			t.Fatal(err)
		}
		return out, envs
	}

	cold, coldEnvs := runK()
	if !bytes.Equal(canonical(t, reference), canonical(t, cold)) {
		t.Fatal("cold cached run diverges from uncached run")
	}
	for i, env := range coldEnvs {
		if len(env.Cached) != 0 {
			t.Fatalf("cold shard %d claims %d cached cells", i, len(env.Cached))
		}
	}

	before := s.Counters()
	warm, warmEnvs := runK()
	after := s.Counters()

	// reference was already zeroTiming'd by the cold comparison; compare
	// warm against a fresh uncached run for a clean baseline.
	fresh, err := mustOpen(t, spec).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonical(t, fresh), canonical(t, warm)) {
		t.Fatal("warm cached run diverges from uncached run")
	}
	g := mustOpen(t, spec)
	if hits := after.Hits - before.Hits; hits != int64(g.Len()) {
		t.Fatalf("warm run hit the store %d times, want %d (zero computations)", hits, g.Len())
	}
	if writes := after.Writes - before.Writes; writes != 0 {
		t.Fatalf("warm run wrote %d entries — it computed cells", writes)
	}
	total := 0
	for i, env := range warmEnvs {
		if len(env.Cached) != len(env.Indices) {
			t.Fatalf("warm shard %d: %d of %d cells cached", i, len(env.Cached), len(env.Indices))
		}
		total += len(env.Cached)
	}
	if total != g.Len() {
		t.Fatalf("warm provenance covers %d of %d cells", total, g.Len())
	}
}

// TestCorruptCacheEntryIsRecomputed: damaging one on-disk entry between
// runs must not change the output — the cell is rejected, recomputed,
// and re-cached.
func TestCorruptCacheEntryIsRecomputed(t *testing.T) {
	spec := Spec{Experiment: "fig23", Dataset: "compas", N: 300, Seed: 6,
		Sizes: []int{60, 120}, Names: []string{"LR", "KamCal-DP"}}
	s := openStore(t)
	cold, err := RunShardCached(spec, 0, 1, s)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate one cached entry in place.
	var corrupted bool
	err = filepath.Walk(s.Dir(), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || corrupted || !strings.HasSuffix(path, "0.json") {
			return err
		}
		corrupted = true
		return os.WriteFile(path, []byte("{truncated"), 0o644)
	})
	if err != nil || !corrupted {
		t.Fatalf("could not corrupt an entry: %v", err)
	}
	warm, err := RunShardCached(spec, 0, 1, s)
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters().Rejected != 1 {
		t.Fatalf("rejected=%d, want 1", s.Counters().Rejected)
	}
	if len(warm.Cached) != len(warm.Indices)-1 {
		t.Fatalf("warm run cached %d of %d cells, want all but the corrupted one",
			len(warm.Cached), len(warm.Indices))
	}
	a, err := MergeShards([]*shard.Envelope{cold})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MergeShards([]*shard.Envelope{warm})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonical(t, a), canonical(t, b)) {
		t.Fatal("recomputed run diverges from cold run")
	}
}

// TestDriversConsultDefaultCache pins the Source-to-Spec reroute: with a
// process-wide cache installed and a provenance-carrying source, a
// second driver call is served entirely from the store, and the rows
// match the uncached call byte for byte.
func TestDriversConsultDefaultCache(t *testing.T) {
	src := synth.German(200, 5)
	uncached, err := CorrectnessFairness(src, 5)
	if err != nil {
		t.Fatal(err)
	}

	s := openStore(t)
	SetDefaultCache(s)
	defer SetDefaultCache(nil)

	first, err := CorrectnessFairness(src, 5)
	if err != nil {
		t.Fatal(err)
	}
	second, err := CorrectnessFairness(src, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.Writes == 0 {
		t.Fatal("driver never wrote to the cache")
	}
	if c.Hits != c.Writes {
		t.Fatalf("second call hit %d of %d cells", c.Hits, c.Writes)
	}
	for _, rows := range [][]Row{first, second} {
		a := canonical(t, &Output{Rows: uncached})
		b := canonical(t, &Output{Rows: rows})
		if !bytes.Equal(a, b) {
			t.Fatal("cached driver rows diverge from uncached")
		}
	}

	// A seed-mismatched source must bypass the cache (its data differs
	// from what the spec would synthesize), not serve wrong entries.
	before := s.Counters()
	if _, err := CorrectnessFairness(synth.German(200, 99), 5); err != nil {
		t.Fatal(err)
	}
	if s.Counters().Hits != before.Hits {
		t.Fatal("seed-mismatched source was served from the cache")
	}
}

// TestMutatedSourceBypassesCache: a provenance-carrying source whose
// data was modified after generation must take the direct path — the
// cached Spec path would answer about re-synthesized pristine data the
// caller never passed.
func TestMutatedSourceBypassesCache(t *testing.T) {
	s := openStore(t)
	SetDefaultCache(s)
	defer SetDefaultCache(nil)

	// Warm the cache with the pristine grid.
	pristine, err := CorrectnessFairness(synth.German(200, 5), 5)
	if err != nil {
		t.Fatal(err)
	}

	mutated := synth.German(200, 5)
	for i := range mutated.Data.Y {
		mutated.Data.Y[i] = 1 - mutated.Data.Y[i] // invert every label
	}
	before := s.Counters()
	rows, err := CorrectnessFairness(mutated, 5)
	if err != nil {
		t.Fatal(err)
	}
	after := s.Counters()
	if after.Hits != before.Hits || after.Writes != before.Writes {
		t.Fatal("mutated source touched the cache")
	}
	a := canonical(t, &Output{Rows: pristine})
	b := canonical(t, &Output{Rows: rows})
	if bytes.Equal(a, b) {
		t.Fatal("label-inverted source produced the pristine source's rows")
	}
}

// TestWrongSeedLookupNeverHits: entries cached for one seed must be
// invisible to a run with another seed — different seeds have different
// fingerprints AND different key seeds, so this holds twice over.
func TestWrongSeedLookupNeverHits(t *testing.T) {
	s := openStore(t)
	spec := Spec{Experiment: "fig23", Dataset: "compas", N: 300, Seed: 1,
		Sizes: []int{60}, Names: []string{"LR"}}
	if _, err := RunShardCached(spec, 0, 1, s); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Seed = 2
	env, err := RunShardCached(other, 0, 1, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Cached) != 0 {
		t.Fatal("wrong-seed run was served from the cache")
	}
}
