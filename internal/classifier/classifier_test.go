package classifier

import (
	"math"
	"testing"
	"testing/quick"

	"fairbench/internal/rng"
)

// linearlySeparable generates a 2-D dataset split by the line x0 + x1 = 0.
func linearlySeparable(n int, seed int64) ([][]float64, []int) {
	g := rng.New(seed)
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		a, b := g.Normal(0, 1), g.Normal(0, 1)
		x[i] = []float64{a, b}
		if a+b > 0 {
			y[i] = 1
		}
	}
	return x, y
}

// xorData generates the canonical non-linear XOR problem.
func xorData(n int, seed int64) ([][]float64, []int) {
	g := rng.New(seed)
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		a, b := g.Normal(0, 1), g.Normal(0, 1)
		x[i] = []float64{a, b}
		if (a > 0) != (b > 0) {
			y[i] = 1
		}
	}
	return x, y
}

func accuracy(c Classifier, x [][]float64, y []int) float64 {
	correct := 0
	for i := range x {
		if Predict(c, x[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

func TestLogisticSeparable(t *testing.T) {
	x, y := linearlySeparable(500, 1)
	lr := NewLogistic()
	if err := lr.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(lr, x, y); acc < 0.95 {
		t.Fatalf("LR accuracy on separable data: %v", acc)
	}
}

func TestLogisticWeightsShiftDecision(t *testing.T) {
	// All-weight-on-positives must push predictions positive.
	x, y := linearlySeparable(300, 2)
	w := make([]float64, len(x))
	for i := range w {
		if y[i] == 1 {
			w[i] = 10
		} else {
			w[i] = 0.1
		}
	}
	lr := NewLogistic()
	if err := lr.Fit(x, y, w); err != nil {
		t.Fatal(err)
	}
	pos := 0
	for i := range x {
		pos += Predict(lr, x[i])
	}
	if float64(pos)/float64(len(x)) < 0.5 {
		t.Fatal("positive-weighted LR should predict mostly positive")
	}
}

func TestLogisticErrors(t *testing.T) {
	lr := NewLogistic()
	if err := lr.Fit(nil, nil, nil); err == nil {
		t.Fatal("empty fit must error")
	}
	if err := lr.Fit([][]float64{{1}}, []int{1, 0}, nil); err == nil {
		t.Fatal("label mismatch must error")
	}
	if err := lr.Fit([][]float64{{1}, {1, 2}}, []int{1, 0}, nil); err == nil {
		t.Fatal("ragged rows must error")
	}
}

func TestSVMSeparable(t *testing.T) {
	x, y := linearlySeparable(500, 3)
	svm := NewSVM()
	if err := svm.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(svm, x, y); acc < 0.93 {
		t.Fatalf("SVM accuracy: %v", acc)
	}
}

func TestKNN(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {10, 10}, {10, 11}}
	y := []int{0, 0, 1, 1}
	k := &KNN{K: 2}
	if err := k.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if p := k.PredictProba([]float64{0, 0.5}); p != 0 {
		t.Fatalf("kNN near cluster 0: %v", p)
	}
	if p := k.PredictProba([]float64{10, 10.5}); p != 1 {
		t.Fatalf("kNN near cluster 1: %v", p)
	}
}

func TestTreeXOR(t *testing.T) {
	x, y := xorData(600, 4)
	tree := NewTree()
	if err := tree.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tree, x, y); acc < 0.9 {
		t.Fatalf("tree accuracy on XOR: %v", acc)
	}
	if tree.Depth() < 2 {
		t.Fatalf("XOR needs depth >= 2, got %d", tree.Depth())
	}
}

func TestTreePureLeaf(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	tree := NewTree()
	if err := tree.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if p := tree.PredictProba([]float64{5}); p != 1 {
		t.Fatalf("pure leaf probability: %v", p)
	}
}

func TestForestXOR(t *testing.T) {
	x, y := xorData(600, 5)
	rf := NewForest()
	rf.Trees = 15
	if err := rf.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(rf, x, y); acc < 0.9 {
		t.Fatalf("forest accuracy on XOR: %v", acc)
	}
}

func TestMLPXOR(t *testing.T) {
	x, y := xorData(800, 6)
	mlp := NewMLP()
	mlp.Epochs = 150
	if err := mlp.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(mlp, x, y); acc < 0.85 {
		t.Fatalf("MLP accuracy on XOR: %v", acc)
	}
}

func TestProbaRange(t *testing.T) {
	x, y := linearlySeparable(200, 7)
	models := []Classifier{NewLogistic(), NewSVM(), &KNN{K: 5}, NewTree(), NewMLP()}
	for _, m := range models {
		if err := m.Fit(x, y, nil); err != nil {
			t.Fatalf("%T: %v", m, err)
		}
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		q := []float64{math.Mod(a, 10), math.Mod(b, 10)}
		for _, m := range models {
			p := m.PredictProba(q)
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredictAllProbaAll(t *testing.T) {
	x, y := linearlySeparable(100, 8)
	lr := NewLogistic()
	if err := lr.Fit(x, y, nil); err != nil {
		t.Fatal(err)
	}
	preds := PredictAll(lr, x)
	probs := ProbaAll(lr, x)
	for i := range x {
		want := 0
		if probs[i] >= 0.5 {
			want = 1
		}
		if preds[i] != want {
			t.Fatal("PredictAll inconsistent with ProbaAll")
		}
	}
}

func TestUnfittedDefaults(t *testing.T) {
	if (&KNN{}).PredictProba([]float64{1}) != 0.5 {
		t.Fatal("unfitted kNN should return 0.5")
	}
	if (&RandomForest{}).PredictProba([]float64{1}) != 0.5 {
		t.Fatal("unfitted forest should return 0.5")
	}
	if (&MLP{}).PredictProba([]float64{1}) != 0.5 {
		t.Fatal("unfitted MLP should return 0.5")
	}
}
