package matrix

import "fmt"

// Dense is a row-major dense matrix over one flat backing array. It is
// the kernel-level layout of the data plane: every row is a stride-spaced
// subslice of the same allocation, so iterating rows walks memory
// sequentially (no per-row pointer chasing) and a whole matrix copies
// with a single memmove. Dense never allocates per element or per row
// after construction.
//
// The zero value is an empty matrix. Row views returned by Row alias the
// backing array; callers that need an independent copy use Clone.
type Dense struct {
	// Data is the flat backing array, row-major: element (i, j) lives at
	// Data[i*Stride+j]. Exposed for kernels that stream the whole matrix.
	Data []float64
	// Rows and Cols are the logical dimensions.
	Rows, Cols int
	// Stride is the index distance between vertically adjacent elements
	// (>= Cols; NewDense packs rows tightly, Stride == Cols).
	Stride int
}

// NewDense returns a zeroed r×c matrix with one flat allocation.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: NewDense(%d, %d): negative dimension", r, c))
	}
	return &Dense{Data: make([]float64, r*c), Rows: r, Cols: c, Stride: c}
}

// FromRows copies a [][]float64 into a freshly allocated Dense. Every row
// must have the same length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return &Dense{}
	}
	d := NewDense(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != d.Cols {
			panic(fmt.Sprintf("matrix: FromRows row %d has %d cols, want %d", i, len(row), d.Cols))
		}
		copy(d.Data[i*d.Stride:], row)
	}
	return d
}

// Row returns row i as a view into the backing array. Mutating the view
// mutates the matrix.
func (d *Dense) Row(i int) []float64 {
	off := i * d.Stride
	return d.Data[off : off+d.Cols : off+d.Cols]
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.Stride+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.Stride+j] = v }

// RowsView returns the matrix as a []-of-rows header whose rows alias the
// backing array — the bridge to [][]float64 APIs. The header slice is a
// fresh allocation; the row data is shared. When the matrix is tightly
// packed (Stride == Cols) each row's capacity extends to the end of the
// backing array, so AsDense can later recover the flat layout from the
// header alone; do not append to a row view.
func (d *Dense) RowsView() [][]float64 {
	out := make([][]float64, d.Rows)
	if d.Stride == d.Cols {
		for i := range out {
			off := i * d.Stride
			out[i] = d.Data[off : off+d.Cols]
		}
		return out
	}
	for i := range out {
		out[i] = d.Row(i)
	}
	return out
}

// AsDense reports whether rows is a view of one tightly packed row-major
// backing array — the header shape Dense.RowsView and the dataset layer's
// FeatureMatrix produce — and if so returns a Dense sharing that backing,
// with no copying and no allocation. The reconstruction is pure safe Go:
// it requires rows[0]'s capacity to reach the end of the backing array and
// every subsequent row to alias the expected offset of that same array, so
// a [][]float64 assembled from unrelated allocations can never satisfy it.
// A successful AsDense also certifies the shape: every row has the same
// length, verified by aliasing rather than a per-row semantic scan.
func AsDense(rows [][]float64) (Dense, bool) {
	n := len(rows)
	if n == 0 || len(rows[0]) == 0 {
		return Dense{}, false
	}
	c := len(rows[0])
	if cap(rows[0]) < n*c {
		return Dense{}, false
	}
	data := rows[0][:n*c]
	for i, r := range rows {
		if len(r) != c || &r[0] != &data[i*c] {
			return Dense{}, false
		}
	}
	return Dense{Data: data, Rows: n, Cols: c, Stride: c}, true
}

// Clone returns a deep copy with a tightly packed backing array.
func (d *Dense) Clone() *Dense {
	out := NewDense(d.Rows, d.Cols)
	if d.Stride == d.Cols {
		copy(out.Data, d.Data[:d.Rows*d.Cols])
		return out
	}
	for i := 0; i < d.Rows; i++ {
		copy(out.Row(i), d.Row(i))
	}
	return out
}

// MatVecInto computes dst = d·x without allocating; dst must have length
// d.Rows and x length d.Cols.
func (d *Dense) MatVecInto(dst, x []float64) {
	if len(dst) != d.Rows || len(x) != d.Cols {
		panic(fmt.Sprintf("matrix: MatVecInto dims %d×%d vs dst %d, x %d", d.Rows, d.Cols, len(dst), len(x)))
	}
	for i := 0; i < d.Rows; i++ {
		dst[i] = Dot(d.Row(i), x)
	}
}

// TransposeMatVecInto computes dst = dᵀ·x without allocating: dst[j] =
// Σ_i d[i][j]·x[i]. dst must have length d.Cols and x length d.Rows. dst
// is fully overwritten.
func (d *Dense) TransposeMatVecInto(dst, x []float64) {
	if len(dst) != d.Cols || len(x) != d.Rows {
		panic(fmt.Sprintf("matrix: TransposeMatVecInto dims %d×%d vs dst %d, x %d", d.Rows, d.Cols, len(dst), len(x)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < d.Rows; i++ {
		Axpy(x[i], d.Row(i), dst)
	}
}
