package dataset

import (
	"math"
	"sort"
)

// Standardizer rescales numeric attributes to zero mean and unit variance.
// Categorical attributes are left untouched. The same fitted transform is
// applied to train and test data so the two stay comparable.
type Standardizer struct {
	mean, std []float64
	kinds     []AttrKind
}

// FitStandardizer computes per-attribute means and standard deviations.
func FitStandardizer(d *Dataset) *Standardizer {
	dim := d.Dim()
	s := &Standardizer{
		mean:  make([]float64, dim),
		std:   make([]float64, dim),
		kinds: make([]AttrKind, dim),
	}
	n := float64(d.Len())
	for j := 0; j < dim; j++ {
		s.kinds[j] = d.Attrs[j].Kind
		var sum float64
		for _, row := range d.X {
			sum += row[j]
		}
		m := sum / n
		var ss float64
		for _, row := range d.X {
			diff := row[j] - m
			ss += diff * diff
		}
		sd := math.Sqrt(ss / n)
		if sd < 1e-12 {
			sd = 1
		}
		s.mean[j], s.std[j] = m, sd
	}
	return s
}

// Apply standardizes numeric columns of d in place.
func (s *Standardizer) Apply(d *Dataset) {
	for _, row := range d.X {
		for j := range row {
			if s.kinds[j] == Numeric {
				row[j] = (row[j] - s.mean[j]) / s.std[j]
			}
		}
	}
}

// ApplyRow standardizes a single feature row (without S) in place.
func (s *Standardizer) ApplyRow(row []float64) {
	for j := range row {
		if j < len(s.kinds) && s.kinds[j] == Numeric {
			row[j] = (row[j] - s.mean[j]) / s.std[j]
		}
	}
}

// Discretizer maps each attribute into a small number of integer bins so
// that causal stratification and the Calmon optimization can treat the
// joint distribution as a finite contingency table.
type Discretizer struct {
	// edges[j] holds the interior bin edges for numeric attribute j; a
	// value v falls in bin = #edges below v. Categorical attributes use
	// their code directly (capped at Bins-1).
	edges [][]float64
	kinds []AttrKind
	cards []int
	// Bins is the number of bins used for numeric attributes.
	Bins int
}

// FitDiscretizer computes equal-frequency bin edges (bins quantiles) for
// each numeric attribute of d.
func FitDiscretizer(d *Dataset, bins int) *Discretizer {
	if bins < 2 {
		bins = 2
	}
	dim := d.Dim()
	disc := &Discretizer{
		edges: make([][]float64, dim),
		kinds: make([]AttrKind, dim),
		cards: make([]int, dim),
		Bins:  bins,
	}
	for j := 0; j < dim; j++ {
		disc.kinds[j] = d.Attrs[j].Kind
		disc.cards[j] = d.Attrs[j].Card
		if d.Attrs[j].Kind != Numeric {
			continue
		}
		col := d.Column(j)
		sort.Float64s(col)
		edges := make([]float64, 0, bins-1)
		for b := 1; b < bins; b++ {
			q := float64(b) / float64(bins)
			pos := int(q * float64(len(col)-1))
			e := col[pos]
			if len(edges) == 0 || e > edges[len(edges)-1] {
				edges = append(edges, e)
			}
		}
		disc.edges[j] = edges
	}
	return disc
}

// Bin maps a raw value of attribute j into its bin index.
func (disc *Discretizer) Bin(j int, v float64) int {
	if disc.kinds[j] == Categorical {
		b := int(v)
		if b < 0 {
			b = 0
		}
		if disc.cards[j] > 0 && b >= disc.cards[j] {
			b = disc.cards[j] - 1
		}
		return b
	}
	edges := disc.edges[j]
	b := sort.SearchFloat64s(edges, v)
	// SearchFloat64s returns the insert position; values equal to an edge
	// belong to the lower bin, matching half-open intervals (lo, hi].
	for b > 0 && v <= edges[b-1] {
		b--
	}
	return b
}

// Cardinality returns the number of bins attribute j can take.
func (disc *Discretizer) Cardinality(j int) int {
	if disc.kinds[j] == Categorical {
		if disc.cards[j] > 0 {
			return disc.cards[j]
		}
		return disc.Bins
	}
	return len(disc.edges[j]) + 1
}

// Code maps a full feature row into a single stratum code over the given
// attribute subset, little-endian in the subset order. The second return
// value is the total number of strata.
func (disc *Discretizer) Code(row []float64, attrs []int) (code, total int) {
	total = 1
	for _, j := range attrs {
		card := disc.Cardinality(j)
		code += disc.Bin(j, row[j]) * total
		total *= card
	}
	return code, total
}
