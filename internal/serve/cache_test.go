package serve

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"fairbench/internal/store"
)

// TestServeCacheEndpointRoundTrip drives the daemon's /cache mount with
// a raw HTTP client: PUT a verified entry, HEAD and GET it back, watch
// a forged key miss and a corrupt upload bounce, and find the protocol
// counters in /metrics.
func TestServeCacheEndpointRoundTrip(t *testing.T) {
	_, ts := newServer(t, Config{CacheDir: t.TempDir()})
	k := store.Key{Fingerprint: strings.Repeat("ab", 32), Index: 3, Seed: 42, Arch: "amd64"}
	payload := []byte(`{"index":3,"row":{"acc":0.9}}`)
	entry, err := store.EncodeEntry(k, payload)
	if err != nil {
		t.Fatal(err)
	}
	keyURL := ts.URL + "/cache/" + store.EncodeKeyPath(k)

	do := func(method, url string, body []byte) int {
		t.Helper()
		req, err := http.NewRequest(method, url, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := do(http.MethodHead, keyURL, nil); code != http.StatusNotFound {
		t.Fatalf("HEAD before PUT: %d, want 404", code)
	}
	if code := do(http.MethodPut, keyURL, entry); code != http.StatusNoContent {
		t.Fatalf("PUT: %d, want 204", code)
	}
	if code := do(http.MethodHead, keyURL, nil); code != http.StatusOK {
		t.Fatalf("HEAD after PUT: %d, want 200", code)
	}

	// GET must return wire bytes that independently verify for the key.
	code, body, _ := get(t, keyURL)
	if code != http.StatusOK {
		t.Fatalf("GET: %d, want 200", code)
	}
	got, err := store.DecodeEntry(k, []byte(body))
	if err != nil {
		t.Fatalf("GET body fails verification: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("GET payload %s, want %s", got, payload)
	}

	// A lookup under different key fields never sees the entry.
	forged := k
	forged.Seed = 99
	if code := do(http.MethodGet, ts.URL+"/cache/"+store.EncodeKeyPath(forged), nil); code != http.StatusNotFound {
		t.Fatalf("forged-key GET: %d, want 404", code)
	}
	// A corrupt upload bounces with 422 and never lands.
	if code := do(http.MethodPut, ts.URL+"/cache/"+store.EncodeKeyPath(forged), entry); code != http.StatusUnprocessableEntity {
		t.Fatalf("mis-keyed PUT: %d, want 422", code)
	}
	if code := do(http.MethodPut, keyURL, []byte(`{"version":1,"garbage":`)); code != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt PUT: %d, want 422", code)
	}
	// Malformed keys are a 400, not a guess.
	if code := do(http.MethodGet, ts.URL+"/cache/UPPER/amd64/1/1", nil); code != http.StatusBadRequest {
		t.Fatalf("malformed-key GET: %d, want 400", code)
	}

	code, metrics, _ := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	// hits: HEAD-after-PUT + GET; misses: HEAD-before-PUT + forged GET.
	for _, want := range []string{
		"fairbench_cache_http_hits_total 2",
		"fairbench_cache_http_misses_total 2",
		"fairbench_cache_http_writes_total 1",
		"fairbench_store_rejected_total 0",
		"fairbench_store_remote_degraded_total 0",
		"fairbench_store_entries 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

// TestServeWithoutCacheDirHasNoCacheMount: a daemon with no cache
// directory has nothing to share — the /cache prefix must not resolve.
func TestServeWithoutCacheDirHasNoCacheMount(t *testing.T) {
	_, ts := newServer(t, Config{})
	k := store.Key{Fingerprint: strings.Repeat("ab", 32), Index: 0, Seed: 1, Arch: "amd64"}
	code, _, _ := get(t, ts.URL+"/cache/"+store.EncodeKeyPath(k))
	if code != http.StatusNotFound {
		t.Fatalf("GET /cache on a cacheless daemon: %d, want 404", code)
	}
}
