package causal

import (
	"math"
	"testing"

	"fairbench/internal/dataset"
)

// universityGraph builds the Figure 13 graph of the paper's appendix:
// gender -> dept_choice -> admitted, gender -> admitted, SAT -> admitted.
func universityGraph() *Graph {
	g := NewGraph()
	g.MustEdge("gender", "dept_choice")
	g.MustEdge("gender", "admitted")
	g.MustEdge("dept_choice", "admitted")
	g.MustEdge("SAT", "admitted")
	return g
}

func TestCycleRejection(t *testing.T) {
	g := NewGraph()
	g.MustEdge("a", "b")
	g.MustEdge("b", "c")
	if err := g.AddEdge("c", "a"); err == nil {
		t.Fatal("cycle must be rejected")
	}
	if err := g.AddEdge("a", "a"); err == nil {
		t.Fatal("self-loop must be rejected")
	}
}

func TestParentsChildren(t *testing.T) {
	g := universityGraph()
	p := g.Parents("admitted")
	if len(p) != 3 {
		t.Fatalf("parents of admitted: %v", p)
	}
	c := g.Children("gender")
	if len(c) != 2 {
		t.Fatalf("children of gender: %v", c)
	}
}

func TestDescendantsAncestors(t *testing.T) {
	g := universityGraph()
	d := g.Descendants("gender")
	if !d["dept_choice"] || !d["admitted"] || d["SAT"] {
		t.Fatalf("descendants of gender: %v", d)
	}
	a := g.Ancestors("admitted")
	if !a["gender"] || !a["SAT"] || !a["dept_choice"] {
		t.Fatalf("ancestors of admitted: %v", a)
	}
}

func TestMediators(t *testing.T) {
	g := universityGraph()
	m := g.Mediators("gender", "admitted")
	if len(m) != 1 || m[0] != "dept_choice" {
		t.Fatalf("mediators: %v", m)
	}
}

func TestTopoOrder(t *testing.T) {
	g := universityGraph()
	order := g.TopoOrder()
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["gender"] > pos["dept_choice"] || pos["dept_choice"] > pos["admitted"] {
		t.Fatalf("topo order violates edges: %v", order)
	}
}

func TestDSeparation(t *testing.T) {
	// Chain a -> b -> c: a and c are d-connected, but separated given b.
	chain := NewGraph()
	chain.MustEdge("a", "b")
	chain.MustEdge("b", "c")
	if chain.DSeparated("a", "c", nil) {
		t.Fatal("chain endpoints must be connected unconditionally")
	}
	if !chain.DSeparated("a", "c", []string{"b"}) {
		t.Fatal("conditioning on the chain middle must separate")
	}
	// Collider a -> c <- b: a and b are separated, but connected given c.
	col := NewGraph()
	col.MustEdge("a", "c")
	col.MustEdge("b", "c")
	if !col.DSeparated("a", "b", nil) {
		t.Fatal("collider parents must be separated unconditionally")
	}
	if col.DSeparated("a", "b", []string{"c"}) {
		t.Fatal("conditioning on a collider must connect its parents")
	}
	// Fork a <- b -> c: connected, separated given b.
	fork := NewGraph()
	fork.MustEdge("b", "a")
	fork.MustEdge("b", "c")
	if fork.DSeparated("a", "c", nil) {
		t.Fatal("fork endpoints must be connected unconditionally")
	}
	if !fork.DSeparated("a", "c", []string{"b"}) {
		t.Fatal("conditioning on the fork root must separate")
	}
}

// universityData builds the 12-tuple Figure 12 table with the predictions
// listed there (admitted column). Attributes: SAT (0=Average, 1=High) and
// dept_choice (0=Mathematics, 1=Physics); S: gender (1=Male).
func universityData() (*dataset.Dataset, []int) {
	d := &dataset.Dataset{
		Name: "university",
		Attrs: []dataset.Attr{
			{Name: "SAT", Kind: dataset.Categorical, Card: 2},
			{Name: "dept_choice", Kind: dataset.Categorical, Card: 2},
		},
		SName: "gender",
		YName: "admitted",
	}
	rows := []struct {
		sat, dept, s, yhat int
	}{
		{1, 1, 1, 1}, {1, 0, 1, 0}, {0, 1, 1, 1}, {1, 0, 1, 1},
		{1, 1, 1, 1}, {0, 0, 1, 0},
		{1, 0, 0, 0}, {0, 0, 0, 0}, {1, 0, 0, 1}, {1, 1, 0, 1},
		{0, 0, 0, 0}, {0, 1, 0, 1},
	}
	var yhat []int
	for _, r := range rows {
		d.X = append(d.X, []float64{float64(r.sat), float64(r.dept)})
		d.S = append(d.S, r.s)
		d.Y = append(d.Y, r.yhat) // ground truth unused by the estimator
		yhat = append(yhat, r.yhat)
	}
	return d, yhat
}

func TestTotalEffectWorkedExample(t *testing.T) {
	// Paper Example 4: TE = P(Ŷ|S=1) - P(Ŷ|S=0) = 4/6 - 3/6 = 1/6.
	g := NewGraph()
	g.MustEdge("gender", "dept_choice")
	g.MustEdge("gender", "admitted")
	g.MustEdge("dept_choice", "admitted")
	g.MustEdge("SAT", "admitted")
	d, yhat := universityData()
	est := NewEstimator(d, g, 2)
	eff := est.Estimate(d, yhat)
	if math.Abs(eff.TE-1.0/6) > 1e-9 {
		t.Fatalf("TE: got %v want %v", eff.TE, 1.0/6)
	}
	// dept_choice is the only mediator.
	med := est.Mediators()
	if len(med) != 1 || med[0] != 1 {
		t.Fatalf("mediators: %v", med)
	}
	// NDE + NIE must carry the same sign structure as TE and stay in
	// range; for this near-additive example their sum approximates TE.
	if math.Abs(eff.NDE+eff.NIE-eff.TE) > 0.25 {
		t.Fatalf("NDE (%v) + NIE (%v) far from TE (%v)", eff.NDE, eff.NIE, eff.TE)
	}
}

func TestEffectsNoMediator(t *testing.T) {
	// Graph with no directed path through attributes: all effect direct.
	g := NewGraph()
	g.MustEdge("gender", "admitted")
	g.MustEdge("SAT", "admitted")
	g.AddNode("dept_choice")
	d, yhat := universityData()
	est := NewEstimator(d, g, 2)
	eff := est.Estimate(d, yhat)
	if eff.NDE != eff.TE || eff.NIE != 0 {
		t.Fatalf("no-mediator decomposition: %+v", eff)
	}
}

func TestEffectsFairPredictor(t *testing.T) {
	// Predictions independent of S and of the mediators: all effects 0.
	g := universityGraph()
	d, _ := universityData()
	yhat := make([]int, d.Len())
	for i := range yhat {
		yhat[i] = 1
	}
	est := NewEstimator(d, g, 2)
	eff := est.Estimate(d, yhat)
	if eff.TE != 0 || math.Abs(eff.NDE) > 1e-9 || math.Abs(eff.NIE) > 1e-9 {
		t.Fatalf("constant predictor must have zero effects: %+v", eff)
	}
}

func TestEstimateEmpty(t *testing.T) {
	g := universityGraph()
	d, _ := universityData()
	est := NewEstimator(d, g, 2)
	empty := &dataset.Dataset{Name: "e", Attrs: d.Attrs, SName: d.SName, YName: d.YName}
	eff := est.Estimate(empty, nil)
	if eff.TE != 0 {
		t.Fatalf("empty estimate: %+v", eff)
	}
}
