// Package postproc implements the three post-processing approaches of the
// benchmark (Figure 5, "post" rows): Kam-Kar reject-option classification,
// the Hardt equalized-odds derived predictor, and Pleiss calibrated
// equalized odds. Each mechanism implements fair.Adjuster — it rewrites
// the positive-prediction probability of an already-trained classifier per
// sensitive group — and is exposed as a complete fair.Approach through
// fair.PostProcessed.
package postproc

import (
	"fmt"
	"math"

	"fairbench/internal/classifier"
	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/lp"
	"fairbench/internal/matrix"
)

// KamKar implements Kamiran, Karim & Zhang's reject-option classification
// for demographic parity: predictions inside the low-confidence critical
// region max(p, 1-p) < theta are flipped in favor of the unprivileged
// group (unprivileged -> positive, privileged -> negative). Theta is tuned
// on the training data to the smallest value whose resulting disparate
// impact reaches the target.
type KamKar struct {
	// TargetDI is the disparate-impact level to reach (default 0.95).
	TargetDI float64
	// MaxTheta caps the critical region (default 0.95).
	MaxTheta float64

	theta float64
}

// AdjustName implements fair.Adjuster.
func (k *KamKar) AdjustName() string { return "KamKar" }

// FitAdjust tunes theta on the training probabilities.
func (k *KamKar) FitAdjust(train *dataset.Dataset, proba []float64) error {
	if k.TargetDI == 0 {
		k.TargetDI = 0.95
	}
	if k.MaxTheta == 0 {
		k.MaxTheta = 0.95
	}
	best, bestScore := 0.5, -1.0
	for theta := 0.5; theta <= k.MaxTheta+1e-9; theta += 0.01 {
		var pos, tot [2]float64
		for i, p := range proba {
			s := train.S[i]
			tot[s]++
			if k.decide(p, s, theta) == 1 {
				pos[s]++
			}
		}
		if tot[0] == 0 || tot[1] == 0 {
			break
		}
		r0, r1 := pos[0]/tot[0], pos[1]/tot[1]
		di := 1.0
		switch {
		case r1 > 0:
			di = r0 / r1
		case r0 > 0:
			di = math.Inf(1)
		}
		// Score the candidate by its symmetric parity min(DI, 1/DI): with
		// coarse base probabilities (kNN's k-fractions) tiny theta steps
		// flip whole blocks of tuples, so the tuned theta is the best
		// achievable rather than the first to enter the target band.
		score := di
		if di > 1 {
			score = 1 / di
		}
		if math.IsInf(di, 1) {
			score = 0
		}
		if score > bestScore {
			bestScore, best = score, theta
		}
		if di >= k.TargetDI && di <= 1/k.TargetDI {
			break
		}
	}
	k.theta = best
	return nil
}

// decide applies the reject-option rule at a given theta.
func (k *KamKar) decide(p float64, s int, theta float64) int {
	conf := math.Max(p, 1-p)
	if conf < theta {
		// Critical region: favor the unprivileged group.
		if s == 0 {
			return 1
		}
		return 0
	}
	if p >= 0.5 {
		return 1
	}
	return 0
}

// AdjustedProba implements fair.Adjuster (deterministic rule: 0 or 1).
func (k *KamKar) AdjustedProba(p float64, s int) float64 {
	return float64(k.decide(p, s, k.theta))
}

// Theta exposes the tuned critical-region boundary.
func (k *KamKar) Theta() float64 { return k.theta }

// NewKamKar returns the evaluated Kam-Kar^dp approach.
func NewKamKar(factory classifier.Factory, seed int64) fair.Approach {
	return &fair.PostProcessed{
		ApproachName: "KamKar-DP",
		Target:       []fair.Metric{fair.MetricDI},
		Mechanism:    &KamKar{},
		Factory:      factory,
		IncludeS:     true,
		Seed:         seed,
	}
}

// Hardt implements Hardt, Price & Srebro's equalized-odds post-processing:
// a derived predictor Ỹ = g(Ŷ, S) defined by four mixing probabilities
//
//	α_s = P(Ỹ=1 | Ŷ=1, S=s),  β_s = P(Ỹ=1 | Ŷ=0, S=s)
//
// chosen by a linear program that equalizes the derived TPR and FPR across
// groups while minimizing the expected error.
type Hardt struct {
	alpha, beta [2]float64
}

// AdjustName implements fair.Adjuster.
func (h *Hardt) AdjustName() string { return "Hardt" }

// FitAdjust solves the equalized-odds LP on the training predictions. The
// base rates are "soft": TPR̂_s = E[p | Y=1, S=s] and FPR̂_s = E[p | Y=0,
// S=s], treating the base as the randomized classifier its probabilities
// describe. Soft rates are never exactly 0 or 1, which removes the LP's
// degenerate corner when a base model emits no positives for one group
// (there the hard rates force TPR = FPR and the only "fair" solution is
// the useless constant classifier).
func (h *Hardt) FitAdjust(train *dataset.Dataset, proba []float64) error {
	var tp, fp, pn, nn [2]float64 // soft positives and masses per group
	for i, p := range proba {
		s := train.S[i]
		if train.Y[i] == 1 {
			pn[s]++
			tp[s] += p
		} else {
			nn[s]++
			fp[s] += p
		}
	}
	var tpr, fpr [2]float64
	for s := 0; s < 2; s++ {
		if pn[s] > 0 {
			tpr[s] = tp[s] / pn[s]
		}
		if nn[s] > 0 {
			fpr[s] = fp[s] / nn[s]
		}
	}
	// Variables x = [α0, α1, β0, β1].
	// Derived rates: TPR_s = α_s·tpr_s + β_s·(1-tpr_s)
	//                FPR_s = α_s·fpr_s + β_s·(1-fpr_s)
	// Objective: balanced expected error — each class contributes half the
	// loss mass regardless of prevalence:
	//   Σ_s [ ½·P(S=s|Y=1)·(1-TPR_s) + ½·P(S=s|Y=0)·FPR_s ].
	// Plain expected error on a heavily imbalanced base (Adult: 24%
	// positives) is minimized by the trivial all-negative predictor, which
	// satisfies equalized odds vacuously; balancing the classes keeps the
	// derived predictor informative.
	posTotal := pn[0] + pn[1]
	negTotal := nn[0] + nn[1]
	c := make([]float64, 4)
	for s := 0; s < 2; s++ {
		wPos, wNeg := 0.0, 0.0
		if posTotal > 0 {
			wPos = 0.5 * pn[s] / posTotal
		}
		if negTotal > 0 {
			wNeg = 0.5 * nn[s] / negTotal
		}
		c[s] += -wPos*tpr[s] + wNeg*fpr[s]
		c[2+s] += -wPos*(1-tpr[s]) + wNeg*(1-fpr[s])
	}
	rows := []lp.Constraint{
		// TPR_0 = TPR_1
		{A: []float64{tpr[0], -tpr[1], 1 - tpr[0], -(1 - tpr[1])}, Rel: lp.EQ, B: 0},
		// FPR_0 = FPR_1
		{A: []float64{fpr[0], -fpr[1], 1 - fpr[0], -(1 - fpr[1])}, Rel: lp.EQ, B: 0},
	}
	for j := 0; j < 4; j++ {
		a := make([]float64, 4)
		a[j] = 1
		rows = append(rows, lp.Constraint{A: a, Rel: lp.LE, B: 1})
	}
	x, _, err := lp.Solve(lp.Problem{C: c, Rows: rows})
	if err != nil {
		return fmt.Errorf("hardt: %w", err)
	}
	h.alpha = [2]float64{matrix.Clamp(x[0], 0, 1), matrix.Clamp(x[1], 0, 1)}
	h.beta = [2]float64{matrix.Clamp(x[2], 0, 1), matrix.Clamp(x[3], 0, 1)}
	return nil
}

// AdjustedProba implements fair.Adjuster: the derived predictor's positive
// probability α_s·p + β_s·(1-p), mixing over the base's randomized
// prediction.
func (h *Hardt) AdjustedProba(p float64, s int) float64 {
	return h.alpha[s]*p + h.beta[s]*(1-p)
}

// MixingRates exposes the LP solution (α_0, α_1, β_0, β_1).
func (h *Hardt) MixingRates() (alpha, beta [2]float64) { return h.alpha, h.beta }

// NewHardt returns the evaluated Hardt^eo approach.
func NewHardt(factory classifier.Factory, seed int64) fair.Approach {
	return &fair.PostProcessed{
		ApproachName: "Hardt-EO",
		Target:       []fair.Metric{fair.MetricTPRB, fair.MetricTNRB},
		Mechanism:    &Hardt{},
		Factory:      factory,
		IncludeS:     true,
		Seed:         seed,
	}
}

// Pleiss implements Pleiss et al.'s calibrated equalized odds for equal
// opportunity (the evaluated Pleiss^eop variant equalizes TPR): within the
// favored group — the one with the higher base TPR — predictions are
// withheld with probability alpha and replaced by a base-rate coin flip,
// lowering that group's TPR to the unfavored group's level while keeping
// the classifier calibrated.
type Pleiss struct {
	alpha    float64
	favored  int
	baseRate [2]float64
}

// AdjustName implements fair.Adjuster.
func (pl *Pleiss) AdjustName() string { return "Pleiss" }

// FitAdjust computes the withholding probability from the per-group TPRs.
func (pl *Pleiss) FitAdjust(train *dataset.Dataset, proba []float64) error {
	var tp, pn, pos, tot [2]float64
	for i, p := range proba {
		s := train.S[i]
		tot[s]++
		pred := 0
		if p >= 0.5 {
			pred = 1
		}
		if train.Y[i] == 1 {
			pn[s]++
			pos[s]++
			if pred == 1 {
				tp[s]++
			}
		}
	}
	var tpr [2]float64
	for s := 0; s < 2; s++ {
		if pn[s] > 0 {
			tpr[s] = tp[s] / pn[s]
		}
		if tot[s] > 0 {
			pl.baseRate[s] = pos[s] / tot[s]
		}
	}
	pl.favored = 0
	if tpr[1] > tpr[0] {
		pl.favored = 1
	}
	f, u := pl.favored, 1-pl.favored
	den := tpr[f] - pl.baseRate[f]
	if math.Abs(den) < 1e-9 {
		pl.alpha = 0
		return nil
	}
	pl.alpha = matrix.Clamp((tpr[f]-tpr[u])/den, 0, 1)
	return nil
}

// AdjustedProba implements fair.Adjuster: favored-group predictions are
// mixed with the group base rate with weight alpha.
func (pl *Pleiss) AdjustedProba(p float64, s int) float64 {
	hard := 0.0
	if p >= 0.5 {
		hard = 1
	}
	if s != pl.favored {
		return hard
	}
	return (1-pl.alpha)*hard + pl.alpha*pl.baseRate[s]
}

// Alpha exposes the withholding probability.
func (pl *Pleiss) Alpha() float64 { return pl.alpha }

// NewPleiss returns the evaluated Pleiss^eop approach.
func NewPleiss(factory classifier.Factory, seed int64) fair.Approach {
	return &fair.PostProcessed{
		ApproachName: "Pleiss-EOP",
		Target:       []fair.Metric{fair.MetricTPRB},
		Mechanism:    &Pleiss{},
		Factory:      factory,
		IncludeS:     true,
		Seed:         seed,
	}
}
