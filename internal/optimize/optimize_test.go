package optimize

import (
	"math"
	"testing"
	"testing/quick"
)

// quadratic (w-3)^2 + (w2+1)^2 with gradient.
func quad(w, grad []float64) float64 {
	grad[0] = 2 * (w[0] - 3)
	grad[1] = 2 * (w[1] + 1)
	return (w[0]-3)*(w[0]-3) + (w[1]+1)*(w[1]+1)
}

func TestGradientDescentQuadratic(t *testing.T) {
	w, val := GradientDescent(quad, []float64{0, 0}, GDConfig{})
	if math.Abs(w[0]-3) > 1e-3 || math.Abs(w[1]+1) > 1e-3 {
		t.Fatalf("GD solution: %v (val %v)", w, val)
	}
}

func TestAdamQuadratic(t *testing.T) {
	w, _ := Adam(quad, []float64{10, -10}, AdamConfig{MaxIter: 3000, Step: 0.1})
	if math.Abs(w[0]-3) > 1e-2 || math.Abs(w[1]+1) > 1e-2 {
		t.Fatalf("Adam solution: %v", w)
	}
}

func TestProjectedGDStaysInBox(t *testing.T) {
	// Minimize (w-3)^2 constrained to [0,1]: optimum at the boundary 1.
	obj := func(w, grad []float64) float64 {
		grad[0] = 2 * (w[0] - 3)
		return (w[0] - 3) * (w[0] - 3)
	}
	w, _ := GradientDescent(obj, []float64{0.5}, GDConfig{
		Project: func(w []float64) { ProjectBox(w, 0, 1) },
	})
	if math.Abs(w[0]-1) > 1e-6 {
		t.Fatalf("projected optimum: %v", w[0])
	}
}

func TestMinimizePenalty(t *testing.T) {
	// Minimize (w-3)^2 s.t. w <= 1: optimum at w = 1.
	obj := func(w, grad []float64) float64 {
		grad[0] = 2 * (w[0] - 3)
		return (w[0] - 3) * (w[0] - 3)
	}
	con := func(w, grad []float64) float64 {
		grad[0] = 1
		return w[0] - 1
	}
	w := MinimizePenalty(obj, []Constraint{con}, []float64{0}, PenaltyConfig{})
	if math.Abs(w[0]-1) > 0.05 {
		t.Fatalf("penalty optimum: %v", w[0])
	}
}

func TestProjectSimplexProperties(t *testing.T) {
	f := func(raw [6]float64) bool {
		w := make([]float64, 6)
		for i, v := range raw {
			w[i] = math.Mod(v, 100)
			if math.IsNaN(w[i]) {
				return true
			}
		}
		ProjectSimplex(w)
		var sum float64
		for _, v := range w {
			if v < -1e-9 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProjectSimplexIdempotent(t *testing.T) {
	w := []float64{0.2, 0.3, 0.5}
	ProjectSimplex(w)
	if math.Abs(w[0]-0.2) > 1e-9 || math.Abs(w[2]-0.5) > 1e-9 {
		t.Fatalf("simplex point must be fixed: %v", w)
	}
}

func TestProjectSimplexKnown(t *testing.T) {
	w := []float64{2, 0}
	ProjectSimplex(w)
	if math.Abs(w[0]-1) > 1e-9 || math.Abs(w[1]) > 1e-9 {
		t.Fatalf("projection of (2,0): %v", w)
	}
}

func TestBisect(t *testing.T) {
	root := Bisect(func(x float64) float64 { return x*x*x - 8 }, 0, 10, 60)
	if math.Abs(root-2) > 1e-9 {
		t.Fatalf("bisect root: %v", root)
	}
}

func TestGoldenSection(t *testing.T) {
	min := GoldenSection(func(x float64) float64 { return (x - 1.5) * (x - 1.5) }, 0, 10, 80)
	if math.Abs(min-1.5) > 1e-6 {
		t.Fatalf("golden-section minimum: %v", min)
	}
}
