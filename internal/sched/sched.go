// Package sched schedules one experiment grid across a pool of hosts:
// the multi-host layer above internal/dispatch's single-machine
// coordinator. It reuses the dispatch directory protocol wholesale — the
// same manifest.json (now carrying an explicit range plan), the same
// fingerprinted part-NNN.json envelopes, the same acceptance gate
// (dispatch.ValidatePart) — so a sched directory is resumable by either
// scheduler and its merged output is byte-identical (timing aside) to a
// serial run of the same spec.
//
// What sched adds over dispatch:
//
//   - pluggable transports: work reaches a host through the Transport
//     interface — LocalExec re-execs this binary's worker subcommand,
//     RemoteExec streams the manifest to a worker binary over any
//     command runner (ssh-shaped), and tests inject chaos through the
//     same seam;
//   - per-host concurrency slots and a pool definition (hosts.json);
//   - failure handling: heartbeat/deadline detection declares silent
//     hosts dead, failed attempts retry on other hosts
//     (retry-with-exclusion), repeatedly failing hosts are excluded and
//     their ranges reassigned to survivors;
//   - cache-aware planning: the shard plan consults the result store at
//     plan time, so fully-cached ranges never reach a host (the
//     coordinator materializes them from the store) and the remaining
//     ranges are balanced by uncached cell count, not raw cell count.
//
// Failure semantics, in one table:
//
//	worker exits non-zero      attempt fails; range offered to another host
//	worker killed (SIGKILL)    same — process death fails the attempt at once
//	transport goes silent      heartbeat lapse: attempt cancelled, range reassigned
//	corrupt/forged part        rejected by the shared validation gate; attempt fails
//	host keeps failing         excluded after MaxHostFailures; its ranges move on
//	every host failed a range  exclusions reset, next round (up to Retries rounds)
//	ranges still missing       error names them; the directory stays resumable
//
// Every path converges to the same merged bytes or fails resumably;
// nothing is ever merged around.
package sched

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"fairbench/internal/dispatch"
	"fairbench/internal/experiments"
	"fairbench/internal/runner"
	"fairbench/internal/shard"
	"fairbench/internal/store"
)

// Options configures one scheduled run.
type Options struct {
	// Dir is the sched directory (created if missing): a dispatch-layer
	// directory holding manifest.json and part files. Required.
	Dir string
	// Hosts is the execution pool. Empty defaults to one local host
	// whose slot count is the runner parallelism.
	Hosts []Host
	// Shards targets how many work ranges the cache-aware plan produces
	// (the actual count varies with cache fragmentation). Defaults to
	// the pool's total slot count.
	Shards int
	// CacheDir, when set, is the result store consulted at plan time
	// (to skip and balance) and by every worker at cell granularity.
	CacheDir string
	// HeartbeatTimeout is how long an in-flight assignment may go
	// without a transport heartbeat before its host is declared dead
	// and the range reassigned. Default 60s.
	HeartbeatTimeout time.Duration
	// Retries is how many times a range's per-host exclusions are reset
	// after every live host has failed it — full extra rounds over the
	// pool, not per-host attempts. Default 1; negative means no extra
	// rounds (a range every live host has failed once fails for good).
	Retries int
	// MaxHostFailures is how many failed attempts a host may accumulate
	// before it is excluded from the pool for the rest of the run.
	// Default 3.
	MaxHostFailures int
	// Transports maps transport names to implementations, overlaying
	// the built-ins ("local", "remote").
	Transports map[string]Transport
	// OnEvent, when non-nil, observes scheduling events as they happen:
	// transport heartbeats, range completions and failures, and host
	// exclusions. It is the seam a serving layer uses to export live
	// per-host health without polling. Callbacks may arrive concurrently
	// (heartbeats come from transport goroutines) and must return
	// quickly — they run on the scheduler's hot paths.
	OnEvent func(Event)
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// EventType classifies one scheduling event.
type EventType string

// The scheduling event kinds OnEvent observes.
const (
	// EventHeartbeat: the host's transport reported liveness evidence.
	EventHeartbeat EventType = "heartbeat"
	// EventCompleted: the host delivered a validated part for the range.
	EventCompleted EventType = "completed"
	// EventFailed: the host's attempt at the range failed (Err says why).
	EventFailed EventType = "failed"
	// EventExcluded: the host left the pool (repeated failures or a
	// heartbeat lapse); its ranges move to survivors.
	EventExcluded EventType = "excluded"
)

// Event is one observed scheduling transition (see Options.OnEvent).
type Event struct {
	Type EventType
	// Host names the pool member the event concerns.
	Host string
	// Range is the plan position concerned (-1 when not range-scoped,
	// e.g. exclusions).
	Range int
	// Err carries the failure message for EventFailed/EventExcluded.
	Err string
}

// Report describes what a scheduled run actually did.
type Report struct {
	Fingerprint string
	// Ranges is the plan the run executed (from the manifest).
	Ranges []shard.Range
	// Uncached[i] is how many cells of Ranges[i] the result store could
	// not serve when this invocation started. Ranges whose envelope was
	// reused report 0 — their cells are already delivered, so nothing is
	// owed and the store is not re-probed for them.
	Uncached []int
	// Reused lists plan positions whose envelope already existed in the
	// directory and validated.
	Reused []int
	// Skipped lists fully-cached positions the coordinator materialized
	// from the store without assigning any host.
	Skipped []int
	// Completed maps each host to the positions it delivered.
	Completed map[string][]int
	// Attempts maps each executed position to how many placements it
	// took across the pool.
	Attempts map[int]int
	// Excluded lists hosts declared dead or repeatedly failing.
	Excluded []string
	// Failed lists positions still missing when the run gave up.
	Failed []int
	// CellsComputed and CellsCached split the grid's cells by who did
	// the work, summed over all envelopes.
	CellsComputed, CellsCached int
}

// Run schedules the spec's grid across the pool and merges the completed
// envelope set into driver-native output, byte-identical (timing aside)
// to a serial run. An existing directory for the same grid is resumed:
// valid envelopes are reused and only missing ranges execute. On failure
// the error names the ranges still missing and the directory remains
// resumable — by Run, Resume, or dispatch.Resume.
func Run(spec experiments.Spec, opts Options) (*experiments.Output, *Report, error) {
	return RunContext(context.Background(), spec, opts)
}

// RunContext is Run under a cancellation context. Once ctx is done no new
// assignment is placed, every in-flight attempt is cancelled (transports
// kill their workers), and the call returns an error wrapping ctx.Err().
// Delivered parts stay on disk and workers checkpoint through the result
// cache, so a cancelled run resumes exactly like a crashed one.
func RunContext(ctx context.Context, spec experiments.Spec, opts Options) (*experiments.Output, *Report, error) {
	ns, err := spec.Normalize()
	if err != nil {
		return nil, nil, err
	}
	return run(ctx, ns, opts, false)
}

// Resume continues the run recorded in dir: the spec, plan, and cache
// directory all come from the manifest.
func Resume(dir string, opts Options) (*experiments.Output, *Report, error) {
	return ResumeContext(context.Background(), dir, opts)
}

// ResumeContext is Resume under a cancellation context (see RunContext
// for the cancellation semantics).
func ResumeContext(ctx context.Context, dir string, opts Options) (*experiments.Output, *Report, error) {
	m, err := dispatch.ReadManifest(filepath.Join(dir, dispatch.ManifestName))
	if err != nil {
		return nil, nil, fmt.Errorf("sched: %s: %w — nothing to resume (run sched first)", dir, err)
	}
	opts.Dir, opts.CacheDir = dir, m.CacheDir
	return run(ctx, m.Spec, opts, true)
}

// run is the shared plan → scan → serve/schedule → merge loop.
func run(ctx context.Context, ns experiments.Spec, opts Options, resuming bool) (*experiments.Output, *Report, error) {
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}
	pool, err := buildPool(&opts)
	if err != nil {
		return nil, nil, err
	}
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("sched: no sched directory")
	}
	var st *store.Store
	if opts.CacheDir != "" {
		if st, err = store.Open(opts.CacheDir); err != nil {
			return nil, nil, err
		}
	}

	m, manifestPath, ranges, uncached, plan, st, err := prepare(ns, &opts, st, resuming)
	if err != nil {
		return nil, nil, err
	}
	manifestBytes, err := os.ReadFile(manifestPath)
	if err != nil {
		return nil, nil, fmt.Errorf("sched: %w", err)
	}
	rep := &Report{
		Fingerprint: m.Fingerprint,
		Ranges:      ranges,
		Completed:   map[string][]int{},
		Attempts:    map[int]int{},
	}

	// Scan: reuse every envelope that still validates; anything else is
	// moved aside and its range re-enters the plan.
	var pending []int
	for i := range ranges {
		path := filepath.Join(opts.Dir, dispatch.PartName(i))
		switch err := dispatch.ValidatePart(path, m, i); {
		case err == nil:
			rep.Reused = append(rep.Reused, i)
		case errors.Is(err, fs.ErrNotExist):
			pending = append(pending, i)
		default:
			bad := path + ".invalid"
			os.Rename(path, bad)
			logf("sched: range %d: discarding invalid envelope (%v), moved to %s", i, err, bad)
			pending = append(pending, i)
		}
	}
	// An adopted manifest's uncached counts are computed only now, and
	// only for pending ranges: re-entering a completed directory must
	// not pay a verified store probe per cell of the whole grid. The
	// cache may have grown since the manifest was written, so skip
	// decisions always reflect the store's current state.
	if uncached == nil {
		uncached = make([]int, len(ranges))
		for _, i := range pending {
			uncached[i] = experiments.UncachedInRange(m.Fingerprint, m.Spec.Seed, ranges[i], st)
		}
	}
	rep.Uncached = uncached
	totalSlots, totalCells := 0, 0
	for _, h := range pool {
		totalSlots += h.Slots
	}
	if len(ranges) > 0 {
		totalCells = ranges[len(ranges)-1].End
	}
	logf("sched: %d range(s) over %d cells (%d uncached) across %d host(s), %d slot(s)",
		len(ranges), totalCells, sum(uncached), len(pool), totalSlots)

	// Serve: fully-cached pending ranges never reach a host — the
	// coordinator materializes them straight from the result store
	// (every cell a verified hit, so the envelope reports computed=0).
	var work []int
	for _, i := range pending {
		if err := ctx.Err(); err != nil {
			return nil, rep, fmt.Errorf("sched: cancelled — re-run sched with the same -dir to pick up: %w", err)
		}
		if uncached[i] > 0 {
			work = append(work, i)
			continue
		}
		// Fresh plans carry the payloads the cache-aware probe verified,
		// so serving needs no second store pass; adopted manifests (nil
		// plan) and entries gone bad since probing take the store path.
		env, ok := plan.ServeEnvelope(i)
		if !ok {
			if env, err = experiments.RunShardPlanned(m.Spec, ranges, i, st); err != nil {
				return nil, rep, err
			}
		}
		data, err := env.Encode()
		if err != nil {
			return nil, rep, err
		}
		if err := store.WriteFileAtomic(filepath.Join(opts.Dir, dispatch.PartName(i)), data); err != nil {
			return nil, rep, fmt.Errorf("sched: %w", err)
		}
		rep.Skipped = append(rep.Skipped, i)
		logf("sched: range %d fully cached (%d cells) — served by the coordinator", i, len(env.Indices))
	}
	logf("sched: %d reused, %d served from cache, %d assigned to hosts",
		len(rep.Reused), len(rep.Skipped), len(work))

	// Schedule: place work ranges on hosts until everything is delivered
	// or nothing eligible remains.
	if len(work) > 0 {
		schedule(ctx, pool, work, m, manifestPath, manifestBytes, opts, rep, logf)
	}
	for name := range rep.Completed {
		sort.Ints(rep.Completed[name])
	}
	if len(rep.Failed) > 0 {
		sort.Ints(rep.Failed)
		var idxs []string
		for _, i := range rep.Failed {
			idxs = append(idxs, strconv.Itoa(i))
		}
		// A cancelled run reports the cancellation itself (errors.Is-able)
		// rather than a scheduling failure it never had.
		if err := ctx.Err(); err != nil {
			return nil, rep, fmt.Errorf("sched: cancelled with range(s) %s still missing — %d of %d range(s) completed; re-run sched with the same -dir to pick up: %w",
				strings.Join(idxs, ", "), len(ranges)-len(rep.Failed), len(ranges), err)
		}
		return nil, rep, fmt.Errorf("sched: range(s) %s still missing — %d of %d range(s) completed; re-run sched with the same -dir (or `fairbench resume -dir %s`) to pick up from them",
			strings.Join(idxs, ", "), len(ranges)-len(rep.Failed), len(ranges), opts.Dir)
	}

	// Merge: every part re-reads through the named path so residual
	// inconsistency is attributed to its file.
	envs := make([]*shard.Envelope, len(ranges))
	names := make([]string, len(ranges))
	for i := range ranges {
		path := filepath.Join(opts.Dir, dispatch.PartName(i))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, rep, fmt.Errorf("sched: %w", err)
		}
		if envs[i], err = shard.Decode(data); err != nil {
			return nil, rep, fmt.Errorf("sched: %s: %w", path, err)
		}
		names[i] = path
		rep.CellsCached += len(envs[i].Cached)
		rep.CellsComputed += len(envs[i].Indices) - len(envs[i].Cached)
	}
	out, err := experiments.MergeShardsNamed(envs, names)
	if err != nil {
		return nil, rep, err
	}
	logf("sched: merged %d range(s) (cells computed=%d cached=%d)",
		len(ranges), rep.CellsComputed, rep.CellsCached)
	return out, rep, nil
}

// hostState is one pool member's scheduling state.
type hostState struct {
	Host
	transport Transport
	inflight  int
	failures  int
	excluded  bool
}

// buildPool fills option defaults and resolves each host's transport.
func buildPool(opts *Options) ([]*hostState, error) {
	if len(opts.Hosts) == 0 {
		opts.Hosts = []Host{{Name: "local", Slots: runner.Parallelism()}}
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 60 * time.Second
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 1
	}
	if opts.MaxHostFailures <= 0 {
		opts.MaxHostFailures = 3
	}
	transports := map[string]Transport{"local": &LocalExec{}, "remote": &RemoteExec{}}
	for name, t := range opts.Transports {
		transports[name] = t
	}
	seen := map[string]bool{}
	pool := make([]*hostState, len(opts.Hosts))
	for i, h := range opts.Hosts {
		if h.Name == "" {
			return nil, fmt.Errorf("sched: host %d has no name", i)
		}
		if seen[h.Name] {
			return nil, fmt.Errorf("sched: duplicate host name %q", h.Name)
		}
		seen[h.Name] = true
		if h.Slots <= 0 {
			h.Slots = 1
		}
		key := h.Transport
		if key == "" {
			key = "local"
		}
		tr, ok := transports[key]
		if !ok {
			return nil, fmt.Errorf("sched: host %s names unknown transport %q", h.Name, key)
		}
		pool[i] = &hostState{Host: h, transport: tr}
	}
	if opts.Shards <= 0 {
		for _, h := range pool {
			opts.Shards += h.Slots
		}
	}
	return pool, nil
}

// prepare creates the manifest for a fresh directory — planning
// cache-aware against the store — or adopts an existing one, keeping its
// recorded plan so resumes and late workers agree on the boundaries the
// original run chose. Either way the current build must materialize the
// manifest's fingerprint. The returned store is the run's effective
// result cache: adopting a manifest adopts its cache directory too, so a
// re-run that omitted the cache option still plans (and serves) against
// the cache the directory was scheduled with.
// A fresh directory's plan also rides back whole (nil when adopting an
// existing manifest): it carries the payloads the cache-aware probe
// already verified, letting the serve step materialize fully-cached
// ranges without a second pass over the store.
func prepare(ns experiments.Spec, opts *Options, st *store.Store, resuming bool) (*dispatch.Manifest, string, []shard.Range, []int, *experiments.ShardPlan, *store.Store, error) {
	fail := func(err error) (*dispatch.Manifest, string, []shard.Range, []int, *experiments.ShardPlan, *store.Store, error) {
		return nil, "", nil, nil, nil, nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return fail(fmt.Errorf("sched: %w", err))
	}
	manifestPath := filepath.Join(opts.Dir, dispatch.ManifestName)
	existing, err := dispatch.ReadManifest(manifestPath)
	switch {
	case err == nil:
		g, err := experiments.Open(existing.Spec)
		if err != nil {
			return fail(err)
		}
		fp, err := g.Fingerprint()
		if err != nil {
			return fail(err)
		}
		if fp != existing.Fingerprint {
			return fail(fmt.Errorf("sched: manifest fingerprint %.12s… but this build materializes %.12s… — grid definition drift; schedule into a fresh directory",
				existing.Fingerprint, fp))
		}
		if !resuming {
			want, err := experiments.Open(ns)
			if err != nil {
				return fail(err)
			}
			wfp, err := want.Fingerprint()
			if err != nil {
				return fail(err)
			}
			if wfp != existing.Fingerprint {
				return fail(fmt.Errorf("sched: %s already holds a different run (fingerprint %.12s…); use a fresh directory or resume that run",
					opts.Dir, existing.Fingerprint))
			}
			if opts.CacheDir != "" && opts.CacheDir != existing.CacheDir {
				return fail(fmt.Errorf("sched: %s was scheduled with cache directory %q; re-scheduling cannot change it to %q — use a fresh directory",
					opts.Dir, existing.CacheDir, opts.CacheDir))
			}
		}
		opts.CacheDir = existing.CacheDir
		if st == nil && existing.CacheDir != "" {
			if st, err = store.Open(existing.CacheDir); err != nil {
				return fail(err)
			}
		}
		ranges := existing.Ranges
		if len(ranges) == 0 {
			// A plain dispatch manifest: its workers used the uniform
			// aligned split, so the scheduler must too.
			if ranges, err = experiments.PlanShards(existing.Spec, existing.Shards); err != nil {
				return fail(err)
			}
		}
		// Uncached counts are left nil: run() computes them after the
		// part scan, for pending ranges only.
		return existing, manifestPath, ranges, nil, nil, st, nil
	case errors.Is(err, fs.ErrNotExist):
		if resuming {
			return fail(fmt.Errorf("sched: %s: %w — nothing to resume", opts.Dir, err))
		}
		plan, err := experiments.PlanShardsCacheAware(ns, opts.Shards, st)
		if err != nil {
			return fail(err)
		}
		m := &dispatch.Manifest{
			Version:     dispatch.ManifestVersion,
			Spec:        plan.Spec,
			Shards:      len(plan.Ranges),
			Fingerprint: plan.Fingerprint,
			CacheDir:    opts.CacheDir,
			Ranges:      plan.Ranges,
		}
		if err := m.Write(manifestPath); err != nil {
			return fail(err)
		}
		return m, manifestPath, plan.Ranges, plan.Uncached, plan, st, nil
	default:
		return fail(err)
	}
}

// rangeState is one work range's scheduling state.
type rangeState struct {
	idx      int
	attempts int
	rounds   int
	excluded map[string]bool
	lastErr  error
}

// flight is one in-flight assignment.
type flight struct {
	id       int
	host     *hostState
	rng      *rangeState
	lastBeat atomic.Int64
	cancel   context.CancelFunc
}

type doneEvent struct {
	id  int
	err error
}

// schedule places the work ranges on the pool and drives them to
// completion, reassigning around failed attempts, dead heartbeats, and
// excluded hosts. Failures that exhaust every option land in rep.Failed.
// A done ctx drains the loop: queued ranges fail immediately (resumable),
// in-flight attempts are cancelled, and the loop returns once every
// flight has reported.
func schedule(ctx context.Context, pool []*hostState, work []int, m *dispatch.Manifest, manifestPath string,
	manifestBytes []byte, opts Options, rep *Report, logf func(string, ...any)) {
	queue := make([]*rangeState, len(work))
	for i, idx := range work {
		queue[i] = &rangeState{idx: idx, excluded: map[string]bool{}}
	}
	// Every (round, host, range) triple launches at most once, so this
	// bounds total events; zombie sends never block.
	events := make(chan doneEvent, len(work)*len(pool)*(opts.Retries+1)+1)
	inflight := map[int]*flight{}
	nextID := 0
	emit := func(ev Event) {
		if opts.OnEvent != nil {
			opts.OnEvent(ev)
		}
	}

	checkEvery := opts.HeartbeatTimeout / 4
	if checkEvery < 5*time.Millisecond {
		checkEvery = 5 * time.Millisecond
	}
	ticker := time.NewTicker(checkEvery)
	defer ticker.Stop()

	eligible := func(pr *rangeState) bool {
		for _, hs := range pool {
			if !hs.excluded && !pr.excluded[hs.Name] {
				return true
			}
		}
		return false
	}
	pickHost := func(pr *rangeState) *hostState {
		var best *hostState
		for _, hs := range pool {
			if hs.excluded || pr.excluded[hs.Name] || hs.inflight >= hs.Slots {
				continue
			}
			if best == nil || hs.Slots-hs.inflight > best.Slots-best.inflight {
				best = hs
			}
		}
		return best
	}
	fail := func(hs *hostState, pr *rangeState, err error) {
		hs.failures++
		pr.excluded[hs.Name] = true
		pr.lastErr = err
		logf("sched: host %s: range %d failed: %v", hs.Name, pr.idx, err)
		emit(Event{Type: EventFailed, Host: hs.Name, Range: pr.idx, Err: err.Error()})
		if hs.failures >= opts.MaxHostFailures && !hs.excluded {
			hs.excluded = true
			rep.Excluded = append(rep.Excluded, hs.Name)
			logf("sched: excluding host %s after %d failure(s); reassigning its work to survivors", hs.Name, hs.failures)
			emit(Event{Type: EventExcluded, Host: hs.Name, Range: -1,
				Err: fmt.Sprintf("%d failed attempt(s)", hs.failures)})
		}
		queue = append(queue, pr)
	}
	launch := func(hs *hostState, pr *rangeState) {
		id := nextID
		nextID++
		flctx, cancel := context.WithCancel(ctx)
		fl := &flight{id: id, host: hs, rng: pr, cancel: cancel}
		fl.lastBeat.Store(time.Now().UnixNano())
		inflight[id] = fl
		hs.inflight++
		pr.attempts++
		partPath := filepath.Join(opts.Dir, dispatch.PartName(pr.idx))
		outTmp := fmt.Sprintf("%s.attempt-%d", partPath, id)
		logf("sched: range %d → host %s (attempt %d)", pr.idx, hs.Name, pr.attempts)
		go func() {
			ctx := flctx
			defer cancel()
			err := hs.transport.Run(ctx, hs.Host, Assignment{
				ManifestPath: manifestPath, Manifest: manifestBytes, Range: pr.idx, OutPath: outTmp,
			}, func() {
				fl.lastBeat.Store(time.Now().UnixNano())
				emit(Event{Type: EventHeartbeat, Host: hs.Name, Range: pr.idx})
			})
			if err == nil && ctx.Err() != nil {
				// The scheduler abandoned this attempt (heartbeat lapse)
				// and may already have reassigned — or merged — the
				// range; a zombie's late success must not touch the part.
				err = ctx.Err()
			}
			if err == nil {
				// The shared acceptance gate: an attempt only becomes the
				// part when its envelope validates against the manifest.
				if verr := dispatch.ValidatePart(outTmp, m, pr.idx); verr != nil {
					err = fmt.Errorf("host %s produced an invalid part: %w", hs.Name, verr)
				} else if rerr := os.Rename(outTmp, partPath); rerr != nil {
					err = rerr
				}
			}
			if err != nil {
				os.Remove(outTmp)
			}
			events <- doneEvent{id: id, err: err}
		}()
	}

	ctxDone := ctx.Done()
	for {
		// Assign every queued range an eligible host with a free slot;
		// ranges every live host has failed get their exclusions reset
		// (one round) until the retry budget runs out. A done ctx stops
		// launching: queued ranges drain straight to Failed (the
		// directory stays resumable) while in-flight attempts wind down.
		for progress := true; progress; {
			progress = false
			var still []*rangeState
			for _, pr := range queue {
				if ctx.Err() != nil {
					rep.Failed = append(rep.Failed, pr.idx)
					rep.Attempts[pr.idx] = pr.attempts
					continue
				}
				if hs := pickHost(pr); hs != nil {
					launch(hs, pr)
					progress = true
					continue
				}
				if !eligible(pr) {
					if pr.rounds < opts.Retries {
						pr.rounds++
						pr.excluded = map[string]bool{}
						logf("sched: range %d: every live host has failed it; retry round %d/%d", pr.idx, pr.rounds, opts.Retries)
						progress = true
					} else {
						rep.Failed = append(rep.Failed, pr.idx)
						rep.Attempts[pr.idx] = pr.attempts
						logf("sched: range %d failed for good after %d attempt(s): %v", pr.idx, pr.attempts, pr.lastErr)
						continue
					}
				}
				still = append(still, pr)
			}
			queue = still
		}
		if len(inflight) == 0 {
			if len(queue) > 0 {
				// Nothing running and nothing assignable: the pool is dead.
				for _, pr := range queue {
					rep.Failed = append(rep.Failed, pr.idx)
					rep.Attempts[pr.idx] = pr.attempts
				}
				queue = nil
			}
			return
		}
		select {
		case ev := <-events:
			fl, ok := inflight[ev.id]
			if !ok {
				break // an abandoned attempt's late report
			}
			delete(inflight, ev.id)
			fl.host.inflight--
			if ev.err != nil {
				if ctx.Err() != nil {
					// Cancelled, not a host's fault: no strike, no
					// exclusion — record the range as missing and drain.
					fl.rng.lastErr = ev.err
					rep.Failed = append(rep.Failed, fl.rng.idx)
					rep.Attempts[fl.rng.idx] = fl.rng.attempts
					break
				}
				fail(fl.host, fl.rng, ev.err)
				break
			}
			rep.Completed[fl.host.Name] = append(rep.Completed[fl.host.Name], fl.rng.idx)
			rep.Attempts[fl.rng.idx] = fl.rng.attempts
			emit(Event{Type: EventCompleted, Host: fl.host.Name, Range: fl.rng.idx})
		case <-ctxDone:
			ctxDone = nil
			for _, fl := range inflight {
				fl.cancel()
			}
		case <-ticker.C:
			deadline := time.Now().Add(-opts.HeartbeatTimeout).UnixNano()
			for id, fl := range inflight {
				if fl.lastBeat.Load() >= deadline {
					continue
				}
				fl.cancel()
				delete(inflight, id)
				fl.host.inflight--
				// A heartbeat lapse is a death sentence, not a strike: the
				// transport itself went unresponsive, so the host leaves
				// the pool immediately instead of collecting further
				// ranges until MaxHostFailures.
				if !fl.host.excluded {
					fl.host.excluded = true
					rep.Excluded = append(rep.Excluded, fl.host.Name)
					logf("sched: excluding host %s: no heartbeat for %s", fl.host.Name, opts.HeartbeatTimeout)
					emit(Event{Type: EventExcluded, Host: fl.host.Name, Range: fl.rng.idx,
						Err: fmt.Sprintf("no heartbeat for %s", opts.HeartbeatTimeout)})
				}
				fail(fl.host, fl.rng, fmt.Errorf("no heartbeat from host %s for %s — declared dead", fl.host.Name, opts.HeartbeatTimeout))
			}
		}
	}
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
