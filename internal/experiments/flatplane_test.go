package experiments

import (
	"encoding/json"
	"testing"
)

// TestViewSlicesMatchMaterialized proves the flat data plane's central
// bit-identity claim: a grid whose train/test slices are zero-copy views
// into the synthesized dataset's flat backing produces byte-identical
// rows to the same grid with every slice deep-copied into its own
// storage. Together with the golden-row suite (which pins the view-based
// path to the pre-refactor numbers) this is the byte-equivalence oracle
// for the zero-copy view contract.
func TestViewSlicesMatchMaterialized(t *testing.T) {
	src, err := sourceFor("german", 240, 7)
	if err != nil {
		t.Fatal(err)
	}

	viewGrid := fig7Grid(src, 7)
	matGrid := fig7Grid(src, 7)
	for i := range matGrid.slices {
		matGrid.slices[i].train = matGrid.slices[i].train.Clone()
		matGrid.slices[i].test = matGrid.slices[i].test.Clone()
	}

	viewOut, err := viewGrid.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	matOut, err := matGrid.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(viewOut.Rows) == 0 || len(viewOut.Rows) != len(matOut.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(viewOut.Rows), len(matOut.Rows))
	}
	for i := range viewOut.Rows {
		a, b := viewOut.Rows[i], matOut.Rows[i]
		a.Seconds, a.Overhead = 0, 0 // wall time is the sanctioned nondeterminism
		b.Seconds, b.Overhead = 0, 0
		aj, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		bj, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(aj) != string(bj) {
			t.Fatalf("row %d diverges between view-backed and materialized slices:\n  view: %s\n  mat:  %s", i, aj, bj)
		}
	}
}

// TestSourceMemoReturnsSharedMaterialization pins the per-run synthesis
// memo: repeated sourceFor calls for one (dataset, n, seed) return the
// same Source (no re-synthesis), and distinct keys stay distinct.
func TestSourceMemoReturnsSharedMaterialization(t *testing.T) {
	a, err := sourceFor("compas", 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sourceFor("compas", 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("sourceFor re-synthesized a memoized (dataset, n, seed)")
	}
	c, err := sourceFor("compas", 200, 12)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("sourceFor conflated distinct seeds")
	}
}
