package sched

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"time"

	"fairbench/internal/dispatch"
	"fairbench/internal/shard"
	"fairbench/internal/store"
)

// Host describes one member of the execution pool.
type Host struct {
	// Name labels the host in logs, reports, and errors. Required;
	// unique within a pool.
	Name string `json:"name"`
	// Slots is how many ranges the host runs concurrently (default 1).
	Slots int `json:"slots,omitempty"`
	// Transport selects the transport key in Options.Transports. The
	// built-ins: "local" (the default) re-execs this binary's `worker`
	// subcommand on the scheduler's machine; "remote" runs a worker
	// binary through the Cmd prefix, streaming manifest and envelope.
	Transport string `json:"transport,omitempty"`
	// Cmd is the remote transport's command prefix — everything in front
	// of the worker arguments, e.g.
	// ["ssh", "-oBatchMode=yes", "host9", "/usr/local/bin/fairbench"].
	Cmd []string `json:"cmd,omitempty"`
}

// LoadHosts reads a hosts.json pool definition: a JSON array of Host
// objects, e.g.
//
//	[
//	  {"name": "local", "slots": 4},
//	  {"name": "big", "slots": 16, "transport": "remote",
//	   "cmd": ["ssh", "-oBatchMode=yes", "big", "/usr/local/bin/fairbench"]}
//	]
func LoadHosts(path string) ([]Host, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	var hosts []Host
	if err := json.Unmarshal(data, &hosts); err != nil {
		return nil, fmt.Errorf("sched: decoding %s: %w", path, err)
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("sched: %s defines no hosts", path)
	}
	return hosts, nil
}

// Assignment is one unit of scheduled work: plan position Range of the
// manifest at ManifestPath (whose raw bytes travel in Manifest for
// transports that stream it). The transport must leave the shard's
// envelope at OutPath — a scheduler-chosen attempt-scoped path, so a
// zombie attempt can never clobber an accepted part.
type Assignment struct {
	ManifestPath string
	Manifest     []byte
	Range        int
	OutPath      string
}

// Transport places one assignment on a host. Implementations must honor
// ctx cancellation promptly — the scheduler cancels an assignment whose
// heartbeat lapses — and should call beat() whenever they observe
// evidence the host is alive. The exec-based transports beat while the
// worker process exists; a transport that stops beating for longer than
// Options.HeartbeatTimeout is declared dead and its range reassigned.
type Transport interface {
	Run(ctx context.Context, host Host, asn Assignment, beat func()) error
}

// heartbeatEvery is how often the exec transports refresh their
// process-liveness heartbeat. It bounds how small a useful
// Options.HeartbeatTimeout can be: timeouts should stay comfortably
// above this interval or live exec-backed workers will flap.
const heartbeatEvery = 100 * time.Millisecond

// LocalExec runs workers as subprocesses of the scheduler's own process,
// reusing the dispatch layer's self-exec `fairbench worker` protocol.
// The heartbeat tracks process liveness: a SIGKILLed worker fails the
// attempt immediately, while a long-running but live computation never
// trips the deadline. (A worker that is alive yet wedged is indistinguishable
// from a slow one at this layer; hang detection belongs to transports
// that can observe progress, or to the host's own process limits.)
type LocalExec struct {
	// Spawn overrides how worker subprocesses are built (tests use the
	// re-exec helper pattern); nil uses dispatch.SelfExec.
	Spawn dispatch.SpawnFunc
}

func (t *LocalExec) Run(ctx context.Context, host Host, asn Assignment, beat func()) error {
	spawn := t.Spawn
	if spawn == nil {
		spawn = dispatch.SelfExec
	}
	cmd, err := spawn(asn.ManifestPath, asn.Range, asn.OutPath)
	if err != nil {
		return err
	}
	stderr := dispatch.NewBoundedBuffer(0)
	if cmd.Stderr == nil {
		cmd.Stderr = stderr
	}
	return runCmd(ctx, cmd, beat, stderr)
}

// RemoteExec runs the worker binary through an arbitrary command prefix —
// typically ssh — streaming the manifest over stdin and the envelope
// back over stdout, so scheduler and host need no shared filesystem.
// The command executed on the host is
//
//	<host.Cmd...> worker -manifest - -shard I -out -
//
// which the fairbench CLI implements via dispatch.WorkerIO. The
// returned envelope is decoded (and so validated) before the part file
// materializes locally; stray remote output fails the attempt instead
// of poisoning the part set.
//
// Like LocalExec, the heartbeat tracks the LOCAL command's liveness —
// the transport cannot see past a session that blocks without dying, so
// pair ssh with keepalives (e.g. -oServerAliveInterval=15
// -oServerAliveCountMax=3) so a partitioned session exits instead of
// blocking forever; the scheduler then fails the attempt and reassigns.
// The heartbeat deadline itself protects against transports that stop
// reporting (custom implementations, or a command runner that wedges
// before ever starting the process).
type RemoteExec struct {
	// Runner builds the command from the host and the worker arguments;
	// nil executes host.Cmd + args directly. Tests substitute a local
	// fake that behaves like an ssh session.
	Runner func(ctx context.Context, host Host, args []string) (*exec.Cmd, error)
}

func (t *RemoteExec) Run(ctx context.Context, host Host, asn Assignment, beat func()) error {
	args := []string{"worker", "-manifest", "-", "-shard", strconv.Itoa(asn.Range), "-out", "-"}
	var cmd *exec.Cmd
	var err error
	if t.Runner != nil {
		cmd, err = t.Runner(ctx, host, args)
	} else if len(host.Cmd) == 0 {
		err = fmt.Errorf("sched: host %s uses the remote transport but defines no cmd prefix", host.Name)
	} else {
		full := append(append([]string(nil), host.Cmd...), args...)
		cmd = exec.Command(full[0], full[1:]...)
	}
	if err != nil {
		return err
	}
	if cmd.Stdin == nil {
		cmd.Stdin = bytes.NewReader(asn.Manifest)
	}
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderr := dispatch.NewBoundedBuffer(0)
	if cmd.Stderr == nil {
		cmd.Stderr = stderr
	}
	if err := runCmd(ctx, cmd, beat, stderr); err != nil {
		return err
	}
	if _, err := shard.Decode(stdout.Bytes()); err != nil {
		return fmt.Errorf("sched: host %s returned an invalid envelope: %w", host.Name, err)
	}
	return store.WriteFileAtomic(asn.OutPath, stdout.Bytes())
}

// runCmd starts cmd, heartbeats while the process is alive, kills it on
// ctx cancellation, and returns its terminal error with a (bounded)
// stderr tail — including the truncation marker when the worker wrote
// more than the capture budget.
func runCmd(ctx context.Context, cmd *exec.Cmd, beat func(), stderr *dispatch.BoundedBuffer) error {
	if err := cmd.Start(); err != nil {
		return err
	}
	beat()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	tick := time.NewTicker(heartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case err := <-done:
			if err != nil {
				return fmt.Errorf("worker: %w%s", err, dispatch.StderrTail(stderr.String()))
			}
			return nil
		case <-tick.C:
			beat() // the worker process still exists
		case <-ctx.Done():
			cmd.Process.Kill()
			<-done
			return ctx.Err()
		}
	}
}
