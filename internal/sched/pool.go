package sched

import (
	"sort"
	"sync"
	"time"
)

// PoolUpdate is one batch of dynamic membership changes fed to a
// running scheduler through Options.PoolSource.
type PoolUpdate struct {
	// Join adds hosts to the pool, picked up at the next scheduling
	// round. Re-joining a known name is an operator's vote of
	// confidence: the host's definition is refreshed and its strikes,
	// exclusion, and departure are cleared so it earns work again.
	Join []Host
	// Leave names hosts leaving gracefully: they take no new
	// assignments, their in-flight attempts drain to completion, and
	// anything they would have run replans onto the survivors.
	Leave []string
}

// PoolSource feeds dynamic pool membership to running schedulers.
// Implementations: PoolChan (programmatic, the serve daemon's admin
// endpoint) and HostsWatcher (a re-watched hosts.json).
type PoolSource interface {
	// Subscribe registers a listener for subsequent updates; the
	// returned cancel releases it. Updates sent before Subscribe are
	// not replayed, and a subscriber that falls far behind may miss
	// updates — membership is advisory, never load-bearing for
	// correctness.
	Subscribe() (<-chan PoolUpdate, func())
}

// PoolChan is the programmatic PoolSource: call Join/Leave/Update to
// fan a membership change out to every running scheduler subscribed to
// it. The zero value is not usable; create with NewPoolChan.
type PoolChan struct {
	mu   sync.Mutex
	subs map[int]chan PoolUpdate
	next int
}

// NewPoolChan returns an empty, usable PoolChan.
func NewPoolChan() *PoolChan { return &PoolChan{subs: map[int]chan PoolUpdate{}} }

// Subscribe implements PoolSource.
func (p *PoolChan) Subscribe() (<-chan PoolUpdate, func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.next
	p.next++
	ch := make(chan PoolUpdate, 16)
	p.subs[id] = ch
	return ch, func() {
		p.mu.Lock()
		delete(p.subs, id)
		p.mu.Unlock()
	}
}

// Update fans one membership change out to every subscriber. A
// subscriber more than 16 updates behind drops the new one rather than
// stalling the caller (an admin HTTP handler must not block on a busy
// scheduler); the next update still reaches it.
func (p *PoolChan) Update(up PoolUpdate) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ch := range p.subs {
		select {
		case ch <- up:
		default:
		}
	}
}

// Join adds hosts to every subscribed scheduler's pool.
func (p *PoolChan) Join(hosts ...Host) { p.Update(PoolUpdate{Join: hosts}) }

// Leave drains the named hosts out of every subscribed scheduler's pool.
func (p *PoolChan) Leave(names ...string) { p.Update(PoolUpdate{Leave: names}) }

// HostsWatcher re-watches a hosts.json pool definition and turns edits
// into PoolUpdates: hosts added to the file join every subscribed run,
// hosts removed from it leave gracefully, and a changed entry (slots,
// transport, cmd) re-joins with its new definition.
type HostsWatcher struct {
	*PoolChan
	stop chan struct{}
	done chan struct{}
}

// WatchHosts polls path every interval (default 1s) for pool edits.
// The file's content at call time is the baseline — pass the same path
// to LoadHosts for the initial pool — and only subsequent edits produce
// updates. A transiently unreadable or unparsable file is skipped; the
// last good definition stands until the file reads cleanly again.
func WatchHosts(path string, interval time.Duration) (*HostsWatcher, error) {
	hosts, err := LoadHosts(path)
	if err != nil {
		return nil, err
	}
	if interval <= 0 {
		interval = time.Second
	}
	known := map[string]Host{}
	for _, h := range hosts {
		known[h.Name] = h
	}
	w := &HostsWatcher{PoolChan: NewPoolChan(), stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
			}
			hosts, err := LoadHosts(path)
			if err != nil {
				continue
			}
			var up PoolUpdate
			seen := map[string]bool{}
			for _, h := range hosts {
				seen[h.Name] = true
				if prev, ok := known[h.Name]; !ok || !hostEqual(prev, h) {
					up.Join = append(up.Join, h)
					known[h.Name] = h
				}
			}
			for name := range known {
				if !seen[name] {
					up.Leave = append(up.Leave, name)
					delete(known, name)
				}
			}
			if len(up.Join) > 0 || len(up.Leave) > 0 {
				sort.Slice(up.Join, func(i, j int) bool { return up.Join[i].Name < up.Join[j].Name })
				sort.Strings(up.Leave)
				w.Update(up)
			}
		}
	}()
	return w, nil
}

// Close stops the watcher and waits for its poller to exit. Safe to
// call once; subscriptions stay valid (they just see no more updates).
func (w *HostsWatcher) Close() {
	close(w.stop)
	<-w.done
}

func hostEqual(a, b Host) bool {
	if a.Name != b.Name || a.Slots != b.Slots || a.Transport != b.Transport || len(a.Cmd) != len(b.Cmd) {
		return false
	}
	for i := range a.Cmd {
		if a.Cmd[i] != b.Cmd[i] {
			return false
		}
	}
	return true
}
