// Package classifier implements the binary classifiers the benchmark pairs
// with fair approaches: logistic regression (the paper's default and its
// fairness-unaware baseline), linear SVM, k-nearest neighbors, random
// forest, and a one-hidden-layer MLP — the five model families of the
// model-sensitivity experiment (Section 4.5, Appendix F).
//
// All models share the Classifier interface over plain feature matrices;
// whether the sensitive attribute is part of the features is decided by
// the caller (the fair-approach layer).
package classifier

import (
	"fmt"

	"fairbench/internal/matrix"
)

// Classifier is a binary probabilistic classifier. Fit trains on the
// design matrix x (row-major), labels y in {0,1}, and optional per-row
// weights w (nil = uniform).
type Classifier interface {
	Fit(x [][]float64, y []int, w []float64) error
	// PredictProba returns P(Y=1 | x).
	PredictProba(x []float64) float64
}

// Factory builds fresh classifier instances; approaches use it so each
// variant trains its own model.
type Factory func() Classifier

// Predict thresholds PredictProba at 0.5.
func Predict(c Classifier, x []float64) int {
	if c.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// PredictAll applies c to every row of x.
func PredictAll(c Classifier, x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		out[i] = Predict(c, row)
	}
	return out
}

// ProbaAll returns P(Y=1|x) for every row of x.
func ProbaAll(c Classifier, x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = c.PredictProba(row)
	}
	return out
}

func checkFitInput(x [][]float64, y []int, w []float64) error {
	if len(x) == 0 {
		return fmt.Errorf("classifier: empty training set")
	}
	if len(y) != len(x) {
		return fmt.Errorf("classifier: %d rows but %d labels", len(x), len(y))
	}
	if w != nil && len(w) != len(x) {
		return fmt.Errorf("classifier: %d rows but %d weights", len(x), len(w))
	}
	// Batched grid execution hands many cells the same flat design matrix;
	// a successful AsDense certifies every row's shape by aliasing, so the
	// per-row semantic scan — and its per-cell repetition — is skipped.
	if _, ok := matrix.AsDense(x); ok {
		return nil
	}
	d := len(x[0])
	for i, row := range x {
		if len(row) != d {
			return fmt.Errorf("classifier: row %d has %d features, want %d", i, len(row), d)
		}
	}
	return nil
}
