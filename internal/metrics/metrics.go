// Package metrics implements the paper's evaluation metrics: the four
// correctness metrics of Figure 2 (accuracy, precision, recall, F1) and the
// five fairness metrics of Figure 4 (Disparate Impact, True Positive Rate
// Balance, True Negative Rate Balance, Individual Discrimination, Total
// Effect), plus the appendix's Natural Direct/Indirect Effects.
//
// It also applies the paper's normalizations (Section 4.1): DI* =
// min(DI, 1/DI), and 1-|TPRB|, 1-|TNRB|, 1-ID, 1-|TE| so every fairness
// score shares the same [0,1] range with 1 = completely fair.
package metrics

import (
	"math"

	"fairbench/internal/causal"
	"fairbench/internal/dataset"
	"fairbench/internal/stats"
)

// Correctness holds the Figure 2 metrics.
type Correctness struct {
	Accuracy, Precision, Recall, F1 float64
}

// ComputeCorrectness tallies the correctness metrics for predictions yhat
// against ground truth y.
//
// Zero-division convention: every ratio whose denominator is empty is
// reported as 0, never NaN — empty input gives Accuracy 0, no positive
// predictions (TP+FP == 0) gives Precision 0, no positive labels
// (TP+FN == 0) gives Recall 0, and Precision+Recall == 0 gives F1 0.
// Downstream code (aggregation post-passes, the report tables, JSON
// envelopes for sharded runs) relies on these metrics being finite;
// TestCorrectnessZeroDenominators pins the convention.
func ComputeCorrectness(y, yhat []int) Correctness {
	c := stats.Count(y, yhat)
	var out Correctness
	if n := c.N(); n > 0 {
		out.Accuracy = float64(c.TP+c.TN) / float64(n)
	}
	if c.TP+c.FP > 0 {
		out.Precision = float64(c.TP) / float64(c.TP+c.FP)
	}
	if c.TP+c.FN > 0 {
		out.Recall = float64(c.TP) / float64(c.TP+c.FN)
	}
	if out.Precision+out.Recall > 0 {
		out.F1 = 2 * out.Precision * out.Recall / (out.Precision + out.Recall)
	}
	return out
}

// Fairness holds the raw Figure 4 metrics (and NDE/NIE from the appendix).
// Raw values carry sign/direction; see Normalized for the paper's
// presentation scale.
type Fairness struct {
	DI   float64 // ratio, 1 = fair, <1 favors privileged
	TPRB float64 // difference, 0 = fair
	TNRB float64 // difference, 0 = fair
	ID   float64 // fraction, 0 = fair
	TE   float64 // difference, 0 = fair
	NDE  float64
	NIE  float64
}

// GroupRates summarizes prediction statistics per sensitive group.
type GroupRates struct {
	// PosRate is P(Ŷ=1 | S=s) for s = 0, 1.
	PosRate [2]float64
	// TPR and TNR per group.
	TPR, TNR [2]float64
	// Confusion matrices per group.
	Confusion [2]stats.Confusion
}

// ComputeGroupRates tallies per-group prediction statistics. A group
// absent from the data keeps zero-valued rates (PosRate, TPR, TNR all 0),
// following the same finite-by-convention rule as ComputeCorrectness;
// only DisparateImpact maps a vanishing privileged positive rate to +Inf,
// because DI's range is [0, ∞) by definition and Normalize folds the
// infinity to a DI* of 0.
func ComputeGroupRates(d *dataset.Dataset, yhat []int) GroupRates {
	var gr GroupRates
	var pos, tot [2]float64
	for i := range yhat {
		s := d.S[i]
		gr.Confusion[s].Add(d.Y[i], yhat[i])
		tot[s]++
		if yhat[i] == 1 {
			pos[s]++
		}
	}
	for s := 0; s < 2; s++ {
		if tot[s] > 0 {
			gr.PosRate[s] = pos[s] / tot[s]
		}
		gr.TPR[s] = gr.Confusion[s].TPR()
		gr.TNR[s] = gr.Confusion[s].TNR()
	}
	return gr
}

// DisparateImpact returns P(Ŷ=1|S=0) / P(Ŷ=1|S=1) (Figure 4 row 1). A
// zero privileged positive rate with a positive unprivileged rate yields
// +Inf, matching the metric's [0, ∞) range.
func DisparateImpact(d *dataset.Dataset, yhat []int) float64 {
	return ComputeGroupRates(d, yhat).DI()
}

// DI derives Disparate Impact from already-tallied group rates.
func (gr GroupRates) DI() float64 {
	if gr.PosRate[1] == 0 {
		if gr.PosRate[0] == 0 {
			return 1 // no positives anywhere: vacuously fair
		}
		return math.Inf(1)
	}
	return gr.PosRate[0] / gr.PosRate[1]
}

// TPRBalance returns TPR(S=1) - TPR(S=0) (Figure 4 row 2).
func TPRBalance(d *dataset.Dataset, yhat []int) float64 {
	gr := ComputeGroupRates(d, yhat)
	return gr.TPR[1] - gr.TPR[0]
}

// TNRBalance returns TNR(S=1) - TNR(S=0) (Figure 4 row 3).
func TNRBalance(d *dataset.Dataset, yhat []int) float64 {
	gr := ComputeGroupRates(d, yhat)
	return gr.TNR[1] - gr.TNR[0]
}

// Predictor exposes a single-tuple prediction with an explicit sensitive
// value, enabling the ID metric's S-flip intervention.
type Predictor interface {
	PredictOne(x []float64, s int) int
}

// InterventionPredictor is implemented by approaches whose pipeline uses S
// in two roles: as a classifier input and inside group-dependent
// transforms fitted on training data. The ID intervention flips only the
// classifier-input role (sInput); the transform keeps the tuple's true
// group (sTrue), matching the metric's definition of comparing otherwise
// identical individuals.
type InterventionPredictor interface {
	PredictIntervened(x []float64, sTrue, sInput int) int
}

// IndividualDiscrimination returns the fraction of tuples whose prediction
// changes when the sensitive attribute is flipped with all other
// attributes held fixed (Figure 4 row 4; Galhotra et al.'s causal
// discrimination score evaluated on the dataset of interest).
func IndividualDiscrimination(d *dataset.Dataset, p Predictor) float64 {
	n := d.Len()
	if n == 0 {
		return 0
	}
	ip, hasIP := p.(InterventionPredictor)
	changed := 0
	for i := 0; i < n; i++ {
		var a, b int
		if hasIP {
			a = ip.PredictIntervened(d.X[i], d.S[i], d.S[i])
			b = ip.PredictIntervened(d.X[i], d.S[i], 1-d.S[i])
		} else {
			a = p.PredictOne(d.X[i], d.S[i])
			b = p.PredictOne(d.X[i], 1-d.S[i])
		}
		if a != b {
			changed++
		}
	}
	return float64(changed) / float64(n)
}

// TotalEffect estimates TE via the causal estimator (all benchmark graphs
// have a root sensitive attribute, so TE reduces to the observational
// contrast; the estimator also produces NDE and NIE).
func TotalEffect(d *dataset.Dataset, g *causal.Graph, yhat []int, bins int) causal.Effects {
	est := causal.NewEstimator(d, g, bins)
	return est.Estimate(d, yhat)
}

// ComputeFairness evaluates every fairness metric at once. p may be nil,
// in which case ID is reported as 0 (e.g. for precomputed prediction
// vectors with no model handle). g may be nil, in which case the causal
// metrics are 0. The group-rate tallies behind DI, TPRB, and TNRB are
// computed in one pass over the predictions instead of one per metric;
// the derived values are bit-identical to the per-metric functions.
func ComputeFairness(d *dataset.Dataset, yhat []int, p Predictor, g *causal.Graph) Fairness {
	gr := ComputeGroupRates(d, yhat)
	f := Fairness{
		DI:   gr.DI(),
		TPRB: gr.TPR[1] - gr.TPR[0],
		TNRB: gr.TNR[1] - gr.TNR[0],
	}
	if p != nil {
		f.ID = IndividualDiscrimination(d, p)
	}
	if g != nil {
		eff := TotalEffect(d, g, yhat, 4)
		f.TE, f.NDE, f.NIE = eff.TE, eff.NDE, eff.NIE
	}
	return f
}

// Normalized holds the paper's presentation scale (Section 4.1): all
// scores in [0,1] with 1 = completely fair. Reverse records, per metric,
// whether residual discrimination favors the unprivileged group (the red
// bars in Figures 7 and 9).
type Normalized struct {
	DIStar, TPRB, TNRB, ID, TE, NDE, NIE float64
	Reverse                              struct {
		DI, TPRB, TNRB, TE bool
	}
}

// Normalize converts raw fairness values to the paper's scale.
func Normalize(f Fairness) Normalized {
	var n Normalized
	n.DIStar = DIStar(f.DI)
	n.Reverse.DI = f.DI > 1
	n.TPRB = 1 - math.Abs(f.TPRB)
	n.Reverse.TPRB = f.TPRB < 0
	n.TNRB = 1 - math.Abs(f.TNRB)
	n.Reverse.TNRB = f.TNRB < 0
	n.ID = 1 - f.ID
	n.TE = 1 - math.Abs(f.TE)
	n.Reverse.TE = f.TE < 0
	n.NDE = 1 - math.Abs(f.NDE)
	n.NIE = 1 - math.Abs(f.NIE)
	return n
}

// DIStar returns min(DI, 1/DI), mapping both directions of disparate
// impact onto [0,1] with 1 = parity.
func DIStar(di float64) float64 {
	if math.IsInf(di, 1) || di <= 0 {
		return 0
	}
	if di > 1 {
		return 1 / di
	}
	return di
}
