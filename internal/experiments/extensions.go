package experiments

import (
	"fairbench/internal/registry"
	"fairbench/internal/rng"
	"fairbench/internal/synth"
)

// Extensions reproduces the appendix's Figure 15: the three additional
// variants (Madras^dp, Agarwal^dp, Agarwal^eo) evaluated on one dataset
// alongside the baseline, with the same protocol as Figure 7.
func Extensions(src *synth.Source, seed int64) ([]Row, error) {
	train, test := src.Data.Split(0.7, rng.New(seed))
	names := append([]string{"LR"}, registry.ExtendedNames...)
	rows := make([]Row, 0, len(names))
	var baseline float64
	for _, name := range names {
		a, err := registry.New(name, registry.Config{Graph: src.Graph, Seed: seed})
		if err != nil {
			return nil, err
		}
		row, err := Evaluate(a, train, test, src.Graph)
		if err != nil {
			return nil, err
		}
		if name == "LR" {
			baseline = row.Seconds
		}
		row.Overhead = row.Seconds - baseline
		if row.Overhead < 0 {
			row.Overhead = 0
		}
		rows = append(rows, row)
	}
	return rows, nil
}
