package matrix

import (
	"math/rand"
	"testing"
)

// affineRef is the scalar fold the classifiers historically ran: bias
// first, then ascending-j accumulation with one accumulator per row.
func affineRef(dst []float64, rows [][]float64, w []float64, bias float64) {
	for i, row := range rows {
		z := bias
		for j, v := range row {
			z += w[j] * v
		}
		dst[i] = z
	}
}

func TestAffineIntoBitIdentical(t *testing.T) {
	g := rand.New(rand.NewSource(7))
	for _, shape := range []struct{ r, c int }{
		{0, 3}, {1, 1}, {3, 5}, {4, 7}, {5, 2}, {17, 11}, {64, 23},
	} {
		d := NewDense(shape.r, shape.c)
		for i := range d.Data {
			d.Data[i] = g.NormFloat64()
		}
		w := make([]float64, shape.c)
		for i := range w {
			w[i] = g.NormFloat64()
		}
		bias := g.NormFloat64()
		got := make([]float64, shape.r)
		want := make([]float64, shape.r)
		d.AffineInto(got, w, bias)
		affineRef(want, d.RowsView(), w, bias)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shape %dx%d row %d: AffineInto %v != scalar fold %v (must be bit-identical)",
					shape.r, shape.c, i, got[i], want[i])
			}
		}
	}
}

func TestAffineIntoStridedFallback(t *testing.T) {
	// A non-tight stride must fall back to the per-row path and still match.
	backing := make([]float64, 3*5)
	g := rand.New(rand.NewSource(9))
	for i := range backing {
		backing[i] = g.NormFloat64()
	}
	d := &Dense{Data: backing, Rows: 3, Cols: 3, Stride: 5}
	w := []float64{0.5, -1.25, 2.0}
	got := make([]float64, 3)
	want := make([]float64, 3)
	d.AffineInto(got, w, 0.75)
	affineRef(want, [][]float64{d.Row(0), d.Row(1), d.Row(2)}, w, 0.75)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("strided row %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestAccumulateInto(t *testing.T) {
	dst := []float64{1, 2, 3, 100} // intercept slot at the end stays untouched
	AccumulateInto(dst, 2, []float64{10, 20, 30})
	want := []float64{21, 42, 63, 100}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestAsDenseRecoversRowsView(t *testing.T) {
	d := NewDense(6, 4)
	for i := range d.Data {
		d.Data[i] = float64(i)
	}
	got, ok := AsDense(d.RowsView())
	if !ok {
		t.Fatal("AsDense rejected a tight RowsView")
	}
	if got.Rows != 6 || got.Cols != 4 || got.Stride != 4 {
		t.Fatalf("AsDense shape %dx%d stride %d", got.Rows, got.Cols, got.Stride)
	}
	if &got.Data[0] != &d.Data[0] || len(got.Data) != len(d.Data) {
		t.Fatal("AsDense must share the original backing, not copy")
	}
}

func TestAsDenseRejects(t *testing.T) {
	d := NewDense(4, 3)
	rows := d.RowsView()

	ragged := [][]float64{{1, 2}, {3, 4, 5}}
	if _, ok := AsDense(ragged); ok {
		t.Fatal("accepted ragged rows")
	}
	separate := [][]float64{make([]float64, 3), make([]float64, 3)}
	if _, ok := AsDense(separate); ok {
		t.Fatal("accepted rows from separate allocations")
	}
	reordered := [][]float64{rows[1], rows[0], rows[2], rows[3]}
	if _, ok := AsDense(reordered); ok {
		t.Fatal("accepted out-of-order views")
	}
	capped := make([][]float64, d.Rows)
	for i := range capped {
		capped[i] = d.Row(i) // three-index views: capacity stops at the row
	}
	if _, ok := AsDense(capped); ok {
		t.Fatal("accepted capacity-limited row views (cannot prove one backing)")
	}
	if _, ok := AsDense(nil); ok {
		t.Fatal("accepted nil")
	}
	if _, ok := AsDense([][]float64{{}}); ok {
		t.Fatal("accepted empty row")
	}
	if got, ok := AsDense(rows); !ok || got.Rows != 4 {
		t.Fatal("sanity: the unmodified RowsView must still be accepted")
	}
}

func TestDotAxpyMismatchStillPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic on length mismatch", name)
			}
		}()
		f()
	}
	mustPanic("Dot", func() { Dot([]float64{1}, []float64{1, 2}) })
	mustPanic("Axpy", func() { Axpy(1, []float64{1}, []float64{1, 2}) })
	mustPanic("AffineInto", func() { NewDense(2, 2).AffineInto(make([]float64, 2), []float64{1}, 0) })
}
