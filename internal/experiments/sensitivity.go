package experiments

import (
	"fmt"

	"fairbench/internal/classifier"
	"fairbench/internal/rng"
	"fairbench/internal/synth"
)

// ModelNames lists the five model families of the model-sensitivity
// experiment (Section 4.5, Appendix F).
var ModelNames = []string{"LR", "SVM", "kNN", "RF", "MLP"}

// ModelFactory returns the classifier factory for one model-family name
// with the paper's hyper-parameters.
func ModelFactory(name string) classifier.Factory {
	switch name {
	case "SVM":
		return func() classifier.Classifier { return classifier.NewSVM() }
	case "kNN":
		return func() classifier.Classifier { return classifier.NewKNN() }
	case "RF":
		return func() classifier.Classifier { return classifier.NewForest() }
	case "MLP":
		return func() classifier.Classifier { return classifier.NewMLP() }
	default:
		return func() classifier.Classifier { return classifier.NewLogistic() }
	}
}

// SensitivityRow is one (approach, model) evaluation.
type SensitivityRow struct {
	Approach, Model string
	Row             Row
}

// ModelSensitivity reproduces Figure 10 / Figure 21: each pre- and
// post-processing approach is paired with each of the five model families;
// in-processing approaches are excluded because their mechanism is welded
// to their own learner (Section 4.5 evaluates pre and post only).
func ModelSensitivity(src *synth.Source, approaches []string, seed int64) ([]SensitivityRow, error) {
	if out, ok, err := specOutput(src, seed, Spec{Experiment: "fig10", Names: approaches}); ok {
		if err != nil {
			return nil, err
		}
		return out.Sensitivity, nil
	}
	out, err := sensitivityGrid(src, approaches, seed).RunAll()
	if err != nil {
		return nil, err
	}
	return out.Sensitivity, nil
}

// sensitivityGrid builds the (model family × approach) grid; each cell
// builds its own classifier factory so no state crosses goroutines or
// processes.
func sensitivityGrid(src *synth.Source, approaches []string, seed int64) *Grid {
	if approaches == nil {
		approaches = DefaultSensitivityApproaches
	}
	train, test := src.Data.Split(0.7, rng.New(seed))
	return &Grid{
		kind: kindSens, graph: src.Graph, seed: seed,
		slices: []splitPair{{train, test}},
		models: ModelNames, names: approaches,
		assemble: func(g *Grid, cells []Cell) (*Output, error) {
			rows := make([]SensitivityRow, len(cells))
			for i := range cells {
				if cells[i].Sens == nil {
					return nil, fmt.Errorf("experiments: cell %d has no sensitivity payload", i)
				}
				rows[i] = *cells[i].Sens
			}
			return &Output{Sensitivity: rows}, nil
		},
	}
}

// SensitivitySpread summarizes, per approach, the spread (max - min) of
// accuracy and DI* across models — the quantity the paper's finding keys
// on: large for pre-processing, small for post-processing.
type SensitivitySpread struct {
	Approach              string
	Stage                 string
	AccSpread, DISpread   float64
	AccByModel, DIByModel map[string]float64
}

// Spreads aggregates ModelSensitivity rows.
func Spreads(rows []SensitivityRow) []SensitivitySpread {
	order := []string{}
	agg := map[string]*SensitivitySpread{}
	for _, r := range rows {
		s := agg[r.Approach]
		if s == nil {
			s = &SensitivitySpread{
				Approach:   r.Approach,
				Stage:      r.Row.Stage,
				AccByModel: map[string]float64{},
				DIByModel:  map[string]float64{},
			}
			agg[r.Approach] = s
			order = append(order, r.Approach)
		}
		s.AccByModel[r.Model] = r.Row.Correct.Accuracy
		s.DIByModel[r.Model] = r.Row.Fair.DIStar
	}
	var out []SensitivitySpread
	for _, name := range order {
		s := agg[name]
		s.AccSpread = spread(s.AccByModel)
		s.DISpread = spread(s.DIByModel)
		out = append(out, *s)
	}
	return out
}

func spread(m map[string]float64) float64 {
	first := true
	var lo, hi float64
	for _, v := range m {
		if first {
			lo, hi = v, v
			first = false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}
