package engine

import (
	"bytes"
	"context"
	"io/fs"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"fairbench/internal/store"
)

// corruptOneCacheEntry overwrites exactly one stored cell under the
// cache directory with bytes that cannot verify, returning how many
// entries existed.
func corruptOneCacheEntry(t *testing.T, cacheDir string) int {
	t.Helper()
	var entries []string
	err := filepath.WalkDir(filepath.Join(cacheDir, "cells"), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			entries = append(entries, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no cache entries to corrupt")
	}
	if err := os.WriteFile(entries[0], []byte(`{"version":1,"tampered":true`), 0o644); err != nil {
		t.Fatal(err)
	}
	return len(entries)
}

// TestCorruptCacheEntryRejectedOnce is the regression test for the
// Rejected counter's plumbing: a warm rerun over a cache with exactly
// one corrupted cell must reject that entry exactly once (surfaced in
// Report.CacheStats), recompute exactly that one cell, and still
// produce the serial bytes.
func TestCorruptCacheEntryRejectedOnce(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	cache := t.TempDir()
	eng := New(RunOptions{CacheDir: cache})

	_, rep, err := eng.Run(context.Background(), spec, RunOptions{Backend: BackendInproc})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellsComputed != 4 {
		t.Fatalf("cold report %+v", rep)
	}
	if n := corruptOneCacheEntry(t, cache); n != 4 {
		t.Fatalf("cache holds %d entries after the cold run, want 4", n)
	}

	out, rep, err := eng.Run(context.Background(), spec, RunOptions{Backend: BackendInproc})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("warm run over a corrupted cache diverges from serial run")
	}
	if rep.CacheStats.Rejected != 1 {
		t.Fatalf("rejected=%d, want exactly 1 (stats %+v)", rep.CacheStats.Rejected, rep.CacheStats)
	}
	if rep.CellsComputed != 1 || rep.CellsCached != 3 {
		t.Fatalf("warm report computed=%d cached=%d, want 1/3", rep.CellsComputed, rep.CellsCached)
	}
}

// TestRemoteStoreWarmRunSpawnsNothing is the engine-level acceptance
// check for the shared store: a process whose only cache is a remote
// server — no local cache directory at all — serves a grid another
// process computed with computed=0, zero worker spawns, and serial
// bytes.
func TestRemoteStoreWarmRunSpawnsNothing(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	serverDisk, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(store.Handler(serverDisk))
	defer srv.Close()

	// First process: computes everything, writing through to the server.
	eng := New(RunOptions{RemoteStore: srv.URL})
	_, rep, err := eng.Run(context.Background(), spec, RunOptions{Backend: BackendInproc})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellsComputed != 4 || rep.CacheStats.Writes != 4 {
		t.Fatalf("cold report %+v (stats %+v)", rep, rep.CacheStats)
	}

	// Second process (same engine config, but nothing local): a
	// dispatch-backed run must short-circuit to the cache with no spawns.
	var spawns atomic.Int64
	out, rep, err := eng.Run(context.Background(), spec, RunOptions{
		Dir: t.TempDir(), Spawn: countingSpawn(&spawns),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ServedFromCache || rep.CellsComputed != 0 || rep.CellsCached != 4 {
		t.Fatalf("warm report %+v", rep)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("remote-warm output diverges from serial run")
	}
	if n := spawns.Load(); n != 0 {
		t.Fatalf("remote-warm run spawned %d worker subprocess(es), want 0", n)
	}
}
