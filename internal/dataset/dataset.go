// Package dataset implements the annotated-dataset abstraction of the paper
// (Section 2, Figure 1): a relation with schema (X, S; Y) where X is a set
// of descriptive attributes, S a binary sensitive attribute (1 = privileged,
// 0 = unprivileged), and Y a binary ground-truth label (1 = favorable).
//
// The package also provides the data-management plumbing every fair
// approach needs: train/test splitting, k-fold cross validation, weighted
// resampling, per-attribute standardization and discretization, and CSV
// import/export.
package dataset

import (
	"fmt"

	"fairbench/internal/rng"
)

// AttrKind distinguishes numeric attributes (repaired by quantile
// alignment, discretized by equal-width binning) from categorical ones
// (small integer codes; stratified directly).
type AttrKind int

const (
	// Numeric marks a continuous or ordinal attribute.
	Numeric AttrKind = iota
	// Categorical marks a finite-domain attribute coded as 0..Card-1.
	Categorical
)

// Attr describes one attribute of X.
type Attr struct {
	Name string
	Kind AttrKind
	// Card is the domain size for Categorical attributes; ignored for
	// Numeric ones.
	Card int
}

// Dataset is an annotated dataset D with schema (X, S; Y). Rows of X are
// feature vectors; S and Y are parallel slices. Weights, when non-nil,
// carry per-tuple importance weights (used by reweighing pre-processors and
// cost-sensitive in-processing); nil means uniform weight 1.
type Dataset struct {
	Name    string
	Attrs   []Attr
	X       [][]float64
	S       []int
	Y       []int
	Weights []float64
	// SName and YName label the sensitive attribute and target task for
	// reporting (e.g. "Sex" and "Income>=50K" for Adult).
	SName, YName string
}

// Len returns the number of tuples |D|.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the number of attributes |X| (excluding S and Y).
func (d *Dataset) Dim() int { return len(d.Attrs) }

// Validate checks internal consistency and value domains. It returns an
// error describing the first violation found.
func (d *Dataset) Validate() error {
	n := len(d.X)
	if len(d.S) != n || len(d.Y) != n {
		return fmt.Errorf("dataset %s: X/S/Y length mismatch %d/%d/%d", d.Name, n, len(d.S), len(d.Y))
	}
	if d.Weights != nil && len(d.Weights) != n {
		return fmt.Errorf("dataset %s: weight length %d != %d", d.Name, len(d.Weights), n)
	}
	for i, row := range d.X {
		if len(row) != len(d.Attrs) {
			return fmt.Errorf("dataset %s: row %d has %d attrs, want %d", d.Name, i, len(row), len(d.Attrs))
		}
		if d.S[i] != 0 && d.S[i] != 1 {
			return fmt.Errorf("dataset %s: row %d has non-binary S=%d", d.Name, i, d.S[i])
		}
		if d.Y[i] != 0 && d.Y[i] != 1 {
			return fmt.Errorf("dataset %s: row %d has non-binary Y=%d", d.Name, i, d.Y[i])
		}
	}
	return nil
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		Name:  d.Name,
		Attrs: append([]Attr(nil), d.Attrs...),
		X:     make([][]float64, len(d.X)),
		S:     append([]int(nil), d.S...),
		Y:     append([]int(nil), d.Y...),
		SName: d.SName,
		YName: d.YName,
	}
	for i, row := range d.X {
		out.X[i] = append([]float64(nil), row...)
	}
	if d.Weights != nil {
		out.Weights = append([]float64(nil), d.Weights...)
	}
	return out
}

// Weight returns the weight of tuple i (1 when Weights is nil).
func (d *Dataset) Weight(i int) float64 {
	if d.Weights == nil {
		return 1
	}
	return d.Weights[i]
}

// TotalWeight returns the sum of tuple weights (Len() when unweighted).
func (d *Dataset) TotalWeight() float64 {
	if d.Weights == nil {
		return float64(d.Len())
	}
	var s float64
	for _, w := range d.Weights {
		s += w
	}
	return s
}

// Subset returns a new dataset containing the tuples at the given indices
// (rows are copied, so mutating the subset does not alias the parent).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		Name:  d.Name,
		Attrs: append([]Attr(nil), d.Attrs...),
		X:     make([][]float64, len(idx)),
		S:     make([]int, len(idx)),
		Y:     make([]int, len(idx)),
		SName: d.SName,
		YName: d.YName,
	}
	if d.Weights != nil {
		out.Weights = make([]float64, len(idx))
	}
	for j, i := range idx {
		out.X[j] = append([]float64(nil), d.X[i]...)
		out.S[j] = d.S[i]
		out.Y[j] = d.Y[i]
		if d.Weights != nil {
			out.Weights[j] = d.Weights[i]
		}
	}
	return out
}

// Split partitions the dataset into train and test with the given train
// fraction, shuffling with g. The paper uses a random 70%-30% split.
func (d *Dataset) Split(trainFrac float64, g *rng.RNG) (train, test *Dataset) {
	n := d.Len()
	perm := g.Perm(n)
	cut := int(trainFrac * float64(n))
	if cut < 1 {
		cut = 1
	}
	if cut >= n {
		cut = n - 1
	}
	return d.Subset(perm[:cut]), d.Subset(perm[cut:])
}

// KFold returns k (train, test) pairs for k-fold cross validation with a
// shuffled assignment. Used for the 5-fold CV tables (Figures 16-18).
func (d *Dataset) KFold(k int, g *rng.RNG) []struct{ Train, Test *Dataset } {
	n := d.Len()
	perm := g.Perm(n)
	folds := make([]struct{ Train, Test *Dataset }, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		testIdx := perm[lo:hi]
		trainIdx := make([]int, 0, n-(hi-lo))
		trainIdx = append(trainIdx, perm[:lo]...)
		trainIdx = append(trainIdx, perm[hi:]...)
		folds[f].Train = d.Subset(trainIdx)
		folds[f].Test = d.Subset(testIdx)
	}
	return folds
}

// Sample draws a uniform random subset of size n without replacement.
func (d *Dataset) Sample(n int, g *rng.RNG) *Dataset {
	if n >= d.Len() {
		return d.Clone()
	}
	return d.Subset(g.SampleWithoutReplacement(d.Len(), n))
}

// ResampleWeighted draws n tuples with replacement with probability
// proportional to w (the Kam-Cal resampling step).
func (d *Dataset) ResampleWeighted(w []float64, n int, g *rng.RNG) *Dataset {
	return d.Subset(g.SampleWeighted(w, n))
}

// ProjectAttrs returns a dataset keeping only the attributes at the given
// column indices (used by the attribute-scalability experiment, Fig 8 d-f).
func (d *Dataset) ProjectAttrs(cols []int) *Dataset {
	out := &Dataset{
		Name:  d.Name,
		Attrs: make([]Attr, len(cols)),
		X:     make([][]float64, d.Len()),
		S:     append([]int(nil), d.S...),
		Y:     append([]int(nil), d.Y...),
		SName: d.SName,
		YName: d.YName,
	}
	for j, c := range cols {
		out.Attrs[j] = d.Attrs[c]
	}
	for i, row := range d.X {
		nr := make([]float64, len(cols))
		for j, c := range cols {
			nr[j] = row[c]
		}
		out.X[i] = nr
	}
	if d.Weights != nil {
		out.Weights = append([]float64(nil), d.Weights...)
	}
	return out
}

// Column returns a copy of attribute column j.
func (d *Dataset) Column(j int) []float64 {
	col := make([]float64, d.Len())
	for i, row := range d.X {
		col[i] = row[j]
	}
	return col
}

// GroupIndices returns the tuple indices of the unprivileged (S=0) and
// privileged (S=1) groups.
func (d *Dataset) GroupIndices() (unpriv, priv []int) {
	for i, s := range d.S {
		if s == 1 {
			priv = append(priv, i)
		} else {
			unpriv = append(unpriv, i)
		}
	}
	return unpriv, priv
}

// BaseRates returns P(Y=1|S=0) and P(Y=1|S=1) over the dataset, weighted.
func (d *Dataset) BaseRates() (unpriv, priv float64) {
	var n0, n1, p0, p1 float64
	for i := range d.Y {
		w := d.Weight(i)
		if d.S[i] == 1 {
			n1 += w
			if d.Y[i] == 1 {
				p1 += w
			}
		} else {
			n0 += w
			if d.Y[i] == 1 {
				p0 += w
			}
		}
	}
	if n0 > 0 {
		unpriv = p0 / n0
	}
	if n1 > 0 {
		priv = p1 / n1
	}
	return unpriv, priv
}

// FeatureMatrix returns the design matrix used by the classifiers:
// each row is X_i with S appended as the final column when includeS is
// true. The returned matrix is freshly allocated.
func (d *Dataset) FeatureMatrix(includeS bool) [][]float64 {
	out := make([][]float64, d.Len())
	for i, row := range d.X {
		if includeS {
			r := make([]float64, len(row)+1)
			copy(r, row)
			r[len(row)] = float64(d.S[i])
			out[i] = r
		} else {
			out[i] = append([]float64(nil), row...)
		}
	}
	return out
}

// FeatureRow builds a single classifier input row from features x and
// sensitive value s, matching FeatureMatrix's layout.
func FeatureRow(x []float64, s int, includeS bool) []float64 {
	if !includeS {
		return x
	}
	r := make([]float64, len(x)+1)
	copy(r, x)
	r[len(x)] = float64(s)
	return r
}
