package inproc

import (
	"fmt"
	"math"

	"fairbench/internal/classifier"
	"fairbench/internal/dataset"
	"fairbench/internal/fair"
)

// Celis implements Celis et al.'s meta-algorithm for classification with
// fairness constraints, instantiated — as in the paper's evaluation — for
// predictive parity (Celis^pp): the false discovery rate
// q_s = P(Y=0 | Ŷ=1, S=s) must satisfy min_s q_s / max_s q_s >= Tau.
//
// The meta-algorithm reduces the constrained problem to group-dependent
// shifts of the decision rule on top of a calibrated score. Solving the
// Lagrangian dual over the two shift parameters is equivalent to searching
// the two per-group thresholds directly, which this implementation does
// exactly on a grid, minimizing training error subject to the constraint.
type Celis struct {
	// Tau is the performance-ratio tolerance (source-code default 0.8).
	Tau float64
	// GridSteps controls the threshold search resolution (default 40).
	GridSteps int

	base      linearBase
	clf       *classifier.LogisticRegression
	threshold [2]float64
}

// Name implements fair.Approach.
func (c *Celis) Name() string { return "Celis-PP" }

// Stage implements fair.Approach.
func (c *Celis) Stage() fair.Stage { return fair.StageIn }

// Targets implements fair.Approach: the enforced notion — predictive
// parity (false-discovery-rate parity) — has no counterpart among the five
// evaluated metrics, so none is marked as optimized; the paper's Figure 7
// likewise notes that performance on non-targeted metrics is unpredictable.
func (c *Celis) Targets() []fair.Metric { return nil }

// Fit implements fair.Approach.
func (c *Celis) Fit(train *dataset.Dataset) error {
	if c.Tau == 0 {
		c.Tau = 0.8
	}
	if c.GridSteps == 0 {
		c.GridSteps = 40
	}
	c.base.includeS = true
	x := c.base.designMatrix(train)
	c.clf = classifier.NewLogistic()
	if err := c.clf.Fit(x, train.Y, train.Weights); err != nil {
		return err
	}
	proba := classifier.ProbaAll(c.clf, x)

	// Exact grid search over per-group thresholds: pick the feasible pair
	// minimizing training error; fall back to the fairest pair if no pair
	// meets Tau.
	steps := c.GridSteps
	bestErr := math.Inf(1)
	bestRatio := -1.0
	var best, fairest [2]float64
	best = [2]float64{0.5, 0.5}
	fairest = best
	n := float64(len(x))
	for a := 1; a < steps; a++ {
		t0 := float64(a) / float64(steps)
		for b := 1; b < steps; b++ {
			t1 := float64(b) / float64(steps)
			var errs, pos0, pos1, fd0, fd1 float64
			for i := range x {
				t := t0
				if train.S[i] == 1 {
					t = t1
				}
				pred := 0
				if proba[i] >= t {
					pred = 1
				}
				if pred != train.Y[i] {
					errs++
				}
				if pred == 1 {
					if train.S[i] == 1 {
						pos1++
						if train.Y[i] == 0 {
							fd1++
						}
					} else {
						pos0++
						if train.Y[i] == 0 {
							fd0++
						}
					}
				}
			}
			if pos0 < 5 || pos1 < 5 {
				continue
			}
			q0, q1 := fd0/pos0, fd1/pos1
			lo, hi := math.Min(q0, q1), math.Max(q0, q1)
			ratio := 1.0
			if hi > 0 {
				ratio = lo / hi
			}
			if ratio > bestRatio {
				bestRatio = ratio
				fairest = [2]float64{t0, t1}
			}
			if ratio >= c.Tau && errs/n < bestErr {
				bestErr = errs / n
				best = [2]float64{t0, t1}
			}
		}
	}
	if math.IsInf(bestErr, 1) {
		best = fairest
	}
	c.threshold = best
	return nil
}

// Predict implements fair.Approach.
func (c *Celis) Predict(test *dataset.Dataset) ([]int, error) {
	if c.clf == nil {
		return nil, fmt.Errorf("%s: not fitted", c.Name())
	}
	out := make([]int, test.Len())
	for i := range out {
		out[i] = c.PredictOne(test.X[i], test.S[i])
	}
	return out, nil
}

// PredictOne implements fair.Approach.
func (c *Celis) PredictOne(x []float64, s int) int {
	p := c.clf.PredictProba(c.base.row(x, s))
	if p >= c.threshold[s] {
		return 1
	}
	return 0
}

// Thresholds exposes the learned per-group decision thresholds (used by
// tests and the ablation benches).
func (c *Celis) Thresholds() [2]float64 { return c.threshold }

// NewCelis returns the evaluated Celis^pp approach.
func NewCelis() fair.Approach { return &Celis{} }
