package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(1)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("split children look correlated: %d identical draws", same)
	}
}

func TestDeriveDeterminism(t *testing.T) {
	a, b := Derive(42, 7), Derive(42, 7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same (seed, id) produced different streams")
		}
	}
}

func TestDeriveStreamIndependence(t *testing.T) {
	// Adjacent job ids — the layout every runner.Run call produces — must
	// yield uncorrelated streams, unlike naive New(seed+id) seeding.
	const draws = 200
	streams := make([][]float64, 8)
	for id := range streams {
		g := Derive(1, int64(id))
		for i := 0; i < draws; i++ {
			streams[id] = append(streams[id], g.Float64())
		}
	}
	for i := range streams {
		for j := i + 1; j < len(streams); j++ {
			same := 0
			for k := 0; k < draws; k++ {
				if streams[i][k] == streams[j][k] {
					same++
				}
			}
			if same > 5 {
				t.Fatalf("Derive(1,%d) and Derive(1,%d) look correlated: %d identical draws", i, j, same)
			}
		}
	}
}

func TestDeriveDiffersFromBaseSeed(t *testing.T) {
	base, derived := New(5), Derive(5, 0)
	same := 0
	for i := 0; i < 100; i++ {
		if base.Float64() == derived.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("Derive(seed, 0) replays New(seed): %d identical draws", same)
	}
}

func TestBernoulli(t *testing.T) {
	g := New(7)
	n := 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += g.Bernoulli(0.3)
	}
	p := float64(sum) / float64(n)
	if math.Abs(p-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) frequency %v", p)
	}
}

func TestNormalMoments(t *testing.T) {
	g := New(5)
	n := 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := g.Normal(2, 3)
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sq/float64(n) - mean*mean)
	if math.Abs(mean-2) > 0.1 || math.Abs(std-3) > 0.1 {
		t.Fatalf("Normal(2,3): mean %v std %v", mean, std)
	}
}

func TestCategorical(t *testing.T) {
	g := New(3)
	w := []float64{1, 3, 6}
	counts := make([]int, 3)
	n := 30000
	for i := 0; i < n; i++ {
		counts[g.Categorical(w)]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("Categorical weight %d: got %v want %v", i, got, want)
		}
	}
	if g.Categorical([]float64{0, 0}) != 0 {
		t.Fatal("zero-weight Categorical should return 0")
	}
}

func TestPoissonMean(t *testing.T) {
	g := New(11)
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(g.Poisson(2.5))
	}
	mean := sum / float64(n)
	if math.Abs(mean-2.5) > 0.1 {
		t.Fatalf("Poisson(2.5) mean %v", mean)
	}
	if g.Poisson(0) != 0 {
		t.Fatal("Poisson(0) must be 0")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := New(9)
	idx := g.SampleWithoutReplacement(10, 5)
	if len(idx) != 5 {
		t.Fatalf("want 5 samples, got %d", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if seen[i] {
			t.Fatal("duplicate index in without-replacement sample")
		}
		seen[i] = true
		if i < 0 || i >= 10 {
			t.Fatalf("index %d out of range", i)
		}
	}
	all := g.SampleWithoutReplacement(4, 10)
	if len(all) != 4 {
		t.Fatalf("oversampling should cap at n, got %d", len(all))
	}
}

func TestSampleWeighted(t *testing.T) {
	g := New(13)
	idx := g.SampleWeighted([]float64{0, 1}, 100)
	for _, i := range idx {
		if i != 1 {
			t.Fatal("zero-weight index sampled")
		}
	}
}
