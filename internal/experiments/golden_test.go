package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fairbench/internal/runner"
	"fairbench/internal/synth"
)

// -update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/experiments -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden testdata files")

// TestGoldenRowsCOMPAS pins every metric of the Figure 7 driver on a
// small COMPAS slice at seed 42 to a checked-in file, byte for byte. Any
// refactor that silently shifts a numeric result — a reordered float
// summation, a changed RNG derivation, an off-by-one in a split — fails
// here with a precise diff, which is the guard the sharding layer (and
// every future layer) builds on: fairness conclusions are only as
// reproducible as these rows.
//
// Timing fields are zeroed before comparison; they are the one sanctioned
// nondeterminism. The pinned floats assume Go's default strict float64
// semantics on the CI architecture (amd64, no FMA contraction); if CI
// ever changes architecture, regenerate with -update and review the diff.
func TestGoldenRowsCOMPAS(t *testing.T) {
	src := synth.COMPAS(300, 42)
	rows, err := CorrectnessFairness(src, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		rows[i].Seconds, rows[i].Overhead = 0, 0
	}
	got, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden_compas_seed42.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d rows)", path, len(rows))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden rows drifted from %s — a numeric result changed.\n"+
			"If the change is intended, regenerate with -update and justify the diff in review.\n%s",
			path, goldenDiff(want, got))
	}
}

// TestGoldenRowsStableAcrossParallelism re-derives the golden rows once
// forced serial and once on a multi-worker pool; together with
// TestGoldenRowsCOMPAS this pins the golden file to both execution
// modes, not just to whichever one the test harness happens to use.
func TestGoldenRowsStableAcrossParallelism(t *testing.T) {
	defer runner.SetParallelism(0)
	src := synth.COMPAS(300, 42)
	runner.SetParallelism(1)
	a, err := CorrectnessFairness(src, 42)
	if err != nil {
		t.Fatal(err)
	}
	runner.SetParallelism(4)
	b, err := CorrectnessFairness(src, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Correct != b[i].Correct || a[i].Fair != b[i].Fair {
			t.Fatalf("%s: repeated run diverges", a[i].Approach)
		}
	}
}

// goldenDiff reports the first line where the encodings diverge.
func goldenDiff(want, got []byte) string {
	wl, gl := bytes.Split(want, []byte("\n")), bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("one encoding is a prefix of the other (lengths %d vs %d)", len(want), len(got))
}
