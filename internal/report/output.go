// output.go renders merged grid results (experiments.Output) into the
// same tables the serial CLI commands print. Extracted from
// cmd/fairbench so the serve daemon's /runs/{id}/table endpoint and the
// CLI's merge/dispatch/sched paths share one renderer — the
// byte-identical-to-serial guarantee then covers HTTP responses too.
package report

import (
	"fmt"
	"io"
	"sort"

	"fairbench/internal/experiments"
)

// RenderOutput writes a merged grid result as the tables the serial
// command would print (minus the serial-only extras, like fig9's
// clean-training deltas, which need a second grid).
func RenderOutput(w io.Writer, out *experiments.Output) error {
	spec := out.Spec
	ds := DatasetLabel(spec)
	switch out.Experiment {
	case "fig7", "fig15", "cv":
		title := fmt.Sprintf("%s — merged shards (%s, seed %d)", out.Experiment, ds, spec.Seed)
		return RowsTable(title, out.Rows).Render(w)
	case "fig9":
		for _, res := range out.Robustness {
			title := fmt.Sprintf("Figure 9 — robustness on %s + %s (merged shards)", ds, res.Template)
			if err := RowsTable(title, res.Rows).Render(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	case "fig10":
		return RenderSensitivity(w, out.Sensitivity, ds)
	case "fig22":
		return RenderStability(w, out.Stability, spec.Runs, ds)
	case "fig23":
		return RenderEfficiency(w, out.Efficiency, spec.Sizes, ds)
	case "fig8rows":
		return ScalabilityTable(fmt.Sprintf("Figure 8(a-c) — overhead vs #data points (%s, merged shards)", ds), "points", out.Scalability).Render(w)
	case "fig8attrs":
		return ScalabilityTable(fmt.Sprintf("Figure 8(d-f) — overhead vs #attributes (%s, merged shards)", ds), "attrs", out.Scalability).Render(w)
	default:
		return fmt.Errorf("render: unknown experiment %q", out.Experiment)
	}
}

// DatasetLabel names the data a grid actually ran on: the stock dataset,
// suffixed with the bias-injection setting when the spec carries one.
// Every table title routes through this so a biased grid can never be
// mistaken for a clean one in rendered output.
func DatasetLabel(spec experiments.Spec) string {
	if b := spec.BiasLabelText(); b != "" {
		return spec.Dataset + " [" + b + "]"
	}
	return spec.Dataset
}

// RowsTable lays out per-approach correctness/fairness rows — the
// paper's core table shape (Figures 7, 15-18).
func RowsTable(title string, rows []experiments.Row) *Table {
	t := &Table{
		Title: title,
		Headers: []string{"approach", "stage", "acc", "prec", "rec", "f1",
			"DI*", "1-|TPRB|", "1-|TNRB|", "1-ID", "1-|TE|", "1-|NDE|", "1-|NIE|", "overhead(s)"},
	}
	for _, r := range rows {
		t.Add(r.Approach, r.Stage,
			F(r.Correct.Accuracy), F(r.Correct.Precision),
			F(r.Correct.Recall), F(r.Correct.F1),
			F(r.Fair.DIStar), F(r.Fair.TPRB), F(r.Fair.TNRB),
			F(r.Fair.ID), F(r.Fair.TE), F(r.Fair.NDE),
			F(r.Fair.NIE), F(r.Overhead))
	}
	return t
}

// ScalabilityTable lays out Figure 8's overhead-vs-x series, one row
// per approach, one column per x value.
func ScalabilityTable(title, xlabel string, series map[string][]experiments.ScalabilityPoint) *Table {
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	var xs []int
	if len(names) > 0 {
		for _, p := range series[names[0]] {
			xs = append(xs, p.X)
		}
	}
	headers := []string{"approach"}
	for _, x := range xs {
		headers = append(headers, fmt.Sprintf("%s=%d", xlabel, x))
	}
	t := &Table{Title: title, Headers: headers}
	for _, n := range names {
		cells := []string{n}
		for _, p := range series[n] {
			cells = append(cells, fmt.Sprintf("%.3fs", p.Overhead))
		}
		t.Add(cells...)
	}
	return t
}

// RenderSensitivity writes Figure 10/21's model-sensitivity table plus
// the per-approach spread summary.
func RenderSensitivity(w io.Writer, rows []experiments.SensitivityRow, dataset string) error {
	t := &Table{
		Title:   fmt.Sprintf("Figure 10/21 — model sensitivity on %s", dataset),
		Headers: []string{"approach", "model", "acc", "DI*", "1-|TE|"},
	}
	for _, r := range rows {
		t.Add(r.Approach, r.Model, F(r.Row.Correct.Accuracy),
			F(r.Row.Fair.DIStar), F(r.Row.Fair.TE))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	st := &Table{
		Title:   "Per-approach spread across models (pre varies, post stays flat)",
		Headers: []string{"approach", "stage", "acc spread", "DI* spread"},
	}
	for _, s := range experiments.Spreads(rows) {
		st.Add(s.Approach, s.Stage, F(s.AccSpread), F(s.DISpread))
	}
	fmt.Fprintln(w)
	return st.Render(w)
}

// RenderStability writes Figure 22's mean±std stability table.
func RenderStability(w io.Writer, rows []experiments.StabilityRow, runs int, dataset string) error {
	t := &Table{
		Title:   fmt.Sprintf("Figure 22 — stability over %d random folds (%s)", runs, dataset),
		Headers: []string{"approach", "stage", "acc mean±std", "DI* mean±std", "1-|TPRB| mean±std", "f1 mean±std"},
	}
	for _, r := range rows {
		t.Add(r.Approach, r.Stage,
			fmt.Sprintf("%.3f±%.3f", r.AccMean, r.AccStd),
			fmt.Sprintf("%.3f±%.3f", r.DIMean, r.DIStd),
			fmt.Sprintf("%.3f±%.3f", r.TPRBMean, r.TPRBStd),
			fmt.Sprintf("%.3f±%.3f", r.F1Mean, r.F1Std))
	}
	return t.Render(w)
}

// RenderEfficiency writes Figure 23's accuracy-by-training-size and
// DI*-by-training-size tables.
func RenderEfficiency(w io.Writer, series map[string][]experiments.EfficiencyPoint, sizes []int, dataset string) error {
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	headers := []string{"approach"}
	for _, s := range sizes {
		headers = append(headers, fmt.Sprintf("acc@%d", s))
	}
	t := &Table{Title: fmt.Sprintf("Figure 23 — data efficiency on %s (accuracy by training size)", dataset), Headers: headers}
	for _, name := range names {
		cells := []string{name}
		for _, p := range series[name] {
			cells = append(cells, F(p.Row.Correct.Accuracy))
		}
		t.Add(cells...)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	t2 := &Table{Title: "Figure 23 — DI* by training size", Headers: headers}
	for _, name := range names {
		cells := []string{name}
		for _, p := range series[name] {
			cells = append(cells, F(p.Row.Fair.DIStar))
		}
		t2.Add(cells...)
	}
	fmt.Fprintln(w)
	return t2.Render(w)
}
