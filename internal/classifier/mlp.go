package classifier

import (
	"math"

	"fairbench/internal/matrix"
	"fairbench/internal/rng"
)

// MLP is a one-hidden-layer perceptron with tanh hidden units and a
// sigmoid output, trained by mini-batch SGD on the weighted log loss with
// L2 regularization — the paper's fifth model family (20 hidden neurons,
// alpha = 0.01, Appendix F).
//
// The hidden-layer weights and their gradient accumulator live in flat
// matrix.Dense backings (w1 rows are views into one allocation), and the
// per-batch gradient buffers are allocated once per Fit and zeroed
// between batches — the training loop allocates nothing per batch or per
// epoch. Defaults resolve into locals, so a zero-value model is reusable
// and race-free across cells.
type MLP struct {
	// Hidden is the hidden-layer width (default 20).
	Hidden int
	// Alpha is the L2 penalty (default 0.01).
	Alpha float64
	// Epochs is the number of training passes (default 60).
	Epochs int
	// Step is the SGD learning rate (default 0.05).
	Step float64
	// Batch is the mini-batch size (default 32).
	Batch int
	// Seed drives initialization and shuffling.
	Seed int64

	hidden int         // resolved width the fitted weights use
	w1     [][]float64 // hidden x (d+1), last column bias; views into w1m
	w1m    *matrix.Dense
	w2     []float64 // hidden+1, last entry bias
}

// NewMLP returns an MLP with the paper's defaults.
func NewMLP() *MLP {
	return &MLP{Hidden: 20, Alpha: 0.01, Epochs: 60, Step: 0.05, Batch: 32, Seed: 3}
}

// Fit trains the network.
func (m *MLP) Fit(x [][]float64, y []int, w []float64) error {
	if err := checkFitInput(x, y, w); err != nil {
		return err
	}
	hidden, epochs, step, batch := m.Hidden, m.Epochs, m.Step, m.Batch
	if hidden == 0 {
		hidden = 20
	}
	if epochs == 0 {
		epochs = 60
	}
	if step == 0 {
		step = 0.05
	}
	if batch == 0 {
		batch = 32
	}
	n, d := len(x), len(x[0])
	g := rng.New(m.Seed)
	scale := 1 / math.Sqrt(float64(d)+1)
	m.hidden = hidden
	m.w1m = matrix.NewDense(hidden, d+1)
	m.w1 = m.w1m.RowsView()
	for h := range m.w1 {
		for j := range m.w1[h] {
			m.w1[h][j] = g.Normal(0, scale)
		}
	}
	m.w2 = make([]float64, hidden+1)
	for h := range m.w2 {
		m.w2[h] = g.Normal(0, 1/math.Sqrt(float64(hidden)+1))
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	hid := make([]float64, hidden)
	// Per-batch gradient accumulators, allocated once and zeroed between
	// batches.
	g1m := matrix.NewDense(hidden, d+1)
	g1 := g1m.RowsView()
	g2 := make([]float64, hidden+1)
	for epoch := 0; epoch < epochs; epoch++ {
		g.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			for i := range g1m.Data {
				g1m.Data[i] = 0
			}
			for i := range g2 {
				g2[i] = 0
			}
			var bw float64
			for _, i := range order[start:end] {
				wi := weightOf(w, i)
				bw += wi
				xi := x[i]
				// Forward. Reslicing each weight row to the input length
				// proves the inner indexing in bounds.
				for h, w1h := range m.w1 {
					z := w1h[d]
					wz := w1h[:len(xi)]
					for j, v := range xi {
						z += wz[j] * v
					}
					hid[h] = math.Tanh(z)
				}
				out := m.w2[hidden]
				for h, hv := range hid {
					out += m.w2[h] * hv
				}
				p := matrix.Sigmoid(out)
				// Backward.
				dOut := wi * (p - float64(y[i]))
				for h, hv := range hid {
					g2[h] += dOut * hv
					dHid := dOut * m.w2[h] * (1 - hv*hv)
					g1h := g1[h]
					gz := g1h[:len(xi)]
					for j, v := range xi {
						gz[j] += dHid * v
					}
					g1h[d] += dHid
				}
				g2[hidden] += dOut
			}
			if bw == 0 {
				continue
			}
			lr := step
			for h := 0; h < hidden; h++ {
				for j := 0; j <= d; j++ {
					m.w1[h][j] -= lr * (g1[h][j]/bw + m.Alpha*m.w1[h][j])
				}
				m.w2[h] -= lr * (g2[h]/bw + m.Alpha*m.w2[h])
			}
			m.w2[hidden] -= lr * g2[hidden] / bw
		}
	}
	return nil
}

// PredictProba runs the forward pass.
func (m *MLP) PredictProba(x []float64) float64 {
	if m.w1 == nil {
		return 0.5
	}
	d := len(m.w1[0]) - 1
	out := m.w2[m.hidden]
	for h := 0; h < m.hidden; h++ {
		z := m.w1[h][d]
		for j := 0; j < d && j < len(x); j++ {
			z += m.w1[h][j] * x[j]
		}
		out += m.w2[h] * math.Tanh(z)
	}
	return matrix.Sigmoid(out)
}
