package inproc

import (
	"fmt"
	"math"

	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/optimize"
)

// AgarwalNotion selects the constraint an Agarwal instance enforces.
type AgarwalNotion int

const (
	// AgarwalDP enforces demographic parity.
	AgarwalDP AgarwalNotion = iota
	// AgarwalEO enforces equalized odds.
	AgarwalEO
)

// Agarwal implements Agarwal et al.'s reductions approach — the additional
// in-processing method of the paper's appendix (Figure 15, Agarwal^dp and
// Agarwal^eo): fair classification reduces to a sequence of cost-sensitive
// problems via exponentiated-gradient updates on the Lagrange multipliers
// of the group-rate constraints. Each inner step trains a weighted
// logistic learner whose per-tuple costs embed the current multipliers;
// the final classifier is the average of the iterates (a randomized
// classifier in the original; thresholded mean probability here).
type Agarwal struct {
	Notion AgarwalNotion
	// Eps is the allowed constraint violation (default 0.02).
	Eps float64
	// Rounds of exponentiated gradient (default 8).
	Rounds int
	// EtaEG is the multiplier learning rate (default 2.0).
	EtaEG float64

	base   linearBase
	models [][]float64
}

// Name implements fair.Approach.
func (a *Agarwal) Name() string {
	if a.Notion == AgarwalEO {
		return "Agarwal-EO"
	}
	return "Agarwal-DP"
}

// Stage implements fair.Approach.
func (a *Agarwal) Stage() fair.Stage { return fair.StageIn }

// Targets implements fair.Approach.
func (a *Agarwal) Targets() []fair.Metric {
	if a.Notion == AgarwalEO {
		return []fair.Metric{fair.MetricTPRB, fair.MetricTNRB}
	}
	return []fair.Metric{fair.MetricDI}
}

// constraintViolations measures the signed group-rate gaps of predictions:
// one gap for DP, two (TPR, TNR) for EO.
func (a *Agarwal) constraintViolations(preds []int, y, s []int) []float64 {
	var pos, tot [2]float64
	var tp, pn, tn, nn [2]float64
	for i, p := range preds {
		g := s[i]
		tot[g]++
		if p == 1 {
			pos[g]++
		}
		if y[i] == 1 {
			pn[g]++
			if p == 1 {
				tp[g]++
			}
		} else {
			nn[g]++
			if p == 0 {
				tn[g]++
			}
		}
	}
	rate := func(num, den [2]float64) float64 {
		r0, r1 := 0.0, 0.0
		if den[0] > 0 {
			r0 = num[0] / den[0]
		}
		if den[1] > 0 {
			r1 = num[1] / den[1]
		}
		return r1 - r0
	}
	if a.Notion == AgarwalDP {
		return []float64{rate(pos, tot)}
	}
	return []float64{rate(tp, pn), rate(tn, nn)}
}

// Fit implements fair.Approach.
func (a *Agarwal) Fit(train *dataset.Dataset) error {
	if a.Eps == 0 {
		a.Eps = 0.02
	}
	if a.Rounds == 0 {
		a.Rounds = 8
	}
	if a.EtaEG == 0 {
		a.EtaEG = 2.0
	}
	a.base.includeS = false
	x := a.base.designMatrix(train)
	y, s := train.Y, train.S
	n := len(x)
	dim := len(x[0])

	nCons := 1
	if a.Notion == AgarwalEO {
		nCons = 2
	}
	// Signed multipliers, one per constraint (positive pushes group-1
	// rates down, negative pushes them up).
	lambda := make([]float64, nCons)
	weights := make([]float64, n)
	w := make([]float64, dim+1)
	a.models = nil

	for round := 0; round < a.Rounds; round++ {
		// Cost-sensitive weights from the current multipliers: tuples in
		// group 1 (resp. 0) have the cost of a positive prediction
		// shifted by +lambda (resp. -lambda), realized here as label-
		// conditional instance reweighting.
		for i := range weights {
			weights[i] = 1
			sign := 1.0
			if s[i] == 0 {
				sign = -1
			}
			var shift float64
			if a.Notion == AgarwalDP {
				shift = sign * lambda[0]
			} else {
				if y[i] == 1 {
					shift = sign * lambda[0]
				} else {
					shift = -sign * lambda[1]
				}
			}
			// A positive shift penalizes positive predictions: emphasize
			// the negative label direction by weighting.
			if y[i] == 1 {
				weights[i] = math.Exp(-shift)
			} else {
				weights[i] = math.Exp(shift)
			}
			weights[i] = math.Min(8, math.Max(1.0/8, weights[i]))
		}
		// Gradient-only weighted logistic objective: Adam discards the
		// value, so the per-tuple log-loss terms are never computed.
		obj := func(wv, grad []float64) float64 {
			for j := range grad {
				grad[j] = 0
			}
			var tw float64
			d := len(wv) - 1
			for i, row := range x {
				z := wv[d]
				for j, v := range row {
					z += wv[j] * v
				}
				p := sigmoid(z)
				yi := float64(y[i])
				gval := weights[i] * (p - yi)
				for j, v := range row {
					grad[j] += gval * v
				}
				grad[d] += gval
				tw += weights[i]
			}
			if tw > 0 {
				for j := range grad {
					grad[j] /= tw
				}
			}
			return 0
		}
		w, _ = optimize.Adam(obj, w, optimize.AdamConfig{MaxIter: 250})
		a.models = append(a.models, append([]float64(nil), w...))

		// Exponentiated-gradient step on the averaged classifier's
		// violations.
		preds := a.averagePreds(x)
		viols := a.constraintViolations(preds, y, s)
		converged := true
		for c, v := range viols {
			if math.Abs(v) > a.Eps {
				converged = false
			}
			lambda[c] += a.EtaEG * v
			lambda[c] = math.Min(10, math.Max(-10, lambda[c]))
		}
		if converged {
			break
		}
	}
	return nil
}

func (a *Agarwal) averagePreds(x [][]float64) []int {
	out := make([]int, len(x))
	for i, row := range x {
		var sum float64
		for _, w := range a.models {
			d := len(w) - 1
			z := w[d]
			for j, v := range row {
				z += w[j] * v
			}
			sum += sigmoid(z)
		}
		if sum/float64(len(a.models)) >= 0.5 {
			out[i] = 1
		}
	}
	return out
}

// Predict implements fair.Approach.
func (a *Agarwal) Predict(test *dataset.Dataset) ([]int, error) {
	if len(a.models) == 0 {
		return nil, fmt.Errorf("%s: not fitted", a.Name())
	}
	out := make([]int, test.Len())
	for i := range out {
		out[i] = a.PredictOne(test.X[i], test.S[i])
	}
	return out, nil
}

// PredictOne implements fair.Approach; S is not a feature, so Agarwal
// trivially satisfies the ID metric.
func (a *Agarwal) PredictOne(x []float64, s int) int {
	row := a.base.row(x, s)
	var sum float64
	for _, w := range a.models {
		d := len(w) - 1
		z := w[d]
		for j, v := range row {
			if j < d {
				z += w[j] * v
			}
		}
		sum += sigmoid(z)
	}
	if sum/float64(len(a.models)) >= 0.5 {
		return 1
	}
	return 0
}

// NewAgarwalDP returns the appendix's Agarwal^dp approach.
func NewAgarwalDP() fair.Approach { return &Agarwal{Notion: AgarwalDP} }

// NewAgarwalEO returns the appendix's Agarwal^eo approach.
func NewAgarwalEO() fair.Approach { return &Agarwal{Notion: AgarwalEO} }
