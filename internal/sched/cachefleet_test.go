package sched

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"fairbench/internal/store"
)

// outageHandler is the fault script for the shared cache server: the
// first allow requests pass through to the real store handler, every
// later one answers 500 — a deterministic mid-run outage, in the same
// spirit as FaultTransport's scripted host faults.
type outageHandler struct {
	inner http.Handler
	allow int64
	n     atomic.Int64
}

func (o *outageHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if o.n.Add(1) > o.allow {
		http.Error(w, "injected cache outage", http.StatusInternalServerError)
		return
	}
	o.inner.ServeHTTP(w, r)
}

// TestSchedFleetSharesRemoteCache: the fleet-shares-cache e2e. "Host A"
// (one sched run, real worker subprocesses) computes a grid cold with a
// remote store behind its local cache; every cell write-through lands
// on the shared server. "Host B" (a second run with a different sched
// directory and NO local cache — the remote is all it has) must then
// plan every range as fully cached, never invoke a transport, report
// computed=0, and produce the serial bytes.
func TestSchedFleetSharesRemoteCache(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	serverDisk, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(store.Handler(serverDisk))
	defer srv.Close()

	// Host A: cold compute, local cache tiered over the shared remote.
	_, repA, err := Run(spec, Options{
		Dir:         t.TempDir(),
		Shards:      2,
		CacheDir:    t.TempDir(),
		RemoteStore: srv.URL,
		Hosts:       []Host{{Name: "a", Slots: 2}},
		Transports:  map[string]Transport{"local": workerTransport()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if repA.CellsComputed != 4 || repA.CacheDegraded {
		t.Fatalf("cold run: computed=%d degraded=%v", repA.CellsComputed, repA.CacheDegraded)
	}
	st, err := serverDisk.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 4 {
		t.Fatalf("shared server holds %d cells after the cold run, want 4", st.Entries)
	}

	// Host B: nothing local — a fresh sched directory and only the
	// remote store. The forbidding transport fails the test if any
	// range is ever assigned to a host.
	outB, repB, err := Run(spec, Options{
		Dir:         t.TempDir(),
		Shards:      2,
		RemoteStore: srv.URL,
		Hosts:       []Host{{Name: "b", Slots: 2}},
		Transports:  map[string]Transport{"local": forbidTransport{t}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, outB)) {
		t.Fatal("remote-warm host diverges from serial run")
	}
	if repB.CellsComputed != 0 || repB.CellsCached != 4 {
		t.Fatalf("warm run: computed=%d cached=%d, want 0/4", repB.CellsComputed, repB.CellsCached)
	}
	if len(repB.Skipped) != len(repB.Ranges) {
		t.Fatalf("warm plan assigned ranges: %d skipped of %d", len(repB.Skipped), len(repB.Ranges))
	}
	if repB.Cache.Hits != 4 {
		t.Fatalf("coordinator store counters %+v, want 4 hits", repB.Cache)
	}
}

// TestSchedRemoteOutageDegradesToLocal: the cache server dies after its
// first answered request (a scripted, deterministic outage — the
// coordinator's very first plan probe succeeds, everything after 500s).
// The run must complete on local cache and compute alone, byte-identical
// to serial, with the report marking the degradation rather than any
// error surfacing.
func TestSchedRemoteOutageDegradesToLocal(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	serverDisk, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	outage := &outageHandler{inner: store.Handler(serverDisk), allow: 1}
	srv := httptest.NewServer(outage)
	defer srv.Close()

	out, rep, err := Run(spec, Options{
		Dir:         t.TempDir(),
		Shards:      2,
		CacheDir:    t.TempDir(),
		RemoteStore: srv.URL,
		Hosts:       []Host{{Name: "a", Slots: 2}},
		Transports:  map[string]Transport{"local": workerTransport()},
	})
	if err != nil {
		t.Fatalf("a cache outage must never fail the run: %v", err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("outage-degraded run diverges from serial run")
	}
	if rep.CellsComputed != 4 {
		t.Fatalf("computed=%d, want all 4 (nothing was cached anywhere)", rep.CellsComputed)
	}
	if !rep.CacheDegraded {
		t.Fatal("report does not surface the remote-store degradation")
	}
	if rep.Cache.Errors == 0 {
		t.Fatalf("coordinator counters %+v record no transport errors", rep.Cache)
	}
	// Degraded means local-only: the dead server never learned the cells.
	st, err := serverDisk.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 0 {
		t.Fatalf("server gained %d entries through a scripted outage", st.Entries)
	}
}
