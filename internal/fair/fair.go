// Package fair defines the paper's central abstraction: a fair
// classification approach, characterized by the pipeline stage where its
// fairness-enforcing mechanism applies (pre-, in-, or post-processing,
// Section 3) and the fairness notion(s) it targets (Figure 5). The package
// provides the stage wrappers that turn repairers and prediction adjusters
// into complete approaches, and the fairness-unaware logistic-regression
// baseline every experiment compares against.
package fair

import (
	"fmt"

	"fairbench/internal/classifier"
	"fairbench/internal/dataset"
	"fairbench/internal/rng"
)

// Stage is the pipeline stage where fairness is enforced.
type Stage int

const (
	// StagePre repairs the training data before learning.
	StagePre Stage = iota
	// StageIn modifies the learning procedure itself.
	StageIn
	// StagePost modifies the predictions of a trained classifier.
	StagePost
	// StageNone marks the fairness-unaware baseline.
	StageNone
)

// String returns the paper's name for the stage.
func (s Stage) String() string {
	switch s {
	case StagePre:
		return "pre"
	case StageIn:
		return "in"
	case StagePost:
		return "post"
	default:
		return "none"
	}
}

// Metric names an evaluation fairness metric an approach optimizes for
// (the ↑ arrows of Figure 7).
type Metric string

// The five evaluated fairness metrics (Figure 4).
const (
	MetricDI   Metric = "DI*"
	MetricTPRB Metric = "1-|TPRB|"
	MetricTNRB Metric = "1-|TNRB|"
	MetricID   Metric = "1-ID"
	MetricTE   Metric = "1-|TE|"
)

// Approach is a complete fair classification pipeline: Fit consumes
// training data; Predict labels a test set; PredictOne labels a single
// tuple with an explicit sensitive value (the hook the Individual
// Discrimination metric uses to flip S).
type Approach interface {
	Name() string
	Stage() Stage
	// Targets lists the fairness metrics the approach optimizes for.
	Targets() []Metric
	Fit(train *dataset.Dataset) error
	Predict(test *dataset.Dataset) ([]int, error)
	PredictOne(x []float64, s int) int
}

// Repairer is a pre-processing mechanism: it repairs the training data so
// a downstream classifier learns the target fairness notion.
type Repairer interface {
	RepairName() string
	Repair(train *dataset.Dataset) (*dataset.Dataset, error)
}

// TestTransformer is implemented by repairers that also transform test
// data (Feld and Calmon in the benchmark). The returned slice may be
// scratch storage reused by the transformer's next TransformRow call:
// callers consume or copy it before transforming another row (the
// per-tuple prediction loops do), and must not mutate it.
type TestTransformer interface {
	TransformRow(x []float64, s int) []float64
}

// Baseline is the fairness-unaware logistic regression the paper overlays
// on every plot. The sensitive attribute is part of the feature vector.
//
// Prediction methods reuse a per-instance row buffer, so a Baseline is not
// safe for concurrent prediction on a shared instance; every grid cell
// constructs its own approach (the runner's determinism contract), and
// prediction loops within a cell are sequential.
type Baseline struct {
	Factory  classifier.Factory
	IncludeS bool

	clf    classifier.Classifier
	std    *dataset.Standardizer
	rowBuf []float64
}

// NewBaseline returns the default LR baseline with S included.
func NewBaseline() *Baseline {
	return &Baseline{Factory: func() classifier.Classifier { return classifier.NewLogistic() }, IncludeS: true}
}

// Name implements Approach.
func (b *Baseline) Name() string { return "LR" }

// Stage implements Approach.
func (b *Baseline) Stage() Stage { return StageNone }

// Targets implements Approach: the baseline optimizes no fairness metric.
func (b *Baseline) Targets() []Metric { return nil }

// Fit trains the underlying classifier on standardized features. The
// design matrix comes through StandardizedDesign so that batched grid
// execution shares one materialization across every cell fitting on the
// same training split; the labels and weights are read straight from
// train (standardization never touches them).
func (b *Baseline) Fit(train *dataset.Dataset) error {
	if b.Factory == nil {
		b.Factory = func() classifier.Classifier { return classifier.NewLogistic() }
	}
	std, rows := train.StandardizedDesign(b.IncludeS)
	b.std = std
	b.clf = b.Factory()
	return b.clf.Fit(rows, train.Y, train.Weights)
}

// Predict labels every tuple of test.
func (b *Baseline) Predict(test *dataset.Dataset) ([]int, error) {
	if b.clf == nil {
		return nil, fmt.Errorf("fair: baseline not fitted")
	}
	out := make([]int, test.Len())
	for i := range out {
		out[i] = b.PredictOne(test.X[i], test.S[i])
	}
	return out, nil
}

// featureRow builds the standardized classifier input for (x, s) in the
// instance's scratch buffer — zero allocations per prediction once the
// buffer has grown to row size.
func (b *Baseline) featureRow(x []float64, s int) []float64 {
	row := append(b.rowBuf[:0], x...)
	b.std.ApplyRow(row)
	if b.IncludeS {
		row = append(row, float64(s))
	}
	b.rowBuf = row[:0]
	return row
}

// PredictOne labels a single tuple.
func (b *Baseline) PredictOne(x []float64, s int) int {
	return classifier.Predict(b.clf, b.featureRow(x, s))
}

// Proba returns the baseline's positive probability for one tuple.
func (b *Baseline) Proba(x []float64, s int) float64 {
	return b.clf.PredictProba(b.featureRow(x, s))
}

// PreProcessed wraps a Repairer and a downstream classifier into a
// complete pre-processing approach. Pre-processing is model-agnostic: the
// Factory may build any classifier (Section 4.5 swaps it).
type PreProcessed struct {
	ApproachName string
	Target       []Metric
	Mechanism    Repairer
	Factory      classifier.Factory
	// IncludeS controls whether the downstream model sees S. Approaches
	// like Feld drop it (their repair makes X independent of S).
	IncludeS bool

	clf    classifier.Classifier
	std    *dataset.Standardizer
	rowBuf []float64
}

// Name implements Approach.
func (p *PreProcessed) Name() string { return p.ApproachName }

// Stage implements Approach.
func (p *PreProcessed) Stage() Stage { return StagePre }

// Targets implements Approach.
func (p *PreProcessed) Targets() []Metric { return p.Target }

// Fit repairs the training data and trains the downstream classifier.
func (p *PreProcessed) Fit(train *dataset.Dataset) error {
	if p.Factory == nil {
		p.Factory = func() classifier.Classifier { return classifier.NewLogistic() }
	}
	repaired, err := p.Mechanism.Repair(train)
	if err != nil {
		return fmt.Errorf("%s: repair: %w", p.ApproachName, err)
	}
	p.std = dataset.FitStandardizer(repaired)
	work := repaired.Clone()
	p.std.Apply(work)
	p.clf = p.Factory()
	if err := p.clf.Fit(work.FeatureMatrix(p.IncludeS), work.Y, work.Weights); err != nil {
		return fmt.Errorf("%s: fit: %w", p.ApproachName, err)
	}
	return nil
}

// Predict labels every tuple of test, applying the mechanism's test
// transform when it has one.
func (p *PreProcessed) Predict(test *dataset.Dataset) ([]int, error) {
	if p.clf == nil {
		return nil, fmt.Errorf("%s: not fitted", p.ApproachName)
	}
	out := make([]int, test.Len())
	for i := range out {
		out[i] = p.PredictOne(test.X[i], test.S[i])
	}
	return out, nil
}

// PredictOne labels one tuple.
func (p *PreProcessed) PredictOne(x []float64, s int) int {
	return p.PredictIntervened(x, s, s)
}

// PredictIntervened labels one tuple whose true group is sTrue while the
// classifier is shown sInput as the sensitive value. Group-dependent test
// transforms (Feld, Calmon) always use the true group, so approaches that
// drop S from the features trivially satisfy the ID metric, as the paper
// observes (Section 4.2).
func (p *PreProcessed) PredictIntervened(x []float64, sTrue, sInput int) int {
	row := x
	if t, ok := p.Mechanism.(TestTransformer); ok {
		row = t.TransformRow(x, sTrue)
	}
	// Copy into the instance scratch before standardizing: row may be the
	// transformer's reusable buffer, and x itself must stay untouched.
	row = append(p.rowBuf[:0], row...)
	p.std.ApplyRow(row)
	if p.IncludeS {
		row = append(row, float64(sInput))
	}
	p.rowBuf = row[:0]
	return classifier.Predict(p.clf, row)
}

// Adjuster is a post-processing mechanism: given a trained base model's
// probabilities on labeled data, it fits a group-dependent adjustment of
// predictions.
type Adjuster interface {
	AdjustName() string
	// FitAdjust learns the adjustment from training labels, sensitive
	// values, and base probabilities.
	FitAdjust(train *dataset.Dataset, proba []float64) error
	// AdjustedProba maps a base probability to the adjusted probability of
	// a positive prediction for group s.
	AdjustedProba(p float64, s int) float64
}

// PostProcessed wraps a base classifier and an Adjuster into a complete
// post-processing approach. Randomized adjusters (Hardt, Pleiss) realize
// their mixing probabilities by seeded sampling in Predict; PredictOne
// thresholds the adjusted probability, exposing the deterministic
// group-dependent decision rule to the ID metric.
type PostProcessed struct {
	ApproachName string
	Target       []Metric
	Mechanism    Adjuster
	Factory      classifier.Factory
	IncludeS     bool
	Seed         int64

	base *Baseline
}

// Name implements Approach.
func (p *PostProcessed) Name() string { return p.ApproachName }

// Stage implements Approach.
func (p *PostProcessed) Stage() Stage { return StagePost }

// Targets implements Approach.
func (p *PostProcessed) Targets() []Metric { return p.Target }

// postBaseKey identifies one shareable base fit within a batch: with the
// default LR base (Factory nil), the base model, the held-out part, and
// the probabilities over it are fully determined by (seed, includeS)
// given the training split.
type postBaseKey struct {
	seed     int64
	includeS bool
}

// postBase is the shared artifact of one base fit: the fitted default-LR
// Baseline (taken by value by each consumer), the held-out 30% part, and
// the base's probabilities over it. All three are read-only once built.
type postBase struct {
	base    Baseline
	valPart *dataset.Dataset
	proba   []float64
}

// fitPostBase performs the base-fit half of PostProcessed.Fit — exactly
// the computation every sharing cell would run alone, so the memoized
// result is bit-identical to per-cell fitting.
func fitPostBase(train *dataset.Dataset, includeS bool, seed int64) (*postBase, error) {
	b := &Baseline{
		Factory:  func() classifier.Classifier { return classifier.NewLogistic() },
		IncludeS: includeS,
	}
	fitPart, valPart := train.Split(0.7, rng.New(seed+977))
	if err := b.Fit(fitPart); err != nil {
		return nil, err
	}
	proba := make([]float64, valPart.Len())
	for i := range proba {
		proba[i] = b.Proba(valPart.X[i], valPart.S[i])
	}
	return &postBase{base: *b, valPart: valPart, proba: proba}, nil
}

// Fit trains the base model on 70% of the training data and fits the
// adjuster on the remaining held-out 30%. Fitting the adjustment on data
// the base model has not memorized keeps the derived rates calibrated for
// deployment — with overfitting-prone bases (deep random forests) the
// training-set confusion matrix is near-perfect and would mislead the
// adjuster, which is exactly why post-processing methods fit on holdouts.
//
// Under batched grid execution (train's batch cache armed), cells that
// use the default base share one base fit per (Seed, IncludeS): the
// split, the fitted model, and the held-out probabilities are identical
// across them, so only the adjuster differs per cell. Sharing is keyed
// on Factory == nil because function values have no comparable identity;
// explicit-factory cells always fit their own base.
func (p *PostProcessed) Fit(train *dataset.Dataset) error {
	if bc := train.Batch(); bc != nil && p.Factory == nil {
		v, err := bc.Do(postBaseKey{seed: p.Seed, includeS: p.IncludeS}, func() (any, error) {
			return fitPostBase(train, p.IncludeS, p.Seed)
		})
		if err != nil {
			return fmt.Errorf("%s: base fit: %w", p.ApproachName, err)
		}
		sh := v.(*postBase)
		// Private Baseline copy per cell: the classifier and standardizer
		// are read-only after fitting, but the prediction row buffer is
		// per-instance scratch and must not be shared across cells.
		b := sh.base
		b.rowBuf = nil
		p.base = &b
		if err := p.Mechanism.FitAdjust(sh.valPart, sh.proba); err != nil {
			return fmt.Errorf("%s: adjust fit: %w", p.ApproachName, err)
		}
		return nil
	}
	p.base = &Baseline{Factory: p.Factory, IncludeS: p.IncludeS}
	if p.base.Factory == nil {
		p.base.Factory = func() classifier.Classifier { return classifier.NewLogistic() }
	}
	fitPart, valPart := train.Split(0.7, rng.New(p.Seed+977))
	if err := p.base.Fit(fitPart); err != nil {
		return fmt.Errorf("%s: base fit: %w", p.ApproachName, err)
	}
	proba := make([]float64, valPart.Len())
	for i := range proba {
		proba[i] = p.base.Proba(valPart.X[i], valPart.S[i])
	}
	if err := p.Mechanism.FitAdjust(valPart, proba); err != nil {
		return fmt.Errorf("%s: adjust fit: %w", p.ApproachName, err)
	}
	return nil
}

// Predict labels the test set, sampling randomized adjustments with a
// seeded generator so runs are reproducible.
func (p *PostProcessed) Predict(test *dataset.Dataset) ([]int, error) {
	if p.base == nil {
		return nil, fmt.Errorf("%s: not fitted", p.ApproachName)
	}
	g := rng.New(p.Seed + 1)
	out := make([]int, test.Len())
	for i := range out {
		ap := p.Mechanism.AdjustedProba(p.base.Proba(test.X[i], test.S[i]), test.S[i])
		out[i] = g.Bernoulli(ap)
	}
	return out, nil
}

// PredictOne thresholds the adjusted probability at 0.5.
func (p *PostProcessed) PredictOne(x []float64, s int) int {
	ap := p.Mechanism.AdjustedProba(p.base.Proba(x, s), s)
	if ap >= 0.5 {
		return 1
	}
	return 0
}
