// Package sched schedules one experiment grid across a pool of hosts:
// the multi-host layer above internal/dispatch's single-machine
// coordinator. It reuses the dispatch directory protocol wholesale — the
// same manifest.json (now carrying an explicit range plan), the same
// fingerprinted part-NNN.json envelopes, the same acceptance gate
// (dispatch.ValidatePart) — so a sched directory is resumable by either
// scheduler and its merged output is byte-identical (timing aside) to a
// serial run of the same spec.
//
// What sched adds over dispatch:
//
//   - pluggable transports: work reaches a host through the Transport
//     interface — LocalExec re-execs this binary's worker subcommand,
//     RemoteExec streams the manifest to a worker binary over any
//     command runner (ssh-shaped), and tests inject chaos through the
//     same seam;
//   - per-host concurrency slots and a pool definition (hosts.json);
//   - failure handling: heartbeat/deadline detection declares silent
//     hosts dead, failed attempts retry on other hosts with exponential
//     backoff + deterministic jitter, repeatedly failing hosts are
//     excluded and their ranges reassigned to survivors;
//   - speculative execution: a range running far past the median of
//     completed ranges is re-launched on an idle host; the first
//     attempt whose part validates wins, the loser is cancelled without
//     a host strike (Options.Speculate);
//   - dynamic pool membership: hosts join mid-run and leave gracefully
//     through a PoolSource (a re-watched hosts.json, the serve daemon's
//     admin endpoint, or a programmatic PoolChan);
//   - graceful degradation: with Options.LocalFallback, a run whose
//     whole pool is lost completes in-process on the coordinator,
//     marked Degraded, instead of failing;
//   - cache-aware planning: the shard plan consults the result store at
//     plan time, so fully-cached ranges never reach a host (the
//     coordinator materializes them from the store) and the remaining
//     ranges are balanced by uncached cell count, not raw cell count.
//
// Failure semantics, in one table:
//
//	worker exits non-zero      attempt fails; range retries elsewhere after backoff
//	worker killed (SIGKILL)    same — process death fails the attempt at once
//	transport goes silent      heartbeat lapse: attempt cancelled, range reassigned
//	corrupt/forged part        rejected by the shared validation gate; attempt fails
//	range far past median      speculative duplicate on an idle host; first valid
//	                           part accepted exactly once, loser cancelled unstruck
//	host keeps failing         excluded after MaxHostFailures; its ranges move on
//	host leaves (PoolSource)   no new work; in-flight drains; queue replans around it
//	host joins (PoolSource)    eligible at the next scheduling round
//	every host failed a range  exclusions reset, next round (up to Retries rounds)
//	whole pool lost            LocalFallback: coordinator computes the rest
//	                           in-process, run completes Degraded; else fail resumable
//	ranges still missing       error names them; the directory stays resumable
//
// Every path converges to the same merged bytes or fails resumably;
// nothing is ever merged around. Chaos-test these paths through
// FaultTransport, the supported deterministic fault-injection seam.
package sched

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"fairbench/internal/dispatch"
	"fairbench/internal/experiments"
	"fairbench/internal/rng"
	"fairbench/internal/runner"
	"fairbench/internal/shard"
	"fairbench/internal/store"
)

// Options configures one scheduled run.
type Options struct {
	// Dir is the sched directory (created if missing): a dispatch-layer
	// directory holding manifest.json and part files. Required.
	Dir string
	// Hosts is the execution pool. Empty defaults to one local host
	// whose slot count is the runner parallelism.
	Hosts []Host
	// Shards targets how many work ranges the cache-aware plan produces
	// (the actual count varies with cache fragmentation). Defaults to
	// the pool's total slot count.
	Shards int
	// CacheDir, when set, is the result store consulted at plan time
	// (to skip and balance) and by every worker at cell granularity.
	CacheDir string
	// RemoteStore, when set, is the shared HTTP cache URL layered behind
	// CacheDir (store.OpenBackend): plan-time probes see cells computed
	// by other machines, and every worker writes its cells through to
	// the fleet-wide cache. Recorded in the manifest so workers and
	// resumes inherit it.
	RemoteStore string
	// HeartbeatTimeout is how long an in-flight assignment may go
	// without a transport heartbeat before its host is declared dead
	// and the range reassigned. Default 60s.
	HeartbeatTimeout time.Duration
	// Retries is how many times a range's per-host exclusions are reset
	// after every live host has failed it — full extra rounds over the
	// pool, not per-host attempts. Default 1; negative means no extra
	// rounds (a range every live host has failed once fails for good).
	Retries int
	// MaxHostFailures is the per-host failure budget: how many failed
	// attempts a host may accumulate before it is excluded from the
	// pool for the rest of the run. Default 3.
	MaxHostFailures int
	// Speculate enables speculative execution: a range whose attempt
	// has run longer than SpeculateFactor× the median completed-range
	// runtime (never less than SpeculateFloor) is re-launched on an
	// idle host. The first attempt whose part passes the acceptance
	// gate wins; the loser is cancelled without a host strike.
	Speculate bool
	// SpeculateFactor is the straggler multiple k (default 3).
	SpeculateFactor float64
	// SpeculateFloor is the minimum straggler threshold, clamped to no
	// less than the exec transports' heartbeat interval so speculation
	// never outruns liveness evidence. Default 1s.
	SpeculateFloor time.Duration
	// Backoff is the base delay a failed range waits before
	// reassignment: Backoff×2^(attempts-1) with deterministic jitter in
	// [0.5,1.5) keyed by (seed, range, attempt), capped at BackoffMax.
	// Default 100ms; negative disables backoff (immediate requeue).
	Backoff time.Duration
	// BackoffMax caps the exponential backoff delay. Default 5s.
	BackoffMax time.Duration
	// LocalFallback is the terminal graceful-degradation path: when
	// ranges remain but every pool member is excluded or departed, the
	// coordinator computes the leftovers in-process instead of failing
	// the run. The run completes — at local speed — and the Report
	// marks it Degraded.
	LocalFallback bool
	// PoolSource, when non-nil, feeds dynamic membership: hosts join
	// mid-run (picked up at the next scheduling round) or leave
	// gracefully (in-flight work drains, queued work replans onto the
	// survivors). See PoolChan and WatchHosts.
	PoolSource PoolSource
	// Transports maps transport names to implementations, overlaying
	// the built-ins ("local", "remote").
	Transports map[string]Transport
	// OnEvent, when non-nil, observes scheduling events as they happen:
	// transport heartbeats, range completions and failures, and host
	// exclusions. It is the seam a serving layer uses to export live
	// per-host health without polling. Callbacks may arrive concurrently
	// (heartbeats come from transport goroutines) and must return
	// quickly — they run on the scheduler's hot paths.
	OnEvent func(Event)
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// EventType classifies one scheduling event.
type EventType string

// The scheduling event kinds OnEvent observes.
const (
	// EventHeartbeat: the host's transport reported liveness evidence.
	EventHeartbeat EventType = "heartbeat"
	// EventCompleted: the host delivered a validated part for the range.
	EventCompleted EventType = "completed"
	// EventFailed: the host's attempt at the range failed (Err says why).
	EventFailed EventType = "failed"
	// EventExcluded: the host left the pool (repeated failures or a
	// heartbeat lapse); its ranges move to survivors.
	EventExcluded EventType = "excluded"
	// EventSpeculated: a straggling range got a duplicate attempt on an
	// idle host; the first valid part wins, the loser is cancelled
	// without a strike.
	EventSpeculated EventType = "speculated"
	// EventJoined: a host joined the pool mid-run (Options.PoolSource).
	EventJoined EventType = "joined"
	// EventDeparted: a host left the pool gracefully (Options.PoolSource).
	EventDeparted EventType = "departed"
)

// Event is one observed scheduling transition (see Options.OnEvent).
type Event struct {
	Type EventType
	// Host names the pool member the event concerns.
	Host string
	// Range is the plan position concerned (-1 when not range-scoped,
	// e.g. exclusions).
	Range int
	// Err carries the failure message for EventFailed/EventExcluded.
	Err string
}

// Report describes what a scheduled run actually did.
type Report struct {
	Fingerprint string
	// Ranges is the plan the run executed (from the manifest).
	Ranges []shard.Range
	// Uncached[i] is how many cells of Ranges[i] the result store could
	// not serve when this invocation started. Ranges whose envelope was
	// reused report 0 — their cells are already delivered, so nothing is
	// owed and the store is not re-probed for them.
	Uncached []int
	// Reused lists plan positions whose envelope already existed in the
	// directory and validated.
	Reused []int
	// Skipped lists fully-cached positions the coordinator materialized
	// from the store without assigning any host.
	Skipped []int
	// Completed maps each host to the positions it delivered.
	Completed map[string][]int
	// Attempts maps each executed position to how many placements it
	// took across the pool.
	Attempts map[int]int
	// Excluded lists hosts declared dead or repeatedly failing.
	Excluded []string
	// Speculated lists positions that received a speculative duplicate
	// attempt (the duplicate may have won or lost the race).
	Speculated []int
	// Joined and Departed record pool membership changes observed
	// mid-run through Options.PoolSource.
	Joined, Departed []string
	// Fallback lists positions the coordinator computed in-process
	// after the whole pool was lost (Options.LocalFallback). Degraded
	// marks a run that completed only because of that fallback.
	Fallback []int
	Degraded bool
	// Failed lists positions still missing when the run gave up.
	Failed []int
	// CellsComputed and CellsCached split the grid's cells by who did
	// the work, summed over all envelopes.
	CellsComputed, CellsCached int
	// Cache is the coordinator's result-store counters for this run —
	// plan-time probes, coordinator-served ranges, and local fallback
	// all pass through them. Worker subprocesses keep their own (their
	// rejects trigger their own recomputes); a nonzero Rejected here
	// means the coordinator itself saw cache bytes that failed
	// verification.
	Cache store.Counters
	// CacheDegraded marks that the tiered store's remote side was
	// declared down mid-run: the run completed on local cache and
	// compute alone, byte-identical, but its cells never reached the
	// fleet-wide cache.
	CacheDegraded bool
}

// Run schedules the spec's grid across the pool and merges the completed
// envelope set into driver-native output, byte-identical (timing aside)
// to a serial run. An existing directory for the same grid is resumed:
// valid envelopes are reused and only missing ranges execute. On failure
// the error names the ranges still missing and the directory remains
// resumable — by Run, Resume, or dispatch.Resume.
func Run(spec experiments.Spec, opts Options) (*experiments.Output, *Report, error) {
	return RunContext(context.Background(), spec, opts)
}

// RunContext is Run under a cancellation context. Once ctx is done no new
// assignment is placed, every in-flight attempt is cancelled (transports
// kill their workers), and the call returns an error wrapping ctx.Err().
// Delivered parts stay on disk and workers checkpoint through the result
// cache, so a cancelled run resumes exactly like a crashed one.
func RunContext(ctx context.Context, spec experiments.Spec, opts Options) (*experiments.Output, *Report, error) {
	ns, err := spec.Normalize()
	if err != nil {
		return nil, nil, err
	}
	return run(ctx, ns, opts, false)
}

// Resume continues the run recorded in dir: the spec, plan, and cache
// directory all come from the manifest.
func Resume(dir string, opts Options) (*experiments.Output, *Report, error) {
	return ResumeContext(context.Background(), dir, opts)
}

// ResumeContext is Resume under a cancellation context (see RunContext
// for the cancellation semantics).
func ResumeContext(ctx context.Context, dir string, opts Options) (*experiments.Output, *Report, error) {
	m, err := dispatch.ReadManifest(filepath.Join(dir, dispatch.ManifestName))
	if err != nil {
		return nil, nil, fmt.Errorf("sched: %s: %w — nothing to resume (run sched first)", dir, err)
	}
	opts.Dir, opts.CacheDir, opts.RemoteStore = dir, m.CacheDir, m.RemoteStore
	return run(ctx, m.Spec, opts, true)
}

// run is the shared plan → scan → serve/schedule → merge loop.
func run(ctx context.Context, ns experiments.Spec, opts Options, resuming bool) (*experiments.Output, *Report, error) {
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}
	pool, transports, err := buildPool(&opts)
	if err != nil {
		return nil, nil, err
	}
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("sched: no sched directory")
	}
	st, err := store.OpenBackend(opts.CacheDir, opts.RemoteStore)
	if err != nil {
		return nil, nil, err
	}

	m, manifestPath, ranges, uncached, plan, st, err := prepare(ns, &opts, st, resuming)
	if err != nil {
		return nil, nil, err
	}
	manifestBytes, err := os.ReadFile(manifestPath)
	if err != nil {
		return nil, nil, fmt.Errorf("sched: %w", err)
	}
	rep := &Report{
		Fingerprint: m.Fingerprint,
		Ranges:      ranges,
		Completed:   map[string][]int{},
		Attempts:    map[int]int{},
	}
	// Snapshot the coordinator's store view on every exit path: counters
	// (including verification rejects) and, for tiered stores, whether
	// the remote side was declared down mid-run.
	defer func() {
		if st == nil {
			return
		}
		rep.Cache = st.Counters()
		if td, ok := st.(*store.TieredStore); ok && td.Degraded() {
			rep.CacheDegraded = true
		}
	}()

	// Scan: reuse every envelope that still validates; anything else is
	// moved aside and its range re-enters the plan.
	var pending []int
	for i := range ranges {
		path := filepath.Join(opts.Dir, dispatch.PartName(i))
		switch err := dispatch.ValidatePart(path, m, i); {
		case err == nil:
			rep.Reused = append(rep.Reused, i)
		case errors.Is(err, fs.ErrNotExist):
			pending = append(pending, i)
		default:
			bad := path + ".invalid"
			os.Rename(path, bad)
			logf("sched: range %d: discarding invalid envelope (%v), moved to %s", i, err, bad)
			pending = append(pending, i)
		}
	}
	// An adopted manifest's uncached counts are computed only now, and
	// only for pending ranges: re-entering a completed directory must
	// not pay a verified store probe per cell of the whole grid. The
	// cache may have grown since the manifest was written, so skip
	// decisions always reflect the store's current state.
	if uncached == nil {
		uncached = make([]int, len(ranges))
		for _, i := range pending {
			uncached[i] = experiments.UncachedInRange(m.Fingerprint, m.Spec.Seed, ranges[i], st)
		}
	}
	rep.Uncached = uncached
	totalSlots, totalCells := 0, 0
	for _, h := range pool {
		totalSlots += h.Slots
	}
	if len(ranges) > 0 {
		totalCells = ranges[len(ranges)-1].End
	}
	logf("sched: %d range(s) over %d cells (%d uncached) across %d host(s), %d slot(s)",
		len(ranges), totalCells, sum(uncached), len(pool), totalSlots)

	// Serve: fully-cached pending ranges never reach a host — the
	// coordinator materializes them straight from the result store
	// (every cell a verified hit, so the envelope reports computed=0).
	var work []int
	for _, i := range pending {
		if err := ctx.Err(); err != nil {
			return nil, rep, fmt.Errorf("sched: cancelled — re-run sched with the same -dir to pick up: %w", err)
		}
		if uncached[i] > 0 {
			work = append(work, i)
			continue
		}
		// Fresh plans carry the payloads the cache-aware probe verified,
		// so serving needs no second store pass; adopted manifests (nil
		// plan) and entries gone bad since probing take the store path.
		env, ok := plan.ServeEnvelope(i)
		if !ok {
			if env, err = experiments.RunShardPlanned(m.Spec, ranges, i, st); err != nil {
				return nil, rep, err
			}
		}
		data, err := env.Encode()
		if err != nil {
			return nil, rep, err
		}
		if err := store.WriteFileAtomic(filepath.Join(opts.Dir, dispatch.PartName(i)), data); err != nil {
			return nil, rep, fmt.Errorf("sched: %w", err)
		}
		rep.Skipped = append(rep.Skipped, i)
		logf("sched: range %d fully cached (%d cells) — served by the coordinator", i, len(env.Indices))
	}
	logf("sched: %d reused, %d served from cache, %d assigned to hosts",
		len(rep.Reused), len(rep.Skipped), len(work))

	// Schedule: place work ranges on hosts until everything is delivered
	// or nothing eligible remains. The pool comes back because joins may
	// have grown it mid-run.
	if len(work) > 0 {
		pool = schedule(ctx, pool, transports, work, m, manifestPath, manifestBytes, opts, rep, logf)
	}
	for name := range rep.Completed {
		sort.Ints(rep.Completed[name])
	}
	// Terminal graceful degradation: when ranges remain but no pool
	// member can take work any more, the coordinator finishes the job
	// itself — in-process, at local speed — rather than failing a run
	// that one machine can still complete. The envelopes are computed by
	// the same planned-shard path workers use, so the merged bytes stay
	// identical; only the Report records who did the work.
	if len(rep.Failed) > 0 && opts.LocalFallback && ctx.Err() == nil && poolDead(pool) {
		sort.Ints(rep.Failed)
		logf("sched: every host is gone — completing %d range(s) in-process (degraded)", len(rep.Failed))
		for _, i := range rep.Failed {
			env, err := experiments.RunShardPlanned(m.Spec, ranges, i, st)
			if err != nil {
				return nil, rep, err
			}
			data, err := env.Encode()
			if err != nil {
				return nil, rep, err
			}
			if err := store.WriteFileAtomic(filepath.Join(opts.Dir, dispatch.PartName(i)), data); err != nil {
				return nil, rep, fmt.Errorf("sched: %w", err)
			}
			rep.Fallback = append(rep.Fallback, i)
			logf("sched: range %d completed by the coordinator's local fallback", i)
		}
		rep.Failed = nil
		rep.Degraded = true
	}
	if len(rep.Failed) > 0 {
		sort.Ints(rep.Failed)
		var idxs []string
		for _, i := range rep.Failed {
			idxs = append(idxs, strconv.Itoa(i))
		}
		// A cancelled run reports the cancellation itself (errors.Is-able)
		// rather than a scheduling failure it never had.
		if err := ctx.Err(); err != nil {
			return nil, rep, fmt.Errorf("sched: cancelled with range(s) %s still missing — %d of %d range(s) completed; re-run sched with the same -dir to pick up: %w",
				strings.Join(idxs, ", "), len(ranges)-len(rep.Failed), len(ranges), err)
		}
		return nil, rep, fmt.Errorf("sched: range(s) %s still missing — %d of %d range(s) completed; re-run sched with the same -dir (or `fairbench resume -dir %s`) to pick up from them",
			strings.Join(idxs, ", "), len(ranges)-len(rep.Failed), len(ranges), opts.Dir)
	}

	// Merge: every part re-reads through the named path so residual
	// inconsistency is attributed to its file.
	envs := make([]*shard.Envelope, len(ranges))
	names := make([]string, len(ranges))
	for i := range ranges {
		path := filepath.Join(opts.Dir, dispatch.PartName(i))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, rep, fmt.Errorf("sched: %w", err)
		}
		if envs[i], err = shard.Decode(data); err != nil {
			return nil, rep, fmt.Errorf("sched: %s: %w", path, err)
		}
		names[i] = path
		rep.CellsCached += len(envs[i].Cached)
		rep.CellsComputed += len(envs[i].Indices) - len(envs[i].Cached)
	}
	out, err := experiments.MergeShardsNamed(envs, names)
	if err != nil {
		return nil, rep, err
	}
	logf("sched: merged %d range(s) (cells computed=%d cached=%d)",
		len(ranges), rep.CellsComputed, rep.CellsCached)
	return out, rep, nil
}

// hostState is one pool member's scheduling state.
type hostState struct {
	Host
	transport Transport
	inflight  int
	failures  int
	excluded  bool
	// departed marks a graceful PoolSource leave: no new assignments,
	// in-flight attempts drain, no strikes involved.
	departed bool
}

// poolDead reports whether no pool member can accept work any more.
func poolDead(pool []*hostState) bool {
	for _, hs := range pool {
		if !hs.excluded && !hs.departed {
			return false
		}
	}
	return true
}

// buildPool fills option defaults and resolves each host's transport,
// returning the pool and the full transport registry (joining hosts
// resolve against it mid-run).
func buildPool(opts *Options) ([]*hostState, map[string]Transport, error) {
	if len(opts.Hosts) == 0 {
		opts.Hosts = []Host{{Name: "local", Slots: runner.Parallelism()}}
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 60 * time.Second
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 1
	}
	if opts.MaxHostFailures <= 0 {
		opts.MaxHostFailures = 3
	}
	if opts.SpeculateFactor <= 0 {
		opts.SpeculateFactor = 3
	}
	if opts.SpeculateFloor <= 0 {
		opts.SpeculateFloor = time.Second
	}
	if opts.SpeculateFloor < heartbeatEvery {
		opts.SpeculateFloor = heartbeatEvery
	}
	switch {
	case opts.Backoff == 0:
		opts.Backoff = 100 * time.Millisecond
	case opts.Backoff < 0:
		opts.Backoff = 0
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 5 * time.Second
	}
	if opts.BackoffMax < opts.Backoff {
		opts.BackoffMax = opts.Backoff
	}
	transports := map[string]Transport{"local": &LocalExec{}, "remote": &RemoteExec{}}
	for name, t := range opts.Transports {
		transports[name] = t
	}
	seen := map[string]bool{}
	pool := make([]*hostState, len(opts.Hosts))
	for i, h := range opts.Hosts {
		if h.Name == "" {
			return nil, nil, fmt.Errorf("sched: host %d has no name", i)
		}
		if seen[h.Name] {
			return nil, nil, fmt.Errorf("sched: duplicate host name %q", h.Name)
		}
		seen[h.Name] = true
		if h.Slots <= 0 {
			h.Slots = 1
		}
		key := h.Transport
		if key == "" {
			key = "local"
		}
		tr, ok := transports[key]
		if !ok {
			return nil, nil, fmt.Errorf("sched: host %s names unknown transport %q", h.Name, key)
		}
		pool[i] = &hostState{Host: h, transport: tr}
	}
	if opts.Shards <= 0 {
		for _, h := range pool {
			opts.Shards += h.Slots
		}
	}
	return pool, transports, nil
}

// prepare creates the manifest for a fresh directory — planning
// cache-aware against the store — or adopts an existing one, keeping its
// recorded plan so resumes and late workers agree on the boundaries the
// original run chose. Either way the current build must materialize the
// manifest's fingerprint. The returned store is the run's effective
// result cache: adopting a manifest adopts its cache directory too, so a
// re-run that omitted the cache option still plans (and serves) against
// the cache the directory was scheduled with.
// A fresh directory's plan also rides back whole (nil when adopting an
// existing manifest): it carries the payloads the cache-aware probe
// already verified, letting the serve step materialize fully-cached
// ranges without a second pass over the store.
func prepare(ns experiments.Spec, opts *Options, st store.Backend, resuming bool) (*dispatch.Manifest, string, []shard.Range, []int, *experiments.ShardPlan, store.Backend, error) {
	fail := func(err error) (*dispatch.Manifest, string, []shard.Range, []int, *experiments.ShardPlan, store.Backend, error) {
		return nil, "", nil, nil, nil, nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return fail(fmt.Errorf("sched: %w", err))
	}
	manifestPath := filepath.Join(opts.Dir, dispatch.ManifestName)
	existing, err := dispatch.ReadManifest(manifestPath)
	switch {
	case err == nil:
		g, err := experiments.Open(existing.Spec)
		if err != nil {
			return fail(err)
		}
		fp, err := g.Fingerprint()
		if err != nil {
			return fail(err)
		}
		if fp != existing.Fingerprint {
			return fail(fmt.Errorf("sched: manifest fingerprint %.12s… but this build materializes %.12s… — grid definition drift; schedule into a fresh directory",
				existing.Fingerprint, fp))
		}
		if !resuming {
			want, err := experiments.Open(ns)
			if err != nil {
				return fail(err)
			}
			wfp, err := want.Fingerprint()
			if err != nil {
				return fail(err)
			}
			if wfp != existing.Fingerprint {
				return fail(fmt.Errorf("sched: %s already holds a different run (fingerprint %.12s…); use a fresh directory or resume that run",
					opts.Dir, existing.Fingerprint))
			}
			if opts.CacheDir != "" && opts.CacheDir != existing.CacheDir {
				return fail(fmt.Errorf("sched: %s was scheduled with cache directory %q; re-scheduling cannot change it to %q — use a fresh directory",
					opts.Dir, existing.CacheDir, opts.CacheDir))
			}
			if opts.RemoteStore != "" && opts.RemoteStore != existing.RemoteStore {
				return fail(fmt.Errorf("sched: %s was scheduled with remote store %q; re-scheduling cannot change it to %q — use a fresh directory",
					opts.Dir, existing.RemoteStore, opts.RemoteStore))
			}
		}
		adopted := opts.CacheDir != existing.CacheDir || opts.RemoteStore != existing.RemoteStore
		opts.CacheDir, opts.RemoteStore = existing.CacheDir, existing.RemoteStore
		if st == nil || adopted {
			if st, err = store.OpenBackend(existing.CacheDir, existing.RemoteStore); err != nil {
				return fail(err)
			}
		}
		ranges := existing.Ranges
		if len(ranges) == 0 {
			// A plain dispatch manifest: its workers used the uniform
			// aligned split, so the scheduler must too.
			if ranges, err = experiments.PlanShards(existing.Spec, existing.Shards); err != nil {
				return fail(err)
			}
		}
		// Uncached counts are left nil: run() computes them after the
		// part scan, for pending ranges only.
		return existing, manifestPath, ranges, nil, nil, st, nil
	case errors.Is(err, fs.ErrNotExist):
		if resuming {
			return fail(fmt.Errorf("sched: %s: %w — nothing to resume", opts.Dir, err))
		}
		plan, err := experiments.PlanShardsCacheAware(ns, opts.Shards, st)
		if err != nil {
			return fail(err)
		}
		m := &dispatch.Manifest{
			Version:     dispatch.ManifestVersion,
			Spec:        plan.Spec,
			Shards:      len(plan.Ranges),
			Fingerprint: plan.Fingerprint,
			CacheDir:    opts.CacheDir,
			RemoteStore: opts.RemoteStore,
			Ranges:      plan.Ranges,
		}
		if err := m.Write(manifestPath); err != nil {
			return fail(err)
		}
		return m, manifestPath, plan.Ranges, plan.Uncached, plan, st, nil
	default:
		return fail(err)
	}
}

// rangeState is one work range's scheduling state.
type rangeState struct {
	idx      int
	attempts int
	rounds   int
	excluded map[string]bool
	lastErr  error
	// inflight counts live attempts — more than one while a speculative
	// duplicate races the original.
	inflight int
	// done marks the exactly-once acceptance: the first attempt whose
	// part validated was renamed into place; everything after is a loser.
	done bool
	// failed guards rep.Failed against duplicate entries when several
	// attempts of one range drain during cancellation.
	failed bool
	// notBefore is the backoff gate: the range is not reassigned before
	// this instant.
	notBefore time.Time
	// speculated remembers that this range already counted toward
	// rep.Speculated.
	speculated bool
}

// flight is one in-flight assignment.
type flight struct {
	id          int
	host        *hostState
	rng         *rangeState
	lastBeat    atomic.Int64
	cancel      context.CancelFunc
	started     time.Time
	outTmp      string
	speculative bool
	// abandoned marks a flight the scheduler cancelled itself (heartbeat
	// lapse, speculation loss): its eventual report is reaped, never
	// acted on.
	abandoned bool
	// released guards the one-time return of the flight's host slot and
	// range inflight count.
	released bool
}

type doneEvent struct {
	id  int
	err error
	// outTmp is the surviving attempt file on success; empty after a
	// failure (the flight goroutine already removed it).
	outTmp string
}

// schedule places the work ranges on the pool and drives them to
// completion, reassigning around failed attempts (after exponential
// backoff with deterministic jitter), dead heartbeats, speculation
// races, and membership changes. Failures that exhaust every option
// land in rep.Failed. A done ctx drains the loop: queued ranges fail
// immediately (resumable) and in-flight attempts are cancelled.
//
// The loop returns only once every launched transport goroutine has
// reported — abandoned attempts (heartbeat lapses, speculation losers)
// are cancelled and then reaped, never leaked past the run. It returns
// the final pool, which joins may have grown mid-run.
func schedule(ctx context.Context, pool []*hostState, transports map[string]Transport, work []int,
	m *dispatch.Manifest, manifestPath string, manifestBytes []byte, opts Options, rep *Report,
	logf func(string, ...any)) []*hostState {
	queue := make([]*rangeState, len(work))
	for i, idx := range work {
		queue[i] = &rangeState{idx: idx, excluded: map[string]bool{}}
	}
	// flights holds every launched-but-unreported attempt, including
	// abandoned ones awaiting their reap; the loop exits only when it is
	// empty, so sends below always find a receiver eventually.
	events := make(chan doneEvent, 64)
	flights := map[int]*flight{}
	nextID := 0
	// durations collects accepted-attempt runtimes — the basis of the
	// straggler estimate (median × SpeculateFactor).
	var durations []time.Duration
	emit := func(ev Event) {
		if opts.OnEvent != nil {
			opts.OnEvent(ev)
		}
	}

	var poolCh <-chan PoolUpdate
	if opts.PoolSource != nil {
		ch, unsubscribe := opts.PoolSource.Subscribe()
		defer unsubscribe()
		poolCh = ch
	}

	checkEvery := opts.HeartbeatTimeout / 4
	if checkEvery < 5*time.Millisecond {
		checkEvery = 5 * time.Millisecond
	}
	ticker := time.NewTicker(checkEvery)
	defer ticker.Stop()

	live := func(hs *hostState) bool { return !hs.excluded && !hs.departed }
	eligible := func(pr *rangeState) bool {
		for _, hs := range pool {
			if live(hs) && !pr.excluded[hs.Name] {
				return true
			}
		}
		return false
	}
	pickHost := func(pr *rangeState, not *hostState) *hostState {
		var best *hostState
		for _, hs := range pool {
			if !live(hs) || hs == not || pr.excluded[hs.Name] || hs.inflight >= hs.Slots {
				continue
			}
			if best == nil || hs.Slots-hs.inflight > best.Slots-best.inflight {
				best = hs
			}
		}
		return best
	}
	release := func(fl *flight) {
		if !fl.released {
			fl.released = true
			fl.host.inflight--
			fl.rng.inflight--
		}
	}
	abandon := func(fl *flight) {
		if !fl.abandoned {
			fl.abandoned = true
			fl.cancel()
			release(fl)
		}
	}
	backoffUntil := func(pr *rangeState) time.Time {
		if opts.Backoff <= 0 {
			return time.Time{}
		}
		shift := pr.attempts - 1
		if shift > 20 {
			shift = 20
		}
		d := opts.Backoff << uint(shift)
		if d <= 0 || d > opts.BackoffMax {
			d = opts.BackoffMax
		}
		// Deterministic jitter in [0.5,1.5), keyed by (seed, range,
		// attempt): identical runs replay identical retry schedules, but
		// ranges failing together don't thunder back together.
		j := rng.Derive(m.Spec.Seed, int64(pr.idx)<<20+int64(pr.attempts)).Float64()
		return time.Now().Add(time.Duration(float64(d) * (0.5 + j)))
	}
	finalFail := func(pr *rangeState) {
		if !pr.failed {
			pr.failed = true
			rep.Failed = append(rep.Failed, pr.idx)
			rep.Attempts[pr.idx] = pr.attempts
		}
	}
	fail := func(hs *hostState, pr *rangeState, err error) {
		hs.failures++
		pr.excluded[hs.Name] = true
		pr.lastErr = err
		logf("sched: host %s: range %d failed: %v", hs.Name, pr.idx, err)
		emit(Event{Type: EventFailed, Host: hs.Name, Range: pr.idx, Err: err.Error()})
		if hs.failures >= opts.MaxHostFailures && !hs.excluded {
			hs.excluded = true
			rep.Excluded = append(rep.Excluded, hs.Name)
			logf("sched: excluding host %s after %d failure(s); reassigning its work to survivors", hs.Name, hs.failures)
			emit(Event{Type: EventExcluded, Host: hs.Name, Range: -1,
				Err: fmt.Sprintf("%d failed attempt(s)", hs.failures)})
		}
		if pr.inflight > 0 {
			// A speculative sibling is still racing: the range is not
			// requeued — the survivor decides its fate.
			return
		}
		pr.notBefore = backoffUntil(pr)
		queue = append(queue, pr)
	}
	launch := func(hs *hostState, pr *rangeState, speculative bool) {
		id := nextID
		nextID++
		flctx, cancel := context.WithCancel(ctx)
		fl := &flight{id: id, host: hs, rng: pr, cancel: cancel, started: time.Now(), speculative: speculative}
		fl.lastBeat.Store(fl.started.UnixNano())
		flights[id] = fl
		hs.inflight++
		pr.inflight++
		pr.attempts++
		partPath := filepath.Join(opts.Dir, dispatch.PartName(pr.idx))
		fl.outTmp = fmt.Sprintf("%s.attempt-%d", partPath, id)
		if speculative {
			if !pr.speculated {
				pr.speculated = true
				rep.Speculated = append(rep.Speculated, pr.idx)
			}
			emit(Event{Type: EventSpeculated, Host: hs.Name, Range: pr.idx})
		}
		suffix := ""
		if speculative {
			suffix = ", speculative"
		}
		logf("sched: range %d → host %s (attempt %d%s)", pr.idx, hs.Name, pr.attempts, suffix)
		outTmp := fl.outTmp
		go func() {
			defer cancel()
			err := hs.transport.Run(flctx, hs.Host, Assignment{
				ManifestPath: manifestPath, Manifest: manifestBytes, Range: pr.idx, OutPath: outTmp,
			}, func() {
				fl.lastBeat.Store(time.Now().UnixNano())
				emit(Event{Type: EventHeartbeat, Host: hs.Name, Range: pr.idx})
			})
			if err == nil && flctx.Err() != nil {
				// The scheduler abandoned this attempt (heartbeat lapse,
				// speculation loss) and may already have accepted — or
				// merged — the range; a zombie's late success must not
				// touch the part.
				err = flctx.Err()
			}
			if err != nil {
				os.Remove(outTmp)
				events <- doneEvent{id: id, err: err}
				return
			}
			// Acceptance is NOT decided here: the event loop validates and
			// renames exactly one attempt per range, so racing winners
			// cannot both promote their files.
			events <- doneEvent{id: id, outTmp: outTmp}
		}()
	}
	maybeSpeculate := func() {
		if !opts.Speculate || len(durations) == 0 {
			return
		}
		threshold := time.Duration(opts.SpeculateFactor * float64(median(durations)))
		if threshold < opts.SpeculateFloor {
			threshold = opts.SpeculateFloor
		}
		now := time.Now()
		for _, fl := range flights {
			if fl.abandoned || fl.rng.done || fl.rng.inflight != 1 || now.Sub(fl.started) < threshold {
				continue
			}
			hs := pickHost(fl.rng, fl.host)
			if hs == nil {
				continue
			}
			logf("sched: range %d on host %s is a straggler (%v > %v) — speculating on %s",
				fl.rng.idx, fl.host.Name, now.Sub(fl.started).Round(time.Millisecond), threshold.Round(time.Millisecond), hs.Name)
			launch(hs, fl.rng, true)
		}
	}
	applyPoolUpdate := func(up PoolUpdate) {
		for _, name := range up.Leave {
			for _, hs := range pool {
				if hs.Name != name || hs.departed {
					continue
				}
				hs.departed = true
				rep.Departed = append(rep.Departed, name)
				logf("sched: host %s left the pool: no new assignments, %d in-flight attempt(s) drain", name, hs.inflight)
				emit(Event{Type: EventDeparted, Host: name, Range: -1})
			}
		}
		for _, h := range up.Join {
			if h.Name == "" {
				logf("sched: ignoring joining host with no name")
				continue
			}
			if h.Slots <= 0 {
				h.Slots = 1
			}
			key := h.Transport
			if key == "" {
				key = "local"
			}
			tr, ok := transports[key]
			if !ok {
				logf("sched: ignoring joining host %s: unknown transport %q", h.Name, key)
				continue
			}
			rejoined := false
			for _, hs := range pool {
				if hs.Name != h.Name {
					continue
				}
				// An explicit re-add is an operator's vote of confidence:
				// refresh the definition and clear strikes, exclusion, and
				// departure so the host earns work again.
				hs.Host, hs.transport = h, tr
				hs.departed, hs.excluded, hs.failures = false, false, 0
				rejoined = true
			}
			if !rejoined {
				pool = append(pool, &hostState{Host: h, transport: tr})
			}
			rep.Joined = append(rep.Joined, h.Name)
			logf("sched: host %s joined the pool (%d slot(s), transport %s)", h.Name, h.Slots, key)
			emit(Event{Type: EventJoined, Host: h.Name, Range: -1})
		}
	}

	ctxDone := ctx.Done()
	for {
		// Assign every queued range an eligible host with a free slot;
		// ranges every live host has failed get their exclusions reset
		// (one round) until the retry budget runs out; ranges inside
		// their backoff window wait for the ticker. A done ctx stops
		// launching: queued ranges drain straight to Failed (the
		// directory stays resumable) while in-flight attempts wind down.
		for progress := true; progress; {
			progress = false
			var still []*rangeState
			for _, pr := range queue {
				if ctx.Err() != nil {
					finalFail(pr)
					continue
				}
				if !eligible(pr) {
					if pr.rounds < opts.Retries {
						pr.rounds++
						pr.excluded = map[string]bool{}
						logf("sched: range %d: every live host has failed it; retry round %d/%d", pr.idx, pr.rounds, opts.Retries)
						progress = true
						still = append(still, pr)
					} else {
						finalFail(pr)
						logf("sched: range %d failed for good after %d attempt(s): %v", pr.idx, pr.attempts, pr.lastErr)
					}
					continue
				}
				if time.Now().Before(pr.notBefore) {
					still = append(still, pr)
					continue
				}
				if hs := pickHost(pr, nil); hs != nil {
					launch(hs, pr, false)
					progress = true
					continue
				}
				still = append(still, pr)
			}
			queue = still
		}
		// A range inside its backoff window needs a wake-up of its own —
		// the heartbeat ticker can be many seconds coarse.
		var wake <-chan time.Time
		var wakeTimer *time.Timer
		var earliest time.Time
		for _, pr := range queue {
			if eligible(pr) && time.Now().Before(pr.notBefore) {
				if earliest.IsZero() || pr.notBefore.Before(earliest) {
					earliest = pr.notBefore
				}
			}
		}
		if len(flights) == 0 && earliest.IsZero() {
			// Nothing running, nothing waiting out a backoff, nothing
			// assignable: the pool is dead for whatever remains.
			for _, pr := range queue {
				finalFail(pr)
			}
			return pool
		}
		if !earliest.IsZero() {
			d := time.Until(earliest)
			if d < time.Millisecond {
				d = time.Millisecond
			}
			wakeTimer = time.NewTimer(d)
			wake = wakeTimer.C
		}
		select {
		case ev := <-events:
			fl, ok := flights[ev.id]
			if !ok {
				break
			}
			delete(flights, ev.id)
			wasAbandoned := fl.abandoned
			release(fl)
			pr, hs := fl.rng, fl.host
			switch {
			case pr.done || wasAbandoned:
				// A speculation loser or reaped zombie: discard whatever
				// it produced. Losing a race is not a failure — no strike.
				if ev.outTmp != "" {
					os.Remove(ev.outTmp)
				}
			case ev.err == nil:
				// Exactly-once acceptance: the event loop is the only
				// place an attempt file becomes the part, so a racing
				// sibling can never overwrite a decided range.
				partPath := filepath.Join(opts.Dir, dispatch.PartName(pr.idx))
				if aerr := dispatch.AcceptPart(ev.outTmp, partPath, m, pr.idx); aerr != nil {
					os.Remove(ev.outTmp)
					if ctx.Err() != nil {
						pr.lastErr = aerr
						finalFail(pr)
						break
					}
					fail(hs, pr, fmt.Errorf("host %s produced an invalid part: %w", hs.Name, aerr))
					break
				}
				pr.done = true
				durations = append(durations, time.Since(fl.started))
				rep.Completed[hs.Name] = append(rep.Completed[hs.Name], pr.idx)
				rep.Attempts[pr.idx] = pr.attempts
				if fl.speculative {
					logf("sched: range %d: speculative attempt on host %s won the race", pr.idx, hs.Name)
				}
				emit(Event{Type: EventCompleted, Host: hs.Name, Range: pr.idx})
				for _, sib := range flights {
					if sib.rng == pr && !sib.abandoned {
						logf("sched: range %d: cancelling losing attempt on host %s (no strike)", pr.idx, sib.host.Name)
						abandon(sib)
					}
				}
			case ctx.Err() != nil:
				// Cancelled, not a host's fault: no strike, no exclusion —
				// record the range as missing and drain.
				pr.lastErr = ev.err
				finalFail(pr)
			default:
				fail(hs, pr, ev.err)
			}
		case <-wake:
			// A backoff window closed: fall through to the assign loop.
		case up := <-poolCh:
			applyPoolUpdate(up)
		case <-ctxDone:
			ctxDone = nil
			for _, fl := range flights {
				fl.cancel()
			}
		case <-ticker.C:
			deadline := time.Now().Add(-opts.HeartbeatTimeout).UnixNano()
			for _, fl := range flights {
				if fl.abandoned || fl.lastBeat.Load() >= deadline {
					continue
				}
				// A heartbeat lapse is a death sentence, not a strike: the
				// transport itself went unresponsive, so the host leaves
				// the pool immediately instead of collecting further
				// ranges until MaxHostFailures.
				if !fl.host.excluded {
					fl.host.excluded = true
					rep.Excluded = append(rep.Excluded, fl.host.Name)
					logf("sched: excluding host %s: no heartbeat for %s", fl.host.Name, opts.HeartbeatTimeout)
					emit(Event{Type: EventExcluded, Host: fl.host.Name, Range: fl.rng.idx,
						Err: fmt.Sprintf("no heartbeat for %s", opts.HeartbeatTimeout)})
				}
				abandon(fl)
				if !fl.rng.done {
					fail(fl.host, fl.rng, fmt.Errorf("no heartbeat from host %s for %s — declared dead", fl.host.Name, opts.HeartbeatTimeout))
				}
			}
			maybeSpeculate()
		}
		if wakeTimer != nil {
			wakeTimer.Stop()
		}
	}
}

// median returns the middle value of ds (upper middle for even counts);
// callers guarantee ds is non-empty.
func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
