// Package store is the on-disk result cache behind resumable grid
// execution: a content-addressed map from a grid cell's full identity —
// (grid fingerprint, cell index, seed, GOARCH) — to the serialized cell
// payload it produced. Because a fingerprint hashes the normalized spec
// and the grid shape, and every cell is a pure function of (spec, index)
// on one architecture, a cached payload is exactly the bytes a fresh
// computation would yield; re-running any figure therefore only computes
// cache-miss cells while staying byte-identical to a cold run.
//
// Entries are written atomically (temp file + rename in the destination
// directory), so a SIGKILL mid-write can never leave a half-entry that a
// later run would trust. Reads verify integrity end to end: the entry's
// recorded key fields must equal the requested key and the payload must
// match its recorded SHA-256, so a corrupted, truncated, or mis-filed
// entry is rejected (and removed) rather than served — the cell is simply
// recomputed. Lookups against a different seed, index, fingerprint, or
// architecture can never be satisfied by an entry written under another
// key, because the key is both the address and part of the verified
// content.
package store

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Version is the entry schema version; Get rejects entries from another
// version rather than guessing at field semantics.
const Version = 1

// Key is the full identity of one cached grid cell.
type Key struct {
	// Fingerprint is the grid's shard fingerprint (hex SHA-256 of the
	// canonical spec plus the job count; see internal/shard.Fingerprint).
	Fingerprint string
	// Index is the cell's global job index within the grid.
	Index int
	// Seed is the grid's experiment seed. It is already hashed into the
	// fingerprint; keying on it again means a poisoned or mis-filed entry
	// must forge two independent records to satisfy a wrong-seed lookup.
	Seed int64
	// Arch is the GOARCH the payload was computed on. Float arithmetic is
	// architecture-sensitive, so entries never cross architectures: a
	// mixed-arch fleet sharing one store recomputes every cell per
	// architecture rather than serving subtly different floats. That
	// trade is silent at this layer by design — engine reports and the
	// serve daemon's /runs/{id} status surface the coordinator's Arch so
	// operators can see which partition of the store a run hits.
	Arch string
}

func (k Key) validate() error {
	switch {
	case len(k.Fingerprint) < 16:
		return fmt.Errorf("store: fingerprint %q too short to address", k.Fingerprint)
	case k.Index < 0:
		return fmt.Errorf("store: negative cell index %d", k.Index)
	case k.Arch == "":
		return fmt.Errorf("store: key has no architecture")
	}
	return nil
}

// entry is the on-disk form of one cached cell: the key fields it was
// written under plus the payload and its checksum.
type entry struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint"`
	Index       int             `json:"index"`
	Seed        int64           `json:"seed"`
	Arch        string          `json:"arch"`
	SHA256      string          `json:"sha256"`
	Payload     json.RawMessage `json:"payload"`
}

// Counters are the in-memory access statistics of one Store handle.
type Counters struct {
	// Hits counts Get calls served from a verified entry.
	Hits int64
	// Misses counts Get calls with no entry on disk.
	Misses int64
	// Writes counts successful Put calls.
	Writes int64
	// Rejected counts entries found on disk but refused: corrupted,
	// truncated, wrong schema version, or recorded under a different key.
	Rejected int64
}

// Stats combines the handle's counters with a walk of the cache
// directory.
type Stats struct {
	Counters
	// Entries is the number of cell entries on disk.
	Entries int
	// Bytes is their total size.
	Bytes int64
	// Fingerprints is the number of distinct grids with at least one
	// cached cell.
	Fingerprints int
}

// Store is a handle on one cache directory. It is safe for concurrent
// use by any number of goroutines and — because writes are atomic
// renames of fully-written temp files — by concurrent processes sharing
// the directory.
type Store struct {
	dir      string
	hits     atomic.Int64
	misses   atomic.Int64
	writes   atomic.Int64
	rejected atomic.Int64
}

// Open creates (if needed) and opens a cache directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty cache directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "cells"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the cache directory this handle operates on.
func (s *Store) Dir() string { return s.dir }

// path lays entries out as
// cells/<fp[:2]>/<fp>/<arch>/s<seed>/<index>.json: the two-byte fan-out
// keeps directory sizes bounded, and grouping by fingerprint first makes
// GC of a whole grid a single RemoveAll.
func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, "cells", k.Fingerprint[:2], k.Fingerprint,
		k.Arch, fmt.Sprintf("s%d", k.Seed), fmt.Sprintf("%d.json", k.Index))
}

func payloadSum(payload []byte) string {
	return fmt.Sprintf("%x", sha256.Sum256(payload))
}

// Get returns the verified payload cached under k, or ok=false on a miss.
// An entry that exists but fails verification — undecodable, truncated,
// wrong schema version, checksum mismatch, or recorded under key fields
// that differ from k — counts as Rejected, is removed best-effort, and
// reads as a miss, so the caller recomputes instead of trusting it.
func (s *Store) Get(k Key) ([]byte, bool) {
	if k.validate() != nil {
		return nil, false
	}
	p := s.path(k)
	data, err := os.ReadFile(p)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Version != Version ||
		e.Fingerprint != k.Fingerprint || e.Index != k.Index ||
		e.Seed != k.Seed || e.Arch != k.Arch ||
		e.SHA256 != payloadSum(e.Payload) {
		s.rejected.Add(1)
		os.Remove(p) // quarantine by deletion; the cell will be recomputed
		return nil, false
	}
	s.hits.Add(1)
	return e.Payload, true
}

// Has reports whether a verified entry exists under k, with Get's full
// verification and counter semantics (a probe is an access, and a
// corrupt entry is rejected and removed). Cache-aware shard planning
// uses it to cost cells at plan time: a cell Has reports true for is one
// the run's workers will be served, not recompute.
func (s *Store) Has(k Key) bool {
	_, ok := s.Get(k)
	return ok
}

// Put caches payload under k, atomically: the entry is fully written to a
// temp file in the destination directory and renamed into place, so
// concurrent writers of the same cell (which, by the determinism
// contract, carry identical payloads) and killed processes are both
// harmless.
func (s *Store) Put(k Key, payload []byte) error {
	if err := k.validate(); err != nil {
		return err
	}
	e := entry{
		Version:     Version,
		Fingerprint: k.Fingerprint,
		Index:       k.Index,
		Seed:        k.Seed,
		Arch:        k.Arch,
		SHA256:      payloadSum(payload),
		Payload:     json.RawMessage(payload),
	}
	data, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("store: encoding entry: %w", err)
	}
	p := s.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := WriteFileAtomic(p, data); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// WriteFileAtomic writes data to path via a same-directory temp file and
// rename, so path never holds a partial write — the primitive behind
// every durable artifact of the resumable-execution layer (cache
// entries here; manifests and envelope part files in internal/dispatch).
func WriteFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Counters returns the handle's in-memory access statistics.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:     s.hits.Load(),
		Misses:   s.misses.Load(),
		Writes:   s.writes.Load(),
		Rejected: s.rejected.Load(),
	}
}

// Stats walks the cache directory and reports entry count, total bytes,
// and distinct fingerprints, alongside the handle's counters.
func (s *Store) Stats() (Stats, error) {
	st := Stats{Counters: s.Counters()}
	fps := map[string]bool{}
	err := s.walkFingerprints(func(fp, dir string) error {
		return filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			info, err := d.Info()
			if err != nil {
				return err
			}
			fps[fp] = true
			st.Entries++
			st.Bytes += info.Size()
			return nil
		})
	})
	st.Fingerprints = len(fps)
	return st, err
}

// GC removes every cached grid whose fingerprint the keep predicate does
// not claim, and returns how many grids were dropped. Grids still in use
// (keep returns true) are untouched, entry by entry.
func (s *Store) GC(keep func(fingerprint string) bool) (removed int, err error) {
	err = s.walkFingerprints(func(fp, dir string) error {
		if keep != nil && keep(fp) {
			return nil
		}
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
		removed++
		return nil
	})
	return removed, err
}

// walkFingerprints visits every <fp> directory under cells/<xx>/.
func (s *Store) walkFingerprints(visit func(fp, dir string) error) error {
	root := filepath.Join(s.dir, "cells")
	fanout, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, fx := range fanout {
		if !fx.IsDir() {
			continue
		}
		fps, err := os.ReadDir(filepath.Join(root, fx.Name()))
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		for _, fp := range fps {
			if !fp.IsDir() {
				continue
			}
			if err := visit(fp.Name(), filepath.Join(root, fx.Name(), fp.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}
