package inproc

import (
	"fmt"
	"math"

	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/matrix"
	"fairbench/internal/optimize"
)

// ln aliases math.Log for compact loss expressions.
func ln(v float64) float64 { return math.Log(v) }

// ZafarMode selects among the three evaluated Zafar variants.
type ZafarMode int

const (
	// ZafarDPFair maximizes accuracy under a demographic-parity proxy
	// constraint (Zafar^dp_Fair).
	ZafarDPFair ZafarMode = iota
	// ZafarDPAcc maximizes fairness under an accuracy constraint
	// (Zafar^dp_Acc).
	ZafarDPAcc
	// ZafarEOFair maximizes accuracy under an equalized-odds proxy
	// constraint computed over misclassified tuples (Zafar^eo_Fair).
	ZafarEOFair
)

// Zafar implements Zafar et al.'s fairness-constrained logistic
// classifiers. The fairness proxy is the empirical covariance between the
// sensitive attribute and the tuple's signed distance to the decision
// boundary:
//
//	cov = (1/|D|) Σ_t (S_t - S̄) d_θ(X_t)
//
// (for the eo variant, the distance term is -d_θ(X_t) on misclassified
// tuples and 0 otherwise, re-fixed over a few DCCP-style outer rounds).
// Constrained problems are solved with the penalty method; the sensitive
// attribute never enters the feature vector.
type Zafar struct {
	Mode ZafarMode
	// CovBound is the allowed |cov| (default 1e-3).
	CovBound float64
	// Gamma is the allowed relative loss increase for the Acc variant
	// (default 0.10).
	Gamma float64

	base linearBase
}

// SetCovBound overrides the covariance tolerance; the ablation benches use
// it to trace the fairness/accuracy trade-off curve.
func (z *Zafar) SetCovBound(b float64) { z.CovBound = b }

// zafarWarmKey identifies the shared unconstrained warm start in a
// training slice's batch cache.
type zafarWarmKey struct{ includeS bool }

// zafarWarm is the unconstrained-logistic Adam trajectory two Zafar
// variants consume different prefixes of: Zafar^eo_Fair warm-starts its
// DCCP rounds from the 300-step iterate, Zafar^dp_Acc fixes its loss
// budget at the 400-step optimum. Both run Adam from zeros over the same
// standardized design with bit-identical gradient folds (logGradFromZ and
// logLossGradFromZ differ only in the value, which Adam's update and
// stopping rule never read), so the shorter run IS a prefix of the longer
// one and one shared trajectory reproduces both results exactly. Slices
// are read-only to consumers; Fit copies before handing them on.
type zafarWarm struct {
	w300  []float64
	wStar []float64
	lStar float64
}

// fitZafarWarm runs the shared 400-step unconstrained fit, snapshotting
// the 300-step iterate along the way. If the gradient converges before
// step 300, both run lengths halt at the same iterate.
func fitZafarWarm(x [][]float64, y []int) *zafarWarm {
	view := newFitView(x, y)
	uncon := func(w, grad []float64) float64 {
		for j := range grad {
			grad[j] = 0
		}
		view.fillZ(w)
		return view.logLossGradFromZ(grad)
	}
	var w300 []float64
	w0 := make([]float64, len(x[0])+1)
	wStar, lStar := optimize.Adam(uncon, w0, optimize.AdamConfig{
		MaxIter: 400,
		Track: func(t int, w []float64) {
			if t == 300 {
				w300 = append([]float64(nil), w...)
			}
		},
	})
	if w300 == nil {
		w300 = wStar
	}
	return &zafarWarm{w300: w300, wStar: wStar, lStar: lStar}
}

// warmStart returns the shared trajectory when train is batch-armed, or
// nil on the per-cell path (the caller then runs its own fit, computing
// the identical floats from its own buffers).
func (z *Zafar) warmStart(train *dataset.Dataset, x [][]float64, y []int) *zafarWarm {
	bc := train.Batch()
	if bc == nil {
		return nil
	}
	v, err := bc.Do(zafarWarmKey{includeS: z.base.includeS}, func() (any, error) {
		return fitZafarWarm(x, y), nil
	})
	if err != nil {
		return nil
	}
	return v.(*zafarWarm)
}

// Name implements fair.Approach.
func (z *Zafar) Name() string {
	switch z.Mode {
	case ZafarDPAcc:
		return "Zafar-DP-Acc"
	case ZafarEOFair:
		return "Zafar-EO-Fair"
	default:
		return "Zafar-DP-Fair"
	}
}

// Stage implements fair.Approach.
func (z *Zafar) Stage() fair.Stage { return fair.StageIn }

// Targets implements fair.Approach.
func (z *Zafar) Targets() []fair.Metric {
	if z.Mode == ZafarEOFair {
		return []fair.Metric{fair.MetricTPRB, fair.MetricTNRB}
	}
	return []fair.Metric{fair.MetricDI}
}

// Fit implements fair.Approach.
func (z *Zafar) Fit(train *dataset.Dataset) error {
	if z.CovBound == 0 {
		z.CovBound = 1e-3
	}
	if z.Gamma == 0 {
		z.Gamma = 0.10
	}
	z.base.includeS = false
	x := z.base.designMatrix(train)
	y := train.Y
	n := float64(len(x))
	dim := len(x[0])
	view := newFitView(x, y)

	sBar := 0.0
	for _, s := range train.S {
		sBar += float64(s)
	}
	sBar /= n
	sCent := make([]float64, len(x))
	for i, s := range train.S {
		sCent[i] = float64(s) - sBar
	}

	// The covariance proxy factors cleanly at a fixed mask: its value
	// needs only the affine scores (cov = Σ sCent[i]·z_i / n over
	// contributing tuples), and its gradient is CONSTANT in w —
	// grad[j] = Σ sCent[i]·x_ij/n. So the fused objectives below compute
	// the gradient once per mask (original fold order preserved) and per
	// iteration share one z-pass between the loss and both constraint
	// closures, relying on MinimizePenalty's documented call order: f
	// first, then every constraint at the same iterate.
	covGradFor := func(mask []bool) []float64 {
		grad := make([]float64, dim+1)
		for i, row := range x {
			if mask != nil && !mask[i] {
				continue
			}
			si := sCent[i]
			for j, v := range row {
				grad[j] += si * v / n
			}
			grad[dim] += si / n
		}
		return grad
	}
	covFromZ := func(mask []bool) float64 {
		var c float64
		for i, zi := range view.z {
			if mask != nil && !mask[i] {
				continue
			}
			c += sCent[i] * zi
		}
		return c / n
	}

	w0 := make([]float64, dim+1)
	switch z.Mode {
	case ZafarDPFair:
		covGrad := covGradFor(nil)
		negCovGrad := matrix.Clone(covGrad)
		matrix.Scale(-1, negCovGrad)
		// Gradient-only: the penalty method's inner Adam never reads the
		// objective value. The loss fills the shared z buffer; the
		// constraints reuse it.
		loss := func(w, grad []float64) float64 {
			for j := range grad {
				grad[j] = 0
			}
			view.fillZ(w)
			view.logGradFromZ(grad)
			return 0
		}
		var covVal float64
		cpos := func(w, grad []float64) float64 {
			covVal = covFromZ(nil)
			copy(grad, covGrad)
			return covVal - z.CovBound
		}
		cneg := func(w, grad []float64) float64 {
			copy(grad, negCovGrad)
			return -covVal - z.CovBound
		}
		z.base.w = optimize.MinimizePenalty(loss, []optimize.Constraint{cpos, cneg}, w0,
			optimize.PenaltyConfig{Rho0: 10, Inner: optimize.AdamConfig{MaxIter: 400}})

	case ZafarDPAcc:
		// Phase 1: unconstrained optimum fixes the loss budget — taken
		// from the batch-shared trajectory when one is armed.
		var wStar []float64
		var lStar float64
		if sh := z.warmStart(train, x, y); sh != nil {
			wStar = append([]float64(nil), sh.wStar...)
			lStar = sh.lStar
		} else {
			uncon := func(w, grad []float64) float64 {
				for j := range grad {
					grad[j] = 0
				}
				view.fillZ(w)
				return view.logLossGradFromZ(grad)
			}
			wStar, lStar = optimize.Adam(uncon, w0, optimize.AdamConfig{MaxIter: 400})
		}
		budget := (1 + z.Gamma) * lStar
		// Phase 2: minimize cov^2 subject to loss <= budget. The objective
		// runs the z-pass; the loss constraint reuses its scores.
		covGrad := covGradFor(nil)
		obj := func(w, grad []float64) float64 {
			view.fillZ(w)
			c := covFromZ(nil)
			for j := range grad {
				grad[j] = 2 * c * covGrad[j]
			}
			return c * c
		}
		lossCon := func(w, grad []float64) float64 {
			for j := range grad {
				grad[j] = 0
			}
			return view.logLossGradFromZ(grad) - budget
		}
		z.base.w = optimize.MinimizePenalty(obj, []optimize.Constraint{lossCon}, wStar,
			optimize.PenaltyConfig{Rho0: 10, Inner: optimize.AdamConfig{MaxIter: 400}})

	case ZafarEOFair:
		// DCCP-style outer loop: fix the misclassified set under the
		// current weights, solve the resulting penalized convex
		// subproblem, repeat.
		// Gradient-only: both the warm start and the penalized subproblems
		// run under Adam, which discards the value.
		uncon := func(wv, grad []float64) float64 {
			for j := range grad {
				grad[j] = 0
			}
			view.fillZ(wv)
			view.logGradFromZ(grad)
			return 0
		}
		var w []float64
		if sh := z.warmStart(train, x, y); sh != nil {
			// The shared trajectory's 300-step iterate is exactly this
			// Adam run's result (identical gradient folds from the same
			// zero start).
			w = append([]float64(nil), sh.w300...)
		} else {
			w, _ = optimize.Adam(uncon, w0, optimize.AdamConfig{MaxIter: 300})
		}
		for round := 0; round < 4; round++ {
			mask := make([]bool, len(x))
			view.fillZ(w)
			for i, zv := range view.z {
				pred := 0
				if zv >= 0 {
					pred = 1
				}
				mask[i] = pred != y[i]
			}
			covGrad := covGradFor(mask)
			negCovGrad := matrix.Clone(covGrad)
			matrix.Scale(-1, negCovGrad)
			var covVal float64
			cpos := func(wv, grad []float64) float64 {
				covVal = covFromZ(mask)
				copy(grad, covGrad)
				return covVal - z.CovBound
			}
			cneg := func(wv, grad []float64) float64 {
				copy(grad, negCovGrad)
				return -covVal - z.CovBound
			}
			w = optimize.MinimizePenalty(uncon, []optimize.Constraint{cpos, cneg}, w,
				optimize.PenaltyConfig{Rho0: 10, Outer: 4, Inner: optimize.AdamConfig{MaxIter: 250}})
		}
		z.base.w = w
	default:
		return fmt.Errorf("zafar: unknown mode %d", z.Mode)
	}
	return nil
}

// Predict implements fair.Approach.
func (z *Zafar) Predict(test *dataset.Dataset) ([]int, error) {
	if z.base.w == nil {
		return nil, fmt.Errorf("%s: not fitted", z.Name())
	}
	return z.base.predictAll(test), nil
}

// PredictOne implements fair.Approach. Zafar never uses S at prediction
// time, so it trivially satisfies the ID metric (Section 4.2).
func (z *Zafar) PredictOne(x []float64, s int) int { return z.base.predictOne(x, s) }

// NewZafarDPFair returns the evaluated Zafar^dp_Fair variant.
func NewZafarDPFair() fair.Approach { return &Zafar{Mode: ZafarDPFair} }

// NewZafarDPAcc returns the evaluated Zafar^dp_Acc variant.
func NewZafarDPAcc() fair.Approach { return &Zafar{Mode: ZafarDPAcc} }

// NewZafarEOFair returns the evaluated Zafar^eo_Fair variant.
func NewZafarEOFair() fair.Approach { return &Zafar{Mode: ZafarEOFair} }
