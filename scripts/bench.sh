#!/usr/bin/env bash
# bench.sh — run the benchmark suite once and record the serial-vs-parallel
# evalAll pair to BENCH_parallel.json, the shard plan/merge overhead pair
# to BENCH_shard.json, the cold-vs-warm result-cache pair to
# BENCH_cache.json, and the training-kernel trio (baseline LR fit, cold
# fig7 grid cell set, dataset materialization) to BENCH_train.json, so all
# four perf trajectories populate.
#
# Also runs the scheduler benchmarks in ./internal/sched (they need that
# package's worker re-exec helper) and records the cache-aware plan, the
# two-host local run, and the straggler run with/without speculative
# execution to BENCH_sched.json.
#
# Usage:
#   scripts/bench.sh [output.json] [shard-output.json] [cache-output.json] [train-output.json] [sched-output.json]
#
# Environment:
#   BENCHTIME   go test -benchtime value (default 1x: one iteration per
#               benchmark — a smoke run; use e.g. 3x or 2s for stabler
#               numbers)
#   BENCH_COUNT go test -count value (default 1). With count > 1 every
#               benchmark runs that many times and the recorded figure is
#               the MINIMUM across runs — the standard noise-robust
#               estimator on a shared machine, since scheduler and cache
#               interference only ever inflates a measurement.
#   BENCH_PAT   benchmark regexp (default '.': the full suite). A
#               narrowed pattern may exclude benchmark sections; their
#               JSON outputs are then skipped with a warning. Under the
#               default full-suite pattern every declared output MUST be
#               produced — a missing one fails the run, so a silently
#               vanished benchmark can never masquerade as a green run.
set -euo pipefail
cd "$(dirname "$0")/.."

# skip <file> <reason> — record a declared output that was not produced.
# The trailing check turns these into a hard failure under the default
# full-suite pattern.
skipped=()
skip() {
    skipped+=("$1")
    echo "bench.sh: $2; skipping $1" >&2
}

out="${1:-BENCH_parallel.json}"
shard_out="${2:-BENCH_shard.json}"
cache_out="${3:-BENCH_cache.json}"
train_out="${4:-BENCH_train.json}"
sched_out="${5:-BENCH_sched.json}"
benchtime="${BENCHTIME:-1x}"
count="${BENCH_COUNT:-1}"
pattern="${BENCH_PAT:-.}"

if ! raw="$(go test -bench "$pattern" -benchtime "$benchtime" -count "$count" -run '^$' . 2>&1)"; then
    echo "$raw"
    echo "bench.sh: go test -bench failed" >&2
    exit 1
fi
echo "$raw"

# bench_col <benchmark-name> <awk-field> — extract a result column,
# taking the minimum when -count produced several runs of the benchmark.
bench_col() {
    echo "$raw" | awk -v b="$1" -v f="$2" '
        $1 ~ "^"b"(-[0-9]+)?$" && (!seen || $f+0 < min) { min = $f+0; seen = 1 }
        END { if (seen) print min }'
}

serial="$(bench_col BenchmarkEvalAllSerial 3)"
parallel="$(bench_col BenchmarkEvalAllParallel 3)"

if [[ -z "$serial" || -z "$parallel" ]]; then
    echo "bench.sh: BenchmarkEvalAllSerial/Parallel not found in output" >&2
    echo "bench.sh: pass BENCH_PAT covering 'BenchmarkEvalAll(Serial|Parallel)'" >&2
    exit 1
fi

speedup="$(awk -v s="$serial" -v p="$parallel" 'BEGIN { if (p > 0) printf "%.3f", s / p; else printf "0" }')"

cat > "$out" <<EOF
{
  "benchmark": "evalAll (Figure 7 grid, COMPAS n=1500)",
  "go": "$(go env GOVERSION)",
  "cpus": $(nproc),
  "benchtime": "$benchtime",
  "serial_ns_per_op": $serial,
  "parallel_ns_per_op": $parallel,
  "speedup": $speedup
}
EOF
echo "bench.sh: wrote $out (speedup ${speedup}x over serial)"

# Shard-plan overhead: the fixed per-process cost of materializing a grid
# from its spec (BenchmarkShardPlan) and the coordinator's cost of merging
# a complete 3-shard set (BenchmarkShardMerge).
plan="$(bench_col BenchmarkShardPlan 3)"
merge="$(bench_col BenchmarkShardMerge 3)"

if [[ -z "$plan" || -z "$merge" ]]; then
    skip "$shard_out" "ShardPlan/ShardMerge not in output"
else
    cat > "$shard_out" <<EOF
{
  "benchmark": "shard plan (fig7 COMPAS n=1500, k=3) + merge (fig7 German n=300, 3 shards)",
  "go": "$(go env GOVERSION)",
  "cpus": $(nproc),
  "benchtime": "$benchtime",
  "plan_ns_per_op": $plan,
  "merge_ns_per_op": $merge
}
EOF
    echo "bench.sh: wrote $shard_out (plan ${plan} ns/op, merge ${merge} ns/op)"
fi

# Result-cache payoff: the same one-shard fig7 grid against a fresh cache
# (every cell computed + written back) vs a populated one (every cell a
# verified store hit, zero computations).
cold="$(bench_col BenchmarkRunShardCold 3)"
warm="$(bench_col BenchmarkRunShardWarm 3)"

if [[ -z "$cold" || -z "$warm" ]]; then
    skip "$cache_out" "RunShardCold/Warm not in output"
else
    cache_speedup="$(awk -v c="$cold" -v w="$warm" 'BEGIN { if (w > 0) printf "%.1f", c / w; else printf "0" }')"
    cat > "$cache_out" <<EOF
{
  "benchmark": "RunShard cold vs warm result cache (fig7 German n=300, 1 shard)",
  "go": "$(go env GOVERSION)",
  "cpus": $(nproc),
  "benchtime": "$benchtime",
  "cold_ns_per_op": $cold,
  "warm_ns_per_op": $warm,
  "warm_speedup": $cache_speedup
}
EOF
    echo "bench.sh: wrote $cache_out (warm cache ${cache_speedup}x over cold)"
fi

# Training-kernel trajectory: ns/op and allocs/op for the baseline LR fit
# pipeline, the whole cold (uncached) fig7 German n=300 grid in both of
# its execution modes — grid_cell_cold computes every cell alone via
# Cell, grid_batch_cold runs the batch-at-a-time RunAll product path over
# one shared materialization — and dataset materialization. The seed_*
# constants are the same benchmarks measured at the pre-flat-layout
# commit (PR 3 head, go1.24 amd64) — the "before" column of the
# flat-matrix data plane refactor; the ratios quantify its payoff per
# commit. Both grid modes share one seed: before batching existed the
# per-cell loop WAS the grid execution path.
seed_fit_ns=10181391
seed_fit_allocs=1415
seed_adam_ns=34272
seed_adam_allocs=5
seed_cold_ns=397654781
seed_cold_allocs=1164504
seed_synth_ns=5598085
seed_synth_allocs=5124

fit_ns="$(bench_col BenchmarkFitLogreg 3)"
fit_allocs="$(bench_col BenchmarkFitLogreg 7)"
adam_ns="$(bench_col BenchmarkAdamStepLogreg 3)"
adam_allocs="$(bench_col BenchmarkAdamStepLogreg 7)"
cold_cell_ns="$(bench_col BenchmarkGridCellCold 3)"
cold_cell_allocs="$(bench_col BenchmarkGridCellCold 7)"
batch_ns="$(bench_col BenchmarkGridBatchCold 3)"
batch_allocs="$(bench_col BenchmarkGridBatchCold 7)"
synth_ns="$(bench_col BenchmarkSynthMaterialize 3)"
synth_allocs="$(bench_col BenchmarkSynthMaterialize 7)"

if [[ -z "$fit_ns" || -z "$adam_ns" || -z "$cold_cell_ns" || -z "$batch_ns" || -z "$synth_ns" ]]; then
    skip "$train_out" "FitLogreg/GridCellCold/GridBatchCold/SynthMaterialize not in output"
else
    cold_speedup="$(awk -v a="$seed_cold_ns" -v b="$batch_ns" 'BEGIN { if (b > 0) printf "%.2f", a / b; else printf "0" }')"
    batch_speedup="$(awk -v a="$cold_cell_ns" -v b="$batch_ns" 'BEGIN { if (b > 0) printf "%.3f", a / b; else printf "0" }')"
    fit_alloc_ratio="$(awk -v a="$seed_fit_allocs" -v b="$fit_allocs" 'BEGIN { if (b > 0) printf "%.1f", a / b; else printf "0" }')"
    cat > "$train_out" <<EOF
{
  "benchmark": "training kernels: baseline LR fit (German n=1000, 70% split), cold uncached fig7 German n=300 grid (19 cells; per-cell and batched modes), Adult n=5000 materialization",
  "go": "$(go env GOVERSION)",
  "cpus": $(nproc),
  "benchtime": "$benchtime",
  "count": $count,
  "fit_logreg": { "ns_per_op": $fit_ns, "allocs_per_op": $fit_allocs, "seed_ns_per_op": $seed_fit_ns, "seed_allocs_per_op": $seed_fit_allocs },
  "adam_step_logreg": { "ns_per_op": $adam_ns, "allocs_per_op": $adam_allocs, "seed_ns_per_op": $seed_adam_ns, "seed_allocs_per_op": $seed_adam_allocs },
  "grid_cell_cold": { "ns_per_op": $cold_cell_ns, "allocs_per_op": $cold_cell_allocs, "seed_ns_per_op": $seed_cold_ns, "seed_allocs_per_op": $seed_cold_allocs },
  "grid_batch_cold": { "ns_per_op": $batch_ns, "allocs_per_op": $batch_allocs, "seed_ns_per_op": $seed_cold_ns, "seed_allocs_per_op": $seed_cold_allocs },
  "synth_materialize": { "ns_per_op": $synth_ns, "allocs_per_op": $synth_allocs, "seed_ns_per_op": $seed_synth_ns, "seed_allocs_per_op": $seed_synth_allocs },
  "cold_grid_speedup_vs_seed": $cold_speedup,
  "batch_speedup_vs_per_cell": $batch_speedup,
  "fit_logreg_allocs_reduction_vs_seed": $fit_alloc_ratio
}
EOF
    echo "bench.sh: wrote $train_out (batched cold grid ${cold_speedup}x vs seed, ${batch_speedup}x vs per-cell, logreg allocs ÷${fit_alloc_ratio})"
fi

# Multi-host scheduler overhead: the coordinator's cache-aware plan over
# a half-cached fig7 grid (one verified store probe per cell) and a whole
# two-host local scheduled run of a small cold grid (plan + spawn +
# validate + merge). These live in ./internal/sched because the worker
# subprocesses re-exec that package's test binary; like the sections
# above, only a narrowed BENCH_PAT may skip the JSON.
if ! sched_raw="$(go test -bench "$pattern" -benchtime "$benchtime" -count "$count" -run '^$' ./internal/sched 2>&1)"; then
    echo "$sched_raw"
    echo "bench.sh: go test -bench ./internal/sched failed" >&2
    exit 1
fi
echo "$sched_raw"

sched_col() { # sched_col <benchmark-name> <awk-field> — min across -count runs
    echo "$sched_raw" | awk -v b="$1" -v f="$2" '
        $1 ~ "^"b"(-[0-9]+)?$" && (!seen || $f+0 < min) { min = $f+0; seen = 1 }
        END { if (seen) print min }'
}
plan_ns="$(sched_col BenchmarkSchedPlanCacheAware 3)"
plan_allocs="$(sched_col BenchmarkSchedPlanCacheAware 7)"
local_ns="$(sched_col BenchmarkSchedLocal 3)"
straggler_ns="$(sched_col BenchmarkSchedStraggler 3)"
speculate_ns="$(sched_col BenchmarkSchedSpeculation 3)"

if [[ -z "$plan_ns" || -z "$plan_allocs" || -z "$local_ns" || -z "$straggler_ns" || -z "$speculate_ns" ]]; then
    skip "$sched_out" "SchedPlanCacheAware/SchedLocal/SchedStraggler/SchedSpeculation not in output"
else
    speculation_speedup="$(awk -v a="$straggler_ns" -v b="$speculate_ns" 'BEGIN { printf "%.2f", a/b }')"
    cat > "$sched_out" <<EOF
{
  "benchmark": "sched: cache-aware plan (fig7 German n=300, half-cached, k=4) + two-host local run (fig23 COMPAS n=300, 4 cells, cold) + scripted-straggler run with/without speculative execution",
  "go": "$(go env GOVERSION)",
  "cpus": $(nproc),
  "benchtime": "$benchtime",
  "plan_cache_aware": { "ns_per_op": $plan_ns, "allocs_per_op": $plan_allocs },
  "sched_local": { "ns_per_op": $local_ns },
  "sched_straggler": { "ns_per_op": $straggler_ns },
  "sched_speculation": { "ns_per_op": $speculate_ns },
  "speculation_speedup": $speculation_speedup
}
EOF
    echo "bench.sh: wrote $sched_out (plan ${plan_ns} ns/op, local run ${local_ns} ns/op, speculation ${speculation_speedup}x over straggler)"
fi

# Declared-output contract: the full suite must produce every BENCH
# file this script's header declares. A narrowed BENCH_PAT is the only
# legitimate reason to skip one.
if (( ${#skipped[@]} > 0 )); then
    if [[ "$pattern" == "." ]]; then
        echo "bench.sh: FAIL: full suite (BENCH_PAT='.') did not produce declared output(s): ${skipped[*]}" >&2
        echo "bench.sh: a benchmark this script records has been renamed or removed — fix the suite or this script" >&2
        exit 1
    fi
    echo "bench.sh: ${#skipped[@]} output(s) skipped under BENCH_PAT='$pattern': ${skipped[*]}" >&2
fi
