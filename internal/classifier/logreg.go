package classifier

import (
	"fairbench/internal/matrix"
	"fairbench/internal/optimize"
)

// LogisticRegression is an L2-regularized logistic-regression classifier
// trained by full-batch Adam on the weighted log loss. It is the paper's
// fairness-unaware baseline and the default model completing pre- and
// post-processing pipelines.
//
// Fit resolves unset hyper-parameters to the benchmark defaults without
// writing them back to the receiver, so a zero-value model is reusable
// and data-race-free when cells sharing a factory train concurrently.
type LogisticRegression struct {
	// L2 is the ridge penalty on the non-intercept weights (default 1e-3,
	// matching scikit-learn's mild default regularization role).
	L2 float64
	// MaxIter bounds the optimizer (default 300).
	MaxIter int
	// Step is the Adam learning rate (default 0.1).
	Step float64

	// W holds the learned weights; the last entry is the intercept.
	W []float64
}

// NewLogistic returns a logistic regression with benchmark defaults.
func NewLogistic() *LogisticRegression {
	return &LogisticRegression{L2: 1e-3, MaxIter: 300, Step: 0.1}
}

// Fit trains the model; w may be nil for uniform weights.
//
// The Adam objective below is gradient-only: it returns 0 instead of the
// weighted log loss. Adam's update and stopping rule read nothing but the
// gradient, and the callers discard the final objective value, so
// skipping the two math.Log calls per tuple per iteration leaves the
// weight trajectory bit-identical while nearly halving fit time. The
// gradient buffer is owned by Adam and reused across all MaxIter
// iterations; the loop itself allocates nothing (pinned by
// TestFitAllocationBounds).
func (lr *LogisticRegression) Fit(x [][]float64, y []int, w []float64) error {
	if err := checkFitInput(x, y, w); err != nil {
		return err
	}
	maxIter, step := lr.MaxIter, lr.Step
	if maxIter == 0 {
		maxIter = 300
	}
	if step == 0 {
		step = 0.1
	}
	d := len(x[0])
	var totalW float64
	if w == nil {
		totalW = float64(len(x))
	} else {
		totalW = matrix.Sum(w)
	}
	if totalW <= 0 {
		totalW = 1
	}
	// A design matrix over one flat backing runs the blocked z-pass +
	// scatter kernels (bit-identical fold order; see flatfit.go); the
	// z buffer is allocated once and reused across all Adam iterations.
	dm, flat := matrix.AsDense(x)
	var zbuf, gbuf []float64
	if flat {
		zbuf = make([]float64, len(x))
		gbuf = make([]float64, len(x))
	}
	obj := func(theta []float64, grad []float64) float64 {
		for j := range grad {
			grad[j] = 0
		}
		if flat {
			logitGradFlat(dm, y, w, theta, zbuf, gbuf, grad)
		} else {
			for i, row := range x {
				wi := 1.0
				if w != nil {
					wi = w[i]
				}
				z := theta[d]
				for j, v := range row {
					z += theta[j] * v
				}
				p := matrix.Sigmoid(z)
				g := wi * (p - float64(y[i]))
				for j, v := range row {
					grad[j] += g * v
				}
				grad[d] += g
			}
		}
		for j := range grad {
			grad[j] /= totalW
		}
		for j := 0; j < d; j++ { // no penalty on intercept
			grad[j] += 2 * lr.L2 * theta[j]
		}
		return 0
	}
	w0 := make([]float64, d+1)
	theta, _ := optimize.Adam(obj, w0, optimize.AdamConfig{Step: step, MaxIter: maxIter})
	lr.W = theta
	return nil
}

// Score returns the raw decision value (signed distance proxy) wᵀx + b.
func (lr *LogisticRegression) Score(x []float64) float64 {
	d := len(lr.W) - 1
	z := lr.W[d]
	for j := 0; j < d && j < len(x); j++ {
		z += lr.W[j] * x[j]
	}
	return z
}

// PredictProba returns the sigmoid of the decision value.
func (lr *LogisticRegression) PredictProba(x []float64) float64 {
	return matrix.Sigmoid(lr.Score(x))
}
