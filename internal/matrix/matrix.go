// Package matrix provides small dense linear-algebra primitives used by the
// classifiers and optimizers. It is deliberately minimal: fair-classification
// workloads in this repository only need vector arithmetic, matrix-vector
// products, and a handful of norms, all on row-major [][]float64 data.
package matrix

import (
	"fmt"
	"math"
)

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// AddTo computes dst[i] += src[i] in place.
func AddTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic("matrix: AddTo length mismatch")
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Sub returns a new vector a-b.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("matrix: Sub length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Clone returns a deep copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// CloneRows returns a deep copy of a row-major matrix.
func CloneRows(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = Clone(row)
	}
	return out
}

// Zeros returns a zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// MatVec computes m·x for a row-major matrix m.
func MatVec(m [][]float64, x []float64) []float64 {
	out := make([]float64, len(m))
	for i, row := range m {
		out[i] = Dot(row, x)
	}
	return out
}

// TransposeMatVec computes mᵀ·x, i.e. the vector whose j-th entry is
// Σ_i m[i][j]·x[i]. Used for gradient accumulation.
func TransposeMatVec(m [][]float64, x []float64) []float64 {
	if len(m) == 0 {
		return nil
	}
	if len(m) != len(x) {
		panic(fmt.Sprintf("matrix: TransposeMatVec length mismatch %d vs %d", len(m), len(x)))
	}
	out := make([]float64, len(m[0]))
	for i, row := range m {
		Axpy(x[i], row, out)
	}
	return out
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute entry of x.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the entries of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Sigmoid returns 1/(1+exp(-z)) computed in a numerically stable way.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Clamp restricts v to the interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ArgMax returns the index of the largest entry of x (-1 for empty input).
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}
