package preproc

import (
	"math"

	"fairbench/internal/classifier"
	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/matrix"
	"fairbench/internal/rng"
)

// Madras implements Madras et al.'s adversarially fair representations
// (LAFTR), the additional pre-processing approach of the paper's appendix
// (Figure 15, Madras^dp): a linear encoder z = enc(x) is trained jointly
// with a label head (keep z predictive) and an adversary that tries to
// recover S from z (make z group-blind). The repaired dataset replaces the
// attributes with the learned representation, so any naively trained
// downstream classifier inherits (approximate) demographic parity.
type Madras struct {
	// Dim is the representation width (default 8).
	Dim int
	// Alpha weighs the adversarial term (default 1.5).
	Alpha float64
	// Epochs of alternating SGD (default 60).
	Epochs int
	// Step is the learning rate (default 0.05).
	Step float64
	// Seed drives initialization and shuffling.
	Seed int64

	std *dataset.Standardizer
	enc [][]float64 // Dim x (d+1), bias last
}

// RepairName implements fair.Repairer.
func (m *Madras) RepairName() string { return "Madras" }

// Repair implements fair.Repairer: it fits the encoder and returns the
// dataset re-expressed in representation space.
func (m *Madras) Repair(train *dataset.Dataset) (*dataset.Dataset, error) {
	if m.Dim == 0 {
		m.Dim = 8
	}
	if m.Alpha == 0 {
		m.Alpha = 1.5
	}
	if m.Epochs == 0 {
		m.Epochs = 60
	}
	if m.Step == 0 {
		m.Step = 0.05
	}
	work := train.Clone()
	m.std = dataset.FitStandardizer(work)
	m.std.Apply(work)
	x := work.FeatureMatrix(false)
	n, d := len(x), len(x[0])
	g := rng.New(m.Seed)

	// Encoder, label head, adversary head (both heads read z).
	m.enc = make([][]float64, m.Dim)
	for h := range m.enc {
		m.enc[h] = make([]float64, d+1)
		for j := range m.enc[h] {
			m.enc[h][j] = g.Normal(0, 1/math.Sqrt(float64(d)))
		}
	}
	yHead := make([]float64, m.Dim+1)
	aHead := make([]float64, m.Dim+1)
	z := make([]float64, m.Dim)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		g.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		lr := m.Step / (1 + 0.02*float64(epoch))
		for _, i := range order {
			row := x[i]
			// Forward: z = tanh(enc·x).
			for h := 0; h < m.Dim; h++ {
				s := m.enc[h][d]
				for j, v := range row {
					s += m.enc[h][j] * v
				}
				z[h] = math.Tanh(s)
			}
			py := matrix.Sigmoid(headScore(yHead, z))
			ps := matrix.Sigmoid(headScore(aHead, z))
			yi := float64(train.Y[i])
			si := float64(train.S[i])

			// Heads: label head minimizes its loss; adversary minimizes
			// its own.
			dY := py - yi
			dA := ps - si
			for h := 0; h < m.Dim; h++ {
				yHead[h] -= lr * dY * z[h]
				aHead[h] -= lr * dA * z[h]
			}
			yHead[m.Dim] -= lr * dY
			aHead[m.Dim] -= lr * dA

			// Encoder: descend label loss, ascend adversary loss
			// (gradient reversal).
			for h := 0; h < m.Dim; h++ {
				dz := dY*yHead[h] - m.Alpha*dA*aHead[h]
				dpre := dz * (1 - z[h]*z[h])
				for j, v := range row {
					m.enc[h][j] -= lr * dpre * v
				}
				m.enc[h][d] -= lr * dpre
			}
		}
	}

	// Re-express the training data in representation space.
	out := &dataset.Dataset{
		Name:  train.Name + "+LAFTR",
		Attrs: make([]dataset.Attr, m.Dim),
		X:     make([][]float64, n),
		S:     append([]int(nil), train.S...),
		Y:     append([]int(nil), train.Y...),
		SName: train.SName,
		YName: train.YName,
	}
	for h := 0; h < m.Dim; h++ {
		out.Attrs[h] = dataset.Attr{Name: "z" + string(rune('0'+h)), Kind: dataset.Numeric}
	}
	for i := range x {
		out.X[i] = m.encode(train.X[i])
	}
	return out, nil
}

func headScore(head, z []float64) float64 {
	s := head[len(head)-1]
	for h, v := range z {
		s += head[h] * v
	}
	return s
}

// encode maps a raw feature row into representation space.
func (m *Madras) encode(x []float64) []float64 {
	row := append([]float64(nil), x...)
	m.std.ApplyRow(row)
	d := len(m.enc[0]) - 1
	z := make([]float64, m.Dim)
	for h := 0; h < m.Dim; h++ {
		s := m.enc[h][d]
		for j := 0; j < d && j < len(row); j++ {
			s += m.enc[h][j] * row[j]
		}
		z[h] = math.Tanh(s)
	}
	return z
}

// TransformRow implements fair.TestTransformer: test tuples are encoded
// with the trained encoder (S plays no role in the transform).
func (m *Madras) TransformRow(x []float64, _ int) []float64 {
	if m.enc == nil {
		return x
	}
	return m.encode(x)
}

// NewMadras returns the appendix's Madras^dp approach.
func NewMadras(factory classifier.Factory, seed int64) fair.Approach {
	return &fair.PreProcessed{
		ApproachName: "Madras-DP",
		Target:       []fair.Metric{fair.MetricDI},
		Mechanism:    &Madras{Seed: seed},
		Factory:      factory,
		IncludeS:     false,
	}
}
