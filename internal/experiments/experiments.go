// Package experiments implements one driver per artifact of the paper's
// evaluation (Section 4 and the appendix):
//
//	Figure 7    — correctness & fairness of all approaches × 3 datasets
//	Figure 8    — efficiency & scalability vs data size and #attributes
//	Figure 9    — robustness to the T1/T2/T3 data-error templates
//	Figure 10   — sensitivity of pre/post approaches to the ML model
//	Figures 16-18 — 5-fold cross-validation metric tables
//	Figure 22   — stability over random train/test folds
//	Figure 23   — data efficiency vs training-set size
//
// Every driver is deterministic given its seed and returns structured rows
// the report package renders. Every driver's (approach × dataset-slice)
// job list is a first-class Grid (see grid.go): an enumerable, indexable
// cell set that fans across a runner worker pool in process, and — because
// a Spec fully determines every cell — can also be split into contiguous
// shards that run in other processes or hosts and merge back bit-identical
// (see internal/shard). Each cell constructs its own approach and RNG from
// explicit seeds, so the rows are identical to a serial run for a fixed
// seed; only wall time changes with runner.SetParallelism. Baseline-
// overhead accounting (Section 4.3) is a post-pass over the collected
// rows, keeping the timing subtraction well-defined regardless of
// completion order.
package experiments

import (
	"fmt"
	"time"

	"fairbench/internal/causal"
	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/metrics"
	"fairbench/internal/registry"
	"fairbench/internal/rng"
	"fairbench/internal/synth"
)

// Row is the per-approach result of one evaluation run: the four
// correctness metrics, the normalized fairness metrics, and the runtime
// overhead over the fairness-unaware baseline (Section 4.3's accounting).
type Row struct {
	Approach string
	Stage    string
	Targets  []fair.Metric
	Correct  metrics.Correctness
	Fair     metrics.Normalized
	// Seconds is the approach's wall time (fit + predict); Overhead is
	// Seconds minus the baseline LR's on the same split.
	Seconds, Overhead float64
	// NoteNSF flags a Thomas run that fell back after failing its safety
	// test.
	NoteNSF bool
}

// Evaluate fits a on train, predicts test, and computes every metric.
func Evaluate(a fair.Approach, train, test *dataset.Dataset, g *causal.Graph) (Row, error) {
	start := time.Now()
	if err := a.Fit(train); err != nil {
		return Row{}, fmt.Errorf("%s: %w", a.Name(), err)
	}
	yhat, err := a.Predict(test)
	if err != nil {
		return Row{}, fmt.Errorf("%s: %w", a.Name(), err)
	}
	elapsed := time.Since(start).Seconds()
	raw := metrics.ComputeFairness(test, yhat, a, g)
	return Row{
		Approach: a.Name(),
		Stage:    a.Stage().String(),
		Targets:  a.Targets(),
		Correct:  metrics.ComputeCorrectness(test.Y, yhat),
		Fair:     metrics.Normalize(raw),
		Seconds:  elapsed,
	}, nil
}

// CorrectnessFairness reproduces Figure 7 for one dataset: the baseline LR
// followed by all 18 variants on a 70/30 split. With a result cache
// configured and a stock benchmark source, the run routes through the
// fingerprinted Spec path so cached cells are reused.
func CorrectnessFairness(src *synth.Source, seed int64) ([]Row, error) {
	if out, ok, err := specOutput(src, seed, Spec{Experiment: "fig7"}); ok {
		if err != nil {
			return nil, err
		}
		return out.Rows, nil
	}
	out, err := fig7Grid(src, seed).RunAll()
	if err != nil {
		return nil, err
	}
	return out.Rows, nil
}

// fig7Grid builds the Figure 7 grid: one 70/30 split × (baseline + all 18
// variants).
func fig7Grid(src *synth.Source, seed int64) *Grid {
	return baselineRowsGrid(src, append([]string{"LR"}, registry.Names...), seed)
}

// splitPair is one dataset slice of an experiment grid: the train/test
// pair every approach of that slice is evaluated on.
type splitPair struct {
	train, test *dataset.Dataset
}

// metricGrid builds a (slice × approach) grid whose cells are evaluation
// Rows in slice-major order (cell si*len(names)+ni is approach ni on
// slice si). Each cell constructs its own approach from sliceSeed(si), so
// results are independent of scheduling and of the process that runs
// them. This is the shared engine behind Figure 7, the robustness
// templates, the CV folds, the stability runs, and the data-efficiency
// sizes.
func metricGrid(slices []splitPair, names []string, g *causal.Graph, seed int64,
	sliceSeed func(si int) int64, assemble func(*Grid, []Cell) (*Output, error)) *Grid {
	return &Grid{
		kind: kindMetric, graph: g, seed: seed,
		slices: slices, names: names, sliceSeed: sliceSeed,
		assemble: assemble,
	}
}

// baselineRowsGrid is a one-split metric grid whose post-pass anchors the
// Overhead column on the leading baseline row (names[0] must be the
// fairness-unaware LR).
func baselineRowsGrid(src *synth.Source, names []string, seed int64) *Grid {
	train, test := src.Data.Split(0.7, rng.New(seed))
	return metricGrid([]splitPair{{train, test}}, names, src.Graph, seed,
		func(int) int64 { return seed },
		func(_ *Grid, cells []Cell) (*Output, error) {
			rows, err := cellRows(cells)
			if err != nil {
				return nil, err
			}
			applyOverhead(rows, rows[0].Seconds)
			return &Output{Rows: rows}, nil
		})
}

// applyOverhead fills each row's Overhead as its Seconds over the baseline,
// clamped at zero (a fairness approach cannot be cheaper than no approach;
// negatives are timing noise).
func applyOverhead(rows []Row, baseline float64) {
	for i := range rows {
		ov := rows[i].Seconds - baseline
		if ov < 0 {
			ov = 0
		}
		rows[i].Overhead = ov
	}
}

// ScalabilityPoint is one (size or attribute count, overhead seconds)
// measurement for one approach.
type ScalabilityPoint struct {
	X        int
	Overhead float64
}

// scaleSlice is one column of the Figure 8 grids: a prepared train/test
// pair at one x value (#points or #attributes).
type scaleSlice struct {
	x           int
	train, test *dataset.Dataset
}

// ScalabilityRows reproduces Figure 8(a-c): runtime overhead as the number
// of training points grows, on samples of the given dataset.
func ScalabilityRows(src *synth.Source, sizes []int, names []string, seed int64) (map[string][]ScalabilityPoint, error) {
	if sizes != nil && names != nil {
		if out, ok, err := specOutput(src, seed, Spec{Experiment: "fig8rows", Sizes: sizes, Names: names}); ok {
			if err != nil {
				return nil, err
			}
			return out.Scalability, nil
		}
	}
	out, err := scaleRowsGrid(src, sizes, names, seed).RunAll()
	if err != nil {
		return nil, err
	}
	return out.Scalability, nil
}

func scaleRowsGrid(src *synth.Source, sizes []int, names []string, seed int64) *Grid {
	slices := make([]scaleSlice, len(sizes))
	for i, n := range sizes {
		sample := src.Data.Sample(n, rng.New(seed+int64(n)))
		train, test := sample.Split(0.7, rng.New(seed))
		slices[i] = scaleSlice{x: n, train: train, test: test}
	}
	return scaleGrid(slices, names, src.Graph, seed)
}

// ScalabilityAttrs reproduces Figure 8(d-f): runtime overhead as the
// number of attributes grows, by projecting the dataset onto attribute
// prefixes.
func ScalabilityAttrs(src *synth.Source, attrCounts []int, names []string, sampleSize int, seed int64) (map[string][]ScalabilityPoint, error) {
	if attrCounts != nil && names != nil && sampleSize > 0 {
		if out, ok, err := specOutput(src, seed, Spec{Experiment: "fig8attrs", AttrCounts: attrCounts, Names: names, SampleSize: sampleSize}); ok {
			if err != nil {
				return nil, err
			}
			return out.Scalability, nil
		}
	}
	out, err := scaleAttrsGrid(src, attrCounts, names, sampleSize, seed).RunAll()
	if err != nil {
		return nil, err
	}
	return out.Scalability, nil
}

func scaleAttrsGrid(src *synth.Source, attrCounts []int, names []string, sampleSize int, seed int64) *Grid {
	sample := src.Data.Sample(sampleSize, rng.New(seed))
	slices := make([]scaleSlice, len(attrCounts))
	for i, k := range attrCounts {
		if k > sample.Dim() {
			k = sample.Dim()
		}
		cols := make([]int, k)
		for c := range cols {
			cols[c] = c
		}
		proj := sample.ProjectAttrs(cols)
		train, test := proj.Split(0.7, rng.New(seed))
		slices[i] = scaleSlice{x: k, train: train, test: test}
	}
	return scaleGrid(slices, names, src.Graph, seed)
}

// scaleGrid builds a pure-timing grid that times every (slice × approach)
// cell, with the baseline LR as an extra column per slice, and subtracts
// the baseline in the assembly post-pass. Unlike the metric grids, this
// grid's entire output is wall time, so RunRange executes its cells with
// one worker: co-scheduled cells would contend for cores and corrupt the
// very quantity being measured (Figure 8's overhead curves). Distributing
// its shards across isolated machines is the sanctioned way to speed it
// up.
func scaleGrid(slices []scaleSlice, names []string, g *causal.Graph, seed int64) *Grid {
	return &Grid{
		kind: kindScale, graph: g, seed: seed,
		scale: slices, names: names,
		assemble: func(gr *Grid, cells []Cell) (*Output, error) {
			secs, err := cellSeconds(cells)
			if err != nil {
				return nil, err
			}
			cols := len(gr.names) + 1
			out := map[string][]ScalabilityPoint{}
			for si, sl := range gr.scale {
				base := secs[si*cols]
				for ni, name := range gr.names {
					ov := secs[si*cols+ni+1] - base
					if ov < 0 {
						ov = 0
					}
					out[name] = append(out[name], ScalabilityPoint{X: sl.x, Overhead: ov})
				}
			}
			return &Output{Scalability: out}, nil
		},
	}
}

func timeOne(name string, train, test *dataset.Dataset, g *causal.Graph, seed int64) (float64, error) {
	a, err := registry.New(name, registry.Config{Graph: g, Seed: seed})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := a.Fit(train); err != nil {
		return 0, fmt.Errorf("%s: %w", name, err)
	}
	if _, err := a.Predict(test); err != nil {
		return 0, fmt.Errorf("%s: %w", name, err)
	}
	return time.Since(start).Seconds(), nil
}
