package synth

import (
	"math"
	"testing"
)

func TestAdultCalibration(t *testing.T) {
	src := Adult(0, 1)
	d := src.Data
	if d.Len() != 45222 {
		t.Fatalf("Adult default size: %d", d.Len())
	}
	if d.Dim() != 9 {
		t.Fatalf("Adult attribute count: %d", d.Dim())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	u, p := d.BaseRates()
	if math.Abs(u-0.11) > 0.02 {
		t.Fatalf("P(Y=1|female) = %v, want ~0.11", u)
	}
	if math.Abs(p-0.32) > 0.02 {
		t.Fatalf("P(Y=1|male) = %v, want ~0.32", p)
	}
	var male float64
	for _, s := range d.S {
		male += float64(s)
	}
	if frac := male / float64(d.Len()); math.Abs(frac-0.67) > 0.02 {
		t.Fatalf("male fraction %v, want ~0.67", frac)
	}
	if d.SName != "Sex" || d.YName != "Income" {
		t.Fatalf("schema labels: %s %s", d.SName, d.YName)
	}
}

func TestCOMPASCalibration(t *testing.T) {
	src := COMPAS(0, 2)
	d := src.Data
	if d.Len() != 7214 || d.Dim() != 3 {
		t.Fatalf("COMPAS shape: %d x %d", d.Len(), d.Dim())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	u, p := d.BaseRates()
	if math.Abs(u-0.49) > 0.03 {
		t.Fatalf("P(no-recid|AA) = %v, want ~0.49", u)
	}
	if math.Abs(p-0.61) > 0.03 {
		t.Fatalf("P(no-recid|other) = %v, want ~0.61", p)
	}
}

func TestGermanCalibration(t *testing.T) {
	src := German(0, 3)
	d := src.Data
	if d.Len() != 1000 || d.Dim() != 9 {
		t.Fatalf("German shape: %d x %d", d.Len(), d.Dim())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	u, p := d.BaseRates()
	// n=1000 gives wider sampling noise.
	if math.Abs(u-0.65) > 0.06 {
		t.Fatalf("P(low-risk|female) = %v, want ~0.65", u)
	}
	if math.Abs(p-0.71) > 0.05 {
		t.Fatalf("P(low-risk|male) = %v, want ~0.71", p)
	}
}

func TestGraphsMatchSchemas(t *testing.T) {
	for _, src := range []*Source{Adult(500, 4), COMPAS(500, 4), German(500, 4)} {
		d, g := src.Data, src.Graph
		if !g.Has(d.SName) || !g.Has(d.YName) {
			t.Fatalf("%s: graph missing S or Y node", d.Name)
		}
		for _, a := range d.Attrs {
			if !g.Has(a.Name) {
				t.Fatalf("%s: graph missing attribute node %q", d.Name, a.Name)
			}
		}
		// The sensitive attribute is a root (Appendix C) — that is what
		// identifies TE observationally.
		if len(g.Parents(d.SName)) != 0 {
			t.Fatalf("%s: sensitive attribute has parents %v", d.Name, g.Parents(d.SName))
		}
		// Y is a sink.
		if len(g.Children(d.YName)) != 0 {
			t.Fatalf("%s: label has children", d.Name)
		}
		// S causally reaches Y (the datasets embed real bias).
		if !g.HasDirectedPath(d.SName, d.YName) {
			t.Fatalf("%s: no causal path from S to Y", d.Name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := COMPAS(300, 9)
	b := COMPAS(300, 9)
	for i := range a.Data.X {
		if a.Data.Y[i] != b.Data.Y[i] || a.Data.S[i] != b.Data.S[i] {
			t.Fatal("same seed must generate identical data")
		}
		for j := range a.Data.X[i] {
			if a.Data.X[i][j] != b.Data.X[i][j] {
				t.Fatal("same seed must generate identical features")
			}
		}
	}
	c := COMPAS(300, 10)
	same := 0
	for i := range a.Data.Y {
		if a.Data.Y[i] == c.Data.Y[i] {
			same++
		}
	}
	if same == 300 {
		t.Fatal("different seeds should differ")
	}
}

func TestCustomSize(t *testing.T) {
	if got := Adult(123, 1).Data.Len(); got != 123 {
		t.Fatalf("custom size: %d", got)
	}
}

func TestMediatedBias(t *testing.T) {
	// The SCMs must route part of the group gap through mediators: the
	// mediator set of each graph is non-empty and mediator distributions
	// differ by group (COMPAS: priors).
	src := COMPAS(5000, 7)
	med := src.Graph.Mediators(src.Data.SName, src.Data.YName)
	if len(med) == 0 {
		t.Fatal("COMPAS graph must have mediators")
	}
	// Average priors differ by race.
	var sum, n [2]float64
	for i, row := range src.Data.X {
		sum[src.Data.S[i]] += row[2]
		n[src.Data.S[i]]++
	}
	if sum[0]/n[0] <= sum[1]/n[1] {
		t.Fatal("unprivileged group must have more recorded priors (over-policing)")
	}
}
