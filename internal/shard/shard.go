// Package shard lets one experiment job grid fan across processes or
// hosts and come back together deterministically. It is deliberately
// generic: it knows nothing about approaches, datasets, or metrics — only
// about a grid of `total` jobs identified by a fingerprint, split into
// contiguous index ranges, with each range's results carried in a
// JSON-serializable envelope.
//
// The determinism contract extends internal/runner's: a grid cell's
// result depends only on its global job index and the grid's spec (which
// the fingerprint hashes), never on which process computed it. Under that
// contract Merge reassembles the exact rows a single-process run would
// have produced, in the same order — the shard-equivalence tests in
// internal/experiments verify this for every experiment driver.
package shard

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Version is the envelope schema version. Decode rejects envelopes from a
// different version rather than guessing at field semantics.
const Version = 1

// Range is one contiguous, half-open slice [Start, End) of a grid's job
// index space.
type Range struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Len returns the number of jobs in the range.
func (r Range) Len() int { return r.End - r.Start }

// Plan splits a grid of n jobs into k contiguous ranges covering [0, n)
// in order. Ranges are balanced: the first n%k shards hold one extra job.
// When k > n the trailing shards are empty — still valid, so a fixed
// shard topology can be reused across grids of any size.
func Plan(n, k int) ([]Range, error) {
	if n < 0 {
		return nil, fmt.Errorf("shard: negative job count %d", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("shard: shard count %d, want >= 1", k)
	}
	base, extra := n/k, n%k
	out := make([]Range, k)
	start := 0
	for i := range out {
		size := base
		if i < extra {
			size++
		}
		out[i] = Range{Start: start, End: start + size}
		start += size
	}
	return out, nil
}

// PlanAligned is Plan with shard boundaries constrained to multiples of
// align: it balances the n/align blocks across the k shards, so a block
// of align consecutive jobs never straddles two shards. Grids whose
// post-pass combines measurements within a block — the pure-timing
// scalability grids subtract a per-slice baseline column from the other
// columns of the same slice — need this so a slice is always timed on a
// single machine. n must be a multiple of align.
func PlanAligned(n, k, align int) ([]Range, error) {
	if align <= 1 {
		return Plan(n, k)
	}
	if n%align != 0 {
		return nil, fmt.Errorf("shard: job count %d not a multiple of alignment %d", n, align)
	}
	blocks, err := Plan(n/align, k)
	if err != nil {
		return nil, err
	}
	for i := range blocks {
		blocks[i].Start *= align
		blocks[i].End *= align
	}
	return blocks, nil
}

// PlanCacheAware partitions [0, n) into contiguous aligned ranges for a
// grid some of whose cells a result cache can already serve. uncached(b)
// reports how many of block b's align cells are NOT cached (0..align).
// The plan has two kinds of range:
//
//   - fully-cached ranges (uncached count 0): every maximal run of
//     blocks with no uncached cells becomes its own range, so a
//     scheduler can serve it straight from the cache instead of
//     assigning it to a host;
//   - work ranges: the remaining segments, split greedily so each range
//     carries about ceil(totalUncached/k) uncached cells — balance by
//     work still owed, not by raw cell count. A work range always starts
//     on a block with uncached cells, so no assigned range is ever
//     fully cached.
//
// The returned counts[i] is the uncached cell count of ranges[i]; the
// ranges partition [0, n) in order, with boundaries on multiples of
// align. With nothing cached the plan degrades to ~Plan(n, k); with
// everything cached it is a single zero-work range. n == 0 yields an
// empty plan.
func PlanCacheAware(n, k, align int, uncached func(block int) int) (ranges []Range, counts []int, err error) {
	if align <= 1 {
		align = 1
	}
	if n < 0 {
		return nil, nil, fmt.Errorf("shard: negative job count %d", n)
	}
	if k <= 0 {
		return nil, nil, fmt.Errorf("shard: shard count %d, want >= 1", k)
	}
	if n%align != 0 {
		return nil, nil, fmt.Errorf("shard: job count %d not a multiple of alignment %d", n, align)
	}
	if n == 0 {
		return nil, nil, nil
	}
	nb := n / align
	w := make([]int, nb)
	total := 0
	for b := range w {
		w[b] = uncached(b)
		if w[b] < 0 || w[b] > align {
			return nil, nil, fmt.Errorf("shard: block %d reports %d uncached cells of %d", b, w[b], align)
		}
		total += w[b]
	}
	if total == 0 {
		return []Range{{Start: 0, End: n}}, []int{0}, nil
	}
	target := (total + k - 1) / k
	emit := func(startBlock, endBlock, uncached int) {
		ranges = append(ranges, Range{Start: startBlock * align, End: endBlock * align})
		counts = append(counts, uncached)
	}
	for b := 0; b < nb; {
		if w[b] == 0 {
			start := b
			for b < nb && w[b] == 0 {
				b++
			}
			emit(start, b, 0)
			continue
		}
		start, acc := b, 0
		for b < nb && w[b] > 0 {
			acc += w[b]
			b++
			if acc >= target && b < nb && w[b] > 0 {
				emit(start, b, acc)
				start, acc = b, 0
			}
		}
		emit(start, b, acc)
	}
	return ranges, counts, nil
}

// Fingerprint hashes a grid's identity: its canonical spec encoding plus
// its total job count. Two runs may only be merged when their
// fingerprints match — equal fingerprints mean the same experiment,
// dataset, seed, and grid shape, so cell i is the same computation in
// both.
func Fingerprint(spec []byte, total int) string {
	h := sha256.New()
	fmt.Fprintf(h, "fairbench-grid-v%d\n%d\n", Version, total)
	h.Write(spec)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Envelope is the partial result of one shard of a grid run: the rows it
// computed, the global job indices they belong to, and enough identity
// (spec, seed, fingerprint) for Merge to validate that all parts came
// from the same grid definition.
type Envelope struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	// Spec is the canonical encoding of the grid definition (the bytes
	// Fingerprint hashed), carried so the merging process can rebuild the
	// grid without out-of-band state.
	Spec json.RawMessage `json:"spec"`
	// Arch records GOARCH of the producing process. Float arithmetic is
	// architecture-sensitive (e.g. FMA contraction on arm64), so the
	// bit-identical merge contract only holds within one architecture;
	// Merge rejects mixed-arch sets rather than silently passing through
	// low-bit drift.
	Arch string `json:"arch"`
	Seed int64  `json:"seed"`
	// Shard/Shards record the plan position (shard Shard of Shards);
	// Total is the whole grid's job count.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	Total  int `json:"total"`
	// Indices[j] is the global job index of Rows[j].
	Indices []int             `json:"indices"`
	Rows    []json.RawMessage `json:"rows"`
	// Cached lists the global job indices (a subset of Indices) whose
	// rows were served from a result cache rather than computed by the
	// producing process — per-cell provenance that lets a coordinator
	// verify claims like "this warm re-run computed nothing". Absent on
	// envelopes from cacheless runs.
	Cached []int `json:"cached,omitempty"`
}

// Validate checks an envelope's internal consistency.
func (e *Envelope) Validate() error {
	switch {
	case e.Version != Version:
		return fmt.Errorf("shard: envelope version %d, want %d", e.Version, Version)
	case e.Fingerprint == "":
		return fmt.Errorf("shard: envelope has no fingerprint")
	case e.Shards <= 0 || e.Shard < 0 || e.Shard >= e.Shards:
		return fmt.Errorf("shard: invalid plan position %d/%d", e.Shard, e.Shards)
	case e.Arch == "":
		return fmt.Errorf("shard: envelope records no architecture")
	case e.Total < 0:
		return fmt.Errorf("shard: negative total %d", e.Total)
	case len(e.Indices) != len(e.Rows):
		return fmt.Errorf("shard: %d indices for %d rows", len(e.Indices), len(e.Rows))
	}
	for _, idx := range e.Indices {
		if idx < 0 || idx >= e.Total {
			return fmt.Errorf("shard: job index %d outside grid [0,%d)", idx, e.Total)
		}
	}
	if len(e.Cached) > 0 {
		have := make(map[int]bool, len(e.Indices))
		for _, idx := range e.Indices {
			have[idx] = true
		}
		for _, idx := range e.Cached {
			if !have[idx] {
				return fmt.Errorf("shard: cached job %d not among the envelope's indices", idx)
			}
		}
	}
	return nil
}

// VerifyFingerprint recomputes the fingerprint from the envelope's own
// spec bytes and job count and compares it to the recorded one. The spec
// is compacted first, so an envelope that round-tripped through an
// indenting encoder still verifies, while an envelope whose fingerprint
// was forged — or whose spec or total was altered after signing — is
// rejected. MergeNamed runs this check on every envelope, which is what
// makes arbitrary decoded bytes unmergeable: a fingerprint can only be
// satisfied by the spec that hashes to it.
func (e *Envelope) VerifyFingerprint() error {
	var compact bytes.Buffer
	if err := json.Compact(&compact, e.Spec); err != nil {
		return fmt.Errorf("shard: envelope spec is not valid JSON: %w", err)
	}
	if got := Fingerprint(compact.Bytes(), e.Total); got != e.Fingerprint {
		return fmt.Errorf("shard: fingerprint mismatch: envelope records %.12s… but its own spec materializes %.12s… — corrupt or forged envelope",
			e.Fingerprint, got)
	}
	return nil
}

// Decode parses and validates a serialized envelope.
func Decode(data []byte) (*Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("shard: decoding envelope: %w", err)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// Encode serializes an envelope after validating it.
func (e *Envelope) Encode() ([]byte, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(e, "", "  ")
}

// Merged is the reassembled output of a complete shard set: every row of
// the grid in job-index order, plus the common identity fields.
type Merged struct {
	Fingerprint string
	Spec        json.RawMessage
	Arch        string
	Seed        int64
	Total       int
	// Rows[i] is the result of global job i.
	Rows []json.RawMessage
	// Cached is the union of the envelopes' cached-cell provenance, in
	// job-index order: the global jobs no process had to compute.
	Cached []int
}

// Merge reassembles shard envelopes into the full grid's rows in job
// order. It rejects mismatched fingerprints (parts of different grids),
// disagreeing seeds/totals/shard counts, duplicate job indices, and
// incomplete coverage — a merge either reproduces exactly the
// single-process result set or fails loudly.
func Merge(envs []*Envelope) (*Merged, error) { return MergeNamed(envs, nil) }

// MergeNamed is Merge with provenance for error messages: names[i] (when
// provided — typically the envelope's file path) labels envs[i] in every
// validation failure, so a user merging dozens of part files learns
// which file is bad, not just that one is. An incomplete set fails with
// the list of shard indices still missing, the actionable unit for
// re-running or resuming.
func MergeNamed(envs []*Envelope, names []string) (*Merged, error) {
	if len(envs) == 0 {
		return nil, fmt.Errorf("shard: no envelopes to merge")
	}
	label := func(i int) string {
		if i < len(names) && names[i] != "" {
			return names[i]
		}
		return fmt.Sprintf("envelope %d", i)
	}
	first := envs[0]
	for i, e := range envs {
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("shard: %s: %w", label(i), err)
		}
		// Each envelope's fingerprint must be satisfied by its own spec
		// bytes, not merely agree with its neighbours': agreeing forged
		// envelopes would otherwise merge.
		if err := e.VerifyFingerprint(); err != nil {
			return nil, fmt.Errorf("%s: %w", label(i), err)
		}
		switch {
		case e.Fingerprint != first.Fingerprint:
			return nil, fmt.Errorf("shard: fingerprint mismatch: %s has %.12s…, %s has %.12s… — parts of different grids",
				label(0), first.Fingerprint, label(i), e.Fingerprint)
		case e.Seed != first.Seed:
			return nil, fmt.Errorf("shard: seed mismatch: %s has %d, %s has %d", label(0), first.Seed, label(i), e.Seed)
		case e.Arch != first.Arch:
			return nil, fmt.Errorf("shard: architecture mismatch: %s ran on %s, %s on %s — float results are only bit-identical within one architecture",
				label(0), first.Arch, label(i), e.Arch)
		case e.Total != first.Total:
			return nil, fmt.Errorf("shard: total mismatch: %s has %d, %s has %d", label(0), first.Total, label(i), e.Total)
		case e.Shards != first.Shards:
			return nil, fmt.Errorf("shard: plan mismatch: %s is %d-way, %s is %d-way", label(0), first.Shards, label(i), e.Shards)
		case !bytes.Equal(e.Spec, first.Spec):
			// The fingerprint hashes the spec, so envelopes that agree on
			// the fingerprint but not the bytes are corrupt or forged.
			return nil, fmt.Errorf("shard: spec mismatch between %s and %s", label(0), label(i))
		}
	}
	order := make([]int, len(envs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return envs[order[a]].Shard < envs[order[b]].Shard })
	rows := make([]json.RawMessage, first.Total)
	owner := make([]int, first.Total) // envelope position that delivered each job
	seen := make([]bool, first.Total)
	var cached []int
	for _, ei := range order {
		e := envs[ei]
		for j, idx := range e.Indices {
			if seen[idx] {
				return nil, fmt.Errorf("shard: job %d delivered twice, by %s and %s",
					idx, label(owner[idx]), label(ei))
			}
			seen[idx] = true
			owner[idx] = ei
			rows[idx] = e.Rows[j]
		}
		cached = append(cached, e.Cached...)
	}
	if missing := missingShards(envs, seen, first); missing != "" {
		return nil, fmt.Errorf("shard: incomplete merge set: %s — run the missing shard(s) and merge again, or resume the dispatch directory", missing)
	}
	sort.Ints(cached)
	return &Merged{
		Fingerprint: first.Fingerprint,
		Spec:        first.Spec,
		Arch:        first.Arch,
		Seed:        first.Seed,
		Total:       first.Total,
		Rows:        rows,
		Cached:      cached,
	}, nil
}

// missingShards summarizes incomplete coverage in terms of the shard
// indices a user would re-run: the plan positions absent from the set.
// When every plan position is present yet jobs are still uncovered (an
// envelope dropped rows), it falls back to naming the missing jobs.
func missingShards(envs []*Envelope, seen []bool, first *Envelope) string {
	var missingJobs []int
	for idx, ok := range seen {
		if !ok {
			missingJobs = append(missingJobs, idx)
		}
	}
	if len(missingJobs) == 0 {
		return ""
	}
	present := make(map[int]bool, len(envs))
	for _, e := range envs {
		present[e.Shard] = true
	}
	var absent []string
	for i := 0; i < first.Shards; i++ {
		if !present[i] {
			absent = append(absent, fmt.Sprintf("%d", i))
		}
	}
	if len(absent) > 0 {
		return fmt.Sprintf("missing shard(s) %s of %d", strings.Join(absent, ", "), first.Shards)
	}
	return fmt.Sprintf("all %d shards present but %d job(s) uncovered (first: job %d)",
		first.Shards, len(missingJobs), missingJobs[0])
}
