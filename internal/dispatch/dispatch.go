// Package dispatch schedules the shards of one experiment grid onto
// worker subprocesses on the local machine and merges their envelopes —
// the coordinator layer between internal/shard's passive envelopes and
// a future multi-host (SSH/k8s) scheduler, which will reuse the same
// manifest/part-file protocol with a different Spawn.
//
// A dispatch directory is the unit of resumability. It holds:
//
//	manifest.json   the normalized spec, shard count, grid fingerprint,
//	                and result-cache directory — everything a worker (or
//	                a later resume) needs, with no other state
//	part-NNN.json   one validated envelope per completed shard
//
// Both are written atomically, so a dispatcher or worker killed at any
// instant leaves either a complete file or nothing. Run therefore never
// distinguishes "first attempt" from "resume after a crash": it scans
// the directory, reuses every envelope that still validates against the
// manifest, and runs only the shards that are missing. Combined with the
// result cache (internal/store) — which the workers consult cell by cell
// — an interrupted run resumes from whatever partial envelopes and
// cached cells exist instead of starting over, and the merged output is
// byte-identical (timing aside) to a serial cold run.
package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fairbench/internal/experiments"
	"fairbench/internal/runner"
	"fairbench/internal/shard"
	"fairbench/internal/store"
)

// ManifestVersion is the manifest schema version; readers reject other
// versions rather than guessing.
const ManifestVersion = 1

// ManifestName is the manifest's file name inside a dispatch directory.
const ManifestName = "manifest.json"

// Manifest is the durable identity of one dispatched run. It pins the
// normalized spec and the fingerprint the grid materialized to when the
// run started, so a resume with a drifted build fails loudly instead of
// merging incompatible parts.
type Manifest struct {
	Version     int              `json:"version"`
	Spec        experiments.Spec `json:"spec"`
	Shards      int              `json:"shards"`
	Fingerprint string           `json:"fingerprint"`
	// CacheDir is the result-cache directory workers consult, empty for
	// cacheless runs. Recorded here so resume uses the same cache.
	CacheDir string `json:"cacheDir,omitempty"`
	// RemoteStore is the shared HTTP cache URL workers layer behind
	// CacheDir (see store.OpenBackend), empty for local-only runs.
	// Recorded here so every worker — including ones spawned on other
	// machines by transports that ship the manifest — writes its cells
	// through to the same fleet-wide cache a resume would read.
	RemoteStore string `json:"remoteStore,omitempty"`
	// Ranges, when present, is an explicit shard plan: worker i executes
	// Ranges[i] instead of slice i of the uniform aligned split. The
	// cache-aware scheduler (internal/sched) records its plan here so
	// that workers, resumes, and the merge all agree on the boundaries
	// it chose at plan time; absent on plain dispatch manifests. When
	// present it must hold exactly Shards ranges.
	Ranges []shard.Range `json:"ranges,omitempty"`
}

// Write atomically persists the manifest to path.
func (m *Manifest) Write(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := store.WriteFileAtomic(path, data); err != nil {
		return fmt.Errorf("dispatch: %w", err)
	}
	return nil
}

// PartName returns the envelope file name for shard i.
func PartName(i int) string { return fmt.Sprintf("part-%03d.json", i) }

// SpawnFunc builds the command for one worker attempt. The command must
// run the equivalent of Worker(manifestPath, shard, outPath): load the
// manifest, execute the shard (consulting the manifest's cache), and
// atomically write the envelope to outPath. The default spawner re-execs
// the current binary as `<self> worker -manifest M -shard I -out O`,
// which the fairbench CLI implements; a library embedder whose binary
// has no such subcommand must supply its own.
type SpawnFunc func(manifestPath string, shard int, outPath string) (*exec.Cmd, error)

// Options configures one dispatched run.
type Options struct {
	// Dir is the dispatch directory (created if missing). Required.
	Dir string
	// Shards is the k of the k-way split. Defaults to Procs.
	Shards int
	// Procs caps how many worker subprocesses run concurrently.
	// Defaults to the runner's parallelism (GOMAXPROCS unless overridden).
	Procs int
	// Retries is how many times a failed shard is re-spawned before the
	// run gives up on it (0 = one attempt only). Other shards keep
	// running either way; a shard that exhausts its attempts is reported
	// missing so a later resume can pick it up.
	Retries int
	// CacheDir, when set, is recorded in the manifest and consulted by
	// every worker, making retries and resumes incremental at cell
	// granularity.
	CacheDir string
	// RemoteStore, when set, is the shared HTTP cache URL recorded in
	// the manifest: workers open a tiered store (CacheDir in front, this
	// URL behind) so computed cells land in the fleet-wide cache and
	// cells computed elsewhere are served instead of recomputed.
	RemoteStore string
	// Spawn overrides how worker subprocesses are launched (see
	// SpawnFunc). Nil uses the self-exec default.
	Spawn SpawnFunc
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// Report describes what a dispatched run actually did — the provenance a
// caller needs to verify claims like "the warm re-run computed nothing".
type Report struct {
	Fingerprint string
	Shards      int
	// Reused lists shards whose envelope already existed in the
	// directory and validated against the manifest.
	Reused []int
	// Ran lists shards executed by worker subprocesses this invocation.
	Ran []int
	// Attempts maps each shard in Ran to how many spawns it took.
	Attempts map[int]int
	// Failed lists shards still missing after retries were exhausted.
	Failed []int
	// CellsComputed and CellsCached split the grid's cells by who did
	// the work, summed over all envelopes (reused and fresh): cached
	// cells were served from the result store, computed ones were
	// evaluated by some worker this run or a previous one.
	CellsComputed, CellsCached int
}

// Run dispatches the spec's grid as opts.Shards shard subprocesses, at
// most opts.Procs at a time, into opts.Dir, and merges the completed
// envelope set into driver-native output. Envelopes already present and
// valid are reused, so calling Run again on an interrupted directory
// resumes it. On failure the returned error names the shards still
// missing; the directory remains resumable.
func Run(spec experiments.Spec, opts Options) (*experiments.Output, *Report, error) {
	return RunContext(context.Background(), spec, opts)
}

// RunContext is Run under a cancellation context. Once ctx is done no new
// worker attempt starts, every live worker subprocess is killed, and the
// call returns an error wrapping ctx.Err(). Completed envelopes stay on
// disk and workers checkpoint through the result cache, so a cancelled
// dispatch is indistinguishable from a crashed one: Resume picks it up.
func RunContext(ctx context.Context, spec experiments.Spec, opts Options) (*experiments.Output, *Report, error) {
	m, manifestPath, err := prepare(spec, &opts)
	if err != nil {
		return nil, nil, err
	}
	return run(ctx, m, manifestPath, opts)
}

// Resume continues the dispatched run recorded in dir: it loads the
// manifest, verifies the grid still materializes to the recorded
// fingerprint, and re-enters the same scan-spawn-merge loop — shards
// with valid envelopes are kept, the rest run. Procs/Retries/Spawn/Log
// come from opts; the spec, shard count, and cache directory always come
// from the manifest.
func Resume(dir string, opts Options) (*experiments.Output, *Report, error) {
	return ResumeContext(context.Background(), dir, opts)
}

// ResumeContext is Resume under a cancellation context (see RunContext
// for the cancellation semantics).
func ResumeContext(ctx context.Context, dir string, opts Options) (*experiments.Output, *Report, error) {
	manifestPath := filepath.Join(dir, ManifestName)
	m, err := ReadManifest(manifestPath)
	if err != nil {
		return nil, nil, fmt.Errorf("dispatch: %s: %w — nothing to resume (run dispatch first)", dir, err)
	}
	opts.Dir, opts.Shards, opts.CacheDir, opts.RemoteStore = dir, m.Shards, m.CacheDir, m.RemoteStore
	if err := verifyFingerprint(m); err != nil {
		return nil, nil, err
	}
	return run(ctx, m, manifestPath, opts)
}

// prepare normalizes the spec, fills option defaults, and creates or
// re-validates the dispatch directory and its manifest.
func prepare(spec experiments.Spec, opts *Options) (*Manifest, string, error) {
	if opts.Dir == "" {
		return nil, "", fmt.Errorf("dispatch: no dispatch directory")
	}
	if opts.Procs <= 0 {
		opts.Procs = runner.Parallelism()
	}
	if opts.Shards <= 0 {
		opts.Shards = opts.Procs
	}
	ns, err := spec.Normalize()
	if err != nil {
		return nil, "", err
	}
	g, err := experiments.Open(ns)
	if err != nil {
		return nil, "", err
	}
	fp, err := g.Fingerprint()
	if err != nil {
		return nil, "", err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, "", fmt.Errorf("dispatch: %w", err)
	}
	m := &Manifest{
		Version:     ManifestVersion,
		Spec:        ns,
		Shards:      opts.Shards,
		Fingerprint: fp,
		CacheDir:    opts.CacheDir,
		RemoteStore: opts.RemoteStore,
	}
	manifestPath := filepath.Join(opts.Dir, ManifestName)
	if existing, err := ReadManifest(manifestPath); err == nil {
		// The directory already holds a run: it must be this run, or we
		// would silently mix envelopes of different grids.
		if existing.Fingerprint != fp || existing.Shards != opts.Shards {
			return nil, "", fmt.Errorf("dispatch: %s already holds a different run (fingerprint %.12s…, %d shards); use a fresh directory or resume that run",
				opts.Dir, existing.Fingerprint, existing.Shards)
		}
		// The manifest's cache directory is part of the run's identity —
		// workers and resumes must all see one cache — so a conflicting
		// caller-supplied CacheDir is an error, not a silent override.
		if opts.CacheDir != "" && opts.CacheDir != existing.CacheDir {
			return nil, "", fmt.Errorf("dispatch: %s was dispatched with cache directory %q; re-dispatch cannot change it to %q — use a fresh dispatch directory",
				opts.Dir, existing.CacheDir, opts.CacheDir)
		}
		// Same rule for the shared remote cache URL: one run, one store.
		if opts.RemoteStore != "" && opts.RemoteStore != existing.RemoteStore {
			return nil, "", fmt.Errorf("dispatch: %s was dispatched with remote store %q; re-dispatch cannot change it to %q — use a fresh dispatch directory",
				opts.Dir, existing.RemoteStore, opts.RemoteStore)
		}
		m = existing
		opts.CacheDir = existing.CacheDir
		opts.RemoteStore = existing.RemoteStore
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, "", err
	} else if err := m.Write(manifestPath); err != nil {
		return nil, "", err
	}
	return m, manifestPath, nil
}

// ReadManifest loads and validates the manifest at path. It is exported
// for coordinators layered on the dispatch directory protocol (the
// multi-host scheduler in internal/sched reads and writes the same
// manifests, so its directories stay resumable by Resume).
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeManifest(data, path)
}

func decodeManifest(data []byte, label string) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("dispatch: decoding %s: %w", label, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("dispatch: %s has manifest version %d, want %d", label, m.Version, ManifestVersion)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("dispatch: %s records %d shards", label, m.Shards)
	}
	if len(m.Ranges) > 0 && len(m.Ranges) != m.Shards {
		return nil, fmt.Errorf("dispatch: %s records %d shards but a %d-range plan", label, m.Shards, len(m.Ranges))
	}
	return &m, nil
}

// verifyFingerprint re-materializes the manifest's grid and checks it
// still fingerprints as recorded — the guard against resuming with a
// build whose grid definition drifted.
func verifyFingerprint(m *Manifest) error {
	g, err := experiments.Open(m.Spec)
	if err != nil {
		return err
	}
	fp, err := g.Fingerprint()
	if err != nil {
		return err
	}
	if fp != m.Fingerprint {
		return fmt.Errorf("dispatch: manifest fingerprint %.12s… but this build materializes %.12s… — grid definition drift; re-dispatch into a fresh directory",
			m.Fingerprint, fp)
	}
	return nil
}

// run is the shared scan → spawn → merge loop behind Run and Resume.
func run(ctx context.Context, m *Manifest, manifestPath string, opts Options) (*experiments.Output, *Report, error) {
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}
	if opts.Procs <= 0 {
		opts.Procs = runner.Parallelism()
	}
	spawn := opts.Spawn
	if spawn == nil {
		spawn = SelfExec
	}
	rep := &Report{
		Fingerprint: m.Fingerprint,
		Shards:      m.Shards,
		Attempts:    map[int]int{},
	}

	// Scan: classify every shard as done (valid envelope on disk) or
	// pending. Invalid part files are moved aside so the shard re-runs.
	var pending []int
	for i := 0; i < m.Shards; i++ {
		path := filepath.Join(opts.Dir, PartName(i))
		switch err := ValidatePart(path, m, i); {
		case err == nil:
			rep.Reused = append(rep.Reused, i)
		case errors.Is(err, fs.ErrNotExist):
			pending = append(pending, i)
		default:
			bad := path + ".invalid"
			os.Rename(path, bad)
			logf("dispatch: shard %d: discarding invalid envelope (%v), moved to %s", i, err, bad)
			pending = append(pending, i)
		}
	}
	logf("dispatch: %d/%d shards already complete in %s, running %d (procs=%d)",
		len(rep.Reused), m.Shards, opts.Dir, len(pending), opts.Procs)

	// Spawn: the runner pool gives bounded concurrency and collect-all
	// error semantics — one dead shard never stops the others, so a
	// failed run leaves the directory as complete as possible for resume.
	var mu sync.Mutex
	type shardErr struct {
		shard int
		err   error
	}
	var failures []shardErr
	_, runErr := runner.Run(len(pending), runner.Options{Workers: opts.Procs}, func(j int) (struct{}, error) {
		i := pending[j]
		attempts, err := runWorker(ctx, spawn, manifestPath, m, opts.Dir, i, opts.Retries, logf)
		mu.Lock()
		rep.Ran = append(rep.Ran, i)
		rep.Attempts[i] = attempts
		if err != nil {
			failures = append(failures, shardErr{i, err})
		}
		mu.Unlock()
		return struct{}{}, nil // failures are collected above, per shard
	})
	if runErr != nil {
		return nil, rep, runErr
	}
	sort.Ints(rep.Ran)
	if len(failures) > 0 {
		sort.Slice(failures, func(a, b int) bool { return failures[a].shard < failures[b].shard })
		var idxs, msgs []string
		for _, f := range failures {
			rep.Failed = append(rep.Failed, f.shard)
			idxs = append(idxs, strconv.Itoa(f.shard))
			msgs = append(msgs, fmt.Sprintf("shard %d: %v", f.shard, f.err))
		}
		// A cancelled run reports the cancellation itself (errors.Is-able)
		// rather than a retry exhaustion it never attempted.
		if err := ctx.Err(); err != nil {
			return nil, rep, fmt.Errorf("dispatch: cancelled with shard(s) %s still missing — `fairbench resume -dir %s` will pick up from the %d completed shard(s): %w",
				strings.Join(idxs, ", "), opts.Dir, m.Shards-len(failures), err)
		}
		return nil, rep, fmt.Errorf("dispatch: shard(s) %s still missing after %d attempt(s) each — `fairbench resume -dir %s` will pick up from the %d completed shard(s)\n%s",
			strings.Join(idxs, ", "), opts.Retries+1, opts.Dir, m.Shards-len(failures), strings.Join(msgs, "\n"))
	}

	// Merge: read every envelope back through the named path so any
	// residual inconsistency is attributed to its file.
	envs := make([]*shard.Envelope, m.Shards)
	names := make([]string, m.Shards)
	for i := 0; i < m.Shards; i++ {
		path := filepath.Join(opts.Dir, PartName(i))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, rep, fmt.Errorf("dispatch: %w", err)
		}
		if envs[i], err = shard.Decode(data); err != nil {
			return nil, rep, fmt.Errorf("dispatch: %s: %w", path, err)
		}
		names[i] = path
		rep.CellsCached += len(envs[i].Cached)
		rep.CellsComputed += len(envs[i].Indices) - len(envs[i].Cached)
	}
	out, err := experiments.MergeShardsNamed(envs, names)
	if err != nil {
		return nil, rep, err
	}
	logf("dispatch: merged %d shards (cells computed=%d cached=%d)",
		m.Shards, rep.CellsComputed, rep.CellsCached)
	return out, rep, nil
}

// runWorker executes one shard via subprocess, retrying up to retries
// extra times, and returns how many attempts it took. A done ctx stops
// the retry loop: cancellation is not a worker failure to retry around.
func runWorker(ctx context.Context, spawn SpawnFunc, manifestPath string, m *Manifest, dir string, i, retries int,
	logf func(string, ...any)) (attempts int, err error) {
	outPath := filepath.Join(dir, PartName(i))
	for attempts = 1; ; attempts++ {
		err = oneAttempt(ctx, spawn, manifestPath, m, outPath, i)
		if err == nil {
			return attempts, nil
		}
		if attempts > retries || ctx.Err() != nil {
			return attempts, err
		}
		logf("dispatch: shard %d attempt %d failed (%v), retrying", i, attempts, err)
	}
}

func oneAttempt(ctx context.Context, spawn SpawnFunc, manifestPath string, m *Manifest, outPath string, i int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	os.Remove(outPath) // stale/invalid leftovers must not mask a failure
	cmd, err := spawn(manifestPath, i, outPath)
	if err != nil {
		return err
	}
	stderr := NewBoundedBuffer(0)
	if cmd.Stderr == nil {
		cmd.Stderr = stderr
	}
	if err := runCmd(ctx, cmd); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("worker: %w%s", err, StderrTail(stderr.String()))
	}
	// Trust nothing about the exit status alone: the envelope must exist
	// and validate against the manifest before the shard counts as done.
	if err := ValidatePart(outPath, m, i); err != nil {
		return fmt.Errorf("worker exited 0 but %w", err)
	}
	return nil
}

// runCmd runs cmd to completion, killing the process (and waiting for it)
// when ctx is cancelled first — the dispatcher must never return with live
// worker subprocesses behind it.
func runCmd(ctx context.Context, cmd *exec.Cmd) error {
	if err := cmd.Start(); err != nil {
		return err
	}
	if ctx.Done() == nil {
		return cmd.Wait()
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		cmd.Process.Kill()
		<-done
		return ctx.Err()
	}
}

// stderrBudget caps how much of one attempt's stderr a coordinator
// retains (head + tail around a truncation marker). Without a cap, a
// log-spamming worker balloons the coordinator's memory — one capture
// per attempt, many attempts per run.
const stderrBudget = 8 << 10

// BoundedBuffer is an io.Writer that retains the head and tail of a
// stream within a fixed budget: the first half fills once, the second
// half is a sliding window over the most recent bytes, and everything
// squeezed out between them is counted. String() reassembles the
// capture with a truncation marker naming the dropped byte count, so a
// failure message always shows how much evidence is missing. Safe for
// concurrent use (exec.Cmd writes from its own copier goroutine).
type BoundedBuffer struct {
	mu      sync.Mutex
	limit   int
	head    []byte
	tail    []byte
	dropped int64
}

// NewBoundedBuffer returns a buffer retaining at most limit bytes;
// limit <= 0 uses the coordinators' shared per-attempt budget.
func NewBoundedBuffer(limit int) *BoundedBuffer {
	if limit <= 0 {
		limit = stderrBudget
	}
	if limit < 64 {
		limit = 64
	}
	return &BoundedBuffer{limit: limit}
}

// Write implements io.Writer; it never fails and never grows the
// retained capture past the budget.
func (b *BoundedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(p)
	half := b.limit / 2
	if room := half - len(b.head); room > 0 {
		take := min(room, len(p))
		b.head = append(b.head, p[:take]...)
		p = p[take:]
	}
	if len(p) == 0 {
		return n, nil
	}
	if len(p) >= half {
		b.dropped += int64(len(b.tail)) + int64(len(p)-half)
		b.tail = append(b.tail[:0], p[len(p)-half:]...)
		return n, nil
	}
	if overflow := len(b.tail) + len(p) - half; overflow > 0 {
		b.dropped += int64(overflow)
		b.tail = append(b.tail[:0], b.tail[overflow:]...)
	}
	b.tail = append(b.tail, p...)
	return n, nil
}

// String returns the bounded capture; when bytes were dropped, a marker
// line between head and tail records how many.
func (b *BoundedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dropped == 0 {
		return string(b.head) + string(b.tail)
	}
	return string(b.head) + "\n" + truncationMarker(b.dropped) + "\n" + string(b.tail)
}

// Truncated reports how many bytes the budget squeezed out so far.
func (b *BoundedBuffer) Truncated() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

func truncationMarker(n int64) string {
	return fmt.Sprintf("... [%d stderr bytes dropped] ...", n)
}

func isTruncationMarker(line string) bool {
	return strings.HasPrefix(line, "... [") && strings.HasSuffix(line, " stderr bytes dropped] ...")
}

// StderrTail formats the last few lines of a worker's stderr for
// inclusion in a failure message — shared by every coordinator that
// spawns workers (this package's dispatcher, internal/sched's
// transports).
func StderrTail(s string) string {
	s = strings.TrimSpace(s)
	if s == "" {
		return ""
	}
	lines := strings.Split(s, "\n")
	if len(lines) > 3 {
		kept := lines[len(lines)-3:]
		// A bounded capture's truncation marker must survive the cut: it
		// is the only evidence the worker wrote more than what is shown.
		for _, l := range lines[:len(lines)-3] {
			if isTruncationMarker(l) {
				kept = append([]string{l}, kept...)
				break
			}
		}
		lines = kept
	}
	return "; stderr: " + strings.Join(lines, " | ")
}

// ValidatePart checks that the envelope at path is complete, decodes,
// and belongs to shard i of the manifest's grid — the single part
// acceptance gate shared by the local dispatcher and the multi-host
// scheduler: no envelope counts as done, anywhere, without passing it.
func ValidatePart(path string, m *Manifest, i int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	env, err := shard.Decode(data)
	if err != nil {
		return err
	}
	switch {
	case env.Fingerprint != m.Fingerprint:
		return fmt.Errorf("%s carries fingerprint %.12s…, manifest has %.12s…", path, env.Fingerprint, m.Fingerprint)
	case env.Shard != i || env.Shards != m.Shards:
		return fmt.Errorf("%s is shard %d/%d, expected %d/%d", path, env.Shard, env.Shards, i, m.Shards)
	}
	// Under an explicit plan the envelope must cover exactly Ranges[i]:
	// a same-grid envelope cut on different boundaries (say, copied from
	// another run directory) would otherwise be reused here and poison
	// the merge with duplicate or missing indices on every resume.
	if len(m.Ranges) > 0 {
		r := m.Ranges[i]
		if len(env.Indices) != r.Len() {
			return fmt.Errorf("%s covers %d cells, the manifest's range %d is [%d,%d)", path, len(env.Indices), i, r.Start, r.End)
		}
		for j, idx := range env.Indices {
			if idx != r.Start+j {
				return fmt.Errorf("%s carries cell %d where the manifest's range %d expects %d — envelope cut on different boundaries", path, idx, i, r.Start+j)
			}
		}
	}
	return nil
}

// AcceptPart atomically promotes an attempt file to the shard's part:
// the single point where an attempt's output becomes authoritative.
// The rename happens only after the envelope passes ValidatePart, and
// callers serialize acceptance per range (the multi-host scheduler
// accepts from its single event loop), so a losing or zombie attempt
// can never replace an already-accepted part — a caller that finds the
// range already decided discards the attempt file instead of calling
// this.
func AcceptPart(attemptPath, partPath string, m *Manifest, i int) error {
	if err := ValidatePart(attemptPath, m, i); err != nil {
		return err
	}
	return os.Rename(attemptPath, partPath)
}

// Worker is the subprocess body shared by the CLI's `fairbench worker`
// command and any custom spawner: it loads the manifest, opens the
// manifest's result cache (if any), runs the shard, and atomically
// writes the envelope — so a worker killed at any instant leaves either
// a complete part file or none.
//
// The FAIRBENCH_WORKER_DELAY_MS environment variable, when set, pauses
// the worker before it starts computing. It exists for the
// kill-and-resume end-to-end tests, which need a deterministic window in
// which to SIGKILL a live worker; production runs leave it unset.
func Worker(manifestPath string, shardIdx int, outPath string) error {
	m, err := ReadManifest(manifestPath)
	if err != nil {
		return err
	}
	data, err := workerEnvelope(m, shardIdx)
	if err != nil {
		return err
	}
	return store.WriteFileAtomic(outPath, data)
}

// WorkerIO is Worker over streams: the manifest is read from r and the
// encoded envelope written to w. This is the remote-transport protocol
// (`fairbench worker -manifest - -shard I -out -`): a scheduler can pipe
// the manifest to a worker binary on another machine — over ssh or any
// command runner — and collect the envelope from its stdout, with no
// shared filesystem between them.
func WorkerIO(r io.Reader, shardIdx int, w io.Writer) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("dispatch: reading streamed manifest: %w", err)
	}
	m, err := decodeManifest(data, "streamed manifest")
	if err != nil {
		return err
	}
	env, err := workerEnvelope(m, shardIdx)
	if err != nil {
		return err
	}
	_, err = w.Write(env)
	return err
}

// workerEnvelope is the shared worker body: honor the test-hook delay,
// open the manifest's cache, run the shard — through the manifest's
// explicit range plan when it has one — and return the encoded envelope.
func workerEnvelope(m *Manifest, shardIdx int) ([]byte, error) {
	if ms, err := strconv.Atoi(os.Getenv("FAIRBENCH_WORKER_DELAY_MS")); err == nil && ms > 0 {
		time.Sleep(time.Duration(ms) * time.Millisecond)
	}
	cache, err := store.OpenBackend(m.CacheDir, m.RemoteStore)
	if err != nil {
		return nil, err
	}
	var env *shard.Envelope
	if len(m.Ranges) > 0 {
		env, err = experiments.RunShardPlanned(m.Spec, m.Ranges, shardIdx, cache)
	} else {
		env, err = experiments.RunShardCached(m.Spec, shardIdx, m.Shards, cache)
	}
	if err != nil {
		return nil, err
	}
	if env.Fingerprint != m.Fingerprint {
		return nil, fmt.Errorf("dispatch: this build materializes fingerprint %.12s…, manifest has %.12s… — grid definition drift", env.Fingerprint, m.Fingerprint)
	}
	return env.Encode()
}

// SelfExec is the default SpawnFunc: it launches the current
// executable's `worker` subcommand, the protocol the fairbench CLI
// implements. Exported so other coordinators (internal/sched's local
// transport) spawn workers identically.
func SelfExec(manifestPath string, shard int, outPath string) (*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	return exec.Command(exe, "worker",
		"-manifest", manifestPath, "-shard", strconv.Itoa(shard), "-out", outPath), nil
}
