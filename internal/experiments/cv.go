package experiments

import (
	"fairbench/internal/registry"
	"fairbench/internal/rng"
	"fairbench/internal/stats"
	"fairbench/internal/synth"
)

// CrossValidate reproduces the 5-fold cross-validation tables (Figures
// 16-18): every approach's metrics averaged over k folds.
func CrossValidate(src *synth.Source, k int, seed int64) ([]Row, error) {
	folds := src.Data.KFold(k, rng.New(seed))
	names := append([]string{"LR"}, registry.Names...)
	acc := make([]Row, len(names))
	for fi, fold := range folds {
		var baseline float64
		for ni, name := range names {
			a, err := registry.New(name, registry.Config{Graph: src.Graph, Seed: seed + int64(fi)})
			if err != nil {
				return nil, err
			}
			row, err := Evaluate(a, fold.Train, fold.Test, src.Graph)
			if err != nil {
				return nil, err
			}
			if name == "LR" {
				baseline = row.Seconds
			}
			row.Overhead = row.Seconds - baseline
			addRow(&acc[ni], row)
		}
	}
	inv := 1 / float64(k)
	for i := range acc {
		scaleRow(&acc[i], inv)
	}
	return acc, nil
}

func addRow(dst *Row, src Row) {
	if dst.Approach == "" {
		dst.Approach, dst.Stage, dst.Targets = src.Approach, src.Stage, src.Targets
	}
	dst.Correct.Accuracy += src.Correct.Accuracy
	dst.Correct.Precision += src.Correct.Precision
	dst.Correct.Recall += src.Correct.Recall
	dst.Correct.F1 += src.Correct.F1
	dst.Fair.DIStar += src.Fair.DIStar
	dst.Fair.TPRB += src.Fair.TPRB
	dst.Fair.TNRB += src.Fair.TNRB
	dst.Fair.ID += src.Fair.ID
	dst.Fair.TE += src.Fair.TE
	dst.Fair.NDE += src.Fair.NDE
	dst.Fair.NIE += src.Fair.NIE
	dst.Seconds += src.Seconds
	dst.Overhead += src.Overhead
}

func scaleRow(r *Row, f float64) {
	r.Correct.Accuracy *= f
	r.Correct.Precision *= f
	r.Correct.Recall *= f
	r.Correct.F1 *= f
	r.Fair.DIStar *= f
	r.Fair.TPRB *= f
	r.Fair.TNRB *= f
	r.Fair.ID *= f
	r.Fair.TE *= f
	r.Fair.NDE *= f
	r.Fair.NIE *= f
	r.Seconds *= f
	r.Overhead *= f
}

// StabilityRow summarizes an approach's variability over repeated random
// folds (Figure 22): mean and standard deviation per headline metric.
type StabilityRow struct {
	Approach          string
	Stage             string
	AccMean, AccStd   float64
	DIMean, DIStd     float64
	TPRBMean, TPRBStd float64
	F1Mean, F1Std     float64
}

// Stability reproduces Figure 22: runs random 2/3-1/3 folds and reports
// per-metric variance.
func Stability(src *synth.Source, runs int, seed int64) ([]StabilityRow, error) {
	names := append([]string{"LR"}, registry.Names...)
	samples := map[string]*struct{ acc, di, tprb, f1 []float64 }{}
	var stages []string
	for ri := 0; ri < runs; ri++ {
		train, test := src.Data.Split(2.0/3, rng.New(seed+int64(ri)))
		for _, name := range names {
			a, err := registry.New(name, registry.Config{Graph: src.Graph, Seed: seed + int64(ri)})
			if err != nil {
				return nil, err
			}
			row, err := Evaluate(a, train, test, src.Graph)
			if err != nil {
				return nil, err
			}
			s := samples[name]
			if s == nil {
				s = &struct{ acc, di, tprb, f1 []float64 }{}
				samples[name] = s
				stages = append(stages, row.Stage)
			}
			s.acc = append(s.acc, row.Correct.Accuracy)
			s.di = append(s.di, row.Fair.DIStar)
			s.tprb = append(s.tprb, row.Fair.TPRB)
			s.f1 = append(s.f1, row.Correct.F1)
		}
	}
	var out []StabilityRow
	for ni, name := range names {
		s := samples[name]
		out = append(out, StabilityRow{
			Approach: name,
			Stage:    stages[ni],
			AccMean:  stats.Mean(s.acc), AccStd: stats.Std(s.acc),
			DIMean: stats.Mean(s.di), DIStd: stats.Std(s.di),
			TPRBMean: stats.Mean(s.tprb), TPRBStd: stats.Std(s.tprb),
			F1Mean: stats.Mean(s.f1), F1Std: stats.Std(s.f1),
		})
	}
	return out, nil
}

// EfficiencyPoint is one (training size, metrics) measurement.
type EfficiencyPoint struct {
	Size int
	Row  Row
}

// DataEfficiency reproduces Figure 23: every approach is retrained on
// growing training samples and evaluated on a fixed held-out test set.
func DataEfficiency(src *synth.Source, sizes []int, names []string, seed int64) (map[string][]EfficiencyPoint, error) {
	if names == nil {
		names = append([]string{"LR"}, registry.Names...)
	}
	trainPool, test := src.Data.Split(0.7, rng.New(seed))
	out := map[string][]EfficiencyPoint{}
	for _, n := range sizes {
		train := trainPool.Sample(n, rng.New(seed+int64(n)))
		for _, name := range names {
			a, err := registry.New(name, registry.Config{Graph: src.Graph, Seed: seed})
			if err != nil {
				return nil, err
			}
			row, err := Evaluate(a, train, test, src.Graph)
			if err != nil {
				return nil, err
			}
			out[name] = append(out[name], EfficiencyPoint{Size: n, Row: row})
		}
	}
	return out, nil
}
