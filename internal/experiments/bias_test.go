package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fairbench/internal/runner"
	"fairbench/internal/shard"
	"fairbench/internal/synth"
)

// biasSweepSpecs is the acceptance sweep: two bias kinds at three rates
// each over one fig7 grid. Every spec must materialize its own
// fingerprint — and therefore its own cache partition and merge
// identity.
func biasSweepSpecs() []Spec {
	base := Spec{Experiment: "fig7", Dataset: "german", N: 200, Seed: 5}
	specs := make([]Spec, 0, 6)
	for _, r := range [][2]float64{{0.3, 0.1}, {0.15, 0.05}, {0.45, 0.2}} {
		s := base
		s.Bias, s.BiasRate, s.BiasRateNeg = BiasUnder, r[0], r[1]
		specs = append(specs, s)
	}
	for _, nu := range []float64{0.1, 0.2, 0.3} {
		s := base
		s.Bias, s.BiasRate = BiasLabel, nu
		specs = append(specs, s)
	}
	return specs
}

func TestBiasSpecNormalize(t *testing.T) {
	base := Spec{Experiment: "fig7", Dataset: "german", N: 200, Seed: 5}
	bad := []Spec{
		func() Spec { s := base; s.BiasRate = 0.2; return s }(),                       // rate without a model
		func() Spec { s := base; s.Bias = "under"; return s }(),                       // model without a rate
		func() Spec { s := base; s.Bias = "under"; s.BiasRate = 1; return s }(),       // β⁺ out of range
		func() Spec { s := base; s.Bias = "label"; s.BiasRate = 1.5; return s }(),     // ν out of range
		func() Spec { s := base; s.Bias = "shift"; s.BiasRate = 0.2; return s }(),     // unknown model
		func() Spec { s := base; s.Bias = "under"; s.BiasRateNeg = -0.1; return s }(), // β⁻ negative
	}
	for i, s := range bad {
		if _, err := s.Normalize(); err == nil {
			t.Errorf("spec %d (%+v) normalized without error", i, s)
		}
	}
	ns, err := Spec{Experiment: "fig7", Dataset: "german", N: 200, Seed: 5,
		Bias: " Label ", BiasRate: 0.2, BiasRateNeg: 0.3}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if ns.Bias != BiasLabel || ns.BiasRateNeg != 0 {
		t.Fatalf("label normalization = %+v, want bias=label with β⁻ cleared", ns)
	}
}

// TestBiasSweepFingerprintsDisjoint: every bias setting — including
// clean — must produce a distinct grid fingerprint, so cached cells and
// shard envelopes can never cross bias settings.
func TestBiasSweepFingerprintsDisjoint(t *testing.T) {
	specs := append(biasSweepSpecs(),
		Spec{Experiment: "fig7", Dataset: "german", N: 200, Seed: 5})
	seen := map[string]int{}
	for i, s := range specs {
		fp, err := mustOpen(t, s).Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[fp]; dup {
			t.Fatalf("specs %d and %d share fingerprint %.12s…", prev, i, fp)
		}
		seen[fp] = i
	}
}

// TestBiasedOpenMaterializesIdenticalData is the determinism property
// under the whole axis: injection is a pure function of the spec, so
// every Open — in this process or any worker on any host — slices
// bit-identical train/test data. This is what makes a biased grid
// shardable at all.
func TestBiasedOpenMaterializesIdenticalData(t *testing.T) {
	for _, spec := range biasSweepSpecs() {
		a, b := mustOpen(t, spec), mustOpen(t, spec)
		if len(a.slices) == 0 || len(a.slices) != len(b.slices) {
			t.Fatalf("%s: %d vs %d slices", spec.Bias, len(a.slices), len(b.slices))
		}
		for i := range a.slices {
			if !sameData(a.slices[i].train, b.slices[i].train) ||
				!sameData(a.slices[i].test, b.slices[i].test) {
				t.Fatalf("bias %s rate %g: slice %d differs between two Opens",
					spec.Bias, spec.BiasRate, i)
			}
		}
	}
}

// TestBiasedShardMergeMatchesSerial extends the PR-2 acceptance gate to
// the bias axis: a biased grid run as k shards (envelopes serialized
// across the process boundary) must merge byte-identical to serial, for
// both bias kinds and several shard counts.
func TestBiasedShardMergeMatchesSerial(t *testing.T) {
	sweep := biasSweepSpecs()
	for _, tc := range []struct {
		spec   Spec
		shards []int
	}{
		{sweep[0], []int{2, 3, 5}}, // under-representation
		{sweep[4], []int{3}},       // label bias
	} {
		spec := tc.spec
		t.Run(spec.Bias, func(t *testing.T) {
			serial, err := mustOpen(t, spec).RunAll()
			if err != nil {
				t.Fatal(err)
			}
			want := canonical(t, serial)
			for _, k := range tc.shards {
				envs := make([]*shard.Envelope, k)
				for i := 0; i < k; i++ {
					env, err := RunShard(spec, i, k)
					if err != nil {
						t.Fatalf("shard %d/%d: %v", i, k, err)
					}
					data, err := env.Encode()
					if err != nil {
						t.Fatal(err)
					}
					if envs[i], err = shard.Decode(data); err != nil {
						t.Fatal(err)
					}
				}
				merged, err := MergeShards(envs)
				if err != nil {
					t.Fatal(err)
				}
				if got := canonical(t, merged); !bytes.Equal(want, got) {
					t.Fatalf("k=%d diverges from serial:\nserial: %.300s\nmerged: %.300s", k, want, got)
				}
			}
		})
	}
}

// TestBiasedGridStableAcrossParallelism: the worker-pool size must not
// leak into a biased grid's results (injection happens once in Open,
// not per worker).
func TestBiasedGridStableAcrossParallelism(t *testing.T) {
	defer runner.SetParallelism(0)
	spec := biasSweepSpecs()[0]
	runner.SetParallelism(1)
	serial, err := mustOpen(t, spec).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	runner.SetParallelism(4)
	pooled, err := mustOpen(t, spec).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonical(t, serial), canonical(t, pooled)) {
		t.Fatal("biased grid diverges across -parallel settings")
	}
}

// TestBiasCacheIsolation: a warm store answers a re-run of the same
// biased spec entirely, while the same grid at a different bias rate
// shares no entries — zero hits, zero cached cells.
func TestBiasCacheIsolation(t *testing.T) {
	spec := Spec{Experiment: "fig23", Dataset: "compas", N: 300, Seed: 6,
		Sizes: []int{60, 120}, Names: []string{"LR", "KamCal-DP"},
		Bias: BiasLabel, BiasRate: 0.2}
	s := openStore(t)

	cold, err := RunShardCached(spec, 0, 1, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Cached) != 0 {
		t.Fatalf("cold run claims %d cached cells", len(cold.Cached))
	}

	warm, err := RunShardCached(spec, 0, 1, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Cached) != len(warm.Indices) {
		t.Fatalf("warm run cached %d of %d cells, want all", len(warm.Cached), len(warm.Indices))
	}
	a, err := MergeShards([]*shard.Envelope{cold})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MergeShards([]*shard.Envelope{warm})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonical(t, a), canonical(t, b)) {
		t.Fatal("warm biased run diverges from cold")
	}

	other := spec
	other.BiasRate = 0.3
	before := s.Counters()
	env, err := RunShardCached(other, 0, 1, s)
	if err != nil {
		t.Fatal(err)
	}
	if env.Fingerprint == cold.Fingerprint {
		t.Fatal("different bias rates share a fingerprint")
	}
	if len(env.Cached) != 0 {
		t.Fatalf("different-rate run was served %d cells from the cache", len(env.Cached))
	}
	if hits := s.Counters().Hits - before.Hits; hits != 0 {
		t.Fatalf("different-rate run hit the store %d times, want 0", hits)
	}
}

// TestGoldenRowsBiasCOMPAS pins one bias-swept fig7 grid — both bias
// kinds on the same COMPAS slice — to a checked-in file, the same
// byte-for-byte guard TestGoldenRowsCOMPAS provides for clean data. A
// drift here means injection decisions moved (a Derive change, a salt
// change, a reordered keep-list), which silently invalidates every
// cached biased grid.
func TestGoldenRowsBiasCOMPAS(t *testing.T) {
	base := Spec{Experiment: "fig7", Dataset: "compas", N: 300, Seed: 42}
	golden := map[string][]Row{}
	for _, tc := range []struct {
		kind          string
		rate, rateNeg float64
	}{
		{BiasUnder, 0.4, 0.2},
		{BiasLabel, 0.2, 0},
	} {
		spec := base
		spec.Bias, spec.BiasRate, spec.BiasRateNeg = tc.kind, tc.rate, tc.rateNeg
		out, err := mustOpen(t, spec).RunAll()
		if err != nil {
			t.Fatal(err)
		}
		rows := out.Rows
		for i := range rows {
			rows[i].Seconds, rows[i].Overhead = 0, 0
		}
		golden[tc.kind] = rows
	}
	got, err := json.MarshalIndent(golden, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden_compas_bias_seed42.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("biased golden rows drifted from %s — injection or metrics changed.\n"+
			"If the change is intended, regenerate with -update and justify the diff in review.\n%s",
			path, goldenDiff(want, got))
	}
}

// TestBiasedSourceHasNoProvenance: a biased grid's data must not carry
// stock (dataset, n, seed) provenance — the driver-level cache reroute
// would otherwise serve clean-data results for biased data.
func TestBiasedSourceHasNoProvenance(t *testing.T) {
	clean := synth.German(200, 5)
	if clean.Dataset == "" {
		t.Fatal("stock source unexpectedly has no provenance")
	}
	ns, err := biasSweepSpecs()[0].Normalize()
	if err != nil {
		t.Fatal(err)
	}
	src, err := biasedSource(clean, ns)
	if err != nil {
		t.Fatal(err)
	}
	if src.Dataset != "" || src.N != 0 || src.Seed != 0 {
		t.Fatalf("biased source carries provenance Dataset=%q N=%d Seed=%d", src.Dataset, src.N, src.Seed)
	}
}
