// Modelzoo: pair a pre-processing repair (Feld) and a post-processing
// adjustment (Kam-Kar) with all five classifier families of Section 4.5
// and observe that pre-processing results swing with the model while
// post-processing barely moves.
//
//	go run ./examples/modelzoo
package main

import (
	"fmt"
	"log"
	"os"

	"fairbench"
	"fairbench/internal/report"
)

func main() {
	src := fairbench.Adult(8000, 4)
	train, test := fairbench.Split(src.Data, 0.7, 13)

	models := []string{"LR", "SVM", "kNN", "RF", "MLP"}
	approaches := []string{"Feld-DP", "KamKar-DP"}

	t := &report.Table{
		Title:   "Model sensitivity on Adult (8k sample)",
		Headers: []string{"approach", "model", "accuracy", "DI*"},
	}
	spread := map[string][2]float64{} // approach -> min/max DI*
	for _, ap := range approaches {
		for _, m := range models {
			a, err := fairbench.NewApproachWithModel(ap, m, src.Graph, 3)
			if err != nil {
				log.Fatal(err)
			}
			row, err := fairbench.Evaluate(a, train, test, src.Graph)
			if err != nil {
				log.Fatal(err)
			}
			t.Add(ap, m, report.F(row.Correct.Accuracy), report.F(row.Fair.DIStar))
			mm, ok := spread[ap]
			if !ok {
				mm = [2]float64{row.Fair.DIStar, row.Fair.DIStar}
			}
			if row.Fair.DIStar < mm[0] {
				mm[0] = row.Fair.DIStar
			}
			if row.Fair.DIStar > mm[1] {
				mm[1] = row.Fair.DIStar
			}
			spread[ap] = mm
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, ap := range approaches {
		mm := spread[ap]
		fmt.Printf("%s: DI* spread across models = %.3f\n", ap, mm[1]-mm[0])
	}
	fmt.Println("\nPre-processing repairs the data and then trusts whatever model trains")
	fmt.Println("on it, so its fairness swings with the model; post-processing wraps the")
	fmt.Println("model's output and is nearly invariant (Section 4.5).")
}
