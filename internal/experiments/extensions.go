package experiments

import (
	"fairbench/internal/registry"
	"fairbench/internal/rng"
	"fairbench/internal/synth"
)

// Extensions reproduces the appendix's Figure 15: the three additional
// variants (Madras^dp, Agarwal^dp, Agarwal^eo) evaluated on one dataset
// alongside the baseline, with the same protocol as Figure 7.
func Extensions(src *synth.Source, seed int64) ([]Row, error) {
	train, test := src.Data.Split(0.7, rng.New(seed))
	names := append([]string{"LR"}, registry.ExtendedNames...)
	return evalNamed(names, train, test, src.Graph, seed)
}
