// Package shard lets one experiment job grid fan across processes or
// hosts and come back together deterministically. It is deliberately
// generic: it knows nothing about approaches, datasets, or metrics — only
// about a grid of `total` jobs identified by a fingerprint, split into
// contiguous index ranges, with each range's results carried in a
// JSON-serializable envelope.
//
// The determinism contract extends internal/runner's: a grid cell's
// result depends only on its global job index and the grid's spec (which
// the fingerprint hashes), never on which process computed it. Under that
// contract Merge reassembles the exact rows a single-process run would
// have produced, in the same order — the shard-equivalence tests in
// internal/experiments verify this for every experiment driver.
package shard

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"
)

// Version is the envelope schema version. Decode rejects envelopes from a
// different version rather than guessing at field semantics.
const Version = 1

// Range is one contiguous, half-open slice [Start, End) of a grid's job
// index space.
type Range struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Len returns the number of jobs in the range.
func (r Range) Len() int { return r.End - r.Start }

// Plan splits a grid of n jobs into k contiguous ranges covering [0, n)
// in order. Ranges are balanced: the first n%k shards hold one extra job.
// When k > n the trailing shards are empty — still valid, so a fixed
// shard topology can be reused across grids of any size.
func Plan(n, k int) ([]Range, error) {
	if n < 0 {
		return nil, fmt.Errorf("shard: negative job count %d", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("shard: shard count %d, want >= 1", k)
	}
	base, extra := n/k, n%k
	out := make([]Range, k)
	start := 0
	for i := range out {
		size := base
		if i < extra {
			size++
		}
		out[i] = Range{Start: start, End: start + size}
		start += size
	}
	return out, nil
}

// PlanAligned is Plan with shard boundaries constrained to multiples of
// align: it balances the n/align blocks across the k shards, so a block
// of align consecutive jobs never straddles two shards. Grids whose
// post-pass combines measurements within a block — the pure-timing
// scalability grids subtract a per-slice baseline column from the other
// columns of the same slice — need this so a slice is always timed on a
// single machine. n must be a multiple of align.
func PlanAligned(n, k, align int) ([]Range, error) {
	if align <= 1 {
		return Plan(n, k)
	}
	if n%align != 0 {
		return nil, fmt.Errorf("shard: job count %d not a multiple of alignment %d", n, align)
	}
	blocks, err := Plan(n/align, k)
	if err != nil {
		return nil, err
	}
	for i := range blocks {
		blocks[i].Start *= align
		blocks[i].End *= align
	}
	return blocks, nil
}

// Fingerprint hashes a grid's identity: its canonical spec encoding plus
// its total job count. Two runs may only be merged when their
// fingerprints match — equal fingerprints mean the same experiment,
// dataset, seed, and grid shape, so cell i is the same computation in
// both.
func Fingerprint(spec []byte, total int) string {
	h := sha256.New()
	fmt.Fprintf(h, "fairbench-grid-v%d\n%d\n", Version, total)
	h.Write(spec)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Envelope is the partial result of one shard of a grid run: the rows it
// computed, the global job indices they belong to, and enough identity
// (spec, seed, fingerprint) for Merge to validate that all parts came
// from the same grid definition.
type Envelope struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	// Spec is the canonical encoding of the grid definition (the bytes
	// Fingerprint hashed), carried so the merging process can rebuild the
	// grid without out-of-band state.
	Spec json.RawMessage `json:"spec"`
	// Arch records GOARCH of the producing process. Float arithmetic is
	// architecture-sensitive (e.g. FMA contraction on arm64), so the
	// bit-identical merge contract only holds within one architecture;
	// Merge rejects mixed-arch sets rather than silently passing through
	// low-bit drift.
	Arch string `json:"arch"`
	Seed int64  `json:"seed"`
	// Shard/Shards record the plan position (shard Shard of Shards);
	// Total is the whole grid's job count.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	Total  int `json:"total"`
	// Indices[j] is the global job index of Rows[j].
	Indices []int             `json:"indices"`
	Rows    []json.RawMessage `json:"rows"`
}

// Validate checks an envelope's internal consistency.
func (e *Envelope) Validate() error {
	switch {
	case e.Version != Version:
		return fmt.Errorf("shard: envelope version %d, want %d", e.Version, Version)
	case e.Fingerprint == "":
		return fmt.Errorf("shard: envelope has no fingerprint")
	case e.Shards <= 0 || e.Shard < 0 || e.Shard >= e.Shards:
		return fmt.Errorf("shard: invalid plan position %d/%d", e.Shard, e.Shards)
	case e.Arch == "":
		return fmt.Errorf("shard: envelope records no architecture")
	case e.Total < 0:
		return fmt.Errorf("shard: negative total %d", e.Total)
	case len(e.Indices) != len(e.Rows):
		return fmt.Errorf("shard: %d indices for %d rows", len(e.Indices), len(e.Rows))
	}
	for _, idx := range e.Indices {
		if idx < 0 || idx >= e.Total {
			return fmt.Errorf("shard: job index %d outside grid [0,%d)", idx, e.Total)
		}
	}
	return nil
}

// Decode parses and validates a serialized envelope.
func Decode(data []byte) (*Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("shard: decoding envelope: %w", err)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// Encode serializes an envelope after validating it.
func (e *Envelope) Encode() ([]byte, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(e, "", "  ")
}

// Merged is the reassembled output of a complete shard set: every row of
// the grid in job-index order, plus the common identity fields.
type Merged struct {
	Fingerprint string
	Spec        json.RawMessage
	Arch        string
	Seed        int64
	Total       int
	// Rows[i] is the result of global job i.
	Rows []json.RawMessage
}

// Merge reassembles shard envelopes into the full grid's rows in job
// order. It rejects mismatched fingerprints (parts of different grids),
// disagreeing seeds/totals/shard counts, duplicate job indices, and
// incomplete coverage — a merge either reproduces exactly the
// single-process result set or fails loudly.
func Merge(envs []*Envelope) (*Merged, error) {
	if len(envs) == 0 {
		return nil, fmt.Errorf("shard: no envelopes to merge")
	}
	first := envs[0]
	for _, e := range envs {
		if err := e.Validate(); err != nil {
			return nil, err
		}
		switch {
		case e.Fingerprint != first.Fingerprint:
			return nil, fmt.Errorf("shard: fingerprint mismatch: shard %d has %.12s…, shard %d has %.12s…",
				first.Shard, first.Fingerprint, e.Shard, e.Fingerprint)
		case e.Seed != first.Seed:
			return nil, fmt.Errorf("shard: seed mismatch: %d vs %d", first.Seed, e.Seed)
		case e.Arch != first.Arch:
			return nil, fmt.Errorf("shard: architecture mismatch: shard %d ran on %s, shard %d on %s — float results are only bit-identical within one architecture",
				first.Shard, first.Arch, e.Shard, e.Arch)
		case e.Total != first.Total:
			return nil, fmt.Errorf("shard: total mismatch: %d vs %d", first.Total, e.Total)
		case e.Shards != first.Shards:
			return nil, fmt.Errorf("shard: plan mismatch: %d-way vs %d-way", first.Shards, e.Shards)
		case !bytes.Equal(e.Spec, first.Spec):
			// The fingerprint hashes the spec, so envelopes that agree on
			// the fingerprint but not the bytes are corrupt or forged.
			return nil, fmt.Errorf("shard: spec mismatch between shards %d and %d", first.Shard, e.Shard)
		}
	}
	sorted := append([]*Envelope(nil), envs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard < sorted[j].Shard })
	rows := make([]json.RawMessage, first.Total)
	seen := make([]bool, first.Total)
	for _, e := range sorted {
		for j, idx := range e.Indices {
			if seen[idx] {
				return nil, fmt.Errorf("shard: job %d delivered twice", idx)
			}
			seen[idx] = true
			rows[idx] = e.Rows[j]
		}
	}
	for idx, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("shard: job %d missing from the merge set (have %d shards of %d)",
				idx, len(envs), first.Shards)
		}
	}
	return &Merged{
		Fingerprint: first.Fingerprint,
		Spec:        first.Spec,
		Arch:        first.Arch,
		Seed:        first.Seed,
		Total:       first.Total,
		Rows:        rows,
	}, nil
}
