package sched

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"fairbench/internal/rng"
	"fairbench/internal/store"
)

// Fault is what FaultTransport does to one attempt. The zero value
// injects nothing (the attempt runs normally on the inner transport).
type Fault struct {
	// Delay holds the attempt open — heartbeating, so the host reads as
	// alive — before delegating to the inner transport: the straggler
	// primitive the speculation tests are built on.
	Delay time.Duration
	// Mute suppresses every heartbeat of the attempt, so the scheduler's
	// deadline sees a silent transport even though work may finish.
	Mute bool
	// Hang blocks until the scheduler cancels the attempt (heartbeating
	// unless also Mute), then returns the cancellation.
	Hang bool
	// Kill fails the attempt immediately, the way a SIGKILLed worker
	// does.
	Kill bool
	// Corrupt writes garbage to the attempt's OutPath and reports
	// success, exercising the dispatch.ValidatePart acceptance gate.
	Corrupt bool
}

// FaultScript decides the fault injected into one attempt, keyed by the
// host, the plan position, and n — the ordinal of this (host, range)
// attempt, 0 for the first. Scripts must be pure functions of their
// arguments so a chaos run replays identically; derive randomness from
// rng.Derive (see RandomFaults), never from global random state.
type FaultScript func(host Host, rangeIdx, n int) Fault

// FaultTransport wraps any real Transport with a deterministic fault
// script. It is the supported chaos-testing entry point: register it
// under a transport name (Options.Transports) around the transport the
// pool really uses, and script delays, hangs, kills, and corrupt parts
// per attempt. Everything the script leaves alone passes through to
// Inner untouched, so a faulted run exercises the scheduler's recovery
// paths while the surviving attempts compute real envelopes.
type FaultTransport struct {
	// Inner executes the attempt once its scripted faults (if any) have
	// played out. Required unless every attempt is scripted to die.
	Inner Transport
	// Script is consulted once per attempt; nil injects nothing.
	Script FaultScript

	mu    sync.Mutex
	calls map[string]int
}

// Run implements Transport.
func (t *FaultTransport) Run(ctx context.Context, host Host, asn Assignment, beat func()) error {
	t.mu.Lock()
	if t.calls == nil {
		t.calls = map[string]int{}
	}
	key := host.Name + "#" + strconv.Itoa(asn.Range)
	n := t.calls[key]
	t.calls[key] = n + 1
	t.mu.Unlock()

	var f Fault
	if t.Script != nil {
		f = t.Script(host, asn.Range, n)
	}
	if f.Mute {
		beat = func() {}
	}
	if f.Hang {
		for {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(heartbeatEvery):
				beat()
			}
		}
	}
	if f.Delay > 0 {
		// Sleep in heartbeat-sized slices so a delayed (but live)
		// attempt reads as a straggler, not a dead host.
		deadline := time.Now().Add(f.Delay)
		tick := time.NewTicker(heartbeatEvery)
		for time.Now().Before(deadline) {
			select {
			case <-ctx.Done():
				tick.Stop()
				return ctx.Err()
			case <-tick.C:
				beat()
			}
		}
		tick.Stop()
	}
	if f.Kill {
		return fmt.Errorf("fault: worker killed by script (host %s, range %d, attempt %d)", host.Name, asn.Range, n)
	}
	if f.Corrupt {
		return store.WriteFileAtomic(asn.OutPath, []byte(`{"fault":"corrupt part"}`))
	}
	if t.Inner == nil {
		return fmt.Errorf("fault: no inner transport for host %s, range %d", host.Name, asn.Range)
	}
	return t.Inner.Run(ctx, host, asn, beat)
}

// FaultRates parameterizes RandomFaults: each field is the probability
// in [0,1] that an attempt suffers that fault. At most one fault fires
// per attempt (drawn in field order), keeping the rates interpretable.
type FaultRates struct {
	Kill, Hang, Mute, Corrupt float64
	// DelayP is the probability of a scripted straggler; Delay is how
	// long it stalls.
	DelayP float64
	Delay  time.Duration
}

// RandomFaults builds a reproducible chaos script: each (host, range,
// attempt) triple draws its fate from rng.Derive(seed, id), a pure
// function of its inputs, so the same seed replays the exact same fault
// schedule on every run — chaos failures reproduce instead of flaking.
func RandomFaults(seed int64, rates FaultRates) FaultScript {
	return func(host Host, rangeIdx, n int) Fault {
		id := int64(0)
		for _, c := range host.Name {
			id = id*131 + int64(c)
		}
		id = id<<20 ^ int64(rangeIdx)<<8 ^ int64(n)
		g := rng.Derive(seed, id)
		var f Fault
		switch {
		case g.Float64() < rates.Kill:
			f.Kill = true
		case g.Float64() < rates.Hang:
			f.Hang = true
		case g.Float64() < rates.Mute:
			f.Mute = true
		case g.Float64() < rates.Corrupt:
			f.Corrupt = true
		case g.Float64() < rates.DelayP:
			f.Delay = rates.Delay
		}
		return f
	}
}
