package store

import (
	"io"
	"net/http"
)

// Handler serves the content-addressed cache protocol over b (normally
// a DiskStore): GET, HEAD, and PUT on /{fingerprint}/{arch}/{seed}/{index}.
// Mount it under a prefix with http.StripPrefix — the serve daemon
// exposes it at /cache/, and `fairbench cachesrv` is a standalone
// process that is nothing but this handler plus /healthz and /metrics.
//
// The server is as paranoid as the client: a PUT body is decoded and
// fully verified against the key in the URL before it is stored (422 on
// any mismatch), and a GET re-encodes only payloads that passed the
// backend's own verified read — so a corrupt upload never lands and a
// corrupt stored entry is never served, regardless of which side checks
// first.
//
// Protocol:
//
//	GET    200 entry JSON | 404 miss (or stored-but-unverifiable)
//	HEAD   200 | 404, no body
//	PUT    204 stored | 400 bad key | 422 entry fails verification
func Handler(b Backend) http.Handler {
	mux := http.NewServeMux()
	key := func(r *http.Request) (Key, bool) {
		k := ParseKeyFields(r.PathValue("fp"), r.PathValue("arch"),
			r.PathValue("seed"), r.PathValue("index"))
		return k, k != Key{}
	}
	// A single pattern serves GET and HEAD: net/http answers HEAD via the
	// GET handler with the body elided, which matches the protocol —
	// except that eliding the body would still pay the entry read, so
	// HEAD is routed explicitly to the cheap Has probe.
	mux.HandleFunc("HEAD /{fp}/{arch}/{seed}/{index}", func(w http.ResponseWriter, r *http.Request) {
		k, ok := key(r)
		if !ok {
			http.Error(w, "store: malformed cache key", http.StatusBadRequest)
			return
		}
		if !b.Has(k) {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /{fp}/{arch}/{seed}/{index}", func(w http.ResponseWriter, r *http.Request) {
		k, ok := key(r)
		if !ok {
			http.Error(w, "store: malformed cache key", http.StatusBadRequest)
			return
		}
		payload, ok := b.Get(k)
		if !ok {
			http.Error(w, "store: no verified entry", http.StatusNotFound)
			return
		}
		data, err := EncodeEntry(k, payload)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("PUT /{fp}/{arch}/{seed}/{index}", func(w http.ResponseWriter, r *http.Request) {
		k, ok := key(r)
		if !ok {
			http.Error(w, "store: malformed cache key", http.StatusBadRequest)
			return
		}
		data, err := io.ReadAll(io.LimitReader(r.Body, maxEntryBytes))
		if err != nil {
			http.Error(w, "store: reading entry", http.StatusBadRequest)
			return
		}
		payload, err := DecodeEntry(k, data)
		if err != nil {
			// Never store what doesn't verify — the uploader recomputes
			// or retries; the cache stays clean either way.
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		if err := b.Put(k, payload); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}
