// Package corrupt injects the training-data quality issues of the paper's
// robustness experiment (Section 4.4). Three error templates over COMPAS
// are reproduced:
//
//	T1: swapped values between Prior_convictions and Age;
//	T2: scaled values of Prior_convictions and noisy values of Age;
//	T3: missing values of Race (the sensitive attribute) and the label,
//	    imputed with standard imputers (mode for categoricals/labels,
//	    mean for numerics).
//
// All errors are injected randomly and disproportionately: 50% of the
// unprivileged group and 10% of the privileged group are affected,
// mirroring the documented correlation between data-quality issues and
// sensitive attributes.
//
// Beyond the paper's fixed templates, bias.go adds the parameterized
// bias-injection models (under-representation and label bias) that the
// experiment grids expose as a first-class scenario dimension.
package corrupt

import (
	"fmt"

	"fairbench/internal/dataset"
	"fairbench/internal/rng"
)

// Rates holds per-group corruption probabilities. The paper's setting is
// {Unprivileged: 0.5, Privileged: 0.1}.
type Rates struct {
	Unprivileged, Privileged float64
}

// PaperRates is the 50%/10% disproportionate corruption of Section 4.4.
var PaperRates = Rates{Unprivileged: 0.5, Privileged: 0.1}

// The sensitive-attribute coding convention every injector in this
// package maps group-conditional behavior through. dataset.Validate
// enforces the same convention, but corruption also runs on hand-built
// datasets that never pass through Validate, so the mapping re-checks
// it instead of silently treating every unexpected code as unprivileged.
const (
	// UnprivilegedCode is the sensitive-attribute code of the
	// unprivileged group (S = 0 throughout the paper's datasets).
	UnprivilegedCode = 0
	// PrivilegedCode is the sensitive-attribute code of the privileged
	// group (S = 1).
	PrivilegedCode = 1
)

// GroupProb maps a sensitive-attribute code to the per-group probability
// it selects: p0 for the unprivileged code, p1 for the privileged one.
// A code outside the {0,1} convention is an error — the one centralized
// check every injector (templates and bias generators alike) routes
// group-conditional decisions through.
func GroupProb(s int, p0, p1 float64) (float64, error) {
	switch s {
	case UnprivilegedCode:
		return p0, nil
	case PrivilegedCode:
		return p1, nil
	}
	return 0, fmt.Errorf("corrupt: sensitive code %d outside the {0,1} convention (0 = unprivileged, 1 = privileged)", s)
}

// hit draws one per-tuple corruption decision. It always consumes exactly
// one uniform variate on success, so the injection pattern for a fixed
// seed is stable across refactors of the decision logic.
func (r Rates) hit(s int, g *rng.RNG) (bool, error) {
	p, err := GroupProb(s, r.Unprivileged, r.Privileged)
	if err != nil {
		return false, err
	}
	return g.Float64() < p, nil
}

// findAttr locates an attribute by name.
func findAttr(d *dataset.Dataset, name string) (int, error) {
	for j, a := range d.Attrs {
		if a.Name == name {
			return j, nil
		}
	}
	return -1, fmt.Errorf("corrupt: dataset %s has no attribute %q", d.Name, name)
}

// SwapValues returns a copy of d where, for affected tuples, the values of
// attributes a and b are exchanged (template T1).
func SwapValues(d *dataset.Dataset, a, b string, rates Rates, seed int64) (*dataset.Dataset, error) {
	ja, err := findAttr(d, a)
	if err != nil {
		return nil, err
	}
	jb, err := findAttr(d, b)
	if err != nil {
		return nil, err
	}
	g := rng.New(seed)
	out := d.Clone()
	out.Name = d.Name + "+T1"
	for i := range out.X {
		affected, err := rates.hit(out.S[i], g)
		if err != nil {
			return nil, err
		}
		if affected {
			out.X[i][ja], out.X[i][jb] = out.X[i][jb], out.X[i][ja]
		}
	}
	return out, nil
}

// ScaleAndNoise returns a copy of d where attribute scaleAttr is
// multiplied by factor and attribute noiseAttr receives additive Gaussian
// noise with the given standard deviation, for affected tuples (T2).
func ScaleAndNoise(d *dataset.Dataset, scaleAttr string, factor float64, noiseAttr string, noiseStd float64, rates Rates, seed int64) (*dataset.Dataset, error) {
	js, err := findAttr(d, scaleAttr)
	if err != nil {
		return nil, err
	}
	jn, err := findAttr(d, noiseAttr)
	if err != nil {
		return nil, err
	}
	g := rng.New(seed)
	out := d.Clone()
	out.Name = d.Name + "+T2"
	for i := range out.X {
		affected, err := rates.hit(out.S[i], g)
		if err != nil {
			return nil, err
		}
		if affected {
			out.X[i][js] *= factor
			out.X[i][jn] += g.Normal(0, noiseStd)
		}
	}
	return out, nil
}

// MissingImputed returns a copy of d where, for affected tuples, the
// sensitive attribute and the label are "lost" and then re-imputed with
// the standard imputers (mode over the observed values), reproducing T3's
// missing Race and Risk_of_recidivism columns.
func MissingImputed(d *dataset.Dataset, rates Rates, seed int64) (*dataset.Dataset, error) {
	g := rng.New(seed)
	out := d.Clone()
	out.Name = d.Name + "+T3"
	affected := make([]bool, out.Len())
	// Compute modes over the tuples that keep their values (the observed
	// part of the column, as an imputer would see it).
	var sCount, yCount [2]float64
	for i := range out.X {
		var err error
		if affected[i], err = rates.hit(out.S[i], g); err != nil {
			return nil, err
		}
		if !affected[i] {
			sCount[out.S[i]]++
			yCount[out.Y[i]]++
		}
	}
	sMode, yMode := 0, 0
	if sCount[1] >= sCount[0] {
		sMode = 1
	}
	if yCount[1] >= yCount[0] {
		yMode = 1
	}
	for i := range out.X {
		if affected[i] {
			out.S[i] = sMode
			out.Y[i] = yMode
		}
	}
	return out, nil
}

// ImputeNumericMean replaces affected tuples' value of attr with the mean
// of the unaffected tuples — a building block for additional missing-value
// templates beyond the paper's three.
func ImputeNumericMean(d *dataset.Dataset, attr string, rates Rates, seed int64) (*dataset.Dataset, error) {
	j, err := findAttr(d, attr)
	if err != nil {
		return nil, err
	}
	g := rng.New(seed)
	out := d.Clone()
	affected := make([]bool, out.Len())
	var sum, n float64
	for i := range out.X {
		var err error
		if affected[i], err = rates.hit(out.S[i], g); err != nil {
			return nil, err
		}
		if !affected[i] {
			sum += out.X[i][j]
			n++
		}
	}
	mean := 0.0
	if n > 0 {
		mean = sum / n
	}
	for i := range out.X {
		if affected[i] {
			out.X[i][j] = mean
		}
	}
	return out, nil
}

// Template identifies one of the paper's three COMPAS error templates.
type Template int

const (
	// T1 swaps Prior and Age values.
	T1 Template = iota + 1
	// T2 scales Prior and adds noise to Age.
	T2
	// T3 drops and imputes Race and the label.
	T3
)

// String returns the template's paper name.
func (t Template) String() string { return fmt.Sprintf("T%d", int(t)) }

// ApplyCOMPAS applies a template to a COMPAS-schema dataset with the
// paper's disproportionate rates.
func ApplyCOMPAS(d *dataset.Dataset, t Template, seed int64) (*dataset.Dataset, error) {
	switch t {
	case T1:
		return SwapValues(d, "Prior", "Age", PaperRates, seed)
	case T2:
		return ScaleAndNoise(d, "Prior", 3.0, "Age", 8.0, PaperRates, seed)
	case T3:
		return MissingImputed(d, PaperRates, seed)
	default:
		return nil, fmt.Errorf("corrupt: unknown template %d", int(t))
	}
}
