// Command fairbench regenerates the paper's evaluation artifacts from the
// command line:
//
//	fairbench list                        enumerate approaches and stages
//	fairbench eval   -dataset compas -approach KamCal-DP
//	fairbench fig7   [-dataset adult|compas|german|all] [-n N]
//	fairbench fig8   [-n N]               efficiency & scalability sweeps
//	fairbench fig9   [-n N]               robustness to data errors (T1-T3)
//	fairbench fig10  [-n N]               model sensitivity (pre/post x 5)
//	fairbench cv     [-dataset ...] [-k 5]  cross-validation tables
//	fairbench fig22  [-runs 10] [-n N]    stability
//	fairbench fig23  [-n N]               data efficiency
//	fairbench merge  part0.json part1.json ...   combine shard envelopes
//	fairbench dispatch -exp fig7 ... -dir DIR    run a grid as subprocesses
//	fairbench resume   -dir DIR                  finish an interrupted dispatch
//	fairbench sched  -exp fig7 ... -dir DIR -hosts hosts.json   multi-host run
//	fairbench serve  -state DIR [-addr HOST:PORT]    benchmark-as-a-service daemon
//	fairbench worker   -manifest M -shard I -out O   (spawned by dispatch/sched)
//
// -n caps the generated dataset size (0 = the paper's full size); smaller
// values keep exploratory runs fast. -parallel N sets the experiment
// worker-pool size (0 = GOMAXPROCS, 1 = serial): metric columns are
// identical at any setting for a fixed seed, while the incidental
// overhead column of the metric experiments reflects the selected
// concurrency. The pure timing experiment (fig8) always measures with
// one worker so its overhead curves stay contention-free.
//
// -cache DIR (any figure command, dispatch, or -shard run) installs the
// on-disk result cache: cells already computed for the same grid
// fingerprint, seed, and architecture are served from disk, so re-runs
// only compute what is missing while printing byte-identical metric
// columns.
//
// -bias MODEL -bias-rate R [-bias-rate-neg R] (any figure command,
// dispatch, or sched) inject parameterized data bias into the training
// distribution before the grid runs: `-bias under` drops unprivileged
// tuples stratified by label (β⁺ = -bias-rate, β⁻ = -bias-rate-neg),
// `-bias label` flips unprivileged labels at rate ν = -bias-rate.
// Injection is seeded and deterministic, and the bias setting is part of
// the grid fingerprint, so shards, caches, and merges never mix bias
// settings. See the README's "Scenario axis" section.
//
// -cpuprofile FILE / -memprofile FILE (any command) record a pprof
// CPU or allocation profile of the run, so performance work on the
// figure commands starts from a measured profile rather than a guess:
//
//	fairbench fig7 -dataset german -n 300 -cpuprofile cpu.prof
//	go tool pprof cpu.prof
//
// # Sharded execution
//
// Any figure command can run as one shard of its job grid and emit a
// JSON partial-result envelope instead of tables:
//
//	fairbench fig7 -dataset compas -shard 0/3 -out part0.json
//	fairbench fig7 -dataset compas -shard 1/3 -out part1.json   # any host
//	fairbench fig7 -dataset compas -shard 2/3 -out part2.json   # any host
//	fairbench merge part0.json part1.json part2.json
//
// The merged tables are bit-identical (timing columns aside) to the
// single-process run with the same flags, because the datasets are
// synthesized from the seed: the (experiment, dataset, n, seed, …) spec
// embedded in each envelope fully determines every grid cell. merge
// rejects envelopes whose grid fingerprints disagree — naming the
// offending file — and an incomplete set fails listing the shard
// indices still missing. Commands that span several datasets (-dataset
// all) or grids shard one grid at a time: pick a single dataset, and
// for fig8 pick -grid rows or -grid attrs.
//
// # Dispatch and resume
//
// dispatch drives the whole shard→merge flow itself: it splits the grid
// -shards ways, runs up to -procs worker subprocesses (each a `fairbench
// worker` re-exec of this binary), retries failures -retries times,
// collects the envelopes under -dir, and prints the merged tables. The
// directory plus the -cache store make the run resumable: if dispatch is
// interrupted — or a worker is SIGKILLed with no retries left — the
// completed envelopes and cached cells survive, and
//
//	fairbench dispatch -exp fig7 -dataset german -shards 8 -procs 4 \
//	    -dir run -cache cache
//	# ... interrupted ...
//	fairbench resume -dir run -procs 4
//
// finishes only the missing work and prints tables byte-identical
// (timing aside) to an uninterrupted serial run.
//
// # Multi-host scheduling
//
// sched generalizes dispatch to a pool of hosts described by a
// hosts.json file (a JSON array of {name, slots, transport, cmd}
// objects; see the README's "Multi-host execution" section). Local
// hosts re-exec this binary's worker subcommand; remote hosts run a
// worker binary through an arbitrary command prefix (typically ssh)
// with the manifest streamed over stdin and the envelope back over
// stdout — which is what `worker -manifest - -shard I -out -`
// implements, so no shared filesystem is needed. Planning is cache-aware: with -cache,
// ranges already fully computed are served by the coordinator and the
// rest are balanced across hosts by uncached cell count. Failed
// attempts move to other hosts, hosts silent past -heartbeat are
// declared dead, and repeatedly failing hosts are excluded:
//
//	fairbench sched -exp fig7 -dataset german -shards 8 \
//	    -hosts hosts.json -dir run -cache cache
//
// prints tables byte-identical (timing aside) to the serial run, or
// fails naming the missing ranges with the directory resumable by
// `sched` (same flags) or `resume -dir run`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fairbench"
	"fairbench/internal/dispatch"
	"fairbench/internal/experiments"
	"fairbench/internal/fair"
	"fairbench/internal/registry"
	"fairbench/internal/report"
	"fairbench/internal/sched"
	"fairbench/internal/serve"
	"fairbench/internal/store"
)

// shardableCommands maps figure commands to their grid experiment names
// (fig8 resolves through -grid since it spans two grids).
var shardableCommands = map[string]string{
	"fig7": "fig7", "fig9": "fig9", "fig10": "fig10", "fig15": "fig15",
	"cv": "cv", "fig22": "fig22", "fig23": "fig23",
}

// parallelism carries the parsed -parallel value into the engine-backed
// commands as RunOptions.Parallelism (0 = one worker per CPU).
var parallelism int

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	datasetFlag := fs.String("dataset", "all", "adult|compas|german|all")
	approachFlag := fs.String("approach", "", "approach name for eval (see list)")
	nFlag := fs.Int("n", 0, "dataset size cap (0 = paper size)")
	kFlag := fs.Int("k", 5, "cross-validation folds")
	runsFlag := fs.Int("runs", 10, "stability runs")
	seedFlag := fs.Int64("seed", 1, "global seed")
	parallelFlag := fs.Int("parallel", 0, "experiment worker goroutines (0 = GOMAXPROCS; 1 = serial, for contention-free timing)")
	shardFlag := fs.String("shard", "", "run one shard i/K (0-based) of the command's job grid and emit a JSON envelope instead of tables")
	outFlag := fs.String("out", "", "file for the -shard envelope or the merged-output JSON (default: envelope to stdout; merge prints tables only)")
	gridFlag := fs.String("grid", "rows", "which fig8 grid to shard: rows|attrs")
	cacheFlag := fs.String("cache", "", "result-cache directory: serve already-computed cells from disk, write fresh ones back")
	remoteStoreFlag := fs.String("remote-store", "", "shared result-store base URL (a fairbench cachesrv or serve daemon's /cache): read-through behind -cache, every entry verified before use")
	biasFlag := fs.String("bias", "", "bias-injection model applied to the training data: under|label (default: clean data)")
	biasRateFlag := fs.Float64("bias-rate", 0, "bias rate: under-representation's positive-label drop rate β⁺, or label bias's flip rate ν")
	biasRateNegFlag := fs.Float64("bias-rate-neg", 0, "under-representation's negative-label drop rate β⁻")
	expFlag := fs.String("exp", "", "dispatch: grid experiment name (fig7|fig9|fig10|fig15|cv|fig22|fig23|fig8rows|fig8attrs)")
	dirFlag := fs.String("dir", "", "dispatch/resume: dispatch directory holding the manifest and part files")
	shardsFlag := fs.Int("shards", 0, "dispatch: k-way shard split (default: -procs)")
	procsFlag := fs.Int("procs", 0, "dispatch/resume: max concurrent worker subprocesses (default: GOMAXPROCS)")
	retriesFlag := fs.Int("retries", 1, "dispatch/resume: re-spawns per failed shard; sched: extra full rounds over the pool (negative = none)")
	manifestFlag := fs.String("manifest", "", "worker: manifest file of the dispatch directory (- reads it from stdin)")
	hostsFlag := fs.String("hosts", "", "sched: hosts.json pool definition (default: one local host with -procs slots)")
	heartbeatFlag := fs.Duration("heartbeat", 60*time.Second, "sched: declare a host dead after this long without a transport heartbeat")
	maxHostFailFlag := fs.Int("max-host-failures", 3, "sched: exclude a host after this many failed attempts")
	speculateFlag := fs.Bool("speculate", false, "sched: re-launch straggling ranges on idle hosts; first valid part wins")
	backoffFlag := fs.Duration("backoff", 0, "sched: base delay before retrying a failed range, doubling per attempt with jitter (0 = 100ms default, negative = retry immediately)")
	watchHostsFlag := fs.Duration("watch-hosts", 0, "sched: re-read -hosts at this interval; added hosts join mid-run, removed hosts drain (0 = off)")
	localFallbackFlag := fs.Bool("local-fallback", true, "sched: when every host is lost, finish the remaining ranges in-process (report marks the run degraded)")
	addrFlag := fs.String("addr", "127.0.0.1:8080", "serve: HTTP listen address")
	stateFlag := fs.String("state", "", "serve: state directory (one resumable run directory per grid)")
	maxRunsFlag := fs.Int("max-runs", 1, "serve: concurrently executing runs before submissions get 429")
	cpuProfFlag := fs.String("cpuprofile", "", "write a CPU profile of this command to the file (inspect with go tool pprof)")
	memProfFlag := fs.String("memprofile", "", "write an allocation profile of this command to the file (inspect with go tool pprof)")
	fs.Parse(os.Args[2:])
	// -parallel feeds both pool knobs: RunOptions.Parallelism for the
	// engine-backed commands, and the deprecated process-global default
	// for the Source-based commands that predate the options struct.
	parallelism = *parallelFlag
	fairbench.SetParallelism(*parallelFlag)
	if *cacheFlag != "" || *remoteStoreFlag != "" {
		exitIf(fairbench.CacheRemote(*cacheFlag, *remoteStoreFlag))
	}
	exitIf(startProfiles(*cpuProfFlag, *memProfFlag))
	bias := biasSpec{model: *biasFlag, rate: *biasRateFlag, rateNeg: *biasRateNegFlag}

	if cmd == "worker" {
		// dispatch spawns `worker -shard I`: here -shard is the bare shard
		// index, not the figure commands' i/K form.
		idx, err := strconv.Atoi(*shardFlag)
		if err != nil {
			exit(fmt.Errorf("worker needs -shard <index>, got %q", *shardFlag))
		}
		exit(cmdWorker(*manifestFlag, idx, *outFlag))
	}

	if cmd == "sched" {
		exit(cmdSched(*expFlag, *datasetFlag, *nFlag, *kFlag, *runsFlag, *seedFlag, bias,
			*dirFlag, *cacheFlag, *remoteStoreFlag, *hostsFlag, *shardsFlag, *procsFlag, *retriesFlag,
			*maxHostFailFlag, *heartbeatFlag, *speculateFlag, *backoffFlag,
			*watchHostsFlag, *localFallbackFlag, *outFlag))
	}

	if cmd == "serve" {
		exit(cmdServe(*addrFlag, *stateFlag, *cacheFlag, *remoteStoreFlag, *hostsFlag,
			*shardsFlag, *procsFlag, *retriesFlag, *maxRunsFlag,
			*maxHostFailFlag, *heartbeatFlag, *speculateFlag, *backoffFlag,
			*localFallbackFlag))
	}

	if cmd == "cachesrv" {
		exit(cmdCacheSrv(*addrFlag, *dirFlag))
	}

	if cmd == "fingerprint" {
		exit(cmdFingerprint(*expFlag, *datasetFlag, *nFlag, *kFlag, *runsFlag, *seedFlag, bias))
	}

	if *shardFlag != "" {
		spec, err := specFor(cmd, *datasetFlag, *nFlag, *kFlag, *runsFlag, *gridFlag, *seedFlag, bias)
		if err == nil {
			// A -cache directory, if given, is already installed process-wide,
			// so RunShard serves verified hits and records provenance.
			err = cmdShard(spec, *shardFlag, *outFlag)
		}
		exit(err)
	}

	if bias.set() {
		// Bias injection is a grid dimension, so a biased serial figure run
		// routes through the same spec→engine path the dispatch/sched/serve
		// backends use — its tables (titles included) are then byte-identical
		// to the merged shards of the same spec.
		if _, ok := shardableCommands[cmd]; ok || cmd == "fig8" {
			exit(cmdBiasedFigure(cmd, *datasetFlag, *nFlag, *kFlag, *runsFlag, *gridFlag,
				*seedFlag, bias, *outFlag))
		}
		if cmd != "dispatch" {
			exit(fmt.Errorf("-bias/-bias-rate/-bias-rate-neg apply to figure, dispatch, and sched commands, not %q", cmd))
		}
	}

	var err error
	switch cmd {
	case "list":
		err = cmdList()
	case "eval":
		err = cmdEval(*datasetFlag, *approachFlag, *nFlag, *seedFlag)
	case "fig7":
		err = cmdFig7(*datasetFlag, *nFlag, *seedFlag)
	case "fig8":
		err = cmdFig8(*nFlag, *seedFlag)
	case "fig9":
		err = cmdFig9(*nFlag, *seedFlag)
	case "fig10":
		err = cmdFig10(*nFlag, *seedFlag)
	case "fig15":
		err = cmdFig15(*datasetFlag, *nFlag, *seedFlag)
	case "cv":
		err = cmdCV(*datasetFlag, *nFlag, *kFlag, *seedFlag)
	case "fig22":
		err = cmdFig22(*nFlag, *runsFlag, *seedFlag)
	case "fig23":
		err = cmdFig23(*nFlag, *seedFlag)
	case "merge":
		err = cmdMerge(fs.Args(), *outFlag)
	case "dispatch":
		err = cmdDispatch(*expFlag, *datasetFlag, *nFlag, *kFlag, *runsFlag, *seedFlag, bias,
			*dirFlag, *cacheFlag, *remoteStoreFlag, *shardsFlag, *procsFlag, *retriesFlag, *outFlag)
	case "resume":
		err = cmdResume(*dirFlag, *procsFlag, *retriesFlag, *outFlag)
	case "all":
		for _, c := range []func() error{
			func() error { return cmdFig7("all", *nFlag, *seedFlag) },
			func() error { return cmdFig8(*nFlag, *seedFlag) },
			func() error { return cmdFig9(*nFlag, *seedFlag) },
			func() error { return cmdFig10(*nFlag, *seedFlag) },
			func() error { return cmdCV("all", *nFlag, *kFlag, *seedFlag) },
			func() error { return cmdFig22(*nFlag, *runsFlag, *seedFlag) },
			func() error { return cmdFig23(*nFlag, *seedFlag) },
		} {
			if err = c(); err != nil {
				break
			}
		}
	default:
		stopProfiles() // flush any -cpuprofile/-memprofile started above
		usage()
		os.Exit(2)
	}
	exit(err)
}

func exit(err error) {
	exitIf(err)
	stopProfiles()
	os.Exit(0)
}

// exitIf reports err and exits non-zero, or returns having done nothing.
// Profiles are flushed even on the error path so a crashing run still
// leaves its evidence behind.
func exitIf(err error) {
	if err != nil {
		stopProfiles()
		fmt.Fprintln(os.Stderr, "fairbench:", err)
		os.Exit(1)
	}
}

// stopProfiles flushes any active profiles; exit paths call it explicitly
// because os.Exit skips deferred functions. Reassigned by startProfiles.
var stopProfiles = func() {}

// startProfiles enables the -cpuprofile/-memprofile outputs. Future perf
// work on the figure commands starts from one of these profiles, not
// from a guess:
//
//	fairbench fig7 -dataset german -n 300 -cpuprofile cpu.prof
//	go tool pprof cpu.prof
func startProfiles(cpuPath, memPath string) error {
	if cpuPath == "" && memPath == "" {
		return nil
	}
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		cpuFile = f
	}
	stopProfiles = func() {
		stopProfiles = func() {} // idempotent: exit paths may overlap
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "fairbench: -cpuprofile:", err)
			} else {
				fmt.Fprintf(os.Stderr, "fairbench: wrote CPU profile to %s\n", cpuPath)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fairbench: -memprofile:", err)
				return
			}
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "fairbench: -memprofile:", err)
			} else {
				fmt.Fprintf(os.Stderr, "fairbench: wrote allocation profile to %s\n", memPath)
			}
			f.Close()
		}
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fairbench <list|eval|fig7|fig8|fig9|fig10|fig15|cv|fig22|fig23|merge|all> [flags]
       fairbench <figN|cv> ... [-bias under|label -bias-rate R [-bias-rate-neg R]]
                 inject parameterized data bias (grid commands only)
       fairbench <figN|cv> ... -shard i/K [-out part.json] [-cache DIR]  run one grid shard
       fairbench merge part0.json part1.json ...                         combine shards
       fairbench dispatch -exp <figN|cv|fig8rows|fig8attrs> [figure flags]
                 -dir DIR [-shards K] [-procs N] [-retries R]
                 [-cache DIR] [-remote-store URL]
       fairbench resume -dir DIR [-procs N] [-retries R]                 finish an interrupted dispatch
       fairbench sched -exp <figN|cv|fig8rows|fig8attrs> [figure flags] -dir DIR
                 [-hosts hosts.json] [-shards K] [-cache DIR] [-remote-store URL]
                 [-retries R] [-heartbeat 60s] [-max-host-failures 3] [-speculate]
                 [-backoff 100ms] [-watch-hosts 5s] [-local-fallback]    multi-host run
       fairbench serve -state DIR [-addr 127.0.0.1:8080] [-cache DIR]
                 [-remote-store URL] [-hosts hosts.json] [-shards K] [-procs N]
                 [-retries R] [-max-runs 1] [-speculate] [-backoff 100ms]
                 benchmark-as-a-service daemon (also serves /cache)
       fairbench cachesrv -dir DIR [-addr 127.0.0.1:8080]                standalone shared result store
       fairbench fingerprint -exp <figN|cv|fig8rows|fig8attrs> [figure flags]
                 print the grid's store/cache fingerprint (CI cache key)`)
}

// biasSpec collects the bias-injection flags shared by every grid
// command; zero value = clean data.
type biasSpec struct {
	model         string
	rate, rateNeg float64
}

// set marks whether any bias flag was given (spec validation then
// decides whether the combination is coherent).
func (b biasSpec) set() bool { return b.model != "" || b.rate != 0 || b.rateNeg != 0 }

// apply copies the flags onto a grid spec.
func (b biasSpec) apply(spec fairbench.GridSpec) fairbench.GridSpec {
	spec.Bias = b.model
	spec.BiasRate = b.rate
	spec.BiasRateNeg = b.rateNeg
	return spec
}

// gridSpecFor assembles the grid spec the dispatch-style commands
// (dispatch, sched) describe with their flags.
func gridSpecFor(exp, ds string, n, k, runs int, seed int64, bias biasSpec) fairbench.GridSpec {
	spec := fairbench.GridSpec{Experiment: exp, N: n, Seed: seed}
	if ds != "" && !strings.EqualFold(ds, "all") {
		spec.Dataset = ds
	}
	switch strings.ToLower(exp) {
	case "cv":
		spec.K = k
	case "fig22":
		spec.Runs = runs
	}
	return bias.apply(spec)
}

// signalContext is the run context of the long-running commands:
// SIGINT/SIGTERM cancel it, which stops the engine promptly and leaves
// directory-backed runs resumable.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// cmdDispatch runs a grid as worker subprocesses and prints the merged
// tables, exactly as the serial figure command would print them.
func cmdDispatch(exp, ds string, n, k, runs int, seed int64, bias biasSpec,
	dir, cache, remoteStore string, shards, procs, retries int, out string) error {
	if exp == "" {
		return fmt.Errorf("dispatch requires -exp (fig7|fig9|fig10|fig15|cv|fig22|fig23|fig8rows|fig8attrs)")
	}
	if dir == "" {
		return fmt.Errorf("dispatch requires -dir (the resumable dispatch directory)")
	}
	ctx, stop := signalContext()
	defer stop()
	spec := gridSpecFor(exp, ds, n, k, runs, seed, bias)
	merged, rep, err := fairbench.Run(ctx, spec, fairbench.RunOptions{
		Backend: fairbench.BackendDispatch,
		Dir:     dir, Shards: shards, Procs: procs, Retries: retries,
		Parallelism: parallelism, CacheDir: cache, RemoteStore: remoteStore, Log: os.Stderr,
	})
	if err != nil {
		return err
	}
	return renderRun(merged, rep, out)
}

func cmdResume(dir string, procs, retries int, out string) error {
	if dir == "" {
		return fmt.Errorf("resume requires -dir (the dispatch directory to finish)")
	}
	ctx, stop := signalContext()
	defer stop()
	merged, rep, err := fairbench.ResumeRun(ctx, dir, fairbench.RunOptions{
		Procs: procs, Retries: retries, Parallelism: parallelism, Log: os.Stderr,
	})
	if err != nil {
		return err
	}
	return renderRun(merged, rep, out)
}

// cmdSched runs a grid across a pool of hosts and prints the merged
// tables — the serial figure command's output, fault-tolerantly.
func cmdSched(exp, ds string, n, k, runs int, seed int64, bias biasSpec, dir, cache, remoteStore, hostsPath string,
	shards, procs, retries, maxHostFailures int, heartbeat time.Duration,
	speculate bool, backoff, watchHosts time.Duration, localFallback bool, out string) error {
	if exp == "" {
		return fmt.Errorf("sched requires -exp (fig7|fig9|fig10|fig15|cv|fig22|fig23|fig8rows|fig8attrs)")
	}
	if dir == "" {
		return fmt.Errorf("sched requires -dir (the resumable sched directory)")
	}
	var hosts []fairbench.SchedHost
	if hostsPath != "" {
		var err error
		if hosts, err = fairbench.LoadHosts(hostsPath); err != nil {
			return err
		}
	} else if procs > 0 {
		hosts = []fairbench.SchedHost{{Name: "local", Slots: procs}}
	}
	var pool fairbench.PoolSource
	if watchHosts > 0 {
		if hostsPath == "" {
			return fmt.Errorf("-watch-hosts requires -hosts (the file to re-read)")
		}
		w, err := sched.WatchHosts(hostsPath, watchHosts)
		if err != nil {
			return err
		}
		defer w.Close()
		pool = w
	}
	ctx, stop := signalContext()
	defer stop()
	merged, rep, err := fairbench.Run(ctx, gridSpecFor(exp, ds, n, k, runs, seed, bias), fairbench.RunOptions{
		Backend: fairbench.BackendSched,
		Dir:     dir, Hosts: hosts, Shards: shards, CacheDir: cache, RemoteStore: remoteStore,
		HeartbeatTimeout: heartbeat, Retries: retries, MaxHostFailures: maxHostFailures,
		Speculate: speculate, Backoff: backoff, LocalFallback: localFallback, PoolSource: pool,
		Parallelism: parallelism, Log: os.Stderr,
	})
	if err != nil {
		return err
	}
	return renderRun(merged, rep, out)
}

// cmdServe runs the benchmark-as-a-service daemon: grids submitted
// over HTTP execute on the same engine the dispatch/sched commands
// use, deduplicated by grid fingerprint and checkpointed under -state.
// SIGTERM/SIGINT drain gracefully; interrupted runs resume on restart.
func cmdServe(addr, stateDir, cache, remoteStore, hostsPath string,
	shards, procs, retries, maxRuns, maxHostFailures int, heartbeat time.Duration,
	speculate bool, backoff time.Duration, localFallback bool) error {
	if stateDir == "" {
		return fmt.Errorf("serve requires -state (the daemon's run-state directory)")
	}
	var hosts []fairbench.SchedHost
	if hostsPath != "" {
		var err error
		if hosts, err = fairbench.LoadHosts(hostsPath); err != nil {
			return err
		}
	}
	srv, err := serve.New(serve.Config{
		StateDir: stateDir, CacheDir: cache, RemoteStore: remoteStore, MaxConcurrent: maxRuns,
		Shards: shards, Procs: procs, Retries: retries, Parallelism: parallelism,
		Hosts: hosts, HeartbeatTimeout: heartbeat, MaxHostFailures: maxHostFailures,
		Speculate: speculate, Backoff: backoff, LocalFallback: localFallback,
		Log: os.Stderr,
	})
	if err != nil {
		return err
	}
	if resumed, err := srv.ResumeInterrupted(); err != nil {
		return err
	} else if resumed > 0 {
		fmt.Fprintf(os.Stderr, "fairbench: serve: resumed %d interrupted run(s)\n", resumed)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, stop := signalContext()
	defer stop()
	fmt.Fprintf(os.Stderr, "fairbench: serving on http://%s (state %s)\n", ln.Addr(), stateDir)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "fairbench: serve: draining — in-flight runs checkpoint and resume on the next start")
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	drainErr := srv.Drain(dctx)
	if err := httpSrv.Shutdown(dctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr == nil {
		fmt.Fprintln(os.Stderr, "fairbench: serve: drained cleanly")
	}
	return drainErr
}

// cmdCacheSrv runs the standalone shared result store: an on-disk
// store exposed over the content-addressed /cache HTTP protocol the
// -remote-store clients speak. Every PUT body is verified before it
// is stored; every GET re-encodes an already-verified entry.
func cmdCacheSrv(addr, dir string) error {
	if dir == "" {
		return fmt.Errorf("cachesrv requires -dir (the on-disk store directory it serves)")
	}
	ds, err := store.Open(dir)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/cache/", http.StripPrefix("/cache", store.Handler(ds)))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: mux}
	ctx, stop := signalContext()
	defer stop()
	fmt.Fprintf(os.Stderr, "fairbench: cachesrv: serving %s on http://%s/cache\n", dir, ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		return err
	}
	c := ds.Counters()
	fmt.Fprintf(os.Stderr, "fairbench: cachesrv: stopped — hits=%d misses=%d writes=%d rejected=%d\n",
		c.Hits, c.Misses, c.Writes, c.Rejected)
	return nil
}

// cmdFingerprint prints the fingerprint of the grid the flags
// describe — the address prefix the result store keys its cells
// under. CI keys its cross-run cache (actions/cache) on this value so
// a grid change invalidates the cache exactly when the keys change.
func cmdFingerprint(exp, ds string, n, k, runs int, seed int64, bias biasSpec) error {
	if exp == "" {
		return fmt.Errorf("fingerprint requires -exp (fig7|fig9|fig10|fig15|cv|fig22|fig23|fig8rows|fig8attrs)")
	}
	fp, err := fairbench.GridFingerprint(gridSpecFor(exp, ds, n, k, runs, seed, bias))
	if err != nil {
		return err
	}
	fmt.Println(fp)
	return nil
}

// renderRun prints the merged tables, the backend's provenance summary
// line (the e2e jobs assert on computed=0 and "fully cached" for warm
// runs), and the optional JSON dump.
func renderRun(merged *fairbench.GridOutput, rep *fairbench.RunReport, out string) error {
	if err := renderOutput(merged); err != nil {
		return err
	}
	switch {
	case rep.ServedFromCache:
		fmt.Fprintf(os.Stderr, "fairbench: run complete: grid fully cached — served from the result store, cells computed=0 cached=%d\n",
			rep.CellsCached)
	case rep.Dispatch != nil:
		d := rep.Dispatch
		fmt.Fprintf(os.Stderr, "fairbench: dispatch complete: %d shards (%d reused, %d ran), cells computed=%d cached=%d\n",
			d.Shards, len(d.Reused), len(d.Ran), d.CellsComputed, d.CellsCached)
	case rep.Sched != nil:
		s := rep.Sched
		fmt.Fprintf(os.Stderr, "fairbench: sched complete: %d range(s) (%d reused, %d served from cache), %d host(s) excluded, cells computed=%d cached=%d\n",
			len(s.Ranges), len(s.Reused), len(s.Skipped), len(s.Excluded), s.CellsComputed, s.CellsCached)
		if len(s.Speculated) > 0 {
			fmt.Fprintf(os.Stderr, "fairbench: sched: %d speculative attempt(s) launched against stragglers\n", len(s.Speculated))
		}
		if len(s.Joined) > 0 || len(s.Departed) > 0 {
			fmt.Fprintf(os.Stderr, "fairbench: sched: pool changed mid-run: %d joined, %d departed\n", len(s.Joined), len(s.Departed))
		}
		if s.Degraded {
			fmt.Fprintf(os.Stderr, "fairbench: sched: DEGRADED — every host was lost; %d range(s) finished by the local in-process fallback\n", len(s.Fallback))
		}
	}
	if rep.CacheStats.Rejected > 0 {
		fmt.Fprintf(os.Stderr, "fairbench: WARNING: result store rejected %d corrupt or mismatched entrie(s); each was recomputed from scratch\n",
			rep.CacheStats.Rejected)
	}
	if rep.CacheDegraded {
		fmt.Fprintln(os.Stderr, "fairbench: remote store DEGRADED — repeated transport failures; the run finished on the local cache tier alone")
	}
	if out != "" {
		data, err := jsonIndent(merged)
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fairbench: wrote merged output to %s\n", out)
	}
	return nil
}

// cmdWorker is the dispatch/sched-spawned subprocess body. With
// `-manifest - -shard I -out -` it speaks the remote-transport protocol instead:
// manifest over stdin, envelope over stdout, no filesystem shared with
// the scheduler.
func cmdWorker(manifest string, shard int, out string) error {
	if manifest == "-" || out == "-" {
		if manifest != "-" || out != "-" {
			return fmt.Errorf("worker streams manifest and envelope together: use -manifest - with -out -")
		}
		if shard < 0 {
			return fmt.Errorf("worker requires -shard")
		}
		return dispatch.WorkerIO(os.Stdin, shard, os.Stdout)
	}
	if manifest == "" || out == "" || shard < 0 {
		return fmt.Errorf("worker requires -manifest, -shard, and -out (it is normally spawned by dispatch or sched)")
	}
	return dispatch.Worker(manifest, shard, out)
}

// specFor builds the grid spec a sharded run of cmd describes, resolving
// the same defaults the serial command would use so a sharded run and a
// serial run with identical flags materialize identical grids.
func specFor(cmd, ds string, n, k, runs int, grid string, seed int64, bias biasSpec) (fairbench.GridSpec, error) {
	experiment, ok := shardableCommands[cmd]
	if cmd == "fig8" {
		switch grid {
		case "rows", "attrs":
			experiment, ok = "fig8"+grid, true
		default:
			return fairbench.GridSpec{}, fmt.Errorf("fig8 -shard needs -grid rows or -grid attrs, got %q", grid)
		}
	}
	if !ok {
		return fairbench.GridSpec{}, fmt.Errorf("command %q has no shardable job grid", cmd)
	}
	spec := fairbench.GridSpec{Experiment: experiment, N: n, Seed: seed}
	switch cmd {
	case "fig7", "fig15", "cv":
		if strings.ToLower(ds) == "all" || ds == "" {
			return fairbench.GridSpec{}, fmt.Errorf("%s -shard spans one grid: pick -dataset adult|compas|german", cmd)
		}
		spec.Dataset = ds
	}
	switch cmd {
	case "cv":
		spec.K = k
	case "fig22":
		spec.Runs = runs
	}
	return bias.apply(spec), nil
}

// cmdBiasedFigure runs a figure command whose flags request bias
// injection. It resolves each grid the command spans (datasets for
// fig7/fig15/cv with -dataset all, both fig8 grids) to a spec and
// executes it on the in-process engine backend — exactly the path a
// dispatched or served run of the same spec merges into.
func cmdBiasedFigure(cmd, ds string, n, k, runs int, grid string, seed int64,
	bias biasSpec, out string) error {
	datasets, grids := []string{ds}, []string{grid}
	switch cmd {
	case "fig7", "fig15", "cv":
		if ds == "" || strings.EqualFold(ds, "all") {
			datasets = []string{"adult", "compas", "german"}
		}
	case "fig8":
		grids = []string{"rows", "attrs"}
	}
	if out != "" && len(datasets)*len(grids) > 1 {
		return fmt.Errorf("-out holds one grid's merged output: pick a single -dataset")
	}
	ctx, stop := signalContext()
	defer stop()
	for _, d := range datasets {
		for _, g := range grids {
			spec, err := specFor(cmd, d, n, k, runs, g, seed, bias)
			if err != nil {
				return err
			}
			merged, rep, err := fairbench.Run(ctx, spec, fairbench.RunOptions{
				Backend: fairbench.BackendInproc, Parallelism: parallelism,
			})
			if err != nil {
				return err
			}
			if err := renderRun(merged, rep, out); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	return nil
}

// parseShard parses "i/K", rejecting any trailing input (Sscanf would
// quietly accept "0/3x" or "1/3/9" and run the wrong shard).
func parseShard(s string) (i, k int, err error) {
	is, ks, found := strings.Cut(s, "/")
	if !found {
		return 0, 0, fmt.Errorf("bad -shard %q, want i/K (e.g. 0/3)", s)
	}
	if i, err = strconv.Atoi(is); err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q: %w", s, err)
	}
	if k, err = strconv.Atoi(ks); err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q: %w", s, err)
	}
	if k < 1 || i < 0 || i >= k {
		return 0, 0, fmt.Errorf("bad -shard %q: need 0 <= i < K", s)
	}
	return i, k, nil
}

func cmdShard(spec fairbench.GridSpec, shardArg, out string) error {
	i, k, err := parseShard(shardArg)
	if err != nil {
		return err
	}
	env, err := fairbench.RunShard(spec, i, k)
	if err != nil {
		return err
	}
	data, err := env.Encode()
	if err != nil {
		return err
	}
	if out == "" {
		_, err = fmt.Println(string(data))
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fairbench: wrote shard %d/%d (%d of %d jobs) to %s\n",
		i, k, len(env.Indices), env.Total, out)
	return nil
}

func cmdMerge(files []string, out string) error {
	if len(files) == 0 {
		return fmt.Errorf("merge needs at least one envelope file")
	}
	envs := make([]*fairbench.ShardEnvelope, len(files))
	for i, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		if envs[i], err = fairbench.DecodeShardEnvelope(data); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
	}
	// The named merge attributes every validation failure to its file and
	// lists the shard indices still missing from an incomplete set.
	merged, err := fairbench.MergeShardsNamed(envs, files)
	if err != nil {
		return err
	}
	if err := renderOutput(merged); err != nil {
		return err
	}
	if out != "" {
		data, err := jsonIndent(merged)
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fairbench: wrote merged output to %s\n", out)
	}
	return nil
}

// renderOutput prints a merged grid result with the same tables the
// serial command would print; the renderer itself lives in
// internal/report so the serve daemon shares it.
func renderOutput(out *fairbench.GridOutput) error {
	return report.RenderOutput(os.Stdout, out)
}

func sources(name string, n int, seed int64) ([]*fairbench.Source, error) {
	switch strings.ToLower(name) {
	case "adult":
		return []*fairbench.Source{fairbench.Adult(n, seed)}, nil
	case "compas":
		return []*fairbench.Source{fairbench.COMPAS(n, seed)}, nil
	case "german":
		return []*fairbench.Source{fairbench.German(n, seed)}, nil
	case "all", "":
		return []*fairbench.Source{
			fairbench.Adult(n, seed), fairbench.COMPAS(n, seed), fairbench.German(n, seed),
		}, nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

func cmdList() error {
	byStage := registry.ByStage()
	for _, stage := range []fair.Stage{fair.StagePre, fair.StageIn, fair.StagePost} {
		fmt.Printf("%s-processing:\n", stage)
		for _, n := range byStage[stage] {
			a, err := registry.New(n, registry.Config{})
			if err != nil {
				return err
			}
			var targets []string
			for _, t := range a.Targets() {
				targets = append(targets, string(t))
			}
			desc := strings.Join(targets, ", ")
			if desc == "" {
				desc = "(notion outside the five evaluated metrics)"
			}
			fmt.Printf("  %-18s optimizes %s\n", n, desc)
		}
	}
	return nil
}

func rowsTable(title string, rows []fairbench.Row) *report.Table {
	return report.RowsTable(title, rows)
}

func cmdEval(ds, approach string, n int, seed int64) error {
	if approach == "" {
		return fmt.Errorf("eval requires -approach (see 'fairbench list')")
	}
	srcs, err := sources(ds, n, seed)
	if err != nil {
		return err
	}
	for _, src := range srcs {
		train, test := fairbench.Split(src.Data, 0.7, seed)
		a, err := fairbench.NewApproach(approach, src.Graph, seed)
		if err != nil {
			return err
		}
		row, err := fairbench.Evaluate(a, train, test, src.Graph)
		if err != nil {
			return err
		}
		if err := rowsTable(src.Data.Name, []fairbench.Row{row}).Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func cmdFig7(ds string, n int, seed int64) error {
	srcs, err := sources(ds, n, seed)
	if err != nil {
		return err
	}
	for _, src := range srcs {
		rows, err := fairbench.RunCorrectnessFairness(src, seed)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Figure 7 — correctness & fairness on %s (|D|=%d)", src.Data.Name, src.Data.Len())
		if err := rowsTable(title, rows).Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func cmdFig15(ds string, n int, seed int64) error {
	srcs, err := sources(ds, n, seed)
	if err != nil {
		return err
	}
	for _, src := range srcs {
		rows, err := experiments.Extensions(src, seed)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Figure 15 — appendix extensions on %s (|D|=%d)", src.Data.Name, src.Data.Len())
		if err := rowsTable(title, rows).Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func cmdFig8(n int, seed int64) error {
	src := fairbench.Adult(n, seed)
	// The same defaults Spec normalization applies, so a sharded fig8 run
	// materializes exactly this grid.
	rowsBySize, err := fairbench.RunScalabilityRows(src, experiments.DefaultFig8Sizes(n), seed)
	if err != nil {
		return err
	}
	if err := scalabilityTable("Figure 8(a-c) — runtime overhead vs #data points (Adult)", "points", rowsBySize).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	rowsByAttr, err := fairbench.RunScalabilityAttrs(src, experiments.DefaultFig8AttrCounts(), experiments.DefaultFig8Sample(n), seed)
	if err != nil {
		return err
	}
	if err := scalabilityTable("Figure 8(d-f) — runtime overhead vs #attributes (Adult)", "attrs", rowsByAttr).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func scalabilityTable(title, xlabel string, series map[string][]experiments.ScalabilityPoint) *report.Table {
	return report.ScalabilityTable(title, xlabel, series)
}

func cmdFig9(n int, seed int64) error {
	src := fairbench.COMPAS(n, seed)
	clean, err := fairbench.RunCorrectnessFairness(src, seed)
	if err != nil {
		return err
	}
	results, err := fairbench.RunRobustness(src, seed)
	if err != nil {
		return err
	}
	for _, res := range results {
		title := fmt.Sprintf("Figure 9 — robustness on COMPAS + %s", res.Template)
		if err := rowsTable(title, res.Rows).Render(os.Stdout); err != nil {
			return err
		}
		dt := &report.Table{
			Title:   fmt.Sprintf("Δ vs clean training (%s)", res.Template),
			Headers: []string{"approach", "accuracy drop", "target-fairness drop"},
		}
		for _, d := range experiments.Deltas(clean, res) {
			dt.Add(d.Approach, report.F(d.AccuracyDrop), report.F(d.TargetFairDrop))
		}
		if err := dt.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func cmdFig10(n int, seed int64) error {
	src := fairbench.Adult(n, seed)
	rows, err := fairbench.RunModelSensitivity(src, seed)
	if err != nil {
		return err
	}
	return renderSensitivity(rows, "Adult")
}

func renderSensitivity(rows []experiments.SensitivityRow, dataset string) error {
	return report.RenderSensitivity(os.Stdout, rows, dataset)
}

func cmdCV(ds string, n, k int, seed int64) error {
	srcs, err := sources(ds, n, seed)
	if err != nil {
		return err
	}
	for _, src := range srcs {
		rows, err := fairbench.RunCrossValidation(src, k, seed)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Figures 16-18 — %d-fold cross validation on %s", k, src.Data.Name)
		if err := rowsTable(title, rows).Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func cmdFig22(n, runs int, seed int64) error {
	src := fairbench.Adult(n, seed)
	rows, err := fairbench.RunStability(src, runs, seed)
	if err != nil {
		return err
	}
	return renderStability(rows, runs, "Adult")
}

func renderStability(rows []experiments.StabilityRow, runs int, dataset string) error {
	return report.RenderStability(os.Stdout, rows, runs, dataset)
}

func cmdFig23(n int, seed int64) error {
	src := fairbench.Adult(n, seed)
	sizes := experiments.DefaultFig23Sizes(n)
	series, err := fairbench.RunDataEfficiency(src, sizes, seed)
	if err != nil {
		return err
	}
	return renderEfficiency(series, sizes, "Adult")
}

func renderEfficiency(series map[string][]experiments.EfficiencyPoint, sizes []int, dataset string) error {
	return report.RenderEfficiency(os.Stdout, series, sizes, dataset)
}

// jsonIndent renders the merged output for -out.
func jsonIndent(v any) ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}
