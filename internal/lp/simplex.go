// Package lp implements a dense primal simplex solver for small linear
// programs in standard computational form. Its only production consumer is
// the Hardt post-processor, whose equalized-odds program has four decision
// variables, but the solver is general enough for any small LP.
//
// Problems are stated as:
//
//	minimize    cᵀx
//	subject to  A x (<=|=|>=) b,  x >= 0
//
// and solved with the Big-M method over a standard tableau.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of one linear constraint.
type Relation int

const (
	// LE is a "<=" constraint.
	LE Relation = iota
	// EQ is an "=" constraint.
	EQ
	// GE is a ">=" constraint.
	GE
)

// Constraint is one row aᵀx (rel) b.
type Constraint struct {
	A   []float64
	Rel Relation
	B   float64
}

// Problem is a minimization LP over non-negative variables.
type Problem struct {
	C    []float64 // objective coefficients
	Rows []Constraint
}

// ErrUnbounded reports an unbounded objective.
var ErrUnbounded = errors.New("lp: unbounded")

// ErrInfeasible reports an empty feasible region.
var ErrInfeasible = errors.New("lp: infeasible")

const bigM = 1e7

// Solve runs the Big-M simplex method and returns the optimal x and
// objective value. It assumes right-hand sides may be negative (rows are
// normalized internally).
func Solve(p Problem) (x []float64, obj float64, err error) {
	n := len(p.C)
	if n == 0 {
		return nil, 0, errors.New("lp: empty problem")
	}
	for _, r := range p.Rows {
		if len(r.A) != n {
			return nil, 0, fmt.Errorf("lp: row has %d coefficients, want %d", len(r.A), n)
		}
	}
	// Normalize rows so b >= 0.
	rows := make([]Constraint, len(p.Rows))
	for i, r := range p.Rows {
		a := append([]float64(nil), r.A...)
		b := r.B
		rel := r.Rel
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = Constraint{A: a, Rel: rel, B: b}
	}

	m := len(rows)
	// Column layout: [original n | slack/surplus | artificial].
	nSlack, nArt := 0, 0
	for _, r := range rows {
		switch r.Rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	total := n + nSlack + nArt
	tab := make([][]float64, m+1)
	for i := range tab {
		tab[i] = make([]float64, total+1)
	}
	basis := make([]int, m)

	si, ai := n, n+nSlack
	for i, r := range rows {
		copy(tab[i], r.A)
		tab[i][total] = r.B
		switch r.Rel {
		case LE:
			tab[i][si] = 1
			basis[i] = si
			si++
		case GE:
			tab[i][si] = -1
			si++
			tab[i][ai] = 1
			basis[i] = ai
			ai++
		case EQ:
			tab[i][ai] = 1
			basis[i] = ai
			ai++
		}
	}
	// Objective row: c for original vars, bigM for artificials.
	z := tab[m]
	copy(z, p.C)
	for j := n + nSlack; j < total; j++ {
		z[j] = bigM
	}
	// Price out basic artificial variables.
	for i, b := range basis {
		if z[b] != 0 {
			coef := z[b]
			for j := 0; j <= total; j++ {
				z[j] -= coef * tab[i][j]
			}
		}
	}

	const eps = 1e-9
	for iter := 0; iter < 10000; iter++ {
		// Entering column: most negative reduced cost (Dantzig rule).
		col := -1
		best := -eps
		for j := 0; j < total; j++ {
			if z[j] < best {
				best = z[j]
				col = j
			}
		}
		if col < 0 {
			break // optimal
		}
		// Leaving row: minimum ratio test.
		row := -1
		minRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][col] > eps {
				r := tab[i][total] / tab[i][col]
				if r < minRatio-eps || (math.Abs(r-minRatio) <= eps && row >= 0 && basis[i] < basis[row]) {
					minRatio = r
					row = i
				}
			}
		}
		if row < 0 {
			return nil, 0, ErrUnbounded
		}
		pivot(tab, row, col, total)
		basis[row] = col
	}

	// An artificial variable at a positive level means infeasibility.
	for i, b := range basis {
		if b >= n+nSlack && tab[i][total] > 1e-6 {
			return nil, 0, ErrInfeasible
		}
	}
	x = make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	for j := 0; j < n; j++ {
		obj += p.C[j] * x[j]
	}
	return x, obj, nil
}

func pivot(tab [][]float64, row, col, total int) {
	pr := tab[row]
	pv := pr[col]
	for j := 0; j <= total; j++ {
		pr[j] /= pv
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			tab[i][j] -= f * pr[j]
		}
	}
}
