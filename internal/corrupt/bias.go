// bias.go implements the parameterized bias-injection models of "On
// Comparing Fair Classifiers under Data Bias": controlled distortions of
// a clean training distribution, as opposed to the fixed COMPAS error
// templates of corrupt.go. Two models are provided:
//
//	under-representation: tuples of the unprivileged group are dropped
//	    from the dataset stratified by label — a positive-label tuple
//	    (S=0, Y=1) with probability β⁺, a negative-label one (S=0, Y=0)
//	    with probability β⁻ — shrinking the group's sample without
//	    touching any surviving tuple;
//	label bias: the label of an unprivileged-group tuple is flipped with
//	    probability ν, modeling historically prejudiced annotations.
//
// Both are pure functions of (dataset, rates, seed): each tuple's fate is
// drawn from a private generator derived via rng.Derive(seed, i) from the
// tuple's index, so injection is deterministic and independent of how the
// downstream grid is parallelized or sharded — two processes that inject
// the same spec see bit-identical data. Group-conditional decisions route
// through the same validated {0,1} code mapping as the error templates
// (GroupProb); a dataset with an unexpected sensitive code is rejected,
// never silently mis-binned.
package corrupt

import (
	"fmt"

	"fairbench/internal/dataset"
	"fairbench/internal/rng"
)

// Per-generator stream salts: the under-representation and label-bias
// models must draw independent per-tuple decisions even when invoked with
// the same experiment seed on the same dataset. The salt is mixed into
// the seed before the per-tuple Derive, so the two models never share a
// decision stream.
const (
	underStreamSalt int64 = 0x75_6e_64_65 // "unde"
	labelStreamSalt int64 = 0x6c_61_62_65 // "labe"
)

// tupleHit draws tuple i's injection decision from its own derived
// generator — a pure function of (seed, salt, i), consuming nothing from
// any shared stream. This is what makes injection insensitive to
// iteration order, parallelism, and sharding.
func tupleHit(seed, salt int64, i int, p float64) bool {
	return rng.Derive(seed^salt, int64(i)).Float64() < p
}

// validRate checks one bias rate is a probability; max bounds the open
// or closed upper end (1 excludes certainty for drop rates — dropping an
// entire stratum degenerates the learning task — while flips tolerate it).
func validRate(name string, r, max float64) error {
	if r < 0 || r > max {
		return fmt.Errorf("corrupt: %s rate %v outside [0,%v]", name, r, max)
	}
	return nil
}

// UnderRepresent returns a view of d with unprivileged-group tuples
// dropped by label stratum: a (S=0, Y=1) tuple survives with probability
// 1-betaPos, a (S=0, Y=0) tuple with probability 1-betaNeg, and every
// privileged tuple survives. Surviving tuples are bit-identical views of
// the input (zero-copy; see the dataset view contract). Rates live in
// [0,1) — β=1 would delete a whole stratum — and at least one must be
// positive, since an identity injection should be requested as no
// injection at all.
func UnderRepresent(d *dataset.Dataset, betaPos, betaNeg float64, seed int64) (*dataset.Dataset, error) {
	if err := validRate("under-representation β⁺", betaPos, 0.999); err != nil {
		return nil, err
	}
	if err := validRate("under-representation β⁻", betaNeg, 0.999); err != nil {
		return nil, err
	}
	if betaPos == 0 && betaNeg == 0 {
		return nil, fmt.Errorf("corrupt: under-representation needs a positive β⁺ or β⁻")
	}
	keep := make([]int, 0, d.Len())
	for i := range d.S {
		// GroupProb centralizes the code check; the drop probability is 0
		// for the privileged group and the tuple's stratum rate otherwise.
		beta := betaNeg
		if d.Y[i] == 1 {
			beta = betaPos
		}
		p, err := GroupProb(d.S[i], beta, 0)
		if err != nil {
			return nil, err
		}
		if !tupleHit(seed, underStreamSalt, i, p) {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("corrupt: under-representation dropped every tuple of %s", d.Name)
	}
	out := d.Subset(keep)
	out.Name = fmt.Sprintf("%s+under(β⁺=%g,β⁻=%g)", d.Name, betaPos, betaNeg)
	return out, nil
}

// FlipLabels returns a copy of d where each unprivileged-group tuple's
// label is flipped (Y → 1-Y) with probability nu; privileged tuples are
// untouched. The copy severs label storage from the input (features stay
// zero-copy views), so the clean dataset is never mutated.
func FlipLabels(d *dataset.Dataset, nu float64, seed int64) (*dataset.Dataset, error) {
	if err := validRate("label-bias ν", nu, 1); err != nil {
		return nil, err
	}
	if nu == 0 {
		return nil, fmt.Errorf("corrupt: label bias needs a positive ν")
	}
	// Subset over all indices yields a view with freshly allocated S/Y
	// slices — exactly the isolation label flipping needs, without
	// cloning the feature matrix.
	all := make([]int, d.Len())
	for i := range all {
		all[i] = i
	}
	out := d.Subset(all)
	out.Name = fmt.Sprintf("%s+label(ν=%g)", d.Name, nu)
	for i := range out.S {
		p, err := GroupProb(out.S[i], nu, 0)
		if err != nil {
			return nil, err
		}
		if tupleHit(seed, labelStreamSalt, i, p) {
			out.Y[i] = 1 - out.Y[i]
		}
	}
	return out, nil
}
