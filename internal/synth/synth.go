// Package synth generates the three benchmark datasets — Adult, COMPAS, and
// German — as samples from structural causal models (SCMs) built on the
// causal graphs the paper's Appendix C attributes to each dataset
// (Figure 14). The original CSV files are unavailable in this offline
// environment; the SCMs are calibrated so that every statistic the paper
// reports holds:
//
//   - schema: same attribute count, names, and sensitive attribute (Fig 6);
//   - size: |D| = 45,222 (Adult), 7,214 (COMPAS), 1,000 (German);
//   - group base rates: P(Y=1|S): Adult 11% female vs 32% male; COMPAS 49%
//     African-American vs 61% others (51% vs 39% two-year recidivism, with
//     Y=1 the favorable "does not recidivate" outcome); German 65% female
//     vs 71% male low credit risk;
//   - mediated bias: the sensitive attribute influences the label both
//     directly and through the mediators shown in the causal graphs, so TE
//     decomposes into non-trivial NDE and NIE components as in the paper's
//     Adult analysis (Section 4.2).
//
// Calibration is exact in expectation: after sampling features, per-group
// intercepts of the label logit are solved by bisection so the group base
// rates match their targets.
package synth

import (
	"math"

	"fairbench/internal/causal"
	"fairbench/internal/dataset"
	"fairbench/internal/matrix"
	"fairbench/internal/rng"
)

// Source bundles a generated dataset with the causal graph it was sampled
// from. The graph drives the causal fairness metrics and the causal
// pre-processing approaches.
//
// The provenance fields record which generator produced the source and
// with what arguments. They make a stock benchmark source reconstructible
// from (Dataset, N, Seed) alone — which is what lets the experiment
// drivers route a Source-based run through the fingerprinted Spec path
// (and therefore the result cache) whenever the provenance matches: the
// spec re-synthesizes bit-identical data. A Source assembled by hand
// (e.g. from externally loaded data) leaves Dataset empty and is simply
// never cached.
type Source struct {
	Data  *dataset.Dataset
	Graph *causal.Graph

	// Dataset is the generator's spec name ("adult", "compas", "german");
	// empty for sources not produced by a package generator.
	Dataset string
	// N is the size cap the generator was called with (0 = paper size).
	N int
	// Seed is the generator's seed.
	Seed int64
}

// calibrateIntercept finds b such that mean_i sigmoid(score[i]+b) = target
// by bisection; sigmoid means are monotone in b so this converges fast.
func calibrateIntercept(scores []float64, target float64) float64 {
	lo, hi := -30.0, 30.0
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hi) / 2
		var mean float64
		for _, z := range scores {
			mean += matrix.Sigmoid(z + mid)
		}
		mean /= float64(len(scores))
		if mean < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// sampleLabels draws Y ~ Bernoulli(sigmoid(score+b_s)) with per-group
// intercepts calibrated to the target base rates.
func sampleLabels(scores []float64, s []int, target0, target1 float64, g *rng.RNG) []int {
	var sc0, sc1 []float64
	for i, v := range scores {
		if s[i] == 1 {
			sc1 = append(sc1, v)
		} else {
			sc0 = append(sc0, v)
		}
	}
	b0 := calibrateIntercept(sc0, target0)
	b1 := calibrateIntercept(sc1, target1)
	y := make([]int, len(scores))
	for i, v := range scores {
		b := b0
		if s[i] == 1 {
			b = b1
		}
		y[i] = g.Bernoulli(matrix.Sigmoid(v + b))
	}
	return y
}

func clip(v, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, v))
}

// Adult generates n tuples of the Adult census dataset (default n = 45222
// when n <= 0). Sensitive attribute: Sex (1 = Male privileged); task:
// Income >= $50K.
func Adult(n int, seed int64) *Source {
	nArg := n // provenance records the cap argument (0 = paper size)
	if n <= 0 {
		n = 45222
	}
	g := rng.New(seed)
	attrs := []dataset.Attr{
		{Name: "Age", Kind: dataset.Numeric},
		{Name: "Workclass", Kind: dataset.Categorical, Card: 4},
		{Name: "Education_level", Kind: dataset.Numeric},
		{Name: "Marital_status", Kind: dataset.Categorical, Card: 3},
		{Name: "Occupation", Kind: dataset.Categorical, Card: 6},
		{Name: "Relationship", Kind: dataset.Categorical, Card: 3},
		{Name: "Race", Kind: dataset.Categorical, Card: 2},
		{Name: "Hours_per_week", Kind: dataset.Numeric},
		{Name: "Native_country", Kind: dataset.Categorical, Card: 2},
	}
	d := dataset.NewFlat("Adult", attrs, n)
	d.SName, d.YName = "Sex", "Income"
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		sex := g.Bernoulli(0.67) // 1 = Male
		age := clip(g.Normal(38.5, 13), 17, 90)
		race := g.Bernoulli(0.86)    // 1 = White
		country := g.Bernoulli(0.90) // 1 = US

		// Education_level (years): women's educational access is slightly
		// suppressed in the 1994 census data; age and race also matter.
		edu := clip(g.Normal(9.2+1.0*float64(sex)+0.02*(age-38)+0.8*float64(race)+0.6*float64(country), 2.4), 1, 16)

		// Marital_status: 0=married, 1=never-married, 2=divorced; driven by
		// age and sex.
		pm := matrix.Sigmoid(0.06*(age-30) + 0.7*float64(sex) - 0.2)
		var marital float64
		if g.Float64() < pm {
			marital = 0
		} else if g.Float64() < 0.7 {
			marital = 1
		} else {
			marital = 2
		}

		// Relationship: 0=husband/wife, 1=own-child, 2=not-in-family;
		// follows marital status and sex.
		var rel float64
		if marital == 0 {
			rel = 0
		} else if age < 25 && g.Float64() < 0.6 {
			rel = 1
		} else {
			rel = 2
		}

		// Occupation: 0=admin, 1=craft, 2=exec/managerial, 3=professional,
		// 4=sales, 5=service. Gender and education shift the distribution
		// (occupational segregation is the main indirect path in Adult).
		wExec := math.Exp(0.35*edu/4 + 0.9*float64(sex))
		wProf := math.Exp(0.55 * edu / 4)
		wCraft := math.Exp(1.4 * float64(sex))
		wAdmin := math.Exp(1.2 * (1 - float64(sex)))
		wSales := math.Exp(0.4)
		wServ := math.Exp(1.0 * (1 - float64(sex)))
		occ := float64(g.Categorical([]float64{wAdmin, wCraft, wExec, wProf, wSales, wServ}))

		// Workclass: 0=private, 1=self-emp, 2=gov, 3=other.
		wc := float64(g.Categorical([]float64{
			6, 1 + 0.4*float64(sex), 1.4 + 0.08*edu, 0.3,
		}))

		// Hours_per_week: men and the highly educated work longer paid
		// hours in this data.
		hours := clip(g.Normal(34+6.5*float64(sex)+0.45*(edu-9), 9), 1, 99)

		fillRow(d.X[i], age, wc, edu, marital, occ, rel, float64(race), hours, float64(country))
		d.S[i] = sex

		// Income logit: mediated effects via education, occupation, hours,
		// marital status; the per-group calibrated intercepts add the
		// direct Sex -> Income edge of Fig 14(a).
		score := 0.33*(edu-10) + 0.045*(hours-40) + 0.035*(age-38) -
			0.012*math.Pow(age-50, 2)/10
		switch occ {
		case 2:
			score += 0.9
		case 3:
			score += 0.7
		case 5:
			score -= 0.6
		}
		if marital == 0 {
			score += 1.1
		}
		if wc == 1 {
			score += 0.25
		}
		score += 0.3*float64(race) + 0.2*float64(country)
		scores[i] = score
	}
	d.Y = sampleLabels(scores, d.S, 0.11, 0.32, g)
	return &Source{Data: d, Graph: adultGraph(), Dataset: "adult", N: nArg, Seed: seed}
}

func adultGraph() *causal.Graph {
	g := causal.NewGraph()
	// Fig 14(a): Sex is the (red) sensitive root; Income the (green) label.
	for _, e := range [][2]string{
		{"Sex", "Education_level"}, {"Sex", "Marital_status"}, {"Sex", "Occupation"},
		{"Sex", "Relationship"}, {"Sex", "Hours_per_week"}, {"Sex", "Income"},
		{"Age", "Education_level"}, {"Age", "Marital_status"}, {"Age", "Workclass"},
		{"Age", "Hours_per_week"}, {"Age", "Relationship"}, {"Age", "Income"},
		{"Race", "Education_level"}, {"Race", "Income"},
		{"Native_country", "Education_level"}, {"Native_country", "Income"},
		{"Education_level", "Occupation"}, {"Education_level", "Workclass"},
		{"Education_level", "Hours_per_week"}, {"Education_level", "Income"},
		{"Marital_status", "Relationship"}, {"Marital_status", "Income"},
		{"Occupation", "Income"}, {"Workclass", "Income"},
		{"Relationship", "Income"}, {"Hours_per_week", "Income"},
	} {
		g.MustEdge(e[0], e[1])
	}
	return g
}

// COMPAS generates n tuples of the COMPAS recidivism dataset (default
// n = 7214 when n <= 0). Sensitive attribute: Race (1 = non-African-
// American privileged); task: Risk_of_recidivism with Y=1 the favorable
// "does not reoffend within two years" outcome, matching the paper's
// reading that 51% of African-Americans have Y=0 versus 39% of others.
func COMPAS(n int, seed int64) *Source {
	nArg := n
	if n <= 0 {
		n = 7214
	}
	g := rng.New(seed)
	attrs := []dataset.Attr{
		{Name: "Age", Kind: dataset.Numeric},
		{Name: "Sex", Kind: dataset.Categorical, Card: 2},
		{Name: "Prior", Kind: dataset.Numeric},
	}
	d := dataset.NewFlat("COMPAS", attrs, n)
	d.SName, d.YName = "Race", "Risk_of_recidivism"
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		race := g.Bernoulli(0.49) // 1 = non-African-American (privileged)
		sex := g.Bernoulli(0.81)  // 1 = Male
		age := clip(g.Normal(32+3*float64(race), 11), 18, 80)

		// Prior convictions: over-policing of the unprivileged group feeds
		// the indirect path Race -> Prior -> Risk; the direct Race -> Risk
		// edge carries the rest of the calibrated group gap.
		lam := math.Exp(0.9 - 0.35*float64(race) - 0.018*(age-30) + 0.35*float64(sex))
		prior := float64(g.Poisson(lam))

		fillRow(d.X[i], age, float64(sex), prior)
		d.S[i] = race

		// Favorable outcome (no recidivism) logit: fewer priors, older age,
		// and female sex predict desistance.
		scores[i] = -0.30*prior + 0.035*(age-30) - 0.35*float64(sex)
	}
	d.Y = sampleLabels(scores, d.S, 0.49, 0.61, g)
	return &Source{Data: d, Graph: compasGraph(), Dataset: "compas", N: nArg, Seed: seed}
}

func compasGraph() *causal.Graph {
	g := causal.NewGraph()
	// Fig 14(b): Race -> {Prior, Risk}; Age -> {Prior, Risk};
	// Sex -> {Prior, Risk}; Prior -> Risk.
	for _, e := range [][2]string{
		{"Race", "Prior"}, {"Race", "Risk_of_recidivism"},
		{"Age", "Prior"}, {"Age", "Risk_of_recidivism"},
		{"Sex", "Prior"}, {"Sex", "Risk_of_recidivism"},
		{"Prior", "Risk_of_recidivism"},
	} {
		g.MustEdge(e[0], e[1])
	}
	return g
}

// German generates n tuples of the German credit dataset (default n = 1000
// when n <= 0). Sensitive attribute: Sex (1 = Male privileged); task:
// Credit_risk with Y=1 the favorable "low risk" outcome (70% of the
// population; 65% of females vs 71% of males).
func German(n int, seed int64) *Source {
	nArg := n
	if n <= 0 {
		n = 1000
	}
	g := rng.New(seed)
	attrs := []dataset.Attr{
		{Name: "Age", Kind: dataset.Numeric},
		{Name: "Credit_amount", Kind: dataset.Numeric},
		{Name: "Month", Kind: dataset.Numeric},
		{Name: "Investment", Kind: dataset.Categorical, Card: 3},
		{Name: "Savings", Kind: dataset.Categorical, Card: 4},
		{Name: "Housing", Kind: dataset.Categorical, Card: 3},
		{Name: "Property", Kind: dataset.Categorical, Card: 3},
		{Name: "Status", Kind: dataset.Categorical, Card: 4},
		{Name: "Credit_history", Kind: dataset.Categorical, Card: 3},
	}
	d := dataset.NewFlat("German", attrs, n)
	d.SName, d.YName = "Sex", "Credit_risk"
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		sex := g.Bernoulli(0.69) // 1 = Male
		age := clip(g.Normal(35.5, 11), 19, 75)

		// Savings: 0=none..3=rich; account balances skew male in the data.
		savings := float64(g.Categorical([]float64{
			4 - 1.2*float64(sex), 2, 1.5, 1 + 0.8*float64(sex),
		}))
		// Checking account Status: 0=negative..3=no-account.
		status := float64(g.Categorical([]float64{
			2.5 - 0.6*float64(sex), 2.5, 1.5, 3 + 0.6*float64(sex),
		}))
		// Housing: 0=rent, 1=own, 2=free; owning correlates with age.
		housing := float64(g.Categorical([]float64{
			2.5, 1.5 + 0.07*(age-30), 0.6,
		}))
		// Property: 0=none..2=real estate; correlates with age.
		property := float64(g.Categorical([]float64{
			2, 2, 1 + 0.05*(age-30),
		}))
		// Credit_history: 0=critical, 1=paid duly, 2=all paid; age helps.
		history := float64(g.Categorical([]float64{
			1.8 - 0.02*(age-35), 5, 1.2 + 0.03*(age-35),
		}))
		amount := math.Exp(g.Normal(7.8+0.12*float64(sex), 0.75)) // ~ DM
		months := clip(g.Normal(12+amount/400, 8), 4, 72)
		invest := float64(g.Categorical([]float64{3, 2, 1 + savings/2}))

		fillRow(d.X[i], age, amount, months, invest, savings, housing, property, status, history)
		d.S[i] = sex

		// Low-risk logit: savings, clean history, property, shorter and
		// smaller loans predict repayment.
		scores[i] = 0.35*savings + 0.55*(history-1) + 0.3*property +
			0.25*(housing-1) - 0.25*b2f(status == 0) -
			0.00012*(amount-2500) - 0.02*(months-20) + 0.015*(age-35)
		_ = invest
	}
	d.Y = sampleLabels(scores, d.S, 0.65, 0.71, g)
	return &Source{Data: d, Graph: germanGraph(), Dataset: "german", N: nArg, Seed: seed}
}

func germanGraph() *causal.Graph {
	g := causal.NewGraph()
	// Fig 14(c): Sex and Age are roots; every attribute feeds Credit_risk.
	for _, e := range [][2]string{
		{"Sex", "Savings"}, {"Sex", "Status"}, {"Sex", "Credit_amount"}, {"Sex", "Credit_risk"},
		{"Age", "Housing"}, {"Age", "Property"}, {"Age", "Credit_history"}, {"Age", "Credit_risk"},
		{"Savings", "Investment"}, {"Credit_amount", "Month"},
		{"Credit_amount", "Credit_risk"}, {"Month", "Credit_risk"},
		{"Investment", "Credit_risk"}, {"Savings", "Credit_risk"},
		{"Housing", "Credit_risk"}, {"Property", "Credit_risk"},
		{"Status", "Credit_risk"}, {"Credit_history", "Credit_risk"},
	} {
		g.MustEdge(e[0], e[1])
	}
	return g
}

// fillRow writes vals into an already-allocated flat-backed dataset row;
// the variadic slice never escapes, so sampling stays allocation-free per
// tuple.
func fillRow(row []float64, vals ...float64) {
	copy(row, vals)
}

// b2f converts a bool condition to 1.0/0.0 for use inside logit formulas.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
