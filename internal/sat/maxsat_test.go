package sat

import (
	"testing"
	"testing/quick"
)

func TestExactSimple(t *testing.T) {
	// Hard: (x1 or x2). Soft: ¬x1 (w=2), ¬x2 (w=1). Optimum: x2 true,
	// violating the weight-1 clause.
	f := &Formula{}
	f.AddHard(1, 2)
	f.AddSoft(2, -1)
	f.AddSoft(1, -2)
	res := Solve(f, Options{})
	if !res.Exact {
		t.Fatal("small formula must use the exact engine")
	}
	if res.Cost != 1 {
		t.Fatalf("cost: %v", res.Cost)
	}
	if res.Assignment[1] || !res.Assignment[2] {
		t.Fatalf("assignment: %v", res.Assignment[1:])
	}
}

func TestExactAllSoftSatisfiable(t *testing.T) {
	f := &Formula{}
	f.AddSoft(5, 1)
	f.AddSoft(3, 2)
	res := Solve(f, Options{})
	if res.Cost != 0 {
		t.Fatalf("want zero cost, got %v", res.Cost)
	}
}

func TestExactHardUnsat(t *testing.T) {
	f := &Formula{}
	f.AddHard(1)
	f.AddHard(-1)
	res := Solve(f, Options{})
	if res.Cost >= 0 {
		t.Fatalf("unsat hard clauses must report cost -1, got %v", res.Cost)
	}
}

func TestExactWeighedTradeoff(t *testing.T) {
	// x1 must hold (hard). Soft prefers ¬x1 with huge weight — must be
	// violated anyway.
	f := &Formula{}
	f.AddHard(1)
	f.AddSoft(100, -1)
	res := Solve(f, Options{})
	if res.Cost != 100 || !res.Assignment[1] {
		t.Fatalf("result: cost=%v assign=%v", res.Cost, res.Assignment)
	}
}

func TestCostFunction(t *testing.T) {
	f := &Formula{}
	f.AddHard(1, 2)
	f.AddSoft(3, -1)
	assign := []bool{false, true, false} // x1 true, x2 false
	if c := f.Cost(assign); c != 3 {
		t.Fatalf("cost: %v", c)
	}
	assign = []bool{false, false, false}
	if c := f.Cost(assign); c != -1 {
		t.Fatalf("hard violation must yield -1, got %v", c)
	}
}

func TestLocalSearchFindsFeasible(t *testing.T) {
	// 30 variables force the local-search engine; chain of implications
	// with a satisfiable core.
	f := &Formula{}
	for v := 1; v <= 30; v++ {
		f.AddHard(Lit(v), Lit(-v)) // tautologies register variables
	}
	f.AddHard(1)
	f.AddHard(-1, 2)
	f.AddSoft(1, -2)
	res := Solve(f, Options{Seed: 42, LocalSearchIters: 5000})
	if res.Exact {
		t.Fatal("30-var formula should use local search")
	}
	if res.Cost < 0 {
		t.Fatal("local search failed to satisfy trivially satisfiable hard clauses")
	}
	if !res.Assignment[1] || !res.Assignment[2] {
		t.Fatalf("implied assignment violated: %v %v", res.Assignment[1], res.Assignment[2])
	}
	if res.Cost != 1 {
		t.Fatalf("cost: %v", res.Cost)
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	// Property: on random small formulas, the exact engine's cost equals
	// the brute-force minimum.
	f := func(seed int64) bool {
		g := newDetRand(seed)
		formula := &Formula{}
		nv := 2 + int(g()%4) // 2..5 vars
		nc := 1 + int(g()%5)
		for c := 0; c < nc; c++ {
			width := 1 + int(g()%2)
			var lits []Lit
			for k := 0; k < width; k++ {
				v := 1 + int(g()%uint64(nv))
				l := Lit(v)
				if g()%2 == 0 {
					l = -l
				}
				lits = append(lits, l)
			}
			formula.AddSoft(float64(1+g()%3), lits...)
		}
		for v := nv; v >= 1; v-- {
			formula.track([]Lit{Lit(v)})
		}
		got := Solve(formula, Options{}).Cost
		want := bruteForce(formula)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func bruteForce(f *Formula) float64 {
	n := f.NumVars
	best := -1.0
	assign := make([]bool, n+1)
	for mask := 0; mask < 1<<n; mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<(v-1)) != 0
		}
		c := f.Cost(assign)
		if c >= 0 && (best < 0 || c < best) {
			best = c
		}
	}
	return best
}

// newDetRand is a tiny deterministic generator for the property test.
func newDetRand(seed int64) func() uint64 {
	x := uint64(seed)*2654435761 + 1
	return func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
}
