package dispatch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"fairbench/internal/experiments"
	"fairbench/internal/shard"
)

// TestMain doubles as the worker subprocess body: dispatch tests re-exec
// the test binary with FAIRBENCH_TEST_HELPER set, the same pattern the
// standard library uses for exec tests. "worker" runs a real shard via
// dispatch.Worker; "hang" writes its pid to a file and sleeps so the
// parent test can SIGKILL a genuinely live worker mid-run.
func TestMain(m *testing.M) {
	switch os.Getenv("FAIRBENCH_TEST_HELPER") {
	case "":
		os.Exit(m.Run())
	case "worker":
		shard, err := strconv.Atoi(os.Getenv("HELPER_SHARD"))
		if err == nil {
			err = Worker(os.Getenv("HELPER_MANIFEST"), shard, os.Getenv("HELPER_OUT"))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	case "hang":
		pidfile := os.Getenv("HELPER_PIDFILE")
		if err := os.WriteFile(pidfile, []byte(strconv.Itoa(os.Getpid())), 0o644); err != nil {
			os.Exit(1)
		}
		time.Sleep(time.Minute) // the parent kills us long before this
		os.Exit(0)
	case "fail":
		fmt.Fprintln(os.Stderr, "injected worker failure")
		os.Exit(3)
	}
	os.Exit(2)
}

// helperSpawn re-execs this test binary in the given helper mode.
func helperSpawn(mode string, extraEnv ...string) SpawnFunc {
	return func(manifestPath string, shard int, outPath string) (*exec.Cmd, error) {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			"FAIRBENCH_TEST_HELPER="+mode,
			"HELPER_MANIFEST="+manifestPath,
			"HELPER_SHARD="+strconv.Itoa(shard),
			"HELPER_OUT="+outPath,
		)
		cmd.Env = append(cmd.Env, extraEnv...)
		return cmd, nil
	}
}

func smallSpec() experiments.Spec {
	return experiments.Spec{Experiment: "fig23", Dataset: "compas", N: 300, Seed: 6,
		Sizes: []int{60, 120}, Names: []string{"LR", "KamCal-DP"}}
}

// canonical marshals an output with its timing fields zeroed (dispatch
// only guarantees the metric payload).
func canonical(t *testing.T, out *experiments.Output) []byte {
	t.Helper()
	for _, pts := range out.Efficiency {
		for i := range pts {
			pts[i].Row.Seconds, pts[i].Row.Overhead = 0, 0
		}
	}
	for i := range out.Rows {
		out.Rows[i].Seconds, out.Rows[i].Overhead = 0, 0
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func serialReference(t *testing.T, spec experiments.Spec) []byte {
	t.Helper()
	g, err := experiments.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	return canonical(t, out)
}

// TestDispatchMatchesSerial: the plain happy path — K worker
// subprocesses, merged output byte-identical to a serial run.
func TestDispatchMatchesSerial(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	out, rep, err := Run(spec, Options{
		Dir: t.TempDir(), Shards: 3, Procs: 2, Spawn: helperSpawn("worker"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("dispatched output diverges from serial run")
	}
	if len(rep.Ran) != 3 || len(rep.Reused) != 0 || rep.CellsComputed != 4 || rep.CellsCached != 0 {
		t.Fatalf("report %+v", rep)
	}
}

// TestKillResumeMatchesSerial is the PR's acceptance gate: dispatch a
// grid, SIGKILL one worker while it is genuinely running, watch the
// dispatch fail resumably, resume it, and require the merged metric
// output to be byte-identical to a serial cold run. Then re-dispatch the
// same grid warm into a fresh directory and require zero cell
// computations, proven by the envelopes' cached provenance.
func TestKillResumeMatchesSerial(t *testing.T) {
	spec := experiments.Spec{Experiment: "fig7", Dataset: "german", N: 150, Seed: 5}
	want := serialReference(t, spec)
	dir, cacheDir := t.TempDir(), t.TempDir()
	pidfile := filepath.Join(t.TempDir(), "hang.pid")

	// The killer: SIGKILL the hanging worker as soon as it reports a pid.
	killed := make(chan error, 1)
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			data, err := os.ReadFile(pidfile)
			if err == nil {
				pid, err := strconv.Atoi(strings.TrimSpace(string(data)))
				if err != nil {
					killed <- err
					return
				}
				killed <- syscall.Kill(pid, syscall.SIGKILL)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		killed <- fmt.Errorf("no worker pid appeared to kill")
	}()

	// Shard 1's worker hangs (and gets killed); procs=1 keeps the
	// sequence deterministic: shard 0 completes, shard 1 dies, shard 2
	// completes, dispatch fails listing shard 1.
	normal := helperSpawn("worker")
	spawn := func(manifestPath string, shard int, outPath string) (*exec.Cmd, error) {
		if shard == 1 {
			return helperSpawn("hang", "HELPER_PIDFILE="+pidfile)(manifestPath, shard, outPath)
		}
		return normal(manifestPath, shard, outPath)
	}
	_, rep, err := Run(spec, Options{
		Dir: dir, Shards: 3, Procs: 1, Retries: 0, CacheDir: cacheDir, Spawn: spawn,
	})
	if err == nil {
		t.Fatal("dispatch succeeded despite a killed worker")
	}
	if ke := <-killed; ke != nil {
		t.Fatalf("failed to kill the worker: %v", ke)
	}
	if len(rep.Failed) != 1 || rep.Failed[0] != 1 {
		t.Fatalf("failed shards %v, want [1]", rep.Failed)
	}
	if !strings.Contains(err.Error(), "shard(s) 1 still missing") ||
		!strings.Contains(err.Error(), "resume") {
		t.Fatalf("error does not name the missing shard with a resume hint: %v", err)
	}
	for _, i := range []int{0, 2} {
		if _, err := os.Stat(filepath.Join(dir, PartName(i))); err != nil {
			t.Fatalf("surviving shard %d left no envelope: %v", i, err)
		}
	}

	// Resume completes only the missing shard and merges.
	out, rep, err := Resume(dir, Options{Procs: 2, Spawn: normal})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reused) != 2 || len(rep.Ran) != 1 || rep.Ran[0] != 1 {
		t.Fatalf("resume report %+v", rep)
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("killed-and-resumed output diverges from serial run")
	}

	// Warm re-dispatch: every cell of every shard comes from the cache.
	out2, rep2, err := Run(spec, Options{
		Dir: t.TempDir(), Shards: 3, Procs: 2, CacheDir: cacheDir, Spawn: normal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CellsComputed != 0 {
		t.Fatalf("warm re-dispatch computed %d cells, want 0 (cached %d)",
			rep2.CellsComputed, rep2.CellsCached)
	}
	if rep2.CellsCached != rep.CellsCached+rep.CellsComputed {
		t.Fatalf("warm cached %d cells, want the full grid", rep2.CellsCached)
	}
	if !bytes.Equal(want, canonical(t, out2)) {
		t.Fatal("warm re-dispatch diverges from serial run")
	}
}

// TestRetriesRecoverFlakyWorker: a shard whose first attempt exits
// non-zero succeeds on the retry without failing the run.
func TestRetriesRecoverFlakyWorker(t *testing.T) {
	spec := smallSpec()
	want := serialReference(t, spec)
	attempts := 0
	normal, fail := helperSpawn("worker"), helperSpawn("fail")
	spawn := func(manifestPath string, shard int, outPath string) (*exec.Cmd, error) {
		if shard == 0 {
			attempts++
			if attempts == 1 {
				return fail(manifestPath, shard, outPath)
			}
		}
		return normal(manifestPath, shard, outPath)
	}
	out, rep, err := Run(spec, Options{
		Dir: t.TempDir(), Shards: 2, Procs: 1, Retries: 1, Spawn: spawn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts[0] != 2 {
		t.Fatalf("shard 0 took %d attempts, want 2", rep.Attempts[0])
	}
	if !bytes.Equal(want, canonical(t, out)) {
		t.Fatal("retried output diverges from serial run")
	}
}

// TestWorkerLyingAboutSuccessIsCaught: an exit-0 worker that wrote no
// envelope must be treated as a failure, not silently merged around.
func TestWorkerLyingAboutSuccessIsCaught(t *testing.T) {
	spawn := func(string, int, string) (*exec.Cmd, error) {
		return exec.Command("true"), nil
	}
	_, _, err := Run(smallSpec(), Options{
		Dir: t.TempDir(), Shards: 2, Procs: 1, Spawn: spawn,
	})
	if err == nil || !strings.Contains(err.Error(), "exited 0 but") {
		t.Fatalf("want exit-0-without-envelope failure, got %v", err)
	}
}

func TestResumeRequiresManifest(t *testing.T) {
	if _, _, err := Resume(t.TempDir(), Options{}); err == nil ||
		!strings.Contains(err.Error(), "nothing to resume") {
		t.Fatalf("want nothing-to-resume error, got %v", err)
	}
}

// TestDirCannotMixRuns: dispatching a different grid into a live
// dispatch directory must be refused.
func TestDirCannotMixRuns(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := Run(smallSpec(), Options{Dir: dir, Shards: 2, Procs: 1, Spawn: helperSpawn("worker")}); err != nil {
		t.Fatal(err)
	}
	other := smallSpec()
	other.Seed = 99
	if _, _, err := Run(other, Options{Dir: dir, Shards: 2, Procs: 1, Spawn: helperSpawn("worker")}); err == nil ||
		!strings.Contains(err.Error(), "different run") {
		t.Fatalf("want different-run refusal, got %v", err)
	}
	// Same grid, conflicting cache directory: the manifest's cache is
	// part of the run's identity and cannot be switched silently.
	if _, _, err := Run(smallSpec(), Options{
		Dir: dir, Shards: 2, Procs: 1, CacheDir: t.TempDir(), Spawn: helperSpawn("worker"),
	}); err == nil || !strings.Contains(err.Error(), "cannot change") {
		t.Fatalf("want cache-dir conflict refusal, got %v", err)
	}
}

// TestValidatePartEnforcesPlanBoundaries: under an explicit range plan,
// a same-grid envelope cut on different boundaries must be rejected —
// otherwise a copied part from another run directory of the same grid
// would be reused forever and poison every merge attempt.
func TestValidatePartEnforcesPlanBoundaries(t *testing.T) {
	spec, err := smallSpec().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	g, err := experiments.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := g.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	n := g.Len()
	planA := []shard.Range{{Start: 0, End: 1}, {Start: 1, End: n}}
	planB := []shard.Range{{Start: 0, End: n - 1}, {Start: n - 1, End: n}}
	m := &Manifest{Version: ManifestVersion, Spec: spec, Shards: 2, Fingerprint: fp, Ranges: planA}

	dir := t.TempDir()
	write := func(plan []shard.Range, i int) string {
		env, err := experiments.RunShardPlanned(spec, plan, i, nil)
		if err != nil {
			t.Fatal(err)
		}
		data, err := env.Encode()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, PartName(i))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// Same grid, same fingerprint, same plan position — wrong boundaries.
	path := write(planB, 0)
	if err := ValidatePart(path, m, 0); err == nil ||
		!strings.Contains(err.Error(), "range") {
		t.Fatalf("foreign-boundary envelope accepted: %v", err)
	}
	// The genuine cut validates.
	if err := ValidatePart(write(planA, 0), m, 0); err != nil {
		t.Fatal(err)
	}
}

// TestInvalidPartIsDiscardedAndRerun: a corrupt part file in the
// directory is moved aside and its shard re-executed.
func TestInvalidPartIsDiscardedAndRerun(t *testing.T) {
	spec := smallSpec()
	dir := t.TempDir()
	if _, _, err := Run(spec, Options{Dir: dir, Shards: 2, Procs: 1, Spawn: helperSpawn("worker")}); err != nil {
		t.Fatal(err)
	}
	part := filepath.Join(dir, PartName(1))
	if err := os.WriteFile(part, []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, rep, err := Resume(dir, Options{Procs: 1, Spawn: helperSpawn("worker")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reused) != 1 || len(rep.Ran) != 1 || rep.Ran[0] != 1 {
		t.Fatalf("report %+v", rep)
	}
	if _, err := os.Stat(part + ".invalid"); err != nil {
		t.Fatal("invalid part not preserved aside")
	}
	if !bytes.Equal(serialReference(t, spec), canonical(t, out)) {
		t.Fatal("re-run output diverges from serial run")
	}
}

func TestBoundedBufferCapsAndMarks(t *testing.T) {
	b := NewBoundedBuffer(128)
	line := []byte("0123456789abcdef\n")
	var total int64
	for i := 0; i < 100; i++ {
		n, err := b.Write(line)
		if err != nil || n != len(line) {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
		total += int64(n)
	}
	s := b.String()
	if int64(len(s)) >= total {
		t.Fatalf("buffer did not cap: holds %d of %d bytes written", len(s), total)
	}
	if b.Truncated() == 0 {
		t.Fatal("no bytes reported dropped after overflow")
	}
	if !strings.Contains(s, fmt.Sprintf("[%d stderr bytes dropped]", b.Truncated())) {
		t.Fatalf("truncation marker missing from %q", s)
	}
	if !strings.HasPrefix(s, "0123456789abcdef") {
		t.Fatalf("head of the stream lost: %q", s[:32])
	}
	if !strings.HasSuffix(strings.TrimRight(s, "\n"), "0123456789abcdef") {
		t.Fatalf("tail of the stream lost: %q", s[len(s)-32:])
	}
}

func TestBoundedBufferSmallWritesUntruncated(t *testing.T) {
	b := NewBoundedBuffer(1024)
	b.Write([]byte("only a few bytes"))
	if got := b.String(); got != "only a few bytes" {
		t.Fatalf("got %q", got)
	}
	if b.Truncated() != 0 {
		t.Fatalf("spurious truncation: %d", b.Truncated())
	}
}

// TestStderrTailKeepsTruncationMarker: when the capture was capped, the
// marker line must survive StderrTail's last-3-lines cut — a failure
// event that silently hid the fact that output was dropped would send
// operators debugging the wrong thing.
func TestStderrTailKeepsTruncationMarker(t *testing.T) {
	b := NewBoundedBuffer(256)
	for i := 0; i < 200; i++ {
		fmt.Fprintf(b, "noise line %d\n", i)
	}
	tail := StderrTail(b.String())
	if !strings.Contains(tail, "stderr bytes dropped") {
		t.Fatalf("marker cut from tail: %q", tail)
	}
	if !strings.Contains(tail, "199") {
		t.Fatalf("final lines cut from tail: %q", tail)
	}
}

// TestAcceptPartPromotesExactlyValidParts: AcceptPart is the single
// promotion point schedulers route acceptance through — a validating
// attempt file is renamed into place, an invalid one is refused with
// the part path untouched.
func TestAcceptPartPromotesExactlyValidParts(t *testing.T) {
	spec, err := smallSpec().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	g, err := experiments.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := g.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	plan := []shard.Range{{Start: 0, End: 1}, {Start: 1, End: g.Len()}}
	m := &Manifest{Version: ManifestVersion, Spec: spec, Shards: 2, Fingerprint: fp, Ranges: plan}
	dir := t.TempDir()
	partPath := filepath.Join(dir, PartName(0))

	bad := filepath.Join(dir, "part-000.json.attempt-0")
	if err := os.WriteFile(bad, []byte(`{"fault":"corrupt"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AcceptPart(bad, partPath, m, 0); err == nil {
		t.Fatal("corrupt attempt accepted")
	}
	if _, err := os.Stat(partPath); err == nil {
		t.Fatal("rejected attempt still materialized the part")
	}

	env, err := experiments.RunShardPlanned(spec, plan, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "part-000.json.attempt-1")
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AcceptPart(good, partPath, m, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(good); !os.IsNotExist(err) {
		t.Fatal("accepted attempt file was copied, not renamed")
	}
	if err := ValidatePart(partPath, m, 0); err != nil {
		t.Fatalf("promoted part does not validate: %v", err)
	}
}
