package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the dataset as CSV with a header row of attribute
// names followed by the sensitive attribute and label columns. Weights are
// not serialized (they are a transient training artifact).
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.Dim()+2)
	for _, a := range d.Attrs {
		header = append(header, a.Name)
	}
	header = append(header, d.SName, d.YName)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i, row := range d.X {
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[len(row)] = strconv.Itoa(d.S[i])
		rec[len(row)+1] = strconv.Itoa(d.Y[i])
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously written by WriteCSV. Attribute kinds
// must be supplied by the caller because CSV does not carry them; attrs may
// be nil, in which case every column is treated as Numeric.
func ReadCSV(r io.Reader, name string, attrs []Attr) (*Dataset, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv: %w", err)
	}
	if len(rows) < 1 {
		return nil, fmt.Errorf("dataset: csv %s has no header", name)
	}
	header := rows[0]
	if len(header) < 3 {
		return nil, fmt.Errorf("dataset: csv %s needs at least one attribute plus S and Y", name)
	}
	dim := len(header) - 2
	if attrs == nil {
		attrs = make([]Attr, dim)
		for j := 0; j < dim; j++ {
			attrs[j] = Attr{Name: header[j], Kind: Numeric}
		}
	}
	if len(attrs) != dim {
		return nil, fmt.Errorf("dataset: csv %s has %d attribute columns, caller supplied %d kinds", name, dim, len(attrs))
	}
	d := &Dataset{
		Name:  name,
		Attrs: attrs,
		SName: header[dim],
		YName: header[dim+1],
	}
	for li, rec := range rows[1:] {
		if len(rec) != dim+2 {
			return nil, fmt.Errorf("dataset: csv %s line %d has %d fields, want %d", name, li+2, len(rec), dim+2)
		}
		row := make([]float64, dim)
		for j := 0; j < dim; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv %s line %d col %d: %w", name, li+2, j, err)
			}
			row[j] = v
		}
		s, err := strconv.Atoi(rec[dim])
		if err != nil {
			return nil, fmt.Errorf("dataset: csv %s line %d sensitive value: %w", name, li+2, err)
		}
		y, err := strconv.Atoi(rec[dim+1])
		if err != nil {
			return nil, fmt.Errorf("dataset: csv %s line %d label: %w", name, li+2, err)
		}
		d.X = append(d.X, row)
		d.S = append(d.S, s)
		d.Y = append(d.Y, y)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
