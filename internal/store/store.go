// Package store is the content-addressed result cache behind resumable
// grid execution: a map from a grid cell's full identity — (grid
// fingerprint, cell index, seed, GOARCH) — to the serialized cell
// payload it produced. Because a fingerprint hashes the normalized spec
// and the grid shape, and every cell is a pure function of (spec, index)
// on one architecture, a cached payload is exactly the bytes a fresh
// computation would yield; re-running any figure therefore only computes
// cache-miss cells while staying byte-identical to a cold run.
//
// The package provides three Backend implementations sharing one entry
// codec and one verification discipline:
//
//   - DiskStore: the on-disk cache (the original backend). Entries are
//     written atomically (temp file + rename in the destination
//     directory), so a SIGKILL mid-write can never leave a half-entry
//     that a later run would trust.
//   - RemoteStore: an HTTP client for the same entries served by
//     Handler (mounted under /cache/ on `fairbench serve` or the
//     standalone `fairbench cachesrv`), so a fleet and CI share one
//     warm cache across machines and runs.
//   - TieredStore: local disk in front of a remote — read-through with
//     promotion, write-through on compute, and degradation to
//     local-only when the remote is unreachable.
//
// Reads verify integrity end to end regardless of backend: the entry's
// recorded key fields must equal the requested key and the payload must
// match its recorded SHA-256, so a corrupted, truncated, or mis-filed
// entry — on disk or arriving over the wire — is rejected rather than
// served; the cell is simply recomputed. Lookups against a different
// seed, index, fingerprint, or architecture can never be satisfied by an
// entry written under another key, because the key is both the address
// and part of the verified content.
package store

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
)

// Version is the entry schema version; reads reject entries from another
// version rather than guessing at field semantics.
const Version = 1

// Key is the full identity of one cached grid cell.
type Key struct {
	// Fingerprint is the grid's shard fingerprint (hex SHA-256 of the
	// canonical spec plus the job count; see internal/shard.Fingerprint).
	Fingerprint string
	// Index is the cell's global job index within the grid.
	Index int
	// Seed is the grid's experiment seed. It is already hashed into the
	// fingerprint; keying on it again means a poisoned or mis-filed entry
	// must forge two independent records to satisfy a wrong-seed lookup.
	Seed int64
	// Arch is the GOARCH the payload was computed on. Float arithmetic is
	// architecture-sensitive, so entries never cross architectures: a
	// mixed-arch fleet sharing one store recomputes every cell per
	// architecture rather than serving subtly different floats. That
	// trade is silent at this layer by design — engine reports and the
	// serve daemon's /runs/{id} status surface the coordinator's Arch so
	// operators can see which partition of the store a run hits.
	Arch string
}

func (k Key) validate() error {
	switch {
	case len(k.Fingerprint) < 16:
		return fmt.Errorf("store: fingerprint %q too short to address", k.Fingerprint)
	case k.Index < 0:
		return fmt.Errorf("store: negative cell index %d", k.Index)
	case k.Arch == "":
		return fmt.Errorf("store: key has no architecture")
	}
	return nil
}

// EncodeKeyPath renders k as the canonical URL path suffix of the HTTP
// cache protocol: fingerprint/arch/seed/index, four slash-separated
// segments with no escaping needed (the fingerprint is lowercase hex,
// the architecture a GOARCH token, seed and index plain decimals). The
// empty string is returned for keys that are not path-safe; such keys
// never address a cached cell anyway.
func EncodeKeyPath(k Key) string {
	if ParseKeyFields(k.Fingerprint, k.Arch,
		strconv.FormatInt(k.Seed, 10), strconv.Itoa(k.Index)) != (Key{}) {
		return fmt.Sprintf("%s/%s/%d/%d", k.Fingerprint, k.Arch, k.Seed, k.Index)
	}
	return ""
}

// DecodeKeyPath parses a path in EncodeKeyPath's form back into a Key.
// It accepts exactly the canonical rendering — four validated segments,
// decimals without leading zeros or signs beyond a leading minus on the
// seed — so decode(encode(k)) == k and encode(decode(p)) == p for every
// accepted p. Anything else is an error, never a guess.
func DecodeKeyPath(p string) (Key, error) {
	seg := strings.Split(p, "/")
	if len(seg) != 4 {
		return Key{}, fmt.Errorf("store: key path %q: want fingerprint/arch/seed/index", p)
	}
	k := ParseKeyFields(seg[0], seg[1], seg[2], seg[3])
	if k == (Key{}) {
		return Key{}, fmt.Errorf("store: key path %q: invalid field", p)
	}
	return k, nil
}

// ParseKeyFields validates and assembles the four key fields from their
// string forms (as they appear in a cache URL), returning the zero Key
// if any field is malformed. The fingerprint must be lowercase hex of at
// least 16 characters, the architecture a [a-z0-9] token, and seed and
// index canonical decimals (index non-negative).
func ParseKeyFields(fp, arch, seed, index string) Key {
	if len(fp) < 16 || len(fp) > 128 || !isLowerHex(fp) || !isArchToken(arch) {
		return Key{}
	}
	s, err := strconv.ParseInt(seed, 10, 64)
	if err != nil || strconv.FormatInt(s, 10) != seed {
		return Key{}
	}
	i, err := strconv.Atoi(index)
	if err != nil || i < 0 || strconv.Itoa(i) != index {
		return Key{}
	}
	return Key{Fingerprint: fp, Index: i, Seed: s, Arch: arch}
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return s != ""
}

func isArchToken(s string) bool {
	if s == "" || len(s) > 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'z') {
			return false
		}
	}
	return true
}

// entry is the serialized form of one cached cell — identical on disk
// and on the wire: the key fields it was written under plus the payload
// and its checksum.
type entry struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint"`
	Index       int             `json:"index"`
	Seed        int64           `json:"seed"`
	Arch        string          `json:"arch"`
	SHA256      string          `json:"sha256"`
	Payload     json.RawMessage `json:"payload"`
}

// EncodeEntry serializes payload under k in the store's entry format —
// the same bytes DiskStore writes to disk and the HTTP protocol carries.
func EncodeEntry(k Key, payload []byte) ([]byte, error) {
	if err := k.validate(); err != nil {
		return nil, err
	}
	e := entry{
		Version:     Version,
		Fingerprint: k.Fingerprint,
		Index:       k.Index,
		Seed:        k.Seed,
		Arch:        k.Arch,
		SHA256:      payloadSum(payload),
		Payload:     json.RawMessage(payload),
	}
	data, err := json.Marshal(&e)
	if err != nil {
		return nil, fmt.Errorf("store: encoding entry: %w", err)
	}
	return data, nil
}

// DecodeEntry is the single verification gate every read goes through:
// it decodes data as an entry and returns the payload only if the schema
// version matches, the recorded key fields equal k exactly, and the
// payload matches its recorded SHA-256. Any other bytes — truncated,
// bit-flipped, mis-keyed, or adversarial — are an error, never a payload.
func DecodeEntry(k Key, data []byte) ([]byte, error) {
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("store: undecodable entry: %w", err)
	}
	switch {
	case e.Version != Version:
		return nil, fmt.Errorf("store: entry version %d, want %d", e.Version, Version)
	case e.Fingerprint != k.Fingerprint || e.Index != k.Index ||
		e.Seed != k.Seed || e.Arch != k.Arch:
		return nil, fmt.Errorf("store: entry recorded under different key fields")
	case e.SHA256 != payloadSum(e.Payload):
		return nil, fmt.Errorf("store: payload checksum mismatch")
	}
	return e.Payload, nil
}

// Counters are the in-memory access statistics of one Backend handle.
type Counters struct {
	// Hits counts Get calls served from a verified entry.
	Hits int64
	// Misses counts Get calls with no entry in the backend.
	Misses int64
	// Writes counts successful Put calls.
	Writes int64
	// Rejected counts entries that were present but refused verification:
	// corrupted, truncated, wrong schema version, or recorded under a
	// different key. A rejected read is a miss — the cell is recomputed —
	// but a nonzero count means bytes in the cache (or on the wire) were
	// wrong, which is worth surfacing; engine reports and the serve
	// daemon's /metrics do.
	Rejected int64
	// Errors counts transport-level remote failures (connection refused,
	// timeouts, 5xx responses). Always zero for a DiskStore; for tiered
	// stores it is the signal behind degradation to local-only.
	Errors int64
}

// add returns field-wise c + o.
func (c Counters) add(o Counters) Counters {
	return Counters{
		Hits:     c.Hits + o.Hits,
		Misses:   c.Misses + o.Misses,
		Writes:   c.Writes + o.Writes,
		Rejected: c.Rejected + o.Rejected,
		Errors:   c.Errors + o.Errors,
	}
}

// Backend is a verified result cache: the contract shared by DiskStore,
// RemoteStore, and TieredStore, and the type the execution layers
// (experiments, dispatch, sched, engine) plan and serve against. Every
// implementation guarantees that Get returns only payloads that passed
// DecodeEntry's full verification for exactly the requested key, that
// Has mirrors Get's answer, and that all methods are safe for concurrent
// use.
//
// Callers hold a nil Backend (untyped nil interface) to mean "caching
// disabled"; construct backends with Open/NewRemote/NewTiered or the
// configuration-driven OpenBackend, never by wrapping a possibly-nil
// concrete pointer in the interface.
type Backend interface {
	// Get returns the verified payload cached under k, or ok=false on a
	// miss. Entries that fail verification read as misses (and count as
	// Rejected), so the caller recomputes instead of trusting them.
	Get(k Key) ([]byte, bool)
	// Has reports whether a verified entry exists under k, with Get's
	// verification semantics.
	Has(k Key) bool
	// Put caches payload under k.
	Put(k Key, payload []byte) error
	// Counters returns the handle's in-memory access statistics.
	Counters() Counters
}

// Stats combines a DiskStore handle's counters with a walk of the cache
// directory.
type Stats struct {
	Counters
	// Entries is the number of cell entries on disk.
	Entries int
	// Bytes is their total size.
	Bytes int64
	// Fingerprints is the number of distinct grids with at least one
	// cached cell.
	Fingerprints int
}

// DiskStore is a Backend over one cache directory. It is safe for
// concurrent use by any number of goroutines and — because writes are
// atomic renames of fully-written temp files — by concurrent processes
// sharing the directory.
type DiskStore struct {
	dir      string
	hits     atomic.Int64
	misses   atomic.Int64
	writes   atomic.Int64
	rejected atomic.Int64
}

var _ Backend = (*DiskStore)(nil)

// Open creates (if needed) and opens a cache directory.
func Open(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty cache directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "cells"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// OpenBackend builds the Backend a run's configuration asks for: a
// DiskStore for a local cache directory, a RemoteStore for a shared
// cache URL, a TieredStore (disk in front, remote behind) when both are
// set, and an untyped nil Backend — caching disabled — when neither is.
// It is the one constructor call sites should use when either input may
// be empty, precisely so that "no cache" is interface-nil rather than a
// typed nil pointer smuggled into the interface.
func OpenBackend(dir, remoteURL string) (Backend, error) {
	switch {
	case dir == "" && remoteURL == "":
		return nil, nil
	case remoteURL == "":
		return Open(dir)
	case dir == "":
		return NewRemote(remoteURL)
	}
	local, err := Open(dir)
	if err != nil {
		return nil, err
	}
	remote, err := NewRemote(remoteURL)
	if err != nil {
		return nil, err
	}
	return NewTiered(local, remote), nil
}

// Dir returns the cache directory this handle operates on.
func (s *DiskStore) Dir() string { return s.dir }

// path lays entries out as
// cells/<fp[:2]>/<fp>/<arch>/s<seed>/<index>.json: the two-byte fan-out
// keeps directory sizes bounded, and grouping by fingerprint first makes
// GC of a whole grid a single RemoveAll.
func (s *DiskStore) path(k Key) string {
	return filepath.Join(s.dir, "cells", k.Fingerprint[:2], k.Fingerprint,
		k.Arch, fmt.Sprintf("s%d", k.Seed), fmt.Sprintf("%d.json", k.Index))
}

func payloadSum(payload []byte) string {
	return fmt.Sprintf("%x", sha256.Sum256(payload))
}

// Get returns the verified payload cached under k, or ok=false on a miss.
// An entry that exists but fails verification — undecodable, truncated,
// wrong schema version, checksum mismatch, or recorded under key fields
// that differ from k — counts as Rejected, is removed best-effort, and
// reads as a miss, so the caller recomputes instead of trusting it.
func (s *DiskStore) Get(k Key) ([]byte, bool) {
	if k.validate() != nil {
		return nil, false
	}
	p := s.path(k)
	data, err := os.ReadFile(p)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, err := DecodeEntry(k, data)
	if err != nil {
		s.rejected.Add(1)
		os.Remove(p) // quarantine by deletion; the cell will be recomputed
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// Has reports whether a verified entry exists under k, with Get's full
// verification and counter semantics (a probe is an access, and a
// corrupt entry is rejected and removed). Cache-aware shard planning
// uses it to cost cells at plan time: a cell Has reports true for is one
// the run's workers will be served, not recompute.
func (s *DiskStore) Has(k Key) bool {
	_, ok := s.Get(k)
	return ok
}

// Put caches payload under k, atomically: the entry is fully written to a
// temp file in the destination directory and renamed into place, so
// concurrent writers of the same cell (which, by the determinism
// contract, carry identical payloads) and killed processes are both
// harmless.
func (s *DiskStore) Put(k Key, payload []byte) error {
	data, err := EncodeEntry(k, payload)
	if err != nil {
		return err
	}
	p := s.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := WriteFileAtomic(p, data); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// WriteFileAtomic writes data to path via a same-directory temp file and
// rename, so path never holds a partial write — the primitive behind
// every durable artifact of the resumable-execution layer (cache
// entries here; manifests and envelope part files in internal/dispatch).
func WriteFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Counters returns the handle's in-memory access statistics.
func (s *DiskStore) Counters() Counters {
	return Counters{
		Hits:     s.hits.Load(),
		Misses:   s.misses.Load(),
		Writes:   s.writes.Load(),
		Rejected: s.rejected.Load(),
	}
}

// Stats walks the cache directory and reports entry count, total bytes,
// and distinct fingerprints, alongside the handle's counters.
func (s *DiskStore) Stats() (Stats, error) {
	st := Stats{Counters: s.Counters()}
	fps := map[string]bool{}
	err := s.walkFingerprints(func(fp, dir string) error {
		return filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			info, err := d.Info()
			if err != nil {
				return err
			}
			fps[fp] = true
			st.Entries++
			st.Bytes += info.Size()
			return nil
		})
	})
	st.Fingerprints = len(fps)
	return st, err
}

// GC removes every cached grid whose fingerprint the keep predicate does
// not claim, and returns how many grids were dropped. Grids still in use
// (keep returns true) are untouched, entry by entry.
func (s *DiskStore) GC(keep func(fingerprint string) bool) (removed int, err error) {
	err = s.walkFingerprints(func(fp, dir string) error {
		if keep != nil && keep(fp) {
			return nil
		}
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
		removed++
		return nil
	})
	return removed, err
}

// walkFingerprints visits every <fp> directory under cells/<xx>/.
func (s *DiskStore) walkFingerprints(visit func(fp, dir string) error) error {
	root := filepath.Join(s.dir, "cells")
	fanout, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, fx := range fanout {
		if !fx.IsDir() {
			continue
		}
		fps, err := os.ReadDir(filepath.Join(root, fx.Name()))
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		for _, fp := range fps {
			if !fp.IsDir() {
				continue
			}
			if err := visit(fp.Name(), filepath.Join(root, fx.Name(), fp.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}
