package classifier

import "fairbench/internal/matrix"

// This file holds the flat-backing fast paths of the training loops. When
// a design matrix arrives as views of one tightly packed backing array
// (matrix.AsDense succeeds — the shape every dataset.FeatureMatrix and
// batched grid execution produces), the per-iteration work runs as blocked
// kernels over the flat data instead of row-pointer chasing. Like
// internal/matrix/kernels.go, this file is held bounds-check-free by the
// CI check_bce gate, and every loop preserves the exact scalar fold order
// of the [][]float64 path so the two produce bit-identical weights.

// logitGradFlat accumulates the weighted logistic-loss gradient over a
// flat design matrix into grad: one blocked z-pass (AffineInto), a sigmoid
// pass staging the per-tuple coefficients into gb, then one blocked scatter
// (ScatterRows). grad[:cols] and the intercept slot grad[cols] are
// accumulated into (not overwritten), and normalization/regularization stay
// with the caller. Because grad arrives zeroed and every component's terms
// are summed in ascending row order, the result is bit-identical to the
// interleaved scalar objective it replaces.
func logitGradFlat(dm matrix.Dense, y []int, w []float64, theta, z, gb, grad []float64) {
	d := dm.Cols
	th := theta[:d+1]
	dm.AffineInto(z, th[:d], th[d])
	matrix.SigmoidInto(gb, z)
	gfull := grad[:d+1]
	gd := gfull[:d]
	y = y[:len(z)]
	gb = gb[:len(z)]
	gInt := 0.0
	if w == nil {
		for i, p := range gb {
			g := p - float64(y[i])
			gb[i] = g
			gInt += g
		}
	} else {
		w = w[:len(z)]
		for i, p := range gb {
			g := w[i] * (p - float64(y[i]))
			gb[i] = g
			gInt += g
		}
	}
	dm.ScatterRows(gd, gb)
	gfull[d] += gInt
}
