package runner

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"fairbench/internal/rng"
)

func TestRunOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		got, err := Run(20, Options{Workers: workers}, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := Run(0, Options{}, func(int) (int, error) {
		t.Fatal("job called for n=0")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty run: %v, %v", got, err)
	}
}

func TestRunFailFastReportsSerialError(t *testing.T) {
	// Jobs 3 and 7 fail; fail-fast must report job 3 — the failure the
	// serial loop would have hit first — regardless of worker count.
	for _, workers := range []int{1, 2, 8} {
		_, err := Run(10, Options{Workers: workers, FailFast: true}, func(i int) (string, error) {
			if i == 3 || i == 7 {
				return "", fmt.Errorf("boom %d", i)
			}
			return "ok", nil
		})
		var je *JobError
		if !errors.As(err, &je) {
			t.Fatalf("workers=%d: error %v is not a JobError", workers, err)
		}
		if je.Index != 3 {
			t.Fatalf("workers=%d: fail-fast reported job %d, want 3", workers, je.Index)
		}
	}
}

func TestRunFailFastSkipsRemainingJobs(t *testing.T) {
	var ran atomic.Int64
	_, err := Run(100, Options{Workers: 2, FailFast: true}, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("first job fails")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n == 100 {
		t.Fatal("fail-fast ran every job")
	}
}

func TestRunCollectAllKeepsResultsAndJoinsErrors(t *testing.T) {
	sentinel := errors.New("bad job")
	for _, workers := range []int{1, 4} {
		got, err := Run(6, Options{Workers: workers}, func(i int) (int, error) {
			if i%2 == 1 {
				return 0, fmt.Errorf("job %d: %w", i, sentinel)
			}
			return i + 100, nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: joined error %v does not wrap sentinel", workers, err)
		}
		var je *JobError
		if !errors.As(err, &je) || je.Index != 1 {
			t.Fatalf("workers=%d: first JobError %+v, want index 1", workers, je)
		}
		for i, v := range got {
			want := 0
			if i%2 == 0 {
				want = i + 100
			}
			if v != want {
				t.Fatalf("workers=%d: result %d = %d, want %d", workers, i, v, want)
			}
		}
	}
}

func TestRunProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var seen []int
		_, err := Run(12, Options{
			Workers: workers,
			Progress: func(done, total int) {
				mu.Lock()
				defer mu.Unlock()
				if total != 12 {
					t.Errorf("total = %d", total)
				}
				seen = append(seen, done)
			},
		}, func(i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 12 {
			t.Fatalf("workers=%d: %d progress calls", workers, len(seen))
		}
		for i, d := range seen {
			if d != i+1 {
				t.Fatalf("workers=%d: progress not strictly increasing: %v", workers, seen)
			}
		}
	}
}

// TestRunPerJobRNGConvention exercises the package's determinism contract
// end to end: jobs that need randomness derive a private stream from
// their own index (rng.Derive), and the draws are then independent of
// worker count and scheduling.
func TestRunPerJobRNGConvention(t *testing.T) {
	draw := func(workers int) []float64 {
		out, err := Run(16, Options{Workers: workers}, func(i int) (float64, error) {
			return rng.Derive(99, int64(i)).Float64(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, parallel := draw(1), draw(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("job %d drew %v serial vs %v parallel", i, serial[i], parallel[i])
		}
	}
}

func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if Parallelism() != 3 {
		t.Fatalf("Parallelism() = %d", Parallelism())
	}
	SetParallelism(0)
	if Parallelism() < 1 {
		t.Fatalf("default Parallelism() = %d", Parallelism())
	}
}
