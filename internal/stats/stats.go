// Package stats provides the summary statistics and high-confidence bounds
// the benchmark relies on: means, variances, quantiles for the repair
// algorithms and stability analysis, plus the Hoeffding and Student-t
// concentration bounds that back the Thomas (Seldonian) safety test.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the unbiased sample variance of x (0 if len(x) < 2).
func Variance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// Std returns the unbiased sample standard deviation of x.
func Std(x []float64) float64 { return math.Sqrt(Variance(x)) }

// MinMax returns the smallest and largest entries of x.
func MinMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		return 0, 0
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of x using linear
// interpolation between order statistics. x need not be sorted.
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	return QuantileSorted(s, q)
}

// QuantileSorted is Quantile for pre-sorted input, avoiding the copy.
func QuantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Rank returns the fraction of entries in sorted slice s that are <= v,
// i.e. the empirical CDF evaluated at v.
func Rank(s []float64, v float64) float64 {
	if len(s) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(s, v)
	// advance over ties so equal values share the highest rank
	for idx < len(s) && s[idx] <= v {
		idx++
	}
	return float64(idx) / float64(len(s))
}

// Median returns the 0.5 quantile of x.
func Median(x []float64) float64 { return Quantile(x, 0.5) }

// HoeffdingUpper returns a (1-delta)-confidence upper bound on the mean of
// a [lo,hi]-bounded random variable given a sample mean over n points:
//
//	mean + (hi-lo) * sqrt(ln(1/delta) / (2n))
//
// This is the bound the Thomas (Seldonian) safety test uses to certify that
// the worst-case fairness violation stays below a threshold.
func HoeffdingUpper(mean float64, n int, lo, hi, delta float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return mean + (hi-lo)*math.Sqrt(math.Log(1/delta)/(2*float64(n)))
}

// TTestUpper returns an approximate (1-delta)-confidence upper bound on the
// mean using the Student-t inflation 'mean + t·s/sqrt(n)'. The t quantile is
// approximated by the normal quantile with a small-sample correction, which
// is accurate enough for the safety-test sizes used in the benchmark.
func TTestUpper(mean, std float64, n int, delta float64) float64 {
	if n <= 1 {
		return math.Inf(1)
	}
	z := NormalQuantile(1 - delta)
	// Cornish-Fisher style first-order correction toward the t distribution.
	t := z * (1 + (z*z+1)/(4*float64(n-1)))
	return mean + t*std/math.Sqrt(float64(n))
}

// NormalQuantile returns the p-th quantile of the standard normal
// distribution using the Acklam rational approximation (|err| < 1.15e-9).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Confusion holds the four cells of a binary-classification confusion
// matrix (Figure 2 of the paper). Predictions and labels are 0/1.
type Confusion struct {
	TP, TN, FP, FN int
}

// Count tallies a confusion matrix from ground truth y and predictions yhat.
func Count(y, yhat []int) Confusion {
	var c Confusion
	for i := range y {
		c.Add(y[i], yhat[i])
	}
	return c
}

// Add records a single (truth, prediction) observation.
func (c *Confusion) Add(y, yhat int) {
	switch {
	case y == 1 && yhat == 1:
		c.TP++
	case y == 0 && yhat == 0:
		c.TN++
	case y == 0 && yhat == 1:
		c.FP++
	default:
		c.FN++
	}
}

// N returns the total number of observations.
func (c Confusion) N() int { return c.TP + c.TN + c.FP + c.FN }

// TPR returns the true-positive rate TP/(TP+FN); 0 when undefined.
func (c Confusion) TPR() float64 { return ratio(c.TP, c.TP+c.FN) }

// TNR returns the true-negative rate TN/(TN+FP); 0 when undefined.
func (c Confusion) TNR() float64 { return ratio(c.TN, c.TN+c.FP) }

// FPR returns the false-positive rate FP/(FP+TN); 0 when undefined.
func (c Confusion) FPR() float64 { return ratio(c.FP, c.FP+c.TN) }

// FNR returns the false-negative rate FN/(FN+TP); 0 when undefined.
func (c Confusion) FNR() float64 { return ratio(c.FN, c.FN+c.TP) }

// PositiveRate returns the fraction of positive predictions.
func (c Confusion) PositiveRate() float64 { return ratio(c.TP+c.FP, c.N()) }

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
