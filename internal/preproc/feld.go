package preproc

import (
	"sort"

	"fairbench/internal/classifier"
	"fairbench/internal/dataset"
	"fairbench/internal/fair"
	"fairbench/internal/stats"
)

// Feld implements Feldman et al.'s disparate-impact remover: each numeric
// attribute is repaired so its marginal distribution is indistinguishable
// across sensitive groups. A value at quantile q within its group is
// replaced by the "median distribution" value at q — for two groups, the
// average of the two group quantile functions — scaled by the repair level
// Lambda (the paper evaluates full repair, λ = 1). Both training and test
// data are transformed; the sensitive attribute is dropped from the
// downstream model's features, which is why Feld trivially satisfies the
// ID metric (Section 4.2).
type Feld struct {
	// Lambda is the repair level in [0,1]; 1 = full repair.
	Lambda float64

	// per-attribute sorted group columns fitted on training data; nil for
	// categorical attributes (left unrepaired, as in the reference
	// implementation which targets ordinal features).
	groupCols [][2][]float64
	// rowScratch backs TransformRow's result between calls (one Feld
	// instance serves one grid cell; predictions are sequential).
	rowScratch []float64
}

// RepairName implements fair.Repairer.
func (f *Feld) RepairName() string { return "Feld" }

// fit records the sorted per-group training columns used by both Repair
// and TransformRow.
func (f *Feld) fit(train *dataset.Dataset) {
	dim := train.Dim()
	f.groupCols = make([][2][]float64, dim)
	for j := 0; j < dim; j++ {
		if train.Attrs[j].Kind != dataset.Numeric {
			continue
		}
		var c0, c1 []float64
		for i, row := range train.X {
			if train.S[i] == 1 {
				c1 = append(c1, row[j])
			} else {
				c0 = append(c0, row[j])
			}
		}
		sort.Float64s(c0)
		sort.Float64s(c1)
		f.groupCols[j] = [2][]float64{c0, c1}
	}
}

// repairValue maps one raw value of attribute j observed in group s to its
// repaired value.
func (f *Feld) repairValue(j int, v float64, s int) float64 {
	cols := f.groupCols[j]
	if cols[0] == nil && cols[1] == nil {
		return v
	}
	own := cols[s]
	if len(own) == 0 {
		return v
	}
	q := stats.Rank(own, v)
	median := (stats.QuantileSorted(cols[0], q) + stats.QuantileSorted(cols[1], q)) / 2
	return (1-f.Lambda)*v + f.Lambda*median
}

// Repair implements fair.Repairer: it fits the quantile maps on train and
// returns the repaired training data.
func (f *Feld) Repair(train *dataset.Dataset) (*dataset.Dataset, error) {
	if f.Lambda == 0 {
		f.Lambda = 1
	}
	f.fit(train)
	out := train.Clone()
	for i, row := range out.X {
		for j := range row {
			if f.groupCols[j][0] != nil || f.groupCols[j][1] != nil {
				row[j] = f.repairValue(j, train.X[i][j], train.S[i])
			}
		}
	}
	return out, nil
}

// TransformRow implements fair.TestTransformer: test tuples are repaired
// with the train-fitted quantile maps. The returned slice is scratch
// reused by the next call, per the TestTransformer contract.
func (f *Feld) TransformRow(x []float64, s int) []float64 {
	if f.groupCols == nil {
		return x
	}
	out := append(f.rowScratch[:0], x...)
	f.rowScratch = out[:0]
	for j := range out {
		if j < len(f.groupCols) && (f.groupCols[j][0] != nil || f.groupCols[j][1] != nil) {
			out[j] = f.repairValue(j, x[j], s)
		}
	}
	return out
}

// NewFeld returns the evaluated Feld^dp approach at full repair (λ=1).
func NewFeld(factory classifier.Factory) fair.Approach {
	return &fair.PreProcessed{
		ApproachName: "Feld-DP",
		Target:       []fair.Metric{fair.MetricDI},
		Mechanism:    &Feld{Lambda: 1},
		Factory:      factory,
		IncludeS:     false, // Feld discards S when training (Section 4.2)
	}
}
