package classifier

import "container/heap"

// KNN is a k-nearest-neighbors classifier using Euclidean distance. The
// paper's model-sensitivity experiment uses k = 33 (Appendix F).
type KNN struct {
	// K is the neighborhood size (default 33).
	K int

	x [][]float64
	y []int
	w []float64
}

// NewKNN returns a kNN classifier with the paper's default k.
func NewKNN() *KNN { return &KNN{K: 33} }

// Fit memorizes the training data. The receiver's K is left untouched;
// PredictProba resolves the default, so a zero-value model is reusable
// and race-free across cells.
func (k *KNN) Fit(x [][]float64, y []int, w []float64) error {
	if err := checkFitInput(x, y, w); err != nil {
		return err
	}
	k.x, k.y, k.w = x, y, w
	return nil
}

// neighborHeap is a max-heap on distance so the root is the farthest of
// the current k candidates and can be evicted cheaply.
type neighborHeap []neighbor

type neighbor struct {
	dist float64
	idx  int
}

func (h neighborHeap) Len() int            { return len(h) }
func (h neighborHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h neighborHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x interface{}) { *h = append(*h, x.(neighbor)) }
func (h *neighborHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// PredictProba returns the (weighted) fraction of positive labels among
// the k nearest training points.
func (k *KNN) PredictProba(q []float64) float64 {
	if len(k.x) == 0 {
		return 0.5
	}
	kk := k.K
	if kk == 0 {
		kk = 33
	}
	if kk > len(k.x) {
		kk = len(k.x)
	}
	h := make(neighborHeap, 0, kk)
	for i, row := range k.x {
		d := sqDist(row, q)
		if len(h) < kk {
			heap.Push(&h, neighbor{d, i})
		} else if d < h[0].dist {
			h[0] = neighbor{d, i}
			heap.Fix(&h, 0)
		}
	}
	var pos, tot float64
	for _, nb := range h {
		wi := 1.0
		if k.w != nil {
			wi = k.w[nb.idx]
		}
		tot += wi
		if k.y[nb.idx] == 1 {
			pos += wi
		}
	}
	if tot == 0 {
		return 0.5
	}
	return pos / tot
}

func sqDist(a, b []float64) float64 {
	var s float64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
