// Package runner is the parallel experiment execution engine: it fans a
// list of independent jobs (one per approach × dataset-slice cell of an
// experiment grid) across a pool of worker goroutines and collects their
// results in job order, so drivers produce byte-identical output whether
// they run serially or across all of GOMAXPROCS.
//
// Determinism contract: jobs must not share mutable state. In particular
// rng.RNG is not safe for concurrent use, so a job must never reach for a
// generator owned by another job or by the dispatching code — a job that
// needs randomness constructs its own private stream from its inputs:
// rng.Derive(seed, jobIndex) for a job-local generator, or (as the
// experiment drivers do) an explicit seed threaded into the components it
// builds. Under that contract the scheduling order cannot influence any
// result, only wall time.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide worker count used when
// Options.Workers is unset; 0 means GOMAXPROCS. It is set through
// SetParallelism (surfaced as fairbench.SetParallelism and the CLI's
// -parallel flag).
var defaultWorkers atomic.Int64

// SetParallelism sets the process-wide default worker count for Run.
// n <= 0 restores the default of GOMAXPROCS. Safe for concurrent use.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Parallelism reports the worker count Run uses when Options.Workers is
// unset.
func Parallelism() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Options configures one Run call.
type Options struct {
	// Workers is the number of concurrent workers; <= 0 uses the
	// process-wide default (see SetParallelism). 1 degenerates to the
	// serial loop.
	Workers int
	// FailFast stops executing further jobs after the first failure
	// (queued jobs are still drained, but skipped) and returns that
	// failure alone. A job is only skipped when a lower-index job has
	// already failed, so the reported error is exactly the one the
	// serial loop would have hit first. When false (collect-all), every
	// job runs and all failures are returned joined, alongside the
	// successful results.
	FailFast bool
	// Progress, when non-nil, is called after each job finishes with the
	// completed count and the total. Calls are serialized; done is
	// strictly increasing and reaches total unless FailFast skips jobs.
	Progress func(done, total int)
	// Offset shifts the job index space: the n jobs are invoked with
	// indices [Offset, Offset+n), and JobError reports the shifted index.
	// This lets one contiguous shard of a larger grid run as its own Run
	// call while every job keeps its global grid coordinate — the same
	// cell therefore computes the same result whether the grid runs whole
	// or split across processes (see internal/shard).
	Offset int
}

// JobError records which job of a Run failed.
type JobError struct {
	Index int
	Err   error
}

func (e *JobError) Error() string { return fmt.Sprintf("job %d: %v", e.Index, e.Err) }

// Unwrap exposes the job's underlying error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// Run executes n jobs across a worker pool and returns their results in
// job-index order. job(i) computes job i (i includes Options.Offset); per
// the package determinism contract it must derive any randomness it needs
// from i (and its own captured seeds), never from state shared with other
// jobs.
//
// In fail-fast mode a failure returns (nil, err) where err wraps the
// lowest-index failure — the one the equivalent serial loop would have
// returned. In collect-all mode Run always returns the full result slice
// (zero values at failed indices) plus all failures joined in index order,
// or a nil error when every job succeeded.
func Run[T any](n int, opts Options, job func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = Parallelism()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		runSerial(n, opts, job, results, errs)
	} else {
		runPool(n, workers, opts, job, results, errs)
	}
	return collect(results, errs, opts)
}

func runSerial[T any](n int, opts Options, job func(int) (T, error), results []T, errs []error) {
	for i := 0; i < n; i++ {
		results[i], errs[i] = job(opts.Offset + i)
		if opts.Progress != nil {
			opts.Progress(i+1, n)
		}
		if errs[i] != nil && opts.FailFast {
			return
		}
	}
}

func runPool[T any](n, workers int, opts Options, job func(int) (T, error), results []T, errs []error) {
	jobs := make(chan int)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	// firstFail is the lowest job index known to have failed (n = none
	// yet). Fail-fast skips job i only when firstFail < i, so every job
	// below the eventual minimum failure is guaranteed to execute — which
	// is what makes the reported error exactly the serial loop's, not
	// merely the first failure some worker happened to observe.
	var firstFail atomic.Int64
	firstFail.Store(int64(n))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				// A stale read only delays the skip by one job.
				if opts.FailFast && firstFail.Load() < int64(i) {
					continue
				}
				results[i], errs[i] = job(opts.Offset + i)
				if errs[i] != nil {
					for {
						cur := firstFail.Load()
						if cur <= int64(i) || firstFail.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
				if opts.Progress != nil {
					mu.Lock()
					done++
					opts.Progress(done, n)
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

func collect[T any](results []T, errs []error, opts Options) ([]T, error) {
	var joined []error
	for i, err := range errs {
		if err == nil {
			continue
		}
		wrapped := &JobError{Index: opts.Offset + i, Err: err}
		if opts.FailFast {
			return nil, wrapped
		}
		joined = append(joined, wrapped)
	}
	return results, errors.Join(joined...)
}
